#!/usr/bin/env bash
# Runs the micro benches with JSON output so the perf trajectory is tracked
# across PRs. Invoked by the `bench-json` CMake target:
#   cmake --build build --target bench-json
# Writes BENCH_crypto.json and BENCH_middleware.json at the repo root.
#
# With --jobs N the scenario sweep benches (fig4a-d + ablations) run too,
# fanned out over N worker threads each via deploy::SweepRunner:
#   scripts/run_benches.sh --jobs 4 build
# Sweep metrics are bitwise identical for any N (only wall-clock changes);
# N is also exported as SOS_SWEEP_JOBS so the bench binaries pick it up
# when run directly. SOS_EPISODE_JOBS / --episode-jobs (forwarded the same
# way) additionally replays each cell on the episode-partitioned engine.
#
# With --check, no benches run: the script is the repo's full correctness
# gate, in three stages.
#   1. sos-lint: the determinism & constant-time static-analysis pass
#      (tools/sos_lint) over src/, plus its rule-fixture selftest.
#   2. ASan+UBSan: a combined -DSOS_SANITIZE=address,undefined build in
#      <build-dir>-asan runs the ENTIRE ctest suite with UB findings fatal
#      (-fno-sanitize-recover=undefined), then the fast `soak`-labelled
#      tier again on its own (checkpoint/resume pins under ASan).
#   3. TSan: a -DSOS_SANITIZE=thread build in <build-dir>-tsan runs the
#      `sweep`-, `fault`-, `mw`-, and `soak`-labelled suites, then re-runs the
#      randomized multi-community harness twice — with SOS_EPISODE_JOBS=4
#      and with SOS_SUBEPISODE_JOBS=4 — so both the episode and the
#      sub-episode (contact-strand) worker pools are exercised at a fixed
#      width.
# Each sanitizer stage refuses to report "clean" unless the suite binaries
# are actually instrumented (stale cache / toolchain dropping the flag):
#   scripts/run_benches.sh --check build
set -euo pipefail

jobs=""
check=0
args=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --jobs)   jobs="${2:?--jobs needs a value}"; shift 2 ;;
    --jobs=*) jobs="${1#--jobs=}"; shift ;;
    --check)  check=1; shift ;;
    *)        args+=("$1"); shift ;;
  esac
done

build_dir="${args[0]:?usage: run_benches.sh [--jobs N] [--check] <build-dir> [repo-root]}"
repo_root="${args[1]:-$(cd "$(dirname "$0")/.." && pwd)}"

# require_instrumented <dir> <symbol-prefix> <bin>...: refuse to bless a
# suite whose binaries silently built without the sanitizer runtime
# (stale cache / toolchain dropping the flag).
require_instrumented() {
  local dir="$1" sym="$2" bin
  shift 2
  for bin in "$@"; do
    # Plain grep (not -q): under pipefail, -q would SIGPIPE nm on the first
    # match and fail the healthy case.
    if ! nm "$dir/$bin" 2>/dev/null | grep "$sym" > /dev/null; then
      echo "error: $dir/$bin is not ${sym}-instrumented; refusing --check" >&2
      exit 1
    fi
  done
}

# require_cache_flag <dir> <value>: the configured cache must carry the
# requested SOS_SANITIZE value or the build is not the one we think it is.
require_cache_flag() {
  if ! grep -q "^SOS_SANITIZE:STRING=$2\$" "$1/CMakeCache.txt"; then
    echo "error: $1 was configured without SOS_SANITIZE=$2; refusing --check" >&2
    exit 1
  fi
}

if [[ $check -eq 1 ]]; then
  # -- stage 1: static analysis ---------------------------------------------
  echo "== lint: sos-lint over src/ + rule fixtures =="
  python3 "$repo_root/tools/sos_lint/sos_lint.py" --root "$repo_root"
  python3 "$repo_root/tools/sos_lint/sos_lint.py" --root "$repo_root" --selftest

  # -- stage 2: ASan+UBSan over the entire suite ----------------------------
  # Separate build trees keep instrumented objects away from the bench build.
  asan_dir="${build_dir%/}-asan"
  echo "== ASan+UBSan check: configuring $asan_dir =="
  cmake -B "$asan_dir" -S "$repo_root" -DSOS_SANITIZE=address,undefined \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
  require_cache_flag "$asan_dir" "address,undefined"
  cmake --build "$asan_dir" -j "$(nproc)"
  require_instrumented "$asan_dir" __asan mw_test sweep_test episode_test fault_test soak_test
  require_instrumented "$asan_dir" __ubsan mw_test sweep_test episode_test fault_test soak_test
  echo "== ASan+UBSan check: full ctest suite =="
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --test-dir "$asan_dir" --output-on-failure
  echo "== ASan+UBSan check: fast soak tier (ctest -L soak) =="
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --test-dir "$asan_dir" -L soak --output-on-failure

  # -- stage 3: TSan over the concurrency-bearing suites --------------------
  tsan_dir="${build_dir%/}-tsan"
  echo "== TSan check: configuring $tsan_dir =="
  cmake -B "$tsan_dir" -S "$repo_root" -DSOS_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  require_cache_flag "$tsan_dir" thread
  cmake --build "$tsan_dir" -j "$(nproc)" --target sweep_test episode_test fault_test \
        bundle_test fastpath_test mw_test sim_test soak_test
  require_instrumented "$tsan_dir" __tsan sweep_test episode_test fault_test mw_test soak_test
  for label in sweep fault mw soak; do
    echo "== TSan check: ctest -L $label =="
    ctest --test-dir "$tsan_dir" -L "$label" --output-on-failure
  done
  echo "== TSan check: randomized multi-community harness, SOS_EPISODE_JOBS=4 =="
  SOS_EPISODE_JOBS=4 "$tsan_dir/episode_test" \
    --gtest_filter='RandomizedDeterminism.*'
  echo "== TSan check: randomized multi-community harness, SOS_SUBEPISODE_JOBS=4 =="
  SOS_SUBEPISODE_JOBS=4 "$tsan_dir/episode_test" \
    --gtest_filter='RandomizedDeterminism.*:SubepisodeReplay.*'
  echo "lint + ASan/UBSan full suite + TSan sweep/fault/mw suites clean"
  exit 0
fi

# Fail before running anything if a bench binary is missing: otherwise the
# script would die mid-way having refreshed only some BENCH_*.json files,
# leaving a silently inconsistent snapshot.
micro_benches=(bench_micro_crypto bench_micro_middleware)
scenario_benches=(bench_fig4a_social_graph bench_fig4b_mobility_map
                  bench_fig4c_delay_cdf bench_fig4d_delivery_cdf
                  bench_ablation_density bench_ablation_schemes)
required=("${micro_benches[@]}")
[[ -n "$jobs" ]] && required+=("${scenario_benches[@]}")
missing=0
for bench in "${required[@]}"; do
  if [[ ! -x "$build_dir/$bench" ]]; then
    echo "error: $build_dir/$bench not found or not executable" >&2
    echo "       (build it first: cmake --build $build_dir --target $bench)" >&2
    missing=1
  fi
done
[[ $missing -eq 0 ]] || exit 1

"$build_dir/bench_micro_crypto" \
  --benchmark_out="$repo_root/BENCH_crypto.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.2
"$build_dir/bench_micro_middleware" \
  --benchmark_out="$repo_root/BENCH_middleware.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.2

echo "wrote $repo_root/BENCH_crypto.json and $repo_root/BENCH_middleware.json"

if [[ -n "$jobs" ]]; then
  export SOS_SWEEP_JOBS="$jobs"
  for bench in "${scenario_benches[@]}"; do
    echo "== $bench --jobs $jobs =="
    "$build_dir/$bench" --jobs "$jobs"
  done
fi
