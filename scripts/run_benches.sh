#!/usr/bin/env bash
# Runs the micro benches with JSON output so the perf trajectory is tracked
# across PRs. Invoked by the `bench-json` CMake target:
#   cmake --build build --target bench-json
# Writes BENCH_crypto.json and BENCH_middleware.json at the repo root.
#
# With --jobs N the scenario sweep benches (fig4a-d + ablations) run too,
# fanned out over N worker threads each via deploy::SweepRunner:
#   scripts/run_benches.sh --jobs 4 build
# Sweep metrics are bitwise identical for any N (only wall-clock changes);
# N is also exported as SOS_SWEEP_JOBS so the bench binaries pick it up
# when run directly. SOS_EPISODE_JOBS / --episode-jobs (forwarded the same
# way) additionally replays each cell on the episode-partitioned engine.
#
# With --check, no benches run: the script configures a TSan build
# (-DSOS_SANITIZE=thread) in <build-dir>-tsan and runs the `sweep`- and
# `fault`-labelled determinism tests under it, so data races in the sharded
# replay engine and in the fault-injection layer fail loudly. It refuses to
# report "clean" unless the suite binaries are actually TSan-instrumented
# (stale cache / toolchain dropping the flag), and additionally re-runs the
# randomized multi-community harness with SOS_EPISODE_JOBS=4 so the episode
# worker pool is exercised at a fixed width:
#   scripts/run_benches.sh --check build
set -euo pipefail

jobs=""
check=0
args=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --jobs)   jobs="${2:?--jobs needs a value}"; shift 2 ;;
    --jobs=*) jobs="${1#--jobs=}"; shift ;;
    --check)  check=1; shift ;;
    *)        args+=("$1"); shift ;;
  esac
done

build_dir="${args[0]:?usage: run_benches.sh [--jobs N] [--check] <build-dir> [repo-root]}"
repo_root="${args[1]:-$(cd "$(dirname "$0")/.." && pwd)}"

if [[ $check -eq 1 ]]; then
  # Thread-sanitized run of the sweep/episode determinism suite. A separate
  # build tree keeps the instrumented objects away from the bench build.
  tsan_dir="${build_dir%/}-tsan"
  echo "== TSan check: configuring $tsan_dir =="
  cmake -B "$tsan_dir" -S "$repo_root" -DSOS_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  # A --check run that silently built without sanitizers would bless racy
  # code: verify the cache kept the flag...
  if ! grep -q '^SOS_SANITIZE:STRING=thread$' "$tsan_dir/CMakeCache.txt"; then
    echo "error: $tsan_dir was configured without SOS_SANITIZE=thread; refusing --check" >&2
    exit 1
  fi
  cmake --build "$tsan_dir" -j "$(nproc)" --target sweep_test episode_test fault_test
  # ...and that the suite binaries are actually instrumented.
  for bin in sweep_test episode_test fault_test; do
    # Plain grep (not -q): under pipefail, -q would SIGPIPE nm on the first
    # match and fail the healthy case.
    if ! nm "$tsan_dir/$bin" 2>/dev/null | grep '__tsan' > /dev/null; then
      echo "error: $tsan_dir/$bin is not TSan-instrumented; refusing --check" >&2
      exit 1
    fi
  done
  echo "== TSan check: ctest -L sweep =="
  ctest --test-dir "$tsan_dir" -L sweep --output-on-failure
  echo "== TSan check: ctest -L fault =="
  ctest --test-dir "$tsan_dir" -L fault --output-on-failure
  echo "== TSan check: randomized multi-community harness, SOS_EPISODE_JOBS=4 =="
  SOS_EPISODE_JOBS=4 "$tsan_dir/episode_test" \
    --gtest_filter='RandomizedDeterminism.*'
  echo "TSan sweep + fault suites clean"
  exit 0
fi

# Fail before running anything if a bench binary is missing: otherwise the
# script would die mid-way having refreshed only some BENCH_*.json files,
# leaving a silently inconsistent snapshot.
micro_benches=(bench_micro_crypto bench_micro_middleware)
scenario_benches=(bench_fig4a_social_graph bench_fig4b_mobility_map
                  bench_fig4c_delay_cdf bench_fig4d_delivery_cdf
                  bench_ablation_density bench_ablation_schemes)
required=("${micro_benches[@]}")
[[ -n "$jobs" ]] && required+=("${scenario_benches[@]}")
missing=0
for bench in "${required[@]}"; do
  if [[ ! -x "$build_dir/$bench" ]]; then
    echo "error: $build_dir/$bench not found or not executable" >&2
    echo "       (build it first: cmake --build $build_dir --target $bench)" >&2
    missing=1
  fi
done
[[ $missing -eq 0 ]] || exit 1

"$build_dir/bench_micro_crypto" \
  --benchmark_out="$repo_root/BENCH_crypto.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.2
"$build_dir/bench_micro_middleware" \
  --benchmark_out="$repo_root/BENCH_middleware.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.2

echo "wrote $repo_root/BENCH_crypto.json and $repo_root/BENCH_middleware.json"

if [[ -n "$jobs" ]]; then
  export SOS_SWEEP_JOBS="$jobs"
  for bench in "${scenario_benches[@]}"; do
    echo "== $bench --jobs $jobs =="
    "$build_dir/$bench" --jobs "$jobs"
  done
fi
