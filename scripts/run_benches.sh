#!/usr/bin/env bash
# Runs the micro benches with JSON output so the perf trajectory is tracked
# across PRs. Invoked by the `bench-json` CMake target:
#   cmake --build build --target bench-json
# Writes BENCH_crypto.json and BENCH_middleware.json at the repo root.
set -euo pipefail

build_dir="${1:?usage: run_benches.sh <build-dir> [repo-root]}"
repo_root="${2:-$(cd "$(dirname "$0")/.." && pwd)}"

# Fail before running anything if a bench binary is missing: otherwise the
# script would die mid-way having refreshed only some BENCH_*.json files,
# leaving a silently inconsistent snapshot.
missing=0
for bench in bench_micro_crypto bench_micro_middleware; do
  if [[ ! -x "$build_dir/$bench" ]]; then
    echo "error: $build_dir/$bench not found or not executable" >&2
    echo "       (build it first: cmake --build $build_dir --target $bench)" >&2
    missing=1
  fi
done
[[ $missing -eq 0 ]] || exit 1

"$build_dir/bench_micro_crypto" \
  --benchmark_out="$repo_root/BENCH_crypto.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.2
"$build_dir/bench_micro_middleware" \
  --benchmark_out="$repo_root/BENCH_middleware.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.2

echo "wrote $repo_root/BENCH_crypto.json and $repo_root/BENCH_middleware.json"
