#!/usr/bin/env bash
# Runs the micro benches with JSON output so the perf trajectory is tracked
# across PRs. Invoked by the `bench-json` CMake target:
#   cmake --build build --target bench-json
# Writes BENCH_crypto.json and BENCH_middleware.json at the repo root.
set -euo pipefail

build_dir="${1:?usage: run_benches.sh <build-dir> [repo-root]}"
repo_root="${2:-$(cd "$(dirname "$0")/.." && pwd)}"

"$build_dir/bench_micro_crypto" \
  --benchmark_out="$repo_root/BENCH_crypto.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.2
"$build_dir/bench_micro_middleware" \
  --benchmark_out="$repo_root/BENCH_middleware.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.2

echo "wrote $repo_root/BENCH_crypto.json and $repo_root/BENCH_middleware.json"
