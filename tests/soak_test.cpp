// Soak suite (`ctest -L soak`): the versioned checkpoint codec and its
// rejection paths, checkpoint/resume bitwise-identity pins across all three
// replay engines and worker counts (the property the month-scale soak
// harness rests on), the rolling-window anomaly detector, and the
// time-scale regression tests the soak audit produced — resumption-ticket
// re-mint cadence, PRoPHET table pruning at month horizons, and
// encounter-detector tick-grid anchoring.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "crypto/drbg.hpp"
#include "crypto/sha256.hpp"
#include "deploy/replay.hpp"
#include "deploy/scenario.hpp"
#include "mw/schemes/prophet.hpp"
#include "mw/sos_node.hpp"
#include "pki/bootstrap.hpp"
#include "sim/multipeer.hpp"
#include "sim/radio.hpp"
#include "sim/scheduler.hpp"
#include "sim/trace.hpp"
#include "soak/anomaly.hpp"
#include "soak/checkpoint.hpp"
#include "soak/jsonl.hpp"
#include "soak/runner.hpp"
#include "util/codec.hpp"
#include "util/rng.hpp"

namespace sc = sos::crypto;
namespace sd = sos::deploy;
namespace sk = sos::soak;
namespace sm = sos::mw;
namespace sp = sos::pki;
namespace ss = sos::sim;
namespace su = sos::util;

namespace {

/// The metrics that must be bitwise identical across engines and across a
/// checkpoint/resume boundary (mirrors tests/episode_test.cpp).
struct Fingerprint {
  std::size_t posts, deliveries, carries;
  std::uint64_t contacts, wire_frames, wire_bytes, connections, frames_lost;
  std::uint64_t bundles_sent, bundles_received, sessions, full_handshakes, resumed;
  std::uint64_t ecdh, cache_hits, cache_misses, batch_verifies, interrupted, duplicates;
  bool operator==(const Fingerprint&) const = default;
};

Fingerprint fingerprint(const sd::ScenarioResult& r) {
  return {r.oracle.post_count(),
          r.oracle.delivery_count(),
          r.oracle.carry_count(),
          r.contacts,
          r.wire_frames,
          r.wire_bytes,
          r.connections,
          r.frames_lost,
          r.totals.bundles_sent,
          r.totals.bundles_received,
          r.totals.sessions_established,
          r.totals.full_handshakes,
          r.totals.sessions_resumed,
          r.totals.ecdh_ops,
          r.totals.bundle_sig_cache_hits,
          r.totals.bundle_sig_cache_misses,
          r.totals.bundle_batch_verifies,
          r.totals.transfers_interrupted,
          r.totals.duplicates_ignored};
}

sd::ScenarioConfig small_config(const std::string& scheme, std::uint64_t seed) {
  sd::ScenarioConfig c = sd::gainesville_config(scheme, seed);
  c.nodes = 12;
  c.area_w_m = 1800;
  c.area_h_m = 1800;
  c.days = 1.0;
  c.total_posts_target = 50;
  return c;
}

struct EngineOpt {
  const char* name;
  sd::ReplayOptions opt;
};

std::vector<EngineOpt> all_engines() {
  return {{"mono", {}},
          {"episode-j1", {.partition = true, .jobs = 1}},
          {"episode-j4", {.partition = true, .jobs = 4}},
          {"strand-j1", {.subepisode_jobs = 1}},
          {"strand-j4", {.subepisode_jobs = 4}}};
}

sk::Checkpoint sample_checkpoint() {
  sk::Checkpoint c;
  c.segment = 7;
  c.sim_time = 12345.5;
  for (std::size_t i = 0; i < c.world_digest.size(); ++i) {
    c.world_digest[i] = static_cast<std::uint8_t>(i);
  }
  c.payload = su::to_bytes("node-state-payload");
  return c;
}

std::string temp_dir(const std::string& leaf) {
  auto dir = std::filesystem::path(::testing::TempDir()) / leaf;
  std::filesystem::remove_all(dir);
  return dir.string();
}

}  // namespace

// --- checkpoint codec -------------------------------------------------------

TEST(CheckpointCodec, RoundTripPreservesEveryField) {
  sk::Checkpoint c = sample_checkpoint();
  su::Bytes encoded = sk::encode_checkpoint(c);
  std::string error;
  auto decoded = sk::decode_checkpoint(su::ByteView(encoded), &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->segment, c.segment);
  EXPECT_EQ(decoded->sim_time, c.sim_time);
  EXPECT_EQ(decoded->world_digest, c.world_digest);
  EXPECT_EQ(decoded->payload, c.payload);
}

TEST(CheckpointCodec, TruncationRejectedAtEveryLength) {
  su::Bytes encoded = sk::encode_checkpoint(sample_checkpoint());
  for (std::size_t len : {std::size_t{0}, std::size_t{7}, std::size_t{40},
                          encoded.size() - 33, encoded.size() - 1}) {
    std::string error;
    su::ByteView cut(encoded.data(), len);
    EXPECT_FALSE(sk::decode_checkpoint(cut, &error).has_value()) << len;
    EXPECT_FALSE(error.empty()) << len;
  }
  // Short inputs get the pointed truncation diagnostic.
  std::string error;
  EXPECT_FALSE(sk::decode_checkpoint(su::ByteView(encoded.data(), 12), &error).has_value());
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
}

TEST(CheckpointCodec, BadMagicRejected) {
  su::Bytes encoded = sk::encode_checkpoint(sample_checkpoint());
  encoded[0] = 'X';
  std::string error;
  EXPECT_FALSE(sk::decode_checkpoint(su::ByteView(encoded), &error).has_value());
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(CheckpointCodec, FutureVersionRejectedWithDiagnostic) {
  // Hand-build a well-formed version-99 checkpoint (valid integrity hash,
  // so the rejection is purely the forward-compat version gate).
  sk::Checkpoint c = sample_checkpoint();
  su::Bytes v1 = sk::encode_checkpoint(c);
  su::Bytes future = v1;
  future[11] = 99;  // big-endian u32 version right after the 8-byte magic
  // Recompute the trailing hash over the altered body.
  su::ByteView body(future.data(), future.size() - 32);
  auto hash = sc::Sha256::hash(body);
  std::copy(hash.begin(), hash.end(), future.end() - 32);
  std::string error;
  EXPECT_FALSE(sk::decode_checkpoint(su::ByteView(future), &error).has_value());
  EXPECT_NE(error.find("version 99"), std::string::npos) << error;
  EXPECT_NE(error.find("newer"), std::string::npos) << error;
}

TEST(CheckpointCodec, TrailingBytesRejected) {
  // Craft a body with junk after the payload and a matching hash: only the
  // done() check can catch this one.
  sk::Checkpoint c = sample_checkpoint();
  su::Bytes v1 = sk::encode_checkpoint(c);
  su::Bytes padded(v1.begin(), v1.end() - 32);
  padded.push_back(0xEE);
  auto hash = sc::Sha256::hash(su::ByteView(padded));
  padded.insert(padded.end(), hash.begin(), hash.end());
  std::string error;
  EXPECT_FALSE(sk::decode_checkpoint(su::ByteView(padded), &error).has_value());
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;
}

TEST(CheckpointCodec, BitFlipRejectedByIntegrityHash) {
  su::Bytes encoded = sk::encode_checkpoint(sample_checkpoint());
  encoded[encoded.size() / 2] ^= 0x40;
  std::string error;
  EXPECT_FALSE(sk::decode_checkpoint(su::ByteView(encoded), &error).has_value());
  EXPECT_NE(error.find("integrity"), std::string::npos) << error;
}

TEST(CheckpointStore, SavesAtomicallyAndLoadsHighestSegment) {
  sk::CheckpointStore store(temp_dir("ckpt-store"));
  sk::Checkpoint c = sample_checkpoint();
  std::string error;
  c.segment = 2;
  ASSERT_TRUE(store.save(c, &error)) << error;
  c.segment = 10;
  c.sim_time = 99999.0;
  ASSERT_TRUE(store.save(c, &error)) << error;
  auto latest = store.load_latest(&error);
  ASSERT_TRUE(latest.has_value()) << error;
  EXPECT_EQ(latest->segment, 10u);
  EXPECT_EQ(latest->sim_time, 99999.0);
  // No half-written temp files survive a successful save.
  for (const auto& entry : std::filesystem::directory_iterator(store.dir())) {
    EXPECT_EQ(entry.path().extension(), ".bin") << entry.path();
  }
}

TEST(CheckpointStore, CorruptFileRejectedNotPartiallyLoaded) {
  sk::CheckpointStore store(temp_dir("ckpt-corrupt"));
  std::filesystem::create_directories(store.dir());
  std::ofstream(store.dir() + "/ckpt-1.bin") << "this is not a checkpoint";
  std::string error;
  EXPECT_FALSE(store.load_latest(&error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(CheckpointCodec, WorldDigestDistinguishesWorlds) {
  sd::ScenarioConfig config = small_config("interest", 5);
  config.nodes = 6;
  config.days = 0.25;
  auto world = sd::record_world(config);
  auto base = sk::world_digest(config, *world);
  sd::ScenarioConfig other = config;
  other.seed = 6;
  EXPECT_NE(base, sk::world_digest(other, *world));
  sd::ScenarioConfig scheme_flip = config;
  scheme_flip.scheme = "epidemic";
  EXPECT_NE(base, sk::world_digest(scheme_flip, *world));
}

// --- checkpoint/resume determinism pins -------------------------------------

TEST(SoakResume, CheckpointResumeBitwiseIdenticalOnEveryEngine) {
  sd::ScenarioConfig config = small_config("interest", su::derive_seed(77, 1));
  auto world = sd::record_world(config);
  ASSERT_GT(world->trace.size(), 0u);
  Fingerprint baseline = fingerprint(sd::run_scenario(config, world.get()));
  ASSERT_GT(baseline.posts, 0u);
  for (const EngineOpt& e : all_engines()) {
    // One uninterrupted session equals the single-scheduler replay.
    sd::ReplaySession whole(config, *world, e.opt);
    whole.advance_to(whole.horizon());
    EXPECT_EQ(baseline, fingerprint(whole.finish())) << e.name;

    // Checkpoint at a mid-run quiescent cut, resume in a fresh session,
    // round-tripping the state through the full checkpoint codec.
    sd::ReplaySession first(config, *world, e.opt);
    std::vector<su::SimTime> cuts = first.quiescent_cuts(60.0);
    ASSERT_FALSE(cuts.empty()) << e.name;
    first.advance_to(cuts[cuts.size() / 2]);
    sk::Checkpoint ckpt;
    ckpt.segment = 1;
    ckpt.sim_time = first.sim_time();
    ckpt.world_digest = sk::world_digest(config, *world);
    su::Writer w;
    first.save_state(w);
    ckpt.payload = w.take();
    std::string error;
    su::Bytes encoded = sk::encode_checkpoint(ckpt);
    auto decoded = sk::decode_checkpoint(su::ByteView(encoded), &error);
    ASSERT_TRUE(decoded.has_value()) << error;
    sd::ReplaySession second(config, *world, e.opt);
    su::Reader r{su::ByteView(decoded->payload)};
    ASSERT_TRUE(second.load_state(r)) << e.name;
    second.advance_to(second.horizon());
    EXPECT_EQ(baseline, fingerprint(second.finish())) << e.name << " (resumed)";
  }
}

TEST(SoakResume, SegmentedAdvanceThroughEveryCutMatchesUninterrupted) {
  sd::ScenarioConfig config = small_config("epidemic", su::derive_seed(77, 2));
  auto world = sd::record_world(config);
  Fingerprint baseline = fingerprint(sd::run_scenario(config, world.get()));
  for (const EngineOpt& e :
       {EngineOpt{"mono", {}}, EngineOpt{"strand-j4", {.subepisode_jobs = 4}}}) {
    sd::ReplaySession session(config, *world, e.opt);
    std::vector<su::SimTime> cuts = session.quiescent_cuts(60.0);
    ASSERT_GE(cuts.size(), 2u) << e.name;
    for (su::SimTime cut : cuts) session.advance_to(cut);
    session.advance_to(session.horizon());
    EXPECT_EQ(baseline, fingerprint(session.finish())) << e.name;
  }
}

TEST(SoakResume, CheckpointCrossesEngines) {
  // Checkpoint under the episode engine, resume under the strand engine and
  // the mono engine: node state is engine-agnostic.
  sd::ScenarioConfig config = small_config("interest", su::derive_seed(77, 3));
  auto world = sd::record_world(config);
  Fingerprint baseline = fingerprint(sd::run_scenario(config, world.get()));

  sd::ReplaySession writer(config, *world, {.partition = true, .jobs = 4});
  std::vector<su::SimTime> cuts = writer.quiescent_cuts(60.0);
  ASSERT_FALSE(cuts.empty());
  writer.advance_to(cuts[cuts.size() / 2]);
  su::Writer w;
  writer.save_state(w);
  su::Bytes blob = w.take();

  for (const EngineOpt& e :
       {EngineOpt{"strand-j4", {.subepisode_jobs = 4}}, EngineOpt{"mono", {}}}) {
    sd::ReplaySession reader(config, *world, e.opt);
    su::Reader r{su::ByteView(blob)};
    ASSERT_TRUE(reader.load_state(r)) << e.name;
    reader.advance_to(reader.horizon());
    EXPECT_EQ(baseline, fingerprint(reader.finish())) << e.name;
  }
}

TEST(SoakResume, MalformedPayloadNeverPartiallyAttaches) {
  sd::ScenarioConfig config = small_config("interest", su::derive_seed(77, 1));
  auto world = sd::record_world(config);
  sd::ReplaySession donor(config, *world, {});
  std::vector<su::SimTime> cuts = donor.quiescent_cuts(60.0);
  ASSERT_FALSE(cuts.empty());
  donor.advance_to(cuts.front());
  su::Writer w;
  donor.save_state(w);
  su::Bytes blob = w.take();

  // A truncated payload must be rejected, and the rejected session must
  // still be able to run from scratch (nothing half-restored).
  su::Bytes cut_blob(blob.begin(), blob.begin() + static_cast<std::ptrdiff_t>(blob.size() / 2));
  sd::ReplaySession victim(config, *world, {});
  su::Reader r{su::ByteView(cut_blob)};
  EXPECT_FALSE(victim.load_state(r));
  EXPECT_EQ(victim.sim_time(), 0.0);
  victim.advance_to(victim.horizon());
  Fingerprint baseline = fingerprint(sd::run_scenario(config, world.get()));
  EXPECT_EQ(baseline, fingerprint(victim.finish()));
}

// --- soak runner ------------------------------------------------------------

TEST(SoakRunner, RunsToHorizonWithSnapshotsCheckpointsAndJsonl) {
  sk::SoakOptions opts;
  opts.config = small_config("interest", su::derive_seed(88, 1));
  opts.replay = {.partition = true, .jobs = 2};
  opts.snapshot_interval_s = 4 * 3600.0;
  opts.checkpoint_interval_s = 8 * 3600.0;
  opts.checkpoint_dir = temp_dir("soak-run-ckpts");
  opts.jsonl_path = temp_dir("soak-run-log") + "/soak.jsonl";
  auto world = sd::record_world(opts.config);
  sk::SoakResult result = sk::Runner(opts).run(*world);

  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.stop_reason, "horizon");
  EXPECT_GT(result.snapshots.size(), 2u);
  EXPECT_GE(result.checkpoints_written, 1u);
  EXPECT_TRUE(result.anomalies.empty());
  // The run's metrics equal the plain replay's.
  EXPECT_EQ(fingerprint(sd::run_scenario(opts.config, world.get())),
            fingerprint(result.scenario));

  std::ifstream log(opts.jsonl_path);
  ASSERT_TRUE(log.good());
  std::string line;
  std::size_t snapshot_lines = 0;
  bool saw_result = false;
  while (std::getline(log, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    if (line.find("\"kind\":\"snapshot\"") != std::string::npos) ++snapshot_lines;
    if (line.find("\"kind\":\"result\"") != std::string::npos) saw_result = true;
  }
  EXPECT_EQ(snapshot_lines, result.snapshots.size());
  EXPECT_TRUE(saw_result);
}

TEST(SoakRunner, ResumeFromStoredCheckpointMatchesUninterrupted) {
  sk::SoakOptions opts;
  opts.config = small_config("interest", su::derive_seed(88, 2));
  opts.replay = {.subepisode_jobs = 2};
  opts.snapshot_interval_s = 4 * 3600.0;
  opts.checkpoint_interval_s = 6 * 3600.0;
  opts.checkpoint_dir = temp_dir("soak-resume-ckpts");
  auto world = sd::record_world(opts.config);

  sk::SoakResult full = sk::Runner(opts).run(*world);
  ASSERT_TRUE(full.completed);
  ASSERT_GE(full.checkpoints_written, 1u);

  std::string error;
  auto ckpt = sk::CheckpointStore(opts.checkpoint_dir).load_latest(&error);
  ASSERT_TRUE(ckpt.has_value()) << error;
  sk::SoakResult resumed = sk::Runner(opts).resume(*world, *ckpt);
  EXPECT_TRUE(resumed.completed) << resumed.stop_reason;
  EXPECT_EQ(fingerprint(full.scenario), fingerprint(resumed.scenario));
}

TEST(SoakRunner, ResumeRejectsForeignWorldCheckpoint) {
  sk::SoakOptions opts;
  opts.config = small_config("interest", su::derive_seed(88, 3));
  auto world = sd::record_world(opts.config);
  sk::Checkpoint foreign;
  foreign.world_digest.fill(0xAB);
  foreign.payload = su::to_bytes("whatever");
  sk::SoakResult result = sk::Runner(opts).resume(*world, foreign);
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.stop_reason.rfind("resume-rejected", 0), 0u) << result.stop_reason;
  EXPECT_TRUE(result.snapshots.empty());
}

TEST(SoakRunner, MetricPredicateHaltsBeforeHorizon) {
  sk::SoakOptions opts;
  opts.config = small_config("interest", su::derive_seed(88, 4));
  opts.config.days = 2.0;  // posts land in day 1's evening, well before the horizon
  opts.snapshot_interval_s = 2 * 3600.0;
  opts.stop.predicates.push_back({"posts", ">=", 1.0});
  auto world = sd::record_world(opts.config);
  sk::SoakResult result = sk::Runner(opts).run(*world);
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.stop_reason.rfind("predicate", 0), 0u) << result.stop_reason;
  EXPECT_LT(result.sim_time, su::days(opts.config.days));
}

// --- anomaly detector -------------------------------------------------------

namespace {

sk::MetricSnapshot snap_at(double sim_time, std::uint64_t bundles_sent,
                           std::uint64_t wire_frames, std::uint64_t rss_kb) {
  sk::MetricSnapshot s;
  s.sim_time = sim_time;
  s.totals.bundles_sent = bundles_sent;
  s.totals.deliveries = bundles_sent;               // moves with bundles
  s.totals.sessions_established = bundles_sent / 4 + 1;
  s.totals.frames_sent = wire_frames;
  s.wire_frames = wire_frames;
  s.rss_kb = rss_kb;
  return s;
}

}  // namespace

TEST(AnomalyDetector, RateSpikeFlaggedAgainstRollingMean) {
  sk::AnomalyConfig cfg;
  cfg.window = 4;
  cfg.rate_spike_min = 100;
  sk::AnomalyDetector det(cfg);
  std::uint64_t sent = 0, frames = 0;
  for (int i = 0; i < 6; ++i) {
    sent += 10;
    frames += 40;
    EXPECT_TRUE(det.observe(snap_at(i * 3600.0, sent, frames, 0)).empty()) << i;
  }
  sent += 100000;  // 10000x the rolling mean
  frames += 40;
  auto found = det.observe(snap_at(7 * 3600.0, sent, frames, 0));
  // Correlated counters (sessions move with bundles in snap_at) may spike
  // together; the bundles_sent spike itself must be among the findings.
  bool spiked = false;
  for (const sk::Anomaly& a : found) {
    if (a.kind == "rate-spike" && a.metric == "bundles_sent") {
      spiked = true;
      EXPECT_NE(a.detail.find("rolling-window peak"), std::string::npos);
    }
  }
  EXPECT_TRUE(spiked);
}

TEST(AnomalyDetector, UnequalIntervalLengthsAreNotRateSpikes) {
  // Snapshots land on quiescent cuts, so interval lengths legitimately vary
  // severalfold. Regression for the first 30-day soak: constant per-hour
  // traffic observed over a mix of 6 h and 24 h intervals tripped the raw
  // per-interval-delta comparison (a 24 h interval carries 4x the count of a
  // 6 h one); the detector must compare per-sim-hour rates instead.
  sk::AnomalyConfig cfg;
  cfg.window = 4;
  cfg.rate_spike_min = 100;
  sk::AnomalyDetector det(cfg);
  const double kRatePerHour = 500.0;
  const double lengths_h[] = {6, 6, 6, 6, 6, 6, 24, 6, 24, 6, 24};
  double t = 0;
  std::uint64_t sent = 0, frames = 0;
  for (double len : lengths_h) {
    t += len * 3600.0;
    sent += static_cast<std::uint64_t>(kRatePerHour * len);
    frames += static_cast<std::uint64_t>(kRatePerHour * len) + 40;
    for (const sk::Anomaly& a : det.observe(snap_at(t, sent, frames, 0))) {
      EXPECT_NE(a.kind, "rate-spike") << a.detail;
    }
  }

  // The same detector still catches a genuine rate jump on a long interval:
  // 24 h at 10x the steady per-hour rate.
  t += 24 * 3600.0;
  sent += static_cast<std::uint64_t>(kRatePerHour * 10 * 24);
  frames += static_cast<std::uint64_t>(kRatePerHour * 10 * 24);
  bool spiked = false;
  for (const sk::Anomaly& a : det.observe(snap_at(t, sent, frames, 0))) {
    if (a.kind == "rate-spike" && a.metric == "bundles_sent") spiked = true;
  }
  EXPECT_TRUE(spiked);
}

TEST(AnomalyDetector, DutyCycledTrafficIsNotARateSpike) {
  // Regression for the second 30-day soak halt: weekday-only bridge
  // commuting pauses cross-community traffic over the weekend, and Monday
  // flushes the backlog — 751/h against a weekend-lulled rolling MEAN of
  // 85/h read as an 8.8x spike. The baseline must be the window's peak
  // rate, which the weekly rhythm never exceeds by the spike factor.
  sk::AnomalyConfig cfg;
  cfg.window = 6;
  cfg.rate_spike_min = 100;
  sk::AnomalyDetector det(cfg);
  double t = 0;
  std::uint64_t sent = 0, frames = 0;
  auto interval = [&](double len_h, double rate_per_h) {
    t += len_h * 3600.0;
    auto d = static_cast<std::uint64_t>(rate_per_h * len_h);
    sent += d;
    frames += d + 40;
    return det.observe(snap_at(t, sent, frames, 0));
  };
  // Two weeks: five 12 h busy weekday intervals at ~700/h, then a weekend
  // of near-silence, then Monday's backlog burst at 800/h.
  for (int week = 0; week < 2; ++week) {
    for (int d = 0; d < 5; ++d) {
      for (const sk::Anomaly& a : interval(12, 700)) {
        EXPECT_NE(a.kind, "rate-spike") << a.detail;
      }
    }
    for (int d = 0; d < 4; ++d) {
      for (const sk::Anomaly& a : interval(12, 2)) {
        EXPECT_NE(a.kind, "rate-spike") << a.detail;
      }
    }
    for (const sk::Anomaly& a : interval(12, 800)) {
      EXPECT_NE(a.kind, "rate-spike") << a.detail;
    }
  }
  // A genuine feedback loop still trips: 10x the recent peak.
  bool spiked = false;
  for (const sk::Anomaly& a : interval(12, 8000)) {
    if (a.kind == "rate-spike" && a.metric == "bundles_sent") spiked = true;
  }
  EXPECT_TRUE(spiked);
}

TEST(AnomalyDetector, StallFlaggedOnlyWhileTrafficFlows) {
  sk::AnomalyConfig cfg;
  cfg.window = 4;
  cfg.stall_intervals = 3;
  sk::AnomalyDetector det(cfg);
  std::uint64_t frames = 0;
  // Counters frozen but frames flowing: a stall after 3 such intervals.
  bool stalled = false;
  for (int i = 0; i < 6 && !stalled; ++i) {
    frames += 50;
    for (const sk::Anomaly& a : det.observe(snap_at(i * 3600.0, 5, frames, 0))) {
      if (a.kind == "stall") stalled = true;
    }
  }
  EXPECT_TRUE(stalled);

  // Frozen counters with no traffic are a quiet trace, not a stall.
  sk::AnomalyDetector quiet(cfg);
  for (int i = 0; i < 10; ++i) {
    for (const sk::Anomaly& a : quiet.observe(snap_at(i * 3600.0, 5, 100, 0))) {
      EXPECT_NE(a.kind, "stall") << a.detail;
    }
  }
}

TEST(AnomalyDetector, RssGrowthFlaggedAgainstWindowMinimum) {
  sk::AnomalyConfig cfg;
  cfg.window = 4;
  cfg.rss_growth_factor = 1.5;
  cfg.rss_growth_min_kb = 1000;
  sk::AnomalyDetector det(cfg);
  std::uint64_t sent = 0, frames = 0;
  for (int i = 0; i < 6; ++i) {
    sent += 10;
    frames += 40;
    EXPECT_TRUE(det.observe(snap_at(i * 3600.0, sent, frames, 10000)).empty()) << i;
  }
  sent += 10;
  frames += 40;
  auto found = det.observe(snap_at(7 * 3600.0, sent, frames, 25000));
  ASSERT_FALSE(found.empty());
  EXPECT_EQ(found.front().kind, "rss-growth");
  EXPECT_EQ(found.front().metric, "rss_kb");
}

// A month-scale soak's bundle stores legitimately fill toward capacity for
// weeks (59k resident copies by day 12 in the first month run), so raw RSS
// grows linearly far past any window-min factor. Growth explained by resident
// state is healthy; only RSS outpacing the stored bundles (KiB/bundle
// climbing) is a leak.
TEST(AnomalyDetector, StoreFillRssGrowthIsNotALeak) {
  sk::AnomalyConfig cfg;
  cfg.window = 4;
  cfg.rss_growth_min_kb = 1000;
  sk::AnomalyDetector det(cfg);
  std::uint64_t sent = 0, frames = 0, stored = 100;
  double t = 0;
  // Linear fill: +2000 bundles per interval at a flat ~1.3 KiB each on top of
  // 5 MiB of fixed overhead. Raw RSS ends 6.6x the window minimum.
  for (int i = 0; i < 20; ++i) {
    t += 6 * 3600.0;
    sent += 500;
    frames += 2000;
    stored += 2000;
    sk::MetricSnapshot s = snap_at(t, sent, frames, 5000 + (stored * 13) / 10);
    s.store_bundles = stored;
    for (const sk::Anomaly& a : det.observe(s)) {
      EXPECT_NE(a.kind, "rss-growth") << a.detail;
    }
  }
  // Now a genuine leak: stores hold flat while RSS keeps climbing.
  std::uint64_t rss = 5000 + (stored * 13) / 10;
  std::vector<sk::Anomaly> found;
  for (int i = 0; i < 12 && found.empty(); ++i) {
    t += 6 * 3600.0;
    sent += 500;
    frames += 2000;
    rss += 20000;
    sk::MetricSnapshot s = snap_at(t, sent, frames, rss);
    s.store_bundles = stored;
    for (const sk::Anomaly& a : det.observe(s)) {
      if (a.kind == "rss-growth") found.push_back(a);
    }
  }
  ASSERT_FALSE(found.empty());
  EXPECT_NE(found.front().detail.find("KiB per resident bundle"), std::string::npos)
      << found.front().detail;
}

TEST(Jsonl, EscapesAndRendersFlatObjects) {
  sk::JsonObject o;
  o.str("name", "line\nbreak \"quoted\"").count("n", 42).num("x", 1.5).boolean("ok", true);
  EXPECT_EQ(o.render(),
            "{\"name\":\"line\\nbreak \\\"quoted\\\"\",\"n\":42,\"x\":1.5,\"ok\":true}");

  std::string path = temp_dir("jsonl") + "/log.jsonl";
  std::filesystem::create_directories(std::filesystem::path(path).parent_path());
  {
    sk::JsonlWriter writer(path);
    ASSERT_TRUE(writer.ok());
    writer.write(o);
    writer.write(o);
  }
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line, o.render());
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
}

// --- time-scale regression tests from the soak audit ------------------------

TEST(SoakResumeCache, TicketsReMintOnlyOnFullHandshake) {
  // Five daily contacts with a 24 h resumption-ticket lifetime. The ticket
  // minted by a full handshake at contact k is still (just) valid at
  // contact k+1 but expired by k+2 — resumption does not refresh the
  // ticket, so the cadence is full, resume, full, resume, full. A re-mint
  // on resume would show 1 full handshake; a re-mint too rarely, 5.
  ss::Scheduler sched;
  ss::MpcNetwork net(sched, 2);
  sp::BootstrapService infra(su::to_bytes("soak-ca"));
  sc::Drbg rng_a(su::to_bytes("dev-a"));
  sc::Drbg rng_b(su::to_bytes("dev-b"));
  auto creds_a = infra.signup("alice", rng_a, 0.0);
  auto creds_b = infra.signup("bob", rng_b, 0.0);
  ASSERT_TRUE(creds_a && creds_b);
  sm::SosConfig cfg;
  cfg.scheme = "epidemic";
  cfg.resume_lifetime_s = 86400.0;
  sm::SosNode alice(sched, net.endpoint(0), std::move(*creds_a), cfg);
  sm::SosNode bob(sched, net.endpoint(1), std::move(*creds_b), cfg);
  bob.follow(alice.user_id());
  alice.start();
  bob.start();

  ss::ContactTrace trace;
  for (int k = 0; k < 5; ++k) {
    double t0 = static_cast<double>(k) * 86400.0 + 3600.0;
    ASSERT_TRUE(trace.add({t0, t0 + 600.0, 0, 1}));
    // Fresh content before each contact so the peers always connect.
    sched.schedule_at(t0 - 300.0, [&alice, k] {
      alice.publish(su::to_bytes("post " + std::to_string(k)));
    });
  }
  ss::TracePlayer player(sched, trace);
  player.on_contact_start = [&](std::uint32_t a, std::uint32_t b) {
    net.set_in_range(static_cast<ss::PeerId>(a), static_cast<ss::PeerId>(b), true);
  };
  player.on_contact_end = [&](std::uint32_t a, std::uint32_t b) {
    net.set_in_range(static_cast<ss::PeerId>(a), static_cast<ss::PeerId>(b), false);
  };
  player.start();
  sched.run_until(5 * 86400.0);

  EXPECT_EQ(bob.stats().sessions_established, 5u);
  EXPECT_EQ(bob.stats().full_handshakes, 3u);
  EXPECT_EQ(bob.stats().sessions_resumed, 2u);
  EXPECT_EQ(alice.stats().full_handshakes, 3u);
  EXPECT_EQ(alice.stats().sessions_resumed, 2u);
  EXPECT_GT(bob.stats().deliveries, 0u);
}

TEST(SoakProphet, MonthScaleAgingPrunesInsteadOfDenormalizing) {
  sm::ProphetScheme scheme;
  sp::UserId self{}, peer_a{}, peer_b{};
  self.bytes[0] = 1;
  peer_a.bytes[0] = 2;
  peer_b.bytes[0] = 3;
  std::set<sp::UserId> subs;
  sos::bundle::BundleStore store(16);

  sm::RoutingContext t0(self, subs, store, 0.0);
  scheme.on_encounter(t0, peer_a);
  EXPECT_GT(scheme.predictability(peer_a), 0.7);
  EXPECT_EQ(scheme.table_size(), 1u);

  // A month later gamma^(30 d / 30 min) ~= 5e-13: far below the pruning
  // floor. The entry must be gone, not a denormal costing summary bytes.
  sm::RoutingContext month(self, subs, store, 30.0 * 86400.0);
  scheme.on_encounter(month, peer_b);
  EXPECT_EQ(scheme.table_size(), 1u);
  EXPECT_EQ(scheme.predictability(peer_a), 0.0);
  double pb = scheme.predictability(peer_b);
  EXPECT_GT(pb, 0.7);
  EXPECT_EQ(std::fpclassify(pb), FP_NORMAL);
}

TEST(SoakProphet, TransitiveCandidatesBelowFloorNeverInserted) {
  // The transitive update used to create permanent near-zero entries for
  // every destination any peer had ever heard of. With the floor, a
  // candidate below it must not enter the table at all.
  sm::ProphetParams tiny_beta;
  tiny_beta.beta = 1e-10;  // transitive candidate ~5.6e-11 < p_floor
  sm::ProphetScheme scheme(tiny_beta);
  sm::ProphetScheme carrier;
  sp::UserId self{}, carrier_id{}, dest{};
  self.bytes[0] = 1;
  carrier_id.bytes[0] = 2;
  dest.bytes[0] = 3;
  std::set<sp::UserId> subs;
  sos::bundle::BundleStore store(16);
  sm::RoutingContext ctx(self, subs, store, 100.0);

  carrier.on_encounter(ctx, dest);  // carrier can reach dest (P ~0.75)
  scheme.on_peer_blob(carrier_id, su::ByteView(carrier.summary_blob(ctx)));
  scheme.on_encounter(ctx, carrier_id);

  EXPECT_EQ(scheme.table_size(), 1u);  // the carrier only, never dest
  EXPECT_GT(scheme.predictability(carrier_id), 0.7);
  EXPECT_EQ(scheme.predictability(dest), 0.0);
}

TEST(SoakTrust, CrlSizeReportsTheBoundedRevocationSet) {
  sp::TrustStore trust;
  EXPECT_EQ(trust.crl_size(), 0u);
  trust.add_revoked(7);
  trust.add_revoked(7);  // set semantics: no double counting
  EXPECT_EQ(trust.crl_size(), 1u);
  trust.update_crl({1, 2, 3});
  EXPECT_EQ(trust.crl_size(), 3u);
}

namespace {

/// Mobility probe: two far-apart stationary nodes; records every sample
/// time the encounter detector queries.
class ProbeMobility : public ss::MobilityModel {
 public:
  std::size_t node_count() const override { return 2; }
  ss::Vec2 position(std::size_t node, su::SimTime t) const override {
    times.insert(t);
    return node == 0 ? ss::Vec2{0, 0} : ss::Vec2{100000, 0};
  }
  mutable std::set<double> times;
};

}  // namespace

TEST(SoakDetector, TickTimesStayOnTheStartAnchoredGrid) {
  // The k-th tick must land at exactly start + k*tick (one multiplication),
  // not at an accumulated sum of ticks — over a month of 0.1 s ticks the
  // accumulated float error silently shifts every contact edge.
  ss::Scheduler sched;
  ProbeMobility mobility;
  ss::EncounterDetector detector(sched, mobility, 50.0, 0.1);
  const double start = 1000.5;
  const double until = start + 500.0;
  sched.schedule_at(start, [&] { detector.start(until); });
  sched.run_until(until + 10.0);

  ASSERT_GT(mobility.times.size(), 4000u);
  std::size_t k = 0;
  for (double t : mobility.times) {
    ASSERT_EQ(t, start + static_cast<double>(k) * 0.1) << "tick " << k;
    ++k;
  }
  EXPECT_LE(*mobility.times.rbegin(), until);
}

TEST(SoakDetector, RecordedTraceReplaysToTheIdenticalTrace) {
  // Long-horizon live-vs-recorded equivalence: replaying a recorded trace
  // through TracePlayer into a TraceRecorder reproduces the trace exactly
  // (same intervals, same edge times, same order).
  sd::ScenarioConfig config = small_config("interest", su::derive_seed(99, 1));
  config.nodes = 8;
  auto world = sd::record_world(config);
  ASSERT_GT(world->trace.size(), 0u);

  ss::Scheduler sched;
  ss::TraceRecorder recorder(sched);
  ss::TracePlayer player(sched, world->trace);
  player.on_contact_start = [&](std::uint32_t a, std::uint32_t b) {
    recorder.contact_start(a, b);
  };
  player.on_contact_end = [&](std::uint32_t a, std::uint32_t b) {
    recorder.contact_end(a, b);
  };
  player.start();
  sched.run_until(su::days(config.days) + 1.0);
  ss::ContactTrace again = recorder.finish();

  ASSERT_EQ(again.size(), world->trace.size());
  for (std::size_t i = 0; i < again.size(); ++i) {
    const ss::ContactInterval& x = world->trace.contacts()[i];
    const ss::ContactInterval& y = again.contacts()[i];
    EXPECT_EQ(x.start, y.start) << i;
    EXPECT_EQ(x.end, y.end) << i;
    EXPECT_EQ(x.a, y.a) << i;
    EXPECT_EQ(x.b, y.b) << i;
  }
}
