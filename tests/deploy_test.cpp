// Deployment harness tests: oracle metric formulas on hand-built records,
// report formatting, and end-to-end scenario invariants (determinism,
// security counters clean, epidemic-dominates-interest, figure-level sanity
// on a shortened Gainesville run).
#include <gtest/gtest.h>

#include "deploy/oracle.hpp"
#include "deploy/report.hpp"
#include "deploy/scenario.hpp"
#include "util/time.hpp"

namespace sd = sos::deploy;
namespace sp = sos::pki;
namespace su = sos::util;

namespace {
sp::UserId uid(const std::string& s) { return sp::user_id_from_name(s); }

/// Oracle with 2 posts by "pub", subscribers "s1" (gets both, 1-hop) and
/// "s2" (gets one, 2-hop).
sd::MetricsOracle tiny_oracle() {
  sd::MetricsOracle o;
  o.set_subscriptions({{uid("s1"), {uid("pub")}}, {uid("s2"), {uid("pub")}}});
  o.record_post({{uid("pub"), 1}, uid("pub"), 0.0, {100, 100}});
  o.record_post({{uid("pub"), 2}, uid("pub"), su::hours(1), {200, 200}});
  o.record_delivery({{uid("pub"), 1}, uid("s1"), su::hours(2), 1, {10, 10}});
  o.record_delivery({{uid("pub"), 2}, uid("s1"), su::hours(30), 1, {20, 20}});
  o.record_delivery({{uid("pub"), 1}, uid("s2"), su::hours(50), 2, {30, 30}});
  return o;
}
}  // namespace

TEST(Oracle, Scalars) {
  auto o = tiny_oracle();
  EXPECT_EQ(o.post_count(), 2u);
  EXPECT_EQ(o.delivery_count(), 3u);
  EXPECT_EQ(o.subscription_count(), 2u);
  EXPECT_NEAR(o.one_hop_fraction(), 2.0 / 3.0, 1e-9);
  // deliverable = 2 posts x 2 followers = 4; delivered = 3.
  EXPECT_NEAR(o.overall_delivery_ratio(), 0.75, 1e-9);
  auto hops = o.hop_histogram();
  EXPECT_EQ(hops[1], 2u);
  EXPECT_EQ(hops[2], 1u);
}

TEST(Oracle, DelayCdfSplitsByHops) {
  auto o = tiny_oracle();
  auto all = o.delay_cdf(false);
  auto one = o.delay_cdf(true);
  EXPECT_EQ(all.count(), 3u);
  EXPECT_EQ(one.count(), 2u);
  // delays: 2h, 29h, 50h (all); 2h, 29h (1-hop)
  EXPECT_NEAR(all.at(su::hours(24)), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(one.at(su::hours(24)), 0.5, 1e-9);
  EXPECT_NEAR(all.at(su::hours(94)), 1.0, 1e-9);
}

TEST(Oracle, SubscriptionRatioCdf) {
  auto o = tiny_oracle();
  auto cdf = o.subscription_ratio_cdf(false);
  ASSERT_EQ(cdf.count(), 2u);  // two subscriptions
  // s1: 2/2 = 1.0; s2: 1/2 = 0.5.
  EXPECT_NEAR(cdf.fraction_above(0.8), 0.5, 1e-9);
  EXPECT_NEAR(cdf.fraction_above(0.4), 1.0, 1e-9);
  auto one_hop = o.subscription_ratio_cdf(true);
  // 1-hop only: s1 keeps 1.0, s2 drops to 0.
  EXPECT_NEAR(one_hop.fraction_above(0.8), 0.5, 1e-9);
  EXPECT_NEAR(one_hop.at(0.0), 0.5, 1e-9);
}

TEST(Oracle, SubscriptionWithNoPostsIsExcluded) {
  sd::MetricsOracle o;
  o.set_subscriptions({{uid("s1"), {uid("silent")}}});
  EXPECT_EQ(o.subscription_ratio_cdf(false).count(), 0u);
}

TEST(Oracle, ActivityMaps) {
  auto o = tiny_oracle();
  auto blue = o.creation_map(1000, 1000, 10, 10);
  auto red = o.dissemination_map(1000, 1000, 10, 10);
  EXPECT_EQ(blue.total(), 2u);
  EXPECT_EQ(red.total(), 0u);  // no carries recorded in tiny_oracle
  o.record_carry({{uid("pub"), 1}, uid("s1"), 1.0, {500, 500}});
  EXPECT_EQ(o.dissemination_map(1000, 1000, 10, 10).total(), 1u);
}

TEST(Report, FormatHelpers) {
  EXPECT_EQ(sd::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(sd::fmt_pct(0.5, 1), "50.0%");
  auto row = sd::compare_row("x", 1.0, 2.0, 1);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[1], "1.0");
  EXPECT_EQ(row[2], "2.0");
}

// --- scenario end-to-end --------------------------------------------------

namespace {
sd::ScenarioConfig short_config(const std::string& scheme, std::uint64_t seed = 42) {
  auto config = sd::gainesville_config(scheme, seed);
  config.days = 2.0;
  config.total_posts_target = 80.0;
  return config;
}
}  // namespace

TEST(Scenario, ProducesTrafficAndDeliveries) {
  auto result = sd::run_scenario(short_config("interest"));
  EXPECT_GT(result.oracle.post_count(), 40u);
  EXPECT_GT(result.oracle.delivery_count(), 0u);
  EXPECT_GT(result.contacts, 0u);
  EXPECT_GT(result.totals.sessions_established, 0u);
  EXPECT_EQ(result.oracle.subscription_count(), 46u);  // Fig 4a graph
  EXPECT_EQ(result.social.edge_count(), 46u);
}

TEST(Scenario, SecurityCountersCleanInHonestRun) {
  auto result = sd::run_scenario(short_config("interest"));
  EXPECT_EQ(result.totals.bundle_sig_rejected, 0u);
  EXPECT_EQ(result.totals.bundle_cert_rejected, 0u);
  EXPECT_EQ(result.totals.handshake_cert_rejected, 0u);
  EXPECT_EQ(result.totals.decrypt_failures, 0u);
}

TEST(Scenario, DeterministicForSameSeed) {
  auto r1 = sd::run_scenario(short_config("interest", 7));
  auto r2 = sd::run_scenario(short_config("interest", 7));
  EXPECT_EQ(r1.oracle.post_count(), r2.oracle.post_count());
  EXPECT_EQ(r1.oracle.delivery_count(), r2.oracle.delivery_count());
  EXPECT_EQ(r1.contacts, r2.contacts);
  EXPECT_EQ(r1.wire_bytes, r2.wire_bytes);
}

TEST(Scenario, DifferentSeedsDiffer) {
  auto r1 = sd::run_scenario(short_config("interest", 1));
  auto r2 = sd::run_scenario(short_config("interest", 2));
  EXPECT_NE(r1.wire_bytes, r2.wire_bytes);
}

TEST(Scenario, EpidemicDeliversAtLeastAsMuchAsInterest) {
  auto epidemic = sd::run_scenario(short_config("epidemic"));
  auto interest = sd::run_scenario(short_config("interest"));
  EXPECT_GE(epidemic.oracle.delivery_count(), interest.oracle.delivery_count());
  // ...and pays for it in transmissions.
  EXPECT_GE(epidemic.totals.bundles_sent, interest.totals.bundles_sent);
}

TEST(Scenario, DirectDeliveryIsAllOneHop) {
  auto result = sd::run_scenario(short_config("direct"));
  if (result.oracle.delivery_count() > 0) {
    EXPECT_DOUBLE_EQ(result.oracle.one_hop_fraction(), 1.0);
  }
}

TEST(Scenario, HopCountsAreConsistent) {
  auto result = sd::run_scenario(short_config("epidemic"));
  for (const auto& d : result.oracle.deliveries()) {
    EXPECT_GE(d.hops, 1);
    EXPECT_LT(d.hops, 10);
  }
}

TEST(Scenario, CustomSocialGraphIsHonored) {
  auto config = short_config("interest");
  sos::graph::Digraph g(10);
  g.add_edge(1, 0);  // only one subscription
  config.social = g;
  auto result = sd::run_scenario(config);
  EXPECT_EQ(result.oracle.subscription_count(), 1u);
  // All deliveries can only be user1 <- user0 posts.
  for (const auto& d : result.oracle.deliveries())
    EXPECT_EQ(d.id.origin, sp::user_id_from_name("user0"));
}

TEST(Scenario, ScalesToMoreNodes) {
  auto config = short_config("interest");
  config.nodes = 20;
  config.days = 1.0;
  auto result = sd::run_scenario(config);
  EXPECT_GT(result.oracle.post_count(), 0u);
  EXPECT_GT(result.oracle.subscription_count(), 0u);  // sampled community graph
}
