// sos-lint fixture: MUST trigger [banned-entropy].
// Ambient entropy / wall-clock sources break seed-determinism: two runs of
// the same scenario would diverge. Not compiled — parsed by the linter.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned jitter_ms() {
  return static_cast<unsigned>(std::rand()) % 100u;  // finding: rand
}

unsigned pick_seed() {
  std::random_device rd;  // finding: hardware entropy
  return rd();
}

long stamp_now() {
  auto now = std::chrono::system_clock::now();  // finding: wall clock
  (void)now;
  return time(nullptr);  // finding: libc wall clock
}
