// sos-lint fixture: MUST trigger [zeroize-secret].
// A struct holding key material with no zeroizing destructor leaves the
// secret bytes readable in freed memory (core dumps, swap, reuse). Not
// compiled — parsed by the linter.
#include <array>
#include <cstdint>

struct SessionKeys {
  std::array<std::uint8_t, 32> secret{};   // finding: never wiped
  std::uint8_t send_key[32] = {0};
  std::uint64_t counter = 0;
};
