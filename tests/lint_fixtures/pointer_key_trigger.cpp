// sos-lint fixture: MUST trigger [pointer-key].
// An ordered container keyed by pointer iterates in allocation-address
// order — nondeterministic across runs even with identical seeds. Not
// compiled — parsed by the linter.
#include <map>
#include <set>

struct Node {
  int id = 0;
};

struct Registry {
  std::map<Node*, int> rank_by_node;  // finding: pointer-keyed map
  std::set<const Node*> active;       // finding: pointer-keyed set
};
