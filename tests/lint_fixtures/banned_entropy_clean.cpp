// sos-lint fixture: MUST pass [banned-entropy].
// Seed-derived randomness, `time` as an ordinary identifier, and one
// justified exemption. Not compiled — parsed by the linter.
#include <cstdint>

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index);

std::uint64_t cell_seed(std::uint64_t base, std::uint64_t cell) {
  return derive_seed(base, cell);  // splitmix64 over the scenario seed
}

void advance(double time);  // `time` as identifier, not a call: fine

double step(double time) {
  advance(time);
  return time + 1.0;
}

long boot_stamp() {
  // sos-lint: allow(banned-entropy) operator-facing log banner only; the
  // value never reaches metrics, wire bytes, traces, or reports.
  return time(nullptr);
}
