// sos-lint fixture: MUST trigger [seam-completeness].
// A seam class (in the fixture config: SeamFixture) with a member that
// neither detach() nor attach() — nor any method they call — ever touches:
// that state silently stays behind when a node crosses an episode-shard
// boundary. Not compiled — parsed by the linter.
#include <cstddef>

struct Scheduler;

class SeamFixture {
 public:
  void detach() {
    sched_ = nullptr;
    drop_sessions();
  }
  void attach(Scheduler& sched) {
    sched_ = &sched;
    rearm();
  }

 private:
  void drop_sessions() { sessions_ = 0; }
  void rearm() { pending_event_ = next_deadline_; }

  Scheduler* sched_ = nullptr;
  std::size_t sessions_ = 0;
  unsigned long pending_event_ = 0;
  double next_deadline_ = 0.0;
  std::size_t forgotten_counter_ = 0;  // finding: never crosses the seam
};
