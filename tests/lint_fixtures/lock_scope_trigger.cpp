// sos-lint fixture: MUST trigger [lock-scope].
// Firing a callback or touching the scheduler while a scoped lock is alive
// is the classic re-entrant deadlock seed: the callee can call back into
// the locking layer (or block on another thread that needs this lock).
// Not compiled — parsed by the linter.
#include <functional>
#include <mutex>

struct Scheduler {
  unsigned long schedule_at(double t, std::function<void()> fn);
};

struct Queue {
  std::mutex mu;
  std::function<void()> on_drained;
  Scheduler* sched = nullptr;
  int depth = 0;

  void drain() {
    std::lock_guard<std::mutex> lock(mu);
    depth = 0;
    on_drained();  // finding: callback invoked under mu
    sched->schedule_at(1.0, [] {});  // finding: scheduler call under mu
  }
};
