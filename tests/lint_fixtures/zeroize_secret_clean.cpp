// sos-lint fixture: MUST pass [zeroize-secret].
// Key structs wipe their material in the destructor (or carry a justified
// exemption). Not compiled — parsed by the linter.
#include <array>
#include <cstdint>

namespace util {
void secure_wipe(void* p, unsigned long n);
}

struct SessionKeys {
  std::array<std::uint8_t, 32> secret{};
  std::uint8_t send_key[32] = {0};

  ~SessionKeys() {
    util::secure_wipe(secret.data(), secret.size());
    util::secure_wipe(send_key, sizeof(send_key));
  }
};

struct PublicMirror {
  // sos-lint: allow(zeroize-secret) holds the PUBLIC half only; the name
  // matches the secret pattern but the bytes are published on the wire.
  std::array<std::uint8_t, 32> master_fingerprint_key_{};
};
