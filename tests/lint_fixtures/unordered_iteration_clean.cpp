// sos-lint fixture: MUST pass [unordered-iteration].
// Ordered-container iteration, unordered membership tests without
// iteration, and a justified exemption are all fine. Not compiled.
#include <map>
#include <unordered_set>

void consume(int v);

void tally_sorted(const std::map<int, int>& counts) {
  for (const auto& kv : counts) consume(kv.second);  // ordered: fine
}

bool seen_before(const std::unordered_set<int>& seen, int id) {
  return seen.count(id) > 0;  // membership only, no iteration: fine
}

void drain_in_any_order(std::unordered_set<int>& pending) {
  // sos-lint: allow(unordered-iteration) order-insensitive fold: every
  // element is summed exactly once, so bucket order cannot reach output.
  for (int v : pending) consume(v);
}

void emit_report() {
  tally_sorted({});
  seen_before({}, 1);
}
