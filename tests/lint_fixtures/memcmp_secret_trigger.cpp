// sos-lint fixture: MUST trigger [memcmp-secret].
// Early-exit comparison of secret material leaks a timing oracle: the
// number of matching leading bytes sets the comparison's running time.
// Not compiled — parsed by the linter.
#include <array>
#include <cstring>

bool proof_matches(const unsigned char* expect_mac,
                   const unsigned char* got_mac) {
  return std::memcmp(expect_mac, got_mac, 32) == 0;  // finding: raw memcmp
}

bool resume_key_matches(const std::array<unsigned char, 32>& cached_secret,
                        const std::array<unsigned char, 32>& offered) {
  return cached_secret == offered;  // finding: operator== on a secret
}
