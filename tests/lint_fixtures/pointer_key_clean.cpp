// sos-lint fixture: MUST pass [pointer-key].
// Keying by a stable id (pointer *values* are fine), plus one justified
// exemption. Not compiled — parsed by the linter.
#include <cstdint>
#include <map>

struct Node {
  std::uint64_t id = 0;
};

struct Registry {
  std::map<std::uint64_t, Node*> node_by_id;  // pointer value, stable key
  // sos-lint: allow(pointer-key) scratch index inside one pass; it is
  // never iterated, only probed, so address order cannot reach output.
  std::map<Node*, int> scratch_rank;
};
