// sos-lint fixture: MUST pass [seam-completeness].
// Every member is either referenced in the detach()/attach() closure
// (directly or through a same-class method the seam calls) or carries a
// justified allow(seam-exempt) annotation. Not compiled.
#include <cstddef>

struct Scheduler;

class SeamFixture {
 public:
  void detach() {
    sched_ = nullptr;
    drop_sessions();
  }
  void attach(Scheduler& sched) {
    sched_ = &sched;
    rearm();
  }

 private:
  void drop_sessions() { sessions_ = 0; }
  void rearm() { pending_event_ = next_deadline_; }

  Scheduler* sched_ = nullptr;
  std::size_t sessions_ = 0;
  unsigned long pending_event_ = 0;    // via rearm(), called from attach()
  double next_deadline_ = 0.0;         // read by rearm()
  // sos-lint: allow(seam-exempt) construction-time constant: set once in
  // the constructor and never mutated, so shard transfer cannot lose it.
  std::size_t capacity_ = 64;
};
