// sos-lint fixture: MUST pass [memcmp-secret].
// Constant-time comparison for secrets; raw memcmp only on public data
// with a justified annotation. Not compiled — parsed by the linter.
#include <array>
#include <cstring>

namespace util {
bool ct_equal(const unsigned char* a, const unsigned char* b, unsigned n);
}

bool proof_matches(const unsigned char* expect_mac,
                   const unsigned char* got_mac) {
  return util::ct_equal(expect_mac, got_mac, 32);  // constant time: fine
}

bool headers_equal(const unsigned char* a, const unsigned char* b) {
  // sos-lint: allow(memcmp-public) frame headers travel in plaintext on
  // the wire; both operands are attacker-visible already.
  return std::memcmp(a, b, 4) == 0;
}
