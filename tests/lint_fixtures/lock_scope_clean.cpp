// sos-lint fixture: MUST pass [lock-scope].
// The safe shapes: mutate guarded state under the lock, then make the
// callback/scheduler calls after the critical section ends (snapshot what
// they need first), or annotate a site proven non-re-entrant. Not compiled.
#include <functional>
#include <mutex>

struct Scheduler {
  unsigned long schedule_at(double t, std::function<void()> fn);
};

struct Queue {
  std::mutex mu;
  std::function<void()> on_drained;
  Scheduler* sched = nullptr;
  int depth = 0;

  void drain() {
    {
      std::lock_guard<std::mutex> lock(mu);
      depth = 0;
    }
    on_drained();  // lock already released: fine
    sched->schedule_at(1.0, [] {});
  }

  void drain_annotated() {
    std::lock_guard<std::mutex> lock(mu);
    depth = 0;
    // sos-lint: allow(lock-scope) on_drained is set once before any thread
    // starts and never re-enters Queue; holding mu across it cannot deadlock.
    on_drained();
  }
};
