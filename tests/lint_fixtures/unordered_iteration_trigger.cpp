// sos-lint fixture: MUST trigger [unordered-iteration].
// Iterating a hash table in code reachable from emission (in the fixture
// config every function here is an emission root) leaks libstdc++ bucket
// order into deterministic output. Not compiled — parsed by the linter.
#include <unordered_map>
#include <unordered_set>

void consume(int v);

void tally_counts(const std::unordered_map<int, int>& counts) {
  std::unordered_map<int, int> histogram = counts;
  for (const auto& kv : histogram) {  // finding: hash order reaches output
    consume(kv.second);
  }
}

void walk_members(const std::unordered_set<int>& members) {
  std::unordered_set<int> live = members;
  for (auto it = live.begin(); it != live.end(); ++it) {  // finding: same
    consume(*it);
  }
}

void emit_report() {
  tally_counts({});
  walk_members({});
}
