// AlleyOop application-layer tests: post/action records, the local
// database (timeline, action-log replay, persistence snapshot, pending
// sync queue), the cloud service, and the app wired over a live SOS stack.
#include <gtest/gtest.h>

#include "alleyoop/app.hpp"
#include "alleyoop/cloud.hpp"
#include "alleyoop/local_db.hpp"
#include "alleyoop/post.hpp"
#include "crypto/drbg.hpp"
#include "pki/bootstrap.hpp"
#include "sim/multipeer.hpp"
#include "sim/scheduler.hpp"

namespace sa = sos::alleyoop;
namespace sc = sos::crypto;
namespace sm = sos::mw;
namespace sp = sos::pki;
namespace ss = sos::sim;
namespace su = sos::util;

namespace {
sa::Post make_post(const std::string& author, std::uint32_t num, double at = 0,
                   const std::string& text = "hi") {
  sa::Post p;
  p.author = sp::user_id_from_name(author);
  p.author_name = author;
  p.msg_num = num;
  p.created_at = at;
  p.text = text;
  return p;
}
}  // namespace

TEST(Post, CodecRoundTrip) {
  auto p = make_post("alice", 3, 42.5, "hello world");
  auto d = sa::Post::decode(p.encode());
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->author, p.author);
  EXPECT_EQ(d->author_name, "alice");
  EXPECT_EQ(d->msg_num, 3u);
  EXPECT_DOUBLE_EQ(d->created_at, 42.5);
  EXPECT_EQ(d->text, "hello world");
}

TEST(Post, DecodeRejectsGarbage) {
  EXPECT_FALSE(sa::Post::decode(su::to_bytes("junk")).has_value());
}

TEST(SocialAction, CodecRoundTrip) {
  sa::SocialAction a{sa::ActionKind::Unfollow, sp::user_id_from_name("a"),
                     sp::user_id_from_name("b"), 9.0};
  auto d = sa::SocialAction::decode(a.encode());
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->kind, sa::ActionKind::Unfollow);
  EXPECT_EQ(d->actor, a.actor);
  EXPECT_EQ(d->target, a.target);
}

TEST(LocalDb, PostStorageAndTimeline) {
  sa::LocalDb db;
  EXPECT_TRUE(db.put_post(make_post("alice", 1, 10)));
  EXPECT_FALSE(db.put_post(make_post("alice", 1, 10)));  // duplicate
  EXPECT_TRUE(db.put_post(make_post("bob", 1, 30)));
  EXPECT_TRUE(db.put_post(make_post("alice", 2, 20)));
  auto tl = db.timeline();
  ASSERT_EQ(tl.size(), 3u);
  EXPECT_EQ(tl[0].author_name, "bob");  // newest first
  EXPECT_EQ(tl[2].msg_num, 1u);
  EXPECT_EQ(db.posts_by(sp::user_id_from_name("alice")).size(), 2u);
}

TEST(LocalDb, ActionLogReplay) {
  sa::LocalDb db;
  auto me = sp::user_id_from_name("me");
  auto a = sp::user_id_from_name("a");
  auto b = sp::user_id_from_name("b");
  db.put_action({sa::ActionKind::Follow, me, a, 1});
  db.put_action({sa::ActionKind::Follow, me, b, 2});
  db.put_action({sa::ActionKind::Unfollow, me, a, 3});
  auto following = db.following_of(me);
  EXPECT_EQ(following.count(a), 0u);
  EXPECT_EQ(following.count(b), 1u);
}

TEST(LocalDb, PendingSyncQueue) {
  sa::LocalDb db;
  db.put_post(make_post("me", 1));
  db.mark_local_post(sp::user_id_from_name("me"), 1);
  EXPECT_EQ(db.pending_sync_count(), 1u);
  auto pending = db.take_pending_posts();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(db.pending_sync_count(), 0u);
}

TEST(LocalDb, SerializeRoundTrip) {
  sa::LocalDb db;
  db.put_post(make_post("alice", 1, 5, "persistent"));
  db.put_post(make_post("bob", 2, 6));
  db.put_action({sa::ActionKind::Follow, sp::user_id_from_name("alice"),
                 sp::user_id_from_name("bob"), 1});
  db.mark_local_post(sp::user_id_from_name("alice"), 1);
  auto restored = sa::LocalDb::deserialize(db.serialize());
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->post_count(), 2u);
  EXPECT_EQ(restored->action_log().size(), 1u);
  EXPECT_EQ(restored->pending_sync_count(), 1u);
  auto p = restored->get_post(sp::user_id_from_name("alice"), 1);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->text, "persistent");
}

TEST(LocalDb, DeserializeRejectsGarbage) {
  EXPECT_FALSE(sa::LocalDb::deserialize(su::to_bytes("nope")).has_value());
  sa::LocalDb db;
  auto bytes = db.serialize();
  bytes.push_back(1);  // trailing junk
  EXPECT_FALSE(sa::LocalDb::deserialize(bytes).has_value());
}

TEST(Cloud, PushPullRespectsFollowGraph) {
  sa::CloudService cloud;
  auto alice = sp::user_id_from_name("alice");
  auto bob = sp::user_id_from_name("bob");
  [[maybe_unused]] auto carol = sp::user_id_from_name("carol");
  cloud.push_posts({make_post("alice", 1), make_post("alice", 2), make_post("carol", 1)});
  cloud.push_actions({{sa::ActionKind::Follow, bob, alice, 0}});
  auto pulled = cloud.pull_posts(bob, {});
  ASSERT_EQ(pulled.size(), 2u);  // only alice's (bob doesn't follow carol)
  // Incremental pull.
  auto newer = cloud.pull_posts(bob, {{alice, 1}});
  ASSERT_EQ(newer.size(), 1u);
  EXPECT_EQ(newer[0].msg_num, 2u);
  EXPECT_EQ(cloud.followers_of(alice).count(bob), 1u);
}

TEST(Cloud, UnfollowStopsPull) {
  sa::CloudService cloud;
  auto alice = sp::user_id_from_name("alice");
  auto bob = sp::user_id_from_name("bob");
  cloud.push_posts({make_post("alice", 1)});
  cloud.push_actions({{sa::ActionKind::Follow, bob, alice, 0}});
  cloud.push_actions({{sa::ActionKind::Unfollow, bob, alice, 1}});
  EXPECT_TRUE(cloud.pull_posts(bob, {}).empty());
}

// --- App over a live SOS stack ------------------------------------------------

namespace {
struct AppBed {
  ss::Scheduler sched;
  sp::BootstrapService infra{su::to_bytes("app-bed")};
  ss::MpcNetwork net{sched, 2};
  sa::CloudService cloud;
  std::unique_ptr<sm::SosNode> n0, n1;
  std::unique_ptr<sa::App> a0, a1;

  AppBed() {
    sc::Drbg d0(su::to_bytes("app-d0")), d1(su::to_bytes("app-d1"));
    sm::SosConfig config;
    config.maintenance_interval_s = 0;
    n0 = std::make_unique<sm::SosNode>(sched, net.endpoint(0),
                                       *infra.signup("zoe", d0, 0), config);
    n1 = std::make_unique<sm::SosNode>(sched, net.endpoint(1),
                                       *infra.signup("yann", d1, 0), config);
    a0 = std::make_unique<sa::App>(*n0, &cloud);
    a1 = std::make_unique<sa::App>(*n1, &cloud);
    n0->start();
    n1->start();
    sched.run_all();
  }
};
}  // namespace

TEST(App, PostSavesLocallyAndNumbersSequentially) {
  AppBed bed;
  auto p1 = bed.a0->post("first");
  auto p2 = bed.a0->post("second");
  EXPECT_EQ(p1.msg_num, 1u);
  EXPECT_EQ(p2.msg_num, 2u);
  EXPECT_EQ(bed.a0->timeline().size(), 2u);
  EXPECT_EQ(bed.a0->db().pending_sync_count(), 2u);
}

TEST(App, DtnDeliveryPopulatesFollowerTimeline) {
  AppBed bed;
  bed.a1->follow(bed.a0->user_id());
  bed.a0->post("dtn hello");
  int notified = 0;
  bed.a1->on_new_post = [&](const sa::Post& p) {
    ++notified;
    EXPECT_EQ(p.text, "dtn hello");
    EXPECT_EQ(p.author_name, "zoe");  // name taken from the origin cert
  };
  bed.net.set_in_range(0, 1, true);
  bed.sched.run_all();
  EXPECT_EQ(notified, 1);
  EXPECT_EQ(bed.a1->dtn_posts_received(), 1u);
  ASSERT_EQ(bed.a1->timeline().size(), 1u);
}

TEST(App, CloudSyncPushesAndPulls) {
  AppBed bed;
  // Both users follow each other but never meet; the cloud bridges them
  // when the Internet is available.
  bed.a0->follow(bed.a1->user_id());
  bed.a1->follow(bed.a0->user_id());
  bed.a0->post("from zoe");
  bed.a1->post("from yann");
  bed.a0->sync_with_cloud();  // push zoe's post + follow actions
  bed.a1->sync_with_cloud();  // push yann's, pull zoe's
  bed.a0->sync_with_cloud();  // pull yann's
  EXPECT_EQ(bed.a0->timeline().size(), 2u);
  EXPECT_EQ(bed.a1->timeline().size(), 2u);
  EXPECT_EQ(bed.cloud.post_count(), 2u);
}

TEST(App, DtnAndCloudDeduplicate) {
  AppBed bed;
  bed.a1->follow(bed.a0->user_id());
  bed.a0->post("once only");
  // Deliver via D2D first...
  bed.net.set_in_range(0, 1, true);
  bed.sched.run_all();
  // ...then also via the cloud.
  bed.a0->sync_with_cloud();
  bed.a1->sync_with_cloud();
  EXPECT_EQ(bed.a1->timeline().size(), 1u);  // no duplicate entry
}

TEST(App, ForgedAuthorNameCannotSpoofTimeline) {
  // A publisher lies in the payload ("author_name": someone else); the app
  // must normalize identity from the signed envelope + certificate.
  AppBed bed;
  bed.a1->follow(bed.a0->user_id());
  sa::Post lie;
  lie.author = sp::user_id_from_name("president");
  lie.author_name = "president";
  lie.msg_num = 99;
  lie.text = "trust me";
  bed.n0->publish(lie.encode(), sos::bundle::ContentType::SocialPost);
  std::string seen_name;
  bed.a1->on_new_post = [&](const sa::Post& p) { seen_name = p.author_name; };
  bed.net.set_in_range(0, 1, true);
  bed.sched.run_all();
  EXPECT_EQ(seen_name, "zoe");  // envelope identity wins
  auto posts = bed.a1->db().posts_by(bed.a0->user_id());
  ASSERT_EQ(posts.size(), 1u);
  EXPECT_EQ(posts[0].msg_num, 1u);  // envelope msg_num wins over payload's 99
}
