// Partitioned replay suite (`ctest -L sweep`): the EpisodeGraph and
// ContactDag partition invariants, the determinism pins the engines' whole
// value rests on — episode replay AND sub-episode strand replay at any
// worker count are bitwise identical to the single-scheduler replay — and
// the cross-segment state handoffs (a bundle picked up in episode k is
// delivered in episode k+1, and a bundle crosses three contact strands
// inside one episode, through the SosNode detach/attach seam).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <vector>

#include "deploy/replay.hpp"
#include "deploy/sweep.hpp"
#include "sim/episode.hpp"
#include "sim/mobility.hpp"
#include "sim/scheduler.hpp"
#include "sim/subepisode.hpp"
#include "util/rng.hpp"

namespace sd = sos::deploy;
namespace sg = sos::graph;
namespace ss = sos::sim;
namespace su = sos::util;

namespace {

ss::ContactTrace make_trace(std::vector<ss::ContactInterval> contacts) {
  ss::ContactTrace t;
  for (const auto& c : contacts) EXPECT_TRUE(t.add(c));
  return t;
}

/// The metrics that must be bitwise identical across replay engines.
struct Fingerprint {
  std::size_t posts, deliveries, carries;
  std::uint64_t contacts, wire_frames, wire_bytes, connections, frames_lost;
  std::uint64_t bundles_sent, bundles_received, sessions, full_handshakes, resumed;
  std::uint64_t ecdh, cache_hits, cache_misses, batch_verifies, interrupted, duplicates;
  bool operator==(const Fingerprint&) const = default;
};

Fingerprint fingerprint(const sd::ScenarioResult& r) {
  return {r.oracle.post_count(),
          r.oracle.delivery_count(),
          r.oracle.carry_count(),
          r.contacts,
          r.wire_frames,
          r.wire_bytes,
          r.connections,
          r.frames_lost,
          r.totals.bundles_sent,
          r.totals.bundles_received,
          r.totals.sessions_established,
          r.totals.full_handshakes,
          r.totals.sessions_resumed,
          r.totals.ecdh_ops,
          r.totals.bundle_sig_cache_hits,
          r.totals.bundle_sig_cache_misses,
          r.totals.bundle_batch_verifies,
          r.totals.transfers_interrupted,
          r.totals.duplicates_ignored};
}

}  // namespace

// --- EpisodeGraph partition invariants --------------------------------------

TEST(EpisodeGraph, OverlappingContactsSharingANodeFuse) {
  // (0,1) and (1,2) overlap at node 1: their events interleave on node 1's
  // timeline, so they must live on one scheduler shard.
  auto trace = make_trace({{0, 100, 0, 1}, {50, 150, 1, 2}});
  auto graph = ss::EpisodeGraph::partition(trace, 4, 1000);
  ASSERT_EQ(graph.contact_episode_count(), 1u);
  const ss::Episode& e = graph.episodes()[0];
  EXPECT_EQ(e.nodes, (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(e.contacts.size(), 2u);
  EXPECT_DOUBLE_EQ(e.first_start, 0.0);
  EXPECT_DOUBLE_EQ(e.last_end, 150.0);
}

TEST(EpisodeGraph, ConcurrentDisjointPairsStayParallel) {
  // (0,1) and (2,3) overlap in time but share no node: independent episodes.
  auto trace = make_trace({{0, 100, 0, 1}, {10, 90, 2, 3}});
  auto graph = ss::EpisodeGraph::partition(trace, 4, 1000);
  ASSERT_EQ(graph.contact_episode_count(), 2u);
  EXPECT_TRUE(graph.episodes()[0].deps.empty());
  EXPECT_TRUE(graph.episodes()[1].deps.empty());
  EXPECT_GT(graph.parallelism(), 1.5);
}

TEST(EpisodeGraph, SequentialContactsOfANodeChainViaDeps) {
  // Node 1 meets node 0, then later node 2: two episodes, the second
  // depending on the first (node 1's state is handed across the seam).
  auto trace = make_trace({{0, 100, 0, 1}, {200, 300, 1, 2}});
  auto graph = ss::EpisodeGraph::partition(trace, 3, 1000);
  ASSERT_EQ(graph.contact_episode_count(), 2u);
  EXPECT_TRUE(graph.episodes()[0].deps.empty());
  EXPECT_EQ(graph.episodes()[1].deps, (std::vector<std::size_t>{0}));
}

TEST(EpisodeGraph, NodeWindowOverlapFusesClusters) {
  // Cluster A spans [0, 100] through (2,3); node 1's second contact starts
  // at t=50, inside A's span, while its first contact (in A) ended at 30.
  // Node 1 cannot be attached to two schedulers over [50, 100], so the
  // clusters must fuse even though no two contacts overlap at a shared node.
  auto trace = make_trace({{0, 30, 1, 2}, {20, 100, 2, 3}, {50, 60, 0, 1}});
  auto graph = ss::EpisodeGraph::partition(trace, 4, 1000);
  EXPECT_EQ(graph.contact_episode_count(), 1u);
  EXPECT_EQ(graph.episodes()[0].nodes, (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(EpisodeGraph, TailEpisodeCoversEveryNode) {
  auto trace = make_trace({{0, 100, 0, 1}});
  auto graph = ss::EpisodeGraph::partition(trace, 5, 1000);
  ASSERT_EQ(graph.episodes().size(), graph.contact_episode_count() + 1);
  const ss::Episode& tail = graph.episodes().back();
  EXPECT_EQ(tail.nodes.size(), 5u);  // idle nodes 2..4 included
  EXPECT_TRUE(tail.contacts.empty());
  EXPECT_DOUBLE_EQ(tail.last_end, 1000.0);
  EXPECT_EQ(tail.deps, (std::vector<std::size_t>{0}));
}

TEST(EpisodeGraph, EveryNodeTimelineIsCoveredExactlyOncePerStep) {
  // Random-ish structured trace: each contact appears in exactly one
  // episode, and each node's episode windows are disjoint and ordered.
  su::Rng rng(7);
  std::vector<ss::ContactInterval> contacts;
  for (int i = 0; i < 200; ++i) {
    double start = rng.uniform(0, 5000);
    std::uint32_t a = static_cast<std::uint32_t>(rng.below(12));
    std::uint32_t b = static_cast<std::uint32_t>(rng.below(12));
    if (a == b) continue;
    contacts.push_back({start, start + rng.uniform(10, 400), a, b});
  }
  auto trace = make_trace(contacts);
  auto graph = ss::EpisodeGraph::partition(trace, 12, 6000);

  std::set<std::size_t> seen;
  for (const auto& e : graph.episodes()) {
    for (std::size_t ci : e.contacts) EXPECT_TRUE(seen.insert(ci).second);
  }
  EXPECT_EQ(seen.size(), trace.size());

  // Per node: windows (first contact start .. episode global end) of its
  // episodes, in dependency order, never overlap.
  for (std::uint32_t node = 0; node < 12; ++node) {
    std::vector<std::pair<double, double>> windows;  // (node first start, end)
    for (const auto& e : graph.episodes()) {
      if (e.contacts.empty()) continue;
      double first = -1;
      for (std::size_t ci : e.contacts) {
        const auto& c = trace.contacts()[ci];
        if (c.a == node || c.b == node) {
          if (first < 0 || c.start < first) first = c.start;
        }
      }
      if (first >= 0) windows.push_back({first, e.last_end});
    }
    std::sort(windows.begin(), windows.end());
    for (std::size_t i = 1; i < windows.size(); ++i) {
      EXPECT_GE(windows[i].first, windows[i - 1].second)
          << "node " << node << " window " << i << " starts inside the previous episode";
    }
  }
}

// --- ContactDag (sub-episode) partition invariants ---------------------------

TEST(ContactDag, SpanFusionIsDroppedButOverlapFusionStays) {
  // The exact trace EpisodeGraph.NodeWindowOverlapFusesClusters must fuse
  // into ONE episode splits into TWO strand tasks: (0,1)@[50,60] overlaps
  // no contact at a shared node, and node 1 detaches at t=30 — well before
  // its next contact at 50 — so span overlap alone forces nothing.
  auto trace = make_trace({{0, 30, 1, 2}, {20, 100, 2, 3}, {50, 60, 0, 1}});
  auto graph = ss::EpisodeGraph::partition(trace, 4, 1000);
  EXPECT_EQ(graph.contact_episode_count(), 1u);
  auto dag = ss::ContactDag::partition(trace, 4, 1000);
  ASSERT_EQ(dag.contact_task_count(), 2u);
  const ss::ContactTask& a = dag.tasks()[0];
  const ss::ContactTask& b = dag.tasks()[1];
  EXPECT_EQ(a.contacts, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(b.contacts, (std::vector<std::size_t>{2}));
  // Node 1's strand in A ends at 30, its strand in B starts at 50: a real
  // gap, crossed by the chain dep that hands node 1's state to B's shard.
  ASSERT_EQ(a.strands.size(), 3u);
  EXPECT_EQ(a.strands[0].node, 1u);
  EXPECT_DOUBLE_EQ(a.strands[0].last_end, 30.0);
  EXPECT_EQ(b.deps, (std::vector<std::size_t>{0}));
  // The two spans still overlap in sim time — concurrency the episode
  // engine cannot see (its parallelism here is exactly 1.0).
  EXPECT_EQ(dag.width(), 2u);
}

TEST(ContactDag, TouchingContactsSharingANodeFuse) {
  // Back-to-back contacts of node 1: both produce events at t=100, which
  // must land on one scheduler shard — touching intervals fuse, which is
  // also what makes strand windows across tasks *strictly* disjoint.
  auto trace = make_trace({{0, 100, 0, 1}, {100, 200, 1, 2}});
  auto dag = ss::ContactDag::partition(trace, 3, 1000);
  EXPECT_EQ(dag.contact_task_count(), 1u);
}

TEST(ContactDag, SequentialContactsChainAndConcurrentPairsStayParallel) {
  // Node 1 meets 0 then 2 (chained through node 1's strand sequence);
  // (3,4) overlaps both in time but shares no node, so it rides a third,
  // independent task.
  auto trace = make_trace({{0, 100, 0, 1}, {200, 300, 1, 2}, {50, 250, 3, 4}});
  auto dag = ss::ContactDag::partition(trace, 5, 1000);
  ASSERT_EQ(dag.contact_task_count(), 3u);
  EXPECT_TRUE(dag.tasks()[0].deps.empty());
  EXPECT_EQ(dag.tasks()[1].deps, (std::vector<std::size_t>{0}));
  EXPECT_TRUE(dag.tasks()[2].deps.empty());
  EXPECT_EQ(dag.width(), 2u);
  EXPECT_DOUBLE_EQ(dag.parallelism(), 1.5);  // 3 contacts / chain of 2
  // The tail covers every node's idle run-out and follows each node's last
  // contact task.
  const ss::ContactTask& tail = dag.tasks().back();
  EXPECT_TRUE(tail.contacts.empty());
  EXPECT_EQ(tail.strands.size(), 5u);
  EXPECT_DOUBLE_EQ(tail.last_end, 1000.0);
  EXPECT_EQ(tail.deps, (std::vector<std::size_t>{0, 1, 2}));
}

// --- scheduler shards --------------------------------------------------------

TEST(Scheduler, ShardStartsAtGivenTime) {
  ss::Scheduler sched(500.0);
  EXPECT_DOUBLE_EQ(sched.now(), 500.0);
  std::vector<double> fired;
  sched.schedule_at(600.0, [&] { fired.push_back(600.0); });
  sched.schedule_in(50.0, [&] { fired.push_back(550.0); });
  sched.run_until(1000.0);
  EXPECT_EQ(fired, (std::vector<double>{550.0, 600.0}));
  EXPECT_DOUBLE_EQ(sched.now(), 1000.0);
}

// --- engine determinism ------------------------------------------------------

namespace {

/// Small-but-real configs exercising resumption, batch windows, adaptive
/// flushing, and three schemes.
std::vector<sd::ScenarioConfig> determinism_configs() {
  std::vector<sd::ScenarioConfig> configs;
  {
    sd::ScenarioConfig c = sd::gainesville_config("interest", su::derive_seed(11, 0));
    c.days = 1.5;
    configs.push_back(c);
  }
  {
    sd::ScenarioConfig c = sd::gainesville_config("epidemic", su::derive_seed(11, 1));
    c.nodes = 14;
    c.area_w_m = 2200;
    c.area_h_m = 2200;
    c.days = 1.0;
    c.total_posts_target = 60;
    c.verify_batch_window_s = 30.0;
    configs.push_back(c);
    c.verify_batch_adaptive = true;
    c.seed = su::derive_seed(11, 2);
    configs.push_back(c);
  }
  {
    sd::ScenarioConfig c = sd::gainesville_config("prophet", su::derive_seed(11, 3));
    c.nodes = 12;
    c.area_w_m = 1800;
    c.area_h_m = 1800;
    c.days = 1.0;
    c.total_posts_target = 50;
    configs.push_back(c);
  }
  return configs;
}

}  // namespace

TEST(EpisodeReplay, BitwiseIdenticalToSingleSchedulerAtAnyWorkerCount) {
  for (const sd::ScenarioConfig& config : determinism_configs()) {
    auto world = sd::record_world(config);
    ASSERT_GT(world->trace.size(), 0u);
    auto single = fingerprint(sd::run_scenario(config, world.get()));
    auto ep1 = fingerprint(
        sd::run_scenario(config, world.get(), {.partition = true, .jobs = 1}));
    auto ep4 = fingerprint(
        sd::run_scenario(config, world.get(), {.partition = true, .jobs = 4}));
    EXPECT_EQ(single, ep1) << config.scheme << " seed " << config.seed;
    EXPECT_EQ(single, ep4) << config.scheme << " seed " << config.seed;
    // The workload exercised the stack.
    EXPECT_GT(single.posts, 0u);
  }
}

TEST(EpisodeReplay, SharedVerifyMemoDoesNotChangeMetrics) {
  sd::ScenarioConfig config = sd::gainesville_config("epidemic", su::derive_seed(13, 0));
  config.nodes = 14;
  config.area_w_m = 2000;
  config.area_h_m = 2000;
  config.days = 1.0;
  config.total_posts_target = 60;
  auto world = sd::record_world(config);
  auto with_memo = fingerprint(
      sd::run_scenario(config, world.get(), {.share_verify_memo = true}));
  auto without = fingerprint(
      sd::run_scenario(config, world.get(), {.share_verify_memo = false}));
  EXPECT_EQ(with_memo, without);
  EXPECT_GT(with_memo.deliveries, 0u);
  // The memo must not leak into the per-node counters: every node still
  // records the verifies the real device would perform.
  EXPECT_GT(with_memo.cache_misses, 0u);
}

TEST(EpisodeReplay, SweepRunnerEpisodeJobsMatchesSingleScheduler) {
  // The sweep-level integration: episode_jobs / subepisode_jobs toggle the
  // engine per cell (with the nested worker budget); the grid's metrics
  // must not move on either.
  auto grid_cell = [] {
    sd::SweepCell cell;
    cell.label = "eq";
    cell.config = sd::gainesville_config("interest");
    cell.config.nodes = 10;
    cell.config.days = 1.0;
    cell.variants = {{"interest", "interest", 86400.0, 0.0, false},
                     {"epidemic", "epidemic", 86400.0, 0.0, false}};
    return cell;
  };
  sd::SweepOptions single_opts;
  single_opts.jobs = 2;
  auto baseline = sd::SweepRunner(single_opts).run({grid_cell()});
  sd::SweepOptions episode_opts;
  episode_opts.jobs = 2;
  episode_opts.episode_jobs = 2;
  auto sharded = sd::SweepRunner(episode_opts).run({grid_cell()});
  sd::SweepOptions strand_opts;
  strand_opts.jobs = 2;
  strand_opts.subepisode_jobs = 2;
  auto stranded = sd::SweepRunner(strand_opts).run({grid_cell()});
  ASSERT_EQ(baseline.size(), sharded.size());
  ASSERT_EQ(baseline.size(), stranded.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(fingerprint(baseline[i].result), fingerprint(sharded[i].result))
        << baseline[i].label;
    EXPECT_EQ(fingerprint(baseline[i].result), fingerprint(stranded[i].result))
        << baseline[i].label << " (strand engine)";
    EXPECT_EQ(baseline[i].config.seed, stranded[i].config.seed);
    EXPECT_EQ(baseline[i].config.seed, sharded[i].config.seed);
  }
}

// --- randomized multi-community determinism harness --------------------------

namespace {

/// Worker counts to sweep per sampled world, per engine: SOS_EPISODE_JOBS
/// (episode engine) / SOS_SUBEPISODE_JOBS (strand engine), when numeric,
/// join the set, so `run_benches.sh --check` can push the TSan run to a
/// specific worker count without editing the test.
std::vector<std::size_t> harness_jobs(const char* env_var) {
  std::vector<std::size_t> jobs{1, 2, 4};
  if (const char* env = std::getenv(env_var)) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 &&
        std::find(jobs.begin(), jobs.end(), static_cast<std::size_t>(v)) == jobs.end()) {
      jobs.push_back(static_cast<std::size_t>(v));
    }
  }
  return jobs;
}

/// The structural invariants every partition must satisfy, checked on an
/// arbitrary sampled trace: complete coverage (each contact in exactly one
/// episode), disjoint concurrency (a node's contact-episode windows tile
/// its timeline without overlap, so it is never attached to two schedulers
/// at once), and tail coverage (the final contact-free episode runs every
/// node out to the horizon).
void check_partition_invariants(const ss::ContactTrace& trace, const ss::EpisodeGraph& graph,
                                std::size_t nodes, double horizon) {
  std::set<std::size_t> seen;
  for (const auto& e : graph.episodes()) {
    for (std::size_t ci : e.contacts) {
      EXPECT_TRUE(seen.insert(ci).second) << "contact " << ci << " in two episodes";
    }
  }
  EXPECT_EQ(seen.size(), trace.size());

  ASSERT_FALSE(graph.episodes().empty());
  const ss::Episode& tail = graph.episodes().back();
  EXPECT_TRUE(tail.contacts.empty());
  EXPECT_EQ(tail.nodes.size(), nodes);
  EXPECT_DOUBLE_EQ(tail.last_end, horizon);

  for (std::uint32_t node = 0; node < nodes; ++node) {
    std::vector<std::pair<double, double>> windows;  // (node first start, episode end)
    for (const auto& e : graph.episodes()) {
      if (e.contacts.empty()) continue;
      double first = -1;
      for (std::size_t ci : e.contacts) {
        const auto& c = trace.contacts()[ci];
        if (c.a == node || c.b == node) {
          if (first < 0 || c.start < first) first = c.start;
        }
      }
      if (first >= 0) windows.push_back({first, e.last_end});
    }
    std::sort(windows.begin(), windows.end());
    for (std::size_t i = 1; i < windows.size(); ++i) {
      EXPECT_GE(windows[i].first, windows[i - 1].second)
          << "node " << node << " attached to two overlapping episodes";
    }
  }
}

/// The sub-episode analogue, checked on the same sampled traces: complete
/// coverage, strands that hull their node's contacts, strictly disjoint
/// per-node strand windows (touching contacts fuse, so the engine's detach
/// point always precedes the next attach with a real gap), a direct chain
/// dep between each node's consecutive tasks (per-node chaining is the
/// DAG's *entire* ordering, so its completeness is the determinism
/// argument), tail coverage, and a width that matches a brute-force count
/// of concurrently open task spans.
void check_contactdag_invariants(const ss::ContactTrace& trace, const ss::ContactDag& dag,
                                 std::size_t nodes, double horizon) {
  const auto& tasks = dag.tasks();
  ASSERT_EQ(tasks.size(), dag.contact_task_count() + 1);

  std::set<std::size_t> seen;
  for (std::size_t ti = 0; ti < dag.contact_task_count(); ++ti) {
    for (std::size_t ci : tasks[ti].contacts) {
      EXPECT_TRUE(seen.insert(ci).second) << "contact " << ci << " in two tasks";
      const auto& c = trace.contacts()[ci];
      for (std::uint32_t endpoint : {c.a, c.b}) {
        auto it = std::find_if(
            tasks[ti].strands.begin(), tasks[ti].strands.end(),
            [&](const ss::ContactStrand& s) { return s.node == endpoint; });
        ASSERT_NE(it, tasks[ti].strands.end())
            << "task " << ti << " misses a strand for node " << endpoint;
        EXPECT_LE(it->first_start, c.start);
        EXPECT_GE(it->last_end, c.end);
      }
    }
  }
  EXPECT_EQ(seen.size(), trace.size());

  const ss::ContactTask& tail = tasks.back();
  EXPECT_TRUE(tail.contacts.empty());
  EXPECT_EQ(tail.strands.size(), nodes);
  EXPECT_DOUBLE_EQ(tail.last_end, horizon);

  // Per node: strand windows across tasks, in time order, are strictly
  // disjoint, and every consecutive pair is joined by a direct chain dep
  // (the tail follows the node's last contact task).
  for (std::uint32_t node = 0; node < nodes; ++node) {
    std::vector<std::pair<std::pair<double, double>, std::size_t>> windows;
    for (std::size_t ti = 0; ti < dag.contact_task_count(); ++ti) {
      for (const ss::ContactStrand& s : tasks[ti].strands) {
        if (s.node == node) windows.push_back({{s.first_start, s.last_end}, ti});
      }
    }
    std::sort(windows.begin(), windows.end());
    for (std::size_t i = 1; i < windows.size(); ++i) {
      EXPECT_GT(windows[i].first.first, windows[i - 1].first.second)
          << "node " << node << " strand " << i << " not strictly after the previous";
      const auto& deps = tasks[windows[i].second].deps;
      EXPECT_TRUE(std::find(deps.begin(), deps.end(), windows[i - 1].second) != deps.end())
          << "node " << node << ": task " << windows[i].second
          << " missing its chain dep on task " << windows[i - 1].second;
    }
    if (!windows.empty()) {
      EXPECT_TRUE(std::find(tail.deps.begin(), tail.deps.end(), windows.back().second) !=
                  tail.deps.end())
          << "tail missing its chain dep for node " << node;
    }
  }

  // width() == max concurrently open task spans, brute-forced at every task
  // start (each open task has a contact open or pending at that instant, so
  // this is the measured-concurrent-contacts bound of the hotspot cells).
  std::size_t brute = 0;
  for (std::size_t i = 0; i < dag.contact_task_count(); ++i) {
    const double t = tasks[i].first_start;
    std::size_t open = 0;
    for (std::size_t j = 0; j < dag.contact_task_count(); ++j) {
      if (tasks[j].first_start <= t && tasks[j].last_end > t) ++open;
    }
    brute = std::max(brute, open);
  }
  EXPECT_EQ(dag.width(), brute);
}

}  // namespace

TEST(RandomizedDeterminism, MultiCommunityWorldsAreBitwiseIdenticalAcrossEngines) {
  // ~50 random worlds across the community knob space (1-4 communities,
  // 0-30% bridge commuters, mixed schemes/windows, seeds via derive_seed):
  // every sampled trace must satisfy the partition invariants of BOTH
  // granularities, and episode replay AND sub-episode strand replay must be
  // bitwise identical to the single-scheduler replay at every worker count.
  // This is the pin that lets the community mobility subsystem ride the
  // parallel engines without a determinism leap of faith.
  const std::vector<std::size_t> jobs = harness_jobs("SOS_EPISODE_JOBS");
  const std::vector<std::size_t> strand_jobs = harness_jobs("SOS_SUBEPISODE_JOBS");
  const char* schemes[] = {"interest", "epidemic", "prophet"};
  const int kWorlds = 50;
  std::size_t total_contacts = 0, total_posts = 0, total_deliveries = 0;
  for (int w = 0; w < kWorlds; ++w) {
    const std::uint64_t seed = su::derive_seed(0xC0117EC7, static_cast<std::uint64_t>(w));
    su::Rng pick(seed);
    sd::ScenarioConfig config = sd::gainesville_config(schemes[w % 3], seed);
    config.nodes = 8 + pick.below(9);                        // 8..16
    config.communities = 1 + pick.below(4);                  // 1..4
    config.bridge_node_frac = pick.uniform(0.0, 0.3);
    config.mobility.home_min_separation_m = pick.chance(0.5) ? 150.0 : 0.0;
    config.area_w_m = 1200.0 + pick.uniform(0.0, 1800.0);
    config.area_h_m = 1200.0 + pick.uniform(0.0, 1800.0);
    // 1.5 days: evening posts meet the next morning's encounters, so
    // deliveries (and their middleware state) routinely cross the day
    // boundary — the episode-handoff case the engine exists for.
    config.days = 1.5;
    config.total_posts_target = 4.0 * static_cast<double>(config.nodes);
    if (w % 5 == 0) {
      config.verify_batch_window_s = 30.0;
      config.verify_batch_adaptive = (w % 10 == 0);
    }

    auto world = sd::record_world(config);
    auto graph =
        ss::EpisodeGraph::partition(world->trace, config.nodes, su::days(config.days));
    check_partition_invariants(world->trace, graph, config.nodes, su::days(config.days));
    auto dag =
        ss::ContactDag::partition(world->trace, config.nodes, su::days(config.days));
    check_contactdag_invariants(world->trace, dag, config.nodes, su::days(config.days));
    // Dropping span fusion only removes ordering edges.
    EXPECT_GE(dag.parallelism() + 1e-9, graph.parallelism()) << "world " << w;

    const Fingerprint single = fingerprint(sd::run_scenario(config, world.get()));
    for (std::size_t j : jobs) {
      const Fingerprint episodes = fingerprint(
          sd::run_scenario(config, world.get(), {.partition = true, .jobs = j}));
      EXPECT_EQ(single, episodes)
          << "world " << w << " (" << config.scheme << ", " << config.communities
          << " communities, seed " << config.seed << ") diverged at jobs " << j;
    }
    for (std::size_t j : strand_jobs) {
      const Fingerprint strands =
          fingerprint(sd::run_scenario(config, world.get(), {.subepisode_jobs = j}));
      EXPECT_EQ(single, strands)
          << "world " << w << " (" << config.scheme << ", " << config.communities
          << " communities, seed " << config.seed
          << ") diverged on the strand engine at jobs " << j;
    }
    total_contacts += world->trace.size();
    total_posts += single.posts;
    total_deliveries += single.deliveries;
  }
  // The sampled population exercised the full stack, not 50 empty worlds.
  EXPECT_GT(total_contacts, 500u);
  EXPECT_GT(total_posts, 200u);
  EXPECT_GT(total_deliveries, 50u);
}

TEST(RandomizedDeterminism, CommunityDensityCellReachesParallelismCeiling) {
  // The acceptance bar for the community-structured ablation cell: its
  // recorded trace must decompose to a conservative parallelism ceiling of
  // at least 2 (the single-hotspot cells sit at ~1.0), so episode workers
  // have real concurrency to exploit on multi-core hosts.
  auto grid = sd::density_ablation_grid(3.0);
  sd::SweepRunner runner{sd::SweepOptions{}};
  std::size_t idx = grid.size();
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (grid[i].label == "48n-4c") idx = i;
  }
  ASSERT_LT(idx, grid.size()) << "community cell missing from density_ablation_grid";
  sd::ScenarioConfig config = runner.cell_config(grid[idx], idx);
  EXPECT_EQ(config.communities, 4u);
  auto world = sd::record_world(config);
  auto graph =
      ss::EpisodeGraph::partition(world->trace, config.nodes, su::days(config.days));
  check_partition_invariants(world->trace, graph, config.nodes, su::days(config.days));
  EXPECT_GE(graph.parallelism(), 2.0);
  EXPECT_GT(graph.contact_episode_count(), 8u);
  // The strand-level decomposition of the same trace is strictly finer: at
  // least as much critical-path headroom, and sim-time width for multiple
  // workers to occupy.
  auto dag = ss::ContactDag::partition(world->trace, config.nodes, su::days(config.days));
  check_contactdag_invariants(world->trace, dag, config.nodes, su::days(config.days));
  EXPECT_GE(dag.parallelism() + 1e-9, graph.parallelism());
  EXPECT_GE(dag.width(), 2u);
  EXPECT_GT(dag.contact_task_count(), graph.contact_episode_count());
}

// --- cross-segment state handoff --------------------------------------------

TEST(EpisodeReplay, BundleRelaysAcrossEpisodeBoundary) {
  // Hand-built world: node 0 meets node 1 in the evening (episode k), node 1
  // meets node 2 an hour later (episode k+1), node 2 follows node 0, and
  // epidemic routing makes node 1 carry. Any delivery to node 2 proves the
  // bundle store survived the detach/attach seam between shards.
  sd::ScenarioConfig config = sd::gainesville_config("epidemic", 99);
  config.nodes = 3;
  config.days = 1.0;
  config.total_posts_target = 45.0;  // ~15 posts by node 0 in the window
  sg::Digraph social(3);
  social.add_edge(2, 0);  // node 2 follows node 0
  config.social = social;

  // Posting window is 18.5h-23.5h (66600..84600 s). Contacts after the
  // first posts: (0,1) at 70000..70600, (1,2) at 75000..75600. No (0,2)
  // contact ever: delivery requires the cross-episode relay through 1.
  std::vector<ss::Trajectory> parked(3);
  for (std::size_t i = 0; i < 3; ++i)
    parked[i].add(0.0, {100.0 * static_cast<double>(i), 0.0});
  sd::ScenarioWorld world{ss::TrajectoryMobility(std::move(parked)),
                          ss::ContactTrace{}};
  ASSERT_TRUE(world.trace.add({70000, 70600, 0, 1}));
  ASSERT_TRUE(world.trace.add({75000, 75600, 1, 2}));

  auto graph = ss::EpisodeGraph::partition(world.trace, 3, su::days(1.0));
  ASSERT_EQ(graph.contact_episode_count(), 2u);  // the relay crosses a seam
  EXPECT_EQ(graph.episodes()[1].deps, (std::vector<std::size_t>{0}));

  auto single = sd::run_scenario(config, &world);
  auto episodes =
      sd::run_scenario(config, &world, {.partition = true, .jobs = 2});
  EXPECT_EQ(fingerprint(single), fingerprint(episodes));
  // The bundle made it: picked up by node 1 in episode 0, delivered to
  // node 2 in episode 1.
  EXPECT_GT(episodes.oracle.delivery_count(), 0u);
  EXPECT_GT(episodes.totals.bundles_carried, episodes.totals.deliveries);
}

TEST(SubepisodeReplay, BundleRelaysAcrossThreeStrandsInsideOneEpisode) {
  // The strand-engine counterpart of the episode-boundary relay: an
  // "anchor" contact (0,6) spans the whole evening, so EpisodeGraph's span
  // fusion folds the relay chain 0 -> 1 -> 2 -> 3 into ONE serial episode —
  // the dense-hotspot shape the episode engine cannot split. ContactDag
  // keeps the three relay hops as separate tasks chained through nodes 1
  // and 2, so a bundle posted by node 0 must cross two detach/attach seams
  // *inside* that episode to reach its subscriber on node 3.
  sd::ScenarioConfig config = sd::gainesville_config("epidemic", 99);
  config.nodes = 7;
  config.days = 1.0;
  config.total_posts_target = 140.0;  // ~20 posts by node 0 in the window
  sg::Digraph social(7);
  social.add_edge(3, 0);  // node 3 follows node 0
  config.social = social;

  // Posting window is 18.5h-23.5h (66600..84600 s); the relay contacts sit
  // inside it. No (0,3) contact ever: delivery requires both hops.
  std::vector<ss::Trajectory> parked(7);
  for (std::size_t i = 0; i < 7; ++i)
    parked[i].add(0.0, {100.0 * static_cast<double>(i), 0.0});
  sd::ScenarioWorld world{ss::TrajectoryMobility(std::move(parked)),
                          ss::ContactTrace{}};
  ASSERT_TRUE(world.trace.add({70000, 70600, 0, 1}));
  ASSERT_TRUE(world.trace.add({70300, 76000, 0, 6}));  // the episode anchor
  ASSERT_TRUE(world.trace.add({72000, 72600, 1, 2}));
  ASSERT_TRUE(world.trace.add({74400, 75000, 2, 3}));

  auto graph = ss::EpisodeGraph::partition(world.trace, 7, su::days(1.0));
  EXPECT_EQ(graph.contact_episode_count(), 1u);  // span fusion serializes it
  auto dag = ss::ContactDag::partition(world.trace, 7, su::days(1.0));
  check_contactdag_invariants(world.trace, dag, 7, su::days(1.0));
  ASSERT_EQ(dag.contact_task_count(), 3u);  // ...the strand cut does not
  EXPECT_EQ(dag.tasks()[0].contacts, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(dag.tasks()[1].deps, (std::vector<std::size_t>{0}));  // via node 1
  EXPECT_EQ(dag.tasks()[2].deps, (std::vector<std::size_t>{1}));  // via node 2
  EXPECT_EQ(dag.width(), 2u);  // hops nest inside the anchor task's span

  auto single = sd::run_scenario(config, &world);
  EXPECT_GT(single.oracle.delivery_count(), 0u);
  for (std::size_t j : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    auto strands = sd::run_scenario(config, &world, {.subepisode_jobs = j});
    EXPECT_EQ(fingerprint(single), fingerprint(strands)) << "strand jobs " << j;
    EXPECT_GT(strands.oracle.delivery_count(), 0u);
  }
}
