// Simulator substrate tests: event scheduler semantics, mobility model
// invariants (bounds, determinism, sleep behaviour), encounter detection
// (grid vs brute force), and the MultipeerSim state machine including
// bandwidth-limited delivery and mid-transfer loss.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "sim/mobility.hpp"
#include "sim/multipeer.hpp"
#include "sim/radio.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace ss = sos::sim;
namespace su = sos::util;

// --- Scheduler -----------------------------------------------------------

TEST(Scheduler, RunsInTimeOrder) {
  ss::Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(3.0, [&] { order.push_back(3); });
  sched.schedule_at(1.0, [&] { order.push_back(1); });
  sched.schedule_at(2.0, [&] { order.push_back(2); });
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sched.now(), 3.0);
}

TEST(Scheduler, FifoAmongEqualTimestamps) {
  ss::Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) sched.schedule_at(1.0, [&order, i] { order.push_back(i); });
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, ScheduleInIsRelative) {
  ss::Scheduler sched;
  double fired_at = -1;
  sched.schedule_at(5.0, [&] {
    sched.schedule_in(2.5, [&] { fired_at = sched.now(); });
  });
  sched.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Scheduler, CancelPreventsExecution) {
  ss::Scheduler sched;
  bool fired = false;
  auto id = sched.schedule_at(1.0, [&] { fired = true; });
  sched.cancel(id);
  sched.run_all();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, InvalidEventIdIsNeverMintedAndCancelsAsNoOp) {
  // kInvalidEventId is the "no event armed" sentinel the middleware's
  // maybe-scheduled fields (verify flush, routing push/maintenance) init
  // to and reset to on disarm. The scheduler must never mint it — ids
  // start above the sentinel — and cancelling it must be a harmless no-op
  // that leaves no bookkeeping behind.
  ss::Scheduler sched;
  bool fired = false;
  auto id = sched.schedule_at(1.0, [&] { fired = true; });
  EXPECT_NE(id, ss::kInvalidEventId);
  sched.cancel(ss::kInvalidEventId);
  EXPECT_EQ(sched.cancelled_backlog(), 0u);  // no-op left no tombstone
  sched.run_all();
  EXPECT_TRUE(fired);  // the live event was untouched
  // Fresh schedulers (episode shards construct one per episode) also never
  // hand out the sentinel as their first id.
  ss::Scheduler shard(100.0);
  EXPECT_NE(shard.schedule_in(1.0, [] {}), ss::kInvalidEventId);
}

TEST(Scheduler, RunUntilStopsAtBoundaryAndAdvancesClock) {
  ss::Scheduler sched;
  int count = 0;
  sched.schedule_at(1.0, [&] { ++count; });
  sched.schedule_at(2.0, [&] { ++count; });
  sched.schedule_at(5.0, [&] { ++count; });
  sched.run_until(3.0);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(sched.now(), 3.0);
  sched.run_all();
  EXPECT_EQ(count, 3);
}

TEST(Scheduler, PastEventsClampToNow) {
  ss::Scheduler sched;
  sched.schedule_at(10.0, [] {});
  sched.run_all();
  double fired_at = -1;
  sched.schedule_at(1.0, [&] { fired_at = sched.now(); });  // in the past
  sched.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 10.0);
}

TEST(Scheduler, EventsScheduledDuringRunUntilSameWindowExecute) {
  ss::Scheduler sched;
  bool inner = false;
  sched.schedule_at(1.0, [&] {
    sched.schedule_in(0.5, [&] { inner = true; });
  });
  sched.run_until(2.0);
  EXPECT_TRUE(inner);
}

// --- Trajectory / mobility ---------------------------------------------------

TEST(Trajectory, InterpolatesLinearly) {
  ss::Trajectory tr;
  tr.add(0, {0, 0});
  tr.add(10, {100, 0});
  auto p = tr.at(5);
  EXPECT_DOUBLE_EQ(p.x, 50);
  EXPECT_DOUBLE_EQ(p.y, 0);
}

TEST(Trajectory, ClampsOutsideRange) {
  ss::Trajectory tr;
  tr.add(10, {1, 2});
  tr.add(20, {3, 4});
  EXPECT_DOUBLE_EQ(tr.at(0).x, 1);
  EXPECT_DOUBLE_EQ(tr.at(100).x, 3);
}

TEST(Trajectory, DwellSegmentsHold) {
  ss::Trajectory tr;
  tr.add(0, {5, 5});
  tr.add(10, {5, 5});
  tr.add(20, {15, 5});
  EXPECT_DOUBLE_EQ(tr.at(7).x, 5);
  EXPECT_DOUBLE_EQ(tr.at(15).x, 10);
}

namespace {
struct ModelCase {
  const char* name;
  int which;  // 0 rwp, 1 levy, 2 daily
};

std::unique_ptr<ss::TrajectoryMobility> make_model(int which, std::size_t nodes,
                                                   double horizon, su::Rng& rng) {
  switch (which) {
    case 0:
      return ss::random_waypoint(nodes, horizon, {}, rng);
    case 1:
      return ss::levy_walk(nodes, horizon, {}, rng);
    default:
      return ss::daily_routine(nodes, horizon, {}, rng);
  }
}
}  // namespace

class MobilityBounds : public ::testing::TestWithParam<int> {};

TEST_P(MobilityBounds, PositionsStayInArea) {
  su::Rng rng(99);
  auto m = make_model(GetParam(), 8, su::days(2), rng);
  ss::AreaSpec area{};
  for (std::size_t node = 0; node < m->node_count(); ++node) {
    for (double t = 0; t <= su::days(2); t += 977.0) {
      auto p = m->position(node, t);
      EXPECT_GE(p.x, -1e-9);
      EXPECT_LE(p.x, area.width_m + 1e-9);
      EXPECT_GE(p.y, -1e-9);
      EXPECT_LE(p.y, area.height_m + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Models, MobilityBounds, ::testing::Values(0, 1, 2));

// Degenerate-parameter regressions: a zero speed draw used to produce an
// infinite travel time, and a zero-distance leg with zero pause (e.g. a 0x0
// area) used to spin the generation loop forever without advancing t.
TEST(RandomWaypoint, ZeroSpeedParamsTerminateWithFiniteAnchors) {
  su::Rng rng(3);
  ss::RandomWaypointParams params;
  params.min_speed_mps = 0.0;
  params.max_speed_mps = 0.0;
  params.min_pause_s = 0.0;
  params.max_pause_s = 0.0;
  auto m = ss::random_waypoint(3, 5000.0, params, rng);
  for (std::size_t node = 0; node < 3; ++node) {
    const auto& tr = m->trajectory(node);
    EXPECT_TRUE(std::isfinite(tr.end_time()));
    auto p = m->position(node, 2500.0);
    EXPECT_TRUE(std::isfinite(p.x));
    EXPECT_TRUE(std::isfinite(p.y));
  }
}

TEST(RandomWaypoint, ZeroAreaZeroPauseDoesNotHang) {
  su::Rng rng(4);
  ss::RandomWaypointParams params;
  params.area = {0.0, 0.0};  // every target equals the current position
  params.min_pause_s = 0.0;
  params.max_pause_s = 0.0;
  auto m = ss::random_waypoint(2, 1000.0, params, rng);
  for (std::size_t node = 0; node < 2; ++node) {
    auto p = m->position(node, 500.0);
    EXPECT_DOUBLE_EQ(p.x, 0.0);
    EXPECT_DOUBLE_EQ(p.y, 0.0);
  }
}

TEST(LevyWalk, ZeroSpeedZeroPauseDoesNotHang) {
  su::Rng rng(5);
  ss::LevyWalkParams params;
  params.speed_mps = 0.0;
  params.max_pause_s = 0.0;
  auto m = ss::levy_walk(2, 2000.0, params, rng);
  for (std::size_t node = 0; node < 2; ++node) {
    const auto& tr = m->trajectory(node);
    EXPECT_TRUE(std::isfinite(tr.end_time()));
    auto p = m->position(node, 1000.0);
    EXPECT_TRUE(std::isfinite(p.x));
    EXPECT_TRUE(std::isfinite(p.y));
  }
}

class MobilityDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(MobilityDeterminism, SameSeedSamePositions) {
  su::Rng rng1(7), rng2(7);
  auto a = make_model(GetParam(), 5, su::days(1), rng1);
  auto b = make_model(GetParam(), 5, su::days(1), rng2);
  for (std::size_t node = 0; node < 5; ++node) {
    for (double t = 0; t < su::days(1); t += 3601.0) {
      auto pa = a->position(node, t);
      auto pb = b->position(node, t);
      EXPECT_DOUBLE_EQ(pa.x, pb.x);
      EXPECT_DOUBLE_EQ(pa.y, pb.y);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Models, MobilityDeterminism, ::testing::Values(0, 1, 2));

TEST(DailyRoutine, NodesSleepAtHomeOvernight) {
  su::Rng rng(3);
  auto m = ss::daily_routine(6, su::days(3), {}, rng);
  // At 3am every node is at the same place it was at 1am (asleep at home).
  for (std::size_t node = 0; node < 6; ++node) {
    for (int day = 1; day < 3; ++day) {
      auto p1 = m->position(node, su::days(day) + su::hours(1));
      auto p3 = m->position(node, su::days(day) + su::hours(3));
      EXPECT_NEAR(p1.x, p3.x, 1e-6);
      EXPECT_NEAR(p1.y, p3.y, 1e-6);
    }
  }
}

TEST(DailyRoutine, WeekdayCreatesCoLocation) {
  // With clustered hotspots, some pair should pass within radio range on a
  // weekday; this is the mechanism that makes D2D encounters happen at all.
  su::Rng rng(5);
  ss::DailyRoutineParams params;
  params.hotspot_count = 3;
  auto m = ss::daily_routine(10, su::days(1), params, rng);
  double best = 1e18;
  for (double t = su::hours(8); t < su::hours(22); t += 300.0) {
    for (std::size_t i = 0; i < 10; ++i)
      for (std::size_t j = i + 1; j < 10; ++j)
        best = std::min(best, ss::distance(m->position(i, t), m->position(j, t)));
  }
  EXPECT_LT(best, 150.0);
}

// --- multi-community daily routine ------------------------------------------

namespace {
/// Community grid cell (see daily_routine: near-square grid over the area)
/// a position falls into, for membership checks.
std::size_t community_of(const ss::Vec2& p, const ss::AreaSpec& area, std::size_t k) {
  std::size_t gx = static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(k))));
  std::size_t gy = (k + gx - 1) / gx;
  auto clamp_idx = [](double v, std::size_t n) {
    auto i = static_cast<std::size_t>(std::max(v, 0.0));
    return i < n ? i : n - 1;
  };
  std::size_t cx = clamp_idx(p.x / (area.width_m / static_cast<double>(gx)), gx);
  std::size_t cy = clamp_idx(p.y / (area.height_m / static_cast<double>(gy)), gy);
  return cy * gx + cx;
}
}  // namespace

TEST(DailyRoutine, NonBridgeNodesStayInTheirCommunityCell) {
  su::Rng rng(11);
  ss::DailyRoutineParams params;
  params.area = {6000, 6000};
  params.community_count = 4;
  params.bridge_node_frac = 0.0;  // nobody commutes
  auto m = ss::daily_routine(16, su::days(3), params, rng);
  for (std::size_t node = 0; node < 16; ++node) {
    for (double t = 0; t < su::days(3); t += 1800.0) {
      EXPECT_EQ(community_of(m->position(node, t), params.area, 4), node % 4)
          << "node " << node << " left its community at t=" << t;
    }
  }
}

TEST(DailyRoutine, BridgeNodesVisitMultipleCommunities) {
  su::Rng rng(13);
  ss::DailyRoutineParams params;
  params.area = {6000, 6000};
  params.community_count = 4;
  params.bridge_node_frac = 1.0;  // everyone commutes
  params.active_weekdays = 5;     // attend daily so the rotation is visible
  params.active_attend_p = 1.0;
  auto m = ss::daily_routine(8, su::days(3), params, rng);
  // Some node's midday position must land in different communities on
  // different (week)days: the bridge rotation at work.
  bool some_node_moved = false;
  for (std::size_t node = 0; node < 8 && !some_node_moved; ++node) {
    std::set<std::size_t> seen;
    for (int day = 0; day < 3; ++day) {
      if (su::is_weekend(su::days(day))) continue;
      seen.insert(community_of(m->position(node, su::days(day) + su::hours(13)),
                               params.area, 4));
    }
    some_node_moved = seen.size() > 1;
  }
  EXPECT_TRUE(some_node_moved);
}

TEST(DailyRoutine, HomeSeparationKeepsHouseholdsApart) {
  su::Rng rng(17);
  ss::DailyRoutineParams params;
  params.area = {6000, 6000};
  params.community_count = 4;
  params.home_min_separation_m = 150.0;
  auto m = ss::daily_routine(24, su::days(1), params, rng);
  // 4am: everyone is asleep at home; all pairwise home distances respect
  // the separation floor (the knob that keeps overnight pairs out of radio
  // range and the episode graph decomposable).
  for (std::size_t i = 0; i < 24; ++i) {
    for (std::size_t j = i + 1; j < 24; ++j) {
      EXPECT_GE(ss::distance(m->position(i, su::hours(4)), m->position(j, su::hours(4))),
                150.0)
          << "homes " << i << " and " << j;
    }
  }
}

TEST(DailyRoutine, SingleCommunityConfigMatchesClassicModel) {
  // community_count = 1 (and 0) must reproduce the classic generator
  // draw-for-draw: the whole sweep history rests on that stream.
  su::Rng rng_classic(23), rng_one(23), rng_zero(23);
  ss::DailyRoutineParams classic;
  ss::DailyRoutineParams one = classic;
  one.community_count = 1;
  one.bridge_node_frac = 0.25;  // irrelevant without communities: never drawn
  ss::DailyRoutineParams zero = classic;
  zero.community_count = 0;
  auto a = ss::daily_routine(6, su::days(2), classic, rng_classic);
  auto b = ss::daily_routine(6, su::days(2), one, rng_one);
  auto c = ss::daily_routine(6, su::days(2), zero, rng_zero);
  for (std::size_t node = 0; node < 6; ++node) {
    for (double t = 0; t < su::days(2); t += 3600.0) {
      auto pa = a->position(node, t);
      auto pb = b->position(node, t);
      auto pc = c->position(node, t);
      EXPECT_DOUBLE_EQ(pa.x, pb.x);
      EXPECT_DOUBLE_EQ(pa.y, pb.y);
      EXPECT_DOUBLE_EQ(pa.x, pc.x);
      EXPECT_DOUBLE_EQ(pa.y, pc.y);
    }
  }
}

// --- EncounterDetector ------------------------------------------------------

namespace {
/// Two nodes that approach, meet, and separate on a straight line.
std::unique_ptr<ss::TrajectoryMobility> approach_and_leave() {
  std::vector<ss::Trajectory> trs(2);
  trs[0].add(0, {0, 0});
  trs[0].add(1000, {0, 0});
  trs[1].add(0, {500, 0});
  trs[1].add(250, {10, 0});   // within 50m range
  trs[1].add(500, {10, 0});
  trs[1].add(750, {500, 0});  // leaves
  trs[1].add(1000, {500, 0});
  return std::make_unique<ss::TrajectoryMobility>(std::move(trs));
}
}  // namespace

TEST(EncounterDetector, DetectsContactStartAndEnd) {
  ss::Scheduler sched;
  auto m = approach_and_leave();
  ss::EncounterDetector det(sched, *m, 50.0, 10.0);
  double start_t = -1, end_t = -1;
  det.on_contact_start = [&](std::size_t a, std::size_t b) {
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    start_t = sched.now();
  };
  det.on_contact_end = [&](std::size_t, std::size_t) { end_t = sched.now(); };
  det.start(1000);
  sched.run_all();
  EXPECT_GT(start_t, 200.0);
  EXPECT_LT(start_t, 300.0);
  EXPECT_GT(end_t, 500.0);
  EXPECT_LT(end_t, 800.0);
  EXPECT_EQ(det.total_contacts_seen(), 1u);
}

TEST(EncounterDetector, GridMatchesBruteForce) {
  su::Rng rng(21);
  auto m = ss::random_waypoint(40, 2000, {}, rng);
  ss::Scheduler sched;
  ss::EncounterDetector det(sched, *m, 200.0, 50.0);
  std::set<std::pair<std::size_t, std::size_t>> events;
  det.on_contact_start = [&](std::size_t a, std::size_t b) { events.insert({a, b}); };
  det.start(1000);
  sched.run_until(1000);
  // brute-force at t=1000
  for (std::size_t i = 0; i < 40; ++i)
    for (std::size_t j = i + 1; j < 40; ++j) {
      bool close = ss::distance(m->position(i, 1000), m->position(j, 1000)) <= 200.0;
      EXPECT_EQ(det.in_contact(i, j), close) << i << "," << j;
    }
}

TEST(EncounterDetector, NoSelfOrDuplicatePairs) {
  su::Rng rng(4);
  auto m = ss::random_waypoint(10, 500, {}, rng);
  ss::Scheduler sched;
  ss::EncounterDetector det(sched, *m, 50000.0, 100.0);  // radius spans the whole area
  int starts = 0;
  det.on_contact_start = [&](std::size_t a, std::size_t b) {
    EXPECT_LT(a, b);
    ++starts;
  };
  det.start(200);
  sched.run_all();
  EXPECT_EQ(starts, 45);  // C(10,2), each exactly once
}

// --- MultipeerSim ---------------------------------------------------------------

namespace {
struct MpcFixture {
  ss::Scheduler sched;
  ss::MpcNetwork net{sched, 3, ss::RadioParams{}};
};
}  // namespace

TEST(Mpc, DiscoveryRequiresRangeAndRoles) {
  MpcFixture f;
  auto& a = f.net.endpoint(0);
  auto& b = f.net.endpoint(1);
  std::vector<ss::PeerId> found;
  b.on_peer_found = [&](ss::PeerId p, const ss::DiscoveryInfo&) { found.push_back(p); };
  a.start_advertising({{"USER000001", "5"}});
  b.start_browsing();
  f.sched.run_all();
  EXPECT_TRUE(found.empty());  // not in range yet
  f.net.set_in_range(0, 1, true);
  f.sched.run_all();
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], 0u);
}

TEST(Mpc, DiscoveryInfoCarriesDictionary) {
  MpcFixture f;
  auto& a = f.net.endpoint(0);
  auto& b = f.net.endpoint(1);
  ss::DiscoveryInfo seen;
  b.on_peer_found = [&](ss::PeerId, const ss::DiscoveryInfo& info) { seen = info; };
  a.start_advertising({{"USERAAA", "7"}, {"USERBBB", "3"}});
  b.start_browsing();
  f.net.set_in_range(0, 1, true);
  f.sched.run_all();
  EXPECT_EQ(seen.at("USERAAA"), "7");
  EXPECT_EQ(seen.at("USERBBB"), "3");
}

TEST(Mpc, PeerLostOnRangeExit) {
  MpcFixture f;
  auto& a = f.net.endpoint(0);
  auto& b = f.net.endpoint(1);
  bool lost = false;
  b.on_peer_lost = [&](ss::PeerId p) { lost = (p == 0); };
  a.start_advertising({});
  b.start_browsing();
  f.net.set_in_range(0, 1, true);
  f.sched.run_all();
  f.net.set_in_range(0, 1, false);
  f.sched.run_all();
  EXPECT_TRUE(lost);
}

TEST(Mpc, InviteEstablishesAfterSetupTime) {
  MpcFixture f;
  auto& a = f.net.endpoint(0);
  auto& b = f.net.endpoint(1);
  b.start_advertising({});
  a.start_browsing();
  f.net.set_in_range(0, 1, true);
  double connected_at = -1;
  a.on_connected = [&](ss::PeerId) { connected_at = f.sched.now(); };
  bool b_connected = false;
  b.on_connected = [&](ss::PeerId p) { b_connected = (p == 0); };
  a.invite(1);
  f.sched.run_all();
  EXPECT_NEAR(connected_at, f.net.radio().setup_time_s, 1e-9);
  EXPECT_TRUE(b_connected);
  EXPECT_TRUE(a.is_connected(1));
  EXPECT_EQ(f.net.connections_established(), 1u);
}

TEST(Mpc, InvitationCanBeDeclined) {
  MpcFixture f;
  auto& a = f.net.endpoint(0);
  auto& b = f.net.endpoint(1);
  b.start_advertising({});
  b.on_invitation = [](ss::PeerId) { return false; };
  f.net.set_in_range(0, 1, true);
  a.invite(1);
  f.sched.run_all();
  EXPECT_FALSE(a.is_connected(1));
  EXPECT_EQ(f.net.connections_failed(), 1u);
}

TEST(Mpc, InviteFailsIfRangeLostDuringSetup) {
  MpcFixture f;
  auto& a = f.net.endpoint(0);
  auto& b = f.net.endpoint(1);
  b.start_advertising({});
  f.net.set_in_range(0, 1, true);
  a.invite(1);
  f.sched.schedule_in(0.5, [&] { f.net.set_in_range(0, 1, false); });
  f.sched.run_all();
  EXPECT_FALSE(a.is_connected(1));
  EXPECT_EQ(f.net.connections_failed(), 1u);
}

TEST(Mpc, ReliableFrameDelivery) {
  MpcFixture f;
  auto& a = f.net.endpoint(0);
  auto& b = f.net.endpoint(1);
  b.start_advertising({});
  f.net.set_in_range(0, 1, true);
  a.invite(1);
  su::Bytes received;
  b.on_receive = [&](ss::PeerId, su::Bytes data) { received = std::move(data); };
  f.sched.run_all();
  a.send(1, su::to_bytes("hello dtn"));
  f.sched.run_all();
  EXPECT_EQ(su::to_string(received), "hello dtn");
  EXPECT_EQ(f.net.frames_delivered(), 1u);
}

TEST(Mpc, FramesArriveInOrderWithBandwidthDelay) {
  MpcFixture f;
  auto& a = f.net.endpoint(0);
  auto& b = f.net.endpoint(1);
  b.start_advertising({});
  f.net.set_in_range(0, 1, true);
  a.invite(1);
  std::vector<std::string> got;
  std::vector<double> at;
  b.on_receive = [&](ss::PeerId, su::Bytes data) {
    got.push_back(su::to_string(data));
    at.push_back(f.sched.now());
  };
  f.sched.run_all();
  su::Bytes big(2'000'000, 0xAA);  // 2MB at 2MB/s ~= 1s on the wire
  a.send(1, big);
  a.send(1, su::to_bytes("second"));
  f.sched.run_all();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[1], "second");
  EXPECT_GT(at[0], f.net.radio().setup_time_s + 0.9);  // big transfer took ~1s
  EXPECT_GT(at[1], at[0]);                             // serialized behind it
}

TEST(Mpc, MidTransferDisconnectLosesFrame) {
  MpcFixture f;
  auto& a = f.net.endpoint(0);
  auto& b = f.net.endpoint(1);
  b.start_advertising({});
  f.net.set_in_range(0, 1, true);
  a.invite(1);
  int received = 0;
  b.on_receive = [&](ss::PeerId, su::Bytes) { ++received; };
  bool a_dropped = false;
  a.on_disconnected = [&](ss::PeerId) { a_dropped = true; };
  f.sched.run_all();
  su::Bytes big(4'000'000, 0xBB);  // ~2s transfer
  a.send(1, big);
  f.sched.schedule_in(0.5, [&] { f.net.set_in_range(0, 1, false); });
  f.sched.run_all();
  EXPECT_EQ(received, 0);
  EXPECT_TRUE(a_dropped);
  EXPECT_EQ(f.net.frames_lost(), 1u);
}

TEST(Mpc, SendWithoutSessionIsDropped) {
  MpcFixture f;
  auto& a = f.net.endpoint(0);
  int received = 0;
  f.net.endpoint(1).on_receive = [&](ss::PeerId, su::Bytes) { ++received; };
  a.send(1, su::to_bytes("void"));
  f.sched.run_all();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(f.net.frames_sent(), 0u);
}

TEST(Mpc, WireSnifferSeesFrames) {
  MpcFixture f;
  auto& a = f.net.endpoint(0);
  auto& b = f.net.endpoint(1);
  b.start_advertising({});
  f.net.set_in_range(0, 1, true);
  a.invite(1);
  su::Bytes sniffed;
  f.net.on_wire_frame = [&](ss::PeerId, ss::PeerId, const su::Bytes& w) { sniffed = w; };
  f.sched.run_all();
  a.send(1, su::to_bytes("plaintext-on-the-wire"));
  f.sched.run_all();
  EXPECT_EQ(su::to_string(sniffed), "plaintext-on-the-wire");
}

TEST(Mpc, ReconnectAfterRangeCycle) {
  MpcFixture f;
  auto& a = f.net.endpoint(0);
  auto& b = f.net.endpoint(1);
  b.start_advertising({});
  a.start_browsing();
  f.net.set_in_range(0, 1, true);
  a.invite(1);
  f.sched.run_all();
  ASSERT_TRUE(a.is_connected(1));
  f.net.set_in_range(0, 1, false);
  f.sched.run_all();
  EXPECT_FALSE(a.is_connected(1));
  f.net.set_in_range(0, 1, true);
  a.invite(1);
  int received = 0;
  b.on_receive = [&](ss::PeerId, su::Bytes) { ++received; };
  f.sched.run_all();
  ASSERT_TRUE(a.is_connected(1));
  a.send(1, su::to_bytes("again"));
  f.sched.run_all();
  EXPECT_EQ(received, 1);
}

TEST(Mpc, ThreeWayIndependentSessions) {
  MpcFixture f;
  auto& a = f.net.endpoint(0);
  auto& b = f.net.endpoint(1);
  auto& c = f.net.endpoint(2);
  b.start_advertising({});
  c.start_advertising({});
  f.net.set_in_range(0, 1, true);
  f.net.set_in_range(0, 2, true);
  a.invite(1);
  a.invite(2);
  f.sched.run_all();
  EXPECT_TRUE(a.is_connected(1));
  EXPECT_TRUE(a.is_connected(2));
  EXPECT_FALSE(b.is_connected(2));
  // Dropping one session leaves the other alive.
  f.net.set_in_range(0, 1, false);
  f.sched.run_all();
  EXPECT_FALSE(a.is_connected(1));
  EXPECT_TRUE(a.is_connected(2));
  EXPECT_EQ(a.connected_peers(), (std::vector<ss::PeerId>{2}));
}
