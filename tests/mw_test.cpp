// Middleware tests: the full SOS stack over the simulated MPC radio —
// handshake and session encryption, the Fig 2b dissemination flow, the
// Fig 3a/3b forwarder flow, per-scheme semantics (epidemic / interest /
// spray / prophet / direct), end-to-end encrypted direct messages, and the
// security gates (tampered bundles, revoked certs, eavesdroppers).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/drbg.hpp"
#include "crypto/sha256.hpp"
#include "mw/schemes/prophet.hpp"
#include "mw/schemes/spray_wait.hpp"
#include "mw/sos_node.hpp"
#include "pki/bootstrap.hpp"
#include "sim/multipeer.hpp"
#include "sim/scheduler.hpp"

namespace sb = sos::bundle;
namespace sc = sos::crypto;
namespace sm = sos::mw;
namespace sp = sos::pki;
namespace ss = sos::sim;
namespace su = sos::util;

namespace {

/// N signed-up users on a shared radio network. Ranges are driven manually.
struct Testbed {
  ss::Scheduler sched;
  sp::BootstrapService infra{su::to_bytes("testbed-infra")};
  ss::MpcNetwork net;
  std::vector<std::unique_ptr<sm::SosNode>> nodes;
  std::vector<std::vector<std::pair<sb::Bundle, sp::Certificate>>> received;

  explicit Testbed(std::size_t n, const std::string& scheme = "interest",
                   sm::SosConfig base_config = {})
      : net(sched, n) {
    received.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      sc::Drbg device(su::to_bytes("device-" + std::to_string(i)));
      auto creds = infra.signup("user" + std::to_string(i), device, sched.now());
      sm::SosConfig config = base_config;
      config.scheme = scheme;
      config.maintenance_interval_s = 0;  // keep the event queue drainable
      nodes.push_back(std::make_unique<sm::SosNode>(
          sched, net.endpoint(static_cast<ss::PeerId>(i)), std::move(*creds), config));
      std::size_t idx = i;
      nodes.back()->on_data = [this, idx](const sb::Bundle& b, const sp::Certificate& cert) {
        received[idx].emplace_back(b, cert);
      };
      nodes.back()->start();
    }
    sched.run_all();
  }

  sm::SosNode& node(std::size_t i) { return *nodes[i]; }
  sp::UserId uid(std::size_t i) { return nodes[i]->user_id(); }

  void meet(std::size_t a, std::size_t b) {
    net.set_in_range(static_cast<ss::PeerId>(a), static_cast<ss::PeerId>(b), true);
    sched.run_all();
  }
  void part(std::size_t a, std::size_t b) {
    net.set_in_range(static_cast<ss::PeerId>(a), static_cast<ss::PeerId>(b), false);
    sched.run_all();
  }
};

}  // namespace

// --- Fig 2b: basic dissemination, publisher -> subscriber ------------------

TEST(MwFlow, SubscriberReceivesPostOnEncounter) {
  Testbed bed(2);
  bed.node(1).follow(bed.uid(0));              // Bob follows Alice
  bed.node(0).publish(su::to_bytes("post 1")); // Alice posts offline
  bed.sched.run_all();
  EXPECT_TRUE(bed.received[1].empty());

  bed.meet(0, 1);  // devices come into range: advertise -> connect -> transfer
  ASSERT_EQ(bed.received[1].size(), 1u);
  EXPECT_EQ(su::to_string(bed.received[1][0].first.payload), "post 1");
  EXPECT_EQ(bed.received[1][0].first.origin, bed.uid(0));
  EXPECT_EQ(bed.received[1][0].first.hop_count, 1);  // direct from publisher
  EXPECT_EQ(bed.received[1][0].second.subject_id, bed.uid(0));  // origin cert
}

TEST(MwFlow, NotInterestedNodeIgnoresAdvertisement) {
  Testbed bed(2);  // node 1 does NOT follow node 0
  bed.node(0).publish(su::to_bytes("post"));
  bed.meet(0, 1);
  EXPECT_TRUE(bed.received[1].empty());
  // Interest-based: no connection should even be spent.
  EXPECT_EQ(bed.net.connections_established(), 0u);
}

TEST(MwFlow, OnlyNewMessagesTransferSecondTime) {
  Testbed bed(2);
  bed.node(1).follow(bed.uid(0));
  bed.node(0).publish(su::to_bytes("m1"));
  bed.meet(0, 1);
  bed.part(0, 1);
  ASSERT_EQ(bed.received[1].size(), 1u);

  bed.node(0).publish(su::to_bytes("m2"));
  bed.node(0).publish(su::to_bytes("m3"));
  bed.meet(0, 1);
  ASSERT_EQ(bed.received[1].size(), 3u);
  EXPECT_EQ(su::to_string(bed.received[1][1].first.payload), "m2");
  EXPECT_EQ(su::to_string(bed.received[1][2].first.payload), "m3");
  // m1 must not have been re-received.
  EXPECT_EQ(bed.node(1).stats().duplicates_ignored, 0u);
}

TEST(MwFlow, PublishWhileConnectedPushesImmediately) {
  Testbed bed(2);
  bed.node(1).follow(bed.uid(0));
  bed.node(0).publish(su::to_bytes("old"));
  bed.meet(0, 1);
  ASSERT_EQ(bed.received[1].size(), 1u);
  // Still co-located: a new post should arrive without a new encounter.
  bed.node(0).publish(su::to_bytes("live"));
  bed.sched.run_all();
  ASSERT_EQ(bed.received[1].size(), 2u);
  EXPECT_EQ(su::to_string(bed.received[1][1].first.payload), "live");
}

// --- Fig 3a/3b: forwarder selection & dissemination -------------------------

TEST(MwFlow, TwoHopForwardingThroughCommonFollower) {
  // Alice(0) -> Bob(1) -> Carol(2); Bob and Carol both follow Alice but
  // Carol never meets Alice (the alley-oop).
  Testbed bed(3);
  bed.node(1).follow(bed.uid(0));
  bed.node(2).follow(bed.uid(0));
  bed.node(0).publish(su::to_bytes("alley-oop"));

  bed.meet(0, 1);
  bed.part(0, 1);
  ASSERT_EQ(bed.received[1].size(), 1u);

  bed.meet(1, 2);  // Bob forwards Alice's post + Alice's certificate
  ASSERT_EQ(bed.received[2].size(), 1u);
  const auto& [b, cert] = bed.received[2][0];
  EXPECT_EQ(su::to_string(b.payload), "alley-oop");
  EXPECT_EQ(b.hop_count, 2);                 // two D2D hops
  EXPECT_EQ(cert.subject_id, bed.uid(0));    // Fig 3b: origin certificate
  EXPECT_TRUE(b.verify(cert.subject_key));   // still origin-signed
}

TEST(MwFlow, InterestBasedDoesNotUseUninterestedRelay) {
  // Bob(1) does not follow Alice(0); Carol(2) does. IB must not deliver
  // via Bob.
  Testbed bed(3);
  bed.node(2).follow(bed.uid(0));
  bed.node(0).publish(su::to_bytes("p"));
  bed.meet(0, 1);
  bed.part(0, 1);
  bed.meet(1, 2);
  bed.part(1, 2);
  EXPECT_TRUE(bed.received[2].empty());
}

TEST(MwFlow, EpidemicUsesUninterestedRelay) {
  // Same topology, epidemic scheme: Bob relays even without interest.
  Testbed bed(3, "epidemic");
  bed.node(2).follow(bed.uid(0));
  bed.node(0).publish(su::to_bytes("p"));
  bed.meet(0, 1);
  bed.part(0, 1);
  bed.meet(1, 2);
  ASSERT_EQ(bed.received[2].size(), 1u);
  EXPECT_EQ(bed.received[2][0].first.hop_count, 2);
  EXPECT_TRUE(bed.received[1].empty());  // Bob carried but was not a subscriber
}

TEST(MwFlow, SchemeToggleAtRuntime) {
  Testbed bed(3);  // starts interest-based
  bed.node(2).follow(bed.uid(0));
  EXPECT_EQ(bed.node(1).scheme_name(), "interest");
  EXPECT_TRUE(bed.node(1).set_scheme("epidemic"));
  EXPECT_FALSE(bed.node(1).set_scheme("no-such-scheme"));
  EXPECT_EQ(bed.node(1).scheme_name(), "epidemic");

  bed.node(0).publish(su::to_bytes("p"));
  bed.meet(0, 1);
  bed.part(0, 1);
  bed.meet(1, 2);
  // Relay worked because node 1 toggled to epidemic.
  ASSERT_EQ(bed.received[2].size(), 1u);
}

// --- security properties -----------------------------------------------------

TEST(MwSecurity, WireCarriesNoPlaintextPayload) {
  Testbed bed(2);
  bed.node(1).follow(bed.uid(0));
  const std::string secret = "extremely-secret-payload-string";
  bed.node(0).publish(su::to_bytes(secret));

  std::vector<su::Bytes> wire_frames;
  bed.net.on_wire_frame = [&](ss::PeerId, ss::PeerId, const su::Bytes& w) {
    wire_frames.push_back(w);
  };
  bed.meet(0, 1);
  ASSERT_EQ(bed.received[1].size(), 1u);  // delivered...
  ASSERT_FALSE(wire_frames.empty());
  for (const auto& frame : wire_frames) {
    std::string as_text = su::to_string(frame);
    EXPECT_EQ(as_text.find(secret), std::string::npos);  // ...but never in clear
  }
}

TEST(MwSecurity, SessionsUseFreshKeysPerPeer) {
  Testbed bed(3);
  bed.node(1).follow(bed.uid(0));
  bed.node(2).follow(bed.uid(0));
  bed.node(0).publish(su::to_bytes("same plaintext"));
  std::vector<su::Bytes> frames01, frames02;
  bed.net.on_wire_frame = [&](ss::PeerId from, ss::PeerId to, const su::Bytes& w) {
    if ((from == 0 && to == 1) || (from == 1 && to == 0)) frames01.push_back(w);
    if ((from == 0 && to == 2) || (from == 2 && to == 0)) frames02.push_back(w);
  };
  bed.meet(0, 1);
  bed.meet(0, 2);
  // The same bundle crossed both links; ciphertexts must differ.
  ASSERT_FALSE(frames01.empty());
  ASSERT_FALSE(frames02.empty());
  for (const auto& a : frames01)
    for (const auto& c : frames02) EXPECT_NE(a, c);
}

TEST(MwSecurity, RevokedCertificateIsRefusedAtHandshake) {
  Testbed bed(2);
  bed.node(1).follow(bed.uid(0));
  // Revoke node 0 and refresh node 1's CRL (the Internet-requiring step).
  bed.infra.authority().revoke(bed.node(0).credentials().certificate.serial);
  auto& creds1 = const_cast<sp::DeviceCredentials&>(bed.node(1).credentials());
  bed.infra.refresh_crl(creds1.trust);

  bed.node(0).publish(su::to_bytes("from revoked"));
  bed.meet(0, 1);
  EXPECT_TRUE(bed.received[1].empty());
  EXPECT_GE(bed.node(1).stats().handshake_cert_rejected, 1u);
}

TEST(MwSecurity, ForwarderCannotTamperWithBundle) {
  // Node 1 (epidemic relay) maliciously rewrites the payload of a carried
  // bundle; node 2 must reject it on signature grounds.
  Testbed bed(3, "epidemic");
  bed.node(2).follow(bed.uid(0));
  bed.node(0).publish(su::to_bytes("honest"));
  bed.meet(0, 1);
  bed.part(0, 1);

  // Tamper inside node 1's store.
  auto id = sb::BundleId{bed.uid(0), 1};
  auto stolen = bed.node(1).store().get(id);
  ASSERT_TRUE(stolen.has_value());
  bed.node(1).store().remove(id);
  stolen->payload = su::to_bytes("evil!!");
  bed.node(1).store().insert(*stolen, bed.sched.now());

  bed.meet(1, 2);
  EXPECT_TRUE(bed.received[2].empty());
  EXPECT_GE(bed.node(2).stats().bundle_sig_rejected, 1u);
}

TEST(MwSecurity, ImpersonatedOriginIsRejected) {
  // Node 1 crafts a bundle claiming node 0's user id but signed with its
  // own key; receivers must reject the identity mismatch.
  Testbed bed(3, "epidemic");
  bed.node(2).follow(bed.uid(0));
  // Mallory (node 1) first obtains Alice's genuine certificate by relaying
  // a real post, then forges a follow-up message in Alice's name.
  bed.node(0).publish(su::to_bytes("genuine"));
  bed.meet(0, 1);
  bed.part(0, 1);
  sb::Bundle forged;
  forged.origin = bed.uid(0);  // claims Alice
  forged.msg_num = 2;
  forged.creation_ts = bed.sched.now();
  forged.payload = su::to_bytes("fake news");
  forged.sign(bed.node(1).credentials().signing_keypair);  // signed by Mallory
  bed.node(1).store().insert(forged, bed.sched.now());
  bed.node(1).routing().refresh_advertisement();

  bed.meet(1, 2);
  // The genuine post arrives; the forged one is rejected by signature.
  ASSERT_EQ(bed.received[2].size(), 1u);
  EXPECT_EQ(su::to_string(bed.received[2][0].first.payload), "genuine");
  EXPECT_GE(bed.node(2).stats().bundle_sig_rejected, 1u);
  // A forwarder with no certificate for the claimed origin cannot even
  // transmit: provenance is required to forward (Fig 3b).
  EXPECT_FALSE(bed.node(2).store().contains({bed.uid(0), 2}));
}

TEST(MwSecurity, DirectMessageIsEndToEndEncrypted) {
  // Alice(0) -> relay Bob(1, epidemic) -> Carol(2). Bob carries the DM but
  // cannot read it; Carol decrypts it.
  Testbed bed(3, "epidemic");
  const auto& carol_cert = bed.node(2).credentials().certificate;
  bed.node(0).send_direct(carol_cert, su::to_bytes("for carol only"));

  bed.meet(0, 1);
  bed.part(0, 1);
  EXPECT_TRUE(bed.received[1].empty());  // not addressed to Bob
  ASSERT_TRUE(bed.node(1).store().contains({bed.uid(0), 1}));  // but carried
  auto carried = bed.node(1).store().get({bed.uid(0), 1});
  EXPECT_EQ(su::to_string(carried->payload).find("for carol only"), std::string::npos);
  EXPECT_FALSE(bed.node(1).open_direct(*carried).has_value());  // Bob can't open

  bed.meet(1, 2);
  ASSERT_EQ(bed.received[2].size(), 1u);
  auto plain = bed.node(2).open_direct(bed.received[2][0].first);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(su::to_string(*plain), "for carol only");
}

TEST(MwSecurity, InjectedGarbageDoesNotDesyncSession) {
  // An attacker (or bit rot) injecting frames into a live session must be
  // counted and dropped without breaking the nonce sequence of legitimate
  // traffic that follows.
  Testbed bed(2);
  bed.node(1).follow(bed.uid(0));
  bed.node(0).publish(su::to_bytes("before"));
  bed.meet(0, 1);
  ASSERT_EQ(bed.received[1].size(), 1u);

  // Still connected: inject garbage "sealed" frames from the peer's radio.
  su::Bytes junk{0x02, 0xde, 0xad, 0xbe, 0xef, 0x00, 0x11, 0x22};
  bed.net.endpoint(0).send(1, junk);
  bed.net.endpoint(0).send(1, junk);
  bed.sched.run_all();
  EXPECT_EQ(bed.node(1).stats().decrypt_failures, 2u);

  // Legitimate traffic on the same session still decrypts and delivers.
  bed.node(0).publish(su::to_bytes("after"));
  bed.sched.run_all();
  ASSERT_EQ(bed.received[1].size(), 2u);
  EXPECT_EQ(su::to_string(bed.received[1][1].first.payload), "after");
}

TEST(MwSecurity, ReplayedFrameIsRejected) {
  // Record a legitimate sealed frame off the air and replay it later: the
  // nonce sequence has moved on, so authentication fails.
  Testbed bed(2);
  bed.node(1).follow(bed.uid(0));
  bed.node(0).publish(su::to_bytes("original"));
  std::vector<su::Bytes> recorded;
  bed.net.on_wire_frame = [&](ss::PeerId from, ss::PeerId to, const su::Bytes& w) {
    if (from == 0 && to == 1 && !w.empty() && w[0] == 0x02) recorded.push_back(w);
  };
  bed.meet(0, 1);
  ASSERT_EQ(bed.received[1].size(), 1u);
  ASSERT_FALSE(recorded.empty());

  auto failures_before = bed.node(1).stats().decrypt_failures;
  bed.net.endpoint(0).send(1, recorded.front());  // replay
  bed.sched.run_all();
  EXPECT_EQ(bed.node(1).stats().decrypt_failures, failures_before + 1);
  EXPECT_EQ(bed.received[1].size(), 1u);  // no duplicate delivery
}

// --- partial transfers ----------------------------------------------------------

TEST(MwFlow, InterruptedTransferResumesNextEncounter) {
  Testbed bed(2);
  bed.node(1).follow(bed.uid(0));
  // Large posts: ~2s each on the simulated link.
  for (int i = 0; i < 3; ++i) bed.node(0).publish(su::Bytes(4'000'000, 0x55));

  bed.net.set_in_range(0, 1, true);
  // Give the link ~4.6s: handshake + summary + roughly two bundles.
  bed.sched.run_until(bed.sched.now() + 6.0);
  bed.net.set_in_range(0, 1, false);
  bed.sched.run_all();
  std::size_t got_first = bed.received[1].size();
  EXPECT_LT(got_first, 3u);  // the cut happened mid-batch

  bed.meet(0, 1);  // second encounter: pull-based protocol resumes
  EXPECT_EQ(bed.received[1].size(), 3u);
  EXPECT_EQ(bed.node(1).stats().duplicates_ignored, 0u);  // no double delivery
}

// --- spray & wait ------------------------------------------------------------------

TEST(MwSpray, RelayBudgetHalvesAndWaits) {
  Testbed bed(4, "spray");
  // Node 3 follows node 0; nodes 1, 2 are disinterested relays.
  bed.node(3).follow(bed.uid(0));
  auto* scheme0 = new sm::SprayAndWaitScheme(4);
  bed.node(0).set_scheme(std::unique_ptr<sm::RoutingScheme>(scheme0));
  auto id = bed.node(0).publish(su::to_bytes("sprayed"));
  EXPECT_EQ(scheme0->copies_left(id), 4u);

  bed.meet(0, 1);  // relay 1 takes floor(4/2) = 2 copies
  bed.part(0, 1);
  EXPECT_EQ(scheme0->copies_left(id), 2u);

  bed.meet(0, 2);  // relay 2 takes floor(2/2) = 1, source keeps 1 (wait)
  bed.part(0, 2);
  EXPECT_EQ(scheme0->copies_left(id), 1u);

  // Source in wait phase: meeting another relay must NOT hand out copies,
  // but meeting the subscriber delivers.
  bed.meet(1, 3);
  ASSERT_EQ(bed.received[3].size(), 1u);
  EXPECT_EQ(su::to_string(bed.received[3][0].first.payload), "sprayed");
}

TEST(MwSpray, WaitPhaseRelayDeliversOnlyToSubscribers) {
  Testbed bed(3, "spray");
  bed.node(2).follow(bed.uid(0));
  auto* scheme0 = new sm::SprayAndWaitScheme(2);
  bed.node(0).set_scheme(std::unique_ptr<sm::RoutingScheme>(scheme0));
  auto id = bed.node(0).publish(su::to_bytes("x"));

  bed.meet(0, 1);  // relay 1 gets 1 copy; source drops to wait (1 copy)
  bed.part(0, 1);
  EXPECT_EQ(scheme0->copies_left(id), 1u);

  // Source (wait phase) meets a second relay-capable node... via node 1,
  // which itself holds only 1 copy: node 1 must not re-relay to node 0's
  // replacements, but must deliver to subscriber node 2.
  bed.meet(1, 2);
  ASSERT_EQ(bed.received[2].size(), 1u);
}

// --- PRoPHET (unicast) ------------------------------------------------------------

TEST(MwProphet, PredictabilityGrowsOnEncounters) {
  Testbed bed(2, "prophet");
  auto* scheme = dynamic_cast<sm::ProphetScheme*>(&bed.node(0).routing().scheme());
  ASSERT_NE(scheme, nullptr);
  EXPECT_DOUBLE_EQ(scheme->predictability(bed.uid(1)), 0.0);
  bed.meet(0, 1);
  double p1 = scheme->predictability(bed.uid(1));
  EXPECT_NEAR(p1, 0.75, 1e-9);
  bed.part(0, 1);
  bed.meet(0, 1);
  EXPECT_GT(scheme->predictability(bed.uid(1)), p1);
}

TEST(MwProphet, DeliversUnicastViaBetterCarrier) {
  // 0 wants to reach 2 but only ever meets 1; 1 meets 2 regularly, so 1's
  // predictability for 2 is higher and the bundle flows 0 -> 1 -> 2.
  Testbed bed(3, "prophet");
  // Build up 1<->2 history.
  bed.meet(1, 2);
  bed.part(1, 2);
  bed.meet(1, 2);
  bed.part(1, 2);

  const auto& cert2 = bed.node(2).credentials().certificate;
  bed.node(0).send_direct(cert2, su::to_bytes("via prophet"));
  bed.meet(0, 1);
  bed.part(0, 1);
  ASSERT_TRUE(bed.node(1).store().contains({bed.uid(0), 1}));

  bed.meet(1, 2);
  ASSERT_EQ(bed.received[2].size(), 1u);
  auto plain = bed.node(2).open_direct(bed.received[2][0].first);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(su::to_string(*plain), "via prophet");
}

TEST(MwProphet, WorseCarrierDoesNotTakeBundle) {
  // Node 0 has met destination 2 directly; node 1 never has. When 0 meets
  // 1, PRoPHET must keep the bundle on 0.
  Testbed bed(3, "prophet");
  bed.meet(0, 2);
  bed.part(0, 2);
  const auto& cert2 = bed.node(2).credentials().certificate;
  bed.node(0).send_direct(cert2, su::to_bytes("stay home"));
  bed.meet(0, 1);
  bed.part(0, 1);
  EXPECT_FALSE(bed.node(1).store().contains({bed.uid(0), 1}));
}

// --- direct delivery ------------------------------------------------------------------

TEST(MwDirect, OnlyPublisherServesContent) {
  Testbed bed(3, "direct");
  bed.node(1).follow(bed.uid(0));
  bed.node(2).follow(bed.uid(0));
  bed.node(0).publish(su::to_bytes("direct-only"));

  bed.meet(0, 1);  // subscriber meets publisher: delivered
  bed.part(0, 1);
  ASSERT_EQ(bed.received[1].size(), 1u);
  EXPECT_EQ(bed.received[1][0].first.hop_count, 1);

  bed.meet(1, 2);  // subscriber 1 must NOT serve subscriber 2
  bed.part(1, 2);
  EXPECT_TRUE(bed.received[2].empty());

  bed.meet(0, 2);  // only the publisher delivers
  ASSERT_EQ(bed.received[2].size(), 1u);
}

// --- session resumption (recurring contacts) --------------------------------

TEST(MwResume, SecondEncounterResumesWithZeroEcdhOps) {
  Testbed bed(2);
  bed.node(1).follow(bed.uid(0));
  bed.node(0).publish(su::to_bytes("first"));
  bed.meet(0, 1);  // cold contact: full handshake mints the resumption secret
  bed.part(0, 1);
  ASSERT_EQ(bed.received[1].size(), 1u);
  EXPECT_EQ(bed.node(0).stats().full_handshakes, 1u);
  EXPECT_EQ(bed.node(1).stats().full_handshakes, 1u);
  std::uint64_t ecdh0 = bed.node(0).stats().ecdh_ops;
  std::uint64_t ecdh1 = bed.node(1).stats().ecdh_ops;
  EXPECT_GT(ecdh0, 0u);

  bed.node(0).publish(su::to_bytes("second"));
  bed.meet(0, 1);  // recurring contact: 1-RTT resume, data still flows
  ASSERT_EQ(bed.received[1].size(), 2u);
  EXPECT_EQ(su::to_string(bed.received[1][1].first.payload), "second");
  for (std::size_t i : {0u, 1u}) {
    EXPECT_EQ(bed.node(i).stats().sessions_established, 2u) << "node " << i;
    EXPECT_EQ(bed.node(i).stats().sessions_resumed, 1u) << "node " << i;
    EXPECT_EQ(bed.node(i).stats().full_handshakes, 1u) << "node " << i;
    EXPECT_EQ(bed.node(i).stats().resume_rejected, 0u) << "node " << i;
  }
  // The acceptance bar: a resumed contact performs zero X25519 operations.
  EXPECT_EQ(bed.node(0).stats().ecdh_ops, ecdh0);
  EXPECT_EQ(bed.node(1).stats().ecdh_ops, ecdh1);
}

TEST(MwResume, ExpiredSecretFallsBackToFullHandshake) {
  sm::SosConfig config;
  config.resume_lifetime_s = 100.0;
  Testbed bed(2, "interest", config);
  bed.node(1).follow(bed.uid(0));
  bed.node(0).publish(su::to_bytes("m1"));
  bed.meet(0, 1);
  bed.part(0, 1);

  // Let the resumption lifetime elapse: the forward-secrecy window closed.
  bed.sched.run_until(bed.sched.now() + 200.0);
  bed.node(0).publish(su::to_bytes("m2"));
  bed.meet(0, 1);
  ASSERT_EQ(bed.received[1].size(), 2u);
  for (std::size_t i : {0u, 1u}) {
    EXPECT_EQ(bed.node(i).stats().full_handshakes, 2u) << "node " << i;
    EXPECT_EQ(bed.node(i).stats().sessions_resumed, 0u) << "node " << i;
    EXPECT_EQ(bed.node(i).stats().resume_attempts, 0u) << "node " << i;
  }
}

TEST(MwResume, UnknownPeerEntryFallsBackToFullHandshake) {
  Testbed bed(2);
  bed.node(1).follow(bed.uid(0));
  bed.node(0).publish(su::to_bytes("m1"));
  bed.meet(0, 1);
  bed.part(0, 1);

  // Node 1 forgets node 0's resumption secret (cache eviction / trust
  // change); node 0 still opens with Resume and must be sent back to the
  // full handshake.
  auto fp = sc::Sha256::hash(bed.node(0).credentials().certificate.encode());
  bed.node(1).adhoc().forget_resume_secret(fp);
  bed.node(0).publish(su::to_bytes("m2"));
  bed.meet(0, 1);
  ASSERT_EQ(bed.received[1].size(), 2u);
  EXPECT_EQ(bed.node(0).stats().resume_attempts, 1u);
  EXPECT_EQ(bed.node(1).stats().resume_rejected, 1u);
  EXPECT_EQ(bed.node(0).stats().sessions_resumed, 0u);
  EXPECT_EQ(bed.node(1).stats().sessions_resumed, 0u);
  EXPECT_EQ(bed.node(0).stats().full_handshakes, 2u);
  EXPECT_EQ(bed.node(1).stats().full_handshakes, 2u);
}

TEST(MwResume, DisabledConfigNeverResumes) {
  sm::SosConfig config;
  config.resume_lifetime_s = 0;
  Testbed bed(2, "interest", config);
  bed.node(1).follow(bed.uid(0));
  bed.node(0).publish(su::to_bytes("m1"));
  bed.meet(0, 1);
  bed.part(0, 1);
  bed.node(0).publish(su::to_bytes("m2"));
  bed.meet(0, 1);
  ASSERT_EQ(bed.received[1].size(), 2u);
  EXPECT_EQ(bed.node(0).stats().resume_attempts, 0u);
  EXPECT_EQ(bed.node(0).stats().full_handshakes, 2u);
  EXPECT_EQ(bed.node(0).adhoc().resume_cache_size(), 0u);
}

TEST(MwResume, RevokedCertificateIsNotResumed) {
  Testbed bed(2);
  bed.node(1).follow(bed.uid(0));
  bed.node(0).publish(su::to_bytes("before revocation"));
  bed.meet(0, 1);
  bed.part(0, 1);
  ASSERT_EQ(bed.received[1].size(), 1u);

  // Revoke node 0 after a resumption secret exists for it: the cached
  // secret must not carry the revoked identity past the CRL.
  bed.infra.authority().revoke(bed.node(0).credentials().certificate.serial);
  auto& creds1 = const_cast<sp::DeviceCredentials&>(bed.node(1).credentials());
  bed.infra.refresh_crl(creds1.trust);

  bed.node(0).publish(su::to_bytes("after revocation"));
  bed.meet(0, 1);
  EXPECT_EQ(bed.received[1].size(), 1u);  // nothing new delivered
  EXPECT_EQ(bed.node(1).stats().sessions_resumed, 0u);
  EXPECT_GE(bed.node(1).stats().handshake_cert_rejected, 1u);
}

TEST(MwResume, EvictedCacheEntryFallsBackToFullHandshake) {
  Testbed bed(3);
  bed.node(0).adhoc().set_resume_cache_capacity(1);
  bed.node(1).follow(bed.uid(0));
  bed.node(2).follow(bed.uid(0));
  bed.node(0).publish(su::to_bytes("m1"));

  bed.meet(0, 1);
  bed.part(0, 1);
  EXPECT_EQ(bed.node(0).adhoc().resume_cache_size(), 1u);
  bed.meet(0, 2);  // capacity-1 cache: node 1's entry is evicted
  bed.part(0, 2);
  EXPECT_EQ(bed.node(0).adhoc().resume_cache_size(), 1u);

  bed.node(0).publish(su::to_bytes("m2"));
  bed.meet(0, 1);  // node 1 attempts a resume; node 0 no longer knows it
  ASSERT_EQ(bed.received[1].size(), 2u);
  EXPECT_EQ(bed.node(1).stats().resume_attempts, 1u);
  EXPECT_EQ(bed.node(0).stats().resume_rejected, 1u);
  EXPECT_EQ(bed.node(1).stats().sessions_resumed, 0u);
  EXPECT_EQ(bed.node(0).stats().full_handshakes, 3u);
}

// --- detach/attach seam under resumption (episode-partitioned replay) --------

TEST(MwSeam, MidSessionDetachResumesOnNewShard) {
  // A node detached while a session is still live (the engine never does
  // this — episode boundaries are quiescent — but the seam must be total):
  // the live session is torn down with its transport, while the resumption
  // cache migrates, so the next contact on a fresh shard is a 1-RTT resume
  // with zero new X25519 work, not a full handshake.
  sp::BootstrapService infra{su::to_bytes("seam-infra")};
  ss::Scheduler sched_a;
  ss::MpcNetwork net_a(sched_a, 2);
  sm::SosConfig config;
  config.maintenance_interval_s = 0;
  config.resume_lifetime_s = 1e9;
  sc::Drbg d0(su::to_bytes("seam-0")), d1(su::to_bytes("seam-1"));
  sm::SosNode alice(sched_a, net_a.endpoint(0), *infra.signup("seam-alice", d0, 0), config);
  sm::SosNode bob(sched_a, net_a.endpoint(1), *infra.signup("seam-bob", d1, 0), config);
  std::vector<std::string> got;
  bob.on_data = [&](const sb::Bundle& b, const sp::Certificate&) {
    got.push_back(su::to_string(b.payload));
  };
  alice.start();
  bob.start();
  bob.follow(alice.user_id());
  alice.publish(su::to_bytes("before"));
  net_a.set_in_range(0, 1, true);
  sched_a.run_all();
  ASSERT_EQ(got, (std::vector<std::string>{"before"}));
  ASSERT_EQ(alice.adhoc().secure_peers().size(), 1u);  // still mid-session
  ASSERT_EQ(alice.stats().full_handshakes, 1u);
  const std::uint64_t ecdh_alice = alice.stats().ecdh_ops;
  const std::uint64_t ecdh_bob = bob.stats().ecdh_ops;

  alice.detach();
  bob.detach();
  EXPECT_FALSE(alice.attached());
  EXPECT_EQ(alice.stats().sessions_lost, 1u);  // transport gone = session gone
  EXPECT_EQ(bob.stats().sessions_lost, 1u);
  EXPECT_EQ(alice.adhoc().secure_peers().size(), 0u);
  EXPECT_EQ(alice.adhoc().resume_cache_size(), 1u);  // the secret migrates

  ss::Scheduler sched_b(sched_a.now());
  ss::MpcNetwork net_b(sched_b, 2);
  alice.attach(sched_b, net_b.endpoint(0));
  bob.attach(sched_b, net_b.endpoint(1));
  alice.publish(su::to_bytes("after"));
  net_b.set_in_range(0, 1, true);
  sched_b.run_all();

  EXPECT_EQ(got, (std::vector<std::string>{"before", "after"}));
  for (const sm::SosNode* n : {&alice, &bob}) {
    EXPECT_EQ(n->stats().sessions_established, 2u);
    EXPECT_EQ(n->stats().sessions_resumed, 1u);  // resumed, not re-handshaken
    EXPECT_EQ(n->stats().full_handshakes, 1u);
    EXPECT_EQ(n->stats().resume_rejected, 0u);
  }
  EXPECT_EQ(alice.stats().ecdh_ops, ecdh_alice);  // zero X25519 on the resume
  EXPECT_EQ(bob.stats().ecdh_ops, ecdh_bob);
}

TEST(MwSeam, PendingAdaptiveVerifyFlushDeadlineSurvivesMigration) {
  // A verify-batch flush scheduled on shard A must fire at its original
  // absolute deadline on shard B: a burst received after the migration
  // rides the migrated deadline (earlier than the window a fresh schedule
  // would have picked), pinning that the deadline — not just the queue —
  // crossed the seam.
  sp::BootstrapService infra{su::to_bytes("flushmig-infra")};
  ss::Scheduler sched_a;
  ss::MpcNetwork net_a(sched_a, 2);
  sm::SosConfig config;
  config.maintenance_interval_s = 0;
  config.verify_batch_window_s = 100.0;
  config.verify_batch_adaptive = true;
  sc::Drbg d0(su::to_bytes("fm-0")), d1(su::to_bytes("fm-1"));
  sm::SosNode alice(sched_a, net_a.endpoint(0), *infra.signup("fm-alice", d0, 0), config);
  sm::SosNode bob(sched_a, net_a.endpoint(1), *infra.signup("fm-bob", d1, 0), config);
  alice.start();
  bob.start();
  bob.follow(alice.user_id());
  alice.publish(su::to_bytes("p1"));
  alice.publish(su::to_bytes("p2"));

  // Shard A: the burst arrives by t=8, arming the flush for its arrival
  // time + 100 (i.e. somewhere in [100, 108]). The session then drops and
  // the adaptive path delivers the burst immediately — but the armed
  // deadline stays pending, with an empty queue behind it.
  net_a.set_in_range(0, 1, true);
  sched_a.run_until(8.0);
  ASSERT_EQ(bob.stats().bundles_received, 2u);
  ASSERT_EQ(bob.stats().deliveries, 0u);  // still queued: window is long
  net_a.set_in_range(0, 1, false);
  sched_a.run_until(12.0);
  ASSERT_EQ(bob.stats().deliveries, 2u);  // adaptive flush at session drop

  alice.detach();
  bob.detach();
  ss::Scheduler sched_b(sched_a.now());
  ss::MpcNetwork net_b(sched_b, 2);
  alice.attach(sched_b, net_b.endpoint(0));
  bob.attach(sched_b, net_b.endpoint(1));

  // Shard B: a new bundle arrives ~t=13-20 — a fresh schedule would flush
  // at >= 113. It must instead ride the migrated deadline (<= 108).
  alice.publish(su::to_bytes("p3"));
  net_b.set_in_range(0, 1, true);
  sched_b.run_until(20.0);
  ASSERT_EQ(bob.stats().bundles_received, 3u);
  EXPECT_EQ(bob.stats().deliveries, 2u);
  sched_b.run_until(95.0);
  EXPECT_EQ(bob.stats().deliveries, 2u);  // deadline not reached yet
  sched_b.run_until(110.0);
  EXPECT_EQ(bob.stats().deliveries, 3u)
      << "flush did not fire at the migrated deadline on the new shard";
  EXPECT_GE(bob.stats().bundle_batch_verifies, 1u);
}

// --- stats & bookkeeping -----------------------------------------------------------------

TEST(MwStats, CountersTrackActivity) {
  Testbed bed(2);
  bed.node(1).follow(bed.uid(0));
  bed.node(0).publish(su::to_bytes("m1"));
  bed.node(0).publish(su::to_bytes("m2"));
  bed.meet(0, 1);

  const auto& s0 = bed.node(0).stats();
  const auto& s1 = bed.node(1).stats();
  EXPECT_EQ(s0.published, 2u);
  EXPECT_EQ(s0.bundles_sent, 2u);
  EXPECT_EQ(s1.bundles_received, 2u);
  EXPECT_EQ(s1.deliveries, 2u);
  EXPECT_EQ(s1.bundles_carried, 2u);
  EXPECT_EQ(s0.sessions_established, 1u);
  EXPECT_EQ(s1.sessions_established, 1u);
}

TEST(MwStats, PeerCertificateAvailableAfterHandshake) {
  Testbed bed(2);
  bed.node(1).follow(bed.uid(0));
  bed.node(0).publish(su::to_bytes("x"));
  bed.meet(0, 1);
  const auto* cert = bed.node(1).adhoc().peer_certificate(0);
  ASSERT_NE(cert, nullptr);
  EXPECT_EQ(cert->subject_id, bed.uid(0));
}
