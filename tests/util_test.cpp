// Unit and property tests for src/util: byte codecs, binary wire codec,
// deterministic RNG and distributions, statistics, time helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/bytes.hpp"
#include "util/codec.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace su = sos::util;

TEST(Bytes, HexRoundTrip) {
  su::Bytes b = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(su::hex_encode(b), "0001abff7f");
  auto back = su::hex_decode("0001abff7f");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, b);
}

TEST(Bytes, HexDecodeRejectsOddLength) {
  EXPECT_FALSE(su::hex_decode("abc").has_value());
}

TEST(Bytes, HexDecodeRejectsNonHex) {
  EXPECT_FALSE(su::hex_decode("zz").has_value());
  EXPECT_FALSE(su::hex_decode("0g").has_value());
}

TEST(Bytes, HexDecodeAcceptsUppercase) {
  auto b = su::hex_decode("DEADBEEF");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(su::hex_encode(*b), "deadbeef");
}

TEST(Bytes, Base32KnownVectors) {
  // RFC 4648 test vectors (padding stripped).
  EXPECT_EQ(su::base32_encode(su::to_bytes("")), "");
  EXPECT_EQ(su::base32_encode(su::to_bytes("f")), "MY");
  EXPECT_EQ(su::base32_encode(su::to_bytes("fo")), "MZXQ");
  EXPECT_EQ(su::base32_encode(su::to_bytes("foo")), "MZXW6");
  EXPECT_EQ(su::base32_encode(su::to_bytes("foob")), "MZXW6YQ");
  EXPECT_EQ(su::base32_encode(su::to_bytes("fooba")), "MZXW6YTB");
  EXPECT_EQ(su::base32_encode(su::to_bytes("foobar")), "MZXW6YTBOI");
}

TEST(Bytes, Base32TenByteIdIs16Chars) {
  // The paper's user ids are 10-byte strings; 10 bytes = 80 bits = exactly
  // 16 base32 characters, no padding.
  su::Bytes id(10, 0xa5);
  EXPECT_EQ(su::base32_encode(id).size(), 16u);
}

TEST(Bytes, Base32RoundTripSweep) {
  su::Rng rng(7);
  for (int len = 0; len < 40; ++len) {
    su::Bytes b(len);
    for (auto& v : b) v = static_cast<std::uint8_t>(rng.next());
    auto enc = su::base32_encode(b);
    auto dec = su::base32_decode(enc);
    ASSERT_TRUE(dec.has_value());
    EXPECT_EQ(*dec, b) << "len=" << len;
  }
}

TEST(Bytes, CtEqual) {
  su::Bytes a = {1, 2, 3};
  su::Bytes b = {1, 2, 3};
  su::Bytes c = {1, 2, 4};
  su::Bytes d = {1, 2};
  EXPECT_TRUE(su::ct_equal(a, b));
  EXPECT_FALSE(su::ct_equal(a, c));
  EXPECT_FALSE(su::ct_equal(a, d));
}

TEST(Bytes, EndianLoadStore) {
  std::uint8_t buf[8];
  su::store32_le(buf, 0x01020304u);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(su::load32_le(buf), 0x01020304u);
  su::store32_be(buf, 0x01020304u);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(su::load32_be(buf), 0x01020304u);
  su::store64_le(buf, 0x0102030405060708ULL);
  EXPECT_EQ(su::load64_le(buf), 0x0102030405060708ULL);
  su::store64_be(buf, 0x0102030405060708ULL);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(su::load64_be(buf), 0x0102030405060708ULL);
}

TEST(Codec, ScalarsRoundTrip) {
  su::Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.f64(3.14159);
  su::Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.done());
}

TEST(Codec, VarintBoundaries) {
  for (std::uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL, 0xFFFFFFFFULL,
                          0xFFFFFFFFFFFFFFFFULL}) {
    su::Writer w;
    w.varint(v);
    su::Reader r(w.data());
    EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.done());
  }
}

TEST(Codec, StringsAndBytes) {
  su::Writer w;
  w.str("hello");
  w.bytes(su::Bytes{1, 2, 3});
  w.str("");
  su::Reader r(w.data());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.bytes(), (su::Bytes{1, 2, 3}));
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.done());
}

TEST(Codec, ReaderPoisonsOnTruncation) {
  su::Writer w;
  w.u32(42);
  su::Bytes data = w.take();
  data.pop_back();
  su::Reader r(data);
  r.u32();
  EXPECT_FALSE(r.ok());
  // Subsequent reads stay poisoned and return zeros.
  EXPECT_EQ(r.u8(), 0);
  EXPECT_FALSE(r.done());
}

TEST(Codec, ReaderRejectsOversizedLengthPrefix) {
  su::Writer w;
  w.varint(1'000'000);  // claims 1MB payload
  su::Reader r(w.data());
  auto b = r.bytes();
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(r.ok());
}

TEST(Codec, DoneDetectsTrailingBytes) {
  su::Writer w;
  w.u8(1);
  w.u8(2);
  su::Reader r(w.data());
  r.u8();
  EXPECT_FALSE(r.done());
  r.u8();
  EXPECT_TRUE(r.done());
}

// --- RNG -------------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances) {
  su::Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  su::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound) {
  su::Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
    EXPECT_EQ(rng.below(1), 0u);
  }
}

TEST(Rng, UniformInUnitInterval) {
  su::Rng rng(42);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialMean) {
  su::Rng rng(42);
  double sum = 0;
  const double mean = 3.5;
  for (int i = 0; i < 20000; ++i) sum += rng.exponential(mean);
  EXPECT_NEAR(sum / 20000.0, mean, 0.15);
}

TEST(Rng, NormalMoments) {
  su::Rng rng(42);
  const int n = 20000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, PoissonMean) {
  su::Rng rng(42);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += static_cast<double>(rng.poisson(4.2));
  EXPECT_NEAR(sum / 20000.0, 4.2, 0.15);
}

TEST(Rng, PoissonLargeMeanUsesApproximation) {
  su::Rng rng(42);
  double sum = 0;
  for (int i = 0; i < 5000; ++i) sum += static_cast<double>(rng.poisson(100.0));
  EXPECT_NEAR(sum / 5000.0, 100.0, 2.0);
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  su::Rng rng(42);
  int low = 0;
  for (int i = 0; i < 2000; ++i)
    if (rng.zipf(10, 1.2) == 0) ++low;
  // rank 0 should dominate a 10-element zipf(1.2)
  EXPECT_GT(low, 2000 / 10);
}

TEST(Rng, ChanceExtremes) {
  su::Rng rng(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ShuffleIsPermutation) {
  su::Rng rng(42);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ForkStreamsIndependent) {
  su::Rng parent(42);
  su::Rng c1 = parent.fork();
  su::Rng c2 = parent.fork();
  EXPECT_NE(c1.next(), c2.next());
}

// --- Stats -----------------------------------------------------------

TEST(Cdf, BasicQuantiles) {
  su::Cdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(i);
  EXPECT_DOUBLE_EQ(cdf.at(50), 0.50);
  EXPECT_DOUBLE_EQ(cdf.at(100), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 50);
  EXPECT_DOUBLE_EQ(cdf.min(), 1);
  EXPECT_DOUBLE_EQ(cdf.max(), 100);
  EXPECT_NEAR(cdf.mean(), 50.5, 1e-9);
}

TEST(Cdf, AtIsInclusive) {
  su::Cdf cdf;
  cdf.add(1.0);
  cdf.add(2.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(1.999), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 1.0);
}

TEST(Cdf, EmptyIsSafe) {
  su::Cdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 0.0);
}

TEST(Cdf, FractionAbove) {
  su::Cdf cdf;
  for (int i = 1; i <= 10; ++i) cdf.add(static_cast<double>(i) / 10.0);
  EXPECT_NEAR(cdf.fraction_above(0.8), 0.2, 1e-9);
}

TEST(Stats, SummaryValues) {
  std::vector<double> xs;
  for (int i = 1; i <= 9; ++i) xs.push_back(i);
  auto s = su::summarize(xs);
  EXPECT_EQ(s.n, 9u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.p50, 5.0);
}

TEST(Histogram2d, CountsAndOccupancy) {
  su::Histogram2d h(0, 0, 10, 10, 10, 10);
  h.add(0.5, 0.5);
  h.add(0.6, 0.6);
  h.add(9.9, 9.9);
  h.add(20, 20);  // out of range, dropped
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.cell(0, 0), 2u);
  EXPECT_EQ(h.cell(9, 9), 1u);
  EXPECT_NEAR(h.occupancy(), 2.0 / 100.0, 1e-9);
}

TEST(Histogram2d, RenderShapeAndOrientation) {
  su::Histogram2d h(0, 0, 4, 2, 4, 2);
  h.add(0.1, 1.9);  // top-left in rendered output
  auto s = h.render();
  // 2 rows of 4 chars + newlines
  ASSERT_EQ(s.size(), 10u);
  EXPECT_NE(s[0], ' ');   // top-left occupied
  EXPECT_EQ(s[5], ' ');   // bottom-left empty
}

// --- Time ------------------------------------------------------------

TEST(Time, UnitHelpers) {
  EXPECT_DOUBLE_EQ(su::minutes(2), 120.0);
  EXPECT_DOUBLE_EQ(su::hours(1), 3600.0);
  EXPECT_DOUBLE_EQ(su::days(1), 86400.0);
}

TEST(Time, DayOfWeekStartsMonday) {
  EXPECT_EQ(su::day_of_week(0.0), 0);
  EXPECT_EQ(su::day_of_week(su::days(4)), 4);   // Friday
  EXPECT_EQ(su::day_of_week(su::days(5)), 5);   // Saturday
  EXPECT_EQ(su::day_of_week(su::days(7)), 0);   // wraps to Monday
}

TEST(Time, Weekend) {
  EXPECT_FALSE(su::is_weekend(su::days(0)));
  EXPECT_FALSE(su::is_weekend(su::days(4.5)));
  EXPECT_TRUE(su::is_weekend(su::days(5.1)));
  EXPECT_TRUE(su::is_weekend(su::days(6.9)));
}

TEST(Time, TimeOfDay) {
  EXPECT_DOUBLE_EQ(su::time_of_day(su::days(2) + su::hours(7.5)), su::hours(7.5));
}

TEST(Time, Formatting) {
  EXPECT_EQ(su::format_time(su::days(1) + su::hours(7) + su::minutes(30)), "d1 07:30");
  EXPECT_EQ(su::format_duration(45.0), "45s");
  EXPECT_EQ(su::format_duration(su::hours(3)), "3.0h");
}
