// Graph library tests: structural invariants on known graphs, metric
// formulas, generators, and the reconstructed Fig 4a deployment graph.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/digraph.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"

namespace sg = sos::graph;

TEST(Digraph, AddAndQueryEdges) {
  sg::Digraph g(3);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(0, 1));  // duplicate
  EXPECT_FALSE(g.add_edge(1, 1));  // self loop
  EXPECT_FALSE(g.add_edge(0, 9));  // out of range
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.in_degree(1), 1u);
}

TEST(Digraph, RemoveEdge) {
  sg::Digraph g(3);
  g.add_edge(0, 1);
  g.remove_edge(0, 1);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.edge_count(), 0u);
  g.remove_edge(0, 1);  // idempotent
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Digraph, DensityDirected) {
  sg::Digraph g(10);
  // 46 arcs over 90 possible: the paper's directed subscription density.
  int added = 0;
  for (sg::NodeId i = 0; i < 10 && added < 46; ++i)
    for (sg::NodeId j = 0; j < 10 && added < 46; ++j)
      if (i != j && g.add_edge(i, j)) ++added;
  EXPECT_NEAR(g.density(), 46.0 / 90.0, 1e-12);
}

TEST(Digraph, UndirectedClosureSymmetric) {
  sg::Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  auto u = g.undirected();
  EXPECT_TRUE(u.is_symmetric());
  EXPECT_TRUE(u.has_edge(1, 0));
  EXPECT_TRUE(u.has_edge(3, 2));
  EXPECT_EQ(u.edge_count(), 4u);
}

TEST(Metrics, ShortestPathsOnPath) {
  auto g = sg::path(5);
  auto d = sg::shortest_paths_from(g, 0);
  EXPECT_EQ(d[4], 4u);
  EXPECT_EQ(sg::diameter(g), 4u);
  EXPECT_EQ(sg::radius(g), 2u);
  auto c = sg::center(g);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0], 2u);
}

TEST(Metrics, UnreachableNodes) {
  sg::Digraph g(3);
  g.add_edge(0, 1);
  auto d = sg::shortest_paths_from(g, 0);
  EXPECT_EQ(d[2], sg::kUnreachable);
  EXPECT_FALSE(sg::is_connected(g));
}

TEST(Metrics, DirectedReachabilityIsAsymmetric) {
  sg::Digraph g(2);
  g.add_edge(0, 1);
  EXPECT_EQ(sg::shortest_paths_from(g, 0)[1], 1u);
  EXPECT_EQ(sg::shortest_paths_from(g, 1)[0], sg::kUnreachable);
}

TEST(Metrics, CompleteGraph) {
  auto g = sg::complete(5);
  EXPECT_EQ(sg::diameter(g), 1u);
  EXPECT_EQ(sg::radius(g), 1u);
  EXPECT_EQ(sg::center(g).size(), 5u);
  EXPECT_DOUBLE_EQ(sg::average_shortest_path_length(g), 1.0);
  EXPECT_DOUBLE_EQ(sg::transitivity(g), 1.0);
  EXPECT_EQ(sg::triangle_count(g), 10u);  // C(5,3)
}

TEST(Metrics, StarGraphHasNoTriangles) {
  auto g = sg::star(6);
  EXPECT_EQ(sg::triangle_count(g), 0u);
  EXPECT_DOUBLE_EQ(sg::transitivity(g), 0.0);
  EXPECT_EQ(sg::radius(g), 1u);
  EXPECT_EQ(sg::diameter(g), 2u);
  auto c = sg::center(g);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0], 0u);
}

TEST(Metrics, CycleMetrics) {
  auto g = sg::cycle(6);
  EXPECT_EQ(sg::diameter(g), 3u);
  EXPECT_EQ(sg::radius(g), 3u);
  EXPECT_EQ(sg::triangle_count(g), 0u);
}

TEST(Metrics, TriadCountFormula) {
  // A path 0-1-2 has exactly one connected triad (centered at 1).
  auto g = sg::path(3);
  EXPECT_EQ(sg::connected_triad_count(g), 1u);
  EXPECT_EQ(sg::triangle_count(g), 0u);
}

TEST(Metrics, TransitivityTriangleWithTail) {
  // Triangle 0-1-2 plus pendant 3 attached to 0.
  sg::Digraph g(4);
  for (auto [a, b] : {std::pair{0, 1}, {1, 2}, {0, 2}, {0, 3}}) {
    g.add_edge(static_cast<sg::NodeId>(a), static_cast<sg::NodeId>(b));
    g.add_edge(static_cast<sg::NodeId>(b), static_cast<sg::NodeId>(a));
  }
  // triangles = 1; triads: deg(0)=3 -> 3, deg(1)=deg(2)=2 -> 1+1, deg(3)=1 -> 0. total 5.
  EXPECT_EQ(sg::triangle_count(g), 1u);
  EXPECT_EQ(sg::connected_triad_count(g), 5u);
  EXPECT_DOUBLE_EQ(sg::transitivity(g), 3.0 / 5.0);
}

// --- The reconstructed deployment graph (Fig 4a) -------------------------

TEST(Baker2017, NodeAndSubscriptionCounts) {
  auto g = sg::baker2017_social_graph();
  EXPECT_EQ(g.node_count(), 10u);
  EXPECT_EQ(g.edge_count(), 46u);  // paper: 46 subscriptions
}

TEST(Baker2017, UndirectedDensityMatchesPaper) {
  auto u = sg::baker2017_social_graph().undirected();
  // paper: 0.64 (29 of 45 possible undirected pairs)
  EXPECT_EQ(u.edge_count(), 58u);  // 29 pairs, both arcs
  EXPECT_NEAR(u.density() * 1.0, 58.0 / 90.0, 1e-12);
  EXPECT_NEAR(29.0 / 45.0, 0.644, 0.001);
}

TEST(Baker2017, PaperExampleOneWayFollow) {
  auto g = sg::baker2017_social_graph();
  // paper: edge 1->3 exists, 3->1 does not (0-indexed: 0->2 without 2->0).
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(2, 0));
}

TEST(Baker2017, DiameterAndRadius) {
  auto g = sg::baker2017_social_graph();
  // Both directed and undirected readings give diameter 2 / radius 1.
  EXPECT_EQ(sg::diameter(g), 2u);
  EXPECT_EQ(sg::radius(g), 1u);
  auto u = g.undirected();
  EXPECT_EQ(sg::diameter(u), 2u);
  EXPECT_EQ(sg::radius(u), 1u);
}

TEST(Baker2017, CentersArePaperNodes6And7) {
  auto g = sg::baker2017_social_graph();
  auto c = sg::center(g.undirected());
  // 0-indexed ids 5, 6 == paper's nodes 6, 7.
  EXPECT_EQ(c, (std::vector<sg::NodeId>{5, 6}));
}

TEST(Baker2017, AverageShortestPathNearPaper) {
  auto u = sg::baker2017_social_graph().undirected();
  // paper reports 1.3; exact reconstruction gives 61/45 = 1.356
  EXPECT_NEAR(sg::average_shortest_path_length(u), 1.356, 0.01);
}

TEST(Baker2017, TransitivityNearPaper) {
  auto g = sg::baker2017_social_graph();
  // paper reports 0.80; the two-K4 reconstruction gives 0.789
  EXPECT_NEAR(sg::transitivity(g), 0.789, 0.005);
}

TEST(Baker2017, ReciprocatedPairCount) {
  auto g = sg::baker2017_social_graph();
  std::size_t mutual = 0;
  for (auto [i, j] : g.edges())
    if (i < j && g.has_edge(j, i)) ++mutual;
  // 46 arcs over 29 pairs => 17 reciprocated + 12 one-way.
  EXPECT_EQ(mutual, 17u);
}

TEST(Baker2017, EveryUserIsWithinTwoHopsOfEveryOther) {
  // "even if a user does not follow another user directly, there is still
  //  an indirect follower that is two degrees away"
  auto g = sg::baker2017_social_graph();
  auto d = sg::all_pairs_shortest_paths(g);
  for (sg::NodeId i = 0; i < 10; ++i)
    for (sg::NodeId j = 0; j < 10; ++j)
      if (i != j) {
        EXPECT_LE(d[i][j], 2u) << i << "->" << j;
      }
}

// --- Generators ------------------------------------------------------------

TEST(Generators, ErdosRenyiDensityConcentrates) {
  sos::util::Rng rng(11);
  auto g = sg::erdos_renyi(60, 0.3, rng);
  EXPECT_NEAR(g.density(), 0.3, 0.05);
}

TEST(Generators, ErdosRenyiExtremes) {
  sos::util::Rng rng(11);
  EXPECT_EQ(sg::erdos_renyi(10, 0.0, rng).edge_count(), 0u);
  EXPECT_EQ(sg::erdos_renyi(10, 1.0, rng).edge_count(), 90u);
}

TEST(Generators, WattsStrogatzIsSymmetricAndConnected) {
  sos::util::Rng rng(5);
  auto g = sg::watts_strogatz(30, 2, 0.1, rng);
  EXPECT_TRUE(g.is_symmetric());
  EXPECT_TRUE(sg::is_connected(g));
}

TEST(Generators, WattsStrogatzZeroBetaIsRingLattice) {
  sos::util::Rng rng(5);
  auto g = sg::watts_strogatz(12, 2, 0.0, rng);
  // Every node connects to 2 on each side: degree 4.
  for (sg::NodeId v = 0; v < 12; ++v) EXPECT_EQ(g.out_degree(v), 4u) << v;
}

TEST(Generators, SocialCommunityRespectsProbabilities) {
  sos::util::Rng rng(17);
  auto g = sg::social_community(40, 1.0, 0.0, rng);
  EXPECT_TRUE(g.is_symmetric());
  EXPECT_EQ(g.edge_count(), 40u * 39u);
}

TEST(Generators, SocialCommunityOneWayOnly) {
  sos::util::Rng rng(17);
  auto g = sg::social_community(30, 0.0, 1.0, rng);
  // every pair got exactly one direction
  EXPECT_EQ(g.edge_count(), 30u * 29u / 2u);
  for (auto [i, j] : g.edges()) EXPECT_FALSE(g.has_edge(j, i));
}
