// Bundle and store tests: wire round trips, signature semantics (hop count
// mutable, content immutable), TTL expiry, duplicate suppression, capacity
// eviction, and the two protocol queries (summary / newer_than).
#include <gtest/gtest.h>

#include "bundle/bundle.hpp"
#include "bundle/store.hpp"
#include "crypto/drbg.hpp"
#include "util/rng.hpp"

namespace sb = sos::bundle;
namespace sp = sos::pki;
namespace sc = sos::crypto;
namespace su = sos::util;

namespace {
sc::Ed25519Keypair keys_for(const std::string& name) {
  sc::Drbg d(su::to_bytes("bundle-test-" + name));
  return sc::Ed25519Keypair::from_seed(d.generate_array<32>());
}

sb::Bundle make_bundle(const std::string& author, std::uint32_t num, double ts = 100.0,
                       const std::string& text = "post") {
  sb::Bundle b;
  b.origin = sp::user_id_from_name(author);
  b.msg_num = num;
  b.creation_ts = ts;
  b.lifetime_s = 0;
  b.payload = su::to_bytes(text);
  b.sign(keys_for(author));
  return b;
}
}  // namespace

TEST(Bundle, EncodeDecodeRoundTrip) {
  auto b = make_bundle("alice", 7, 123.5, "hello dtn");
  b.hop_count = 3;
  auto decoded = sb::Bundle::decode(b.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->origin, b.origin);
  EXPECT_EQ(decoded->msg_num, 7u);
  EXPECT_DOUBLE_EQ(decoded->creation_ts, 123.5);
  EXPECT_EQ(decoded->hop_count, 3);
  EXPECT_EQ(decoded->payload, b.payload);
  EXPECT_EQ(decoded->signature, b.signature);
}

TEST(Bundle, DecodeRejectsGarbage) {
  EXPECT_FALSE(sb::Bundle::decode(su::to_bytes("not a bundle")).has_value());
  auto enc = make_bundle("a", 1).encode();
  enc.pop_back();
  EXPECT_FALSE(sb::Bundle::decode(enc).has_value());
  enc = make_bundle("a", 1).encode();
  enc.push_back(0);  // trailing byte
  EXPECT_FALSE(sb::Bundle::decode(enc).has_value());
}

TEST(Bundle, DecodeRejectsBadContentType) {
  auto b = make_bundle("a", 1);
  auto enc = b.encode();
  // content type byte sits after origin(10) + msg_num(4) + ts(8) + lifetime(4)
  enc[26] = 0x7F;
  EXPECT_FALSE(sb::Bundle::decode(enc).has_value());
}

TEST(Bundle, SignatureVerifies) {
  auto b = make_bundle("alice", 1);
  EXPECT_TRUE(b.verify(keys_for("alice").public_key()));
  EXPECT_FALSE(b.verify(keys_for("bob").public_key()));
}

TEST(Bundle, TamperedPayloadFailsVerification) {
  auto b = make_bundle("alice", 1);
  b.payload = su::to_bytes("forged content");
  EXPECT_FALSE(b.verify(keys_for("alice").public_key()));
}

TEST(Bundle, HopCountMutableWithoutBreakingSignature) {
  // Forwarders increment hop_count; the origin signature must survive.
  auto b = make_bundle("alice", 1);
  b.hop_count = 5;
  EXPECT_TRUE(b.verify(keys_for("alice").public_key()));
}

TEST(Bundle, MetadataTamperFailsVerification) {
  auto key = keys_for("alice").public_key();
  auto b1 = make_bundle("alice", 1);
  b1.msg_num = 2;
  EXPECT_FALSE(b1.verify(key));
  auto b2 = make_bundle("alice", 1);
  b2.creation_ts += 1;
  EXPECT_FALSE(b2.verify(key));
  auto b3 = make_bundle("alice", 1);
  b3.dest = sp::user_id_from_name("bob");
  EXPECT_FALSE(b3.verify(key));
}

TEST(Bundle, ExpiryRule) {
  auto b = make_bundle("alice", 1, 100.0);
  b.lifetime_s = 60;
  EXPECT_FALSE(b.expired(100.0));
  EXPECT_FALSE(b.expired(160.0));
  EXPECT_TRUE(b.expired(160.1));
  b.lifetime_s = 0;  // no expiry
  EXPECT_FALSE(b.expired(1e12));
}

TEST(Bundle, UnicastFlag) {
  auto b = make_bundle("alice", 1);
  EXPECT_FALSE(b.is_unicast());
  b.dest = sp::user_id_from_name("bob");
  EXPECT_TRUE(b.is_unicast());
}

class BundleCodecSweep : public ::testing::TestWithParam<int> {};

TEST_P(BundleCodecSweep, RandomPayloadRoundTrip) {
  su::Rng rng(GetParam());
  sb::Bundle b;
  // Two-step concat: `"u" + std::to_string(...)` trips GCC 12's -Wrestrict
  // false positive (PR 105651) when inlined under -O2.
  std::string origin_name = "u";
  origin_name += std::to_string(GetParam());
  b.origin = sp::user_id_from_name(origin_name);
  b.msg_num = static_cast<std::uint32_t>(rng.next());
  b.creation_ts = rng.uniform(0, 1e6);
  b.lifetime_s = static_cast<std::uint32_t>(rng.below(100000));
  b.content = static_cast<sb::ContentType>(rng.below(3));
  b.hop_count = static_cast<std::uint8_t>(rng.below(256));
  b.payload.resize(rng.below(2048));
  for (auto& p : b.payload) p = static_cast<std::uint8_t>(rng.next());
  b.sign(keys_for("sweeper"));
  auto decoded = sb::Bundle::decode(b.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->encode(), b.encode());
  EXPECT_TRUE(decoded->verify(keys_for("sweeper").public_key()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BundleCodecSweep, ::testing::Range(0, 12));

// --- store ---------------------------------------------------------------

TEST(Store, InsertAndDuplicateSuppression) {
  sb::BundleStore store;
  EXPECT_TRUE(store.insert(make_bundle("alice", 1), 0));
  EXPECT_FALSE(store.insert(make_bundle("alice", 1), 1));  // dup id
  EXPECT_TRUE(store.insert(make_bundle("alice", 2), 2));
  EXPECT_TRUE(store.insert(make_bundle("bob", 1), 3));
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.duplicate_count(), 1u);
}

TEST(Store, SummaryTracksLatestPerPublisher) {
  sb::BundleStore store;
  store.insert(make_bundle("alice", 1), 0);
  store.insert(make_bundle("alice", 5), 0);
  store.insert(make_bundle("alice", 3), 0);
  store.insert(make_bundle("bob", 2), 0);
  auto s = store.summary();
  EXPECT_EQ(s.at(sp::user_id_from_name("alice")), 5u);
  EXPECT_EQ(s.at(sp::user_id_from_name("bob")), 2u);
  EXPECT_EQ(s.size(), 2u);
}

TEST(Store, NewerThanRangeScan) {
  sb::BundleStore store;
  for (std::uint32_t i = 1; i <= 10; ++i) store.insert(make_bundle("alice", i), 0);
  store.insert(make_bundle("bob", 99), 0);
  auto got = store.newer_than(sp::user_id_from_name("alice"), 7);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].msg_num, 8u);
  EXPECT_EQ(got[2].msg_num, 10u);
  EXPECT_TRUE(store.newer_than(sp::user_id_from_name("alice"), 10).empty());
  // Zero means "send everything".
  EXPECT_EQ(store.newer_than(sp::user_id_from_name("alice"), 0).size(), 10u);
}

TEST(Store, NewerThanUnknownUserIsEmpty) {
  sb::BundleStore store;
  store.insert(make_bundle("alice", 1), 0);
  EXPECT_TRUE(store.newer_than(sp::user_id_from_name("nobody"), 0).empty());
}

TEST(Store, ExpireRemovesOnlyExpired) {
  sb::BundleStore store;
  auto fresh = make_bundle("alice", 1, 1000.0);
  auto stale = make_bundle("alice", 2, 0.0);
  stale.lifetime_s = 10;
  stale.sign(keys_for("alice"));
  store.insert(fresh, 1000);
  store.insert(stale, 1000);
  EXPECT_EQ(store.expire(1000.0), 1u);
  EXPECT_TRUE(store.contains({sp::user_id_from_name("alice"), 1}));
  EXPECT_FALSE(store.contains({sp::user_id_from_name("alice"), 2}));
}

TEST(Store, CapacityEvictsOldestCreation) {
  sb::BundleStore store(3);
  store.insert(make_bundle("a", 1, 100.0), 0);
  store.insert(make_bundle("a", 2, 50.0), 0);  // oldest creation
  store.insert(make_bundle("a", 3, 200.0), 0);
  store.insert(make_bundle("a", 4, 150.0), 0);  // forces eviction
  EXPECT_EQ(store.size(), 3u);
  EXPECT_FALSE(store.contains({sp::user_id_from_name("a"), 2}));
  EXPECT_EQ(store.evicted_count(), 1u);
}

TEST(Store, GetAndRemove) {
  sb::BundleStore store;
  store.insert(make_bundle("alice", 1, 100.0, "payload-x"), 0);
  auto got = store.get({sp::user_id_from_name("alice"), 1});
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(su::to_string(got->payload), "payload-x");
  store.remove({sp::user_id_from_name("alice"), 1});
  EXPECT_FALSE(store.get({sp::user_id_from_name("alice"), 1}).has_value());
}

TEST(Store, AllIteratesEverything) {
  sb::BundleStore store;
  for (std::uint32_t i = 1; i <= 5; ++i) store.insert(make_bundle("alice", i), 7.0);
  auto all = store.all();
  EXPECT_EQ(all.size(), 5u);
  for (const auto* s : all) EXPECT_DOUBLE_EQ(s->received_at, 7.0);
}
