// Contact-trace tests: format round trips, recorder/player symmetry, and a
// full middleware run driven by a replayed trace instead of live mobility
// (the seam where the paper's real deployment traces would plug in).
#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "mw/sos_node.hpp"
#include "pki/bootstrap.hpp"
#include "sim/multipeer.hpp"
#include "sim/radio.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace sc = sos::crypto;
namespace sm = sos::mw;
namespace sp = sos::pki;
namespace ss = sos::sim;
namespace su = sos::util;

TEST(ContactTrace, AddNormalizesAndValidates) {
  ss::ContactTrace t;
  EXPECT_TRUE(t.add({10, 20, 5, 2}));
  EXPECT_FALSE(t.add({10, 20, 3, 3}));  // self contact
  EXPECT_FALSE(t.add({20, 10, 0, 1}));  // end < start
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.contacts()[0].a, 2u);  // normalized a < b
  EXPECT_EQ(t.contacts()[0].b, 5u);
  EXPECT_EQ(t.node_count(), 6u);
  EXPECT_DOUBLE_EQ(t.duration(), 20.0);
}

TEST(ContactTrace, TextRoundTrip) {
  ss::ContactTrace t;
  t.add({0, 60, 0, 1});
  t.add({100.5, 130.25, 1, 2});
  auto parsed = ss::ContactTrace::parse(t.to_string());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_DOUBLE_EQ(parsed->contacts()[1].start, 100.5);
  EXPECT_DOUBLE_EQ(parsed->contacts()[1].end, 130.25);
}

TEST(ContactTrace, ParseSkipsCommentsRejectsGarbage) {
  auto ok = ss::ContactTrace::parse("# header\n0 10 0 1\n\n20 30 1 2\n");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->size(), 2u);
  EXPECT_FALSE(ss::ContactTrace::parse("0 10 zero one\n").has_value());
  EXPECT_FALSE(ss::ContactTrace::parse("50 10 0 1\n").has_value());  // end<start
}

TEST(ContactTrace, DurationSamples) {
  ss::ContactTrace t;
  t.add({0, 30, 0, 1});
  t.add({0, 90, 0, 2});
  auto d = t.contact_durations();
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0], 30.0);
  EXPECT_DOUBLE_EQ(d[1], 90.0);
}

TEST(TraceRecorder, RecordsDetectorEvents) {
  // Record a synthetic mobility run, then check the trace matches what the
  // detector reported.
  su::Rng rng(5);
  auto m = ss::random_waypoint(15, 3000, {}, rng);
  ss::Scheduler sched;
  ss::EncounterDetector det(sched, *m, 300.0, 25.0);
  ss::TraceRecorder recorder(sched);
  int starts = 0, ends = 0;
  det.on_contact_start = [&](std::size_t a, std::size_t b) {
    ++starts;
    recorder.contact_start((std::uint32_t)a, (std::uint32_t)b);
  };
  det.on_contact_end = [&](std::size_t a, std::size_t b) {
    ++ends;
    recorder.contact_end((std::uint32_t)a, (std::uint32_t)b);
  };
  det.start(2000);
  sched.run_until(2000);
  auto trace = recorder.finish();
  EXPECT_EQ(trace.size(), static_cast<std::size_t>(starts));
  EXPECT_GT(starts, 0);
  for (const auto& c : trace.contacts()) {
    EXPECT_LT(c.a, c.b);
    EXPECT_LE(c.end, 2000.0);
    EXPECT_GE(c.end, c.start);
  }
}

TEST(TracePlayer, ReplaysAtExactTimes) {
  ss::ContactTrace t;
  t.add({100, 200, 0, 1});
  t.add({150, 300, 1, 2});
  ss::Scheduler sched;
  ss::TracePlayer player(sched, t);
  std::vector<std::pair<double, std::string>> events;
  player.on_contact_start = [&](std::uint32_t a, std::uint32_t b) {
    events.emplace_back(sched.now(), "start " + std::to_string(a) + "-" + std::to_string(b));
  };
  player.on_contact_end = [&](std::uint32_t a, std::uint32_t b) {
    events.emplace_back(sched.now(), "end " + std::to_string(a) + "-" + std::to_string(b));
  };
  player.start();
  sched.run_all();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_DOUBLE_EQ(events[0].first, 100.0);
  EXPECT_EQ(events[0].second, "start 0-1");
  EXPECT_DOUBLE_EQ(events[1].first, 150.0);
  EXPECT_DOUBLE_EQ(events[2].first, 200.0);
  EXPECT_EQ(events[2].second, "end 0-1");
  EXPECT_DOUBLE_EQ(events[3].first, 300.0);
}

TEST(TracePlayer, DestroyedPlayerCancelsPendingEvents) {
  // The scheduled callbacks capture `this`; a player destroyed mid-run must
  // cancel them or the scheduler would later invoke a dangling pointer.
  ss::Scheduler sched;
  int events = 0;
  {
    ss::ContactTrace t;
    t.add({100, 200, 0, 1});
    t.add({150, 300, 1, 2});
    ss::TracePlayer player(sched, t);
    player.on_contact_start = [&](std::uint32_t, std::uint32_t) { ++events; };
    player.on_contact_end = [&](std::uint32_t, std::uint32_t) { ++events; };
    player.start();
    sched.run_until(120);  // first start fires...
    EXPECT_EQ(events, 1);
  }  // ...then the player dies with three events still queued
  sched.run_all();
  EXPECT_EQ(events, 1);  // none of the dangling callbacks ran
  EXPECT_EQ(sched.cancelled_backlog(), 0u);
}

TEST(TracePlayer, StopThenRestartReplaysAgain) {
  ss::ContactTrace t;
  t.add({10, 20, 0, 1});
  ss::Scheduler sched;
  ss::TracePlayer player(sched, t);
  int events = 0;
  player.on_contact_start = [&](std::uint32_t, std::uint32_t) { ++events; };
  player.start();
  player.stop();
  sched.run_all();
  EXPECT_EQ(events, 0);
  player.start();  // past timestamps clamp to now and still fire
  sched.run_all();
  EXPECT_EQ(events, 1);
}

TEST(TracePlayer, DrivesFullMiddlewareStack) {
  // Replay a hand-written deployment trace through the real stack: Alice
  // meets Bob at t=100..200, Bob meets Carol at t=500..600; Carol receives
  // Alice's post via Bob with trace-determined timing.
  ss::ContactTrace trace;
  trace.add({100, 200, 0, 1});
  trace.add({500, 600, 1, 2});

  ss::Scheduler sched;
  ss::MpcNetwork net(sched, 3);
  sp::BootstrapService infra(su::to_bytes("trace-bed"));
  std::vector<std::unique_ptr<sm::SosNode>> nodes;
  for (int i = 0; i < 3; ++i) {
    sc::Drbg device(su::to_bytes("trace-dev-" + std::to_string(i)));
    sm::SosConfig config;
    config.scheme = "epidemic";
    config.maintenance_interval_s = 0;
    nodes.push_back(std::make_unique<sm::SosNode>(
        sched, net.endpoint((ss::PeerId)i),
        *infra.signup("trace-user" + std::to_string(i), device, 0), config));
  }
  nodes[2]->follow(nodes[0]->user_id());
  double delivered_at = -1;
  nodes[2]->on_data = [&](const sos::bundle::Bundle& b, const sp::Certificate&) {
    delivered_at = sched.now();
    EXPECT_EQ(b.hop_count, 2);
  };
  for (auto& n : nodes) n->start();

  ss::TracePlayer player(sched, trace);
  player.on_contact_start = [&](std::uint32_t a, std::uint32_t b) {
    net.set_in_range(a, b, true);
  };
  player.on_contact_end = [&](std::uint32_t a, std::uint32_t b) {
    net.set_in_range(a, b, false);
  };
  player.start();

  sched.schedule_at(50, [&] { nodes[0]->publish(su::to_bytes("trace-driven post")); });
  sched.run_all();

  // Delivery must happen during the second contact window.
  EXPECT_GE(delivered_at, 500.0);
  EXPECT_LE(delivered_at, 600.0);
}
