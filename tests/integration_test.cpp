// Cross-module integration matrix: the same end-to-end protocol exercises
// run against every routing scheme (parameterized), plus stack-level
// invariants that only show up when all layers run together — chain
// relaying, churn storms, store expiry under live traffic, and the
// epidemic-dominates property on random encounter schedules.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/drbg.hpp"
#include "mw/sos_node.hpp"
#include "pki/bootstrap.hpp"
#include "sim/multipeer.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace sb = sos::bundle;
namespace sc = sos::crypto;
namespace sm = sos::mw;
namespace sp = sos::pki;
namespace ss = sos::sim;
namespace su = sos::util;

namespace {
struct Bed {
  ss::Scheduler sched;
  sp::BootstrapService infra{su::to_bytes("integration-bed")};
  ss::MpcNetwork net;
  std::vector<std::unique_ptr<sm::SosNode>> nodes;
  std::vector<std::size_t> delivered;

  Bed(std::size_t n, const std::string& scheme, std::uint32_t lifetime_s = 0)
      : net(sched, n), delivered(n, 0) {
    for (std::size_t i = 0; i < n; ++i) {
      sc::Drbg device(su::to_bytes("int-dev-" + std::to_string(i)));
      sm::SosConfig config;
      config.scheme = scheme;
      config.maintenance_interval_s = 0;
      config.bundle_lifetime_s = lifetime_s;
      nodes.push_back(std::make_unique<sm::SosNode>(
          sched, net.endpoint(static_cast<ss::PeerId>(i)),
          *infra.signup("iuser" + std::to_string(i), device, 0), config));
      std::size_t idx = i;
      nodes.back()->on_data = [this, idx](const sb::Bundle&, const sp::Certificate&) {
        ++delivered[idx];
      };
      nodes.back()->start();
    }
    sched.run_all();
  }

  void meet(std::size_t a, std::size_t b) {
    net.set_in_range((ss::PeerId)a, (ss::PeerId)b, true);
    sched.run_all();
    net.set_in_range((ss::PeerId)a, (ss::PeerId)b, false);
    sched.run_all();
  }
};
}  // namespace

class SchemeMatrix : public ::testing::TestWithParam<std::string> {};

TEST_P(SchemeMatrix, DirectPublisherSubscriberDeliveryWorks) {
  Bed bed(2, GetParam());
  bed.nodes[1]->follow(bed.nodes[0]->user_id());
  bed.nodes[0]->publish(su::to_bytes("hello"));
  bed.meet(0, 1);
  EXPECT_EQ(bed.delivered[1], 1u) << GetParam();
}

TEST_P(SchemeMatrix, NoDeliveryWithoutSubscription) {
  Bed bed(2, GetParam());
  bed.nodes[0]->publish(su::to_bytes("nobody wants this"));
  bed.meet(0, 1);
  EXPECT_EQ(bed.delivered[1], 0u) << GetParam();
}

TEST_P(SchemeMatrix, NoDuplicateDeliveriesAcrossRepeatedMeetings) {
  Bed bed(2, GetParam());
  bed.nodes[1]->follow(bed.nodes[0]->user_id());
  bed.nodes[0]->publish(su::to_bytes("once"));
  for (int round = 0; round < 4; ++round) bed.meet(0, 1);
  EXPECT_EQ(bed.delivered[1], 1u) << GetParam();
}

TEST_P(SchemeMatrix, UnicastReachesDestinationDirectly) {
  Bed bed(2, GetParam());
  bed.nodes[0]->send_direct(bed.nodes[1]->credentials().certificate, su::to_bytes("dm"));
  bed.meet(0, 1);
  EXPECT_EQ(bed.delivered[1], 1u) << GetParam();
}

TEST_P(SchemeMatrix, SessionChurnStormStaysConsistent) {
  // Flapping connectivity during a batch transfer must never duplicate or
  // corrupt deliveries, only delay them.
  Bed bed(2, GetParam());
  bed.nodes[1]->follow(bed.nodes[0]->user_id());
  for (int i = 0; i < 10; ++i) bed.nodes[0]->publish(su::Bytes(200'000, (std::uint8_t)i));
  for (int flap = 0; flap < 12; ++flap) {
    bed.net.set_in_range(0, 1, true);
    bed.sched.run_until(bed.sched.now() + 0.8);  // sometimes mid-handshake
    bed.net.set_in_range(0, 1, false);
    bed.sched.run_all();
  }
  bed.meet(0, 1);  // one clean encounter finishes the job
  EXPECT_EQ(bed.delivered[1], 10u) << GetParam();
  EXPECT_EQ(bed.nodes[1]->stats().decrypt_failures, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeMatrix,
                         ::testing::Values("epidemic", "interest", "spray", "direct"));

// Multi-hop chain: only store-and-forward schemes move data down a line of
// relays that are never simultaneously connected.
class RelaySchemes : public ::testing::TestWithParam<std::string> {};

TEST_P(RelaySchemes, FourHopChainDelivery) {
  Bed bed(5, GetParam());
  // Relays must be interested under IB for the chain to work.
  for (std::size_t i = 1; i <= 4; ++i) bed.nodes[i]->follow(bed.nodes[0]->user_id());
  bed.nodes[0]->publish(su::to_bytes("down the chain"));
  bed.meet(0, 1);
  bed.meet(1, 2);
  bed.meet(2, 3);
  bed.meet(3, 4);
  EXPECT_EQ(bed.delivered[4], 1u) << GetParam();
  // Every intermediate subscriber got it too, each at increasing hops.
  for (std::size_t i = 1; i <= 4; ++i) EXPECT_EQ(bed.delivered[i], 1u);
}

INSTANTIATE_TEST_SUITE_P(StoreAndForward, RelaySchemes,
                         ::testing::Values("epidemic", "interest", "spray"));

TEST(Integration, ExpiredBundlesAreNotForwarded) {
  Bed bed(3, "epidemic", /*lifetime_s=*/3600);
  bed.nodes[2]->follow(bed.nodes[0]->user_id());
  bed.nodes[0]->publish(su::to_bytes("short-lived"));
  bed.meet(0, 1);
  // Let the bundle age out while node 1 carries it.
  bed.sched.schedule_in(7200, [] {});
  bed.sched.run_all();
  bed.meet(1, 2);
  EXPECT_EQ(bed.delivered[2], 0u);
}

TEST(Integration, EpidemicDominatesInterestOnRandomSchedules) {
  // Property: on any encounter schedule, epidemic delivers at least as
  // many (message, subscriber) pairs as interest-based.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    su::Rng rng(seed);
    // Random follow edges + random meeting sequence, replayed identically.
    std::vector<std::pair<std::size_t, std::size_t>> follows, meetings;
    for (std::size_t i = 0; i < 5; ++i)
      for (std::size_t j = 0; j < 5; ++j)
        if (i != j && rng.chance(0.4)) follows.push_back({i, j});
    for (int m = 0; m < 25; ++m) {
      auto a = static_cast<std::size_t>(rng.below(5));
      auto b = static_cast<std::size_t>(rng.below(5));
      if (a != b) meetings.push_back({a, b});
    }
    auto run = [&](const std::string& scheme) {
      Bed bed(5, scheme);
      for (auto [i, j] : follows) bed.nodes[i]->follow(bed.nodes[j]->user_id());
      for (std::size_t i = 0; i < 5; ++i) {
        // Two-step concat: see bundle_test.cpp on GCC 12 PR 105651.
        std::string msg = "m";
        msg += std::to_string(i);
        bed.nodes[i]->publish(su::to_bytes(msg));
      }
      for (auto [a, b] : meetings) bed.meet(a, b);
      std::size_t total = 0;
      for (auto d : bed.delivered) total += d;
      return total;
    };
    EXPECT_GE(run("epidemic"), run("interest")) << "seed " << seed;
  }
}

TEST(Integration, StatsConservation) {
  // Bundles received across the network == bundles sent that were actually
  // delivered by the radio (no phantom receptions).
  Bed bed(3, "epidemic");
  bed.nodes[1]->follow(bed.nodes[0]->user_id());
  bed.nodes[2]->follow(bed.nodes[0]->user_id());
  bed.nodes[0]->publish(su::to_bytes("x"));
  bed.meet(0, 1);
  bed.meet(1, 2);
  std::uint64_t sent = 0, received = 0;
  for (const auto& n : bed.nodes) {
    sent += n->stats().bundles_sent;
    received += n->stats().bundles_received;
  }
  EXPECT_EQ(sent, received);  // no frame loss occurred in clean meetings
  EXPECT_EQ(bed.net.frames_lost(), 0u);
}
