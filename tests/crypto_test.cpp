// Crypto substrate tests: RFC known-answer vectors for every primitive plus
// property sweeps (round trips, tamper rejection, DH commutativity).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "crypto/aead.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/drbg.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/hkdf.hpp"
#include "crypto/hmac.hpp"
#include "crypto/poly1305.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"
#include "crypto/verify_memo.hpp"
#include "crypto/x25519.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace sc = sos::crypto;
namespace su = sos::util;

namespace {
su::Bytes unhex(const std::string& s) {
  auto b = su::hex_decode(s);
  EXPECT_TRUE(b.has_value()) << s;
  return b.value_or(su::Bytes{});
}

template <std::size_t N>
std::array<std::uint8_t, N> unhex_array(const std::string& s) {
  return su::to_array<N>(unhex(s));
}

template <typename Arr>
std::string hex(const Arr& a) {
  return su::hex_encode(su::ByteView(a.data(), a.size()));
}
}  // namespace

// --- SHA-256 (FIPS 180-4 / NIST CAVS vectors) -------------------------

struct ShaVector {
  const char* msg;
  const char* digest;
};

class Sha256Vectors : public ::testing::TestWithParam<ShaVector> {};

TEST_P(Sha256Vectors, KnownAnswer) {
  const auto& v = GetParam();
  auto d = sc::Sha256::hash(su::to_bytes(v.msg));
  EXPECT_EQ(hex(d), v.digest);
}

INSTANTIATE_TEST_SUITE_P(
    Nist, Sha256Vectors,
    ::testing::Values(
        ShaVector{"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
        ShaVector{"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
        ShaVector{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                  "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
        ShaVector{"The quick brown fox jumps over the lazy dog",
                  "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"}));

TEST(Sha256, MillionA) {
  sc::Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(su::to_bytes(chunk));
  EXPECT_EQ(hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  su::Rng rng(3);
  su::Bytes msg(300);
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next());
  for (std::size_t split = 0; split <= msg.size(); split += 37) {
    sc::Sha256 h;
    h.update(su::ByteView(msg.data(), split));
    h.update(su::ByteView(msg.data() + split, msg.size() - split));
    EXPECT_EQ(h.finish(), sc::Sha256::hash(msg));
  }
}

TEST(Sha256, BoundaryLengths) {
  // Exercise the padding branch around the 56-byte boundary.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u}) {
    su::Bytes msg(len, 'x');
    sc::Sha256 a;
    a.update(msg);
    auto one = a.finish();
    sc::Sha256 b;
    for (std::size_t i = 0; i < len; ++i) b.update(su::ByteView(&msg[i], 1));
    EXPECT_EQ(one, b.finish()) << len;
  }
}

// --- SHA-512 -----------------------------------------------------------

class Sha512Vectors : public ::testing::TestWithParam<ShaVector> {};

TEST_P(Sha512Vectors, KnownAnswer) {
  const auto& v = GetParam();
  auto d = sc::Sha512::hash(su::to_bytes(v.msg));
  EXPECT_EQ(hex(d), v.digest);
}

INSTANTIATE_TEST_SUITE_P(
    Nist, Sha512Vectors,
    ::testing::Values(
        ShaVector{"", "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
                      "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e"},
        ShaVector{"abc", "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
                         "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"},
        ShaVector{"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
                  "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
                  "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018"
                  "501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909"}));

TEST(Sha512, BoundaryLengths) {
  for (std::size_t len : {111u, 112u, 113u, 127u, 128u, 129u}) {
    su::Bytes msg(len, 'y');
    sc::Sha512 a;
    a.update(msg);
    auto one = a.finish();
    sc::Sha512 b;
    for (std::size_t i = 0; i < len; ++i) b.update(su::ByteView(&msg[i], 1));
    EXPECT_EQ(one, b.finish()) << len;
  }
}

// --- HMAC (RFC 4231) ----------------------------------------------------

TEST(Hmac, Rfc4231Case1) {
  su::Bytes key(20, 0x0b);
  auto mac = sc::hmac_sha256(key, su::to_bytes("Hi There"));
  EXPECT_EQ(hex(mac), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  auto mac512 = sc::hmac_sha512(key, su::to_bytes("Hi There"));
  EXPECT_EQ(hex(mac512),
            "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde"
            "daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854");
}

TEST(Hmac, Rfc4231Case2) {
  auto mac = sc::hmac_sha256(su::to_bytes("Jefe"), su::to_bytes("what do ya want for nothing?"));
  EXPECT_EQ(hex(mac), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  su::Bytes key(20, 0xaa);
  su::Bytes data(50, 0xdd);
  auto mac = sc::hmac_sha256(key, data);
  EXPECT_EQ(hex(mac), "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, LongKeyIsHashed) {
  // RFC 4231 case 6: 131-byte key exercises the key-hash path.
  su::Bytes key(131, 0xaa);
  auto mac = sc::hmac_sha256(key, su::to_bytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(hex(mac), "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// --- HKDF (RFC 5869) ------------------------------------------------------

TEST(Hkdf, Rfc5869Case1) {
  su::Bytes ikm(22, 0x0b);
  auto salt = unhex("000102030405060708090a0b0c");
  auto info = unhex("f0f1f2f3f4f5f6f7f8f9");
  auto prk = sc::hkdf_extract(salt, ikm);
  EXPECT_EQ(su::hex_encode(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
  auto okm = sc::hkdf_expand(prk, info, 42);
  EXPECT_EQ(su::hex_encode(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, Rfc5869Case3ZeroSaltInfo) {
  su::Bytes ikm(22, 0x0b);
  auto okm = sc::hkdf(su::Bytes{}, ikm, su::Bytes{}, 42);
  EXPECT_EQ(su::hex_encode(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, OutputLengthSweep) {
  for (std::size_t len : {1u, 16u, 31u, 32u, 33u, 64u, 100u}) {
    auto okm = sc::hkdf(su::to_bytes("salt"), su::to_bytes("ikm"), su::to_bytes("info"), len);
    EXPECT_EQ(okm.size(), len);
  }
  // Prefix consistency: shorter outputs are prefixes of longer ones.
  auto a = sc::hkdf(su::to_bytes("s"), su::to_bytes("i"), su::to_bytes("x"), 16);
  auto b = sc::hkdf(su::to_bytes("s"), su::to_bytes("i"), su::to_bytes("x"), 64);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
}

// --- ChaCha20 (RFC 8439) --------------------------------------------------

TEST(ChaCha20, Rfc8439Block) {
  auto key = unhex_array<32>(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  auto nonce = unhex_array<12>("000000090000004a00000000");
  auto block = sc::chacha20_block(key.data(), 1, nonce.data());
  EXPECT_EQ(su::hex_encode(su::ByteView(block.data(), 64)),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20, Rfc8439Encrypt) {
  auto key = unhex_array<32>(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  auto nonce = unhex_array<12>("000000000000004a00000000");
  std::string pt =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  auto ct = sc::chacha20(key.data(), 1, nonce.data(), su::to_bytes(pt));
  EXPECT_EQ(su::hex_encode(ct),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42874d");
}

TEST(ChaCha20, XorIsInvolution) {
  auto key = unhex_array<32>(
      "1f1e1d1c1b1a191817161514131211100f0e0d0c0b0a09080706050403020100");
  auto nonce = unhex_array<12>("000000000000000000000002");
  su::Bytes msg = su::to_bytes("attack at dawn");
  auto ct = sc::chacha20(key.data(), 7, nonce.data(), msg);
  auto pt = sc::chacha20(key.data(), 7, nonce.data(), ct);
  EXPECT_EQ(pt, msg);
  EXPECT_NE(ct, msg);
}

// --- Poly1305 (RFC 8439) ----------------------------------------------------

TEST(Poly1305, Rfc8439Vector) {
  auto key = unhex_array<32>(
      "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  auto tag = sc::Poly1305::mac(key.data(), su::to_bytes("Cryptographic Forum Research Group"));
  EXPECT_EQ(hex(tag), "a8061dc1305136c6c22b8baf0c0127a9");
}

TEST(Poly1305, IncrementalMatchesOneShot) {
  auto key = unhex_array<32>(
      "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  su::Bytes msg(123);
  su::Rng rng(9);
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next());
  auto one = sc::Poly1305::mac(key.data(), msg);
  sc::Poly1305 p(key.data());
  p.update(su::ByteView(msg.data(), 10));
  p.update(su::ByteView(msg.data() + 10, 50));
  p.update(su::ByteView(msg.data() + 60, 63));
  EXPECT_EQ(one, p.finish());
}

// --- AEAD (RFC 8439 §2.8.2) ---------------------------------------------------

TEST(Aead, Rfc8439Vector) {
  auto key = unhex_array<32>(
      "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f");
  auto nonce = unhex_array<12>("070000004041424344454647");
  auto aad = unhex("50515253c0c1c2c3c4c5c6c7");
  std::string pt =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  auto sealed = sc::aead_seal(key.data(), nonce.data(), aad, su::to_bytes(pt));
  EXPECT_EQ(su::hex_encode(sealed),
            "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6"
            "3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36"
            "92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc"
            "3ff4def08e4b7a9de576d26586cec64b6116"
            "1ae10b594f09e26a7e902ecbd0600691");
  auto opened = sc::aead_open(key.data(), nonce.data(), aad, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(su::to_string(*opened), pt);
}

TEST(Aead, RejectsTamperedCiphertextEveryByte) {
  auto key = unhex_array<32>(
      "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f");
  auto nonce = unhex_array<12>("070000004041424344454647");
  auto sealed = sc::aead_seal(key.data(), nonce.data(), su::Bytes{}, su::to_bytes("secret"));
  for (std::size_t i = 0; i < sealed.size(); ++i) {
    auto bad = sealed;
    bad[i] ^= 0x01;
    EXPECT_FALSE(sc::aead_open(key.data(), nonce.data(), su::Bytes{}, bad).has_value())
        << "byte " << i;
  }
}

TEST(Aead, RejectsWrongAad) {
  auto key = unhex_array<32>(
      "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f");
  auto nonce = unhex_array<12>("070000004041424344454647");
  auto sealed = sc::aead_seal(key.data(), nonce.data(), su::to_bytes("aad-a"), su::to_bytes("m"));
  EXPECT_FALSE(sc::aead_open(key.data(), nonce.data(), su::to_bytes("aad-b"), sealed).has_value());
}

TEST(Aead, RejectsTooShort) {
  auto key = unhex_array<32>(
      "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f");
  auto nonce = unhex_array<12>("070000004041424344454647");
  su::Bytes tiny(10, 0);
  EXPECT_FALSE(sc::aead_open(key.data(), nonce.data(), su::Bytes{}, tiny).has_value());
}

class AeadRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AeadRoundTrip, VariousLengths) {
  std::size_t len = GetParam();
  su::Rng rng(len + 1);
  su::Bytes pt(len);
  for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
  std::uint8_t key[32], nonce[12];
  for (auto& k : key) k = static_cast<std::uint8_t>(rng.next());
  for (auto& n : nonce) n = static_cast<std::uint8_t>(rng.next());
  auto sealed = sc::aead_seal(key, nonce, su::to_bytes("hdr"), pt);
  EXPECT_EQ(sealed.size(), len + sc::kAeadTagSize);
  auto opened = sc::aead_open(key, nonce, su::to_bytes("hdr"), sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, pt);
}

INSTANTIATE_TEST_SUITE_P(Lengths, AeadRoundTrip,
                         ::testing::Values(0, 1, 15, 16, 17, 63, 64, 65, 1000, 65536));

// --- X25519 (RFC 7748) ---------------------------------------------------------

TEST(X25519, Rfc7748Vector1) {
  auto scalar = unhex_array<32>(
      "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  auto point = unhex_array<32>(
      "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  auto out = sc::x25519(scalar, point);
  EXPECT_EQ(hex(out), "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

TEST(X25519, Rfc7748Vector2) {
  auto scalar = unhex_array<32>(
      "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
  auto point = unhex_array<32>(
      "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
  auto out = sc::x25519(scalar, point);
  EXPECT_EQ(hex(out), "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
}

TEST(X25519, Rfc7748DiffieHellman) {
  auto alice_priv = unhex_array<32>(
      "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  auto bob_priv = unhex_array<32>(
      "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
  auto alice_pub = sc::x25519_base(alice_priv);
  auto bob_pub = sc::x25519_base(bob_priv);
  EXPECT_EQ(hex(alice_pub), "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
  EXPECT_EQ(hex(bob_pub), "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");
  auto k1 = sc::x25519(alice_priv, bob_pub);
  auto k2 = sc::x25519(bob_priv, alice_pub);
  EXPECT_EQ(hex(k1), "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
  EXPECT_EQ(k1, k2);
}

class X25519Commute : public ::testing::TestWithParam<int> {};

TEST_P(X25519Commute, SharedSecretsAgree) {
  sc::Drbg drbg(su::to_bytes("x25519-commute-" + std::to_string(GetParam())));
  auto a = drbg.generate_array<32>();
  auto b = drbg.generate_array<32>();
  auto ka = sc::x25519(a, sc::x25519_base(b));
  auto kb = sc::x25519(b, sc::x25519_base(a));
  EXPECT_EQ(ka, kb);
  // Shared secret must be non-trivial.
  sc::X25519Key zero{};
  EXPECT_NE(ka, zero);
}

INSTANTIATE_TEST_SUITE_P(Seeds, X25519Commute, ::testing::Range(0, 8));

// --- Ed25519 (RFC 8032 §7.1) ------------------------------------------------------

struct EdVector {
  const char* seed;
  const char* pub;
  const char* msg_hex;
  const char* sig;
};

class Ed25519Vectors : public ::testing::TestWithParam<EdVector> {};

TEST_P(Ed25519Vectors, KnownAnswer) {
  const auto& v = GetParam();
  auto kp = sc::Ed25519Keypair::from_seed(unhex_array<32>(v.seed));
  EXPECT_EQ(hex(kp.public_key()), v.pub);
  auto msg = unhex(v.msg_hex);
  auto sig = kp.sign(msg);
  EXPECT_EQ(hex(sig), v.sig);
  EXPECT_TRUE(sc::ed25519_verify(kp.public_key(), msg, sig));
}

INSTANTIATE_TEST_SUITE_P(
    Rfc8032, Ed25519Vectors,
    ::testing::Values(
        EdVector{"9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
                 "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a", "",
                 "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
                 "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"},
        EdVector{"4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
                 "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c", "72",
                 "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
                 "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"},
        EdVector{"c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
                 "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025", "af82",
                 "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
                 "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"}));

TEST(Ed25519, RejectsTamperedMessage) {
  auto kp = sc::Ed25519Keypair::from_seed(
      unhex_array<32>("9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60"));
  auto msg = su::to_bytes("hello world");
  auto sig = kp.sign(msg);
  auto bad = msg;
  bad[0] ^= 1;
  EXPECT_FALSE(sc::ed25519_verify(kp.public_key(), bad, sig));
}

TEST(Ed25519, RejectsTamperedSignatureEveryByte) {
  auto kp = sc::Ed25519Keypair::from_seed(
      unhex_array<32>("4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb"));
  auto msg = su::to_bytes("x");
  auto sig = kp.sign(msg);
  for (std::size_t i = 0; i < sig.size(); i += 7) {
    auto bad = sig;
    bad[i] ^= 0x40;
    EXPECT_FALSE(sc::ed25519_verify(kp.public_key(), msg, bad)) << "byte " << i;
  }
}

TEST(Ed25519, RejectsWrongKey) {
  auto kp1 = sc::Ed25519Keypair::from_seed(
      unhex_array<32>("9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60"));
  auto kp2 = sc::Ed25519Keypair::from_seed(
      unhex_array<32>("4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb"));
  auto msg = su::to_bytes("message");
  EXPECT_FALSE(sc::ed25519_verify(kp2.public_key(), msg, kp1.sign(msg)));
}

TEST(Ed25519, RejectsNonCanonicalScalar) {
  auto kp = sc::Ed25519Keypair::from_seed(
      unhex_array<32>("9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60"));
  auto msg = su::to_bytes("m");
  auto sig = kp.sign(msg);
  // Force S >= L by setting the top bytes high.
  auto bad = sig;
  for (int i = 32; i < 64; ++i) bad[i] = 0xFF;
  EXPECT_FALSE(sc::ed25519_verify(kp.public_key(), msg, bad));
}

class Ed25519RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(Ed25519RoundTrip, SignVerifyRandomKeysAndMessages) {
  sc::Drbg drbg(su::to_bytes("ed25519-rt-" + std::to_string(GetParam())));
  auto kp = sc::Ed25519Keypair::from_seed(drbg.generate_array<32>());
  auto msg = drbg.generate(1 + GetParam() * 17);
  auto sig = kp.sign(msg);
  EXPECT_TRUE(sc::ed25519_verify(kp.public_key(), msg, sig));
  // Deterministic signatures: re-signing gives the identical signature.
  EXPECT_EQ(sig, kp.sign(msg));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Ed25519RoundTrip, ::testing::Range(0, 10));

// --- VerifyMemo (sweep-wide signature-verdict memo) -------------------------------

namespace {
struct MemoItem {
  sc::EdPublicKey pub;
  su::Bytes msg;
  sc::EdSignature sig;
  bool valid;  // ground truth
};

/// Mixed workload: `n` triples, even = genuine signature, odd = forged
/// (payload tampered after signing, so the verdict must be false).
std::vector<MemoItem> memo_items(std::size_t n, const std::string& label) {
  std::vector<MemoItem> items;
  sc::Drbg drbg(su::to_bytes("memo-items-" + label));
  for (std::size_t i = 0; i < n; ++i) {
    auto kp = sc::Ed25519Keypair::from_seed(drbg.generate_array<32>());
    MemoItem item;
    item.pub = kp.public_key();
    item.msg = drbg.generate(24 + i % 48);
    item.sig = kp.sign(item.msg);
    item.valid = (i % 2) == 0;
    if (!item.valid) item.msg[0] ^= 0x5a;  // forge: signature no longer matches
    items.push_back(std::move(item));
  }
  return items;
}
}  // namespace

TEST(VerifyMemo, ConcurrentHammeringKeepsVerdictsStable) {
  // Eight threads hammer one memo with overlapping triple sets in different
  // orders — the sweep-wide sharing pattern, where every variant of a cell
  // races on the same memo. Every verdict must match ground truth on every
  // call, and a forged signature must never memoize to true.
  sc::VerifyMemo memo;
  const auto items = memo_items(24, "concurrent");
  constexpr int kThreads = 8;
  constexpr int kRounds = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (std::size_t i = 0; i < items.size(); ++i) {
          // Distinct, overlapping traversal order per thread.
          const MemoItem& item = items[(i * (t + 1) + round) % items.size()];
          if (memo.verify(item.pub, item.msg, item.sig) != item.valid) ++mismatches;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(memo.size(), items.size());  // each triple memoized exactly once
  for (const auto& item : items) {
    auto verdict = memo.lookup(sc::VerifyMemo::key_of(item.pub, item.msg, item.sig));
    ASSERT_TRUE(verdict.has_value());
    EXPECT_EQ(*verdict, item.valid);  // forged entries memoized as false, never true
  }
}

TEST(VerifyMemo, ExternallyStoredVerdictsRoundTrip) {
  // The batch-verify path computes verdicts outside the memo and stores
  // them via store(); lookups must return exactly what was stored.
  sc::VerifyMemo memo;
  const auto items = memo_items(8, "store");
  for (const auto& item : items) {
    auto key = sc::VerifyMemo::key_of(item.pub, item.msg, item.sig);
    EXPECT_FALSE(memo.lookup(key).has_value());
    memo.store(key, item.valid);
    auto verdict = memo.lookup(key);
    ASSERT_TRUE(verdict.has_value());
    EXPECT_EQ(*verdict, item.valid);
  }
  EXPECT_EQ(memo.size(), items.size());
}

TEST(VerifyMemo, CapacityBoundsGrowthWithoutChangingVerdicts) {
  // A sweep-wide memo lives as long as its cell and sees every variant's
  // triples: past its capacity it must stop growing, while verdicts —
  // stored or recomputed — stay correct.
  sc::VerifyMemo memo(32);
  EXPECT_EQ(memo.capacity(), 32u);
  const auto items = memo_items(96, "capacity");
  for (const auto& item : items) {
    EXPECT_EQ(memo.verify(item.pub, item.msg, item.sig), item.valid);
  }
  EXPECT_LE(memo.size(), memo.capacity());
  EXPECT_GT(memo.size(), 0u);
  // Re-verifying the same set recomputes the evicted ones but never lies.
  for (const auto& item : items) {
    EXPECT_EQ(memo.verify(item.pub, item.msg, item.sig), item.valid);
  }
  EXPECT_LE(memo.size(), memo.capacity());
  // store() respects the same bound.
  sc::VerifyMemo bounded(16);
  for (const auto& item : items) {
    bounded.store(sc::VerifyMemo::key_of(item.pub, item.msg, item.sig), item.valid);
  }
  EXPECT_LE(bounded.size(), bounded.capacity());
}

// --- DRBG ------------------------------------------------------------------------

TEST(Drbg, DeterministicForSameSeed) {
  sc::Drbg a(su::to_bytes("seed"));
  sc::Drbg b(su::to_bytes("seed"));
  EXPECT_EQ(a.generate(64), b.generate(64));
}

TEST(Drbg, StreamsAdvance) {
  sc::Drbg a(su::to_bytes("seed"));
  auto first = a.generate(32);
  auto second = a.generate(32);
  EXPECT_NE(first, second);
}

TEST(Drbg, DifferentSeedsDiffer) {
  sc::Drbg a(su::to_bytes("seed-a"));
  sc::Drbg b(su::to_bytes("seed-b"));
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(Drbg, ForkIndependence) {
  sc::Drbg parent(su::to_bytes("seed"));
  auto c1 = parent.fork(su::to_bytes("node1"));
  auto c2 = parent.fork(su::to_bytes("node1"));  // same label, later fork point
  auto c3 = parent.fork(su::to_bytes("node2"));
  EXPECT_NE(c1.generate(32), c2.generate(32));
  EXPECT_NE(c1.generate(32), c3.generate(32));
}
