// PKI tests: identity derivation, certificate encode/verify, CA issuance,
// trust-store chain decisions, and the full Fig 2a one-time bootstrap flow
// including the malicious-identifier attack the paper discusses.
#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "crypto/x25519.hpp"
#include "pki/authority.hpp"
#include "pki/bootstrap.hpp"
#include "pki/certificate.hpp"
#include "pki/identity.hpp"

namespace sp = sos::pki;
namespace sc = sos::crypto;
namespace su = sos::util;

namespace {
sc::Ed25519Keypair make_keys(const std::string& label) {
  sc::Drbg d(su::to_bytes(label));
  return sc::Ed25519Keypair::from_seed(d.generate_array<32>());
}

sc::X25519Key enc_key_for(const std::string& label) {
  sc::Drbg d(su::to_bytes("enc-" + label));
  return sc::x25519_base(sc::x25519_clamp(d.generate_array<32>()));
}

sp::CertificateAuthority make_ca(const std::string& label = "test-ca") {
  sc::Drbg d(su::to_bytes("ca-seed-" + label));
  return sp::CertificateAuthority(label, d.generate_array<32>());
}
}  // namespace

// --- identity -------------------------------------------------------------

TEST(Identity, TenBytesSixteenChars) {
  auto id = sp::user_id_from_name("alice");
  EXPECT_EQ(id.bytes.size(), 10u);
  EXPECT_EQ(id.to_string().size(), 16u);  // paper: 10-byte id string key
}

TEST(Identity, DeterministicAndDistinct) {
  EXPECT_EQ(sp::user_id_from_name("alice"), sp::user_id_from_name("alice"));
  EXPECT_NE(sp::user_id_from_name("alice"), sp::user_id_from_name("bob"));
}

TEST(Identity, StringRoundTrip) {
  auto id = sp::user_id_from_name("carol");
  auto back = sp::UserId::from_string(id.to_string());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, id);
}

TEST(Identity, FromStringRejectsBadInput) {
  EXPECT_FALSE(sp::UserId::from_string("").has_value());
  EXPECT_FALSE(sp::UserId::from_string("!!!").has_value());
  EXPECT_FALSE(sp::UserId::from_string("MZXW6").has_value());  // wrong length
}

TEST(Identity, ZeroCheck) {
  sp::UserId zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_FALSE(sp::user_id_from_name("x").is_zero());
}

// --- certificates -----------------------------------------------------------

TEST(Certificate, EncodeDecodeRoundTrip) {
  auto ca = make_ca();
  auto keys = make_keys("alice");
  auto csr = sp::CertificateRequest::create(sp::user_id_from_name("alice"), "alice", keys, enc_key_for("alice"));
  auto cert = ca.issue(csr, 100.0);
  ASSERT_TRUE(cert.has_value());
  auto decoded = sp::Certificate::decode(cert->encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->serial, cert->serial);
  EXPECT_EQ(decoded->subject_id, cert->subject_id);
  EXPECT_EQ(decoded->subject_name, "alice");
  EXPECT_EQ(decoded->subject_key, keys.public_key());
  EXPECT_EQ(decoded->signature, cert->signature);
}

TEST(Certificate, DecodeRejectsTruncation) {
  auto ca = make_ca();
  auto keys = make_keys("alice");
  auto csr = sp::CertificateRequest::create(sp::user_id_from_name("alice"), "alice", keys, enc_key_for("alice"));
  auto cert = ca.issue(csr, 100.0);
  ASSERT_TRUE(cert.has_value());
  auto enc = cert->encode();
  for (std::size_t cut : {1u, 10u, 32u}) {
    su::Bytes bad(enc.begin(), enc.end() - static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(sp::Certificate::decode(bad).has_value()) << cut;
  }
}

TEST(CertificateRequest, ProofOfPossession) {
  auto keys = make_keys("alice");
  auto csr = sp::CertificateRequest::create(sp::user_id_from_name("alice"), "alice", keys, enc_key_for("alice"));
  EXPECT_TRUE(csr.verify_pop());
  // A CSR claiming a key the requester does not hold fails.
  auto other = make_keys("mallory");
  auto forged = csr;
  forged.subject_key = other.public_key();
  EXPECT_FALSE(forged.verify_pop());
}

TEST(CertificateRequest, EncodeDecodeRoundTrip) {
  auto keys = make_keys("bob");
  auto csr = sp::CertificateRequest::create(sp::user_id_from_name("bob"), "bob", keys, enc_key_for("bob"));
  auto decoded = sp::CertificateRequest::decode(csr.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->verify_pop());
  EXPECT_EQ(decoded->subject_name, "bob");
}

// --- CA + trust store ----------------------------------------------------------

TEST(Authority, IssuesSequentialSerials) {
  auto ca = make_ca();
  auto k1 = make_keys("u1"), k2 = make_keys("u2");
  auto c1 = ca.issue(sp::CertificateRequest::create(sp::user_id_from_name("u1"), "u1", k1, enc_key_for("u1")), 0);
  auto c2 = ca.issue(sp::CertificateRequest::create(sp::user_id_from_name("u2"), "u2", k2, enc_key_for("u2")), 0);
  ASSERT_TRUE(c1 && c2);
  EXPECT_EQ(c1->serial + 1, c2->serial);
  EXPECT_EQ(ca.issued_count(), 2u);
}

TEST(Authority, RejectsBadPop) {
  auto ca = make_ca();
  auto keys = make_keys("u");
  auto csr = sp::CertificateRequest::create(sp::user_id_from_name("u"), "u", keys, enc_key_for("u"));
  csr.subject_name = "someone-else";  // invalidates the self-signature
  EXPECT_FALSE(ca.issue(csr, 0).has_value());
}

TEST(TrustStore, AcceptsValidCertificate) {
  auto ca = make_ca();
  auto keys = make_keys("alice");
  auto cert =
      ca.issue(sp::CertificateRequest::create(sp::user_id_from_name("alice"), "alice", keys, enc_key_for("alice")), 10);
  sp::TrustStore store(ca.name(), ca.root_public_key());
  EXPECT_EQ(store.verify(*cert, 100.0), sp::VerifyResult::Ok);
}

TEST(TrustStore, RejectsTamperedSubjectKey) {
  auto ca = make_ca();
  auto keys = make_keys("alice");
  auto cert =
      ca.issue(sp::CertificateRequest::create(sp::user_id_from_name("alice"), "alice", keys, enc_key_for("alice")), 10);
  auto evil = make_keys("mallory");
  auto tampered = *cert;
  tampered.subject_key = evil.public_key();
  sp::TrustStore store(ca.name(), ca.root_public_key());
  EXPECT_EQ(store.verify(tampered, 100.0), sp::VerifyResult::BadSignature);
}

TEST(TrustStore, RejectsWrongIssuerRoot) {
  auto ca = make_ca("real");
  // Same issuer name, different root key.
  sc::Drbg rogue_seed(su::to_bytes("rogue"));
  sp::CertificateAuthority rogue("real", rogue_seed.generate_array<32>());
  auto keys = make_keys("alice");
  auto cert = rogue.issue(
      sp::CertificateRequest::create(sp::user_id_from_name("alice"), "alice", keys, enc_key_for("alice")), 10);
  sp::TrustStore store(ca.name(), ca.root_public_key());
  EXPECT_EQ(store.verify(*cert, 100.0), sp::VerifyResult::BadSignature);
}

TEST(TrustStore, RejectsUnknownIssuerName) {
  auto ca = make_ca("ca-a");
  auto keys = make_keys("alice");
  auto cert =
      ca.issue(sp::CertificateRequest::create(sp::user_id_from_name("alice"), "alice", keys, enc_key_for("alice")), 10);
  sp::TrustStore store("ca-b", ca.root_public_key());
  EXPECT_EQ(store.verify(*cert, 100.0), sp::VerifyResult::UnknownIssuer);
}

TEST(TrustStore, EnforcesValidityWindow) {
  auto ca = make_ca();
  auto keys = make_keys("alice");
  auto cert = ca.issue(
      sp::CertificateRequest::create(sp::user_id_from_name("alice"), "alice", keys, enc_key_for("alice")), 1000.0);
  sp::TrustStore store(ca.name(), ca.root_public_key());
  EXPECT_EQ(store.verify(*cert, 10.0), sp::VerifyResult::NotYetValid);
  EXPECT_EQ(store.verify(*cert, 1000.0 + su::days(366)), sp::VerifyResult::Expired);
}

TEST(TrustStore, RevocationTakesEffectAfterCrlUpdate) {
  auto ca = make_ca();
  auto keys = make_keys("alice");
  auto cert =
      ca.issue(sp::CertificateRequest::create(sp::user_id_from_name("alice"), "alice", keys, enc_key_for("alice")), 0);
  sp::TrustStore store(ca.name(), ca.root_public_key());
  EXPECT_EQ(store.verify(*cert, 1.0), sp::VerifyResult::Ok);
  ca.revoke(cert->serial);
  // The device's snapshot is stale until it refreshes over the Internet —
  // the exact limitation §IV points out.
  EXPECT_EQ(store.verify(*cert, 1.0), sp::VerifyResult::Ok);
  store.update_crl(ca.revocation_list());
  EXPECT_EQ(store.verify(*cert, 1.0), sp::VerifyResult::Revoked);
}

TEST(TrustStore, IdentityBinding) {
  auto ca = make_ca();
  auto keys = make_keys("alice");
  auto cert =
      ca.issue(sp::CertificateRequest::create(sp::user_id_from_name("alice"), "alice", keys, enc_key_for("alice")), 0);
  sp::TrustStore store(ca.name(), ca.root_public_key());
  EXPECT_EQ(store.verify_identity(*cert, sp::user_id_from_name("alice"), 1.0),
            sp::VerifyResult::Ok);
  EXPECT_EQ(store.verify_identity(*cert, sp::user_id_from_name("bob"), 1.0),
            sp::VerifyResult::IdentityMismatch);
}

// --- Fig 2a bootstrap flow --------------------------------------------------------

TEST(Bootstrap, SignupIssuesWorkingCredentials) {
  sp::BootstrapService svc(su::to_bytes("infra"));
  sc::Drbg device(su::to_bytes("alice-device"));
  auto creds = svc.signup("alice", device, 50.0);
  ASSERT_TRUE(creds.has_value());
  EXPECT_EQ(creds->user_id, sp::user_id_from_name("alice"));
  EXPECT_EQ(creds->certificate.subject_key, creds->signing_keypair.public_key());
  // Credentials verify offline against the shipped trust store.
  EXPECT_EQ(creds->trust.verify_identity(creds->certificate, creds->user_id, 100.0),
            sp::VerifyResult::Ok);
}

TEST(Bootstrap, DuplicateAccountRejected) {
  sp::BootstrapService svc(su::to_bytes("infra"));
  sc::Drbg d1(su::to_bytes("d1")), d2(su::to_bytes("d2"));
  ASSERT_TRUE(svc.signup("alice", d1, 0).has_value());
  EXPECT_FALSE(svc.signup("alice", d2, 0).has_value());
  EXPECT_EQ(svc.account_count(), 1u);
}

TEST(Bootstrap, MaliciousIdentifierClaimRejected) {
  // §IV: "a malicious device attempts to provide someone else's unique
  // user-identifier during user sign-up" — the cloud must catch this.
  sp::BootstrapService svc(su::to_bytes("infra"));
  auto mallory_keys = make_keys("mallory");
  auto csr = sp::CertificateRequest::create(sp::user_id_from_name("alice"),  // claims alice
                                            "alice", mallory_keys, enc_key_for("mallory"));
  sp::SignupError err{};
  auto cert = svc.submit_csr("mallory", csr, 0, &err);
  EXPECT_FALSE(cert.has_value());
  EXPECT_EQ(err, sp::SignupError::IdentifierMismatch);
}

TEST(Bootstrap, CsrWithStolenKeyRejected) {
  sp::BootstrapService svc(su::to_bytes("infra"));
  auto alice_keys = make_keys("alice");
  auto csr = sp::CertificateRequest::create(sp::user_id_from_name("alice"), "alice", alice_keys,
                                            enc_key_for("alice"));
  // Mallory replays Alice's CSR body but swaps in her own key without a
  // valid proof-of-possession.
  csr.subject_key = make_keys("mallory").public_key();
  sp::SignupError err{};
  EXPECT_FALSE(svc.submit_csr("alice", csr, 0, &err).has_value());
  EXPECT_EQ(err, sp::SignupError::BadProofOfPossession);
}

TEST(Bootstrap, RevocationPropagatesViaRefresh) {
  sp::BootstrapService svc(su::to_bytes("infra"));
  sc::Drbg device(su::to_bytes("alice-device"));
  auto creds = svc.signup("alice", device, 0);
  ASSERT_TRUE(creds.has_value());
  svc.authority().revoke(creds->certificate.serial);
  EXPECT_EQ(creds->trust.verify(creds->certificate, 1.0), sp::VerifyResult::Ok);  // stale CRL
  svc.refresh_crl(creds->trust);
  EXPECT_EQ(creds->trust.verify(creds->certificate, 1.0), sp::VerifyResult::Revoked);
}

TEST(Bootstrap, ManyUsersGetDistinctCredentials) {
  sp::BootstrapService svc(su::to_bytes("infra"));
  std::set<std::uint64_t> serials;
  std::set<std::string> ids;
  for (int i = 0; i < 20; ++i) {
    sc::Drbg device(su::to_bytes("device-" + std::to_string(i)));
    auto creds = svc.signup("user" + std::to_string(i), device, 0);
    ASSERT_TRUE(creds.has_value());
    serials.insert(creds->certificate.serial);
    ids.insert(creds->user_id.to_string());
  }
  EXPECT_EQ(serials.size(), 20u);
  EXPECT_EQ(ids.size(), 20u);
}
