// Fast-path behavior tests for this PR's perf work: the verified-bundle
// cache (hits, tamper misses, revocation override, LRU bound), the batch
// bundle-verification path, the message manager's verification window, the
// bundle store's O(log n) eviction index, and the scheduler's cancel
// bookkeeping.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "bundle/store.hpp"
#include "crypto/drbg.hpp"
#include "crypto/sha256.hpp"
#include "mw/sos_node.hpp"
#include "pki/bootstrap.hpp"
#include "sim/multipeer.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace sb = sos::bundle;
namespace sc = sos::crypto;
namespace sm = sos::mw;
namespace sp = sos::pki;
namespace ss = sos::sim;
namespace su = sos::util;

namespace {

/// An AdHocManager with real credentials plus a second signed-up publisher
/// whose bundles it verifies.
struct VerifyRig {
  ss::Scheduler sched;
  sp::BootstrapService infra{su::to_bytes("verify-rig")};
  ss::MpcNetwork net{sched, 1};
  sp::DeviceCredentials verifier_creds;
  sp::DeviceCredentials publisher_creds;
  sm::NodeStats stats;
  sm::AdHocManager adhoc;

  VerifyRig()
      : verifier_creds([this] {
          sc::Drbg d(su::to_bytes("verifier-dev"));
          return *infra.signup("verifier", d, 0.0);
        }()),
        publisher_creds([this] {
          sc::Drbg d(su::to_bytes("publisher-dev"));
          return *infra.signup("publisher", d, 0.0);
        }()),
        adhoc(sched, net.endpoint(0), verifier_creds, stats) {}

  sb::Bundle make_bundle(std::uint32_t num, const std::string& text = "post") {
    sb::Bundle b;
    b.origin = publisher_creds.user_id;
    b.msg_num = num;
    b.creation_ts = sched.now();
    b.payload = su::to_bytes(text);
    b.sign(publisher_creds.signing_keypair);
    return b;
  }
};

}  // namespace

// --- verified-bundle cache ---------------------------------------------------

TEST(VerifyCache, ReReceptionSkipsSignatureCheck) {
  VerifyRig rig;
  auto b = rig.make_bundle(1);
  EXPECT_TRUE(rig.adhoc.verify_bundle(b, rig.publisher_creds.certificate));
  EXPECT_EQ(rig.stats.bundle_sig_cache_misses, 1u);
  EXPECT_EQ(rig.stats.bundle_sig_cache_hits, 0u);

  // Same bundle arrives again (epidemic re-reception): cache hit.
  EXPECT_TRUE(rig.adhoc.verify_bundle(b, rig.publisher_creds.certificate));
  EXPECT_EQ(rig.stats.bundle_sig_cache_hits, 1u);
  EXPECT_EQ(rig.stats.bundle_sig_cache_misses, 1u);
}

TEST(VerifyCache, TamperedReplayWithCachedIdIsRejected) {
  VerifyRig rig;
  auto b = rig.make_bundle(1, "genuine");
  EXPECT_TRUE(rig.adhoc.verify_bundle(b, rig.publisher_creds.certificate));

  // Attacker replays the cached id with different content: digest differs,
  // so the cache must not vouch for it and the signature check must fail.
  auto forged = b;
  forged.payload = su::to_bytes("forged!");
  EXPECT_FALSE(rig.adhoc.verify_bundle(forged, rig.publisher_creds.certificate));
  EXPECT_EQ(rig.stats.bundle_sig_rejected, 1u);
  EXPECT_EQ(rig.stats.bundle_sig_cache_hits, 0u);

  // The genuine bundle still hits the cache afterwards.
  EXPECT_TRUE(rig.adhoc.verify_bundle(b, rig.publisher_creds.certificate));
  EXPECT_EQ(rig.stats.bundle_sig_cache_hits, 1u);
}

TEST(VerifyCache, RevocationOverridesCache) {
  VerifyRig rig;
  auto b = rig.make_bundle(1);
  EXPECT_TRUE(rig.adhoc.verify_bundle(b, rig.publisher_creds.certificate));

  // Revoke the publisher after its bundle was cached: the policy half runs
  // on every reception, so the cache must not resurrect the bundle.
  rig.verifier_creds.trust.add_revoked(rig.publisher_creds.certificate.serial);
  EXPECT_FALSE(rig.adhoc.verify_bundle(b, rig.publisher_creds.certificate));
  EXPECT_EQ(rig.stats.bundle_cert_rejected, 1u);
}

TEST(VerifyCache, LruBoundEvictsOldestEntry) {
  VerifyRig rig;
  rig.adhoc.set_verify_cache_capacity(2);
  auto b1 = rig.make_bundle(1);
  auto b2 = rig.make_bundle(2);
  auto b3 = rig.make_bundle(3);
  const auto& cert = rig.publisher_creds.certificate;
  EXPECT_TRUE(rig.adhoc.verify_bundle(b1, cert));
  EXPECT_TRUE(rig.adhoc.verify_bundle(b2, cert));
  EXPECT_TRUE(rig.adhoc.verify_bundle(b3, cert));  // evicts b1
  EXPECT_EQ(rig.stats.bundle_sig_cache_misses, 3u);

  EXPECT_TRUE(rig.adhoc.verify_bundle(b1, cert));  // re-verified, not cached
  EXPECT_EQ(rig.stats.bundle_sig_cache_misses, 4u);
  EXPECT_TRUE(rig.adhoc.verify_bundle(b3, cert));  // still cached
  EXPECT_EQ(rig.stats.bundle_sig_cache_hits, 1u);
}

// --- batch bundle verification ----------------------------------------------

TEST(VerifyBatch, AllValidVerifiedInOnePass) {
  VerifyRig rig;
  std::vector<sb::Bundle> bundles;
  for (std::uint32_t i = 1; i <= 4; ++i) bundles.push_back(rig.make_bundle(i));
  std::vector<sm::AdHocManager::BundleToVerify> batch;
  for (const auto& b : bundles) batch.push_back({&b, &rig.publisher_creds.certificate});

  auto ok = rig.adhoc.verify_bundles(batch);
  EXPECT_TRUE(std::all_of(ok.begin(), ok.end(), [](bool v) { return v; }));
  EXPECT_EQ(rig.stats.bundle_batch_verifies, 1u);
  EXPECT_EQ(rig.stats.bundle_batch_fallbacks, 0u);

  // Everything verified in the batch is now cached.
  EXPECT_TRUE(rig.adhoc.verify_bundle(bundles[0], rig.publisher_creds.certificate));
  EXPECT_EQ(rig.stats.bundle_sig_cache_hits, 1u);
}

TEST(VerifyBatch, CorruptedBundleIsIsolated) {
  VerifyRig rig;
  std::vector<sb::Bundle> bundles;
  for (std::uint32_t i = 1; i <= 4; ++i) bundles.push_back(rig.make_bundle(i));
  bundles[2].payload = su::to_bytes("tampered in flight");  // signature now wrong
  std::vector<sm::AdHocManager::BundleToVerify> batch;
  for (const auto& b : bundles) batch.push_back({&b, &rig.publisher_creds.certificate});

  auto ok = rig.adhoc.verify_bundles(batch);
  ASSERT_EQ(ok.size(), 4u);
  EXPECT_TRUE(ok[0]);
  EXPECT_TRUE(ok[1]);
  EXPECT_FALSE(ok[2]);
  EXPECT_TRUE(ok[3]);
  EXPECT_EQ(rig.stats.bundle_batch_fallbacks, 1u);
  EXPECT_EQ(rig.stats.bundle_sig_rejected, 1u);
}

TEST(VerifyBatch, ForgedCertBodyWithCopiedSignatureDoesNotAliasLegitimateCert) {
  // Attack on the batch cert dedup: a certificate whose body was swapped
  // (attacker's key bound to the publisher's id) but whose signature bytes
  // were copied from the real certificate must not inherit the real
  // certificate's batch verdict.
  VerifyRig rig;
  auto legit = rig.make_bundle(1);

  sc::Drbg attacker_rng(su::to_bytes("attacker"));
  auto attacker_keys = sc::Ed25519Keypair::from_seed(attacker_rng.generate_array<32>());
  sp::Certificate forged_cert = rig.publisher_creds.certificate;  // copied signature
  forged_cert.subject_key = attacker_keys.public_key();           // swapped body
  sb::Bundle forged;
  forged.origin = rig.publisher_creds.user_id;  // claims the publisher's id
  forged.msg_num = 2;
  forged.payload = su::to_bytes("forged");
  forged.sign(attacker_keys);

  // Legit first so the forged cert would alias onto its verdict if dedup
  // keyed on signature bytes alone.
  std::vector<sm::AdHocManager::BundleToVerify> batch = {
      {&legit, &rig.publisher_creds.certificate}, {&forged, &forged_cert}};
  auto ok = rig.adhoc.verify_bundles(batch);
  EXPECT_TRUE(ok[0]);
  EXPECT_FALSE(ok[1]);
  EXPECT_EQ(rig.stats.bundle_cert_rejected, 1u);

  // Reverse order: the legitimate bundle must not be dragged down either.
  VerifyRig rig2;
  auto legit2 = rig2.make_bundle(1);
  sp::Certificate forged2 = rig2.publisher_creds.certificate;
  forged2.subject_key = attacker_keys.public_key();
  sb::Bundle fb2 = forged;
  std::vector<sm::AdHocManager::BundleToVerify> batch2 = {
      {&fb2, &forged2}, {&legit2, &rig2.publisher_creds.certificate}};
  auto ok2 = rig2.adhoc.verify_bundles(batch2);
  EXPECT_FALSE(ok2[0]);
  EXPECT_TRUE(ok2[1]);
}

TEST(VerifyBatch, IntraBatchDuplicatesVerifiedOnce) {
  // The same bundle pulled from two peers in one burst: the duplicate must
  // ride the first occurrence's verdict, not pay a second verification.
  VerifyRig rig;
  auto b1 = rig.make_bundle(1);
  auto b2 = rig.make_bundle(2);
  const auto& cert = rig.publisher_creds.certificate;
  std::vector<sm::AdHocManager::BundleToVerify> batch = {
      {&b1, &cert}, {&b2, &cert}, {&b1, &cert}};  // b1 twice
  auto ok = rig.adhoc.verify_bundles(batch);
  EXPECT_TRUE(ok[0] && ok[1] && ok[2]);
  EXPECT_EQ(rig.stats.bundle_sig_cache_misses, 2u);  // b1, b2 verified once each
  EXPECT_EQ(rig.stats.bundle_sig_cache_hits, 1u);    // duplicate b1 suppressed
}

// --- session resumption: wire-level rejection paths ---------------------------

namespace {

/// Two real SOS nodes plus a raw attacker endpoint on the same radio
/// network. The attacker can inject arbitrary bytes pre-handshake.
struct ResumeAttackRig {
  ss::Scheduler sched;
  sp::BootstrapService infra{su::to_bytes("resume-attack")};
  ss::MpcNetwork net{sched, 3};
  std::unique_ptr<sm::SosNode> alice;  // endpoint 0
  std::unique_ptr<sm::SosNode> bob;    // endpoint 1; endpoint 2 = attacker

  su::Bytes first_hello;  // alice -> bob Hello captured during priming

  ResumeAttackRig() {
    sc::Drbg da(su::to_bytes("ra-a")), db(su::to_bytes("ra-b"));
    sm::SosConfig config;
    config.maintenance_interval_s = 0;
    alice = std::make_unique<sm::SosNode>(sched, net.endpoint(0),
                                          *infra.signup("ra-alice", da, 0), config);
    bob = std::make_unique<sm::SosNode>(sched, net.endpoint(1),
                                        *infra.signup("ra-bob", db, 0), config);
    alice->start();
    bob->start();
    bob->follow(alice->user_id());
    alice->publish(su::to_bytes("post"));
    net.on_wire_frame = [this](ss::PeerId from, ss::PeerId to, const su::Bytes& w) {
      if (from == 0 && to == 1 && !w.empty() && w[0] == 0x01 && first_hello.empty())
        first_hello = w;
    };
    // One real contact mints the resumption secret on both sides.
    net.set_in_range(0, 1, true);
    sched.run_all();
    net.set_in_range(0, 1, false);
    sched.run_all();
    net.on_wire_frame = nullptr;
  }

  /// Connect the attacker endpoint to bob and inject one Resume frame.
  void inject_resume(const sm::ResumeFrame& frame) {
    net.endpoint(2).start_advertising({});
    net.set_in_range(1, 2, true);
    net.endpoint(2).on_connected = [&, wire = frame](ss::PeerId peer) {
      su::Bytes bytes;
      bytes.push_back(0x03);  // kOuterResume
      su::append(bytes, wire.encode());
      net.endpoint(2).send(peer, std::move(bytes));
    };
    net.endpoint(2).invite(1);
    sched.run_all();
  }
};

}  // namespace

TEST(ResumeReject, ForgedProofUnderKnownFingerprintIsRejected) {
  ResumeAttackRig rig;
  ASSERT_EQ(rig.bob->stats().full_handshakes, 1u);

  // The attacker replays alice's identity (her certificate fingerprint is
  // public) but cannot compute the HMAC proof without the cached secret.
  sm::ResumeFrame forged;
  forged.fingerprint = sc::Sha256::hash(rig.alice->credentials().certificate.encode());
  forged.nonce.fill(0x41);
  forged.proof.fill(0x42);  // garbage proof
  rig.inject_resume(forged);

  EXPECT_EQ(rig.bob->stats().resume_rejected, 1u);
  EXPECT_EQ(rig.bob->stats().sessions_resumed, 0u);
  EXPECT_FALSE(rig.bob->adhoc().session_secure(2));
  // The legitimate resumption state survives the forgery attempt: alice
  // still resumes on her next contact.
  rig.net.set_in_range(1, 2, false);
  rig.net.set_in_range(0, 1, true);
  rig.sched.run_all();
  EXPECT_EQ(rig.bob->stats().sessions_resumed, 1u);
}

TEST(ResumeReject, UnknownFingerprintFallsBackToHello) {
  ResumeAttackRig rig;
  sm::ResumeFrame forged;
  forged.fingerprint.fill(0x99);  // no such identity in bob's cache
  forged.nonce.fill(0x41);
  forged.proof.fill(0x42);
  rig.inject_resume(forged);

  EXPECT_EQ(rig.bob->stats().resume_rejected, 1u);
  EXPECT_FALSE(rig.bob->adhoc().session_secure(2));
  // Bob answered with a Hello (full-handshake fallback), not silence.
  EXPECT_GE(rig.bob->stats().frames_sent, 1u);
}

TEST(ResumeReject, ReplayedHelloDoesNotKillLiveResumedSession) {
  // A Hello carries no freshness, so a captured one (genuine certificate
  // and binding signature) replays past every check in handle_hello. Once
  // sealed traffic has authenticated under the resumed keys, the replay
  // must be ignored — not tear the session down and wedge it on keys the
  // real peer no longer holds.
  ResumeAttackRig rig;
  ASSERT_FALSE(rig.first_hello.empty());  // captured during the priming contact

  // Second contact resumes; traffic flows under the resumed keys.
  rig.net.set_in_range(0, 1, true);
  rig.alice->publish(su::to_bytes("post 2"));
  rig.sched.run_all();
  ASSERT_EQ(rig.bob->stats().sessions_resumed, 1u);
  ASSERT_EQ(rig.bob->stats().deliveries, 2u);

  auto lost_before = rig.bob->stats().sessions_lost;
  rig.net.endpoint(0).send(1, rig.first_hello);  // replay the genuine Hello
  rig.sched.run_all();
  EXPECT_EQ(rig.bob->stats().sessions_lost, lost_before);  // session survived

  // The resumed session still carries traffic.
  rig.alice->publish(su::to_bytes("post 3"));
  rig.sched.run_all();
  EXPECT_EQ(rig.bob->stats().deliveries, 3u);
}

TEST(ResumeReject, TruncatedResumeFrameIsMalformed) {
  ResumeAttackRig rig;
  auto malformed_before = rig.bob->stats().malformed_frames;
  rig.net.endpoint(2).start_advertising({});
  rig.net.set_in_range(1, 2, true);
  rig.net.endpoint(2).on_connected = [&](ss::PeerId peer) {
    rig.net.endpoint(2).send(peer, su::Bytes{0x03, 0x01, 0x02});  // truncated
  };
  rig.net.endpoint(2).invite(1);
  rig.sched.run_all();
  EXPECT_GT(rig.bob->stats().malformed_frames, malformed_before);
  EXPECT_FALSE(rig.bob->adhoc().session_secure(2));
}

// --- message manager verification window -------------------------------------

TEST(VerifyWindow, BurstIsBatchVerifiedEndToEnd) {
  ss::Scheduler sched;
  sp::BootstrapService infra{su::to_bytes("window-infra")};
  ss::MpcNetwork net(sched, 2);
  sm::SosConfig config;
  config.maintenance_interval_s = 0;
  config.verify_batch_window_s = 0.5;  // collect the burst, verify once
  sc::Drbg d0(su::to_bytes("w-0")), d1(su::to_bytes("w-1"));
  sm::SosNode alice(sched, net.endpoint(0), *infra.signup("w-alice", d0, 0), config);
  sm::SosNode bob(sched, net.endpoint(1), *infra.signup("w-bob", d1, 0), config);
  std::vector<std::string> got;
  bob.on_data = [&](const sb::Bundle& b, const sp::Certificate&) {
    got.push_back(su::to_string(b.payload));
  };
  alice.start();
  bob.start();
  bob.follow(alice.user_id());
  for (int i = 1; i <= 5; ++i) alice.publish(su::to_bytes("post " + std::to_string(i)));

  net.set_in_range(0, 1, true);
  sched.run_all();

  ASSERT_EQ(got.size(), 5u);
  EXPECT_EQ(got[0], "post 1");
  EXPECT_EQ(got[4], "post 5");
  // The burst went through the batch path, in fewer passes than bundles.
  EXPECT_GE(bob.stats().bundle_batch_verifies, 1u);
  EXPECT_LT(bob.stats().bundle_batch_verifies, 5u);
  EXPECT_EQ(bob.stats().bundle_batch_fallbacks, 0u);
  EXPECT_EQ(bob.stats().deliveries, 5u);
}

TEST(VerifyWindow, SessionDropPurgesPendingVerifications) {
  // Bundles waiting in the verify queue when their session drops must not
  // be delivered against a dead PeerId: they are dropped and counted as
  // interrupted, then recovered on the next encounter.
  ss::Scheduler sched;
  sp::BootstrapService infra{su::to_bytes("drop-infra")};
  ss::MpcNetwork net(sched, 2);
  sm::SosConfig config;
  config.maintenance_interval_s = 0;
  config.verify_batch_window_s = 30.0;  // long window: the cut wins the race
  sc::Drbg d0(su::to_bytes("dr-0")), d1(su::to_bytes("dr-1"));
  sm::SosNode alice(sched, net.endpoint(0), *infra.signup("dr-alice", d0, 0), config);
  sm::SosNode bob(sched, net.endpoint(1), *infra.signup("dr-bob", d1, 0), config);
  alice.start();
  bob.start();
  bob.follow(alice.user_id());
  for (int i = 1; i <= 3; ++i) alice.publish(su::to_bytes("post " + std::to_string(i)));

  net.set_in_range(0, 1, true);
  // Handshake + summary + request + bundle arrival all happen within a few
  // seconds; the 30 s verify window is still open when the link breaks.
  sched.run_until(sched.now() + 10.0);
  ASSERT_EQ(bob.stats().bundles_received, 3u);  // queued, not yet verified
  ASSERT_EQ(bob.stats().deliveries, 0u);
  net.set_in_range(0, 1, false);
  sched.run_all();  // the scheduled flush fires on an empty queue
  EXPECT_EQ(bob.stats().deliveries, 0u);
  EXPECT_EQ(bob.stats().transfers_interrupted, 3u);

  // Next encounter recovers everything via the normal pull protocol.
  net.set_in_range(0, 1, true);
  sched.run_all();
  EXPECT_EQ(bob.stats().deliveries, 3u);
  EXPECT_EQ(bob.stats().duplicates_ignored, 0u);
}

TEST(VerifyWindow, DuplicateArrivalsWithinWindowVerifiedOnce) {
  // Two relays offer bob the same bundle in one burst: the second copy must
  // be deduplicated at enqueue time, paying zero additional verification.
  ss::Scheduler sched;
  sp::BootstrapService infra{su::to_bytes("dup-infra")};
  ss::MpcNetwork net(sched, 4);
  sm::SosConfig config;
  config.scheme = "epidemic";
  config.maintenance_interval_s = 0;
  config.verify_batch_window_s = 5.0;
  std::vector<std::unique_ptr<sm::SosNode>> nodes;
  for (int i = 0; i < 4; ++i) {
    sc::Drbg d(su::to_bytes("dup-" + std::to_string(i)));
    nodes.push_back(std::make_unique<sm::SosNode>(
        sched, net.endpoint(static_cast<ss::PeerId>(i)),
        *infra.signup("dup-user" + std::to_string(i), d, 0), config));
    nodes.back()->start();
  }
  sm::SosNode& bob = *nodes[3];
  bob.follow(nodes[0]->user_id());
  nodes[0]->publish(su::to_bytes("popular post"));

  // Relays 1 and 2 each pick up the post from the publisher.
  for (ss::PeerId relay : {1u, 2u}) {
    net.set_in_range(0, relay, true);
    sched.run_all();
    net.set_in_range(0, relay, false);
    sched.run_all();
  }
  ASSERT_TRUE(nodes[1]->store().contains({nodes[0]->user_id(), 1}));
  ASSERT_TRUE(nodes[2]->store().contains({nodes[0]->user_id(), 1}));

  // Bob meets both relays at once: both serve the same bundle within one
  // verify window.
  net.set_in_range(3, 1, true);
  net.set_in_range(3, 2, true);
  sched.run_all();
  EXPECT_EQ(bob.stats().bundles_received, 2u);
  EXPECT_EQ(bob.stats().duplicates_ignored, 1u);   // dropped at enqueue
  EXPECT_EQ(bob.stats().bundle_sig_cache_misses, 1u);  // verified exactly once
  EXPECT_EQ(bob.stats().deliveries, 1u);
}

TEST(VerifyWindow, DroppedSessionHandsQueueEntryToRidingPeer) {
  // Bundle X arrives from relay 1 and is deduplicated when relay 2 offers
  // it too; if relay 1's session then drops before the flush, the queue
  // entry must be handed to relay 2 (still connected) instead of dropped.
  ss::Scheduler sched;
  sp::BootstrapService infra{su::to_bytes("ride-infra")};
  ss::MpcNetwork net(sched, 4);
  sm::SosConfig config;
  config.scheme = "epidemic";
  config.maintenance_interval_s = 0;
  config.verify_batch_window_s = 30.0;
  std::vector<std::unique_ptr<sm::SosNode>> nodes;
  for (int i = 0; i < 4; ++i) {
    sc::Drbg d(su::to_bytes("ride-" + std::to_string(i)));
    nodes.push_back(std::make_unique<sm::SosNode>(
        sched, net.endpoint(static_cast<ss::PeerId>(i)),
        *infra.signup("ride-user" + std::to_string(i), d, 0), config));
    nodes.back()->start();
  }
  sm::SosNode& bob = *nodes[3];
  bob.follow(nodes[0]->user_id());
  nodes[0]->publish(su::to_bytes("handed over"));
  for (ss::PeerId relay : {1u, 2u}) {
    net.set_in_range(0, relay, true);
    sched.run_all();
    net.set_in_range(0, relay, false);
    sched.run_all();
  }

  net.set_in_range(3, 1, true);
  net.set_in_range(3, 2, true);
  sched.run_until(sched.now() + 10.0);  // both copies queued, flush pending
  ASSERT_EQ(bob.stats().bundles_received, 2u);
  ASSERT_EQ(bob.stats().duplicates_ignored, 1u);
  ASSERT_EQ(bob.stats().deliveries, 0u);

  net.set_in_range(3, 1, false);  // the leader's session drops
  sched.run_all();                // flush delivers via relay 2's entry
  EXPECT_EQ(bob.stats().deliveries, 1u);
  EXPECT_EQ(bob.stats().transfers_interrupted, 0u);
}

TEST(VerifyWindow, DestroyingManagerCancelsScheduledFlush) {
  // A scheduled flush captures the MessageManager; destroying the node with
  // the flush pending must cancel the event, not leave a dangling callback.
  ss::Scheduler sched;
  sp::BootstrapService infra{su::to_bytes("dtor-infra")};
  ss::MpcNetwork net(sched, 2);
  sm::SosConfig config;
  config.maintenance_interval_s = 0;
  config.verify_batch_window_s = 30.0;
  sc::Drbg d0(su::to_bytes("dt-0")), d1(su::to_bytes("dt-1"));
  auto alice = std::make_unique<sm::SosNode>(sched, net.endpoint(0),
                                             *infra.signup("dt-alice", d0, 0), config);
  auto bob = std::make_unique<sm::SosNode>(sched, net.endpoint(1),
                                           *infra.signup("dt-bob", d1, 0), config);
  alice->start();
  bob->start();
  bob->follow(alice->user_id());
  alice->publish(su::to_bytes("pending"));
  net.set_in_range(0, 1, true);
  sched.run_until(sched.now() + 10.0);
  ASSERT_EQ(bob->stats().bundles_received, 1u);  // flush still pending

  bob.reset();  // destroys the MessageManager with the flush scheduled
  alice.reset();
  sched.run_all();  // must not fire the dangling flush (use-after-free)
  EXPECT_EQ(sched.cancelled_backlog(), 0u);
}

TEST(VerifyWindow, AdaptiveFlushDeliversOnSessionDrop) {
  // The adaptive window closes the classic window's failure mode: entries
  // whose session drops mid-window are verified and delivered on the spot
  // (the bytes arrived intact) instead of dying with the transfer.
  ss::Scheduler sched;
  sp::BootstrapService infra{su::to_bytes("adrop-infra")};
  ss::MpcNetwork net(sched, 2);
  sm::SosConfig config;
  config.maintenance_interval_s = 0;
  config.verify_batch_window_s = 30.0;  // long window: the cut wins the race
  config.verify_batch_adaptive = true;
  sc::Drbg d0(su::to_bytes("ad-0")), d1(su::to_bytes("ad-1"));
  sm::SosNode alice(sched, net.endpoint(0), *infra.signup("ad-alice", d0, 0), config);
  sm::SosNode bob(sched, net.endpoint(1), *infra.signup("ad-bob", d1, 0), config);
  alice.start();
  bob.start();
  bob.follow(alice.user_id());
  for (int i = 1; i <= 3; ++i) alice.publish(su::to_bytes("post " + std::to_string(i)));

  net.set_in_range(0, 1, true);
  sched.run_until(sched.now() + 10.0);
  ASSERT_EQ(bob.stats().bundles_received, 3u);  // queued, not yet verified
  ASSERT_EQ(bob.stats().deliveries, 0u);
  net.set_in_range(0, 1, false);  // session drops with the window open
  sched.run_all();
  EXPECT_EQ(bob.stats().deliveries, 3u);               // flushed, not dropped
  EXPECT_EQ(bob.stats().transfers_interrupted, 0u);    // nothing lost
  EXPECT_GE(bob.stats().bundle_batch_verifies, 1u);    // still one batch pass

  // The next encounter has nothing left to recover.
  net.set_in_range(0, 1, true);
  sched.run_all();
  EXPECT_EQ(bob.stats().deliveries, 3u);
}

TEST(VerifyWindow, AdaptiveStorePressureFlushesEarly) {
  // A full queue flushes immediately instead of buffering the burst for
  // the rest of the window.
  ss::Scheduler sched;
  sp::BootstrapService infra{su::to_bytes("press-infra")};
  ss::MpcNetwork net(sched, 2);
  sm::SosConfig config;
  config.maintenance_interval_s = 0;
  config.verify_batch_window_s = 30.0;
  config.verify_batch_adaptive = true;
  config.verify_batch_max_queue = 2;
  sc::Drbg d0(su::to_bytes("pr-0")), d1(su::to_bytes("pr-1"));
  sm::SosNode alice(sched, net.endpoint(0), *infra.signup("pr-alice", d0, 0), config);
  sm::SosNode bob(sched, net.endpoint(1), *infra.signup("pr-bob", d1, 0), config);
  alice.start();
  bob.start();
  bob.follow(alice.user_id());
  for (int i = 1; i <= 5; ++i) alice.publish(su::to_bytes("post " + std::to_string(i)));

  net.set_in_range(0, 1, true);
  sched.run_until(sched.now() + 10.0);  // window still open for 20+ s
  // 5 arrivals, queue cap 2: two pressure flushes deliver 4; the 5th waits
  // for the scheduled window flush.
  EXPECT_EQ(bob.stats().bundles_received, 5u);
  EXPECT_EQ(bob.stats().deliveries, 4u);
  EXPECT_GE(bob.stats().bundle_batch_verifies, 2u);
  sched.run_all();
  EXPECT_EQ(bob.stats().deliveries, 5u);
}

// --- bundle store eviction index ---------------------------------------------

TEST(StoreEviction, RandomizedDropHeadMatchesCreationOrder) {
  // Insert shuffled creation timestamps past capacity; survivors must be
  // exactly the most recently created bundles at every step.
  sb::BundleStore store(16);
  std::vector<double> ts;
  for (int i = 0; i < 64; ++i) ts.push_back(static_cast<double>(i));
  su::Rng rng(77);
  for (std::size_t i = ts.size(); i > 1; --i)
    std::swap(ts[i - 1], ts[rng.next() % i]);

  sp::UserId origin = sp::user_id_from_name("writer");
  std::vector<std::pair<double, std::uint32_t>> inserted;  // (creation_ts, msg_num)
  for (std::uint32_t i = 0; i < 64; ++i) {
    sb::Bundle b;
    b.origin = origin;
    b.msg_num = i + 1;
    b.creation_ts = ts[i];
    b.payload = su::to_bytes("x");
    store.insert(std::move(b), 0.0);
    inserted.emplace_back(ts[i], i + 1);
    ASSERT_LE(store.size(), 16u);

    // Expected survivors: the capacity newest by creation_ts.
    std::sort(inserted.begin(), inserted.end());
    std::size_t keep_from = inserted.size() > 16 ? inserted.size() - 16 : 0;
    for (std::size_t j = 0; j < inserted.size(); ++j)
      EXPECT_EQ(store.contains({origin, inserted[j].second}), j >= keep_from)
          << "insert " << i << " entry " << j;
  }
  EXPECT_EQ(store.evicted_count(), 64u - 16u);
}

TEST(StoreEviction, IndexSurvivesRemoveAndExpire) {
  sb::BundleStore store(4);
  sp::UserId origin = sp::user_id_from_name("writer");
  auto mk = [&](std::uint32_t num, double ts, std::uint32_t lifetime = 0) {
    sb::Bundle b;
    b.origin = origin;
    b.msg_num = num;
    b.creation_ts = ts;
    b.lifetime_s = lifetime;
    return b;
  };
  store.insert(mk(1, 10.0), 0);
  store.insert(mk(2, 20.0, 5), 0);  // expires at t=25
  store.insert(mk(3, 30.0), 0);
  store.remove({origin, 1});
  EXPECT_EQ(store.expire(100.0), 1u);  // removes msg 2
  EXPECT_EQ(store.size(), 1u);

  // Refill past capacity: eviction must pick the true oldest remaining,
  // not a stale index entry for the removed/expired bundles.
  store.insert(mk(4, 5.0), 0);
  store.insert(mk(5, 40.0), 0);
  store.insert(mk(6, 50.0), 0);
  store.insert(mk(7, 60.0), 0);  // capacity 4 exceeded: evicts msg 4 (ts=5)
  EXPECT_EQ(store.size(), 4u);
  EXPECT_FALSE(store.contains({origin, 4}));
  EXPECT_TRUE(store.contains({origin, 3}));
  EXPECT_TRUE(store.contains({origin, 7}));
}

TEST(StoreQuery, NewerThanAtUint32MaxDoesNotWrap) {
  // `after + 1` at the UINT32_MAX boundary used to wrap to 0 and rescan the
  // origin's entire range as if everything were new.
  sb::BundleStore store(16);
  sp::UserId origin = sp::user_id_from_name("writer");
  for (std::uint32_t num : {1u, 2u, 3u}) {
    sb::Bundle b;
    b.origin = origin;
    b.msg_num = num;
    store.insert(std::move(b), 0.0);
  }
  EXPECT_EQ(store.newer_than(origin, 0).size(), 3u);
  EXPECT_EQ(store.newer_than(origin, 2).size(), 1u);
  EXPECT_TRUE(store.newer_than(origin, std::numeric_limits<std::uint32_t>::max()).empty());
}

// --- scheduler cancel bookkeeping --------------------------------------------

TEST(SchedulerCancel, StaleCancelLeavesNoBacklog) {
  ss::Scheduler sched;
  std::vector<ss::EventId> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(sched.schedule_in(1.0, [] {}));
  sched.run_all();
  // Cancelling ids that already fired must not accumulate state.
  for (ss::EventId id : ids) sched.cancel(id);
  EXPECT_EQ(sched.cancelled_backlog(), 0u);
}

TEST(SchedulerCancel, RunUntilDoesNotExecutePastHorizonThroughCancelledHead) {
  ss::Scheduler sched;
  int fired = 0;
  ss::EventId early = sched.schedule_in(5.0, [&] { ++fired; });
  sched.schedule_in(100.0, [&] { ++fired; });
  sched.cancel(early);
  // The cancelled head at t=5 must be discarded without pulling the t=100
  // event inside the horizon.
  sched.run_until(10.0);
  EXPECT_EQ(fired, 0);
  EXPECT_DOUBLE_EQ(sched.now(), 10.0);
  sched.run_all();
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sched.now(), 100.0);
}

TEST(SchedulerCancel, PendingCancelStillWorksAndDrains) {
  ss::Scheduler sched;
  int fired = 0;
  ss::EventId keep = sched.schedule_in(1.0, [&] { ++fired; });
  ss::EventId drop = sched.schedule_in(2.0, [&] { ++fired; });
  sched.cancel(drop);
  sched.cancel(drop);  // double cancel is a no-op
  EXPECT_EQ(sched.cancelled_backlog(), 1u);
  sched.run_all();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.cancelled_backlog(), 0u);
  sched.cancel(keep);  // stale
  EXPECT_EQ(sched.cancelled_backlog(), 0u);
}
