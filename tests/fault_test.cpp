// Fault-injection suite (`ctest -L fault`): the disaster-realism layer —
// lossy links, churn, partitions, adversaries — must keep every sweep
// metric a pure function of (seed, grid): bitwise identical at any
// --jobs/--episode-jobs count and across the single-scheduler and
// episode-partitioned replay engines. Also pins the adversarial crypto
// paths (forged-signature storms vs the shared VerifyMemo, grayhole
// accounting, reboot resume semantics) and the fault-grid validator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "crypto/drbg.hpp"
#include "crypto/verify_memo.hpp"
#include "deploy/sweep.hpp"
#include "mw/sos_node.hpp"
#include "pki/bootstrap.hpp"
#include "sim/faults.hpp"
#include "sim/multipeer.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace sb = sos::bundle;
namespace sc = sos::crypto;
namespace sd = sos::deploy;
namespace sm = sos::mw;
namespace sp = sos::pki;
namespace ss = sos::sim;
namespace su = sos::util;

namespace {

// --- FaultPlan units --------------------------------------------------------

ss::ContactTrace one_contact(double start, double end, std::uint32_t a, std::uint32_t b) {
  ss::ContactTrace t;
  t.add({start, end, a, b});
  return t;
}

TEST(FaultPlanApply, ChurnWindowSplitsContact) {
  ss::FaultPlanConfig cfg;
  cfg.churn.push_back({1, 100.0, 200.0, true, false});
  ss::FaultPlan plan(cfg, 7, 4);
  ss::ContactTrace out = plan.apply(one_contact(50.0, 300.0, 0, 1));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out.contacts()[0].start, 50.0);
  EXPECT_DOUBLE_EQ(out.contacts()[0].end, 100.0);
  EXPECT_DOUBLE_EQ(out.contacts()[1].start, 200.0);
  EXPECT_DOUBLE_EQ(out.contacts()[1].end, 300.0);
  // A contact between two other nodes is untouched.
  EXPECT_EQ(plan.apply(one_contact(50.0, 300.0, 2, 3)).size(), 1u);
}

TEST(FaultPlanApply, PartitionBlocksCrossGroupContactsOnly) {
  ss::FaultPlanConfig cfg;
  cfg.partitions.push_back({{0.0, 1000.0}, 2});
  ss::FaultPlan plan(cfg, 7, 4);
  // 0 and 1 are in different groups (node id mod 2): fully blocked.
  EXPECT_EQ(plan.apply(one_contact(10.0, 20.0, 0, 1)).size(), 0u);
  // 0 and 2 share a group: untouched.
  EXPECT_EQ(plan.apply(one_contact(10.0, 20.0, 0, 2)).size(), 1u);
}

TEST(FaultPlanApply, DisconnectWindowClipsEveryLink) {
  ss::FaultPlanConfig cfg;
  cfg.link.disconnects = {{100.0, 150.0}};
  ss::FaultPlan plan(cfg, 7, 4);
  ss::ContactTrace out = plan.apply(one_contact(90.0, 160.0, 2, 3));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out.contacts()[0].end, 100.0);
  EXPECT_DOUBLE_EQ(out.contacts()[1].start, 150.0);
  // A contact fully inside the dead window vanishes; fragments are never
  // zero-length.
  EXPECT_EQ(plan.apply(one_contact(110.0, 140.0, 2, 3)).size(), 0u);
  EXPECT_EQ(plan.apply(one_contact(100.0, 150.0, 2, 3)).size(), 0u);
}

TEST(FaultPlanFrameFault, DeterministicInArgumentsAlone) {
  ss::FaultPlanConfig cfg;
  cfg.link.loss_p = 0.5;
  cfg.link.jitter_max_s = 0.1;
  ss::FaultPlan a(cfg, 99, 8);
  ss::FaultPlan b(cfg, 99, 8);  // separate instance, same seed
  for (std::uint64_t seq = 0; seq < 32; ++seq) {
    ss::FrameFault fa = a.frame_fault(2, 5, 1234.5, seq);
    ss::FrameFault fb = b.frame_fault(2, 5, 1234.5, seq);
    EXPECT_EQ(fa.drop, fb.drop);
    EXPECT_DOUBLE_EQ(fa.extra_busy_s, fb.extra_busy_s);
  }
  // A different seed decorrelates the stream.
  ss::FaultPlan c(cfg, 100, 8);
  bool any_diff = false;
  for (std::uint64_t seq = 0; seq < 32 && !any_diff; ++seq) {
    any_diff = a.frame_fault(2, 5, 1234.5, seq).drop != c.frame_fault(2, 5, 1234.5, seq).drop;
  }
  EXPECT_TRUE(any_diff);
}

TEST(FaultPlanFrameFault, AsymmetricLossRespectsDirection) {
  ss::FaultPlanConfig cfg;
  cfg.link.loss_p = 0.0;        // forward (low id -> high id) never drops
  cfg.link.loss_p_reverse = 1.0;  // reverse always drops
  ss::FaultPlan plan(cfg, 5, 8);
  for (std::uint64_t seq = 0; seq < 16; ++seq) {
    EXPECT_FALSE(plan.frame_fault(1, 6, 100.0, seq).drop);
    EXPECT_TRUE(plan.frame_fault(6, 1, 100.0, seq).drop);
  }
}

TEST(FaultPlanFrameFault, JitterSpikeWindowsElevateJitter) {
  ss::FaultPlanConfig cfg;
  cfg.link.jitter_max_s = 0.01;
  cfg.link.jitter_spikes = {{1000.0, 2000.0}};
  cfg.link.jitter_spike_max_s = 5.0;
  ss::FaultPlan plan(cfg, 5, 8);
  double calm_max = 0, spike_max = 0;
  for (std::uint64_t seq = 0; seq < 64; ++seq) {
    calm_max = std::max(calm_max, plan.frame_fault(0, 1, 500.0, seq).extra_busy_s);
    spike_max = std::max(spike_max, plan.frame_fault(0, 1, 1500.0, seq).extra_busy_s);
  }
  EXPECT_LE(calm_max, 0.01);
  EXPECT_GT(spike_max, 0.01);
}

TEST(FaultPlanRoles, DeterministicAndRespectingFractions) {
  ss::FaultPlanConfig cfg;
  cfg.adversaries.flooder_frac = 0.25;
  cfg.adversaries.blackhole_frac = 0.25;
  ss::FaultPlan a(cfg, 11, 200);
  ss::FaultPlan b(cfg, 11, 200);
  std::size_t flooders = 0, blackholes = 0, honest = 0;
  for (std::uint32_t n = 0; n < 200; ++n) {
    EXPECT_EQ(a.role(n), b.role(n));
    if (a.role(n) == ss::AdversaryRole::Flooder) ++flooders;
    if (a.role(n) == ss::AdversaryRole::Blackhole) ++blackholes;
    if (a.role(n) == ss::AdversaryRole::Honest) ++honest;
  }
  // One uniform per node against cumulative thresholds: expect ~50/50/100.
  EXPECT_GT(flooders, 25u);
  EXPECT_GT(blackholes, 25u);
  EXPECT_GT(honest, 60u);
  EXPECT_EQ(flooders + blackholes + honest, 200u);
}

TEST(FaultPlanFloodTimes, OnlyAdversariesFloodAndDownWindowsFilter) {
  ss::FaultPlanConfig cfg;
  cfg.adversaries.forger_frac = 1.0 - 1e-9;  // everyone forges
  cfg.adversaries.flood_posts_per_hour = 60.0;
  ss::FaultPlan plan(cfg, 3, 4);
  auto times = plan.flood_times(2, 3600.0);
  EXPECT_GT(times.size(), 20u);  // ~60 expected
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_LT(times[i], 3600.0);
    if (i > 0) {
      EXPECT_GE(times[i], times[i - 1]);
    }
  }
  // Honest nodes never flood.
  ss::FaultPlan honest(ss::FaultPlanConfig{}, 3, 4);
  EXPECT_TRUE(honest.flood_times(2, 3600.0).empty());
  // A down-window filters the times inside it but leaves the rest of the
  // schedule unperturbed (draws are consumed regardless of churn).
  ss::FaultPlanConfig churned = cfg;
  churned.churn.push_back({2, 1000.0, 2000.0, true, false});
  ss::FaultPlan plan2(churned, 3, 4);
  auto times2 = plan2.flood_times(2, 3600.0);
  std::vector<su::SimTime> expected;
  for (double t : times)
    if (t < 1000.0 || t >= 2000.0) expected.push_back(t);
  EXPECT_EQ(times2, expected);
}

// --- validator --------------------------------------------------------------

TEST(FaultValidate, AcceptsSanePlanAndDefaultPlan) {
  EXPECT_TRUE(ss::FaultPlanConfig{}.validate(86400.0, 10).empty());
  for (const auto& cell : sd::disaster_pack_grid(2.0)) {
    EXPECT_TRUE(cell.config.faults.validate(su::days(2.0), cell.config.nodes).empty())
        << cell.label;
  }
}

TEST(FaultValidate, RejectsEveryInsanity) {
  const double horizon = 1000.0;
  auto expect_reject = [&](const ss::FaultPlanConfig& cfg, const std::string& needle) {
    auto problems = cfg.validate(horizon, 10);
    ASSERT_FALSE(problems.empty()) << "expected rejection mentioning: " << needle;
    bool found = false;
    for (const auto& p : problems) found = found || p.find(needle) != std::string::npos;
    EXPECT_TRUE(found) << "no problem mentions '" << needle << "'; got: " << problems[0];
  };

  ss::FaultPlanConfig cfg;
  cfg.link.loss_p = 1.5;
  expect_reject(cfg, "loss_p");

  cfg = {};
  cfg.link.loss_p_reverse = 2.0;
  expect_reject(cfg, "loss_p_reverse");

  cfg = {};
  cfg.link.jitter_max_s = -1.0;
  expect_reject(cfg, "jitter_max_s");

  cfg = {};
  cfg.link.disconnects = {{500.0, 2000.0}};  // past the horizon
  expect_reject(cfg, "outside the horizon");

  cfg = {};
  cfg.link.jitter_spikes = {{300.0, 100.0}};  // inverted
  cfg.link.jitter_spike_max_s = 1.0;
  expect_reject(cfg, "inverted");

  cfg = {};
  cfg.churn = {{3, 100.0, 400.0, true, false}, {3, 300.0, 600.0, true, false}};
  expect_reject(cfg, "overlapping churn");

  cfg = {};
  cfg.churn = {{99, 100.0, 200.0, true, false}};  // nonexistent node
  expect_reject(cfg, "names node 99");

  cfg = {};
  cfg.churn = {{2, 400.0, 100.0, true, false}};
  expect_reject(cfg, "churn window inverted");

  cfg = {};
  cfg.partitions = {{{100.0, 200.0}, 1}};
  expect_reject(cfg, "partitions nothing");

  cfg = {};
  cfg.adversaries.flooder_frac = 0.6;
  cfg.adversaries.blackhole_frac = 0.6;  // sums to 1.2
  expect_reject(cfg, ">= 1");

  cfg = {};
  cfg.adversaries.grayhole_frac = 0.2;
  cfg.adversaries.grayhole_forward_p = -0.5;
  expect_reject(cfg, "grayhole_forward_p");
}

TEST(FaultValidate, SweepRunnerRejectsInsaneGridUpFront) {
  auto grid = sd::disaster_pack_grid(1.0);
  grid[1].config.faults.adversaries.flooder_frac = 0.7;
  grid[1].config.faults.adversaries.forger_frac = 0.7;
  grid[3].config.faults.churn.push_back({999, 0.0, 100.0, true, false});
  sd::SweepOptions opts;
  opts.jobs = 1;
  try {
    sd::SweepRunner(opts).run(grid);
    FAIL() << "insane grid must throw before running any cell";
  } catch (const std::invalid_argument& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find(">= 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("names node 999"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cell 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cell 3"), std::string::npos) << msg;
  }
}

// --- engine/thread-count determinism ---------------------------------------

/// The metrics that must be bitwise identical across thread counts and
/// replay engines, extended with the fault-layer counters.
struct Fingerprint {
  std::size_t posts, deliveries, delivered_of_posted;
  std::uint64_t contacts, wire_frames, wire_bytes, connections;
  std::uint64_t connections_failed, frames_dropped_fault;
  std::uint64_t bundles_sent, sessions_established, full_handshakes;
  std::uint64_t sig_rejected, interrupted, reboots;
  std::string label;
  bool operator==(const Fingerprint&) const = default;
};

Fingerprint fingerprint(const sd::CellResult& r) {
  return {r.result.oracle.post_count(),
          r.result.oracle.delivery_count(),
          r.result.oracle.delivered_of_posted(),
          r.result.contacts,
          r.result.wire_frames,
          r.result.wire_bytes,
          r.result.connections,
          r.result.connections_failed,
          r.result.frames_dropped_fault,
          r.result.totals.bundles_sent,
          r.result.totals.sessions_established,
          r.result.totals.full_handshakes,
          r.result.totals.bundle_sig_rejected,
          r.result.totals.transfers_interrupted,
          r.result.totals.reboots,
          r.label};
}

/// Trimmed disaster grid: every fault family, one signed + one unsigned
/// variant, short horizon — small enough for ctest, real enough to exercise
/// churn reboots, partition healing, frame drops, and forged storms.
std::vector<sd::SweepCell> fault_grid() {
  auto grid = sd::disaster_pack_grid(1.0);
  // Keep storm, churn, quake, blackhole, sigstorm; drop calm and lossy
  // (calm is the plain-sweep suite's job; lossy is storm minus the spikes).
  grid.erase(grid.begin(), grid.begin() + 2);
  return grid;
}

std::vector<Fingerprint> run_fault_grid(std::size_t jobs, std::size_t episode_jobs) {
  sd::SweepOptions opts;
  opts.jobs = jobs;
  opts.episode_jobs = episode_jobs;
  auto results = sd::SweepRunner(opts).run(fault_grid());
  std::vector<Fingerprint> fps;
  for (const auto& r : results) fps.push_back(fingerprint(r));
  return fps;
}

TEST(FaultSweep, BitwiseIdenticalAcrossJobsAndEngines) {
  // Serial single-scheduler vs 4 cell workers with 2-way episode
  // partitioning: one comparison pins both the thread-count and the
  // engine axis for every fault family at once.
  auto serial = run_fault_grid(1, 0);
  auto parallel = run_fault_grid(4, 2);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "cell/variant " << serial[i].label;
  }
  // The faults actually bit: churn rebooted phones, adversaries/loss
  // dropped frames, and the grid still delivered something.
  std::uint64_t reboots = 0, dropped = 0, delivered = 0, rejected = 0;
  for (const auto& fp : serial) {
    reboots += fp.reboots;
    dropped += fp.frames_dropped_fault;
    delivered += fp.delivered_of_posted;
    rejected += fp.sig_rejected;
  }
  EXPECT_GT(reboots, 0u);
  EXPECT_GT(dropped, 0u);
  EXPECT_GT(delivered, 0u);
  EXPECT_GT(rejected, 0u);  // the signed sigstorm variant rejected forgeries
}

// --- adversarial crypto paths ----------------------------------------------

TEST(FaultAdversary, ForgedSignaturesNeverMemoizeTrue) {
  // The sweep-wide VerifyMemo stores verdicts, not approvals: a forged
  // signature memoizes `false`, and a second consult returns that same
  // rejection rather than an acceptance.
  auto kp = sc::Ed25519Keypair::from_seed(sc::EdSeed{1, 2, 3});
  auto msg = su::to_bytes("sos post");
  sc::EdSignature sig = kp.sign(msg);
  sc::EdSignature forged = sig;
  forged[0] ^= 0x5a;

  sc::VerifyMemo memo;
  EXPECT_FALSE(memo.verify(kp.public_key(), msg, forged));
  auto key = sc::VerifyMemo::key_of(kp.public_key(), msg, forged);
  auto verdict = memo.lookup(key);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_FALSE(*verdict);
  EXPECT_FALSE(memo.verify(kp.public_key(), msg, forged));  // memoized reject
  // The honest signature memoizes true independently.
  EXPECT_TRUE(memo.verify(kp.public_key(), msg, sig));
  EXPECT_FALSE(memo.verify(kp.public_key(), msg, forged));
}

TEST(FaultAdversary, SigstormRejectionsSurviveSharedMemoReplays) {
  // Replay the signed sigstorm cell twice against one shared memo (the
  // sweep-wide scope). If a forged verdict ever memoized true, the second
  // replay would accept junk the first rejected and the metrics would
  // diverge.
  auto grid = sd::disaster_pack_grid(1.0);
  auto it = std::find_if(grid.begin(), grid.end(),
                         [](const sd::SweepCell& c) { return c.label == "sigstorm"; });
  ASSERT_NE(it, grid.end());
  sd::SweepCell cell = *it;
  sd::ScenarioConfig config = cell.config;
  config.scheme = "epidemic";
  config.seed = su::derive_seed(42, 6);
  auto world = sd::record_world(config);

  sc::VerifyMemo memo;
  sd::ReplayOptions replay;
  replay.memo = &memo;
  auto first = sd::run_scenario(config, world.get(), replay);
  auto second = sd::run_scenario(config, world.get(), replay);
  EXPECT_GT(first.totals.bundle_sig_rejected, 0u);
  EXPECT_EQ(first.totals.bundle_sig_rejected, second.totals.bundle_sig_rejected);
  EXPECT_EQ(first.oracle.delivery_count(), second.oracle.delivery_count());
  EXPECT_EQ(first.oracle.delivered_of_posted(), second.oracle.delivered_of_posted());
}

TEST(FaultAdversary, GrayholeDropsAreLossNotDeliveries) {
  sd::SweepCell cell = sd::disaster_pack_grid(1.0)[0];  // calm
  sd::ScenarioConfig calm = cell.config;
  calm.scheme = "epidemic";
  calm.seed = su::derive_seed(42, 0);
  sd::ScenarioConfig gray = calm;
  gray.faults.adversaries.grayhole_frac = 0.4;
  gray.faults.adversaries.grayhole_forward_p = 0.3;

  auto world = sd::record_world(calm);  // adversaries don't reshape the world
  auto calm_r = sd::run_scenario(calm, world.get());
  auto gray_r = sd::run_scenario(gray, world.get());

  EXPECT_GT(gray_r.frames_dropped_fault, 0u);
  // Dropped frames stay out of deliveries and out of the wire-delivery
  // ledger: what the grayhole ate shows up as loss, not as data.
  EXPECT_LT(gray_r.oracle.delivery_count(), calm_r.oracle.delivery_count());
  EXPECT_LE(gray_r.frames_dropped_fault, gray_r.wire_frames);
  // Same recorded world: the contact structure is identical.
  EXPECT_EQ(gray_r.contacts, calm_r.contacts);
}

// --- churn reboot semantics --------------------------------------------------

namespace {
/// Two signed-up users on a shared radio; ranges driven manually.
struct Pair {
  ss::Scheduler sched;
  sp::BootstrapService infra{su::to_bytes("fault-testbed")};
  ss::MpcNetwork net{sched, 2};
  std::vector<std::unique_ptr<sm::SosNode>> nodes;

  Pair() {
    for (std::size_t i = 0; i < 2; ++i) {
      sc::Drbg device(su::to_bytes("device-" + std::to_string(i)));
      auto creds = infra.signup("user" + std::to_string(i), device, sched.now());
      sm::SosConfig config;
      config.maintenance_interval_s = 0;
      nodes.push_back(std::make_unique<sm::SosNode>(
          sched, net.endpoint(static_cast<ss::PeerId>(i)), std::move(*creds), config));
      nodes.back()->start();
    }
    sched.run_all();
  }
  void meet() {
    net.set_in_range(0, 1, true);
    sched.run_all();
  }
  void part() {
    net.set_in_range(0, 1, false);
    sched.run_all();
  }
  std::uint64_t total_full_handshakes() const {
    return nodes[0]->stats().full_handshakes + nodes[1]->stats().full_handshakes;
  }
  std::uint64_t total_resumes() const {
    return nodes[0]->stats().sessions_resumed + nodes[1]->stats().sessions_resumed;
  }
};
}  // namespace

TEST(FaultChurn, RebootKeepsResumeOnlyIfCacheSurvived) {
  // Interest routing only spends a connection when something new is
  // advertised, so each contact gets a fresh post to pull.
  // Counters below are summed over both endpoints: one full handshake (or
  // resume) shows up once on each side, so a completed pairing counts 2.
  Pair bed;
  bed.nodes[1]->follow(bed.nodes[0]->user_id());
  bed.nodes[0]->publish(su::to_bytes("m1"));
  bed.meet();
  EXPECT_EQ(bed.total_full_handshakes(), 2u);
  EXPECT_EQ(bed.total_resumes(), 0u);
  bed.part();

  // Crash-reboot: RAM gone, flash (store + resume state) intact. The next
  // contact must resume, not pay a second certificate exchange.
  bed.nodes[1]->reboot(/*lose_store=*/false, /*lose_resume_cache=*/false);
  EXPECT_EQ(bed.nodes[1]->stats().reboots, 1u);
  bed.nodes[0]->publish(su::to_bytes("m2"));
  bed.meet();
  EXPECT_EQ(bed.total_full_handshakes(), 2u);
  EXPECT_GT(bed.total_resumes(), 0u);
  bed.part();

  // Flash-wiping reboot: the resume secrets are gone, so the next contact
  // pays a full handshake again — resuming against a wiped cache must
  // fail closed, not ride a stale secret.
  const std::uint64_t resumes_before_wipe = bed.total_resumes();
  bed.nodes[1]->reboot(/*lose_store=*/true, /*lose_resume_cache=*/true);
  bed.nodes[0]->publish(su::to_bytes("m3"));
  bed.meet();
  EXPECT_EQ(bed.total_full_handshakes(), 4u);
  EXPECT_EQ(bed.total_resumes(), resumes_before_wipe);
}

TEST(FaultChurn, RebootWithStoreLossRereceivesOldPosts) {
  Pair bed;
  std::size_t received = 0;
  bed.nodes[1]->on_data = [&](const sb::Bundle&, const sp::Certificate&) { ++received; };
  bed.nodes[1]->follow(bed.nodes[0]->user_id());
  bed.nodes[0]->publish(su::to_bytes("the post"));
  bed.meet();
  EXPECT_EQ(received, 1u);
  bed.part();

  // Store survives a crash reboot: nothing new to transfer on re-contact.
  bed.nodes[1]->reboot(false, false);
  bed.meet();
  EXPECT_EQ(received, 1u);
  bed.part();

  // Store lost: the post is new again and re-transfers.
  bed.nodes[1]->reboot(true, false);
  bed.meet();
  EXPECT_EQ(received, 2u);
}

// --- satellite: cross-cell memo redundancy measurement ------------------------

TEST(FaultMemo, CrossCellMemoRedundancyIsNegligible) {
  // Each sweep cell runs its own BootstrapService CA keyed by the cell's
  // derived seed, so two cells share no certificates and no bundle
  // signatures — a sweep-wide (cross-cell) memo would deduplicate nothing.
  // Measure it: redundancy = (sum of per-cell memo sizes) - (one memo fed
  // by both cells). The recorded number backs the README/ROADMAP note that
  // a cross-cell memo scope is not worth building.
  auto grid = sd::disaster_pack_grid(1.0);
  sd::ScenarioConfig a = grid[0].config;  // calm
  a.scheme = "epidemic";
  a.seed = su::derive_seed(42, 0);
  sd::ScenarioConfig b = a;
  b.seed = su::derive_seed(42, 1);

  auto world_a = sd::record_world(a);
  auto world_b = sd::record_world(b);

  sc::VerifyMemo memo_a, memo_b, shared;
  sd::ReplayOptions ra, rb, rs;
  ra.memo = &memo_a;
  rb.memo = &memo_b;
  rs.memo = &shared;
  sd::run_scenario(a, world_a.get(), ra);
  sd::run_scenario(b, world_b.get(), rb);
  sd::run_scenario(a, world_a.get(), rs);
  sd::run_scenario(b, world_b.get(), rs);

  std::size_t per_cell_sum = memo_a.size() + memo_b.size();
  ASSERT_GT(per_cell_sum, 0u);
  std::size_t redundancy = per_cell_sum - shared.size();
  std::printf("[cross-cell memo] cellA=%zu cellB=%zu shared=%zu redundant=%zu (%.2f%%)\n",
              memo_a.size(), memo_b.size(), shared.size(), redundancy,
              100.0 * static_cast<double>(redundancy) / static_cast<double>(per_cell_sum));
  // Different CAs, different signatures: effectively zero overlap.
  EXPECT_LE(redundancy, per_cell_sum / 100);
}

}  // namespace
