// Fast-path crypto tests: the table/wNAF/Shamir scalar-multiplication
// variants cross-checked against the generic double-and-add ladder, the
// fold-based scalar reduction cross-checked against an independent binary
// long division, and batch verification (success, isolation of corrupted
// signatures, malformed inputs).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "crypto/drbg.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/ge25519.hpp"
#include "crypto/sc25519.hpp"
#include "util/bytes.hpp"

namespace sc = sos::crypto;
namespace su = sos::util;

namespace {

std::string enc(const sc::GeP3& p) {
  std::uint8_t s[32];
  sc::ge_tobytes(s, p);
  return su::hex_encode(su::ByteView(s, 32));
}

std::vector<sc::Scalar> interesting_scalars() {
  std::vector<sc::Scalar> out;
  sc::Scalar s{};
  out.push_back(s);  // zero
  s[0] = 1;
  out.push_back(s);  // one
  s[0] = 2;
  out.push_back(s);  // two
  sc::Scalar ff;
  ff.fill(0xff);
  out.push_back(ff);  // all ones (>= L: the ladders work on raw 256-bit input)
  sc::Drbg d(su::to_bytes("scalar-cases"));
  for (int i = 0; i < 12; ++i) out.push_back(d.generate_array<32>());
  return out;
}

sc::GeP3 random_point(sc::Drbg& d) {
  return sc::ge_scalarmult_generic(sc::ge_base(), d.generate_array<32>().data());
}

// Independent reference: the seed's bit-by-bit binary long division mod L.
sc::Scalar reference_reduce64(const std::uint8_t in[64]) {
  const std::uint64_t L[4] = {0x5812631a5cf5d3edULL, 0x14def9dea2f79cd6ULL, 0ULL,
                              0x1000000000000000ULL};
  std::uint64_t r[4] = {0, 0, 0, 0};
  auto geq = [&] {
    for (int i = 3; i >= 0; --i) {
      if (r[i] > L[i]) return true;
      if (r[i] < L[i]) return false;
    }
    return true;
  };
  for (int bit = 511; bit >= 0; --bit) {
    std::uint64_t carry = 0;
    for (int i = 0; i < 4; ++i) {
      std::uint64_t nc = r[i] >> 63;
      r[i] = (r[i] << 1) | carry;
      carry = nc;
    }
    r[0] |= (in[bit / 8] >> (bit % 8)) & 1;
    if (geq()) {
      unsigned __int128 borrow = 0;
      for (int i = 0; i < 4; ++i) {
        unsigned __int128 d = (unsigned __int128)r[i] - L[i] - borrow;
        r[i] = (std::uint64_t)d;
        borrow = (d >> 64) & 1;
      }
    }
  }
  sc::Scalar out;
  for (int i = 0; i < 4; ++i) su::store64_le(out.data() + 8 * i, r[i]);
  return out;
}

}  // namespace

// --- scalar reduction cross-checks -----------------------------------------

TEST(Sc25519, FoldReduceMatchesBinaryDivision) {
  sc::Drbg d(su::to_bytes("sc-fold"));
  for (int i = 0; i < 200; ++i) {
    auto wide = d.generate_array<64>();
    EXPECT_EQ(sc::sc_reduce64(wide.data()), reference_reduce64(wide.data())) << i;
  }
  // Edge patterns: all-zero, all-ones, only high limbs set.
  std::array<std::uint8_t, 64> x{};
  EXPECT_EQ(sc::sc_reduce64(x.data()), reference_reduce64(x.data()));
  x.fill(0xff);
  EXPECT_EQ(sc::sc_reduce64(x.data()), reference_reduce64(x.data()));
  x.fill(0);
  for (int i = 32; i < 64; ++i) x[i] = 0xff;
  EXPECT_EQ(sc::sc_reduce64(x.data()), reference_reduce64(x.data()));
}

TEST(Sc25519, MulAddConsistency) {
  sc::Drbg d(su::to_bytes("sc-muladd"));
  for (int i = 0; i < 50; ++i) {
    auto a = sc::sc_reduce32(d.generate_array<32>());
    auto b = sc::sc_reduce32(d.generate_array<32>());
    auto c = sc::sc_reduce32(d.generate_array<32>());
    // a*b + c computed two ways.
    EXPECT_EQ(sc::sc_muladd(a, b, c), sc::sc_add(sc::sc_mul(a, b), c)) << i;
    // Results stay canonical.
    EXPECT_TRUE(sc::sc_is_canonical(sc::sc_mul(a, b)));
    EXPECT_TRUE(sc::sc_is_canonical(sc::sc_add(a, b)));
  }
}

// --- scalar multiplication variants vs the generic ladder -------------------

TEST(Ge25519, FixedBaseTableMatchesGeneric) {
  for (const auto& s : interesting_scalars()) {
    EXPECT_EQ(enc(sc::ge_scalarmult_base(s.data())),
              enc(sc::ge_scalarmult_generic(sc::ge_base(), s.data())));
  }
}

TEST(Ge25519, WnafMatchesGeneric) {
  sc::Drbg d(su::to_bytes("wnaf-points"));
  for (const auto& s : interesting_scalars()) {
    sc::GeP3 p = random_point(d);
    EXPECT_EQ(enc(sc::ge_scalarmult_vartime(p, s.data())),
              enc(sc::ge_scalarmult_generic(p, s.data())));
  }
}

TEST(Ge25519, WnafRandomizedSweepIncludingUnreducedScalars) {
  // The wNAF recoding carries borrows above bit 255 for full 256-bit
  // scalars; sweep many unreduced scalars (plus dense-bit patterns) against
  // the generic ladder.
  sc::Drbg d(su::to_bytes("wnaf-sweep"));
  sc::GeP3 p = random_point(d);
  for (int i = 0; i < 200; ++i) {
    auto s = d.generate_array<32>();
    if (i % 4 == 0) s[31] |= 0xe0;            // force the top bits high
    if (i % 7 == 0) std::memset(s.data() + 24, 0xff, 8);  // dense top limb
    EXPECT_EQ(enc(sc::ge_scalarmult_vartime(p, s.data())),
              enc(sc::ge_scalarmult_generic(p, s.data())))
        << i;
  }
}

TEST(Ge25519, ShamirMatchesSeparateMultiplications) {
  sc::Drbg d(su::to_bytes("shamir"));
  for (int i = 0; i < 10; ++i) {
    auto s = d.generate_array<32>();
    auto k = d.generate_array<32>();
    sc::GeP3 a = random_point(d);
    sc::GeP3 combined = sc::ge_double_scalarmult_base_vartime(s.data(), a, k.data());
    sc::GeP3 sb = sc::ge_scalarmult_generic(sc::ge_base(), s.data());
    sc::GeP3 ka = sc::ge_scalarmult_generic(a, k.data());
    EXPECT_EQ(enc(combined), enc(sc::ge_add(sb, sc::ge_to_cached(ka)))) << i;
  }
}

TEST(Ge25519, MultiScalarMatchesSumOfProducts) {
  sc::Drbg d(su::to_bytes("straus"));
  for (std::size_t n : {0u, 1u, 2u, 5u, 16u}) {
    std::vector<std::pair<sc::Scalar, sc::GeP3>> terms;
    sc::GeP3 expected = sc::ge_identity();
    for (std::size_t t = 0; t < n; ++t) {
      sc::Scalar z = sc::sc_reduce32(d.generate_array<32>());
      sc::GeP3 p = random_point(d);
      terms.emplace_back(z, p);
      expected = sc::ge_add(expected, sc::ge_to_cached(sc::ge_scalarmult_generic(p, z.data())));
    }
    EXPECT_EQ(enc(sc::ge_multi_scalarmult_vartime(terms)), enc(expected)) << n;
  }
}

TEST(Ge25519, IdentityPredicates) {
  EXPECT_TRUE(sc::ge_is_identity(sc::ge_identity()));
  EXPECT_FALSE(sc::ge_is_identity(sc::ge_base()));
  // P - P == identity via the sub path.
  sc::Drbg d(su::to_bytes("ident"));
  sc::GeP3 p = random_point(d);
  EXPECT_TRUE(sc::ge_is_identity(sc::ge_sub(p, sc::ge_to_cached(p))));
}

// --- batch verification -------------------------------------------------------

namespace {
struct SignedMsg {
  sc::Ed25519Keypair kp;
  su::Bytes msg;
  sc::EdSignature sig;
};

std::vector<SignedMsg> make_signed(std::size_t n, const std::string& label) {
  sc::Drbg d(su::to_bytes("batch-" + label));
  std::vector<SignedMsg> out;
  for (std::size_t i = 0; i < n; ++i) {
    SignedMsg s;
    s.kp = sc::Ed25519Keypair::from_seed(d.generate_array<32>());
    s.msg = d.generate(32 + i * 7);
    s.sig = s.kp.sign(s.msg);
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<sc::EdBatchItem> to_items(const std::vector<SignedMsg>& sm) {
  std::vector<sc::EdBatchItem> items;
  for (const auto& s : sm) items.push_back({s.kp.public_key(), s.msg, s.sig});
  return items;
}
}  // namespace

TEST(Ed25519Batch, AllValidPasses) {
  auto sm = make_signed(8, "valid");
  std::vector<bool> verdicts;
  EXPECT_TRUE(sc::ed25519_verify_batch(to_items(sm), &verdicts));
  ASSERT_EQ(verdicts.size(), 8u);
  for (bool v : verdicts) EXPECT_TRUE(v);
}

TEST(Ed25519Batch, EmptyAndSingle) {
  EXPECT_TRUE(sc::ed25519_verify_batch({}));
  auto sm = make_signed(1, "single");
  std::vector<bool> verdicts;
  EXPECT_TRUE(sc::ed25519_verify_batch(to_items(sm), &verdicts));
  EXPECT_TRUE(verdicts[0]);
}

TEST(Ed25519Batch, CorruptedSignatureFailsBatchAndIsIsolated) {
  auto sm = make_signed(8, "corrupt-sig");
  auto items = to_items(sm);
  items[3].sig[10] ^= 0x01;  // flip one bit of R
  std::vector<bool> verdicts;
  EXPECT_FALSE(sc::ed25519_verify_batch(items, &verdicts));
  for (std::size_t i = 0; i < verdicts.size(); ++i) EXPECT_EQ(verdicts[i], i != 3) << i;
}

TEST(Ed25519Batch, CorruptedScalarHalfIsIsolated) {
  auto sm = make_signed(6, "corrupt-s");
  auto items = to_items(sm);
  items[5].sig[40] ^= 0x80;  // flip a bit of S
  std::vector<bool> verdicts;
  EXPECT_FALSE(sc::ed25519_verify_batch(items, &verdicts));
  for (std::size_t i = 0; i < verdicts.size(); ++i) EXPECT_EQ(verdicts[i], i != 5) << i;
}

TEST(Ed25519Batch, TamperedMessageIsIsolated) {
  auto sm = make_signed(5, "tamper-msg");
  sm[2].msg[0] ^= 0xff;
  std::vector<bool> verdicts;
  EXPECT_FALSE(sc::ed25519_verify_batch(to_items(sm), &verdicts));
  for (std::size_t i = 0; i < verdicts.size(); ++i) EXPECT_EQ(verdicts[i], i != 2) << i;
}

TEST(Ed25519Batch, WrongKeyIsIsolated) {
  auto sm = make_signed(4, "wrong-key");
  auto items = to_items(sm);
  items[1].pub = sm[0].kp.public_key();
  std::vector<bool> verdicts;
  EXPECT_FALSE(sc::ed25519_verify_batch(items, &verdicts));
  for (std::size_t i = 0; i < verdicts.size(); ++i) EXPECT_EQ(verdicts[i], i != 1) << i;
}

TEST(Ed25519Batch, NonCanonicalScalarRejected) {
  auto sm = make_signed(3, "noncanon");
  auto items = to_items(sm);
  for (int i = 32; i < 64; ++i) items[0].sig[i] = 0xff;  // S >= L
  std::vector<bool> verdicts;
  EXPECT_FALSE(sc::ed25519_verify_batch(items, &verdicts));
  for (std::size_t i = 0; i < verdicts.size(); ++i) EXPECT_EQ(verdicts[i], i != 0) << i;
}

TEST(Ed25519Batch, BatchAgreesWithSingleVerifyOnRandomInputs) {
  // Sweep batches with randomly injected corruption; batch verdicts must
  // match per-signature ed25519_verify exactly.
  sc::Drbg d(su::to_bytes("agree"));
  for (int round = 0; round < 6; ++round) {
    auto sm = make_signed(6, "agree-" + std::to_string(round));
    auto items = to_items(sm);
    for (auto& item : items)
      if (d.generate_array<1>()[0] & 1) item.sig[d.generate_array<1>()[0] % 64] ^= 0x04;
    std::vector<bool> verdicts;
    sc::ed25519_verify_batch(items, &verdicts);
    for (std::size_t i = 0; i < items.size(); ++i)
      EXPECT_EQ(verdicts[i], sc::ed25519_verify(items[i].pub, items[i].msg, items[i].sig)) << i;
  }
}
