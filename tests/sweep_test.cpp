// Sweep determinism suite (`ctest -L sweep`): a scenario sweep must be a
// pure function of (base seed, grid) — the thread count and completion
// order must never leak into metrics. Also pins the scheduler invariant
// the whole property rests on: same-timestamp events run in insertion
// order (FIFO by EventId).
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "deploy/replay.hpp"
#include "deploy/report.hpp"
#include "deploy/sweep.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace sd = sos::deploy;
namespace ss = sos::sim;
namespace su = sos::util;

namespace {
/// Small-but-real grid: 2 worlds x 2 scheme variants, one simulated day.
std::vector<sd::SweepCell> tiny_grid() {
  std::vector<sd::SweepCell> grid;
  for (double side : {1200.0, 2500.0}) {
    sd::SweepCell cell;
    cell.label = sd::fmt(side, 0) + "m";
    cell.config = sd::gainesville_config("interest");
    cell.config.nodes = 8;
    cell.config.area_w_m = side;
    cell.config.area_h_m = side;
    cell.config.days = 1.0;
    cell.config.total_posts_target = 40.0;
    cell.variants = {{"epidemic", "epidemic", 86400.0, 0.0},
                     {"interest", "interest", 86400.0, 0.0}};
    grid.push_back(std::move(cell));
  }
  return grid;
}

/// The metrics that must be bitwise identical across thread counts.
struct Fingerprint {
  std::size_t posts, deliveries;
  std::uint64_t contacts, wire_frames, wire_bytes, connections;
  std::uint64_t bundles_sent, sessions_established, full_handshakes, ecdh_ops;
  std::string label;
  std::uint64_t seed;
  bool operator==(const Fingerprint&) const = default;
};

Fingerprint fingerprint(const sd::CellResult& r) {
  return {r.result.oracle.post_count(),
          r.result.oracle.delivery_count(),
          r.result.contacts,
          r.result.wire_frames,
          r.result.wire_bytes,
          r.result.connections,
          r.result.totals.bundles_sent,
          r.result.totals.sessions_established,
          r.result.totals.full_handshakes,
          r.result.totals.ecdh_ops,
          r.label,
          r.config.seed};
}

std::vector<Fingerprint> run_with_jobs(std::size_t jobs, bool reuse_traces = true) {
  sd::SweepOptions opts;
  opts.jobs = jobs;
  opts.reuse_traces = reuse_traces;
  auto results = sd::SweepRunner(opts).run(tiny_grid());
  std::vector<Fingerprint> fps;
  for (const auto& r : results) fps.push_back(fingerprint(r));
  return fps;
}
}  // namespace

TEST(Sweep, MetricsBitwiseIdenticalAtAnyThreadCount) {
  auto serial = run_with_jobs(1);
  auto parallel = run_with_jobs(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "cell/variant " << serial[i].label;
  }
  // The workload actually exercised something.
  std::uint64_t contacts = 0;
  for (const auto& fp : serial) contacts += fp.contacts;
  EXPECT_GT(contacts, 0u);
}

TEST(Sweep, ResultsComeBackInGridOrder) {
  sd::SweepOptions opts;
  opts.jobs = 4;
  auto results = sd::SweepRunner(opts).run(tiny_grid());
  ASSERT_EQ(results.size(), 4u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].cell, i / 2);
    EXPECT_EQ(results[i].variant, i % 2);
    EXPECT_TRUE(results[i].replayed);
  }
  EXPECT_EQ(results[0].label, "1200m/epidemic");
  EXPECT_EQ(results[3].label, "2500m/interest");
}

TEST(Sweep, VariantsShareTheCellWorld) {
  sd::SweepOptions opts;
  opts.jobs = 2;
  auto results = sd::SweepRunner(opts).run(tiny_grid());
  // Same world => same encounters and seed for both variants of a cell...
  EXPECT_EQ(results[0].result.contacts, results[1].result.contacts);
  EXPECT_EQ(results[0].config.seed, results[1].config.seed);
  EXPECT_EQ(results[2].result.contacts, results[3].result.contacts);
  // ...and epidemic floods at least as far as interest over those contacts.
  EXPECT_GE(results[0].result.oracle.delivery_count(),
            results[1].result.oracle.delivery_count());
}

TEST(Sweep, DerivedSeedsDecorrelateCells) {
  auto fps = run_with_jobs(1);
  EXPECT_NE(fps[0].seed, fps[2].seed);  // different cells, different streams
  EXPECT_NE(fps[0].seed, 42u);          // derived, not the raw base seed
  EXPECT_EQ(su::derive_seed(42, 0), fps[0].seed);
  EXPECT_EQ(su::derive_seed(42, 1), fps[2].seed);
}

TEST(Sweep, DeriveSeedsOffKeepsConfiguredSeed) {
  sd::SweepOptions opts;
  opts.derive_seeds = false;
  auto grid = tiny_grid();
  grid.resize(1);
  grid[0].config.seed = 1234;
  grid[0].variants.resize(1);
  auto results = sd::SweepRunner(opts).run(grid);
  EXPECT_EQ(results[0].config.seed, 1234u);
}

TEST(Sweep, ReplayOfRecordedWorldIsDeterministic) {
  auto grid = tiny_grid();
  sd::ScenarioConfig config = grid[0].config;
  config.seed = su::derive_seed(7, 0);
  auto world = sd::record_world(config);
  EXPECT_GT(world->trace.size(), 0u);
  auto a = sd::run_scenario(config, world.get());
  auto b = sd::run_scenario(config, world.get());
  EXPECT_EQ(a.wire_bytes, b.wire_bytes);
  EXPECT_EQ(a.oracle.delivery_count(), b.oracle.delivery_count());
  EXPECT_EQ(a.contacts, world->trace.size());
}

TEST(Sweep, SweepWideMemoScopeDoesNotChangeMetrics) {
  // The sweep-wide verify memo (one crypto::VerifyMemo shared by every
  // variant of a cell, concurrently) is pure-function memoization: per-cell
  // metrics must be bitwise identical to run-local memos at any thread
  // count. A multi-community cell with three scheme variants exercises the
  // cross-variant sharing under both cell- and episode-level workers.
  auto community_cell = [] {
    sd::SweepCell cell;
    cell.label = "memo";
    cell.config = sd::gainesville_config("interest");
    cell.config.nodes = 15;
    cell.config.area_w_m = 2000;
    cell.config.area_h_m = 2000;
    cell.config.days = 2.0;
    cell.config.communities = 3;
    cell.config.bridge_node_frac = 0.2;
    cell.config.mobility.home_min_separation_m = 150.0;
    cell.config.total_posts_target = 80.0;
    cell.variants = {{"interest", "interest", 86400.0, 0.0},
                     {"epidemic", "epidemic", 86400.0, 0.0},
                     {"prophet", "prophet", 86400.0, 0.0}};
    return cell;
  };
  sd::SweepOptions local_opts;
  local_opts.jobs = 1;
  local_opts.cell_verify_memo = false;
  auto run_local = sd::SweepRunner(local_opts).run({community_cell()});
  sd::SweepOptions shared_opts;
  shared_opts.jobs = 3;
  shared_opts.episode_jobs = 2;
  shared_opts.cell_verify_memo = true;
  auto sweep_wide = sd::SweepRunner(shared_opts).run({community_cell()});
  ASSERT_EQ(run_local.size(), sweep_wide.size());
  std::uint64_t deliveries = 0;
  for (std::size_t i = 0; i < run_local.size(); ++i) {
    EXPECT_EQ(fingerprint(run_local[i]), fingerprint(sweep_wide[i])) << run_local[i].label;
    deliveries += run_local[i].result.oracle.delivery_count();
  }
  EXPECT_GT(deliveries, 0u);
}

TEST(Sweep, CellResultsReportEpisodeParallelism) {
  // The per-cell parallelism ceiling rides along with every variant result
  // (the density benches print it), and a recorded world always yields at
  // least one contact episode.
  sd::SweepOptions opts;
  opts.jobs = 2;
  auto results = sd::SweepRunner(opts).run(tiny_grid());
  for (const auto& r : results) {
    EXPECT_GE(r.episode_parallelism, 1.0) << r.label;
    EXPECT_GT(r.episodes, 0u) << r.label;
  }
  // Variants of one cell share the recorded world, hence the same partition.
  EXPECT_DOUBLE_EQ(results[0].episode_parallelism, results[1].episode_parallelism);
}

// --- WorkerBudget: the token pool behind nested parallelism ----------------

TEST(WorkerBudget, DonationNeverLeaksOrMintsTokens) {
  // The donation path: finished cell workers release(1) their own thread
  // while episode workers concurrently acquire(1) to grow. Conservation is
  // by protocol (every acquire()'s return value is eventually released by
  // its owner), so hammer exactly that protocol from many threads and
  // assert the pool returns to its initial size — a lost token would starve
  // later cells, a minted one would oversubscribe the job count. Run under
  // -DSOS_SANITIZE=thread via `ctest -L sweep` for the data-race half.
  static constexpr std::size_t kTokens = 4;
  constexpr std::size_t kThreads = 8;
  constexpr int kRounds = 2000;
  sd::WorkerBudget budget(kTokens);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&budget, t] {
      for (int r = 0; r < kRounds; ++r) {
        // Mix bulk grabs (engine startup: acquire(want)) with the
        // single-token opportunistic borrow (mid-run growth).
        std::size_t got = budget.acquire(t % 3 == 0 ? 3 : 1);
        ASSERT_LE(got, kTokens);
        if (got > 1) budget.release(got - 1);  // partial give-back
        if (got > 0) budget.release(1);        // the donation itself
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(budget.available(), kTokens);
  // Quiescent pool still grants what it holds, no more.
  EXPECT_EQ(budget.acquire(kTokens + 5), kTokens);
  EXPECT_EQ(budget.acquire(1), 0u);
  budget.release(kTokens);
}

TEST(WorkerBudget, DonatedThreadsDoNotChangeSweepMetrics) {
  // End-to-end donation: one cell, several variants, jobs well above the
  // cell-worker count, so the surplus seeds the budget and finished cell
  // workers donate into episode engines still running. Metrics must be
  // bitwise identical to the fully serial run.
  auto grid = tiny_grid();
  sd::SweepOptions serial_opts;
  serial_opts.jobs = 1;
  auto serial = sd::SweepRunner(serial_opts).run(grid);
  sd::SweepOptions donate_opts;
  donate_opts.jobs = 8;  // 4 work items -> 4 cell workers + 4 budget tokens
  donate_opts.episode_jobs = 3;
  auto donated = sd::SweepRunner(donate_opts).run(grid);
  ASSERT_EQ(serial.size(), donated.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(fingerprint(serial[i]), fingerprint(donated[i]))
        << serial[i].label;
  }
}

// --- the scheduler invariant the sweep property rests on -------------------

TEST(Scheduler, SameTimestampEventsRunInInsertionOrder) {
  ss::Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(10.0, [&] { order.push_back(0); });
  sched.schedule_at(10.0, [&] { order.push_back(1); });
  sched.schedule_at(5.0, [&] { order.push_back(2); });
  sched.schedule_at(10.0, [&] { order.push_back(3); });
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{2, 0, 1, 3}));
}

TEST(Scheduler, EventsScheduledMidRunAtNowRunAfterExistingPeers) {
  // An event that schedules a follow-up at the current timestamp must see
  // that follow-up run after the already-queued same-timestamp events:
  // EventIds are monotonically increasing and break timestamp ties FIFO.
  ss::Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(10.0, [&] {
    order.push_back(0);
    sched.schedule_at(10.0, [&] { order.push_back(9); });
  });
  sched.schedule_at(10.0, [&] { order.push_back(1); });
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 9}));
}

TEST(Scheduler, CancelledHeadDoesNotPerturbOrdering) {
  ss::Scheduler sched;
  std::vector<int> order;
  auto id = sched.schedule_at(10.0, [&] { order.push_back(0); });
  sched.schedule_at(10.0, [&] { order.push_back(1); });
  sched.schedule_at(10.0, [&] { order.push_back(2); });
  sched.cancel(id);
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}
