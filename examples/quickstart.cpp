// Quickstart: the smallest complete SOS program. Two users sign up once
// (the Fig 2a infrastructure step), then exchange a social post entirely
// device-to-device — no Internet on the dissemination path.
#include <cstdio>

#include "alleyoop/app.hpp"
#include "crypto/drbg.hpp"
#include "mw/sos_node.hpp"
#include "pki/bootstrap.hpp"
#include "sim/multipeer.hpp"
#include "sim/scheduler.hpp"

using namespace sos;

int main() {
  // A simulated world: one event scheduler, one D2D radio network.
  sim::Scheduler sched;
  sim::MpcNetwork net(sched, /*nodes=*/2);

  // One-time infrastructure requirement (Fig 2a): sign up while online.
  pki::BootstrapService infra(util::to_bytes("quickstart-ca"));
  crypto::Drbg alice_device(util::to_bytes("alice-device"));
  crypto::Drbg bob_device(util::to_bytes("bob-device"));
  auto alice_creds = infra.signup("alice", alice_device, sched.now());
  auto bob_creds = infra.signup("bob", bob_device, sched.now());
  std::printf("signed up: alice id=%s, bob id=%s\n",
              alice_creds->user_id.to_string().c_str(),
              bob_creds->user_id.to_string().c_str());

  // SOS middleware instance inside each app (no daemon, no jailbreak).
  mw::SosConfig config;
  config.scheme = "interest";
  config.maintenance_interval_s = 0;
  mw::SosNode alice_node(sched, net.endpoint(0), std::move(*alice_creds), config);
  mw::SosNode bob_node(sched, net.endpoint(1), std::move(*bob_creds), config);
  alleyoop::App alice(alice_node);
  alleyoop::App bob(bob_node);
  bob.on_new_post = [](const alleyoop::Post& p) {
    std::printf("bob received over D2D: \"%s\" (from %s, msg #%u)\n", p.text.c_str(),
                p.author_name.c_str(), p.msg_num);
  };
  alice_node.start();
  bob_node.start();

  // Bob follows Alice; Alice posts while the two are out of range.
  bob.follow(alice.user_id());
  alice.post("offline greetings from the SOS middleware!");
  sched.run_all();
  std::printf("posted while out of range; bob's timeline: %zu posts\n",
              bob.timeline().size());

  // The devices come within radio range: advertise -> connect -> encrypt ->
  // request -> verified transfer, all inside the middleware.
  net.set_in_range(0, 1, true);
  sched.run_all();

  std::printf("bob's timeline now: %zu post(s); session was encrypted and the\n"
              "bundle was verified against alice's CA-issued certificate.\n",
              bob.timeline().size());
  return bob.timeline().size() == 1 ? 0 : 1;
}
