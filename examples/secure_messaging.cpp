// Secure messaging: demonstrates the middleware's security layer end to
// end. Alice sends Carol an end-to-end encrypted direct message that can
// only travel through Bob (an epidemic relay). The example shows that
// (1) Bob carries the DM but cannot read it, (2) an eavesdropper on the
// radio sees only ciphertext, (3) a bundle Bob tampers with is rejected by
// Carol's signature check, and (4) Carol decrypts the genuine DM.
#include <cstdio>
#include <string>
#include <vector>

#include "crypto/drbg.hpp"
#include "mw/sos_node.hpp"
#include "pki/bootstrap.hpp"
#include "sim/multipeer.hpp"
#include "sim/scheduler.hpp"

using namespace sos;

int main() {
  sim::Scheduler sched;
  sim::MpcNetwork net(sched, 3);
  pki::BootstrapService infra(util::to_bytes("secure-demo-ca"));

  auto make_node = [&](int i, const std::string& name) {
    crypto::Drbg device(util::to_bytes(name + "-device"));
    mw::SosConfig config;
    config.scheme = "epidemic";
    config.maintenance_interval_s = 0;
    return std::make_unique<mw::SosNode>(sched, net.endpoint((sim::PeerId)i),
                                         *infra.signup(name, device, 0.0), config);
  };
  auto alice = make_node(0, "alice");
  auto bob = make_node(1, "bob");
  auto carol = make_node(2, "carol");
  for (auto* n : {alice.get(), bob.get(), carol.get()}) n->start();

  // The radio is hostile territory: log everything that crosses it.
  const std::string secret = "meet at the old library, midnight";
  std::size_t frames_seen = 0;
  bool plaintext_leaked = false;
  net.on_wire_frame = [&](sim::PeerId, sim::PeerId, const util::Bytes& w) {
    ++frames_seen;
    if (util::to_string(w).find(secret) != std::string::npos) plaintext_leaked = true;
  };

  std::printf("alice -> carol (E2E encrypted DM), only route is via bob...\n");
  alice->send_direct(carol->credentials().certificate, util::to_bytes(secret));

  // Leg 1: alice meets bob. Bob (epidemic) takes custody of the DM.
  net.set_in_range(0, 1, true);
  sched.run_all();
  net.set_in_range(0, 1, false);
  sched.run_all();

  auto dm_id = bundle::BundleId{alice->user_id(), 1};
  auto carried = bob->store().get(dm_id);
  std::printf("bob carries the bundle: %s\n", carried ? "yes" : "NO (bug!)");
  bool bob_read = bob->open_direct(*carried).has_value();
  std::printf("bob can decrypt it: %s\n", bob_read ? "YES (broken!)" : "no (sealed for carol)");

  // Bob also tries to tamper with a copy before forwarding.
  auto forged = *carried;
  forged.msg_num = 2;  // pretend it's a newer message
  forged.payload = util::to_bytes("meet at the police station, noon");
  bob->store().insert(forged, sched.now());
  bob->routing().refresh_advertisement();

  // Leg 2: bob meets carol.
  std::string received;
  carol->on_data = [&](const bundle::Bundle& b, const pki::Certificate&) {
    auto plain = carol->open_direct(b);
    if (plain) received = util::to_string(*plain);
  };
  net.set_in_range(1, 2, true);
  sched.run_all();

  std::printf("eavesdropper: %zu frames on the air, plaintext leaked: %s\n", frames_seen,
              plaintext_leaked ? "YES (broken!)" : "never");
  std::printf("carol decrypted: \"%s\"\n", received.c_str());
  std::printf("carol rejected bob's forgery: %s (signature rejections: %llu)\n",
              carol->store().contains({alice->user_id(), 2}) ? "NO (broken!)" : "yes",
              static_cast<unsigned long long>(carol->stats().bundle_sig_rejected));

  bool ok = !bob_read && !plaintext_leaked && received == secret &&
            !carol->store().contains({alice->user_id(), 2});
  std::printf("\nsecurity demo %s\n", ok ? "PASSED" : "FAILED");
  return ok ? 0 : 1;
}
