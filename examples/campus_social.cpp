// Campus social network: a compact version of the paper's Gainesville
// study driven entirely through the public scenario API. Ten students with
// the Fig 4a follow graph run AlleyOop over Interest-Based routing for two
// simulated days; the example prints what a user's timeline experience
// looks like plus the run's network-level statistics.
#include <cstdio>

#include "deploy/report.hpp"
#include "deploy/scenario.hpp"
#include "util/time.hpp"

using namespace sos;

int main() {
  deploy::ScenarioConfig config = deploy::gainesville_config("interest", /*seed=*/7);
  config.days = 2.0;
  config.total_posts_target = 74.0;  // the study's daily posting volume

  std::printf("running 2 simulated days of AlleyOop Social (10 students, IB routing,\n"
              "%.0f x %.0f m study area)...\n\n", config.area_w_m, config.area_h_m);
  auto result = deploy::run_scenario(config);
  const auto& oracle = result.oracle;

  deploy::Table t({"metric", "value"});
  t.add_row({"posts created", std::to_string(oracle.post_count())});
  t.add_row({"D2D deliveries", std::to_string(oracle.delivery_count())});
  t.add_row({"radio encounters", std::to_string(result.contacts)});
  t.add_row({"encrypted sessions", std::to_string(result.totals.sessions_established)});
  t.add_row({"bundles relayed", std::to_string(result.totals.bundles_carried)});
  t.add_row({"1-hop delivery share", deploy::fmt(oracle.one_hop_fraction(), 2)});
  t.add_row({"wire bytes", std::to_string(result.wire_bytes)});
  t.add_row({"signature rejections", std::to_string(result.totals.bundle_sig_rejected)});
  t.print();

  auto delays = oracle.delay_cdf(false);
  if (!delays.empty()) {
    std::printf("\ndelivery delay: median %s, p90 %s — hours, not milliseconds:\n"
                "that is what delay-tolerant means; the network is people moving.\n",
                util::format_duration(delays.quantile(0.5)).c_str(),
                util::format_duration(delays.quantile(0.9)).c_str());
  }

  // A sample of what actually flowed, from the oracle's delivery log.
  std::printf("\nfirst few deliveries:\n");
  std::size_t shown = 0;
  for (const auto& d : oracle.deliveries()) {
    std::printf("  [%s] %s got msg #%u from %s (%u hop%s)\n",
                util::format_time(d.at).c_str(), d.subscriber.to_string().c_str(),
                d.id.msg_num, d.id.origin.to_string().c_str(), d.hops,
                d.hops == 1 ? "" : "s");
    if (++shown >= 8) break;
  }
  return oracle.delivery_count() > 0 ? 0 : 1;
}
