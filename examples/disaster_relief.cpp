// Disaster-relief scenario (the paper's motivating use case): cellular
// infrastructure is down across a city; an emergency coordinator publishes
// resource updates that must reach everyone. Epidemic routing turns every
// phone into a relay; this example watches the announcement percolate
// through 30 residents moving around a 4 km x 4 km district.
#include <cstdio>
#include <vector>

#include "crypto/drbg.hpp"
#include "mw/sos_node.hpp"
#include "pki/bootstrap.hpp"
#include "sim/multipeer.hpp"
#include "sim/radio.hpp"
#include "sim/scheduler.hpp"

using namespace sos;

int main() {
  constexpr std::size_t kResidents = 30;
  sim::Scheduler sched;
  sim::MpcNetwork net(sched, kResidents);

  // Residents roam the district (random waypoint at walking speeds).
  util::Rng rng(2024);
  sim::RandomWaypointParams walk;
  walk.area = {4000, 4000};
  walk.max_pause_s = 300;
  auto mobility = sim::random_waypoint(kResidents, util::hours(24), walk, rng);
  sim::EncounterDetector detector(sched, *mobility, 80.0, 15.0);
  detector.on_contact_start = [&](std::size_t a, std::size_t b) {
    net.set_in_range((sim::PeerId)a, (sim::PeerId)b, true);
  };
  detector.on_contact_end = [&](std::size_t a, std::size_t b) {
    net.set_in_range((sim::PeerId)a, (sim::PeerId)b, false);
  };
  detector.start(util::hours(24));

  // Everyone signed up before the disaster (the one-time requirement).
  pki::BootstrapService infra(util::to_bytes("relief-ca"));
  std::vector<std::unique_ptr<mw::SosNode>> phones;
  std::size_t reached = 0;
  std::vector<double> reach_times;
  for (std::size_t i = 0; i < kResidents; ++i) {
    crypto::Drbg device(util::to_bytes("phone-" + std::to_string(i)));
    auto creds = infra.signup("resident" + std::to_string(i), device, 0.0);
    mw::SosConfig config;
    config.scheme = "epidemic";  // gratuitous replication: everyone relays
    phones.push_back(
        std::make_unique<mw::SosNode>(sched, net.endpoint((sim::PeerId)i), std::move(*creds),
                                      config));
  }
  const pki::UserId coordinator = phones[0]->user_id();
  for (std::size_t i = 1; i < kResidents; ++i) {
    phones[i]->follow(coordinator);  // everyone wants official updates
    phones[i]->on_data = [&, i](const bundle::Bundle& b, const pki::Certificate&) {
      ++reached;
      reach_times.push_back(sched.now());
      std::printf("[%s] resident%-2zu got the announcement (%u hop%s) — %zu/%zu reached\n",
                  util::format_time(sched.now()).c_str(), i, b.hop_count,
                  b.hop_count == 1 ? "" : "s", reached, kResidents - 1);
      (void)b;
    };
  }
  for (auto& phone : phones) phone->start();

  // One hour into the outage, the coordinator publishes.
  sched.schedule_at(util::hours(1), [&] {
    std::printf("[%s] coordinator publishes: water point at Main & 5th\n",
                util::format_time(sched.now()).c_str());
    phones[0]->publish(util::to_bytes("WATER: Main & 5th, 10:00-18:00. MEDICAL: clinic B."));
  });

  sched.run_until(util::hours(24));

  std::printf("\nafter 24h: %zu of %zu residents reached with zero infrastructure.\n",
              reached, kResidents - 1);
  if (!reach_times.empty()) {
    std::printf("first delivery %.1f min after publication; last %.1f h after.\n",
                (reach_times.front() - util::hours(1)) / 60.0,
                (reach_times.back() - util::hours(1)) / 3600.0);
  }
  return reached > (kResidents - 1) / 2 ? 0 : 1;
}
