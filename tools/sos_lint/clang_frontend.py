"""Optional libclang frontend for sos-lint.

When the ``clang.cindex`` Python bindings are importable (Debian/Ubuntu:
``python3-clang`` + ``libclang1``), this frontend replaces the token
scanner's function/call/iteration extraction with AST-exact facts; the
line-oriented rules (annotations, banned tokens, zeroize membership)
always come from the token layer, which needs no compiler.

The build container this repo pins does not ship the bindings, so the
module is a *gate*, not a hard dependency: ``available()`` is probed by
the driver, ``--frontend clang`` fails with instructions when the probe
fails, and ``--frontend auto`` (the default) silently uses the token
frontend. Any per-file parse failure also falls back to the token model
for that file — a broken TU must degrade coverage, never crash the lint
gate. The fixture suite (ctest label ``lint``) runs with ``--frontend
token`` explicitly so rule behaviour is pinned identically on machines
with and without libclang.
"""

from __future__ import annotations

from cxx_model import FileModel, Function, build_model

_UNORDERED_SPELLINGS = ("unordered_map", "unordered_set",
                        "unordered_multimap", "unordered_multiset")


def available() -> bool:
    try:
        import clang.cindex  # noqa: F401
        return True
    except Exception:
        return False


def build_model_clang(path: str, text: str, include_dirs: list[str]) -> FileModel:
    """Token model with functions/calls/iterations re-derived from the AST.

    Raises on import/parse errors; the driver catches and falls back.
    """
    from clang.cindex import CursorKind, Index, TranslationUnit

    model = build_model(path, text)  # annotations / decls / line facts
    index = Index.create()
    tu = index.parse(
        path,
        args=["-std=c++20", "-xc++"] + [f"-I{d}" for d in include_dirs],
        unsaved_files=[(path, text)],
        options=TranslationUnit.PARSE_INCOMPLETE,
    )

    functions: list[Function] = []

    def is_unordered_type(type_spelling: str) -> bool:
        return any(u in type_spelling for u in _UNORDERED_SPELLINGS)

    def walk_body(cursor, fn: Function) -> None:
        for child in cursor.walk_preorder():
            if child.kind == CursorKind.CALL_EXPR and child.spelling:
                fn.calls.add(child.spelling)
            # Reference facts for seam-completeness: names the body actually
            # mentions. (The rule itself reads the token-layer facts, which
            # the AST ones are merged into, so a PARSE_INCOMPLETE AST that
            # drops an expression can only ever ADD references, never hide
            # one the token layer saw.)
            if child.kind in (CursorKind.DECL_REF_EXPR,
                              CursorKind.MEMBER_REF_EXPR) and child.spelling:
                fn.idents.add(child.spelling)
            if child.kind == CursorKind.CXX_FOR_RANGE_STMT:
                kids = list(child.get_children())
                if len(kids) >= 2 and is_unordered_type(kids[-2].type.spelling):
                    fn.unordered_iterations.append(
                        (child.location.line, kids[-2].type.spelling))

    for cursor in tu.cursor.walk_preorder():
        if cursor.location.file is None or cursor.location.file.name != path:
            continue
        if cursor.kind in (
            CursorKind.FUNCTION_DECL,
            CursorKind.CXX_METHOD,
            CursorKind.CONSTRUCTOR,
            CursorKind.DESTRUCTOR,
        ) and cursor.is_definition():
            parent = cursor.semantic_parent
            qual = (
                f"{parent.spelling}::{cursor.spelling}"
                if parent is not None and parent.spelling
                else cursor.spelling
            )
            fn = Function(
                name=cursor.spelling,
                qual=qual,
                file=path,
                line=cursor.location.line,
                end_line=cursor.extent.end.line,
            )
            walk_body(cursor, fn)
            functions.append(fn)

    if functions:
        model.functions = functions
    return model
