"""sos-lint rule implementations.

Three families, seven rules:

Determinism (the replay-identity contract: metrics/wire/trace/report bytes
must be a pure function of the scenario seed):

- ``unordered-iteration`` — no iteration over ``std::unordered_map`` /
  ``std::unordered_set`` (or aliases of them) in code reachable from the
  emission roots. Hash-table iteration order is
  libstdc++-version-dependent and (for pointer-ish keys) address-dependent,
  so one range-for can silently break bitwise metric identity.
- ``banned-entropy`` — no ambient entropy or wall-clock sources
  (``std::rand``, ``std::random_device``, ``system_clock``, ``time()``,
  ...) outside the ``util/rng`` allowlist. All randomness must derive from
  the scenario seed.
- ``pointer-key`` — no ordered associative containers keyed by a pointer:
  iteration order is allocation-address order, i.e. nondeterministic
  across runs even with identical seeds.

Crypto hygiene (constant-time discipline in ``src/crypto`` + the
handshake/resume paths):

- ``memcmp-secret`` — no raw ``memcmp`` / ``==`` / ``!=`` over secret
  material; use ``util::ct_equal``. Sites comparing public data carry
  ``// sos-lint: allow(memcmp-public) <why the operands are public>``.
- ``zeroize-secret`` — structs/classes holding key material must zeroize
  it (``util::secure_wipe`` in their destructor).

Concurrency contracts (the detach/attach seam and the lock discipline the
Clang Thread Safety annotations in ``util/thread_annotations.hpp`` check
at compile time — these rules cover the parts attributes cannot express):

- ``seam-completeness`` — every data member of a seam class (the classes
  whose state crosses episode-shard boundaries through detach()/attach())
  must be referenced somewhere in the detach/attach closure (the seam
  bodies plus same-class methods they call), or carry
  ``// sos-lint: allow(seam-exempt) <why this member is seam-inert>``.
  A member added without either is exactly the bug class the seam exists
  to prevent: state silently dropped at an episode boundary.
- ``lock-scope`` — in the annotated shared-state files, no callback,
  emission, or scheduler call while a ``lock_guard`` / ``unique_lock`` /
  ``scoped_lock`` / ``MutexLock`` is in scope. Re-entrant callbacks under
  a lock are the classic self-deadlock / lock-order-inversion seed; the
  span is over-approximate (a manual ``unlock()`` does not end it), so
  sound sites annotate ``allow(lock-scope)`` with the reason.

Every rule accepts an inline annotation
``// sos-lint: allow(<tag>) <justification>`` on the flagged line (or as a
standalone comment on the line above). An annotation without a
justification is itself a finding (``lint-annotation``): exemptions are
cheap to grant but must say *why*.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from cxx_model import FileModel

ALL_RULES = (
    "unordered-iteration",
    "banned-entropy",
    "pointer-key",
    "memcmp-secret",
    "zeroize-secret",
    "seam-completeness",
    "lock-scope",
)

# Which annotation tags silence which rule.
ALLOW_TAGS = {
    "unordered-iteration": {"unordered-iteration"},
    "banned-entropy": {"banned-entropy"},
    "pointer-key": {"pointer-key"},
    "memcmp-secret": {"memcmp-secret", "memcmp-public"},
    "zeroize-secret": {"zeroize-secret"},
    "seam-completeness": {"seam-completeness", "seam-exempt"},
    "lock-scope": {"lock-scope"},
}


@dataclass(frozen=True)
class Finding:
    file: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"


def _allowed(model: FileModel, line: int, rule: str) -> bool:
    return bool(model.allow_tags(line) & ALLOW_TAGS[rule])


def check_annotations(model: FileModel) -> list[Finding]:
    """A bare allow() with no justification is itself a violation."""
    out = []
    for a in model.annotations:
        if not a.justification:
            out.append(Finding(
                model.path, a.line, "lint-annotation",
                "allow(...) annotation needs a justification "
                "(why is this exemption sound?)",
            ))
        for tag in a.tags:
            known = set().union(*ALLOW_TAGS.values())
            if tag not in known:
                out.append(Finding(
                    model.path, a.line, "lint-annotation",
                    f"unknown allow tag '{tag}' (known: {', '.join(sorted(known))})",
                ))
    return out


# --------------------------------------------------------------------------
# determinism rules
# --------------------------------------------------------------------------

def emission_reachable(models: list[FileModel], cfg) -> set[tuple[str, str]]:
    """(file, qual) of every function in the forward call closure of the
    emission roots. Call edges are name-based (callee name -> every
    function defined with that name), an over-approximation."""
    by_name: dict[str, list] = {}
    for m in models:
        for fn in m.functions:
            by_name.setdefault(fn.name, []).append(fn)

    roots = []
    for m in models:
        in_emission_file = any(p in m.path for p in cfg.emission_paths)
        for fn in m.functions:
            if in_emission_file or fn.name in cfg.emission_roots:
                roots.append(fn)

    seen: set[tuple[str, str]] = set()
    work = list(roots)
    while work:
        fn = work.pop()
        key = (fn.file, fn.qual)
        if key in seen:
            continue
        seen.add(key)
        for callee in fn.calls:
            for target in by_name.get(callee, ()):
                if (target.file, target.qual) not in seen:
                    work.append(target)
    return seen


def rule_unordered_iteration(models: list[FileModel], cfg) -> list[Finding]:
    reach = emission_reachable(models, cfg)
    out = []
    for m in models:
        for fn in m.functions:
            if not fn.unordered_iterations:
                continue
            if (fn.file, fn.qual) not in reach:
                continue
            for line, expr in fn.unordered_iterations:
                if _allowed(m, line, "unordered-iteration"):
                    continue
                out.append(Finding(
                    m.path, line, "unordered-iteration",
                    f"iteration over unordered container '{expr}' in "
                    f"'{fn.qual}', which is reachable from metrics/wire/"
                    "trace/report emission; hash order is not deterministic "
                    "— iterate a sorted copy or an ordered container",
                ))
    return out


def rule_banned_entropy(models: list[FileModel], cfg) -> list[Finding]:
    out = []
    for m in models:
        if any(m.path.endswith(p) or p in m.path for p in cfg.entropy_allow_paths):
            continue
        for i, tok in enumerate(m.tokens):
            nxt = m.tokens[i + 1].text if i + 1 < len(m.tokens) else ""
            hit = tok.text in cfg.banned_entropy or (
                tok.text in cfg.banned_entropy_calls and nxt == "("
            )
            if not hit:
                continue
            if _allowed(m, tok.line, "banned-entropy"):
                continue
            out.append(Finding(
                m.path, tok.line, "banned-entropy",
                f"banned entropy/wall-clock source '{tok.text}' — all "
                "randomness must derive from the scenario seed via "
                "util/rng (util::Rng, util::derive_seed) or crypto::Drbg",
            ))
    return out


def rule_pointer_key(models: list[FileModel], cfg) -> list[Finding]:
    out = []
    for m in models:
        for line, key in m.pointer_key_decls:
            if _allowed(m, line, "pointer-key"):
                continue
            out.append(Finding(
                m.path, line, "pointer-key",
                f"associative container keyed by pointer type '{key}': "
                "iteration order is allocation-address order, which is "
                "nondeterministic across runs — key by a stable id",
            ))
    return out


# --------------------------------------------------------------------------
# crypto hygiene rules
# --------------------------------------------------------------------------

def _in_crypto_paths(path: str, cfg) -> bool:
    return any(p in path for p in cfg.crypto_paths)


def rule_memcmp_secret(models: list[FileModel], cfg) -> list[Finding]:
    secret_re = re.compile(cfg.secret_ident_pattern)
    out = []
    for m in models:
        if not _in_crypto_paths(m.path, cfg):
            continue
        for i, tok in enumerate(m.tokens):
            if tok.text == "memcmp":
                if _allowed(m, tok.line, "memcmp-secret"):
                    continue
                out.append(Finding(
                    m.path, tok.line, "memcmp-secret",
                    "raw memcmp in a crypto path: early-exit comparison "
                    "leaks a timing oracle if an operand is secret — use "
                    "util::ct_equal, or annotate "
                    "'// sos-lint: allow(memcmp-public) <why public>'",
                ))
            elif tok.text in {"==", "!="}:
                # Identifier operands adjacent to the comparison.
                near = [
                    t.text for t in m.tokens[max(0, i - 4):i + 5]
                    if re.match(r"[A-Za-z_]", t.text)
                ]
                hits = [n for n in near if secret_re.search(n)]
                if not hits:
                    continue
                if _allowed(m, tok.line, "memcmp-secret"):
                    continue
                out.append(Finding(
                    m.path, tok.line, "memcmp-secret",
                    f"'{tok.text}' comparison involving secret-named "
                    f"operand '{hits[0]}' in a crypto path — use "
                    "util::ct_equal, or annotate allow(memcmp-public)",
                ))
    return out


def rule_zeroize_secret(models: list[FileModel], cfg) -> list[Finding]:
    secret_member = re.compile(cfg.secret_member_pattern)
    buffer_type = re.compile(cfg.secret_buffer_types)
    # Destructor bodies may live in a different file (hpp decl / cpp def).
    dtors: dict[str, str] = {}
    for m in models:
        dtors.update(m.dtor_bodies)
    out = []
    for m in models:
        if not _in_crypto_paths(m.path, cfg):
            continue
        for cls in m.classes:
            lo, hi = cls.body_lines
            secret_lines = []
            for ln in range(lo, min(hi, len(m.code_lines)) + 1):
                src = m.code_lines[ln - 1]
                if buffer_type.search(src) and secret_member.search(src):
                    secret_lines.append(ln)
            if not secret_lines:
                continue
            body_text = "\n".join(m.code_lines[lo - 1:hi])
            wiped = "secure_wipe" in body_text or "secure_wipe" in dtors.get(cls.name, "")
            if wiped:
                continue
            if _allowed(m, cls.line, "zeroize-secret") or all(
                _allowed(m, ln, "zeroize-secret") for ln in secret_lines
            ):
                continue
            out.append(Finding(
                m.path, secret_lines[0], "zeroize-secret",
                f"'{cls.name}' holds key material (line {secret_lines[0]}) "
                "but never zeroizes it — call util::secure_wipe in the "
                "destructor, or annotate allow(zeroize-secret)",
            ))
    return out


# --------------------------------------------------------------------------
# concurrency-contract rules
# --------------------------------------------------------------------------

def rule_seam_completeness(models: list[FileModel], cfg) -> list[Finding]:
    """Every trailing-underscore member of a seam class must appear in the
    detach/attach closure: the detach()/attach() bodies plus, transitively,
    same-class methods they call. Facts come from the token layer
    (FileModel.token_functions), so verdicts are frontend-independent; the
    clang frontend can only add references on top, never remove them."""
    # (class, method) -> definitions, across all scanned files — the seam
    # bodies usually live in the .cpp while the members live in the .hpp.
    by_class_method: dict[tuple[str, str], list] = {}
    for m in models:
        for fn in m.token_functions:
            parts = fn.qual.split("::")
            if len(parts) >= 2:
                by_class_method.setdefault((parts[-2], parts[-1]), []).append(fn)

    out = []
    for m in models:
        for cls in m.classes:
            if cls.name not in cfg.seam_classes or not cls.members:
                continue
            work = []
            for entry in ("detach", "attach"):
                work.extend(by_class_method.get((cls.name, entry), []))
            if not work:
                # Seam bodies not in the scanned set (partial file list):
                # no reference facts means no sound verdict — stay silent
                # rather than flag every member.
                continue
            seen: set[tuple[str, str, int]] = set()
            referenced: set[str] = set()
            while work:
                fn = work.pop()
                key = (fn.file, fn.qual, fn.line)
                if key in seen:
                    continue
                seen.add(key)
                referenced |= fn.idents
                for callee in fn.calls:
                    work.extend(by_class_method.get((cls.name, callee), []))
            for name, line in cls.members:
                if name in referenced:
                    continue
                if _allowed(m, line, "seam-completeness"):
                    continue
                out.append(Finding(
                    m.path, line, "seam-completeness",
                    f"member '{name}' of seam class '{cls.name}' is never "
                    "referenced in the detach()/attach() closure — state it "
                    "holds silently stays behind at an episode-shard "
                    "boundary; wire it through the seam or annotate "
                    "'// sos-lint: allow(seam-exempt) <why seam-inert>'",
                ))
    return out


def rule_lock_scope(models: list[FileModel], cfg) -> list[Finding]:
    """No callback / emission / scheduler calls while a scoped lock is
    alive, in the files carrying thread-safety annotations. The span facts
    are token-level (FileModel.lock_scope_calls) and over-approximate:
    a manual unlock() does not end the span — annotate such sites."""
    banned = set(cfg.lock_scope_calls)
    prefixes = tuple(cfg.lock_scope_call_prefixes)
    out = []
    for m in models:
        if not any(p in m.path for p in cfg.lock_scope_paths):
            continue
        seen: set[tuple[int, str]] = set()
        for line, callee, decl_line in m.lock_scope_calls:
            if not (callee in banned or (prefixes and callee.startswith(prefixes))):
                continue
            if (line, callee) in seen:  # nested lock scopes overlap
                continue
            seen.add((line, callee))
            if _allowed(m, line, "lock-scope"):
                continue
            out.append(Finding(
                m.path, line, "lock-scope",
                f"'{callee}' called while the lock declared on line "
                f"{decl_line} is in scope — callbacks/emission/scheduler "
                "calls under a lock invite re-entrant deadlock; move the "
                "call after the critical section (drop the lock first) or "
                "annotate '// sos-lint: allow(lock-scope) <why safe>'",
            ))
    return out


RULE_FNS = {
    "unordered-iteration": rule_unordered_iteration,
    "banned-entropy": rule_banned_entropy,
    "pointer-key": rule_pointer_key,
    "memcmp-secret": rule_memcmp_secret,
    "zeroize-secret": rule_zeroize_secret,
    "seam-completeness": rule_seam_completeness,
    "lock-scope": rule_lock_scope,
}


def run_rules(models: list[FileModel], cfg) -> list[Finding]:
    findings: list[Finding] = []
    for m in models:
        findings.extend(check_annotations(m))
    for rule in ALL_RULES:
        if rule in cfg.disabled_rules:
            continue
        findings.extend(RULE_FNS[rule](models, cfg))
    return sorted(findings, key=lambda f: (f.file, f.line, f.rule))
