#!/usr/bin/env python3
"""sos-lint: determinism & constant-time static analysis for this repo.

The repo's headline guarantee — metrics, wire bytes, traces, and reports
bitwise identical across replay engines, job counts, and memo configs —
was only ever enforced dynamically (determinism pins under TSan). This
tool enforces the *static* half: no nondeterministic iteration or ambient
entropy on emission-reachable paths, and constant-time / zeroizing
discipline for secret material. Rule catalog: rules.py. Config:
lint_config.py + sos_lint.toml.

Usage:
  sos_lint.py --root <repo>                 # lint src/ (CMake `lint` target)
  sos_lint.py --root <repo> --selftest      # run tests/lint_fixtures
  sos_lint.py --root <repo> path1.cpp ...   # lint specific files
  sos_lint.py --frontend {auto,token,clang} # AST frontend selection

Exit codes: 0 clean, 1 findings (or fixture mismatch), 2 usage/internal.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import clang_frontend  # noqa: E402
from cxx_model import FileModel, build_model  # noqa: E402
from lint_config import LintConfig, load_config  # noqa: E402
from rules import ALL_RULES, run_rules  # noqa: E402


def _load_models(root: Path, paths: list[Path], frontend: str) -> list[FileModel]:
    use_clang = False
    if frontend == "clang":
        if not clang_frontend.available():
            print("sos-lint: error: --frontend clang requested but the "
                  "clang.cindex Python bindings are not importable.\n"
                  "  This container gates (not installs) the dependency; "
                  "on Debian/Ubuntu: apt install python3-clang libclang1.\n"
                  "  Falling back is NOT done for an explicit request — "
                  "use --frontend token or auto.", file=sys.stderr)
            raise SystemExit(2)
        use_clang = True
    elif frontend == "auto":
        use_clang = clang_frontend.available()

    models = []
    include_dirs = [str(root / "src")]
    for p in paths:
        rel = p.relative_to(root).as_posix() if p.is_absolute() else p.as_posix()
        text = p.read_text(encoding="utf-8", errors="replace")
        if use_clang:
            try:
                models.append(clang_frontend.build_model_clang(rel, text, include_dirs))
                continue
            except Exception as e:  # degrade, never crash the gate
                print(f"sos-lint: warning: clang frontend failed on {rel} "
                      f"({e}); using token frontend", file=sys.stderr)
        models.append(build_model(rel, text))
    return models


def _scan_paths(root: Path, cfg: LintConfig) -> list[Path]:
    out: list[Path] = []
    for sp in cfg.scan_paths:
        base = root / sp
        if not base.exists():
            continue
        for ext in cfg.extensions:
            out.extend(sorted(base.rglob(f"*{ext}")))
    return out


def lint(root: Path, cfg: LintConfig, files: list[Path], frontend: str) -> int:
    models = _load_models(root, files, frontend)
    findings = run_rules(models, cfg)
    for f in findings:
        print(f.render())
    if findings:
        print(f"sos-lint: {len(findings)} finding(s) across "
              f"{len({f.file for f in findings})} file(s)")
        return 1
    print(f"sos-lint: clean ({len(models)} files, "
          f"{sum(len(m.functions) for m in models)} functions)")
    return 0


def selftest(root: Path, frontend: str) -> int:
    """Run the rule fixtures: tests/lint_fixtures/<rule>_trigger.cpp must
    produce >=1 finding of exactly <rule>; <rule>_clean.cpp must produce
    none at all. A rule that stops firing therefore fails ctest -L lint."""
    fixture_dir = root / "tests" / "lint_fixtures"
    if not fixture_dir.is_dir():
        print(f"sos-lint: selftest: no fixture dir at {fixture_dir}",
              file=sys.stderr)
        return 2
    cfg = LintConfig()
    # Fixtures are self-contained single files: they play the role of both
    # emission code and crypto code so every rule can fire inside one file.
    cfg.emission_paths = ["tests/lint_fixtures"]
    cfg.crypto_paths = ["tests/lint_fixtures"]
    cfg.entropy_allow_paths = []

    failures = []
    cases = sorted(fixture_dir.glob("*.cpp"))
    if not cases:
        print("sos-lint: selftest: fixture dir is empty", file=sys.stderr)
        return 2
    covered: set[str] = set()
    for path in cases:
        stem = path.stem
        if stem.endswith("_trigger"):
            rule, expect_hit = stem[:-len("_trigger")].replace("_", "-"), True
        elif stem.endswith("_clean"):
            rule, expect_hit = stem[:-len("_clean")].replace("_", "-"), False
        else:
            failures.append(f"{path.name}: fixture names must end in "
                            "_trigger.cpp or _clean.cpp")
            continue
        if rule not in ALL_RULES:
            failures.append(f"{path.name}: unknown rule '{rule}'")
            continue
        covered.add(rule)
        models = _load_models(root, [path], frontend)
        findings = run_rules(models, cfg)
        if expect_hit:
            mine = [f for f in findings if f.rule == rule]
            stray = [f for f in findings if f.rule not in (rule, )]
            if not mine:
                failures.append(f"{path.name}: expected a '{rule}' finding, "
                                "got none — the rule has stopped firing")
            if stray:
                failures.append(
                    f"{path.name}: stray findings {[f.render() for f in stray]}"
                    " — trigger fixtures must trip exactly their own rule")
            # FileCheck-style line pins: every `// finding:`-marked line
            # must fire, so a rule that loses one detection *form* (e.g.
            # memcmp but not operator==) fails even while its sibling form
            # still fires.
            expected_lines = {
                n for n, line in enumerate(models[0].raw_lines, start=1)
                if "// finding" in line
            }
            got_lines = {f.line for f in mine}
            for n in sorted(expected_lines - got_lines):
                failures.append(f"{path.name}:{n}: marked '// finding' but "
                                f"'{rule}' did not fire there")
            for n in sorted(got_lines - expected_lines):
                failures.append(f"{path.name}:{n}: unexpected '{rule}' "
                                "finding on an unmarked line")
        else:
            if findings:
                failures.append(
                    f"{path.name}: expected clean, got "
                    f"{[f.render() for f in findings]}")
    missing = set(ALL_RULES) - covered
    if missing:
        failures.append("rules without fixtures: " + ", ".join(sorted(missing)))

    if failures:
        print("sos-lint selftest FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"sos-lint selftest passed: {len(cases)} fixtures, "
          f"{len(covered)} rules covered")
    return 0


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", type=Path, default=Path.cwd(),
                    help="repository root (default: cwd)")
    ap.add_argument("--config", type=Path, default=None,
                    help="TOML config overriding sos_lint.toml")
    ap.add_argument("--frontend", choices=["auto", "token", "clang"],
                    default="auto",
                    help="C++ frontend: libclang AST when available (auto), "
                         "token scanner (token), or require libclang (clang)")
    ap.add_argument("--selftest", action="store_true",
                    help="run the rule fixtures in tests/lint_fixtures")
    ap.add_argument("files", nargs="*", type=Path,
                    help="specific files to lint (default: configured scan paths)")
    args = ap.parse_args(argv)

    root = args.root.resolve()
    if args.selftest:
        # Pin fixture behaviour to the frontend every machine has.
        frontend = args.frontend if args.frontend != "auto" else "token"
        return selftest(root, frontend)

    cfg = load_config(root, args.config)
    files = [p.resolve() for p in args.files] if args.files else _scan_paths(root, cfg)
    if not files:
        print("sos-lint: nothing to scan", file=sys.stderr)
        return 2
    return lint(root, cfg, files, args.frontend)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
