#!/usr/bin/env python3
"""sos-lint: determinism & constant-time static analysis for this repo.

The repo's headline guarantee — metrics, wire bytes, traces, and reports
bitwise identical across replay engines, job counts, and memo configs —
was only ever enforced dynamically (determinism pins under TSan). This
tool enforces the *static* half: no nondeterministic iteration or ambient
entropy on emission-reachable paths, and constant-time / zeroizing
discipline for secret material. Rule catalog: rules.py. Config:
lint_config.py + sos_lint.toml.

Usage:
  sos_lint.py --root <repo>                 # lint src/ (CMake `lint` target)
  sos_lint.py --root <repo> --selftest      # run tests/lint_fixtures
  sos_lint.py --root <repo> path1.cpp ...   # lint specific files
  sos_lint.py --frontend {auto,token,clang} # AST frontend selection
  sos_lint.py --cache-file <f>              # incremental: skip unchanged trees
  sos_lint.py --format sarif --output <f>   # SARIF 2.1.0 for CI upload

Exit codes: 0 clean, 1 findings (or fixture mismatch), 2 usage/internal.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import clang_frontend  # noqa: E402
from cxx_model import FileModel, build_model  # noqa: E402
from lint_config import LintConfig, load_config  # noqa: E402
from rules import ALL_RULES, Finding, run_rules  # noqa: E402


def _load_models(root: Path, paths: list[Path],
                 frontend: str) -> tuple[list[FileModel], dict]:
    """Build models; the stats dict reports which frontend actually ran
    ({'frontend': 'clang'|'token', 'ast': files parsed via AST, 'total': n})
    so CI can assert the AST frontend was live, not silently degraded."""
    use_clang = False
    if frontend == "clang":
        if not clang_frontend.available():
            print("sos-lint: error: --frontend clang requested but the "
                  "clang.cindex Python bindings are not importable.\n"
                  "  This container gates (not installs) the dependency; "
                  "on Debian/Ubuntu: apt install python3-clang libclang1.\n"
                  "  Falling back is NOT done for an explicit request — "
                  "use --frontend token or auto.", file=sys.stderr)
            raise SystemExit(2)
        use_clang = True
    elif frontend == "auto":
        use_clang = clang_frontend.available()

    models = []
    ast_ok = 0
    include_dirs = [str(root / "src")]
    for p in paths:
        rel = p.relative_to(root).as_posix() if p.is_absolute() else p.as_posix()
        text = p.read_text(encoding="utf-8", errors="replace")
        if use_clang:
            try:
                models.append(clang_frontend.build_model_clang(rel, text, include_dirs))
                ast_ok += 1
                continue
            except Exception as e:  # degrade, never crash the gate
                print(f"sos-lint: warning: clang frontend failed on {rel} "
                      f"({e}); using token frontend", file=sys.stderr)
        models.append(build_model(rel, text))
    stats = {
        "frontend": "clang" if use_clang else "token",
        "ast": ast_ok,
        "total": len(models),
    }
    return models, stats


# --------------------------------------------------------------------------
# incremental cache
# --------------------------------------------------------------------------

def _tool_version_hash() -> str:
    """Hash of the lint tool's own sources: any rule/model/config-schema
    change invalidates every cached verdict."""
    h = hashlib.sha256()
    tool_dir = Path(__file__).resolve().parent
    for f in sorted(tool_dir.glob("*.py")) + sorted(tool_dir.glob("*.toml")):
        h.update(f.name.encode())
        h.update(f.read_bytes())
    return h.hexdigest()


def _config_hash(cfg: LintConfig) -> str:
    from dataclasses import asdict
    return hashlib.sha256(
        json.dumps(asdict(cfg), sort_keys=True).encode()
    ).hexdigest()


def _file_hashes(root: Path, files: list[Path]) -> dict[str, str]:
    out = {}
    for p in files:
        rel = p.relative_to(root).as_posix() if p.is_absolute() else p.as_posix()
        out[rel] = hashlib.sha256(p.read_bytes()).hexdigest()
    return out


def _cache_lookup(cache_file: Path, key: dict) -> list[Finding] | None:
    """Stored findings iff the WHOLE tree matches. Findings are stored per
    file, but validity is all-or-nothing: several rules are cross-file
    (emission reachability, seam hpp/cpp closure, dtor lookup), so reusing
    one file's verdicts while another changed would be unsound."""
    try:
        data = json.loads(cache_file.read_text())
    except (OSError, ValueError):
        return None
    if any(data.get(k) != key[k] for k in ("tool", "config", "frontend", "files")):
        return None
    findings = []
    for rel, entries in data.get("findings", {}).items():
        for line, rule, message in entries:
            findings.append(Finding(rel, line, rule, message))
    return sorted(findings, key=lambda f: (f.file, f.line, f.rule))


def _cache_store(cache_file: Path, key: dict, findings: list[Finding]) -> None:
    per_file: dict[str, list] = {}
    for f in findings:
        per_file.setdefault(f.file, []).append([f.line, f.rule, f.message])
    data = dict(key)
    data["findings"] = per_file
    try:
        cache_file.parent.mkdir(parents=True, exist_ok=True)
        cache_file.write_text(json.dumps(data, indent=1, sort_keys=True))
    except OSError as e:  # cache is an accelerator, never a gate
        print(f"sos-lint: warning: could not write cache {cache_file}: {e}",
              file=sys.stderr)


# --------------------------------------------------------------------------
# SARIF 2.1.0 output
# --------------------------------------------------------------------------

_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                 "master/Schemata/sarif-schema-2.1.0.json")

_RULE_HELP = {
    "unordered-iteration": "Hash-order iteration on an emission-reachable path",
    "banned-entropy": "Ambient entropy/wall-clock source outside util/rng",
    "pointer-key": "Associative container keyed by pointer (address order)",
    "memcmp-secret": "Non-constant-time comparison of secret material",
    "zeroize-secret": "Key material not zeroized in the destructor",
    "seam-completeness": "Seam-class member missing from detach()/attach() closure",
    "lock-scope": "Callback/emission/scheduler call under a held lock",
    "lint-annotation": "Malformed or unjustified sos-lint allow() annotation",
}


def to_sarif(findings: list[Finding]) -> dict:
    results = [
        {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.file, "uriBaseId": "SRCROOT"},
                    "region": {"startLine": f.line},
                },
            }],
        }
        for f in findings
    ]
    rules = [
        {"id": rid, "shortDescription": {"text": desc}}
        for rid, desc in sorted(_RULE_HELP.items())
    ]
    return {
        "version": "2.1.0",
        "$schema": _SARIF_SCHEMA,
        "runs": [{
            "tool": {"driver": {
                "name": "sos-lint",
                "informationUri": "tools/sos_lint/sos_lint.py",
                "rules": rules,
            }},
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
        }],
    }


def validate_sarif(doc: dict) -> list[str]:
    """Structural validation against the SARIF 2.1.0 requirements this tool
    relies on (full JSON-Schema validation needs a package this container
    does not ship; these are the fields the spec marks required plus the
    cross-references GitHub code scanning rejects uploads over)."""
    errs = []
    if doc.get("version") != "2.1.0":
        errs.append("version must be the literal '2.1.0'")
    if not str(doc.get("$schema", "")).endswith("sarif-schema-2.1.0.json"):
        errs.append("$schema must reference sarif-schema-2.1.0.json")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        errs.append("runs must be a non-empty array")
        return errs
    for ri, run in enumerate(runs):
        driver = run.get("tool", {}).get("driver", {})
        if not driver.get("name"):
            errs.append(f"runs[{ri}].tool.driver.name is required")
        declared = {r.get("id") for r in driver.get("rules", [])}
        for si, res in enumerate(run.get("results", [])):
            where = f"runs[{ri}].results[{si}]"
            if not res.get("ruleId"):
                errs.append(f"{where}.ruleId is required")
            elif res["ruleId"] not in declared:
                errs.append(f"{where}.ruleId '{res['ruleId']}' not declared "
                            "in tool.driver.rules")
            if not res.get("message", {}).get("text"):
                errs.append(f"{where}.message.text is required")
            for loc in res.get("locations", []):
                region = loc.get("physicalLocation", {}).get("region", {})
                if region.get("startLine", 1) < 1:
                    errs.append(f"{where}: region.startLine must be >= 1")
    return errs


def _scan_paths(root: Path, cfg: LintConfig) -> list[Path]:
    out: list[Path] = []
    for sp in cfg.scan_paths:
        base = root / sp
        if not base.exists():
            continue
        for ext in cfg.extensions:
            out.extend(sorted(base.rglob(f"*{ext}")))
    return out


def _emit(findings: list[Finding], fmt: str, output: Path | None,
          summary: str) -> int:
    if fmt == "sarif":
        doc = to_sarif(findings)
        errs = validate_sarif(doc)
        if errs:  # a malformed document is a tool bug, not a lint verdict
            print("sos-lint: internal error: generated SARIF is invalid:",
                  file=sys.stderr)
            for e in errs:
                print(f"  {e}", file=sys.stderr)
            return 2
        text = json.dumps(doc, indent=1)
        if output:
            output.write_text(text + "\n")
            print(f"sos-lint: wrote SARIF ({len(findings)} result(s)) "
                  f"to {output}")
        else:
            print(text)
    else:
        for f in findings:
            print(f.render())
    print(summary)
    return 1 if findings else 0


def lint(root: Path, cfg: LintConfig, files: list[Path], frontend: str,
         cache_file: Path | None = None, fmt: str = "text",
         output: Path | None = None) -> int:
    cache_key = None
    if cache_file is not None:
        # Validity is whole-tree: tool sources + config + frontend + every
        # scanned file's content hash. Per-file reuse would be unsound for
        # the cross-file rules; a full-tree hit costs only the hashing pass.
        cache_key = {
            "tool": _tool_version_hash(),
            "config": _config_hash(cfg),
            "frontend": frontend,
            "files": _file_hashes(root, files),
        }
        cached = _cache_lookup(cache_file, cache_key)
        if cached is not None:
            summary = (f"sos-lint: cache hit ({len(cache_key['files'])} files "
                       f"unchanged); {len(cached)} finding(s)")
            return _emit(cached, fmt, output, summary)

    models, stats = _load_models(root, files, frontend)
    findings = run_rules(models, cfg)
    # CI asserts on this line: a lint job that requested the AST frontend
    # must see frontend=clang with every file parsed, not a silent fallback.
    print(f"sos-lint: frontend={stats['frontend']} "
          f"ast={stats['ast']}/{stats['total']}")
    if cache_key is not None:
        _cache_store(cache_file, cache_key, findings)
    if findings:
        summary = (f"sos-lint: {len(findings)} finding(s) across "
                   f"{len({f.file for f in findings})} file(s)")
    else:
        summary = (f"sos-lint: clean ({len(models)} files, "
                   f"{sum(len(m.functions) for m in models)} functions)")
    return _emit(findings, fmt, output, summary)


def selftest(root: Path, frontend: str) -> int:
    """Run the rule fixtures: tests/lint_fixtures/<rule>_trigger.cpp must
    produce >=1 finding of exactly <rule>; <rule>_clean.cpp must produce
    none at all. A rule that stops firing therefore fails ctest -L lint."""
    fixture_dir = root / "tests" / "lint_fixtures"
    if not fixture_dir.is_dir():
        print(f"sos-lint: selftest: no fixture dir at {fixture_dir}",
              file=sys.stderr)
        return 2
    cfg = LintConfig()
    # Fixtures are self-contained single files: they play the role of both
    # emission code and crypto code so every rule can fire inside one file.
    cfg.emission_paths = ["tests/lint_fixtures"]
    cfg.crypto_paths = ["tests/lint_fixtures"]
    cfg.entropy_allow_paths = []
    cfg.seam_classes = ["SeamFixture"]
    cfg.lock_scope_paths = ["tests/lint_fixtures"]

    failures = []
    cases = sorted(fixture_dir.glob("*.cpp"))
    if not cases:
        print("sos-lint: selftest: fixture dir is empty", file=sys.stderr)
        return 2
    covered: set[str] = set()
    for path in cases:
        stem = path.stem
        if stem.endswith("_trigger"):
            rule, expect_hit = stem[:-len("_trigger")].replace("_", "-"), True
        elif stem.endswith("_clean"):
            rule, expect_hit = stem[:-len("_clean")].replace("_", "-"), False
        else:
            failures.append(f"{path.name}: fixture names must end in "
                            "_trigger.cpp or _clean.cpp")
            continue
        if rule not in ALL_RULES:
            failures.append(f"{path.name}: unknown rule '{rule}'")
            continue
        covered.add(rule)
        models, _stats = _load_models(root, [path], frontend)
        findings = run_rules(models, cfg)
        if expect_hit:
            mine = [f for f in findings if f.rule == rule]
            stray = [f for f in findings if f.rule not in (rule, )]
            if not mine:
                failures.append(f"{path.name}: expected a '{rule}' finding, "
                                "got none — the rule has stopped firing")
            if stray:
                failures.append(
                    f"{path.name}: stray findings {[f.render() for f in stray]}"
                    " — trigger fixtures must trip exactly their own rule")
            # FileCheck-style line pins: every `// finding:`-marked line
            # must fire, so a rule that loses one detection *form* (e.g.
            # memcmp but not operator==) fails even while its sibling form
            # still fires.
            expected_lines = {
                n for n, line in enumerate(models[0].raw_lines, start=1)
                if "// finding" in line
            }
            got_lines = {f.line for f in mine}
            for n in sorted(expected_lines - got_lines):
                failures.append(f"{path.name}:{n}: marked '// finding' but "
                                f"'{rule}' did not fire there")
            for n in sorted(got_lines - expected_lines):
                failures.append(f"{path.name}:{n}: unexpected '{rule}' "
                                "finding on an unmarked line")
        else:
            if findings:
                failures.append(
                    f"{path.name}: expected clean, got "
                    f"{[f.render() for f in findings]}")
    missing = set(ALL_RULES) - covered
    if missing:
        failures.append("rules without fixtures: " + ", ".join(sorted(missing)))

    if failures:
        print("sos-lint selftest FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"sos-lint selftest passed: {len(cases)} fixtures, "
          f"{len(covered)} rules covered")
    return 0


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", type=Path, default=Path.cwd(),
                    help="repository root (default: cwd)")
    ap.add_argument("--config", type=Path, default=None,
                    help="TOML config overriding sos_lint.toml")
    ap.add_argument("--frontend", choices=["auto", "token", "clang"],
                    default="auto",
                    help="C++ frontend: libclang AST when available (auto), "
                         "token scanner (token), or require libclang (clang)")
    ap.add_argument("--selftest", action="store_true",
                    help="run the rule fixtures in tests/lint_fixtures")
    ap.add_argument("--cache-file", type=Path, default=None,
                    help="incremental cache: reuse findings when the whole "
                         "tree (plus tool + config) is unchanged")
    ap.add_argument("--no-cache", action="store_true",
                    help="ignore --cache-file (escape hatch)")
    ap.add_argument("--format", choices=["text", "sarif"], default="text",
                    help="finding output format (sarif = SARIF 2.1.0)")
    ap.add_argument("--output", type=Path, default=None,
                    help="write --format output to this file (sarif only)")
    ap.add_argument("files", nargs="*", type=Path,
                    help="specific files to lint (default: configured scan paths)")
    args = ap.parse_args(argv)

    root = args.root.resolve()
    if args.selftest:
        # Pin fixture behaviour to the frontend every machine has.
        frontend = args.frontend if args.frontend != "auto" else "token"
        return selftest(root, frontend)

    cfg = load_config(root, args.config)
    files = [p.resolve() for p in args.files] if args.files else _scan_paths(root, cfg)
    if not files:
        print("sos-lint: nothing to scan", file=sys.stderr)
        return 2
    cache_file = None if args.no_cache else args.cache_file
    return lint(root, cfg, files, args.frontend, cache_file=cache_file,
                fmt=args.format, output=args.output)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
