"""Token-level C++ frontend for sos-lint.

This is the reference frontend: a comment/string-aware tokenizer plus a
lightweight semantic model (function definitions, name-based call edges,
unordered-container declarations and iteration sites, allow-annotations).
It deliberately over-approximates — a name-based call graph has edges a
real compiler would prune — because every rule it feeds accepts an inline
``// sos-lint: allow(<rule>) <justification>`` annotation for the false
positives, while a missed true positive would silently void the repo's
determinism guarantee.

An AST-exact frontend backed by libclang lives in ``clang_frontend.py``
and is used automatically when the ``clang.cindex`` bindings are
importable; this module is the fallback (and the one exercised by the
fixture suite, so rule behaviour is pinned regardless of which frontend a
given machine has).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

# C++ keywords that can precede a '(' without being a call or a function
# definition name.
_NOT_CALL = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "alignas", "decltype", "noexcept", "static_assert", "throw", "new",
    "delete", "case", "do", "else", "operator", "typeid", "requires",
    "co_await", "co_return", "co_yield", "assert",
}

_MULTI_PUNCT = [
    "<=>", "->*", "...", "::", "->", "==", "!=", "<=", ">=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=", "++", "--",
]

_TOKEN_RE = re.compile(
    "|".join(re.escape(p) for p in _MULTI_PUNCT)
    + r"|[A-Za-z_][A-Za-z0-9_]*|0[xX][0-9a-fA-F']+|[0-9][0-9a-fA-F'.eEpPxXuUlLfF]*|\S"
)

_UNORDERED_TYPES = {
    "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset",
}

_ORDERED_ASSOC_TYPES = {"map", "set", "multimap", "multiset"}

_ANNOTATION_RE = re.compile(
    r"sos-lint:\s*allow\(([A-Za-z0-9_,\- ]+)\)\s*(.*)$"
)


@dataclass
class Token:
    text: str
    line: int


@dataclass
class Annotation:
    line: int          # line the comment sits on
    standalone: bool   # comment is the only thing on its line
    tags: tuple[str, ...]
    justification: str


@dataclass
class Function:
    name: str                 # last identifier component
    qual: str                 # Namespace::Class::name when derivable
    file: str
    line: int
    end_line: int
    calls: set[str] = field(default_factory=set)
    # (line, container expression text) for each unordered iteration found.
    unordered_iterations: list[tuple[int, str]] = field(default_factory=list)
    # Every identifier token in the body (seam-completeness reference facts).
    idents: set[str] = field(default_factory=set)


@dataclass
class ClassDef:
    name: str
    file: str
    line: int
    end_line: int
    body_lines: tuple[int, int]  # inclusive line span of the class body
    # Data members by this repo's trailing-underscore convention: (name,
    # declaration line) for identifiers like `foo_` declared directly in the
    # class body (depth 1, outside parens, followed by ; = { or [).
    members: list[tuple[str, int]] = field(default_factory=list)


@dataclass
class FileModel:
    path: str                  # repo-relative, forward slashes
    raw_lines: list[str]       # original source lines (1-indexed via [n-1])
    code_lines: list[str]      # comments/strings/preprocessor blanked
    tokens: list[Token]
    annotations: list[Annotation]
    functions: list[Function]
    classes: list[ClassDef]
    # Names (variables, members, aliases) declared with an unordered type,
    # mapped to their declaration line.
    unordered_names: dict[str, int]
    # Declarations of ordered associative containers with pointer keys.
    pointer_key_decls: list[tuple[int, str]]
    # Destructor definitions seen in this file: class name -> body text.
    dtor_bodies: dict[str, str]
    # Token-layer function facts, preserved verbatim even when the clang
    # frontend replaces `functions` with AST-derived ones: the seam rule's
    # reference sets come from here so its verdicts cannot shift with the
    # frontend (PARSE_INCOMPLETE ASTs can drop reference expressions).
    token_functions: list[Function] = field(default_factory=list)
    # (call line, callee name, lock declaration line) for every call made
    # while a lock_guard/unique_lock/scoped_lock/MutexLock declared in the
    # same block is in scope. Over-approximates (a manual unlock() does not
    # end the span) — the lock-scope rule filters by risky callee names and
    # accepts allow(lock-scope) for the rest.
    lock_scope_calls: list[tuple[int, str, int]] = field(default_factory=list)

    def allow_tags(self, line: int) -> set[str]:
        """Tags allowed on `line`: a same-line comment, or a standalone
        annotation comment whose next code line (skipping blank and
        comment-only lines) is `line`."""
        tags: set[str] = set()
        for a in self.annotations:
            if a.line == line:
                tags.update(a.tags)
            elif a.standalone and a.line < line:
                # Does any code intervene between the annotation and `line`?
                between = range(a.line, line - 1)  # code_lines is 0-indexed
                if all(
                    i >= len(self.code_lines) or not self.code_lines[i].strip()
                    for i in between
                ):
                    tags.update(a.tags)
        return tags


def scrub(text: str) -> tuple[str, list[tuple[int, str, bool]]]:
    """Blank out comments, string/char literals, and preprocessor
    directives while preserving offsets and line structure.

    Returns (code, comments) where comments is [(line, text, standalone)].
    """
    out = list(text)
    comments: list[tuple[int, str, bool]] = []
    i, n = 0, len(text)
    line = 1
    line_has_code = False

    def blank(a: int, b: int) -> None:
        for k in range(a, b):
            if out[k] not in "\n":
                out[k] = " "

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            line_has_code = False
            i += 1
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            comments.append((line, text[i:j], not line_has_code))
            blank(i, j)
            i = j
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            comments.append((line, text[i:j], not line_has_code))
            line += text.count("\n", i, j)
            blank(i, j)
            i = j
            continue
        if c == "#" and not line_has_code:
            # Preprocessor directive (with backslash continuations).
            j = i
            while j < n:
                e = text.find("\n", j)
                e = n if e == -1 else e
                if e > j and text[e - 1] == "\\":
                    j = e + 1
                else:
                    j = e
                    break
            line += text.count("\n", i, j)
            blank(i, j)
            i = j
            continue
        if c == "R" and text.startswith('R"', i):
            m = re.match(r'R"([^()\\ ]*)\(', text[i:])
            if m:
                close = ")" + m.group(1) + '"'
                j = text.find(close, i + m.end())
                j = n if j == -1 else j + len(close)
                line += text.count("\n", i, j)
                blank(i, j)
                line_has_code = True
                i = j
                continue
        if c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            # Keep the quotes so expressions keep their shape.
            blank(i + 1, j - 1)
            line_has_code = True
            i = j
            continue
        if not c.isspace():
            line_has_code = True
        i += 1
    return "".join(out), comments


def tokenize(code: str) -> list[Token]:
    tokens: list[Token] = []
    line = 1
    pos = 0
    for m in _TOKEN_RE.finditer(code):
        line += code.count("\n", pos, m.start())
        pos = m.start()
        tokens.append(Token(m.group(0), line))
    return tokens


def parse_annotations(comments: list[tuple[int, str, bool]]) -> list[Annotation]:
    anns = []
    for line, text, standalone in comments:
        m = _ANNOTATION_RE.search(text)
        if m:
            tags = tuple(t.strip() for t in m.group(1).split(",") if t.strip())
            just = m.group(2).strip().rstrip("*/").strip()
            anns.append(Annotation(line, standalone, tags, just))
    return anns


def _match_forward(tokens: list[Token], i: int, open_t: str, close_t: str) -> int:
    """Index just past the token matching tokens[i] == open_t."""
    depth = 0
    while i < len(tokens):
        if tokens[i].text == open_t:
            depth += 1
        elif tokens[i].text == close_t:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return i


def _collect_unordered_decls(tokens: list[Token]) -> tuple[dict[str, int], list[tuple[int, str]]]:
    """Find names declared with unordered types (directly or through one
    level of using-alias) and ordered associative containers keyed by a
    pointer type."""
    unordered: dict[str, int] = {}
    aliases: set[str] = set()
    pointer_keys: list[tuple[int, str]] = []
    i = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.text in _UNORDERED_TYPES or t.text in _ORDERED_ASSOC_TYPES:
            is_unordered = t.text in _UNORDERED_TYPES
            # Require a following template argument list.
            j = i + 1
            if j < n and tokens[j].text == "<":
                end = _match_forward(tokens, j, "<", ">")
                # Pointer-keyed associative container: first template arg
                # (depth-1 tokens up to the first depth-1 comma) ends in '*'.
                depth = 0
                key_toks: list[str] = []
                for k in range(j, end):
                    txt = tokens[k].text
                    if txt == "<":
                        depth += 1
                        if depth == 1:
                            continue
                    elif txt == ">":
                        depth -= 1
                    if depth == 1 and txt == ",":
                        break
                    if depth >= 1:
                        key_toks.append(txt)
                if key_toks and key_toks[-1] == "*":
                    pointer_keys.append((t.line, " ".join(key_toks)))
                # Declared name: next identifier after the closing '>'.
                k = end
                while k < n and tokens[k].text in {"&", "*", "const"}:
                    k += 1
                if is_unordered and k < n and re.match(r"[A-Za-z_]", tokens[k].text):
                    name = tokens[k].text
                    # `using Alias = std::unordered_map<...>` names a type.
                    if i >= 3 and tokens[i - 3].text == "using" and tokens[i - 1].text == "=":
                        pass  # alias handled below via the 'using' scan
                    elif k + 1 < n and tokens[k + 1].text == "(":
                        pass  # function returning the container
                    else:
                        unordered.setdefault(name, tokens[k].line)
                i = end
                continue
        if t.text == "using" and i + 2 < n and tokens[i + 2].text == "=":
            alias = tokens[i + 1].text
            # Does the aliased type mention an unordered container?
            k = i + 3
            while k < n and tokens[k].text != ";":
                if tokens[k].text in _UNORDERED_TYPES:
                    aliases.add(alias)
                    unordered.setdefault(alias, tokens[i + 1].line)
                    break
                k += 1
        i += 1
    # One pass for declarations through aliases: `Alias name;`
    for i in range(len(tokens) - 1):
        if tokens[i].text in aliases and re.match(r"[A-Za-z_]", tokens[i + 1].text):
            nxt = tokens[i + 1].text
            if nxt not in {"const", "operator"} and (
                i + 2 >= n or tokens[i + 2].text != "("
            ):
                unordered.setdefault(nxt, tokens[i + 1].line)
    return unordered, pointer_keys


def _scan_body(tokens: list[Token], start: int, end: int,
               unordered_names: dict[str, int], fn: Function) -> None:
    """Collect call names and unordered-iteration sites in a body span."""
    i = start
    while i < end:
        t = tokens[i]
        nxt = tokens[i + 1].text if i + 1 < end else ""
        if re.match(r"[A-Za-z_]", t.text):
            fn.idents.add(t.text)
        if re.match(r"[A-Za-z_]", t.text) and nxt == "(" and t.text not in _NOT_CALL:
            fn.calls.add(t.text)
        # Range-for over an unordered container.
        if t.text == "for" and nxt == "(":
            close = _match_forward(tokens, i + 1, "(", ")")
            depth = 0
            colon = -1
            for k in range(i + 1, close):
                txt = tokens[k].text
                if txt in "([{":
                    depth += 1
                elif txt in ")]}":
                    depth -= 1
                elif txt == ":" and depth == 1:
                    colon = k
                    break
            if colon != -1:
                expr = [tokens[k].text for k in range(colon + 1, close - 1)]
                if any(e in unordered_names for e in expr):
                    fn.unordered_iterations.append((t.line, " ".join(expr)))
        # Explicit iterator walk: container.begin() / cbegin() / rbegin().
        if (
            t.text in unordered_names
            and nxt == "."
            and i + 2 < end
            and tokens[i + 2].text in {"begin", "cbegin", "rbegin", "crbegin"}
        ):
            fn.unordered_iterations.append((t.line, t.text + "." + tokens[i + 2].text + "()"))
        i += 1


def _class_members(tokens: list[Token], open_idx: int, close_idx: int) -> list[tuple[str, int]]:
    """Trailing-underscore data members declared directly in a class body:
    identifiers like `foo_` at brace depth 1 (relative to the class body),
    outside any parentheses (so parameter default arguments don't match),
    followed by ';', '=', '{' or '['."""
    members: dict[str, int] = {}
    depth = 0
    paren = 0
    for k in range(open_idx, close_idx):
        txt = tokens[k].text
        if txt == "{":
            depth += 1
        elif txt == "}":
            depth -= 1
        elif txt == "(":
            paren += 1
        elif txt == ")":
            paren -= 1
        elif (
            depth == 1 and paren == 0
            and len(txt) > 1 and txt.endswith("_")
            and re.match(r"[A-Za-z_]", txt)
            and (k == 0 or tokens[k - 1].text != "using")
        ):
            nxt = tokens[k + 1].text if k + 1 < close_idx else ""
            if nxt in {";", "=", "{", "["}:
                members.setdefault(txt, tokens[k].line)
    return sorted(members.items(), key=lambda kv: kv[1])


_LOCK_TYPES = {"lock_guard", "unique_lock", "scoped_lock", "shared_lock", "MutexLock"}


def _collect_lock_scope_calls(tokens: list[Token]) -> list[tuple[int, str, int]]:
    """(call line, callee, lock declaration line) for every call inside the
    block scope of a named lock object. Config-independent over-approximation;
    the lock-scope rule filters callee names against the risky sets."""
    calls: list[tuple[int, str, int]] = []
    n = len(tokens)
    for i in range(n):
        if tokens[i].text not in _LOCK_TYPES:
            continue
        j = i + 1
        if j < n and tokens[j].text == "<":
            j = _match_forward(tokens, j, "<", ">")
        # Declaration shape: `LockType[<...>] name(...)` or `... name{...}`.
        if not (
            j + 1 < n
            and re.match(r"[A-Za-z_]", tokens[j].text)
            and tokens[j + 1].text in {"(", "{"}
        ):
            continue
        decl_line = tokens[i].line
        depth = 0
        k = j + 1
        while k < n:
            txt = tokens[k].text
            if txt == "{":
                depth += 1
            elif txt == "}":
                depth -= 1
                if depth < 0:
                    break  # enclosing block closed: the lock is destroyed
            nxt = tokens[k + 1].text if k + 1 < n else ""
            if re.match(r"[A-Za-z_]", txt) and nxt == "(" and txt not in _NOT_CALL:
                calls.append((tokens[k].line, txt, decl_line))
            k += 1
    return calls


def _extract_functions_and_classes(
    path: str, tokens: list[Token], unordered_names: dict[str, int]
) -> tuple[list[Function], list[ClassDef], dict[str, str]]:
    functions: list[Function] = []
    classes: list[ClassDef] = []
    dtor_bodies: dict[str, str] = {}
    # (kind, name, brace_depth_at_open) for namespace/class scopes.
    scope: list[tuple[str, str, int]] = []
    depth = 0
    i = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.text == "{":
            depth += 1
            i += 1
            continue
        if t.text == "}":
            depth -= 1
            while scope and scope[-1][2] > depth:
                scope.pop()
            i += 1
            continue
        if t.text in {"namespace", "class", "struct"}:
            # Look ahead for `name ... {` (skip fwd decls / vars).
            j = i + 1
            name = ""
            if j < n and re.match(r"[A-Za-z_]", tokens[j].text):
                name = tokens[j].text
                j += 1
            # Skip qualifiers / base-clause up to '{', ';' or '('.
            guard = 0
            while j < n and tokens[j].text not in {"{", ";", "("} and guard < 64:
                j += 1
                guard += 1
            if j < n and tokens[j].text == "{" and t.text != "namespace":
                body_end = _match_forward(tokens, j, "{", "}")
                end_line = tokens[body_end - 1].line if body_end - 1 < n else t.line
                if name:
                    classes.append(ClassDef(name, path, t.line, end_line,
                                            (tokens[j].line, end_line),
                                            _class_members(tokens, j, body_end)))
                # Fall through: scope tracking still sees the '{'.
                scope.append((t.text, name, depth + 1))
                i = j
                continue
            if j < n and tokens[j].text == "{" and t.text == "namespace":
                scope.append(("namespace", name, depth + 1))
                i = j
                continue
            i = j if j > i else i + 1
            continue
        # Candidate function definition: identifier '(' ... ')' [quals] '{'
        nxt = tokens[i + 1].text if i + 1 < n else ""
        if re.match(r"[A-Za-z_~]", t.text) and nxt == "(" and t.text not in _NOT_CALL:
            close = _match_forward(tokens, i + 1, "(", ")")
            k = close
            # Skip cv/ref/noexcept/attributes/trailing-return tokens.
            guard = 0
            while k < n and guard < 64:
                txt = tokens[k].text
                if txt == "{":
                    break
                if txt == ":":
                    # Constructor init list: hop initializer by initializer.
                    k += 1
                    while k < n:
                        # initializer: name ( ... ) or name { ... }
                        while k < n and tokens[k].text not in {"(", "{"}:
                            k += 1
                        if k >= n:
                            break
                        k = _match_forward(tokens, k, tokens[k].text,
                                           ")" if tokens[k].text == "(" else "}")
                        if k < n and tokens[k].text == ",":
                            k += 1
                            continue
                        break
                    break
                if txt in {";", "=", ")", ",", "}"} or txt == "(":
                    k = -1
                    break
                k += 1
                guard += 1
            if k != -1 and k < n and tokens[k].text == "{":
                body_end = _match_forward(tokens, k, "{", "}")
                # Qualified name: A::B::name directly before the '('.
                qual_parts = [t.text]
                b = i - 1
                while b - 1 >= 0 and tokens[b].text == "::" and re.match(
                    r"[A-Za-z_]", tokens[b - 1].text
                ):
                    qual_parts.insert(0, tokens[b - 1].text)
                    b -= 2
                cls = next((nm for kd, nm, _ in reversed(scope) if kd != "namespace"), "")
                qual = "::".join(qual_parts) if len(qual_parts) > 1 else (
                    f"{cls}::{t.text}" if cls else t.text
                )
                fn = Function(
                    name=t.text,
                    qual=qual,
                    file=path,
                    line=t.line,
                    end_line=tokens[body_end - 1].line if body_end - 1 < n else t.line,
                )
                _scan_body(tokens, k + 1, body_end - 1, unordered_names, fn)
                functions.append(fn)
                if t.text.startswith("~") or (
                    len(qual_parts) > 1 and qual_parts[-1].startswith("~")
                ):
                    owner = qual_parts[-1].lstrip("~")
                    dtor_bodies[owner] = " ".join(
                        tok.text for tok in tokens[k + 1:body_end - 1]
                    )
                # '~Name' tokenizes as '~' + 'Name'; handle that shape too.
                if i >= 1 and tokens[i - 1].text == "~":
                    dtor_bodies[t.text] = " ".join(
                        tok.text for tok in tokens[k + 1:body_end - 1]
                    )
                i = body_end
                continue
        i += 1
    return functions, classes, dtor_bodies


def build_model(path: str, text: str) -> FileModel:
    code, comments = scrub(text)
    tokens = tokenize(code)
    unordered_names, pointer_keys = _collect_unordered_decls(tokens)
    functions, classes, dtors = _extract_functions_and_classes(path, tokens, unordered_names)
    return FileModel(
        path=path,
        raw_lines=text.splitlines(),
        code_lines=code.splitlines(),
        tokens=tokens,
        annotations=parse_annotations(comments),
        functions=functions,
        classes=classes,
        unordered_names=unordered_names,
        pointer_key_decls=pointer_keys,
        dtor_bodies=dtors,
        token_functions=functions,
        lock_scope_calls=_collect_lock_scope_calls(tokens),
    )
