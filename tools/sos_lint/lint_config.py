"""sos-lint configuration.

Defaults here describe THIS repo (scan paths, emission roots, crypto
paths, secret-name patterns); ``sos_lint.toml`` next to this file is
merged over them so the catalog can be tuned without touching code.
Paths are repo-relative with forward slashes and are matched by
substring, so a directory prefix covers everything under it.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field, fields
from pathlib import Path


@dataclass
class LintConfig:
    # What to scan.
    scan_paths: list[str] = field(default_factory=lambda: ["src"])
    extensions: list[str] = field(default_factory=lambda: [".cpp", ".hpp"])
    disabled_rules: list[str] = field(default_factory=list)

    # unordered-iteration: files whose functions are emission roots (their
    # entire forward call closure must not iterate unordered containers),
    # plus root function names for emission helpers defined elsewhere.
    emission_paths: list[str] = field(default_factory=lambda: [
        "src/deploy/report",   # bench/metric tables
        "src/deploy/sweep",    # sweep cell results feed the tables
        "src/mw/wire",         # wire frames: byte-exact across engines
        "src/sim/trace",       # recorded contact traces are replayed bitwise
        "src/graph/metrics",   # graph metric emission
        "src/mw/stats",        # per-node counters aggregated into metrics
        "src/util/stats",      # summary statistics helpers
        "src/util/log",        # formatted output
    ])
    emission_roots: list[str] = field(default_factory=lambda: [
        "emit_report",         # fixture/selftest root
        "to_json", "render", "add_row", "set_row", "serialize", "encode",
    ])

    # banned-entropy.
    banned_entropy: list[str] = field(default_factory=lambda: [
        "rand", "srand", "drand48", "lrand48", "mrand48", "random",
        "random_device", "system_clock", "gettimeofday", "mt19937",
        "mt19937_64", "default_random_engine",
    ])
    banned_entropy_calls: list[str] = field(default_factory=lambda: [
        # Banned only in call position: `time` and `clock` are common
        # identifier fragments but poisonous as libc calls.
        "time", "clock",
    ])
    entropy_allow_paths: list[str] = field(default_factory=lambda: [
        "src/util/rng.hpp", "src/util/rng.cpp",
    ])

    # crypto hygiene: paths holding secret material (src/crypto plus the
    # handshake/resume session layer).
    crypto_paths: list[str] = field(default_factory=lambda: [
        "src/crypto/", "src/mw/adhoc_manager", "src/mw/wire",
    ])
    # Identifier shapes that name secret values in comparisons.
    secret_ident_pattern: str = (
        r"(^|_)(secret|secrets|okm|prk|ikm|master)(_|$)"
        r"|^(send|recv)_key_?$|^eph_priv_?$|^scalar_$|^seed_$|^prefix_$"
    )
    # Member names that hold key material (zeroize rule)...
    secret_member_pattern: str = (
        r"\b(secret|resume_secret|send_key|recv_key|eph_priv|scalar_"
        r"|seed_|prefix_|key_|master_secret|priv_)\b"
    )
    # ...when declared with a byte-buffer type.
    secret_buffer_types: str = (
        r"std::array<\s*std::uint8_t|std::uint8_t\s+\w+\s*\["
        r"|util::Bytes|X25519Key|EdSeed\b"
    )

    # seam-completeness: classes whose per-node state crosses episode-shard
    # boundaries through the detach()/attach() seam. Every trailing-
    # underscore member of these classes must be referenced in the seam
    # closure or carry allow(seam-exempt).
    seam_classes: list[str] = field(default_factory=lambda: [
        "AdHocManager", "MessageManager", "RoutingManager", "SosNode",
    ])

    # lock-scope: files whose locks the rule polices (the ones carrying
    # SOS_GUARDED_BY annotations — where a callback fired under a lock can
    # re-enter the locking layer), the exact callee names that are risky
    # under a lock, and name prefixes treated the same way (the middleware
    # callback convention).
    lock_scope_paths: list[str] = field(default_factory=lambda: [
        "src/crypto/verify_memo", "src/deploy/replay", "src/deploy/sweep",
        "src/util/mutex",
    ])
    lock_scope_calls: list[str] = field(default_factory=lambda: [
        "schedule_at", "schedule_in", "cancel",   # scheduler API
        "emit_report", "to_json", "render",       # emission roots
    ])
    lock_scope_call_prefixes: list[str] = field(default_factory=lambda: [
        "on_",                                    # middleware callbacks
    ])


def load_config(root: Path, override: Path | None = None) -> LintConfig:
    cfg = LintConfig()
    toml_path = override or Path(__file__).resolve().parent / "sos_lint.toml"
    if toml_path.exists():
        try:
            import tomllib
        except ModuleNotFoundError:  # pragma: no cover — python < 3.11
            print(f"sos-lint: warning: tomllib unavailable, "
                  f"ignoring {toml_path}", file=sys.stderr)
            return cfg
        data = tomllib.loads(toml_path.read_text())
        valid = {f.name for f in fields(LintConfig)}
        for key, value in data.items():
            name = key.replace("-", "_")
            if name not in valid:
                print(f"sos-lint: warning: unknown config key '{key}' in "
                      f"{toml_path}", file=sys.stderr)
                continue
            setattr(cfg, name, value)
    return cfg
