// sos_soak: month-scale soak driver over the replay engines.
//
// Records (or replays) the community-structured scenario and drives it
// through soak::Runner — metric snapshots to a JSONL log, checkpoints at
// quiescent cuts, rolling-window anomaly detection. The default cell is the
// sweep grid's 48n-4c community scenario, scaled to the requested horizon.
//
//   sos_soak --days 30 --engine strand --jobs 4 --jsonl soak.jsonl --checkpoint-dir ckpts
//   sos_soak --resume --checkpoint-dir ckpts --jsonl soak.jsonl
//
// Exit status: 0 = ran to its stop condition (horizon, predicate, wall
// budget), 2 = halted on an anomaly, 1 = usage or I/O error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "deploy/scenario.hpp"
#include "soak/runner.hpp"

using namespace sos;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: sos_soak [options]\n"
               "  --days D                simulated horizon (default 30)\n"
               "  --nodes N               fleet size (default 48)\n"
               "  --communities C         mobility communities (default 4)\n"
               "  --scheme S              routing scheme (default interest)\n"
               "  --seed X                world seed (default 42)\n"
               "  --engine E              mono | episode | strand (default episode)\n"
               "  --jobs J                worker threads for the engine (default 4)\n"
               "  --snapshot-interval-s T metric snapshot cadence (default 21600)\n"
               "  --checkpoint-dir DIR    write checkpoints here (default off)\n"
               "  --checkpoint-interval-s T  checkpoint cadence (default 86400)\n"
               "  --resume                resume from latest checkpoint in --checkpoint-dir\n"
               "  --jsonl PATH            append metric snapshots to this JSONL file\n"
               "  --wall-budget-s W       halt after W wall seconds (default unlimited)\n"
               "  --stop EXPR             halt when EXPR holds, e.g. 'deliveries>=1000'\n"
               "  --min-gap-s G           minimum quiescent gap for a cut (default 60)\n"
               "  --no-anomaly            disable anomaly detection\n");
}

bool parse_stop(const std::string& expr, soak::StopPredicate* out) {
  for (const char* op : {">=", "<="}) {
    std::size_t at = expr.find(op);
    if (at == std::string::npos || at == 0) continue;
    out->metric = expr.substr(0, at);
    out->op = op;
    char* end = nullptr;
    out->value = std::strtod(expr.c_str() + at + 2, &end);
    return end != nullptr && *end == '\0';
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  double days = 30.0;
  std::size_t nodes = 48;
  std::size_t communities = 4;
  std::string scheme = "interest";
  std::uint64_t seed = 42;
  std::string engine = "episode";
  std::size_t jobs = 4;
  bool do_resume = false;

  soak::SoakOptions opts;

  auto need_value = [&](int i) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "sos_soak: %s needs a value\n", argv[i]);
      usage();
      std::exit(1);
    }
    return argv[i + 1];
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--days") == 0) {
      days = std::strtod(need_value(i++), nullptr);
    } else if (std::strcmp(arg, "--nodes") == 0) {
      nodes = static_cast<std::size_t>(std::strtoull(need_value(i++), nullptr, 10));
    } else if (std::strcmp(arg, "--communities") == 0) {
      communities = static_cast<std::size_t>(std::strtoull(need_value(i++), nullptr, 10));
    } else if (std::strcmp(arg, "--scheme") == 0) {
      scheme = need_value(i++);
    } else if (std::strcmp(arg, "--seed") == 0) {
      seed = std::strtoull(need_value(i++), nullptr, 10);
    } else if (std::strcmp(arg, "--engine") == 0) {
      engine = need_value(i++);
    } else if (std::strcmp(arg, "--jobs") == 0) {
      jobs = static_cast<std::size_t>(std::strtoull(need_value(i++), nullptr, 10));
    } else if (std::strcmp(arg, "--snapshot-interval-s") == 0) {
      opts.snapshot_interval_s = std::strtod(need_value(i++), nullptr);
    } else if (std::strcmp(arg, "--checkpoint-dir") == 0) {
      opts.checkpoint_dir = need_value(i++);
    } else if (std::strcmp(arg, "--checkpoint-interval-s") == 0) {
      opts.checkpoint_interval_s = std::strtod(need_value(i++), nullptr);
    } else if (std::strcmp(arg, "--resume") == 0) {
      do_resume = true;
    } else if (std::strcmp(arg, "--jsonl") == 0) {
      opts.jsonl_path = need_value(i++);
    } else if (std::strcmp(arg, "--wall-budget-s") == 0) {
      opts.stop.wall_budget_s = std::strtod(need_value(i++), nullptr);
    } else if (std::strcmp(arg, "--stop") == 0) {
      soak::StopPredicate p;
      if (!parse_stop(need_value(i++), &p)) {
        std::fprintf(stderr, "sos_soak: bad --stop expression (want metric>=N or metric<=N)\n");
        return 1;
      }
      opts.stop.predicates.push_back(p);
    } else if (std::strcmp(arg, "--min-gap-s") == 0) {
      opts.min_gap_s = std::strtod(need_value(i++), nullptr);
    } else if (std::strcmp(arg, "--no-anomaly") == 0) {
      opts.anomaly_detection = false;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "sos_soak: unknown option %s\n", arg);
      usage();
      return 1;
    }
  }

  if (do_resume && opts.checkpoint_dir.empty()) {
    std::fprintf(stderr, "sos_soak: --resume needs --checkpoint-dir\n");
    return 1;
  }

  // The sweep grid's community-structured cell (48n-4c by default), scaled
  // to the horizon: four sparse villages with 10%% bridge commuters, daily
  // posting volume held constant as days grow.
  deploy::ScenarioConfig config = deploy::gainesville_config(scheme, seed);
  config.nodes = nodes;
  config.area_w_m = 6000.0;
  config.area_h_m = 6000.0;
  config.days = days;
  config.communities = communities;
  if (communities > 1) {
    config.bridge_node_frac = 0.10;
    config.mobility.home_min_separation_m = 150.0;
  }
  config.total_posts_target = 26.0 * static_cast<double>(nodes) * (days / 3.0);
  opts.config = config;

  if (engine == "mono") {
    opts.replay.partition = false;
    opts.replay.subepisode_jobs = 0;
  } else if (engine == "episode") {
    opts.replay.partition = true;
    opts.replay.jobs = jobs;
  } else if (engine == "strand") {
    opts.replay.subepisode_jobs = jobs;
  } else {
    std::fprintf(stderr, "sos_soak: unknown engine '%s'\n", engine.c_str());
    return 1;
  }

  std::printf("sos_soak: recording world (%zu nodes, %zu communities, %.1f days, seed %llu)...\n",
              config.nodes, config.communities, config.days,
              static_cast<unsigned long long>(config.seed));
  std::fflush(stdout);
  auto world = deploy::record_world(config);
  std::printf("sos_soak: %zu contacts recorded; engine=%s jobs=%zu\n", world->trace.size(),
              engine.c_str(), jobs);
  std::fflush(stdout);

  soak::Runner runner(opts);
  soak::SoakResult result;
  if (do_resume) {
    std::string error;
    auto ckpt = soak::CheckpointStore(opts.checkpoint_dir).load_latest(&error);
    if (!ckpt) {
      std::fprintf(stderr, "sos_soak: %s\n", error.c_str());
      return 1;
    }
    std::printf("sos_soak: resuming from segment %llu at sim day %.2f\n",
                static_cast<unsigned long long>(ckpt->segment), ckpt->sim_time / 86400.0);
    std::fflush(stdout);
    result = runner.resume(*world, *ckpt);
  } else {
    result = runner.run(*world);
  }

  std::printf("sos_soak: stop=%s sim_days=%.2f segments=%llu checkpoints=%llu\n",
              result.stop_reason.c_str(), result.sim_time / 86400.0,
              static_cast<unsigned long long>(result.segments),
              static_cast<unsigned long long>(result.checkpoints_written));
  std::printf("sos_soak: posts=%zu deliveries=%zu sessions=%llu resumed=%llu "
              "handshakes=%llu frames=%llu\n",
              result.scenario.oracle.posts().size(),
              result.scenario.oracle.deliveries().size(),
              static_cast<unsigned long long>(result.scenario.totals.sessions_established),
              static_cast<unsigned long long>(result.scenario.totals.sessions_resumed),
              static_cast<unsigned long long>(result.scenario.totals.full_handshakes),
              static_cast<unsigned long long>(result.scenario.totals.frames_sent));
  for (const soak::Anomaly& a : result.anomalies) {
    std::fprintf(stderr, "sos_soak: ANOMALY [%s/%s] %s\n", a.kind.c_str(), a.metric.c_str(),
                 a.detail.c_str());
  }
  if (!result.anomalies.empty()) return 2;
  if (result.stop_reason.rfind("resume-rejected", 0) == 0) {
    std::fprintf(stderr, "sos_soak: %s\n", result.stop_reason.c_str());
    return 1;
  }
  return 0;
}
