// Fig 4a + §VI-A — the social-relationship graph of the deployment and its
// compactness metrics. Prints the reconstructed digraph (adjacency) and
// every number the paper reports: density, average shortest path length,
// diameter, radius, center nodes, transitivity, subscription count.
#include <cstdio>

#include "deploy/report.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"

using namespace sos;

int main() {
  deploy::print_heading("Fig 4a / SecVI-A: social relationship graph (10 active users)");

  auto g = graph::baker2017_social_graph();
  auto u = g.undirected();

  std::printf("follow arcs (paper node k = reconstruction node k-1):\n");
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    std::printf("  user %2u follows:", v + 1);
    for (graph::NodeId w : g.out_neighbors(v)) std::printf(" %u", w + 1);
    std::printf("\n");
  }
  std::printf("\n");

  std::size_t undirected_pairs = u.edge_count() / 2;
  auto centers = graph::center(u);
  std::string center_str;
  for (auto c : centers) center_str += (center_str.empty() ? "" : ",") + std::to_string(c + 1);

  deploy::Table t({"metric (paper SecVI-A)", "paper", "measured"});
  t.add_row(deploy::compare_row("nodes n", 10, (double)g.node_count(), 0));
  t.add_row(deploy::compare_row("subscriptions (arcs)", 46, (double)g.edge_count(), 0));
  t.add_row(deploy::compare_row("undirected density", 0.64,
                                (double)undirected_pairs / 45.0));
  t.add_row(deploy::compare_row("avg shortest path", 1.3,
                                graph::average_shortest_path_length(u)));
  t.add_row(deploy::compare_row("diameter d(G)", 2, (double)graph::diameter(u), 0));
  t.add_row(deploy::compare_row("radius", 1, (double)graph::radius(u), 0));
  t.add_row(deploy::compare_row("transitivity T(G)", 0.80, graph::transitivity(g)));
  t.print();

  std::printf("center nodes: {%s} (paper: {6,7})\n", center_str.c_str());
  std::printf("directed check: 1->3 present=%d, 3->1 present=%d (paper example)\n",
              g.has_edge(0, 2) ? 1 : 0, g.has_edge(2, 0) ? 1 : 0);
  std::printf("triangles=%zu connected-triads=%zu\n", graph::triangle_count(g),
              graph::connected_triad_count(g));
  return 0;
}
