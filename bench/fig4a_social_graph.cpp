// Fig 4a + §VI-A — the social-relationship graph of the deployment and its
// compactness metrics. Prints the reconstructed digraph (adjacency) and
// every number the paper reports: density, average shortest path length,
// diameter, radius, center nodes, transitivity, subscription count.
#include <cstdio>

#include "deploy/report.hpp"
#include "deploy/sweep.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"

using namespace sos;

int main() {
  deploy::print_heading("Fig 4a / SecVI-A: social relationship graph (10 active users)");

  auto g = graph::baker2017_social_graph();
  auto u = g.undirected();

  std::printf("follow arcs (paper node k = reconstruction node k-1):\n");
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    std::printf("  user %2u follows:", v + 1);
    for (graph::NodeId w : g.out_neighbors(v)) std::printf(" %u", w + 1);
    std::printf("\n");
  }
  std::printf("\n");

  std::size_t undirected_pairs = u.edge_count() / 2;
  auto centers = graph::center(u);
  std::string center_str;
  for (auto c : centers) {
    // Appended in two steps: `"," + std::to_string(...)` trips GCC 12's
    // -Wrestrict false positive (PR 105651) under -O2.
    if (!center_str.empty()) center_str += ",";
    center_str += std::to_string(c + 1);
  }

  deploy::Table t({"metric (paper SecVI-A)", "paper", "measured"});
  t.add_row(deploy::compare_row("nodes n", 10, (double)g.node_count(), 0));
  t.add_row(deploy::compare_row("subscriptions (arcs)", 46, (double)g.edge_count(), 0));
  t.add_row(deploy::compare_row("undirected density", 0.64,
                                (double)undirected_pairs / 45.0));
  t.add_row(deploy::compare_row("avg shortest path", 1.3,
                                graph::average_shortest_path_length(u)));
  t.add_row(deploy::compare_row("diameter d(G)", 2, (double)graph::diameter(u), 0));
  t.add_row(deploy::compare_row("radius", 1, (double)graph::radius(u), 0));
  t.add_row(deploy::compare_row("transitivity T(G)", 0.80, graph::transitivity(g)));
  t.print();

  std::printf("center nodes: {%s} (paper: {6,7})\n", center_str.c_str());
  std::printf("directed check: 1->3 present=%d, 3->1 present=%d (paper example)\n",
              g.has_edge(0, 2) ? 1 : 0, g.has_edge(2, 0) ? 1 : 0);
  std::printf("triangles=%zu connected-triads=%zu\n", graph::triangle_count(g),
              graph::connected_triad_count(g));

  // The density-sweep cells with n != 10 substitute a sampled community
  // graph for the reconstructed one; characterize those graphs under the
  // sweep's own per-cell seed streams (splitmix64 over the base seed, so
  // these rows match what bench_ablation_density actually simulates).
  deploy::print_heading("Sampled community graphs (density-sweep populations)");
  deploy::Table s({"cell", "nodes", "arcs", "undirected density", "avg shortest path",
                   "transitivity"});
  // The shared grid + graph helpers reproduce exactly what
  // bench_ablation_density simulates (cell 0 is the 10-node deployment and
  // uses the reconstructed graph above).
  auto grid = deploy::density_ablation_grid();
  deploy::SweepRunner runner;  // default options = what ablation_density uses
  for (std::size_t cell = 0; cell < grid.size(); ++cell) {
    if (grid[cell].config.nodes == 10) continue;
    deploy::ScenarioConfig config = runner.cell_config(grid[cell], cell);
    auto community = deploy::scenario_social_graph(config);
    std::size_t n = config.nodes;
    auto cu = community.undirected();
    double pairs = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
    s.add_row({std::to_string(cell), std::to_string(n),
               std::to_string(community.edge_count()),
               deploy::fmt(static_cast<double>(cu.edge_count() / 2) / pairs),
               deploy::fmt(graph::average_shortest_path_length(cu)),
               deploy::fmt(graph::transitivity(community))});
  }
  s.print();
  std::printf("density stays in the deployment's 0.64-undirected ballpark as n grows,\n"
              "so the density ablation varies *spatial* density, not social density.\n");
  return 0;
}
