// Middleware microbenchmarks: the per-encounter costs — the Fig 2a signup
// flow, the session handshake over the simulated radio, end-to-end bundle
// verification, store queries, and wire codec round trips.
#include <benchmark/benchmark.h>

#include "bundle/store.hpp"
#include "crypto/drbg.hpp"
#include "deploy/replay.hpp"
#include "deploy/sweep.hpp"
#include "mw/sos_node.hpp"
#include "pki/bootstrap.hpp"
#include "sim/episode.hpp"
#include "sim/multipeer.hpp"
#include "sim/subepisode.hpp"
#include "soak/checkpoint.hpp"
#include "util/codec.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

using namespace sos;

namespace {
/// Index of the grid cell with this label; aborts on a miss so a renamed
/// cell cannot silently redirect a benchmark to the wrong workload.
std::size_t grid_cell_index(const std::vector<deploy::SweepCell>& grid,
                            const std::string& label) {
  for (std::size_t i = 0; i < grid.size(); ++i)
    if (grid[i].label == label) return i;
  std::fprintf(stderr, "density_ablation_grid has no cell labelled '%s'\n", label.c_str());
  std::abort();
}
}  // namespace

static void BM_SignupFlow(benchmark::State& state) {
  // Full Fig 2a bootstrap: device keygen + CSR + cloud validation + CA issue.
  int i = 0;
  pki::BootstrapService infra(util::to_bytes("bench-infra"));
  for (auto _ : state) {
    crypto::Drbg device(util::to_bytes("d" + std::to_string(i)));
    benchmark::DoNotOptimize(infra.signup("user-bench-" + std::to_string(i), device, 0.0));
    ++i;
  }
}
BENCHMARK(BM_SignupFlow);

static void BM_SessionHandshake(benchmark::State& state) {
  // Two nodes: connect + cert exchange + ECDH + key schedule, repeatedly.
  // Resumption is disabled so every contact pays the full handshake.
  pki::BootstrapService infra(util::to_bytes("hs-infra"));
  crypto::Drbg d0(util::to_bytes("hs-0")), d1(util::to_bytes("hs-1"));
  sim::Scheduler sched;
  sim::MpcNetwork net(sched, 2);
  mw::SosConfig config;
  config.maintenance_interval_s = 0;
  config.resume_lifetime_s = 0;
  mw::SosNode a(sched, net.endpoint(0), *infra.signup("hs-a", d0, 0), config);
  mw::SosNode b(sched, net.endpoint(1), *infra.signup("hs-b", d1, 0), config);
  a.start();
  b.start();
  a.follow(b.user_id());
  b.publish(util::to_bytes("content"));
  for (auto _ : state) {
    net.set_in_range(0, 1, true);
    sched.run_all();
    net.set_in_range(0, 1, false);
    sched.run_all();
  }
  state.counters["sessions"] =
      static_cast<double>(a.stats().sessions_established);
}
BENCHMARK(BM_SessionHandshake);

static void BM_SessionResume(benchmark::State& state) {
  // Same meet/part cycle as BM_SessionHandshake, but with resumption on:
  // the first contact pays the full handshake, every subsequent contact is
  // a 1-RTT HMAC resume with zero X25519 operations. Compare directly
  // against BM_SessionHandshake for the per-recurring-contact saving.
  pki::BootstrapService infra(util::to_bytes("rs-infra"));
  crypto::Drbg d0(util::to_bytes("rs-0")), d1(util::to_bytes("rs-1"));
  sim::Scheduler sched;
  sim::MpcNetwork net(sched, 2);
  mw::SosConfig config;
  config.maintenance_interval_s = 0;
  config.resume_lifetime_s = 1e12;  // never expires within the bench
  mw::SosNode a(sched, net.endpoint(0), *infra.signup("rs-a", d0, 0), config);
  mw::SosNode b(sched, net.endpoint(1), *infra.signup("rs-b", d1, 0), config);
  a.start();
  b.start();
  a.follow(b.user_id());
  b.publish(util::to_bytes("content"));
  // Prime the resumption cache with one full handshake outside the timing.
  net.set_in_range(0, 1, true);
  sched.run_all();
  net.set_in_range(0, 1, false);
  sched.run_all();
  for (auto _ : state) {
    net.set_in_range(0, 1, true);
    sched.run_all();
    net.set_in_range(0, 1, false);
    sched.run_all();
  }
  state.counters["resumed"] = static_cast<double>(a.stats().sessions_resumed);
  state.counters["ecdh_ops"] = static_cast<double>(a.stats().ecdh_ops);
}
BENCHMARK(BM_SessionResume);

static void BM_BundleSignVerify(benchmark::State& state) {
  crypto::Drbg d(util::to_bytes("bv"));
  auto kp = crypto::Ed25519Keypair::from_seed(d.generate_array<32>());
  bundle::Bundle b;
  b.origin = pki::user_id_from_name("author");
  b.msg_num = 1;
  b.payload = d.generate(512);
  for (auto _ : state) {
    b.sign(kp);
    benchmark::DoNotOptimize(b.verify(kp.public_key()));
  }
}
BENCHMARK(BM_BundleSignVerify);

static void BM_BundleVerifyEndToEnd(benchmark::State& state) {
  // Full per-hop gate as the middleware runs it (certificate chain + bundle
  // signature + verified-bundle cache). range(0)==1 re-verifies the same
  // bundle (cache hit, the epidemic re-reception case); range(0)==0 clears
  // the cache each round (cold path).
  pki::BootstrapService infra(util::to_bytes("bv-infra"));
  crypto::Drbg dv(util::to_bytes("bv-v")), dp(util::to_bytes("bv-p"));
  auto verifier = infra.signup("bv-verifier", dv, 0.0);
  auto publisher = infra.signup("bv-publisher", dp, 0.0);
  sim::Scheduler sched;
  sim::MpcNetwork net(sched, 1);
  mw::NodeStats stats;
  mw::AdHocManager adhoc(sched, net.endpoint(0), *verifier, stats);

  std::vector<bundle::Bundle> pool;
  for (std::uint32_t i = 1; i <= 8; ++i) {
    bundle::Bundle b;
    b.origin = publisher->user_id;
    b.msg_num = i;
    b.payload = dp.generate(512);
    b.sign(publisher->signing_keypair);
    pool.push_back(std::move(b));
  }
  const bool cached = state.range(0) == 1;
  // Cold: a capacity-1 cache plus a rotating pool makes every verify a miss.
  if (!cached) adhoc.set_verify_cache_capacity(1);
  std::size_t idx = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(adhoc.verify_bundle(pool[idx], publisher->certificate));
    if (!cached) idx = (idx + 1) % pool.size();
  }
  state.counters["cache_hits"] = static_cast<double>(stats.bundle_sig_cache_hits);
}
BENCHMARK(BM_BundleVerifyEndToEnd)->Arg(0)->Arg(1);

static void BM_BundleCodec(benchmark::State& state) {
  crypto::Drbg d(util::to_bytes("bc"));
  bundle::Bundle b;
  b.origin = pki::user_id_from_name("author");
  b.msg_num = 7;
  b.payload = d.generate(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto enc = b.encode();
    benchmark::DoNotOptimize(bundle::Bundle::decode(enc));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BundleCodec)->Arg(64)->Arg(1024)->Arg(65536);

static void BM_StoreSummary(benchmark::State& state) {
  // summary() itself is now a const-ref getter (maintained incrementally);
  // what callers actually pay is the copy the advertisement path takes, so
  // that is what this measures.
  bundle::BundleStore store(100000);
  crypto::Drbg d(util::to_bytes("ss"));
  for (int user = 0; user < 20; ++user) {
    for (std::uint32_t num = 1; num <= static_cast<std::uint32_t>(state.range(0)) / 20; ++num) {
      bundle::Bundle b;
      b.origin = pki::user_id_from_name("u" + std::to_string(user));
      b.msg_num = num;
      store.insert(std::move(b), 0);
    }
  }
  for (auto _ : state) {
    std::map<pki::UserId, std::uint32_t> ad = store.summary();
    benchmark::DoNotOptimize(ad);
  }
}
BENCHMARK(BM_StoreSummary)->Arg(200)->Arg(2000);

static void BM_StoreChurn(benchmark::State& state) {
  // Where the old per-call summary() cost moved: the incremental
  // maintenance paid on insert/remove. Inserts a fresh bundle and removes
  // the oldest each iteration on a store holding range(0) bundles, so a
  // regression in refresh_summary's O(log n) range-max refresh shows here.
  bundle::BundleStore store(100000);
  const std::uint32_t held = static_cast<std::uint32_t>(state.range(0));
  auto uid = pki::user_id_from_name("churner");
  for (std::uint32_t num = 1; num <= held; ++num) {
    bundle::Bundle b;
    b.origin = uid;
    b.msg_num = num;
    store.insert(std::move(b), 0);
  }
  std::uint32_t next = held + 1, oldest = 1;
  for (auto _ : state) {
    bundle::Bundle b;
    b.origin = uid;
    b.msg_num = next++;
    store.insert(std::move(b), 0);
    store.remove({uid, oldest++});
    benchmark::DoNotOptimize(store.summary());
  }
}
BENCHMARK(BM_StoreChurn)->Arg(2000);

static void BM_DensityCell(benchmark::State& state) {
  // End-to-end recurring-pair-heavy scenario (the ablation_density session
  // churn sweep): a dense 7-day epidemic deployment with almost no content,
  // so per-encounter session setup dominates the run. range(0)==1 enables
  // session resumption (2-day lifetime, covering day-boundary re-contacts);
  // range(0)==0 is the full-handshake-per-contact baseline.
  for (auto _ : state) {
    deploy::ScenarioConfig config = deploy::gainesville_config("epidemic");
    config.nodes = 40;
    config.area_w_m = 1000;
    config.area_h_m = 1000;
    config.days = 7;
    config.total_posts_target = 20.0;
    config.resume_lifetime_s = state.range(0) == 1 ? 172800.0 : 0.0;
    auto result = deploy::run_scenario(config);
    benchmark::DoNotOptimize(result.totals.deliveries);
    state.counters["resumed"] = static_cast<double>(result.totals.sessions_resumed);
    state.counters["full_hs"] = static_cast<double>(result.totals.full_handshakes);
    state.counters["ecdh_ops"] = static_cast<double>(result.totals.ecdh_ops);
  }
}
BENCHMARK(BM_DensityCell)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

static void BM_DensityCellReplay(benchmark::State& state) {
  // Intra-cell replay of the HEAVIEST density-ablation cell (100 nodes /
  // 4 km^2 / 3 days — ~80% of the grid's wall-clock) through the replay
  // engines. range(0) selects the engine: 0 = single-scheduler replay
  // without the shared verify memo (the pre-engine baseline), 1 = single
  // scheduler + shared memo, 2 = episode-partitioned at 1 worker, 3 =
  // episode-partitioned at 4 workers. Metrics are bitwise identical across
  // all four (tests/episode_test.cpp pins this); the memo is where the
  // >=2x comes from — each distinct bundle/cert signature pays curve math
  // once per run instead of once per carrying node.
  auto grid = deploy::density_ablation_grid(3.0);
  deploy::SweepRunner runner{deploy::SweepOptions{}};
  const std::size_t heavy = grid_cell_index(grid, "100n");  // 100n / 2x2 km
  deploy::ScenarioConfig config = runner.cell_config(grid[heavy], heavy);
  auto world = deploy::record_world(config);

  deploy::ReplayOptions replay;
  switch (state.range(0)) {
    case 0: replay = {false, 1, nullptr, false}; break;
    case 1: replay = {false, 1, nullptr, true}; break;
    case 2: replay = {true, 1, nullptr, true}; break;
    default: replay = {true, 4, nullptr, true}; break;
  }
  std::uint64_t deliveries = 0;
  for (auto _ : state) {
    auto result = deploy::run_scenario(config, world.get(), replay);
    deliveries = result.totals.deliveries;
    benchmark::DoNotOptimize(deliveries);
  }
  auto graph = sim::EpisodeGraph::partition(world->trace, config.nodes,
                                            util::days(config.days));
  state.counters["deliveries"] = static_cast<double>(deliveries);
  state.counters["episodes"] = static_cast<double>(graph.episodes().size());
  state.counters["parallelism"] = graph.parallelism();
}
BENCHMARK(BM_DensityCellReplay)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

static void BM_DensityCellSubepisode(benchmark::State& state) {
  // The heaviest density cell again (100n / 2x2 km / 3 days), but through
  // the sub-episode (contact-strand) engine. This is the cell the episode
  // engine cannot decompose — the daily hotspot chains its contacts into
  // one serial megatask (episode parallelism ~1.0) — while ContactDag's
  // per-node hull fusion frees the overnight home-pair contacts to overlap
  // it (width > 1, pinned by tests/episode_test.cpp). range(0) = strand
  // workers; metrics are bitwise identical to every other engine/row.
  auto grid = deploy::density_ablation_grid(3.0);
  deploy::SweepRunner runner{deploy::SweepOptions{}};
  const std::size_t heavy = grid_cell_index(grid, "100n");
  deploy::ScenarioConfig config = runner.cell_config(grid[heavy], heavy);
  auto world = deploy::record_world(config);

  deploy::ReplayOptions replay;
  replay.subepisode_jobs = static_cast<std::size_t>(state.range(0));
  std::uint64_t deliveries = 0;
  for (auto _ : state) {
    auto result = deploy::run_scenario(config, world.get(), replay);
    deliveries = result.totals.deliveries;
    benchmark::DoNotOptimize(deliveries);
  }
  auto dag = sim::ContactDag::partition(world->trace, config.nodes,
                                        util::days(config.days));
  state.counters["deliveries"] = static_cast<double>(deliveries);
  state.counters["tasks"] = static_cast<double>(dag.contact_task_count());
  state.counters["width"] = static_cast<double>(dag.width());
  state.counters["parallelism"] = dag.parallelism();
}
BENCHMARK(BM_DensityCellSubepisode)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

static void BM_CommunityReplay(benchmark::State& state) {
  // The community-structured density cell (48 nodes, 4 disjoint mobility
  // communities, 10% bridge commuters — the "48n-4c" grid cell) through the
  // replay engines. Unlike the single-hotspot cells, whose conservative
  // episode-parallelism ceiling is ~1.0, this trace decomposes (parallelism
  // >= 2, pinned by tests/episode_test.cpp), so workers finally have
  // something to run concurrently. range(1) = 0: range(0) = 0 is the
  // single-scheduler replay, otherwise episode-partitioned with range(0)
  // workers. range(1) = 1: the sub-episode (contact-strand) engine with
  // range(0) workers — a strictly finer task DAG (ContactDag refines
  // EpisodeGraph), so its parallelism ceiling is >= the episode one.
  // Metrics are bitwise identical across all rows; compare the /1 and /4
  // wall-clocks for the multi-core win (on a 1-core host they tie by
  // construction).
  auto grid = deploy::density_ablation_grid(3.0);
  deploy::SweepRunner runner{deploy::SweepOptions{}};
  const std::size_t idx = grid_cell_index(grid, "48n-4c");
  deploy::ScenarioConfig config = runner.cell_config(grid[idx], idx);
  auto world = deploy::record_world(config);

  deploy::ReplayOptions replay;
  if (state.range(1) == 1) {
    replay.subepisode_jobs = static_cast<std::size_t>(state.range(0));
  } else {
    replay.partition = state.range(0) > 0;
    replay.jobs = replay.partition ? static_cast<std::size_t>(state.range(0)) : 1;
  }
  std::uint64_t deliveries = 0;
  for (auto _ : state) {
    auto result = deploy::run_scenario(config, world.get(), replay);
    deliveries = result.totals.deliveries;
    benchmark::DoNotOptimize(deliveries);
  }
  auto graph = sim::EpisodeGraph::partition(world->trace, config.nodes,
                                            util::days(config.days));
  auto dag = sim::ContactDag::partition(world->trace, config.nodes,
                                        util::days(config.days));
  state.counters["deliveries"] = static_cast<double>(deliveries);
  state.counters["episodes"] = static_cast<double>(graph.contact_episode_count());
  state.counters["parallelism"] =
      state.range(1) == 1 ? dag.parallelism() : graph.parallelism();
}
BENCHMARK(BM_CommunityReplay)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({4, 0})
    ->Args({1, 1})
    ->Args({4, 1})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

static void BM_DensitySweep(benchmark::State& state) {
  // The full bench_ablation_density density grid through deploy::SweepRunner.
  // range(0) = worker threads; range(1) = record-once/replay-many traces.
  // /1/0 is the pre-sweep serial baseline shape, /4/1 is the parallel +
  // replay path. tests/sweep_test.cpp asserts per-cell metrics are bitwise
  // identical across thread counts (with replay on); replay-off runs live
  // detection, which has matched replay exactly on every config measured
  // but is not pinned by a test.
  std::vector<deploy::SweepCell> grid = deploy::density_ablation_grid(3.0);
  deploy::SweepOptions opts;
  opts.jobs = static_cast<std::size_t>(state.range(0));
  opts.reuse_traces = state.range(1) == 1;
  deploy::SweepRunner runner(opts);
  std::uint64_t deliveries = 0;
  for (auto _ : state) {
    auto results = runner.run(grid);
    deliveries = 0;
    for (const auto& r : results) deliveries += r.result.totals.deliveries;
    benchmark::DoNotOptimize(deliveries);
  }
  state.counters["cells"] = static_cast<double>(grid.size());
  state.counters["deliveries"] = static_cast<double>(deliveries);
}
BENCHMARK(BM_DensitySweep)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({4, 1})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

static void BM_DisasterPack(benchmark::State& state) {
  // The disaster fault pack (deploy::disaster_pack_grid): one row per fault
  // cell — calm, lossy, storm, churn, quake, blackhole, sigstorm, siege —
  // each running the signed and unsigned epidemic variants over one shared
  // recorded world. The counters are the signed-vs-unsigned table the
  // README quotes: delivery = delivered-of-posted / deliverable (adversarial
  // junk never counts as delivered workload), intr = transfers interrupted,
  // rejected = forged/invalid bundle signatures refused, dropped = frames
  // eaten by injected loss/grayholes. Metrics are bitwise deterministic at
  // any --jobs/--episode-jobs count (ctest -L fault pins this); the seeds
  // match a full-grid SweepRunner run with default options.
  auto grid = deploy::disaster_pack_grid(2.0);
  const std::size_t idx = static_cast<std::size_t>(state.range(0));
  deploy::SweepCell cell = grid.at(idx);
  cell.config.seed = util::derive_seed(42, idx);
  deploy::SweepOptions opts;
  opts.derive_seeds = false;
  deploy::SweepRunner runner(opts);

  std::vector<deploy::CellResult> results;
  for (auto _ : state) {
    results = runner.run({cell});
    benchmark::DoNotOptimize(results);
  }
  state.SetLabel(cell.label);
  for (const auto& r : results) {
    const std::string v = r.config.verify_signatures ? "signed" : "unsigned";
    state.counters["delivery_" + v] = r.result.oracle.posted_delivery_ratio();
    state.counters["intr_" + v] = static_cast<double>(r.result.totals.transfers_interrupted);
    state.counters["rejected_" + v] =
        static_cast<double>(r.result.totals.bundle_sig_rejected);
    state.counters["dropped_" + v] = static_cast<double>(r.result.frames_dropped_fault);
    state.counters["reboots"] = static_cast<double>(r.result.totals.reboots);
  }
}
BENCHMARK(BM_DisasterPack)
    ->DenseRange(0, 7)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

static void BM_CheckpointRoundtrip(benchmark::State& state) {
  // Soak checkpoint save/restore cost on the community cell (48n-4c,
  // 3 days), captured at the middle quiescent cut — roughly the per-day
  // overhead a month-scale soak run pays for resumability. range(0)==0 is
  // save: serialize the whole fleet (the detach/attach inventory per node
  // + scheduler clock + partial metrics) and encode the versioned,
  // integrity-hashed container. range(0)==1 is restore: decode + validate
  // the container, build a fresh fleet, and attach the state — the full
  // cost of re-entering a run from disk, which is why it dwarfs save.
  auto grid = deploy::density_ablation_grid(3.0);
  deploy::SweepRunner runner{deploy::SweepOptions{}};
  const std::size_t idx = grid_cell_index(grid, "48n-4c");
  deploy::ScenarioConfig config = runner.cell_config(grid[idx], idx);
  auto world = deploy::record_world(config);

  deploy::ReplayOptions replay;
  deploy::ReplaySession session(config, *world, replay);
  std::vector<util::SimTime> cuts = session.quiescent_cuts(60.0);
  session.advance_to(cuts.empty() ? session.horizon() / 2 : cuts[cuts.size() / 2]);

  soak::Checkpoint c;
  c.segment = 1;
  c.sim_time = session.sim_time();
  c.world_digest = soak::world_digest(config, *world);

  if (state.range(0) == 0) {
    util::Bytes enc;
    for (auto _ : state) {
      util::Writer w;
      session.save_state(w);
      c.payload = w.take();
      enc = soak::encode_checkpoint(c);
      benchmark::DoNotOptimize(enc);
    }
    state.counters["checkpoint_bytes"] = static_cast<double>(enc.size());
  } else {
    util::Writer w;
    session.save_state(w);
    c.payload = w.take();
    const util::Bytes enc = soak::encode_checkpoint(c);
    for (auto _ : state) {
      std::string error;
      auto decoded = soak::decode_checkpoint(util::ByteView(enc), &error);
      deploy::ReplaySession fresh(config, *world, replay);
      util::Reader r{util::ByteView(decoded->payload)};
      bool ok = fresh.load_state(r);
      benchmark::DoNotOptimize(ok);
    }
    state.counters["checkpoint_bytes"] = static_cast<double>(enc.size());
  }
}
BENCHMARK(BM_CheckpointRoundtrip)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

static void BM_StoreNewerThan(benchmark::State& state) {
  bundle::BundleStore store(100000);
  auto uid = pki::user_id_from_name("author");
  for (std::uint32_t num = 1; num <= 2000; ++num) {
    bundle::Bundle b;
    b.origin = uid;
    b.msg_num = num;
    store.insert(std::move(b), 0);
  }
  for (auto _ : state) benchmark::DoNotOptimize(store.newer_than(uid, 1900));
}
BENCHMARK(BM_StoreNewerThan);

BENCHMARK_MAIN();
