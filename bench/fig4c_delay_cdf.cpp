// Fig 4c — delivery-delay CDF of the Gainesville deployment, "1-hop" vs
// "All" hops, under Interest-Based routing. Regenerates the paper's
// checkpoints (fraction delivered within 24 h and 94 h) from the simulated
// reconstruction and prints the full CDF series.
#include <cstdio>

#include "deploy/report.hpp"
#include "deploy/sweep.hpp"
#include "util/time.hpp"

using namespace sos;

int main(int argc, char** argv) {
  deploy::print_heading("Fig 4c: delivery delay CDF (Gainesville study, IB routing)");

  deploy::SweepOptions opts = deploy::sweep_options_from_args(argc, argv);
  opts.derive_seeds = false;  // keep the calibrated Gainesville seed
  deploy::SweepRunner runner(opts);
  deploy::SweepCell cell;
  cell.config = deploy::gainesville_config("interest");
  auto results = runner.run({cell});
  const deploy::ScenarioConfig& config = results[0].config;
  const deploy::ScenarioResult& result = results[0].result;
  const auto& oracle = result.oracle;

  std::printf("deployment: %zu nodes, %.0f days, %zu posts, %zu subscriptions, "
              "%zu D2D deliveries, %llu encounters\n",
              config.nodes, result.simulated_days, oracle.post_count(),
              oracle.subscription_count(), oracle.delivery_count(),
              static_cast<unsigned long long>(result.contacts));

  auto all = oracle.delay_cdf(false);
  auto one_hop = oracle.delay_cdf(true);

  deploy::Table cdf({"delay <=", "All (measured)", "1-hop (measured)"});
  for (double h : {6.0, 12.0, 24.0, 48.0, 72.0, 94.0, 120.0, 168.0}) {
    cdf.add_row({deploy::fmt(h, 0) + "h", deploy::fmt(all.at(util::hours(h)), 3),
                 deploy::fmt(one_hop.at(util::hours(h)), 3)});
  }
  cdf.print();

  deploy::Table paper({"checkpoint", "paper", "measured"});
  paper.add_row(deploy::compare_row("All:   P[delay <= 24h]", 0.43, all.at(util::hours(24))));
  paper.add_row(deploy::compare_row("All:   P[delay <= 94h]", 0.90, all.at(util::hours(94))));
  paper.add_row(
      deploy::compare_row("1-hop: P[delay <= 24h]", 0.44, one_hop.at(util::hours(24))));
  paper.add_row(
      deploy::compare_row("1-hop: P[delay <= 94h]", 0.92, one_hop.at(util::hours(94))));
  paper.print();

  std::printf("median delay: all=%s  1-hop=%s\n",
              util::format_duration(all.quantile(0.5)).c_str(),
              util::format_duration(one_hop.quantile(0.5)).c_str());
  return 0;
}
