// Simulator microbenchmarks: event engine throughput, mobility position
// lookups, and grid-accelerated encounter scans at simulation-scale node
// counts (the density ablation's inner loop).
#include <benchmark/benchmark.h>

#include "sim/mobility.hpp"
#include "sim/radio.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

using namespace sos;

static void BM_SchedulerThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    int count = 0;
    for (int i = 0; i < 10000; ++i)
      sched.schedule_at(static_cast<double>(i % 97), [&count] { ++count; });
    sched.run_all();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SchedulerThroughput);

static void BM_MobilityPositionLookup(benchmark::State& state) {
  util::Rng rng(1);
  auto m = sim::daily_routine(50, util::days(7), {}, rng);
  double t = 0;
  for (auto _ : state) {
    t += 31.0;
    if (t > util::days(7)) t = 0;
    benchmark::DoNotOptimize(m->position(static_cast<std::size_t>(t) % 50, t));
  }
}
BENCHMARK(BM_MobilityPositionLookup);

static void BM_EncounterScan(benchmark::State& state) {
  util::Rng rng(2);
  auto nodes = static_cast<std::size_t>(state.range(0));
  sim::RandomWaypointParams params;
  params.area = {2000, 2000};
  auto m = sim::random_waypoint(nodes, 4000, params, rng);
  sim::Scheduler sched;
  sim::EncounterDetector det(sched, *m, 50.0, 30.0);
  for (auto _ : state) {
    sched.schedule_in(30.0, [] {});
    sched.step();
    det.scan();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(nodes));
}
BENCHMARK(BM_EncounterScan)->Arg(50)->Arg(200)->Arg(1000);

static void BM_TrajectoryGeneration(benchmark::State& state) {
  for (auto _ : state) {
    util::Rng rng(3);
    benchmark::DoNotOptimize(sim::daily_routine(10, util::days(7), {}, rng));
  }
}
BENCHMARK(BM_TrajectoryGeneration);

BENCHMARK_MAIN();
