// Crypto substrate microbenchmarks: the primitives every D2D session and
// bundle transfer pays for (hashing, AEAD, DH, signatures).
#include <benchmark/benchmark.h>

#include <cstring>

#include "crypto/aead.hpp"
#include "crypto/drbg.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/hkdf.hpp"
#include "crypto/sc25519.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"
#include "crypto/x25519.hpp"
#include "util/bytes.hpp"

using namespace sos;

namespace {
util::Bytes make_data(std::size_t n) {
  crypto::Drbg d(util::to_bytes("bench-data"));
  return d.generate(n);
}
}  // namespace

static void BM_Sha256(benchmark::State& state) {
  auto data = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

static void BM_Sha512(benchmark::State& state) {
  auto data = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(crypto::Sha512::hash(data));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha512)->Arg(64)->Arg(1024)->Arg(65536);

static void BM_AeadSeal(benchmark::State& state) {
  auto data = make_data(static_cast<std::size_t>(state.range(0)));
  std::uint8_t key[32] = {1}, nonce[12] = {2};
  for (auto _ : state)
    benchmark::DoNotOptimize(crypto::aead_seal(key, nonce, util::to_bytes("aad"), data));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AeadSeal)->Arg(64)->Arg(1024)->Arg(65536);

static void BM_AeadOpen(benchmark::State& state) {
  auto data = make_data(static_cast<std::size_t>(state.range(0)));
  std::uint8_t key[32] = {1}, nonce[12] = {2};
  auto sealed = crypto::aead_seal(key, nonce, util::to_bytes("aad"), data);
  for (auto _ : state)
    benchmark::DoNotOptimize(crypto::aead_open(key, nonce, util::to_bytes("aad"), sealed));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AeadOpen)->Arg(1024)->Arg(65536);

static void BM_X25519SharedSecret(benchmark::State& state) {
  crypto::Drbg d(util::to_bytes("x"));
  auto a = crypto::x25519_clamp(d.generate_array<32>());
  auto b_pub = crypto::x25519_base(crypto::x25519_clamp(d.generate_array<32>()));
  for (auto _ : state) benchmark::DoNotOptimize(crypto::x25519(a, b_pub));
}
BENCHMARK(BM_X25519SharedSecret);

static void BM_Ed25519Keygen(benchmark::State& state) {
  crypto::Drbg d(util::to_bytes("kg"));
  auto seed = d.generate_array<32>();
  for (auto _ : state) benchmark::DoNotOptimize(crypto::Ed25519Keypair::from_seed(seed));
}
BENCHMARK(BM_Ed25519Keygen);

static void BM_Ed25519Sign(benchmark::State& state) {
  crypto::Drbg d(util::to_bytes("sig"));
  auto kp = crypto::Ed25519Keypair::from_seed(d.generate_array<32>());
  auto msg = make_data(256);
  for (auto _ : state) benchmark::DoNotOptimize(kp.sign(msg));
}
BENCHMARK(BM_Ed25519Sign);

static void BM_Ed25519Verify(benchmark::State& state) {
  crypto::Drbg d(util::to_bytes("ver"));
  auto kp = crypto::Ed25519Keypair::from_seed(d.generate_array<32>());
  auto msg = make_data(256);
  auto sig = kp.sign(msg);
  for (auto _ : state)
    benchmark::DoNotOptimize(crypto::ed25519_verify(kp.public_key(), msg, sig));
}
BENCHMARK(BM_Ed25519Verify);

static void BM_Ed25519VerifyBatch(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  crypto::Drbg d(util::to_bytes("batch"));
  std::vector<util::Bytes> msgs;
  msgs.reserve(n);
  std::vector<crypto::EdBatchItem> items;
  for (std::size_t i = 0; i < n; ++i) {
    auto kp = crypto::Ed25519Keypair::from_seed(d.generate_array<32>());
    msgs.push_back(d.generate(256));
    items.push_back({kp.public_key(), msgs.back(), kp.sign(msgs.back())});
  }
  for (auto _ : state) benchmark::DoNotOptimize(crypto::ed25519_verify_batch(items));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Ed25519VerifyBatch)->Arg(4)->Arg(16)->Arg(64);

static void BM_ScMul(benchmark::State& state) {
  // Scalar multiply mod L (Karatsuba 256x256 + fold reduction): the scalar
  // work inside every signature and batch-verify coefficient.
  crypto::Drbg d(util::to_bytes("scmul"));
  std::uint8_t wide[64];
  auto wa = d.generate(64), wb = d.generate(64);
  std::memcpy(wide, wa.data(), 64);
  crypto::Scalar a = crypto::sc_reduce64(wide);
  std::memcpy(wide, wb.data(), 64);
  crypto::Scalar b = crypto::sc_reduce64(wide);
  for (auto _ : state) {
    a = crypto::sc_mul(a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_ScMul);

static void BM_Hkdf(benchmark::State& state) {
  auto ikm = make_data(32);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        crypto::hkdf(util::to_bytes("salt"), ikm, util::to_bytes("info"), 64));
}
BENCHMARK(BM_Hkdf);

BENCHMARK_MAIN();
