// Fig 4d — per-subscription delivery-ratio CDF of the Gainesville study
// plus the §VI-B scalar results (deliveries, 1-hop share). For every
// subscription (follower -> publisher) the ratio is
// delivered(follower, publisher) / posts(publisher); the paper reads the
// complementary CDF at ratio 0.7 / 0.8 for the "All" and "1-hop" series.
#include <cstdio>

#include "deploy/report.hpp"
#include "deploy/sweep.hpp"

using namespace sos;

int main(int argc, char** argv) {
  deploy::print_heading("Fig 4d: per-subscription delivery ratio CDF (Gainesville study)");

  deploy::SweepOptions opts = deploy::sweep_options_from_args(argc, argv);
  opts.derive_seeds = false;  // keep the calibrated Gainesville seed
  deploy::SweepRunner runner(opts);
  deploy::SweepCell cell;
  cell.config = deploy::gainesville_config("interest");
  auto results = runner.run({cell});
  const deploy::ScenarioResult& result = results[0].result;
  const auto& oracle = result.oracle;

  auto all = oracle.subscription_ratio_cdf(false);
  auto one_hop = oracle.subscription_ratio_cdf(true);

  deploy::Table cdf({"ratio >", "All: frac of subscriptions", "1-hop: frac of subscriptions"});
  for (double r : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    cdf.add_row({deploy::fmt(r, 1), deploy::fmt(all.fraction_above(r), 3),
                 deploy::fmt(one_hop.fraction_above(r), 3)});
  }
  cdf.print();

  deploy::Table paper({"checkpoint", "paper", "measured"});
  paper.add_row(deploy::compare_row("All:   P[ratio > 0.8]", 0.30, all.fraction_above(0.8)));
  paper.add_row(deploy::compare_row("All:   P[ratio > 0.7]", 0.50, all.fraction_above(0.7)));
  paper.add_row(
      deploy::compare_row("1-hop: P[ratio >= 0.8]", 0.25, 1.0 - one_hop.at(0.8 - 1e-9)));
  paper.add_row(deploy::compare_row("1-hop share of deliveries", 0.826,
                                    oracle.one_hop_fraction()));
  paper.add_row(deploy::compare_row("unique posts", 259, (double)oracle.post_count(), 0));
  paper.add_row(
      deploy::compare_row("D2D deliveries", 967, (double)oracle.delivery_count(), 0));
  paper.add_row(
      deploy::compare_row("subscriptions", 46, (double)oracle.subscription_count(), 0));
  paper.print();

  std::printf("overall delivery ratio: %.3f (paper: ~0.81 = 967 of ~1190 deliverable)\n",
              oracle.overall_delivery_ratio());
  std::printf("hop histogram:");
  for (const auto& [hops, count] : oracle.hop_histogram())
    std::printf("  %d-hop: %zu", hops, count);
  std::printf("\n");
  return 0;
}
