// Scheme ablation (SecIII-B): Epidemic vs Interest-Based vs Spray-and-Wait
// vs Direct Delivery on the identical Gainesville workload and mobility.
// Shows the trade the routing manager's modularity is for: epidemic
// maximizes delivery at maximal overhead, IB matches it closely while only
// touching interested nodes, direct is the 1-hop floor.
#include <cstdio>
#include <string>
#include <vector>

#include "deploy/report.hpp"
#include "deploy/scenario.hpp"
#include "util/time.hpp"

using namespace sos;

int main() {
  deploy::print_heading("Scheme ablation: identical workload, four routing schemes");

  deploy::Table t({"scheme", "deliveries", "delivery ratio", "median delay", "P[<=24h]",
                   "1-hop share", "bundles sent", "wire MB", "connections"});

  for (const std::string& scheme : {"epidemic", "interest", "spray", "direct"}) {
    auto config = deploy::gainesville_config(scheme);
    auto result = deploy::run_scenario(config);
    const auto& oracle = result.oracle;
    auto delays = oracle.delay_cdf(false);
    t.add_row({scheme, std::to_string(oracle.delivery_count()),
               deploy::fmt(oracle.overall_delivery_ratio(), 3),
               util::format_duration(delays.quantile(0.5)),
               deploy::fmt(delays.at(util::hours(24)), 3),
               deploy::fmt(oracle.one_hop_fraction(), 3),
               std::to_string(result.totals.bundles_sent),
               deploy::fmt(static_cast<double>(result.wire_bytes) / 1e6, 2),
               std::to_string(result.connections)});
  }
  t.print();

  std::printf("expected ordering: epidemic >= interest > spray > direct on delivery;\n"
              "direct has the lowest overhead and a 1-hop share of 1.0 by construction;\n"
              "epidemic pays for its delivery edge with the most transmissions.\n");
  return 0;
}
