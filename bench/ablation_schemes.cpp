// Scheme ablation (SecIII-B): Epidemic vs Interest-Based vs Spray-and-Wait
// vs Direct Delivery on the identical Gainesville workload and mobility.
// Shows the trade the routing manager's modularity is for: epidemic
// maximizes delivery at maximal overhead, IB matches it closely while only
// touching interested nodes, direct is the 1-hop floor.
//
// All variants replay one recorded contact trace through deploy::SweepRunner
// — identical encounters by construction, not just identical seeds — and
// run in parallel with --jobs N. A second sweep measures the
// SosConfig::verify_batch_window_s tradeoff: batching received bundles into
// one signature pass buys verify throughput at the price of dissemination
// latency bounded by the window.
#include <cstdio>
#include <string>
#include <vector>

#include "deploy/report.hpp"
#include "deploy/sweep.hpp"
#include "util/time.hpp"

using namespace sos;

int main(int argc, char** argv) {
  deploy::SweepOptions opts = deploy::sweep_options_from_args(argc, argv);
  deploy::SweepRunner runner(opts);

  deploy::print_heading("Scheme ablation: identical workload, four routing schemes");

  deploy::SweepCell cell;
  cell.label = "";
  cell.config = deploy::gainesville_config("interest");
  cell.variants = {
      {"epidemic", "epidemic", 86400.0, 0.0},
      {"interest", "interest", 86400.0, 0.0},
      {"spray", "spray", 86400.0, 0.0},
      {"direct", "direct", 86400.0, 0.0},
  };
  auto results = runner.run({cell});

  deploy::Table t({"scheme", "deliveries", "delivery ratio", "median delay", "P[<=24h]",
                   "1-hop share", "bundles sent", "wire MB", "connections"});
  for (const auto& r : results) {
    const auto& oracle = r.result.oracle;
    auto delays = oracle.delay_cdf(false);
    t.set_row(r.variant, {r.label, std::to_string(oracle.delivery_count()),
                          deploy::fmt(oracle.overall_delivery_ratio(), 3),
                          util::format_duration(delays.quantile(0.5)),
                          deploy::fmt(delays.at(util::hours(24)), 3),
                          deploy::fmt(oracle.one_hop_fraction(), 3),
                          std::to_string(r.result.totals.bundles_sent),
                          deploy::fmt(static_cast<double>(r.result.wire_bytes) / 1e6, 2),
                          std::to_string(r.result.connections)});
  }
  t.print();

  std::printf("expected ordering: epidemic >= interest > spray > direct on delivery;\n"
              "direct has the lowest overhead and a 1-hop share of 1.0 by construction;\n"
              "epidemic pays for its delivery edge with the most transmissions.\n");

  // --- verify-batch-window sweep ------------------------------------------
  // Same world again (recorded once, replayed for every window) under the
  // chatty epidemic scheme, where re-receptions make signature work the
  // per-encounter bottleneck. The window defers delivery by up to its
  // length but converts single verifies into batch passes.
  deploy::print_heading("Verify-batch window: dissemination latency vs verify throughput");

  deploy::SweepCell batch;
  batch.label = "";
  batch.config = deploy::gainesville_config("epidemic");
  batch.variants = {
      {"window 0s (sync)", "epidemic", 86400.0, 0.0, false},
      {"window 5s", "epidemic", 86400.0, 5.0, false},
      {"window 5s", "epidemic", 86400.0, 5.0, true},
      {"window 30s", "epidemic", 86400.0, 30.0, false},
      {"window 30s", "epidemic", 86400.0, 30.0, true},
  };
  auto batch_results = runner.run({batch});

  deploy::Table bt({"verify batch", "adaptive", "deliveries", "median delay", "P[<=24h]",
                    "batch passes", "batch fallbacks", "sig verifies", "interrupted",
                    "wall s"});
  for (const auto& r : batch_results) {
    const auto& oracle = r.result.oracle;
    const auto& s = r.result.totals;
    auto delays = oracle.delay_cdf(false);
    bt.set_row(r.variant,
               {r.label, r.config.verify_batch_adaptive ? "yes" : "no",
                std::to_string(oracle.delivery_count()),
                util::format_duration(delays.quantile(0.5)),
                deploy::fmt(delays.at(util::hours(24)), 3),
                std::to_string(s.bundle_batch_verifies),
                std::to_string(s.bundle_batch_fallbacks),
                std::to_string(s.bundle_sig_cache_misses),
                std::to_string(s.transfers_interrupted), deploy::fmt(r.wall_s, 2)});
  }
  bt.print();
  std::printf("the window defers each bundle's verification (and hence store/forward)\n"
              "by up to its length — visible as a right-shifted delay CDF — while the\n"
              "batch passes amortize the Ed25519 double-scalar work across the burst.\n"
              "Adaptive flushing closes the window's failure mode: entries whose\n"
              "session drops mid-window are verified and delivered on the spot instead\n"
              "of dying with the transfer, so long windows keep their batching without\n"
              "sacrificing deliveries when encounters are short.\n");
  return 0;
}
