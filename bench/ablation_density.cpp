// Density ablation — the paper closes §VI-B noting that its 10 nodes in
// 88 km^2 is far sparser than typical DTN simulations (50-100 nodes in
// 0.25-4 km^2) and that "further investigations at higher densities are
// needed". This bench performs that investigation: node-count and area
// sweeps under IB routing.
#include <cstdio>
#include <string>

#include "deploy/report.hpp"
#include "deploy/scenario.hpp"
#include "util/time.hpp"

using namespace sos;

namespace {
void run_cell(deploy::Table& t, std::size_t nodes, double w_m, double h_m, double days) {
  deploy::ScenarioConfig config = deploy::gainesville_config("interest");
  config.nodes = nodes;
  config.area_w_m = w_m;
  config.area_h_m = h_m;
  config.days = days;
  // Keep per-user posting volume constant as the population grows.
  config.total_posts_target = 26.0 * static_cast<double>(nodes);
  auto result = deploy::run_scenario(config);
  const auto& oracle = result.oracle;
  auto delays = oracle.delay_cdf(false);
  double density = static_cast<double>(nodes) / (w_m / 1000.0 * h_m / 1000.0);
  t.add_row({std::to_string(nodes), deploy::fmt(w_m / 1000.0 * h_m / 1000.0, 1),
             deploy::fmt(density, 2), std::to_string(result.contacts),
             std::to_string(oracle.delivery_count()),
             deploy::fmt(oracle.overall_delivery_ratio(), 3),
             delays.empty() ? "-" : util::format_duration(delays.quantile(0.5)),
             deploy::fmt(oracle.one_hop_fraction(), 3)});
}
}  // namespace

int main() {
  deploy::print_heading("Density ablation (the paper's suggested follow-up)");

  std::printf("3-day runs, IB routing, ~26 posts/user/week equivalent.\n\n");
  deploy::Table t({"nodes", "area km^2", "nodes/km^2", "encounters", "deliveries",
                   "delivery ratio", "median delay", "1-hop share"});

  // Paper's own operating point (sparse) down to simulation-dense setups.
  run_cell(t, 10, 11000, 8000, 3);   // the deployment: 0.11 nodes/km^2
  run_cell(t, 20, 11000, 8000, 3);
  run_cell(t, 50, 11000, 8000, 3);
  run_cell(t, 20, 4000, 4000, 3);    // mid density
  run_cell(t, 50, 2000, 2000, 3);    // "typical DTN sim": 12.5 nodes/km^2
  run_cell(t, 100, 2000, 2000, 3);
  t.print();

  std::printf("shape: encounters and deliveries scale superlinearly with density and\n"
              "the 1-hop share falls (relaying takes over), while median delay stays at\n"
              "day-scale — under human daily routines the *schedule*, not spatial\n"
              "density, binds delivery latency. Higher density buys reach (more\n"
              "subscribers served, more relay paths), not speed: exactly the regime\n"
              "distinction the paper asks future work to quantify.\n");
  return 0;
}
