// Density ablation — the paper closes §VI-B noting that its 10 nodes in
// 88 km^2 is far sparser than typical DTN simulations (50-100 nodes in
// 0.25-4 km^2) and that "further investigations at higher densities are
// needed". This bench performs that investigation: node-count and area
// sweeps under IB routing, plus the recurring-pair session-churn sweep.
// All cells run on deploy::SweepRunner (pass --jobs N to parallelize;
// --episode-jobs M additionally replays each cell on the episode-
// partitioned engine, --subepisode-jobs M on the finer contact-strand
// engine; metrics are bitwise identical on every engine and at any thread
// count).
#include <chrono>
#include <cstdio>
#include <string>

#include "deploy/report.hpp"
#include "deploy/sweep.hpp"
#include "util/time.hpp"

using namespace sos;

namespace {
void density_row(deploy::Table& t, std::size_t row, const deploy::CellResult& r) {
  const auto& oracle = r.result.oracle;
  auto delays = oracle.delay_cdf(false);
  double w_m = r.config.area_w_m, h_m = r.config.area_h_m;
  double area_km2 = w_m / 1000.0 * h_m / 1000.0;
  double density = static_cast<double>(r.config.nodes) / area_km2;
  // Sessions that skipped the X25519 + cert exchange on a recurring contact.
  double resume_share = r.result.totals.sessions_established == 0
                            ? 0.0
                            : static_cast<double>(r.result.totals.sessions_resumed) /
                                  static_cast<double>(r.result.totals.sessions_established);
  t.set_row(row, {r.label, std::to_string(r.config.nodes), deploy::fmt(area_km2, 1),
                  deploy::fmt(density, 2), std::to_string(r.result.contacts),
                  std::to_string(oracle.delivery_count()),
                  deploy::fmt(oracle.overall_delivery_ratio(), 3),
                  delays.empty() ? "-" : util::format_duration(delays.quantile(0.5)),
                  deploy::fmt(oracle.one_hop_fraction(), 3), deploy::fmt(resume_share, 2),
                  deploy::fmt(r.episode_parallelism, 2),
                  deploy::fmt(r.subepisode_parallelism, 2),
                  std::to_string(r.subepisode_width), deploy::fmt(r.wall_s, 2)});
}
}  // namespace

int main(int argc, char** argv) {
  deploy::SweepOptions opts = deploy::sweep_options_from_args(argc, argv);
  deploy::SweepRunner runner(opts);

  deploy::print_heading("Density ablation (the paper's suggested follow-up)");

  std::printf("3-day runs, IB routing, ~26 posts/user/week equivalent; %zu sweep\n"
              "worker(s), per-cell seeds derived via splitmix64 from base seed %llu.\n"
              "Recurring contacts resume cached sessions (resume share below);\n"
              "set ScenarioVariant::resume_lifetime_s = 0 for the full-handshake-\n"
              "per-contact baseline.\n\n",
              runner.options().jobs,
              static_cast<unsigned long long>(runner.options().base_seed));

  // Paper's own operating point (sparse) down to simulation-dense setups.
  std::vector<deploy::SweepCell> grid = deploy::density_ablation_grid(3.0);
  auto wall0 = std::chrono::steady_clock::now();
  auto results = runner.run(grid);
  double sweep_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();

  deploy::Table t({"cell", "nodes", "area km^2", "nodes/km^2", "encounters", "deliveries",
                   "delivery ratio", "median delay", "1-hop share", "resumed",
                   "parallelism", "dag par", "dag width", "cell s"});
  for (const auto& r : results) density_row(t, r.cell, r);
  t.print();
  std::printf("sweep wall-clock: %.2f s (%zu cells, %zu worker(s), trace replay %s)\n",
              sweep_wall, grid.size(), runner.options().jobs,
              runner.options().reuse_traces ? "on" : "off");

  std::printf("shape: encounters and deliveries scale superlinearly with density and\n"
              "the 1-hop share falls (relaying takes over), while median delay stays at\n"
              "day-scale — under human daily routines the *schedule*, not spatial\n"
              "density, binds delivery latency. Higher density buys reach (more\n"
              "subscribers served, more relay paths), not speed: exactly the regime\n"
              "distinction the paper asks future work to quantify.\n");

  // --- session-churn sweep: the resumption ablation --------------------------
  // Recurring-pair-heavy shape: a dense deployment over a full week with
  // almost no content, so per-encounter session setup (cert exchange +
  // X25519 + key schedule) dominates and most contacts are re-contacts.
  // Epidemic and PRoPHET reconnect pairs hardest (any pair with undelivered
  // content re-handshakes at every meeting), so resumption is measured
  // under both — one shared recorded world, four replayed variants.
  deploy::print_heading("Session churn (recurring-pair sweep: epidemic & prophet)");
  std::printf("7-day runs, 40 nodes / 1 km^2, 20 posts total: contact setup\n"
              "dominates. Resumption lifetime 2 days (covers the daily routine's\n"
              "day-boundary re-contacts) vs. full handshake per contact.\n\n");

  deploy::SweepCell churn;
  churn.label = "churn";
  churn.config = deploy::gainesville_config("epidemic");
  churn.config.nodes = 40;
  churn.config.area_w_m = 1000;
  churn.config.area_h_m = 1000;
  churn.config.days = 7;
  churn.config.total_posts_target = 20.0;
  churn.variants = {
      {"epidemic/resume off", "epidemic", 0.0, 0.0},
      {"epidemic/resume on", "epidemic", 172800.0, 0.0},
      {"prophet/resume off", "prophet", 0.0, 0.0},
      {"prophet/resume on", "prophet", 172800.0, 0.0},
  };

  auto churn_results = runner.run({churn});
  deploy::Table ct({"variant", "sessions", "full handshakes", "resumed", "resume share",
                    "X25519 ops", "wall s"});
  for (const auto& r : churn_results) {
    const auto& s = r.result.totals;
    double share = s.sessions_established == 0
                       ? 0.0
                       : static_cast<double>(s.sessions_resumed) /
                             static_cast<double>(s.sessions_established);
    ct.set_row(r.variant, {r.label, std::to_string(s.sessions_established),
                           std::to_string(s.full_handshakes),
                           std::to_string(s.sessions_resumed), deploy::fmt(share, 2),
                           std::to_string(s.ecdh_ops), deploy::fmt(r.wall_s, 2)});
  }
  ct.print();
  std::printf("epidemic/prophet reconnect the same pairs far harder than IB routing\n"
              "(every undelivered bundle is a reason to meet again), so the resumed\n"
              "share here is the protocol's best case.\n");
  return 0;
}
