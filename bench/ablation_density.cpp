// Density ablation — the paper closes §VI-B noting that its 10 nodes in
// 88 km^2 is far sparser than typical DTN simulations (50-100 nodes in
// 0.25-4 km^2) and that "further investigations at higher densities are
// needed". This bench performs that investigation: node-count and area
// sweeps under IB routing.
#include <chrono>
#include <cstdio>
#include <string>

#include "deploy/report.hpp"
#include "deploy/scenario.hpp"
#include "util/time.hpp"

using namespace sos;

namespace {
void run_cell(deploy::Table& t, std::size_t nodes, double w_m, double h_m, double days) {
  deploy::ScenarioConfig config = deploy::gainesville_config("interest");
  config.nodes = nodes;
  config.area_w_m = w_m;
  config.area_h_m = h_m;
  config.days = days;
  // Keep per-user posting volume constant as the population grows.
  config.total_posts_target = 26.0 * static_cast<double>(nodes);
  auto result = deploy::run_scenario(config);
  const auto& oracle = result.oracle;
  auto delays = oracle.delay_cdf(false);
  double density = static_cast<double>(nodes) / (w_m / 1000.0 * h_m / 1000.0);
  // Sessions that skipped the X25519 + cert exchange on a recurring contact.
  double resume_share = result.totals.sessions_established == 0
                            ? 0.0
                            : static_cast<double>(result.totals.sessions_resumed) /
                                  static_cast<double>(result.totals.sessions_established);
  t.add_row({std::to_string(nodes), deploy::fmt(w_m / 1000.0 * h_m / 1000.0, 1),
             deploy::fmt(density, 2), std::to_string(result.contacts),
             std::to_string(oracle.delivery_count()),
             deploy::fmt(oracle.overall_delivery_ratio(), 3),
             delays.empty() ? "-" : util::format_duration(delays.quantile(0.5)),
             deploy::fmt(oracle.one_hop_fraction(), 3), deploy::fmt(resume_share, 2)});
}
}  // namespace

int main() {
  deploy::print_heading("Density ablation (the paper's suggested follow-up)");

  std::printf("3-day runs, IB routing, ~26 posts/user/week equivalent.\n"
              "Recurring contacts resume cached sessions (resume share below);\n"
              "set ScenarioConfig::resume_lifetime_s = 0 for the full-handshake-\n"
              "per-contact baseline.\n\n");
  deploy::Table t({"nodes", "area km^2", "nodes/km^2", "encounters", "deliveries",
                   "delivery ratio", "median delay", "1-hop share", "resumed"});

  // Paper's own operating point (sparse) down to simulation-dense setups.
  run_cell(t, 10, 11000, 8000, 3);   // the deployment: 0.11 nodes/km^2
  run_cell(t, 20, 11000, 8000, 3);
  run_cell(t, 50, 11000, 8000, 3);
  run_cell(t, 20, 4000, 4000, 3);    // mid density
  run_cell(t, 50, 2000, 2000, 3);    // "typical DTN sim": 12.5 nodes/km^2
  run_cell(t, 100, 2000, 2000, 3);
  t.print();

  std::printf("shape: encounters and deliveries scale superlinearly with density and\n"
              "the 1-hop share falls (relaying takes over), while median delay stays at\n"
              "day-scale — under human daily routines the *schedule*, not spatial\n"
              "density, binds delivery latency. Higher density buys reach (more\n"
              "subscribers served, more relay paths), not speed: exactly the regime\n"
              "distinction the paper asks future work to quantify.\n");

  // --- session-churn sweep: the resumption ablation --------------------------
  // Recurring-pair-heavy shape: a dense epidemic deployment over a full week
  // with almost no content, so per-encounter session setup (cert exchange +
  // X25519 + key schedule) dominates and most contacts are re-contacts.
  deploy::print_heading("Session churn (recurring-pair sweep)");
  std::printf("7-day epidemic runs, 40 nodes / 1 km^2, 20 posts total: contact\n"
              "setup dominates. Resumption lifetime 2 days (covers the daily\n"
              "routine's day-boundary re-contacts).\n\n");
  deploy::Table churn({"resumption", "sessions", "full handshakes", "resumed",
                       "X25519 ops", "wall s"});
  for (bool resume_on : {false, true}) {
    deploy::ScenarioConfig config = deploy::gainesville_config("epidemic");
    config.nodes = 40;
    config.area_w_m = 1000;
    config.area_h_m = 1000;
    config.days = 7;
    config.total_posts_target = 20.0;
    config.resume_lifetime_s = resume_on ? 172800.0 : 0.0;
    auto t0 = std::chrono::steady_clock::now();
    auto result = deploy::run_scenario(config);
    double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    churn.add_row({resume_on ? "on" : "off",
                   std::to_string(result.totals.sessions_established),
                   std::to_string(result.totals.full_handshakes),
                   std::to_string(result.totals.sessions_resumed),
                   std::to_string(result.totals.ecdh_ops), deploy::fmt(wall, 2)});
  }
  churn.print();
  return 0;
}
