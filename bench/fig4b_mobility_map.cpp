// Fig 4b — the activity map of the deployment: where messages were created
// (blue in the paper) and where they were passed user-to-user (red).
// Renders both as ASCII heat maps over the ~11 km x 8 km study area and
// prints coverage statistics.
#include <cstdio>

#include "deploy/report.hpp"
#include "deploy/scenario.hpp"

using namespace sos;

int main() {
  deploy::print_heading("Fig 4b: message generation & dissemination map (~11km x 8km)");

  auto config = deploy::gainesville_config("interest");
  auto result = deploy::run_scenario(config);
  const auto& oracle = result.oracle;

  const std::size_t nx = 64, ny = 24;
  auto blue = oracle.creation_map(config.area_w_m, config.area_h_m, nx, ny);
  auto red = oracle.dissemination_map(config.area_w_m, config.area_h_m, nx, ny);

  std::printf("message generation (paper: blue), %llu events:\n%s\n",
              static_cast<unsigned long long>(blue.total()), blue.render().c_str());
  std::printf("message dissemination (paper: red), %llu events:\n%s\n",
              static_cast<unsigned long long>(red.total()), red.render().c_str());

  deploy::Table t({"statistic", "generation", "dissemination"});
  t.add_row({"events", std::to_string(blue.total()), std::to_string(red.total())});
  t.add_row({"cell occupancy", deploy::fmt(blue.occupancy(), 3), deploy::fmt(red.occupancy(), 3)});
  t.print();

  std::printf("expected shape: generation is scattered (posting happens at homes all\n"
              "over the city); dissemination clusters at the shared gathering places\n"
              "where D2D encounters occur — matching the paper's blue-vs-red contrast.\n");
  return 0;
}
