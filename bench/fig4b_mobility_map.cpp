// Fig 4b — the activity map of the deployment: where messages were created
// (blue in the paper) and where they were passed user-to-user (red).
// Renders both as ASCII heat maps over the ~11 km x 8 km study area and
// prints coverage statistics.
#include <cstdio>

#include "deploy/report.hpp"
#include "deploy/sweep.hpp"

using namespace sos;

int main(int argc, char** argv) {
  deploy::print_heading("Fig 4b: message generation & dissemination map (~11km x 8km)");

  deploy::SweepOptions opts = deploy::sweep_options_from_args(argc, argv);
  opts.derive_seeds = false;  // keep the calibrated Gainesville seed
  deploy::SweepRunner runner(opts);
  deploy::SweepCell cell;
  cell.config = deploy::gainesville_config("interest");
  auto results = runner.run({cell});
  const deploy::ScenarioConfig& config = results[0].config;
  const deploy::ScenarioResult& result = results[0].result;
  const auto& oracle = result.oracle;

  const std::size_t nx = 64, ny = 24;
  auto blue = oracle.creation_map(config.area_w_m, config.area_h_m, nx, ny);
  auto red = oracle.dissemination_map(config.area_w_m, config.area_h_m, nx, ny);

  std::printf("message generation (paper: blue), %llu events:\n%s\n",
              static_cast<unsigned long long>(blue.total()), blue.render().c_str());
  std::printf("message dissemination (paper: red), %llu events:\n%s\n",
              static_cast<unsigned long long>(red.total()), red.render().c_str());

  deploy::Table t({"statistic", "generation", "dissemination"});
  t.add_row({"events", std::to_string(blue.total()), std::to_string(red.total())});
  t.add_row({"cell occupancy", deploy::fmt(blue.occupancy(), 3), deploy::fmt(red.occupancy(), 3)});
  t.print();

  std::printf("expected shape: generation is scattered (posting happens at homes all\n"
              "over the city); dissemination clusters at the shared gathering places\n"
              "where D2D encounters occur — matching the paper's blue-vs-red contrast.\n");
  return 0;
}
