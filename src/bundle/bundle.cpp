#include "bundle/bundle.hpp"

#include "util/codec.hpp"

namespace sos::bundle {

util::Bytes Bundle::signing_bytes() const {
  util::Writer w;
  w.str("sos-bundle-v1");
  w.raw(origin.view());
  w.u32(msg_num);
  w.f64(creation_ts);
  w.u32(lifetime_s);
  w.u8(static_cast<std::uint8_t>(content));
  w.raw(dest.view());
  w.bytes(payload);
  return w.take();
}

void Bundle::sign(const crypto::Ed25519Keypair& origin_keys) {
  signature = origin_keys.sign(signing_bytes());
}

bool Bundle::verify(const crypto::EdPublicKey& origin_key) const {
  return crypto::ed25519_verify(origin_key, signing_bytes(), signature);
}

util::Bytes Bundle::encode() const {
  util::Writer w;
  w.raw(origin.view());
  w.u32(msg_num);
  w.f64(creation_ts);
  w.u32(lifetime_s);
  w.u8(static_cast<std::uint8_t>(content));
  w.raw(dest.view());
  w.u8(hop_count);
  w.bytes(payload);
  w.raw(util::ByteView(signature.data(), signature.size()));
  return w.take();
}

std::optional<Bundle> Bundle::decode(util::ByteView data) {
  util::Reader r(data);
  Bundle b;
  b.origin.bytes = r.raw_array<pki::kUserIdSize>();
  b.msg_num = r.u32();
  b.creation_ts = r.f64();
  b.lifetime_s = r.u32();
  auto content = r.u8();
  if (content > static_cast<std::uint8_t>(ContentType::ControlAction)) return std::nullopt;
  b.content = static_cast<ContentType>(content);
  b.dest.bytes = r.raw_array<pki::kUserIdSize>();
  b.hop_count = r.u8();
  b.payload = r.bytes();
  b.signature = r.raw_array<crypto::kEdSignatureSize>();
  if (!r.done()) return std::nullopt;
  return b;
}

}  // namespace sos::bundle
