// DTN bundle: the unit every routing scheme stores and forwards. A bundle
// is identified by (origin user id, per-user message number) — exactly the
// pair the paper's discovery dictionary advertises — and carries an Ed25519
// origin signature so any receiver can "verify the originating source of
// the information being forwarded and ensure that data have not been
// modified" (§IV) without infrastructure.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>

#include "crypto/ed25519.hpp"
#include "pki/certificate.hpp"
#include "pki/identity.hpp"
#include "util/bytes.hpp"
#include "util/time.hpp"

namespace sos::bundle {

enum class ContentType : std::uint8_t {
  SocialPost = 0,     // publish/subscribe payload (AlleyOop posts)
  DirectMessage = 1,  // unicast, payload end-to-end encrypted for dest
  ControlAction = 2,  // app control records (e.g. follow/unfollow sync)
};

struct BundleId {
  pki::UserId origin;
  std::uint32_t msg_num = 0;

  auto operator<=>(const BundleId&) const = default;
};

struct Bundle {
  pki::UserId origin;              // publisher's 10-byte user id
  std::uint32_t msg_num = 0;       // per-publisher sequence number
  util::SimTime creation_ts = 0;
  std::uint32_t lifetime_s = 0;    // 0 = no expiry
  ContentType content = ContentType::SocialPost;
  pki::UserId dest;                // all-zero for pub/sub posts
  std::uint8_t hop_count = 0;      // incremented per D2D hop (not signed)
  util::Bytes payload;
  crypto::EdSignature signature{}; // origin's signature over signing_bytes()

  BundleId id() const { return {origin, msg_num}; }

  /// Immutable fields covered by the origin signature. hop_count is
  /// per-copy relay metadata and deliberately excluded.
  util::Bytes signing_bytes() const;

  void sign(const crypto::Ed25519Keypair& origin_keys);
  bool verify(const crypto::EdPublicKey& origin_key) const;

  bool expired(util::SimTime now) const {
    return lifetime_s > 0 && now > creation_ts + static_cast<double>(lifetime_s);
  }
  bool is_unicast() const { return !dest.is_zero(); }

  util::Bytes encode() const;
  static std::optional<Bundle> decode(util::ByteView data);
};

}  // namespace sos::bundle
