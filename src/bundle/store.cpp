#include "bundle/store.hpp"

#include <limits>

namespace sos::bundle {

bool BundleStore::insert(Bundle b, util::SimTime now) {
  BundleId id = b.id();
  if (bundles_.count(id) > 0) {
    ++duplicates_;
    return false;
  }
  StoredBundle stored{std::move(b), now, 0};
  stored.hops_on_arrival = stored.bundle.hop_count;
  by_creation_.emplace(stored.bundle.creation_ts, id);
  bundles_.emplace(id, std::move(stored));
  evict_if_needed();
  return true;
}

bool BundleStore::contains(const BundleId& id) const {
  return bundles_.count(id) > 0;
}

std::optional<Bundle> BundleStore::get(const BundleId& id) const {
  auto it = bundles_.find(id);
  if (it == bundles_.end()) return std::nullopt;
  return it->second.bundle;
}

std::map<pki::UserId, std::uint32_t> BundleStore::summary() const {
  std::map<pki::UserId, std::uint32_t> out;
  for (const auto& [id, stored] : bundles_) {
    auto [it, inserted] = out.emplace(id.origin, id.msg_num);
    if (!inserted && id.msg_num > it->second) it->second = id.msg_num;
  }
  return out;
}

std::vector<Bundle> BundleStore::newer_than(const pki::UserId& origin,
                                            std::uint32_t after) const {
  std::vector<Bundle> out;
  // Nothing can be newer than the maximum message number — and `after + 1`
  // would wrap to 0 and rescan the origin's whole range.
  if (after == std::numeric_limits<std::uint32_t>::max()) return out;
  // BundleId ordering is (origin, msg_num), so this is a range scan.
  auto it = bundles_.lower_bound(BundleId{origin, after + 1});
  for (; it != bundles_.end() && it->first.origin == origin; ++it)
    out.push_back(it->second.bundle);
  return out;
}

std::vector<const StoredBundle*> BundleStore::all() const {
  std::vector<const StoredBundle*> out;
  out.reserve(bundles_.size());
  for (const auto& [id, stored] : bundles_) out.push_back(&stored);
  return out;
}

std::size_t BundleStore::expire(util::SimTime now) {
  std::size_t removed = 0;
  for (auto it = bundles_.begin(); it != bundles_.end();) {
    if (it->second.bundle.expired(now)) {
      by_creation_.erase({it->second.bundle.creation_ts, it->first});
      it = bundles_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

void BundleStore::remove(const BundleId& id) {
  auto it = bundles_.find(id);
  if (it == bundles_.end()) return;
  by_creation_.erase({it->second.bundle.creation_ts, id});
  bundles_.erase(it);
}

void BundleStore::evict_if_needed() {
  while (bundles_.size() > capacity_) {
    // Evict the oldest bundle by creation time (drop-head policy); the
    // creation-time index makes this O(log n) per eviction.
    auto oldest = by_creation_.begin();
    bundles_.erase(oldest->second);
    by_creation_.erase(oldest);
    ++evicted_;
  }
}

}  // namespace sos::bundle
