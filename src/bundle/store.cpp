#include "bundle/store.hpp"

#include <limits>

#include "util/codec.hpp"

namespace sos::bundle {

bool BundleStore::insert(Bundle b, util::SimTime now) {
  BundleId id = b.id();
  if (bundles_.count(id) > 0) {
    ++duplicates_;
    return false;
  }
  StoredBundle stored{std::move(b), now, 0};
  stored.hops_on_arrival = stored.bundle.hop_count;
  if (stored.bundle.is_unicast()) ++unicast_count_;
  by_creation_.emplace(stored.bundle.creation_ts, id);
  bundles_.emplace(id, std::move(stored));
  auto& held = summary_[id.origin];
  if (id.msg_num > held) held = id.msg_num;
  evict_if_needed();
  return true;
}

bool BundleStore::contains(const BundleId& id) const {
  return bundles_.count(id) > 0;
}

std::optional<Bundle> BundleStore::get(const BundleId& id) const {
  auto it = bundles_.find(id);
  if (it == bundles_.end()) return std::nullopt;
  return it->second.bundle;
}

void BundleStore::refresh_summary(const pki::UserId& origin) {
  // Everything from `origin` sits in one contiguous bundles_ range; its
  // last element (if any) holds the surviving maximum message number.
  auto next = bundles_.lower_bound(
      BundleId{origin, std::numeric_limits<std::uint32_t>::max()});
  if (next != bundles_.end() && next->first.origin == origin) {
    summary_[origin] = next->first.msg_num;
    return;
  }
  if (next != bundles_.begin()) {
    auto last = std::prev(next);
    if (last->first.origin == origin) {
      summary_[origin] = last->first.msg_num;
      return;
    }
  }
  summary_.erase(origin);
}

void BundleStore::on_removed(const StoredBundle& stored) {
  if (stored.bundle.is_unicast()) --unicast_count_;
}

std::vector<Bundle> BundleStore::newer_than(const pki::UserId& origin,
                                            std::uint32_t after) const {
  std::vector<Bundle> out;
  // Nothing can be newer than the maximum message number — and `after + 1`
  // would wrap to 0 and rescan the origin's whole range.
  if (after == std::numeric_limits<std::uint32_t>::max()) return out;
  // BundleId ordering is (origin, msg_num), so this is a range scan.
  auto it = bundles_.lower_bound(BundleId{origin, after + 1});
  for (; it != bundles_.end() && it->first.origin == origin; ++it)
    out.push_back(it->second.bundle);
  return out;
}

std::vector<const StoredBundle*> BundleStore::all() const {
  std::vector<const StoredBundle*> out;
  out.reserve(bundles_.size());
  for (const auto& [id, stored] : bundles_) out.push_back(&stored);
  return out;
}

std::size_t BundleStore::expire(util::SimTime now) {
  std::size_t removed = 0;
  for (auto it = bundles_.begin(); it != bundles_.end();) {
    if (it->second.bundle.expired(now)) {
      pki::UserId origin = it->first.origin;
      by_creation_.erase({it->second.bundle.creation_ts, it->first});
      on_removed(it->second);
      it = bundles_.erase(it);
      refresh_summary(origin);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

void BundleStore::remove(const BundleId& id) {
  auto it = bundles_.find(id);
  if (it == bundles_.end()) return;
  by_creation_.erase({it->second.bundle.creation_ts, id});
  on_removed(it->second);
  bundles_.erase(it);
  refresh_summary(id.origin);
}

void BundleStore::save_state(util::Writer& w) const {
  w.varint(bundles_.size());
  for (const auto& [id, stored] : bundles_) {
    // encode() covers hop_count, but hops_on_arrival is receive-time
    // metadata the wire format never carries — saved explicitly.
    w.bytes(stored.bundle.encode());
    w.f64(stored.received_at);
    w.u8(stored.hops_on_arrival);
  }
  w.u64(evicted_);
  w.u64(duplicates_);
}

bool BundleStore::load_state(util::Reader& r) {
  std::uint64_t n = r.varint();
  std::map<BundleId, StoredBundle> bundles;
  std::set<std::pair<util::SimTime, BundleId>> by_creation;
  std::map<pki::UserId, std::uint32_t> summary;
  std::size_t unicast = 0;
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    util::Bytes enc = r.bytes();
    double received_at = r.f64();
    std::uint8_t hops = r.u8();
    if (!r.ok()) return false;
    auto b = Bundle::decode(enc);
    if (!b) return false;
    BundleId id = b->id();
    if (b->is_unicast()) ++unicast;
    by_creation.emplace(b->creation_ts, id);
    auto& held = summary[id.origin];
    if (id.msg_num > held) held = id.msg_num;
    bundles.emplace(id, StoredBundle{std::move(*b), received_at, hops});
  }
  std::uint64_t evicted = r.u64();
  std::uint64_t duplicates = r.u64();
  if (!r.ok()) return false;
  bundles_ = std::move(bundles);
  by_creation_ = std::move(by_creation);
  summary_ = std::move(summary);
  unicast_count_ = unicast;
  evicted_ = evicted;
  duplicates_ = duplicates;
  return true;
}

void BundleStore::evict_if_needed() {
  while (bundles_.size() > capacity_) {
    // Evict the oldest bundle by creation time (drop-head policy); the
    // creation-time index makes this O(log n) per eviction.
    auto oldest = by_creation_.begin();
    auto it = bundles_.find(oldest->second);
    pki::UserId origin = oldest->second.origin;
    if (it != bundles_.end()) {
      on_removed(it->second);
      bundles_.erase(it);
    }
    by_creation_.erase(oldest);
    refresh_summary(origin);
    ++evicted_;
  }
}

}  // namespace sos::bundle
