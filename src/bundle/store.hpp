// Bundle store: per-device persistent buffer of carried bundles. Provides
// the two queries the SOS protocol needs — the advertisement summary
// (UserID -> latest MessageNumber, Fig 2b) and "everything from user U
// newer than sequence N" (the request a browsing node sends). Handles
// duplicate suppression, TTL expiry and capacity eviction.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "bundle/bundle.hpp"

namespace sos::util {
class Writer;
class Reader;
}  // namespace sos::util

namespace sos::bundle {

struct StoredBundle {
  Bundle bundle;
  util::SimTime received_at = 0;
  std::uint8_t hops_on_arrival = 0;
};

class BundleStore {
 public:
  explicit BundleStore(std::size_t capacity = 10000) : capacity_(capacity) {}

  /// Insert if new; returns false for duplicates (same origin + msg_num).
  bool insert(Bundle b, util::SimTime now);

  bool contains(const BundleId& id) const;
  std::optional<Bundle> get(const BundleId& id) const;
  std::size_t size() const { return bundles_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Highest message number held per publisher — the plain-text
  /// advertisement dictionary content. Maintained incrementally on
  /// insert/remove/expire/evict: routing schemes query it on every
  /// forwarding decision, and rebuilding it per call dominated dense
  /// scenario sweeps.
  const std::map<pki::UserId, std::uint32_t>& summary() const { return summary_; }

  /// Unicast bundles currently held (lets advertisement builders skip the
  /// full-store unicast scan in the common all-pub/sub workload).
  std::size_t unicast_count() const { return unicast_count_; }

  /// All bundles from `origin` with msg_num > after, ascending.
  std::vector<Bundle> newer_than(const pki::UserId& origin, std::uint32_t after) const;

  /// Every held bundle (routing schemes iterate for forwarding decisions).
  std::vector<const StoredBundle*> all() const;

  /// Drop bundles whose lifetime elapsed; returns number removed.
  std::size_t expire(util::SimTime now);

  void remove(const BundleId& id);
  std::uint64_t evicted_count() const { return evicted_; }
  std::uint64_t duplicate_count() const { return duplicates_; }

  /// Reboot-with-store-loss: drop every held bundle and index entry. The
  /// eviction/duplicate counters survive — they are lifetime statistics,
  /// not store contents.
  void clear() {
    bundles_.clear();
    by_creation_.clear();
    summary_.clear();
    unicast_count_ = 0;
  }

  /// Checkpoint contents + lifetime counters (capacity is configuration and
  /// stays with the owner). load_state rebuilds every secondary index from
  /// the serialized bundles; on malformed input it returns false leaving
  /// the store untouched.
  void save_state(util::Writer& w) const;
  bool load_state(util::Reader& r);

 private:
  void evict_if_needed();
  /// Re-derive one publisher's summary entry after a removal (O(log n):
  /// BundleId ordering is (origin, msg_num), so the surviving max is the
  /// last element of the origin's range).
  void refresh_summary(const pki::UserId& origin);
  void on_removed(const StoredBundle& stored);

  std::map<BundleId, StoredBundle> bundles_;
  // Secondary index ordered by creation time: drop-head eviction pops the
  // oldest bundle in O(log n) instead of scanning the whole store.
  std::set<std::pair<util::SimTime, BundleId>> by_creation_;
  std::map<pki::UserId, std::uint32_t> summary_;
  std::size_t unicast_count_ = 0;
  std::size_t capacity_;
  std::uint64_t evicted_ = 0;
  std::uint64_t duplicates_ = 0;
};

}  // namespace sos::bundle
