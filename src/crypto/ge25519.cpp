#include "crypto/ge25519.hpp"

#include <algorithm>
#include <array>

namespace sos::crypto {

namespace {

// One extra digit above bit 255 so borrow-carries from the top window of a
// full 256-bit scalar land somewhere instead of being dropped.
constexpr int kSlideDigits = 257;

// Signed sliding-window recoding: digits are odd, |digit| <= max_digit,
// and consecutive non-zero digits are at least `span` bits apart. r must
// hold kSlideDigits entries.
void slide(signed char* r, const std::uint8_t a[32], int max_digit, int span) {
  for (int i = 0; i < 256; ++i) r[i] = 1 & (a[i >> 3] >> (i & 7));
  r[256] = 0;
  for (int i = 0; i < 256; ++i) {
    if (!r[i]) continue;
    for (int b = 1; b <= span && i + b < 256; ++b) {
      if (!r[i + b]) continue;
      if (r[i] + (r[i + b] << b) <= max_digit) {
        r[i] = static_cast<signed char>(r[i] + (r[i + b] << b));
        r[i + b] = 0;
      } else if (r[i] - (r[i + b] << b) >= -max_digit) {
        r[i] = static_cast<signed char>(r[i] - (r[i + b] << b));
        for (int k = i + b; k < kSlideDigits; ++k) {
          if (!r[k]) {
            r[k] = 1;
            break;
          }
          r[k] = 0;
        }
      } else {
        break;
      }
    }
  }
}

int top_nonzero(const signed char* r) {
  for (int i = kSlideDigits - 1; i >= 0; --i)
    if (r[i]) return i;
  return -1;
}

// Odd multiples P, 3P, 5P, ..., (2n-1)P in cached form.
template <std::size_t N>
std::array<GeCached, N> odd_multiples(const GeP3& p) {
  std::array<GeCached, N> out;
  out[0] = ge_to_cached(p);
  GeCached p2 = ge_to_cached(ge_double(p));
  GeP3 cur = p;
  for (std::size_t i = 1; i < N; ++i) {
    cur = ge_add(cur, p2);
    out[i] = ge_to_cached(cur);
  }
  return out;
}

// Fixed-base table: for each 4-bit window i of the scalar, the multiples
// d * 16^i * B for d = 1..15. Built once at startup; scalarmult_base is
// then 64 cached additions with no doublings at all.
struct BaseTable {
  GeCached win[64][15];
};

const BaseTable& base_table() {
  static const BaseTable table = [] {
    BaseTable t;
    GeP3 p = ge_base();  // 16^i * B
    for (int i = 0; i < 64; ++i) {
      GeCached pc = ge_to_cached(p);
      GeP3 acc = p;
      t.win[i][0] = pc;
      for (int d = 2; d <= 15; ++d) {
        acc = ge_add(acc, pc);
        t.win[i][d - 1] = ge_to_cached(acc);
      }
      for (int k = 0; k < 4; ++k) p = ge_double(p);
    }
    return t;
  }();
  return table;
}

// Odd multiples of B up to 63B for the wide-window base half of the
// Straus/Shamir verification pass.
const std::array<GeCached, 32>& base_odd_multiples() {
  static const std::array<GeCached, 32> table = odd_multiples<32>(ge_base());
  return table;
}

}  // namespace

GeP3 ge_identity() {
  return GeP3{kFeZero, kFeOne, kFeOne, kFeZero};
}

bool ge_is_identity(const GeP3& p) {
  return fe_is_zero(p.X) && fe_equal(p.Y, p.Z);
}

GeP3 ge_neg(const GeP3& p) {
  return GeP3{fe_neg(p.X), p.Y, p.Z, fe_neg(p.T)};
}

GeCached ge_to_cached(const GeP3& p) {
  return GeCached{fe_add(p.Y, p.X), fe_sub(p.Y, p.X), p.Z, fe_mul(p.T, fe_edwards_2d())};
}

// Unified addition (add-2008-hwcd-3 for a = -1) with a cached addend.
GeP3 ge_add(const GeP3& p, const GeCached& q) {
  Fe a = fe_mul(fe_add(p.Y, p.X), q.YplusX);
  Fe b = fe_mul(fe_sub(p.Y, p.X), q.YminusX);
  Fe c = fe_mul(q.T2d, p.T);
  Fe zz = fe_mul(p.Z, q.Z);
  Fe d = fe_add(zz, zz);
  Fe e = fe_sub(a, b);
  Fe f = fe_sub(d, c);
  Fe g = fe_add(d, c);
  Fe h = fe_add(a, b);
  return GeP3{fe_mul(e, f), fe_mul(h, g), fe_mul(g, f), fe_mul(e, h)};
}

GeP3 ge_sub(const GeP3& p, const GeCached& q) {
  Fe a = fe_mul(fe_add(p.Y, p.X), q.YminusX);
  Fe b = fe_mul(fe_sub(p.Y, p.X), q.YplusX);
  Fe c = fe_mul(q.T2d, p.T);
  Fe zz = fe_mul(p.Z, q.Z);
  Fe d = fe_add(zz, zz);
  Fe e = fe_sub(a, b);
  Fe f = fe_add(d, c);
  Fe g = fe_sub(d, c);
  Fe h = fe_add(a, b);
  return GeP3{fe_mul(e, f), fe_mul(h, g), fe_mul(g, f), fe_mul(e, h)};
}

// Doubling (dbl-2008-hwcd).
GeP3 ge_double(const GeP3& p) {
  Fe xx = fe_sq(p.X);
  Fe yy = fe_sq(p.Y);
  Fe zz2 = fe_add(fe_sq(p.Z), fe_sq(p.Z));
  Fe xy2 = fe_sub(fe_sub(fe_sq(fe_add(p.X, p.Y)), yy), xx);  // 2XY
  Fe yy_plus_xx = fe_add(yy, xx);
  Fe yy_minus_xx = fe_sub(yy, xx);
  Fe t = fe_sub(zz2, yy_minus_xx);
  return GeP3{fe_mul(xy2, t), fe_mul(yy_plus_xx, yy_minus_xx), fe_mul(yy_minus_xx, t),
              fe_mul(xy2, yy_plus_xx)};
}

void ge_tobytes(std::uint8_t s[32], const GeP3& p) {
  Fe zinv = fe_invert(p.Z);
  Fe x = fe_mul(p.X, zinv);
  Fe y = fe_mul(p.Y, zinv);
  fe_tobytes(s, y);
  s[31] ^= static_cast<std::uint8_t>(fe_is_negative(x) << 7);
}

bool ge_frombytes(GeP3& out, const std::uint8_t s[32]) {
  Fe y = fe_frombytes(s);
  int sign = s[31] >> 7;

  Fe yy = fe_sq(y);
  Fe u = fe_sub(yy, kFeOne);                          // y^2 - 1
  Fe v = fe_add(fe_mul(yy, fe_edwards_d()), kFeOne);  // d y^2 + 1

  // x = u v^3 (u v^7)^((p-5)/8)
  Fe v3 = fe_mul(fe_sq(v), v);
  Fe v7 = fe_mul(fe_sq(v3), v);
  Fe x = fe_mul(fe_mul(u, v3), fe_pow_p58(fe_mul(u, v7)));

  Fe vxx = fe_mul(v, fe_sq(x));
  if (!fe_equal(vxx, u)) {
    if (!fe_equal(vxx, fe_neg(u))) return false;
    x = fe_mul(x, fe_sqrt_m1());
  }
  if (fe_is_zero(x) && sign == 1) return false;
  if (fe_is_negative(x) != sign) x = fe_neg(x);

  out.X = x;
  out.Y = y;
  out.Z = kFeOne;
  out.T = fe_mul(x, y);
  return true;
}

const GeP3& ge_base() {
  static const GeP3 base = [] {
    // y = 4/5 mod p, sign(x) = 0.
    Fe y = fe_mul(fe_from_u64(4), fe_invert(fe_from_u64(5)));
    std::uint8_t enc[32];
    fe_tobytes(enc, y);  // sign bit already 0
    GeP3 b{};
    bool ok = ge_frombytes(b, enc);
    (void)ok;
    return b;
  }();
  return base;
}

GeP3 ge_scalarmult_base(const std::uint8_t scalar[32]) {
  const BaseTable& table = base_table();
  GeP3 r = ge_identity();
  for (int i = 0; i < 64; ++i) {
    int digit = (scalar[i / 2] >> (4 * (i & 1))) & 0x0f;
    if (digit) r = ge_add(r, table.win[i][digit - 1]);
  }
  return r;
}

GeP3 ge_scalarmult_vartime(const GeP3& p, const std::uint8_t scalar[32]) {
  signed char digits[kSlideDigits];
  slide(digits, scalar, 15, 6);
  auto odd = odd_multiples<8>(p);

  GeP3 r = ge_identity();
  int top = top_nonzero(digits);
  for (int i = top; i >= 0; --i) {
    r = ge_double(r);
    if (digits[i] > 0)
      r = ge_add(r, odd[digits[i] / 2]);
    else if (digits[i] < 0)
      r = ge_sub(r, odd[-digits[i] / 2]);
  }
  return r;
}

GeP3 ge_double_scalarmult_base_vartime(const std::uint8_t s[32], const GeP3& a,
                                       const std::uint8_t k[32]) {
  signed char sdig[kSlideDigits], kdig[kSlideDigits];
  slide(sdig, s, 63, 8);  // wide window: the B table is precomputed
  slide(kdig, k, 15, 6);
  const auto& btab = base_odd_multiples();
  auto atab = odd_multiples<8>(a);

  GeP3 r = ge_identity();
  int top = std::max(top_nonzero(sdig), top_nonzero(kdig));
  for (int i = top; i >= 0; --i) {
    r = ge_double(r);
    if (sdig[i] > 0)
      r = ge_add(r, btab[sdig[i] / 2]);
    else if (sdig[i] < 0)
      r = ge_sub(r, btab[-sdig[i] / 2]);
    if (kdig[i] > 0)
      r = ge_add(r, atab[kdig[i] / 2]);
    else if (kdig[i] < 0)
      r = ge_sub(r, atab[-kdig[i] / 2]);
  }
  return r;
}

GeP3 ge_multi_scalarmult_vartime(const std::vector<std::pair<Scalar, GeP3>>& terms) {
  const std::size_t n = terms.size();
  std::vector<std::array<signed char, kSlideDigits>> digits(n);
  std::vector<std::array<GeCached, 8>> tables(n);
  int top = -1;
  for (std::size_t t = 0; t < n; ++t) {
    slide(digits[t].data(), terms[t].first.data(), 15, 6);
    tables[t] = odd_multiples<8>(terms[t].second);
    top = std::max(top, top_nonzero(digits[t].data()));
  }

  GeP3 r = ge_identity();
  for (int i = top; i >= 0; --i) {
    r = ge_double(r);
    for (std::size_t t = 0; t < n; ++t) {
      signed char d = digits[t][static_cast<std::size_t>(i)];
      if (d > 0)
        r = ge_add(r, tables[t][d / 2]);
      else if (d < 0)
        r = ge_sub(r, tables[t][-d / 2]);
    }
  }
  return r;
}

GeP3 ge_scalarmult_generic(const GeP3& p, const std::uint8_t scalar[32]) {
  GeCached pc = ge_to_cached(p);
  GeP3 r = ge_identity();
  for (int i = 255; i >= 0; --i) {
    r = ge_double(r);
    if ((scalar[i / 8] >> (i % 8)) & 1) r = ge_add(r, pc);
  }
  return r;
}

}  // namespace sos::crypto
