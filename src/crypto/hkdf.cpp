#include "crypto/hkdf.hpp"

#include "crypto/hmac.hpp"

namespace sos::crypto {

util::Bytes hkdf_extract(util::ByteView salt, util::ByteView ikm) {
  auto prk = hmac_sha256(salt, ikm);
  return util::Bytes(prk.begin(), prk.end());
}

util::Bytes hkdf_expand(util::ByteView prk, util::ByteView info, std::size_t len) {
  util::Bytes okm;
  okm.reserve(len);
  util::Bytes t;
  std::uint8_t counter = 1;
  while (okm.size() < len) {
    util::Bytes block = t;
    util::append(block, info);
    block.push_back(counter++);
    auto d = hmac_sha256(prk, block);
    t.assign(d.begin(), d.end());
    std::size_t take = std::min<std::size_t>(t.size(), len - okm.size());
    okm.insert(okm.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return okm;
}

util::Bytes hkdf(util::ByteView salt, util::ByteView ikm, util::ByteView info, std::size_t len) {
  return hkdf_expand(hkdf_extract(salt, ikm), info, len);
}

}  // namespace sos::crypto
