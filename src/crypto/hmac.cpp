#include "crypto/hmac.hpp"

#include <cstring>

namespace sos::crypto {

namespace {
template <typename Hash>
typename Hash::Digest hmac_impl(util::ByteView key, util::ByteView msg) {
  std::uint8_t k[Hash::kBlockSize] = {0};
  if (key.size() > Hash::kBlockSize) {
    auto d = Hash::hash(key);
    std::memcpy(k, d.data(), d.size());
  } else if (!key.empty()) {
    // Empty keys are legal (HKDF-Extract with no salt): memcpy from a
    // null data() pointer is UB even at size 0.
    std::memcpy(k, key.data(), key.size());
  }
  std::uint8_t ipad[Hash::kBlockSize], opad[Hash::kBlockSize];
  for (std::size_t i = 0; i < Hash::kBlockSize; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }
  Hash inner;
  inner.update(util::ByteView(ipad, Hash::kBlockSize));
  inner.update(msg);
  auto inner_digest = inner.finish();
  Hash outer;
  outer.update(util::ByteView(opad, Hash::kBlockSize));
  outer.update(util::ByteView(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}
}  // namespace

Sha256::Digest hmac_sha256(util::ByteView key, util::ByteView msg) {
  return hmac_impl<Sha256>(key, msg);
}

Sha512::Digest hmac_sha512(util::ByteView key, util::ByteView msg) {
  return hmac_impl<Sha512>(key, msg);
}

}  // namespace sos::crypto
