#include "crypto/fe25519.hpp"

#include <cstring>

namespace sos::crypto {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

namespace {
constexpr u64 kMask51 = (1ULL << 51) - 1;

// 8*p in limb form: keeps subtraction results positive for inputs < 2^54.
constexpr u64 k8P0 = (kMask51 + 1 - 19) * 8;  // 8*(2^51-19)
constexpr u64 k8P = kMask51 * 8;              // 8*(2^51-1)

void carry_reduce(u64 t[5]) {
  // Two passes bring any sum of products / biased subtraction into
  // limbs < 2^52; callers needing canonical form use fe_tobytes.
  for (int pass = 0; pass < 2; ++pass) {
    u64 c;
    c = t[0] >> 51;
    t[0] &= kMask51;
    t[1] += c;
    c = t[1] >> 51;
    t[1] &= kMask51;
    t[2] += c;
    c = t[2] >> 51;
    t[2] &= kMask51;
    t[3] += c;
    c = t[3] >> 51;
    t[3] &= kMask51;
    t[4] += c;
    c = t[4] >> 51;
    t[4] &= kMask51;
    t[0] += 19 * c;
  }
}
}  // namespace

const Fe kFeZero = {{0, 0, 0, 0, 0}};
const Fe kFeOne = {{1, 0, 0, 0, 0}};

Fe fe_from_u64(u64 x) {
  Fe f = {{x & kMask51, (x >> 51), 0, 0, 0}};
  return f;
}

Fe fe_frombytes(const std::uint8_t s[32]) {
  Fe f;
  f.v[0] = util::load64_le(s) & kMask51;
  f.v[1] = (util::load64_le(s + 6) >> 3) & kMask51;
  f.v[2] = (util::load64_le(s + 12) >> 6) & kMask51;
  f.v[3] = (util::load64_le(s + 19) >> 1) & kMask51;
  f.v[4] = (util::load64_le(s + 24) >> 12) & kMask51;
  return f;
}

void fe_tobytes(std::uint8_t s[32], const Fe& f) {
  u64 t[5];
  std::memcpy(t, f.v, sizeof(t));
  carry_reduce(t);
  carry_reduce(t);
  // Now 0 <= value < 2^255. Subtract p if value >= p, i.e. if value+19 has
  // bit 255 set.
  u64 q[5];
  std::memcpy(q, t, sizeof(q));
  q[0] += 19;
  for (int i = 0; i < 4; ++i) {
    q[i + 1] += q[i] >> 51;
    q[i] &= kMask51;
  }
  u64 carry = q[4] >> 51;
  if (carry) {
    q[4] &= kMask51;
    std::memcpy(t, q, sizeof(q));
  }
  // Serialize 5x51-bit limbs into 32 bytes LE.
  std::uint8_t out[32] = {0};
  u128 acc = 0;
  int bits = 0;
  int idx = 0;
  for (int limb = 0; limb < 5; ++limb) {
    acc |= (u128)t[limb] << bits;
    bits += 51;
    while (bits >= 8 && idx < 32) {
      out[idx++] = (std::uint8_t)acc;
      acc >>= 8;
      bits -= 8;
    }
  }
  while (idx < 32) {
    out[idx++] = (std::uint8_t)acc;
    acc >>= 8;
  }
  std::memcpy(s, out, 32);
}

Fe fe_add(const Fe& a, const Fe& b) {
  Fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + b.v[i];
  carry_reduce(r.v);
  return r;
}

Fe fe_sub(const Fe& a, const Fe& b) {
  Fe r;
  r.v[0] = a.v[0] + k8P0 - b.v[0];
  for (int i = 1; i < 5; ++i) r.v[i] = a.v[i] + k8P - b.v[i];
  carry_reduce(r.v);
  return r;
}

Fe fe_neg(const Fe& a) {
  return fe_sub(kFeZero, a);
}

Fe fe_mul(const Fe& a, const Fe& b) {
  u128 t0 = (u128)a.v[0] * b.v[0] + (u128)(19 * a.v[1]) * b.v[4] + (u128)(19 * a.v[2]) * b.v[3] +
            (u128)(19 * a.v[3]) * b.v[2] + (u128)(19 * a.v[4]) * b.v[1];
  u128 t1 = (u128)a.v[0] * b.v[1] + (u128)a.v[1] * b.v[0] + (u128)(19 * a.v[2]) * b.v[4] +
            (u128)(19 * a.v[3]) * b.v[3] + (u128)(19 * a.v[4]) * b.v[2];
  u128 t2 = (u128)a.v[0] * b.v[2] + (u128)a.v[1] * b.v[1] + (u128)a.v[2] * b.v[0] +
            (u128)(19 * a.v[3]) * b.v[4] + (u128)(19 * a.v[4]) * b.v[3];
  u128 t3 = (u128)a.v[0] * b.v[3] + (u128)a.v[1] * b.v[2] + (u128)a.v[2] * b.v[1] +
            (u128)a.v[3] * b.v[0] + (u128)(19 * a.v[4]) * b.v[4];
  u128 t4 = (u128)a.v[0] * b.v[4] + (u128)a.v[1] * b.v[3] + (u128)a.v[2] * b.v[2] +
            (u128)a.v[3] * b.v[1] + (u128)a.v[4] * b.v[0];

  Fe r;
  u64 c;
  r.v[0] = (u64)t0 & kMask51;
  c = (u64)(t0 >> 51);
  t1 += c;
  r.v[1] = (u64)t1 & kMask51;
  c = (u64)(t1 >> 51);
  t2 += c;
  r.v[2] = (u64)t2 & kMask51;
  c = (u64)(t2 >> 51);
  t3 += c;
  r.v[3] = (u64)t3 & kMask51;
  c = (u64)(t3 >> 51);
  t4 += c;
  r.v[4] = (u64)t4 & kMask51;
  c = (u64)(t4 >> 51);
  r.v[0] += 19 * c;
  c = r.v[0] >> 51;
  r.v[0] &= kMask51;
  r.v[1] += c;
  return r;
}

Fe fe_sq(const Fe& a) {
  // Dedicated squaring: 15 u128 products instead of fe_mul's 25. Doubling
  // chains in the Ed25519 hot path are squaring-dominated, so this matters.
  u64 a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3], a4 = a.v[4];
  u64 d0 = 2 * a0, d1 = 2 * a1, d2 = 2 * a2;
  u64 a3_19 = 19 * a3, a4_19 = 19 * a4;

  u128 t0 = (u128)a0 * a0 + (u128)d1 * a4_19 + (u128)d2 * a3_19;
  u128 t1 = (u128)d0 * a1 + (u128)d2 * a4_19 + (u128)a3 * a3_19;
  u128 t2 = (u128)d0 * a2 + (u128)a1 * a1 + (u128)(2 * a3) * a4_19;
  u128 t3 = (u128)d0 * a3 + (u128)d1 * a2 + (u128)a4 * a4_19;
  u128 t4 = (u128)d0 * a4 + (u128)d1 * a3 + (u128)a2 * a2;

  Fe r;
  u64 c;
  r.v[0] = (u64)t0 & kMask51;
  c = (u64)(t0 >> 51);
  t1 += c;
  r.v[1] = (u64)t1 & kMask51;
  c = (u64)(t1 >> 51);
  t2 += c;
  r.v[2] = (u64)t2 & kMask51;
  c = (u64)(t2 >> 51);
  t3 += c;
  r.v[3] = (u64)t3 & kMask51;
  c = (u64)(t3 >> 51);
  t4 += c;
  r.v[4] = (u64)t4 & kMask51;
  c = (u64)(t4 >> 51);
  r.v[0] += 19 * c;
  c = r.v[0] >> 51;
  r.v[0] &= kMask51;
  r.v[1] += c;
  return r;
}

Fe fe_mul121666(const Fe& a) {
  u128 t[5];
  for (int i = 0; i < 5; ++i) t[i] = (u128)a.v[i] * 121666;
  Fe r;
  u64 c;
  r.v[0] = (u64)t[0] & kMask51;
  c = (u64)(t[0] >> 51);
  t[1] += c;
  r.v[1] = (u64)t[1] & kMask51;
  c = (u64)(t[1] >> 51);
  t[2] += c;
  r.v[2] = (u64)t[2] & kMask51;
  c = (u64)(t[2] >> 51);
  t[3] += c;
  r.v[3] = (u64)t[3] & kMask51;
  c = (u64)(t[3] >> 51);
  t[4] += c;
  r.v[4] = (u64)t[4] & kMask51;
  c = (u64)(t[4] >> 51);
  r.v[0] += 19 * c;
  return r;
}

namespace {
// Square-and-multiply with a big-endian exponent; exponent is public
// (p-2 or (p-5)/8), so variable-time scanning is fine.
Fe fe_pow(const Fe& base, const std::uint8_t* exp_be, std::size_t len) {
  Fe result = kFeOne;
  bool started = false;
  for (std::size_t i = 0; i < len; ++i) {
    for (int bit = 7; bit >= 0; --bit) {
      if (started) result = fe_sq(result);
      if ((exp_be[i] >> bit) & 1) {
        if (started)
          result = fe_mul(result, base);
        else {
          result = base;
          started = true;
        }
      } else if (!started) {
        continue;
      }
    }
  }
  return result;
}

// (p - 1) / 4 = 2^253 - 5, big-endian (for sqrt(-1) = 2^((p-1)/4)).
const std::uint8_t kPm1Q[32] = {
    0x1f, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
    0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
    0xff, 0xfb};

Fe fe_sq_times(Fe a, int n) {
  for (int i = 0; i < n; ++i) a = fe_sq(a);
  return a;
}

// Shared prefix of the inversion / sqrt addition chains: a^(2^250 - 1).
// The exponents p-2 and (p-5)/8 are runs of ones, so the classic chain
// (254 squarings + 11 multiplies) replaces fe_pow's multiply-per-set-bit
// scan -- inversion drops from ~500 to ~265 field operations.
Fe fe_pow_2e250m1(const Fe& z) {
  Fe z2 = fe_sq(z);                          // z^2
  Fe z9 = fe_mul(fe_sq_times(z2, 2), z);     // z^9
  Fe z11 = fe_mul(z9, z2);                   // z^11
  Fe z_5_0 = fe_mul(fe_sq(z11), z9);         // z^(2^5 - 1)
  Fe z_10_0 = fe_mul(fe_sq_times(z_5_0, 5), z_5_0);       // z^(2^10 - 1)
  Fe z_20_0 = fe_mul(fe_sq_times(z_10_0, 10), z_10_0);    // z^(2^20 - 1)
  Fe z_40_0 = fe_mul(fe_sq_times(z_20_0, 20), z_20_0);    // z^(2^40 - 1)
  Fe z_50_0 = fe_mul(fe_sq_times(z_40_0, 10), z_10_0);    // z^(2^50 - 1)
  Fe z_100_0 = fe_mul(fe_sq_times(z_50_0, 50), z_50_0);   // z^(2^100 - 1)
  Fe z_200_0 = fe_mul(fe_sq_times(z_100_0, 100), z_100_0);  // z^(2^200 - 1)
  return fe_mul(fe_sq_times(z_200_0, 50), z_50_0);        // z^(2^250 - 1)
}
}  // namespace

Fe fe_invert(const Fe& a) {
  // a^(p-2) = a^(2^255 - 21) = (a^(2^250 - 1))^(2^5) * a^11.
  Fe z11 = fe_mul(fe_mul(fe_sq_times(fe_sq(a), 2), a), fe_sq(a));
  return fe_mul(fe_sq_times(fe_pow_2e250m1(a), 5), z11);
}

Fe fe_pow_p58(const Fe& a) {
  // a^((p-5)/8) = a^(2^252 - 3) = (a^(2^250 - 1))^(2^2) * a.
  return fe_mul(fe_sq_times(fe_pow_2e250m1(a), 2), a);
}

bool fe_is_zero(const Fe& a) {
  std::uint8_t s[32];
  fe_tobytes(s, a);
  std::uint8_t acc = 0;
  for (auto b : s) acc |= b;
  return acc == 0;
}

int fe_is_negative(const Fe& a) {
  std::uint8_t s[32];
  fe_tobytes(s, a);
  return s[0] & 1;
}

bool fe_equal(const Fe& a, const Fe& b) {
  std::uint8_t sa[32], sb[32];
  fe_tobytes(sa, a);
  fe_tobytes(sb, b);
  // sos-lint: allow(memcmp-public) every fe_equal caller compares public
  // curve coordinates during verification; no secret scalar reaches here.
  return std::memcmp(sa, sb, 32) == 0;
}

void fe_cswap(Fe& a, Fe& b, std::uint64_t bit) {
  u64 mask = 0 - bit;
  for (int i = 0; i < 5; ++i) {
    u64 x = mask & (a.v[i] ^ b.v[i]);
    a.v[i] ^= x;
    b.v[i] ^= x;
  }
}

const Fe& fe_sqrt_m1() {
  static const Fe value = fe_pow(fe_from_u64(2), kPm1Q, 32);
  return value;
}

const Fe& fe_edwards_d() {
  // d = -121665/121666 mod p
  static const Fe value = fe_mul(fe_neg(fe_from_u64(121665)), fe_invert(fe_from_u64(121666)));
  return value;
}

const Fe& fe_edwards_2d() {
  static const Fe value = fe_add(fe_edwards_d(), fe_edwards_d());
  return value;
}

}  // namespace sos::crypto
