// Deterministic random byte generator (ChaCha20-based). All key material in
// simulations derives from the scenario seed so every run is reproducible;
// a fresh fork() per node keeps streams independent.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace sos::util {
class Writer;
class Reader;
}  // namespace sos::util

namespace sos::crypto {

class Drbg {
 public:
  explicit Drbg(util::ByteView seed);
  Drbg(const Drbg&) = default;
  Drbg& operator=(const Drbg&) = default;
  Drbg(Drbg&&) = default;
  Drbg& operator=(Drbg&&) = default;
  ~Drbg() { util::secure_wipe(key_, sizeof(key_)); }

  /// Fill `out` with the next `len` pseudo-random bytes.
  void generate(std::uint8_t* out, std::size_t len);
  util::Bytes generate(std::size_t len);

  template <std::size_t N>
  std::array<std::uint8_t, N> generate_array() {
    std::array<std::uint8_t, N> out;
    generate(out.data(), out.size());
    return out;
  }

  /// Derive an independent child generator (label separates domains).
  Drbg fork(util::ByteView label);

  /// Checkpoint the full generator state (key + counter): a restored Drbg
  /// continues the byte stream exactly where the saved one stopped.
  void save_state(util::Writer& w) const;
  bool load_state(util::Reader& r);

 private:
  std::uint8_t key_[32];
  std::uint64_t counter_ = 0;
};

}  // namespace sos::crypto
