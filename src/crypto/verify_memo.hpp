// VerifyMemo: a cross-node memo of Ed25519 verification verdicts for
// deterministic replay engines. In a scenario replay every node re-verifies
// the same (public key, message, signature) triples — each distinct bundle
// and certificate is checked once per carrying node — yet the verdict is a
// pure function of the triple. Sharing one memo across all simulated nodes
// (and across episode worker threads) collapses that redundancy without
// changing any simulated metric: per-node counters still record the checks
// the real device would perform; only the simulator skips recomputing the
// curve math. Safe under concurrency because a late writer stores the same
// verdict an earlier writer did.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <optional>
#include <unordered_map>

#include "crypto/ed25519.hpp"
#include "util/mutex.hpp"

namespace sos::crypto {

class VerifyMemo {
 public:
  /// `max_entries` bounds how many verdicts the memo will hold in total
  /// (rounded down to a per-shard quota, at least one per shard): past the
  /// bound new verdicts are computed but not stored, so a memo scoped to a
  /// whole sweep cell can never grow unbounded. The default comfortably
  /// covers every distinct signature a multi-variant cell produces.
  explicit VerifyMemo(std::size_t max_entries = kShards * kDefaultShardCap);
  VerifyMemo(const VerifyMemo&) = delete;
  VerifyMemo& operator=(const VerifyMemo&) = delete;

  using Key = std::array<std::uint8_t, 32>;  // SHA-256 of pub || msg || sig
  static Key key_of(const EdPublicKey& pub, util::ByteView msg, const EdSignature& sig);

  /// Memoized ed25519_verify(pub, msg, sig): computes the verdict on first
  /// sight of the triple, returns the stored verdict afterwards.
  bool verify(const EdPublicKey& pub, util::ByteView msg, const EdSignature& sig);

  /// Stored verdict for a triple, if any (nullopt = not yet computed).
  /// Batch callers hash the triple once with key_of and reuse the key for
  /// the matching store() after their batch pass.
  std::optional<bool> lookup(const Key& key) const;
  /// Record a verdict computed externally (e.g. by a batch pass).
  void store(const Key& key, bool ok);

  std::size_t size() const;
  /// Total verdicts this memo will store before it stops inserting.
  std::size_t capacity() const { return per_shard_cap_ * kShards; }

 private:
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::size_t h;
      std::memcpy(&h, k.data(), sizeof(h));  // already uniform
      return h;
    }
  };
  struct Shard {
    mutable util::Mutex mu;
    // sos-lint audit (unordered-iteration): this map is lookup/insert only —
    // nothing iterates it, so hash order can never reach the metrics or
    // report bytes. size() sums bucket counts, which are order-independent.
    std::unordered_map<Key, bool, KeyHash> verdicts SOS_GUARDED_BY(mu);
  };

  Shard& shard(const Key& k) { return shards_[k[31] & (kShards - 1)]; }
  const Shard& shard(const Key& k) const { return shards_[k[31] & (kShards - 1)]; }

  // A replay holds a few thousand distinct signatures; past the bound the
  // memo stops inserting (reads keep working) rather than grow unbounded.
  static constexpr std::size_t kDefaultShardCap = 1 << 18;
  static constexpr std::size_t kShards = 16;  // power of two
  std::size_t per_shard_cap_ = kDefaultShardCap;
  Shard shards_[kShards];
};

}  // namespace sos::crypto
