// SHA-256 (FIPS 180-4). Incremental and one-shot APIs.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace sos::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256();
  void update(util::ByteView data);
  Digest finish();

  static Digest hash(util::ByteView data);

 private:
  void compress(const std::uint8_t* block);

  std::uint32_t h_[8];
  std::uint8_t buf_[kBlockSize];
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace sos::crypto
