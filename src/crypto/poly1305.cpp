#include "crypto/poly1305.hpp"

#include <cstring>

namespace sos::crypto {

Poly1305::Poly1305(const std::uint8_t key[kPolyKeySize]) {
  // r with the RFC clamping, split into 26-bit limbs.
  std::uint32_t t0 = util::load32_le(key + 0);
  std::uint32_t t1 = util::load32_le(key + 4);
  std::uint32_t t2 = util::load32_le(key + 8);
  std::uint32_t t3 = util::load32_le(key + 12);
  r_[0] = t0 & 0x3ffffff;
  r_[1] = ((t0 >> 26) | (t1 << 6)) & 0x3ffff03;
  r_[2] = ((t1 >> 20) | (t2 << 12)) & 0x3ffc0ff;
  r_[3] = ((t2 >> 14) | (t3 << 18)) & 0x3f03fff;
  r_[4] = (t3 >> 8) & 0x00fffff;
  std::memset(h_, 0, sizeof(h_));
  for (int i = 0; i < 4; ++i) pad_[i] = util::load32_le(key + 16 + 4 * i);
}

void Poly1305::blocks(const std::uint8_t* data, std::size_t len, std::uint32_t hibit) {
  const std::uint32_t r0 = r_[0], r1 = r_[1], r2 = r_[2], r3 = r_[3], r4 = r_[4];
  const std::uint32_t s1 = r1 * 5, s2 = r2 * 5, s3 = r3 * 5, s4 = r4 * 5;
  std::uint32_t h0 = h_[0], h1 = h_[1], h2 = h_[2], h3 = h_[3], h4 = h_[4];

  while (len >= 16) {
    std::uint32_t t0 = util::load32_le(data + 0);
    std::uint32_t t1 = util::load32_le(data + 4);
    std::uint32_t t2 = util::load32_le(data + 8);
    std::uint32_t t3 = util::load32_le(data + 12);
    h0 += t0 & 0x3ffffff;
    h1 += ((t0 >> 26) | (t1 << 6)) & 0x3ffffff;
    h2 += ((t1 >> 20) | (t2 << 12)) & 0x3ffffff;
    h3 += ((t2 >> 14) | (t3 << 18)) & 0x3ffffff;
    h4 += (t3 >> 8) | hibit;

    std::uint64_t d0 = (std::uint64_t)h0 * r0 + (std::uint64_t)h1 * s4 + (std::uint64_t)h2 * s3 +
                       (std::uint64_t)h3 * s2 + (std::uint64_t)h4 * s1;
    std::uint64_t d1 = (std::uint64_t)h0 * r1 + (std::uint64_t)h1 * r0 + (std::uint64_t)h2 * s4 +
                       (std::uint64_t)h3 * s3 + (std::uint64_t)h4 * s2;
    std::uint64_t d2 = (std::uint64_t)h0 * r2 + (std::uint64_t)h1 * r1 + (std::uint64_t)h2 * r0 +
                       (std::uint64_t)h3 * s4 + (std::uint64_t)h4 * s3;
    std::uint64_t d3 = (std::uint64_t)h0 * r3 + (std::uint64_t)h1 * r2 + (std::uint64_t)h2 * r1 +
                       (std::uint64_t)h3 * r0 + (std::uint64_t)h4 * s4;
    std::uint64_t d4 = (std::uint64_t)h0 * r4 + (std::uint64_t)h1 * r3 + (std::uint64_t)h2 * r2 +
                       (std::uint64_t)h3 * r1 + (std::uint64_t)h4 * r0;

    std::uint32_t c;
    c = (std::uint32_t)(d0 >> 26);
    h0 = (std::uint32_t)d0 & 0x3ffffff;
    d1 += c;
    c = (std::uint32_t)(d1 >> 26);
    h1 = (std::uint32_t)d1 & 0x3ffffff;
    d2 += c;
    c = (std::uint32_t)(d2 >> 26);
    h2 = (std::uint32_t)d2 & 0x3ffffff;
    d3 += c;
    c = (std::uint32_t)(d3 >> 26);
    h3 = (std::uint32_t)d3 & 0x3ffffff;
    d4 += c;
    c = (std::uint32_t)(d4 >> 26);
    h4 = (std::uint32_t)d4 & 0x3ffffff;
    h0 += c * 5;
    c = h0 >> 26;
    h0 &= 0x3ffffff;
    h1 += c;

    data += 16;
    len -= 16;
  }
  h_[0] = h0;
  h_[1] = h1;
  h_[2] = h2;
  h_[3] = h3;
  h_[4] = h4;
}

void Poly1305::update(util::ByteView data) {
  // An empty view may carry a null data() pointer, and memcpy from null is
  // UB even at size 0.
  if (data.empty()) return;
  std::size_t off = 0;
  if (buf_len_ > 0) {
    std::size_t take = std::min<std::size_t>(16 - buf_len_, data.size());
    std::memcpy(buf_ + buf_len_, data.data(), take);
    buf_len_ += take;
    off = take;
    if (buf_len_ == 16) {
      blocks(buf_, 16, 1u << 24);
      buf_len_ = 0;
    }
  }
  std::size_t full = (data.size() - off) & ~static_cast<std::size_t>(15);
  if (full > 0) {
    blocks(data.data() + off, full, 1u << 24);
    off += full;
  }
  if (off < data.size()) {
    std::memcpy(buf_, data.data() + off, data.size() - off);
    buf_len_ = data.size() - off;
  }
}

PolyTag Poly1305::finish() {
  if (buf_len_ > 0) {
    // final partial block: append 0x01 then zeros, no hibit
    std::uint8_t block[16] = {0};
    std::memcpy(block, buf_, buf_len_);
    block[buf_len_] = 1;
    blocks(block, 16, 0);
    buf_len_ = 0;
  }
  std::uint32_t h0 = h_[0], h1 = h_[1], h2 = h_[2], h3 = h_[3], h4 = h_[4];
  std::uint32_t c;
  c = h1 >> 26;
  h1 &= 0x3ffffff;
  h2 += c;
  c = h2 >> 26;
  h2 &= 0x3ffffff;
  h3 += c;
  c = h3 >> 26;
  h3 &= 0x3ffffff;
  h4 += c;
  c = h4 >> 26;
  h4 &= 0x3ffffff;
  h0 += c * 5;
  c = h0 >> 26;
  h0 &= 0x3ffffff;
  h1 += c;

  // compute h + -p
  std::uint32_t g0 = h0 + 5;
  c = g0 >> 26;
  g0 &= 0x3ffffff;
  std::uint32_t g1 = h1 + c;
  c = g1 >> 26;
  g1 &= 0x3ffffff;
  std::uint32_t g2 = h2 + c;
  c = g2 >> 26;
  g2 &= 0x3ffffff;
  std::uint32_t g3 = h3 + c;
  c = g3 >> 26;
  g3 &= 0x3ffffff;
  std::uint32_t g4 = h4 + c - (1u << 26);

  // select h if h < p, or h - p if h >= p
  std::uint32_t mask = (g4 >> 31) - 1;  // all-ones if g4 did not underflow
  g0 &= mask;
  g1 &= mask;
  g2 &= mask;
  g3 &= mask;
  g4 &= mask;
  mask = ~mask;
  h0 = (h0 & mask) | g0;
  h1 = (h1 & mask) | g1;
  h2 = (h2 & mask) | g2;
  h3 = (h3 & mask) | g3;
  h4 = (h4 & mask) | g4;

  // h = h % 2^128 as 4 32-bit words
  h0 = (h0 | (h1 << 26)) & 0xffffffff;
  h1 = ((h1 >> 6) | (h2 << 20)) & 0xffffffff;
  h2 = ((h2 >> 12) | (h3 << 14)) & 0xffffffff;
  h3 = ((h3 >> 18) | (h4 << 8)) & 0xffffffff;

  // tag = (h + pad) % 2^128
  std::uint64_t f;
  f = (std::uint64_t)h0 + pad_[0];
  h0 = (std::uint32_t)f;
  f = (std::uint64_t)h1 + pad_[1] + (f >> 32);
  h1 = (std::uint32_t)f;
  f = (std::uint64_t)h2 + pad_[2] + (f >> 32);
  h2 = (std::uint32_t)f;
  f = (std::uint64_t)h3 + pad_[3] + (f >> 32);
  h3 = (std::uint32_t)f;

  PolyTag tag;
  util::store32_le(tag.data() + 0, h0);
  util::store32_le(tag.data() + 4, h1);
  util::store32_le(tag.data() + 8, h2);
  util::store32_le(tag.data() + 12, h3);
  return tag;
}

PolyTag Poly1305::mac(const std::uint8_t key[kPolyKeySize], util::ByteView data) {
  Poly1305 p(key);
  p.update(data);
  return p.finish();
}

}  // namespace sos::crypto
