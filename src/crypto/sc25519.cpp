#include "crypto/sc25519.hpp"

#include <cstring>

namespace sos::crypto {

namespace {
using u64 = std::uint64_t;
using u128 = unsigned __int128;

// L in 64-bit little-endian limbs.
constexpr u64 kL[4] = {0x5812631a5cf5d3edULL, 0x14def9dea2f79cd6ULL, 0x0000000000000000ULL,
                       0x1000000000000000ULL};

struct U512 {
  u64 w[8] = {0};
};

struct U256 {
  u64 w[4] = {0};
};

U512 load512(const std::uint8_t in[64]) {
  U512 x;
  for (int i = 0; i < 8; ++i) x.w[i] = sos::util::load64_le(in + 8 * i);
  return x;
}

// r >= L ?
bool geq_l(const U256& r) {
  for (int i = 3; i >= 0; --i) {
    if (r.w[i] > kL[i]) return true;
    if (r.w[i] < kL[i]) return false;
  }
  return true;  // equal
}

void sub_l(U256& r) {
  u128 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    u128 d = (u128)r.w[i] - kL[i] - borrow;
    r.w[i] = (u64)d;
    borrow = (d >> 64) & 1;  // 1 if borrowed
  }
}

// m = L - 2^252 (125 bits), little-endian limbs.
constexpr u64 kM[2] = {0x5812631a5cf5d3edULL, 0x14def9dea2f79cd6ULL};

int bitlen(const u64* w, int n) {
  for (int i = n - 1; i >= 0; --i)
    if (w[i]) return 64 * i + (64 - __builtin_clzll(w[i]));
  return 0;
}

// Fold-based reduction: x mod L. Each pass rewrites x = q*2^252 + r as
// r + (L << k) - q*m (always non-negative by choice of k), stripping ~124
// bits per pass; 3-4 passes replace the seed's 512-step binary division.
U256 mod_l(const U512& x) {
  u64 w[9] = {0};
  for (int i = 0; i < 8; ++i) w[i] = x.w[i];

  while (bitlen(w, 9) > 256) {
    // q = w >> 252 (at most 260 bits), r = w mod 2^252.
    u64 q[5];
    for (int i = 0; i < 5; ++i) q[i] = (w[3 + i] >> 60) | (w[4 + i] << 4);
    u64 r[4] = {w[0], w[1], w[2], w[3] & 0x0FFFFFFFFFFFFFFFULL};

    // t = q * m  (<= 7 limbs since q < 2^260, m < 2^125).
    u64 t[7] = {0};
    for (int i = 0; i < 5; ++i) {
      u128 carry = 0;
      for (int j = 0; j < 2; ++j) {
        u128 cur = (u128)q[i] * kM[j] + t[i + j] + carry;
        t[i + j] = (u64)cur;
        carry = cur >> 64;
      }
      t[i + 2] += (u64)carry;
    }

    // kl = L << k with k chosen so kl > t: bitlen(t) <= bitlen(q)+126 and
    // bitlen(L << k) = 253 + k.
    int k = bitlen(q, 5) - 125;
    if (k < 0) k = 0;
    u64 kl[9] = {0};
    int limb = k / 64, shift = k % 64;
    for (int i = 0; i < 4; ++i) {
      kl[i + limb] |= shift ? (kL[i] << shift) : kL[i];
      if (shift && i + limb + 1 < 9) kl[i + limb + 1] |= kL[i] >> (64 - shift);
    }

    // w = r + kl - t (non-negative; < 2^389, fits the 9-limb buffer).
    __int128 acc = 0;
    for (int i = 0; i < 9; ++i) {
      acc += kl[i];
      if (i < 4) acc += r[i];
      if (i < 7) acc -= t[i];
      w[i] = (u64)acc;
      acc >>= 64;  // arithmetic shift propagates the borrow
    }
  }

  U256 out{{w[0], w[1], w[2], w[3]}};
  while (geq_l(out)) sub_l(out);
  return out;
}

Scalar store256(const U256& r) {
  Scalar out;
  for (int i = 0; i < 4; ++i) sos::util::store64_le(out.data() + 8 * i, r.w[i]);
  return out;
}

// 2x2-limb schoolbook product into out[0..3] (exact, no truncation).
void mul128(const u64 a[2], const u64 b[2], u64 out[4]) {
  u128 t0 = (u128)a[0] * b[0];
  u128 t1 = (u128)a[0] * b[1];
  u128 t2 = (u128)a[1] * b[0];
  u128 t3 = (u128)a[1] * b[1];
  out[0] = (u64)t0;
  u128 mid = (t0 >> 64) + (u64)t1 + (u64)t2;
  out[1] = (u64)mid;
  u128 hi = (mid >> 64) + (t1 >> 64) + (t2 >> 64) + (u64)t3;
  out[2] = (u64)hi;
  out[3] = (u64)((hi >> 64) + (t3 >> 64));
}

// Karatsuba 256x256 -> 512: three 128x128 products instead of the
// schoolbook's four (12 vs 16 64x64 multiplies). With a = a1*2^128 + a0:
//   a*b = z0 + ((a0+a1)(b0+b1) - z0 - z2) * 2^128 + z2 * 2^256
// The half-sums can carry into bit 128; the carries contribute the exact
// cross terms ca*sb_lo, cb*sa_lo and ca*cb*2^256 handled below.
U512 mul256(const Scalar& a, const Scalar& b) {
  u64 aw[4], bw[4];
  for (int i = 0; i < 4; ++i) {
    aw[i] = sos::util::load64_le(a.data() + 8 * i);
    bw[i] = sos::util::load64_le(b.data() + 8 * i);
  }
  u64 z0[4], z2[4], z1[4];
  mul128(aw, bw, z0);          // a0 * b0
  mul128(aw + 2, bw + 2, z2);  // a1 * b1

  // sa = a0 + a1 (129 bits: sa_lo + ca*2^128), sb likewise.
  u64 sa[2], sb[2];
  u128 c = (u128)aw[0] + aw[2];
  sa[0] = (u64)c;
  c = (c >> 64) + aw[1] + aw[3];
  sa[1] = (u64)c;
  u64 ca = (u64)(c >> 64);
  c = (u128)bw[0] + bw[2];
  sb[0] = (u64)c;
  c = (c >> 64) + bw[1] + bw[3];
  sb[1] = (u64)c;
  u64 cb = (u64)(c >> 64);
  mul128(sa, sb, z1);  // sa_lo * sb_lo (the carry cross terms join below)

  // mid = z1 + ca*sb_lo + cb*sa_lo + ca*cb*2^128 - z0 - z2, a signed-free
  // accumulation: sum the positive parts into a 5-limb value first.
  u64 mid[5] = {z1[0], z1[1], z1[2], z1[3], 0};
  auto add2_at = [&mid](const u64 x[2], u64 scale, int pos) {
    if (scale == 0) return;
    u128 carry = 0;
    for (int i = 0; i < 2; ++i) {
      u128 cur = (u128)x[i] * scale + mid[pos + i] + carry;
      mid[pos + i] = (u64)cur;
      carry = cur >> 64;
    }
    for (int i = pos + 2; carry != 0 && i < 5; ++i) {
      u128 cur = (u128)mid[i] + (u64)carry;
      mid[i] = (u64)cur;
      carry = cur >> 64;
    }
  };
  add2_at(sb, ca, 2);  // ca * sb_lo * 2^128
  add2_at(sa, cb, 2);  // cb * sa_lo * 2^128
  if (ca && cb) {
    u128 cur = (u128)mid[4] + 1;  // ca*cb * 2^256
    mid[4] = (u64)cur;
  }
  // mid -= z0 + z2 (non-negative by construction).
  __int128 acc = 0;
  for (int i = 0; i < 5; ++i) {
    acc += mid[i];
    if (i < 4) acc -= (u128)z0[i] + z2[i];
    mid[i] = (u64)acc;
    acc >>= 64;  // arithmetic shift propagates the borrow
  }

  // out = z0 + mid*2^128 + z2*2^256, each addition carried to the top.
  U512 out;
  for (int i = 0; i < 4; ++i) out.w[i] = z0[i];
  u128 carry = 0;
  for (int i = 2; i < 8; ++i) {
    u128 cur = (u128)out.w[i] + (i - 2 < 5 ? mid[i - 2] : 0) + carry;
    out.w[i] = (u64)cur;
    carry = cur >> 64;
  }
  carry = 0;
  for (int i = 4; i < 8; ++i) {
    u128 cur = (u128)out.w[i] + z2[i - 4] + carry;
    out.w[i] = (u64)cur;
    carry = cur >> 64;
  }
  return out;
}

void add_into(U512& x, const Scalar& c) {
  u128 carry = 0;
  for (int i = 0; i < 8; ++i) {
    u128 cur = (u128)x.w[i] + (i < 4 ? sos::util::load64_le(c.data() + 8 * i) : 0) + carry;
    x.w[i] = (u64)cur;
    carry = cur >> 64;
  }
}
}  // namespace

Scalar sc_reduce64(const std::uint8_t in[64]) {
  return store256(mod_l(load512(in)));
}

Scalar sc_reduce32(const Scalar& in) {
  std::uint8_t wide[64] = {0};
  std::memcpy(wide, in.data(), 32);
  return sc_reduce64(wide);
}

Scalar sc_muladd(const Scalar& a, const Scalar& b, const Scalar& c) {
  U512 prod = mul256(a, b);
  add_into(prod, c);
  return store256(mod_l(prod));
}

Scalar sc_mul(const Scalar& a, const Scalar& b) {
  return store256(mod_l(mul256(a, b)));
}

Scalar sc_add(const Scalar& a, const Scalar& b) {
  U256 r;
  u128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    u128 cur = (u128)sos::util::load64_le(a.data() + 8 * i) +
               sos::util::load64_le(b.data() + 8 * i) + carry;
    r.w[i] = (u64)cur;
    carry = cur >> 64;
  }
  // Inputs < L, so the sum is < 2L < 2^254: no carry out, one subtraction.
  if (geq_l(r)) sub_l(r);
  return store256(r);
}

bool sc_is_canonical(const Scalar& s) {
  U256 r;
  for (int i = 0; i < 4; ++i) r.w[i] = sos::util::load64_le(s.data() + 8 * i);
  return !geq_l(r);
}

bool sc_is_zero(const Scalar& s) {
  std::uint8_t acc = 0;
  for (auto b : s) acc |= b;
  return acc == 0;
}

}  // namespace sos::crypto
