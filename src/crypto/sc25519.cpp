#include "crypto/sc25519.hpp"

#include <cstring>

namespace sos::crypto {

namespace {
using u64 = std::uint64_t;
using u128 = unsigned __int128;

// L in 64-bit little-endian limbs.
constexpr u64 kL[4] = {0x5812631a5cf5d3edULL, 0x14def9dea2f79cd6ULL, 0x0000000000000000ULL,
                       0x1000000000000000ULL};

struct U512 {
  u64 w[8] = {0};
};

struct U256 {
  u64 w[4] = {0};
};

U512 load512(const std::uint8_t in[64]) {
  U512 x;
  for (int i = 0; i < 8; ++i) x.w[i] = sos::util::load64_le(in + 8 * i);
  return x;
}

// r >= L ?
bool geq_l(const U256& r) {
  for (int i = 3; i >= 0; --i) {
    if (r.w[i] > kL[i]) return true;
    if (r.w[i] < kL[i]) return false;
  }
  return true;  // equal
}

void sub_l(U256& r) {
  u128 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    u128 d = (u128)r.w[i] - kL[i] - borrow;
    r.w[i] = (u64)d;
    borrow = (d >> 64) & 1;  // 1 if borrowed
  }
}

// Binary long division remainder: x mod L. 512 shift/compare/subtract steps.
U256 mod_l(const U512& x) {
  U256 r;
  for (int bit = 511; bit >= 0; --bit) {
    // r = (r << 1) | bit_of_x  -- r stays < 2L < 2^254 so no overflow
    u64 carry = 0;
    for (int i = 0; i < 4; ++i) {
      u64 nc = r.w[i] >> 63;
      r.w[i] = (r.w[i] << 1) | carry;
      carry = nc;
    }
    r.w[0] |= (x.w[bit / 64] >> (bit % 64)) & 1;
    if (geq_l(r)) sub_l(r);
  }
  return r;
}

Scalar store256(const U256& r) {
  Scalar out;
  for (int i = 0; i < 4; ++i) sos::util::store64_le(out.data() + 8 * i, r.w[i]);
  return out;
}

U512 mul256(const Scalar& a, const Scalar& b) {
  u64 aw[4], bw[4];
  for (int i = 0; i < 4; ++i) {
    aw[i] = sos::util::load64_le(a.data() + 8 * i);
    bw[i] = sos::util::load64_le(b.data() + 8 * i);
  }
  U512 out;
  for (int i = 0; i < 4; ++i) {
    u128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      u128 cur = (u128)aw[i] * bw[j] + out.w[i + j] + carry;
      out.w[i + j] = (u64)cur;
      carry = cur >> 64;
    }
    out.w[i + 4] += (u64)carry;
  }
  return out;
}

void add_into(U512& x, const Scalar& c) {
  u128 carry = 0;
  for (int i = 0; i < 8; ++i) {
    u128 cur = (u128)x.w[i] + (i < 4 ? sos::util::load64_le(c.data() + 8 * i) : 0) + carry;
    x.w[i] = (u64)cur;
    carry = cur >> 64;
  }
}
}  // namespace

Scalar sc_reduce64(const std::uint8_t in[64]) {
  return store256(mod_l(load512(in)));
}

Scalar sc_reduce32(const Scalar& in) {
  std::uint8_t wide[64] = {0};
  std::memcpy(wide, in.data(), 32);
  return sc_reduce64(wide);
}

Scalar sc_muladd(const Scalar& a, const Scalar& b, const Scalar& c) {
  U512 prod = mul256(a, b);
  add_into(prod, c);
  return store256(mod_l(prod));
}

bool sc_is_canonical(const Scalar& s) {
  U256 r;
  for (int i = 0; i < 4; ++i) r.w[i] = sos::util::load64_le(s.data() + 8 * i);
  return !geq_l(r);
}

bool sc_is_zero(const Scalar& s) {
  std::uint8_t acc = 0;
  for (auto b : s) acc |= b;
  return acc == 0;
}

}  // namespace sos::crypto
