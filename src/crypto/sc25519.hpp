// Arithmetic on Ed25519 scalars mod the group order
// L = 2^252 + 27742317777372353535851937790883648493.
// 64-bit-limb bignum with a fold-based reduction (a few 260x125-bit
// multiplies instead of bit-by-bit division), so scalar work stays a small
// fraction of a signature operation.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace sos::crypto {

using Scalar = std::array<std::uint8_t, 32>;  // little-endian, < L when reduced

/// Reduce a 64-byte little-endian value mod L.
Scalar sc_reduce64(const std::uint8_t in[64]);

/// Reduce a 32-byte little-endian value mod L.
Scalar sc_reduce32(const Scalar& in);

/// (a * b + c) mod L.
Scalar sc_muladd(const Scalar& a, const Scalar& b, const Scalar& c);

/// (a * b) mod L.
Scalar sc_mul(const Scalar& a, const Scalar& b);

/// (a + b) mod L (inputs must be reduced).
Scalar sc_add(const Scalar& a, const Scalar& b);

/// True iff the encoding is canonical (< L).
bool sc_is_canonical(const Scalar& s);

bool sc_is_zero(const Scalar& s);

}  // namespace sos::crypto
