// Arithmetic on Ed25519 scalars mod the group order
// L = 2^252 + 27742317777372353535851937790883648493.
// Simple 64-bit-limb bignum with binary long division: obviously correct and
// fast enough for middleware workloads (signing is hash-dominated anyway).
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace sos::crypto {

using Scalar = std::array<std::uint8_t, 32>;  // little-endian, < L when reduced

/// Reduce a 64-byte little-endian value mod L.
Scalar sc_reduce64(const std::uint8_t in[64]);

/// Reduce a 32-byte little-endian value mod L.
Scalar sc_reduce32(const Scalar& in);

/// (a * b + c) mod L.
Scalar sc_muladd(const Scalar& a, const Scalar& b, const Scalar& c);

/// True iff the encoding is canonical (< L).
bool sc_is_canonical(const Scalar& s);

bool sc_is_zero(const Scalar& s);

}  // namespace sos::crypto
