// SHA-512 (FIPS 180-4). Used by Ed25519 (RFC 8032) key expansion,
// nonce derivation and the challenge hash.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace sos::crypto {

class Sha512 {
 public:
  static constexpr std::size_t kDigestSize = 64;
  static constexpr std::size_t kBlockSize = 128;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha512();
  void update(util::ByteView data);
  Digest finish();

  static Digest hash(util::ByteView data);

 private:
  void compress(const std::uint8_t* block);

  std::uint64_t h_[8];
  std::uint8_t buf_[kBlockSize];
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace sos::crypto
