#include "crypto/verify_memo.hpp"

#include <cstring>

#include "crypto/sha256.hpp"

namespace sos::crypto {

VerifyMemo::VerifyMemo(std::size_t max_entries)
    : per_shard_cap_(max_entries / kShards > 0 ? max_entries / kShards : 1) {}

VerifyMemo::Key VerifyMemo::key_of(const EdPublicKey& pub, util::ByteView msg,
                                   const EdSignature& sig) {
  // pub and sig are fixed-size, so the concatenation is unambiguous.
  Sha256 h;
  h.update(util::ByteView(pub.data(), pub.size()));
  h.update(msg);
  h.update(util::ByteView(sig.data(), sig.size()));
  return h.finish();
}

bool VerifyMemo::verify(const EdPublicKey& pub, util::ByteView msg, const EdSignature& sig) {
  Key key = key_of(pub, msg, sig);
  Shard& s = shard(key);
  {
    util::MutexLock lock(s.mu);
    auto it = s.verdicts.find(key);
    if (it != s.verdicts.end()) return it->second;
  }
  // Compute outside the lock: the verdict is a pure function of the triple,
  // so two threads racing on the same key store the same value.
  bool ok = ed25519_verify(pub, msg, sig);
  util::MutexLock lock(s.mu);
  if (s.verdicts.size() < per_shard_cap_) s.verdicts.emplace(key, ok);
  return ok;
}

std::optional<bool> VerifyMemo::lookup(const Key& key) const {
  const Shard& s = shard(key);
  util::MutexLock lock(s.mu);
  auto it = s.verdicts.find(key);
  if (it == s.verdicts.end()) return std::nullopt;
  return it->second;
}

void VerifyMemo::store(const Key& key, bool ok) {
  Shard& s = shard(key);
  util::MutexLock lock(s.mu);
  if (s.verdicts.size() < per_shard_cap_) s.verdicts.insert_or_assign(key, ok);
}

std::size_t VerifyMemo::size() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) {
    util::MutexLock lock(s.mu);
    n += s.verdicts.size();
  }
  return n;
}

}  // namespace sos::crypto
