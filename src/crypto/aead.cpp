#include "crypto/aead.hpp"

#include <cstring>

#include "crypto/poly1305.hpp"

namespace sos::crypto {

namespace {
PolyTag compute_tag(const std::uint8_t poly_key[32], util::ByteView aad,
                    util::ByteView ciphertext) {
  Poly1305 mac(poly_key);
  static const std::uint8_t zeros[16] = {0};
  mac.update(aad);
  if (aad.size() % 16 != 0) mac.update(util::ByteView(zeros, 16 - aad.size() % 16));
  mac.update(ciphertext);
  if (ciphertext.size() % 16 != 0)
    mac.update(util::ByteView(zeros, 16 - ciphertext.size() % 16));
  std::uint8_t lens[16];
  util::store64_le(lens, aad.size());
  util::store64_le(lens + 8, ciphertext.size());
  mac.update(util::ByteView(lens, 16));
  return mac.finish();
}
}  // namespace

util::Bytes aead_seal(const std::uint8_t key[kAeadKeySize],
                      const std::uint8_t nonce[kAeadNonceSize], util::ByteView aad,
                      util::ByteView plaintext) {
  // poly key = first 32 bytes of block 0
  auto block0 = chacha20_block(key, 0, nonce);
  util::Bytes out = chacha20(key, 1, nonce, plaintext);
  PolyTag tag = compute_tag(block0.data(), aad, out);
  out.insert(out.end(), tag.begin(), tag.end());
  return out;
}

std::optional<util::Bytes> aead_open(const std::uint8_t key[kAeadKeySize],
                                     const std::uint8_t nonce[kAeadNonceSize],
                                     util::ByteView aad, util::ByteView sealed) {
  if (sealed.size() < kAeadTagSize) return std::nullopt;
  util::ByteView ciphertext = sealed.first(sealed.size() - kAeadTagSize);
  util::ByteView tag = sealed.last(kAeadTagSize);
  auto block0 = chacha20_block(key, 0, nonce);
  PolyTag expect = compute_tag(block0.data(), aad, ciphertext);
  if (!util::ct_equal(util::ByteView(expect.data(), expect.size()), tag)) return std::nullopt;
  return chacha20(key, 1, nonce, ciphertext);
}

}  // namespace sos::crypto
