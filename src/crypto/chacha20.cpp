#include "crypto/chacha20.hpp"

#include <cstring>

namespace sos::crypto {

namespace {
inline std::uint32_t rotl(std::uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b;
  d = rotl(d ^ a, 16);
  c += d;
  b = rotl(b ^ c, 12);
  a += b;
  d = rotl(d ^ a, 8);
  c += d;
  b = rotl(b ^ c, 7);
}
}  // namespace

std::array<std::uint8_t, 64> chacha20_block(const std::uint8_t key[kChaChaKeySize],
                                            std::uint32_t counter,
                                            const std::uint8_t nonce[kChaChaNonceSize]) {
  std::uint32_t state[16];
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = util::load32_le(key + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = util::load32_le(nonce + 4 * i);

  std::uint32_t x[16];
  std::memcpy(x, state, sizeof(x));
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  std::array<std::uint8_t, 64> out;
  for (int i = 0; i < 16; ++i) util::store32_le(out.data() + 4 * i, x[i] + state[i]);
  return out;
}

void chacha20_xor(const std::uint8_t key[kChaChaKeySize], std::uint32_t counter,
                  const std::uint8_t nonce[kChaChaNonceSize], std::uint8_t* data,
                  std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    auto ks = chacha20_block(key, counter++, nonce);
    std::size_t take = std::min<std::size_t>(64, len - off);
    for (std::size_t i = 0; i < take; ++i) data[off + i] ^= ks[i];
    off += take;
  }
}

util::Bytes chacha20(const std::uint8_t key[kChaChaKeySize], std::uint32_t counter,
                     const std::uint8_t nonce[kChaChaNonceSize], util::ByteView data) {
  util::Bytes out(data.begin(), data.end());
  chacha20_xor(key, counter, nonce, out.data(), out.size());
  return out;
}

}  // namespace sos::crypto
