#include "crypto/ed25519.hpp"

#include <cstring>

#include "crypto/fe25519.hpp"
#include "crypto/sc25519.hpp"
#include "crypto/sha512.hpp"

namespace sos::crypto {

namespace {

// Extended twisted-Edwards coordinates: x = X/Z, y = Y/Z, T = XY/Z.
struct Ge {
  Fe X, Y, Z, T;
};

Ge ge_identity() {
  return Ge{kFeZero, kFeOne, kFeOne, kFeZero};
}

// Unified addition (add-2008-hwcd-3 for a = -1).
Ge ge_add(const Ge& p, const Ge& q) {
  Fe a = fe_mul(fe_add(p.Y, p.X), fe_add(q.Y, q.X));
  Fe b = fe_mul(fe_sub(p.Y, p.X), fe_sub(q.Y, q.X));
  Fe c = fe_mul(fe_mul(p.T, q.T), fe_edwards_2d());
  Fe zz = fe_mul(p.Z, q.Z);
  Fe d = fe_add(zz, zz);
  Fe e = fe_sub(a, b);
  Fe f = fe_sub(d, c);
  Fe g = fe_add(d, c);
  Fe h = fe_add(a, b);
  return Ge{fe_mul(e, f), fe_mul(h, g), fe_mul(g, f), fe_mul(e, h)};
}

// Doubling (dbl-2008-hwcd).
Ge ge_double(const Ge& p) {
  Fe xx = fe_sq(p.X);
  Fe yy = fe_sq(p.Y);
  Fe zz2 = fe_add(fe_sq(p.Z), fe_sq(p.Z));
  Fe xy2 = fe_sub(fe_sub(fe_sq(fe_add(p.X, p.Y)), yy), xx);  // 2XY
  Fe yy_plus_xx = fe_add(yy, xx);
  Fe yy_minus_xx = fe_sub(yy, xx);
  Fe t = fe_sub(zz2, yy_minus_xx);
  // p1p1 -> p3
  return Ge{fe_mul(xy2, t), fe_mul(yy_plus_xx, yy_minus_xx), fe_mul(yy_minus_xx, t),
            fe_mul(xy2, yy_plus_xx)};
}

Ge ge_neg(const Ge& p) {
  return Ge{fe_neg(p.X), p.Y, p.Z, fe_neg(p.T)};
}

// Variable-time double-and-add; scalar is 32 bytes little-endian.
// Timing leaks are acceptable here: this reproduction runs simulations, not
// production endpoints (documented in README).
Ge ge_scalarmult(const Ge& p, const std::uint8_t scalar[32]) {
  Ge r = ge_identity();
  bool started = false;
  for (int i = 255; i >= 0; --i) {
    if (started) r = ge_double(r);
    if ((scalar[i / 8] >> (i % 8)) & 1) {
      if (started) {
        r = ge_add(r, p);
      } else {
        r = p;
        started = true;
      }
    }
  }
  return started ? r : ge_identity();
}

void ge_tobytes(std::uint8_t s[32], const Ge& p) {
  Fe zinv = fe_invert(p.Z);
  Fe x = fe_mul(p.X, zinv);
  Fe y = fe_mul(p.Y, zinv);
  fe_tobytes(s, y);
  s[31] ^= static_cast<std::uint8_t>(fe_is_negative(x) << 7);
}

bool ge_frombytes(Ge& out, const std::uint8_t s[32]) {
  Fe y = fe_frombytes(s);
  int sign = s[31] >> 7;

  Fe yy = fe_sq(y);
  Fe u = fe_sub(yy, kFeOne);                       // y^2 - 1
  Fe v = fe_add(fe_mul(yy, fe_edwards_d()), kFeOne);  // d y^2 + 1

  // x = u v^3 (u v^7)^((p-5)/8)
  Fe v3 = fe_mul(fe_sq(v), v);
  Fe v7 = fe_mul(fe_sq(v3), v);
  Fe x = fe_mul(fe_mul(u, v3), fe_pow_p58(fe_mul(u, v7)));

  Fe vxx = fe_mul(v, fe_sq(x));
  if (!fe_equal(vxx, u)) {
    if (!fe_equal(vxx, fe_neg(u))) return false;
    x = fe_mul(x, fe_sqrt_m1());
  }
  if (fe_is_zero(x) && sign == 1) return false;
  if (fe_is_negative(x) != sign) x = fe_neg(x);

  out.X = x;
  out.Y = y;
  out.Z = kFeOne;
  out.T = fe_mul(x, y);
  return true;
}

const Ge& ge_base() {
  static const Ge base = [] {
    // y = 4/5 mod p, sign(x) = 0.
    Fe y = fe_mul(fe_from_u64(4), fe_invert(fe_from_u64(5)));
    std::uint8_t enc[32];
    fe_tobytes(enc, y);  // sign bit already 0
    Ge b{};
    bool ok = ge_frombytes(b, enc);
    (void)ok;
    return b;
  }();
  return base;
}

std::array<std::uint8_t, 32> clamp(const std::uint8_t h[32]) {
  std::array<std::uint8_t, 32> s;
  std::memcpy(s.data(), h, 32);
  s[0] &= 248;
  s[31] &= 63;
  s[31] |= 64;
  return s;
}

}  // namespace

Ed25519Keypair Ed25519Keypair::from_seed(const EdSeed& seed) {
  Ed25519Keypair kp;
  kp.seed_ = seed;
  auto h = Sha512::hash(util::ByteView(seed.data(), seed.size()));
  kp.scalar_ = clamp(h.data());
  std::memcpy(kp.prefix_.data(), h.data() + 32, 32);
  Ge a = ge_scalarmult(ge_base(), kp.scalar_.data());
  ge_tobytes(kp.pub_.data(), a);
  return kp;
}

EdSignature Ed25519Keypair::sign(util::ByteView msg) const {
  // r = H(prefix || M) mod L
  Sha512 hr;
  hr.update(util::ByteView(prefix_.data(), prefix_.size()));
  hr.update(msg);
  auto r_hash = hr.finish();
  Scalar r = sc_reduce64(r_hash.data());

  Ge rp = ge_scalarmult(ge_base(), r.data());
  EdSignature sig{};
  ge_tobytes(sig.data(), rp);

  // k = H(R || A || M) mod L
  Sha512 hk;
  hk.update(util::ByteView(sig.data(), 32));
  hk.update(util::ByteView(pub_.data(), pub_.size()));
  hk.update(msg);
  auto k_hash = hk.finish();
  Scalar k = sc_reduce64(k_hash.data());

  // S = (r + k * s) mod L
  Scalar s_scalar;
  std::memcpy(s_scalar.data(), scalar_.data(), 32);
  Scalar s = sc_muladd(k, s_scalar, r);
  std::memcpy(sig.data() + 32, s.data(), 32);
  return sig;
}

bool ed25519_verify(const EdPublicKey& pub, util::ByteView msg, const EdSignature& sig) {
  Scalar s;
  std::memcpy(s.data(), sig.data() + 32, 32);
  if (!sc_is_canonical(s)) return false;

  Ge a;
  if (!ge_frombytes(a, pub.data())) return false;

  // k = H(R || A || M) mod L
  Sha512 hk;
  hk.update(util::ByteView(sig.data(), 32));
  hk.update(util::ByteView(pub.data(), pub.size()));
  hk.update(msg);
  auto k_hash = hk.finish();
  Scalar k = sc_reduce64(k_hash.data());

  // Check enc(S*B - k*A) == R.
  Ge sb = ge_scalarmult(ge_base(), s.data());
  Ge ka = ge_scalarmult(ge_neg(a), k.data());
  Ge r = ge_add(sb, ka);
  std::uint8_t r_enc[32];
  ge_tobytes(r_enc, r);
  return std::memcmp(r_enc, sig.data(), 32) == 0;
}

}  // namespace sos::crypto
