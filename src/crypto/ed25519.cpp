#include "crypto/ed25519.hpp"

#include <cstring>

#include "crypto/drbg.hpp"
#include "crypto/ge25519.hpp"
#include "crypto/sc25519.hpp"
#include "crypto/sha512.hpp"

namespace sos::crypto {

namespace {

std::array<std::uint8_t, 32> clamp(const std::uint8_t h[32]) {
  std::array<std::uint8_t, 32> s;
  std::memcpy(s.data(), h, 32);
  s[0] &= 248;
  s[31] &= 63;
  s[31] |= 64;
  return s;
}

// k = H(R || A || M) mod L, the Fiat-Shamir challenge of the scheme.
Scalar challenge(const std::uint8_t r_enc[32], const EdPublicKey& pub, util::ByteView msg) {
  Sha512 hk;
  hk.update(util::ByteView(r_enc, 32));
  hk.update(util::ByteView(pub.data(), pub.size()));
  hk.update(msg);
  auto k_hash = hk.finish();
  return sc_reduce64(k_hash.data());
}

}  // namespace

Ed25519Keypair Ed25519Keypair::from_seed(const EdSeed& seed) {
  Ed25519Keypair kp;
  kp.seed_ = seed;
  auto h = Sha512::hash(util::ByteView(seed.data(), seed.size()));
  kp.scalar_ = clamp(h.data());
  std::memcpy(kp.prefix_.data(), h.data() + 32, 32);
  GeP3 a = ge_scalarmult_base(kp.scalar_.data());
  ge_tobytes(kp.pub_.data(), a);
  return kp;
}

EdSignature Ed25519Keypair::sign(util::ByteView msg) const {
  // r = H(prefix || M) mod L
  Sha512 hr;
  hr.update(util::ByteView(prefix_.data(), prefix_.size()));
  hr.update(msg);
  auto r_hash = hr.finish();
  Scalar r = sc_reduce64(r_hash.data());

  GeP3 rp = ge_scalarmult_base(r.data());
  EdSignature sig{};
  ge_tobytes(sig.data(), rp);

  Scalar k = challenge(sig.data(), pub_, msg);

  // S = (r + k * s) mod L
  Scalar s_scalar;
  std::memcpy(s_scalar.data(), scalar_.data(), 32);
  Scalar s = sc_muladd(k, s_scalar, r);
  std::memcpy(sig.data() + 32, s.data(), 32);
  return sig;
}

bool ed25519_verify(const EdPublicKey& pub, util::ByteView msg, const EdSignature& sig) {
  Scalar s;
  std::memcpy(s.data(), sig.data() + 32, 32);
  if (!sc_is_canonical(s)) return false;

  GeP3 a;
  if (!ge_frombytes(a, pub.data())) return false;

  Scalar k = challenge(sig.data(), pub, msg);

  // enc(S*B - k*A) == R, computed in one Straus/Shamir pass.
  GeP3 r = ge_double_scalarmult_base_vartime(s.data(), ge_neg(a), k.data());
  std::uint8_t r_enc[32];
  ge_tobytes(r_enc, r);
  // sos-lint: allow(memcmp-public) both operands are public: the recomputed
  // point encoding and the signature's R half straight off the wire.
  return std::memcmp(r_enc, sig.data(), 32) == 0;
}

bool ed25519_verify_batch(const std::vector<EdBatchItem>& items, std::vector<bool>* per_item) {
  const std::size_t n = items.size();
  if (per_item) per_item->assign(n, false);
  if (n == 0) return true;

  auto fallback = [&] {
    bool all = true;
    for (std::size_t i = 0; i < n; ++i) {
      bool ok = ed25519_verify(items[i].pub, items[i].msg, items[i].sig);
      if (per_item) (*per_item)[i] = ok;
      all = all && ok;
    }
    return all;
  };
  if (n == 1) return fallback();

  // Parse phase. Any malformed input sends the whole batch to the
  // per-signature path, which isolates the offender.
  std::vector<Scalar> s(n), k(n);
  std::vector<GeP3> a(n), r(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::memcpy(s[i].data(), items[i].sig.data() + 32, 32);
    if (!sc_is_canonical(s[i])) return fallback();
    if (!ge_frombytes(a[i], items[i].pub.data())) return fallback();
    if (!ge_frombytes(r[i], items[i].sig.data())) return fallback();
    // The single-signature check compares encodings byte-for-byte, so a
    // non-canonical R must not slip through the point-level batch check.
    std::uint8_t r_reenc[32];
    ge_tobytes(r_reenc, r[i]);
    // sos-lint: allow(memcmp-public) canonicality check on public data: the
    // re-encoded R point vs the wire signature bytes.
    if (std::memcmp(r_reenc, items[i].sig.data(), 32) != 0) return fallback();
    k[i] = challenge(items[i].sig.data(), items[i].pub, items[i].msg);
  }

  // Random 128-bit coefficients z_i, derived Fiat-Shamir style from the
  // whole batch so runs are deterministic and an adversary cannot pick
  // signatures after seeing the coefficients.
  Sha512 seed_hash;
  seed_hash.update(util::to_bytes("sos-ed25519-batch-v1"));
  for (std::size_t i = 0; i < n; ++i) {
    seed_hash.update(util::ByteView(items[i].pub.data(), items[i].pub.size()));
    seed_hash.update(util::ByteView(items[i].sig.data(), items[i].sig.size()));
    seed_hash.update(items[i].msg);
  }
  auto seed = seed_hash.finish();
  Drbg coeff_rng(util::ByteView(seed.data(), seed.size()));

  // Check sum(z_i * (s_i*B - k_i*A_i - R_i)) == identity, i.e.
  // (sum z_i s_i)*B == sum (z_i k_i)*A_i + z_i*R_i.
  Scalar s_combined{};
  std::vector<std::pair<Scalar, GeP3>> terms;
  terms.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    Scalar z{};
    coeff_rng.generate(z.data(), 16);
    bool zero = true;
    for (int j = 0; j < 16; ++j) zero = zero && z[j] == 0;
    if (zero) z[0] = 1;  // a zero coefficient would ignore the item
    s_combined = sc_muladd(z, s[i], s_combined);
    terms.emplace_back(sc_mul(z, k[i]), a[i]);
    terms.emplace_back(z, r[i]);
  }
  GeP3 rhs = ge_multi_scalarmult_vartime(terms);
  GeP3 lhs = ge_scalarmult_base(s_combined.data());
  // Cofactored comparison (multiply the difference by 8): per-item errors
  // with small-order components cannot be made to cancel across items by
  // grinding coefficient parities, so a forged signature fails the batch
  // with probability 1 - 2^-128 regardless of torsion tricks. The standard
  // Ed25519 batch-equation caveat applies: an adversarially crafted
  // signature whose verification error is PURE 8-torsion passes the
  // cofactored batch but fails the strict single-signature check; producing
  // one still requires the signer's private key, so this admits no
  // third-party forgery.
  GeP3 diff = ge_sub(lhs, ge_to_cached(rhs));
  diff = ge_double(ge_double(ge_double(diff)));
  if (ge_is_identity(diff)) {
    if (per_item) per_item->assign(n, true);
    return true;
  }
  return fallback();
}

}  // namespace sos::crypto
