// ChaCha20 stream cipher (RFC 8439): block function and XOR keystream.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace sos::crypto {

constexpr std::size_t kChaChaKeySize = 32;
constexpr std::size_t kChaChaNonceSize = 12;

/// One 64-byte ChaCha20 block for (key, counter, nonce).
std::array<std::uint8_t, 64> chacha20_block(const std::uint8_t key[kChaChaKeySize],
                                            std::uint32_t counter,
                                            const std::uint8_t nonce[kChaChaNonceSize]);

/// XOR `data` with the keystream starting at block `counter` (in place).
void chacha20_xor(const std::uint8_t key[kChaChaKeySize], std::uint32_t counter,
                  const std::uint8_t nonce[kChaChaNonceSize], std::uint8_t* data,
                  std::size_t len);

/// Convenience: returns the transformed copy.
util::Bytes chacha20(const std::uint8_t key[kChaChaKeySize], std::uint32_t counter,
                     const std::uint8_t nonce[kChaChaNonceSize], util::ByteView data);

}  // namespace sos::crypto
