// X25519 Diffie-Hellman (RFC 7748). Session-key agreement for the SOS
// ad hoc manager's encrypted D2D connections.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace sos::crypto {

constexpr std::size_t kX25519KeySize = 32;

using X25519Key = std::array<std::uint8_t, kX25519KeySize>;

/// scalar * point (u-coordinate Montgomery ladder).
X25519Key x25519(const X25519Key& scalar, const X25519Key& point);

/// scalar * base point (u = 9).
X25519Key x25519_base(const X25519Key& scalar);

/// Clamp a random 32-byte string into a valid X25519 private scalar.
X25519Key x25519_clamp(X25519Key scalar);

}  // namespace sos::crypto
