#include "crypto/drbg.hpp"

#include <cstring>

#include "crypto/chacha20.hpp"
#include "crypto/sha256.hpp"

namespace sos::crypto {

Drbg::Drbg(util::ByteView seed) {
  auto d = Sha256::hash(seed);
  std::memcpy(key_, d.data(), 32);
}

void Drbg::generate(std::uint8_t* out, std::size_t len) {
  std::memset(out, 0, len);
  std::uint8_t nonce[12] = {0};
  util::store64_le(nonce, counter_++);
  chacha20_xor(key_, 0, nonce, out, len);
}

util::Bytes Drbg::generate(std::size_t len) {
  util::Bytes out(len);
  generate(out.data(), len);
  return out;
}

Drbg Drbg::fork(util::ByteView label) {
  util::Bytes seed(key_, key_ + 32);
  util::append(seed, label);
  auto child = generate(16);  // advance our stream so repeated forks differ
  util::append(seed, child);
  return Drbg(seed);
}

}  // namespace sos::crypto
