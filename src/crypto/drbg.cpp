#include "crypto/drbg.hpp"

#include <cstring>

#include "crypto/chacha20.hpp"
#include "crypto/sha256.hpp"
#include "util/codec.hpp"

namespace sos::crypto {

Drbg::Drbg(util::ByteView seed) {
  auto d = Sha256::hash(seed);
  std::memcpy(key_, d.data(), 32);
}

void Drbg::generate(std::uint8_t* out, std::size_t len) {
  std::memset(out, 0, len);
  std::uint8_t nonce[12] = {0};
  util::store64_le(nonce, counter_++);
  chacha20_xor(key_, 0, nonce, out, len);
}

util::Bytes Drbg::generate(std::size_t len) {
  util::Bytes out(len);
  generate(out.data(), len);
  return out;
}

void Drbg::save_state(util::Writer& w) const {
  w.raw(util::ByteView(key_, 32));
  w.u64(counter_);
}

bool Drbg::load_state(util::Reader& r) {
  auto key = r.raw_array<32>();
  std::uint64_t counter = r.u64();
  if (!r.ok()) return false;
  std::memcpy(key_, key.data(), 32);
  counter_ = counter;
  util::secure_wipe(key.data(), key.size());
  return true;
}

Drbg Drbg::fork(util::ByteView label) {
  util::Bytes seed(key_, key_ + 32);
  util::append(seed, label);
  auto child = generate(16);  // advance our stream so repeated forks differ
  util::append(seed, child);
  return Drbg(seed);
}

}  // namespace sos::crypto
