// Ed25519 signatures (RFC 8032). Origin authentication for every bundle and
// the signature scheme for certificates issued by the AlleyOop CA.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/bytes.hpp"

namespace sos::crypto {

constexpr std::size_t kEdSeedSize = 32;
constexpr std::size_t kEdPublicKeySize = 32;
constexpr std::size_t kEdSignatureSize = 64;

using EdSeed = std::array<std::uint8_t, kEdSeedSize>;
using EdPublicKey = std::array<std::uint8_t, kEdPublicKeySize>;
using EdSignature = std::array<std::uint8_t, kEdSignatureSize>;

/// Private key material: the RFC 8032 32-byte seed plus cached expansion.
class Ed25519Keypair {
 public:
  Ed25519Keypair() = default;
  Ed25519Keypair(const Ed25519Keypair&) = default;
  Ed25519Keypair& operator=(const Ed25519Keypair&) = default;
  Ed25519Keypair(Ed25519Keypair&&) = default;
  Ed25519Keypair& operator=(Ed25519Keypair&&) = default;
  ~Ed25519Keypair() {
    util::secure_wipe(seed_);
    util::secure_wipe(scalar_);
    util::secure_wipe(prefix_);
  }

  /// Deterministically derive a keypair from a 32-byte seed.
  static Ed25519Keypair from_seed(const EdSeed& seed);

  const EdPublicKey& public_key() const { return pub_; }
  const EdSeed& seed() const { return seed_; }

  EdSignature sign(util::ByteView msg) const;

 private:
  EdSeed seed_{};
  std::array<std::uint8_t, 32> scalar_{};  // clamped secret scalar
  std::array<std::uint8_t, 32> prefix_{};  // nonce-derivation prefix
  EdPublicKey pub_{};
};

/// Signature check; false on malformed points/scalars as well as bad sigs.
bool ed25519_verify(const EdPublicKey& pub, util::ByteView msg, const EdSignature& sig);

/// One entry of a verification batch. `msg` is a view: the caller keeps the
/// message bytes alive for the duration of the call.
struct EdBatchItem {
  EdPublicKey pub;
  util::ByteView msg;
  EdSignature sig;
};

/// Random-linear-combination batch verification: one multi-scalar pass for
/// the whole batch instead of one double-scalar pass per signature. The
/// combined equation is cofactored (standard for Ed25519 batching), so a
/// batch pass means every signature is valid up to 8-torsion — equivalent
/// to ed25519_verify for all honestly generated signatures, and never
/// accepting a third-party forgery. If the combined check fails (or any
/// input is malformed), falls back to strict per-signature verification so
/// a single corrupted signature is isolated; `per_item`, when non-null,
/// then holds the individual verdicts (all true on batch success).
bool ed25519_verify_batch(const std::vector<EdBatchItem>& items,
                          std::vector<bool>* per_item = nullptr);

}  // namespace sos::crypto
