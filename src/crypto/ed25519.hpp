// Ed25519 signatures (RFC 8032). Origin authentication for every bundle and
// the signature scheme for certificates issued by the AlleyOop CA.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "util/bytes.hpp"

namespace sos::crypto {

constexpr std::size_t kEdSeedSize = 32;
constexpr std::size_t kEdPublicKeySize = 32;
constexpr std::size_t kEdSignatureSize = 64;

using EdSeed = std::array<std::uint8_t, kEdSeedSize>;
using EdPublicKey = std::array<std::uint8_t, kEdPublicKeySize>;
using EdSignature = std::array<std::uint8_t, kEdSignatureSize>;

/// Private key material: the RFC 8032 32-byte seed plus cached expansion.
class Ed25519Keypair {
 public:
  /// Deterministically derive a keypair from a 32-byte seed.
  static Ed25519Keypair from_seed(const EdSeed& seed);

  const EdPublicKey& public_key() const { return pub_; }
  const EdSeed& seed() const { return seed_; }

  EdSignature sign(util::ByteView msg) const;

 private:
  EdSeed seed_{};
  std::array<std::uint8_t, 32> scalar_{};  // clamped secret scalar
  std::array<std::uint8_t, 32> prefix_{};  // nonce-derivation prefix
  EdPublicKey pub_{};
};

/// Signature check; false on malformed points/scalars as well as bad sigs.
bool ed25519_verify(const EdPublicKey& pub, util::ByteView msg, const EdSignature& sig);

}  // namespace sos::crypto
