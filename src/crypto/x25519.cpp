#include "crypto/x25519.hpp"

#include "crypto/fe25519.hpp"

namespace sos::crypto {

X25519Key x25519_clamp(X25519Key scalar) {
  scalar[0] &= 248;
  scalar[31] &= 127;
  scalar[31] |= 64;
  return scalar;
}

X25519Key x25519(const X25519Key& scalar, const X25519Key& point) {
  X25519Key k = x25519_clamp(scalar);
  Fe x1 = fe_frombytes(point.data());
  Fe x2 = kFeOne, z2 = kFeZero;
  Fe x3 = x1, z3 = kFeOne;
  std::uint64_t swap = 0;

  for (int t = 254; t >= 0; --t) {
    std::uint64_t k_t = (k[t / 8] >> (t % 8)) & 1;
    swap ^= k_t;
    fe_cswap(x2, x3, swap);
    fe_cswap(z2, z3, swap);
    swap = k_t;

    Fe a = fe_add(x2, z2);
    Fe aa = fe_sq(a);
    Fe b = fe_sub(x2, z2);
    Fe bb = fe_sq(b);
    Fe e = fe_sub(aa, bb);
    Fe c = fe_add(x3, z3);
    Fe d = fe_sub(x3, z3);
    Fe da = fe_mul(d, a);
    Fe cb = fe_mul(c, b);
    Fe t0 = fe_add(da, cb);
    x3 = fe_sq(t0);
    Fe t1 = fe_sub(da, cb);
    z3 = fe_mul(x1, fe_sq(t1));
    x2 = fe_mul(aa, bb);
    Fe t2 = fe_add(bb, fe_mul121666(e));
    z2 = fe_mul(e, t2);
  }
  fe_cswap(x2, x3, swap);
  fe_cswap(z2, z3, swap);

  Fe out = fe_mul(x2, fe_invert(z2));
  X25519Key result;
  fe_tobytes(result.data(), out);
  return result;
}

X25519Key x25519_base(const X25519Key& scalar) {
  X25519Key base = {9};
  return x25519(scalar, base);
}

}  // namespace sos::crypto
