// ChaCha20-Poly1305 AEAD (RFC 8439 §2.8). This is the session cipher for
// every SOS D2D connection after the X25519 handshake.
#pragma once

#include <optional>

#include "crypto/chacha20.hpp"
#include "util/bytes.hpp"

namespace sos::crypto {

constexpr std::size_t kAeadKeySize = 32;
constexpr std::size_t kAeadNonceSize = 12;
constexpr std::size_t kAeadTagSize = 16;

/// ciphertext || 16-byte tag.
util::Bytes aead_seal(const std::uint8_t key[kAeadKeySize],
                      const std::uint8_t nonce[kAeadNonceSize], util::ByteView aad,
                      util::ByteView plaintext);

/// Verifies the tag (constant-time compare); nullopt on any mismatch.
std::optional<util::Bytes> aead_open(const std::uint8_t key[kAeadKeySize],
                                     const std::uint8_t nonce[kAeadNonceSize],
                                     util::ByteView aad, util::ByteView sealed);

}  // namespace sos::crypto
