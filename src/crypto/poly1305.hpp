// Poly1305 one-time authenticator (RFC 8439), 32-bit limb implementation.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace sos::crypto {

constexpr std::size_t kPolyKeySize = 32;
constexpr std::size_t kPolyTagSize = 16;

using PolyTag = std::array<std::uint8_t, kPolyTagSize>;

class Poly1305 {
 public:
  explicit Poly1305(const std::uint8_t key[kPolyKeySize]);
  void update(util::ByteView data);
  PolyTag finish();

  static PolyTag mac(const std::uint8_t key[kPolyKeySize], util::ByteView data);

 private:
  void blocks(const std::uint8_t* data, std::size_t len, std::uint32_t hibit);

  std::uint32_t r_[5];
  std::uint32_t h_[5];
  std::uint32_t pad_[4];
  std::uint8_t buf_[16];
  std::size_t buf_len_ = 0;
};

}  // namespace sos::crypto
