// HMAC (RFC 2104) instantiated with SHA-256 and SHA-512.
#pragma once

#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"
#include "util/bytes.hpp"

namespace sos::crypto {

Sha256::Digest hmac_sha256(util::ByteView key, util::ByteView msg);
Sha512::Digest hmac_sha512(util::ByteView key, util::ByteView msg);

}  // namespace sos::crypto
