// GF(2^255-19) field arithmetic with five 51-bit limbs (64-bit limbs,
// products via unsigned __int128). Shared by X25519 and Ed25519.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace sos::crypto {

struct Fe {
  std::uint64_t v[5];
};

extern const Fe kFeZero;
extern const Fe kFeOne;

Fe fe_from_u64(std::uint64_t x);
/// Load 32 little-endian bytes (top bit masked off, value may be >= p).
Fe fe_frombytes(const std::uint8_t s[32]);
/// Canonical 32-byte little-endian encoding (fully reduced mod p).
void fe_tobytes(std::uint8_t s[32], const Fe& f);

Fe fe_add(const Fe& a, const Fe& b);
Fe fe_sub(const Fe& a, const Fe& b);
Fe fe_mul(const Fe& a, const Fe& b);
Fe fe_sq(const Fe& a);
Fe fe_neg(const Fe& a);
/// a * 121666 (X25519 ladder constant).
Fe fe_mul121666(const Fe& a);
/// Multiplicative inverse (zero maps to zero).
Fe fe_invert(const Fe& a);
/// a^((p-5)/8), used in square-root extraction.
Fe fe_pow_p58(const Fe& a);

bool fe_is_zero(const Fe& a);
/// Least significant bit of the canonical encoding ("sign" of x in Ed25519).
int fe_is_negative(const Fe& a);
bool fe_equal(const Fe& a, const Fe& b);

/// Constant-time conditional swap (swap iff bit == 1).
void fe_cswap(Fe& a, Fe& b, std::uint64_t bit);

/// sqrt(-1) mod p, computed once at startup.
const Fe& fe_sqrt_m1();
/// Edwards curve constant d = -121665/121666 mod p.
const Fe& fe_edwards_d();
/// 2*d.
const Fe& fe_edwards_2d();

}  // namespace sos::crypto
