// HKDF-SHA256 (RFC 5869). The ad hoc manager derives the two directional
// session AEAD keys from the X25519 shared secret with this.
#pragma once

#include "util/bytes.hpp"

namespace sos::crypto {

/// HKDF-Extract: PRK = HMAC-SHA256(salt, ikm).
util::Bytes hkdf_extract(util::ByteView salt, util::ByteView ikm);

/// HKDF-Expand: OKM of `len` bytes (len <= 255*32).
util::Bytes hkdf_expand(util::ByteView prk, util::ByteView info, std::size_t len);

/// Extract-then-expand convenience.
util::Bytes hkdf(util::ByteView salt, util::ByteView ikm, util::ByteView info, std::size_t len);

}  // namespace sos::crypto
