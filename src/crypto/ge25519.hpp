// Ed25519 group operations (twisted Edwards curve, a = -1) tuned for the
// middleware's hot paths. Fixed-base scalar multiplication uses a
// precomputed radix-16 per-window table (64 table additions, zero
// doublings); variable-base uses signed sliding-window wNAF; verification
// uses a Straus/Shamir interleaved double-scalar multiplication so
// s*B - k*A shares a single doubling chain; batch verification uses a
// multi-scalar Straus pass. All scalar multiplications here are
// variable-time: this reproduction runs simulations, not production
// endpoints (see README).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "crypto/fe25519.hpp"
#include "crypto/sc25519.hpp"

namespace sos::crypto {

/// Extended twisted-Edwards coordinates: x = X/Z, y = Y/Z, T = XY/Z.
struct GeP3 {
  Fe X, Y, Z, T;
};

/// Addition-ready form of a point: (Y+X, Y-X, Z, 2dT).
struct GeCached {
  Fe YplusX, YminusX, Z, T2d;
};

GeP3 ge_identity();
bool ge_is_identity(const GeP3& p);
GeP3 ge_neg(const GeP3& p);
GeCached ge_to_cached(const GeP3& p);

GeP3 ge_add(const GeP3& p, const GeCached& q);
GeP3 ge_sub(const GeP3& p, const GeCached& q);
GeP3 ge_double(const GeP3& p);

/// Canonical encoding (y with the sign of x in the top bit).
void ge_tobytes(std::uint8_t s[32], const GeP3& p);
/// Decode; false for encodings that name no curve point.
bool ge_frombytes(GeP3& out, const std::uint8_t s[32]);

/// The standard base point B (y = 4/5, x positive).
const GeP3& ge_base();

/// scalar * B via the precomputed per-window table (no doublings).
GeP3 ge_scalarmult_base(const std::uint8_t scalar[32]);

/// scalar * P, signed sliding-window wNAF (width 5).
GeP3 ge_scalarmult_vartime(const GeP3& p, const std::uint8_t scalar[32]);

/// s * B + k * A in one interleaved doubling chain (Straus/Shamir). The
/// base-point digits use a wider window over a precomputed odd-multiple
/// table of B.
GeP3 ge_double_scalarmult_base_vartime(const std::uint8_t s[32], const GeP3& a,
                                       const std::uint8_t k[32]);

/// sum(scalar_i * P_i) for arbitrarily many points, one shared doubling
/// chain (batch verification workhorse).
GeP3 ge_multi_scalarmult_vartime(const std::vector<std::pair<Scalar, GeP3>>& terms);

/// Reference double-and-add ladder; slow, kept as the cross-check oracle
/// for the table/wNAF/Shamir paths.
GeP3 ge_scalarmult_generic(const GeP3& p, const std::uint8_t scalar[32]);

}  // namespace sos::crypto
