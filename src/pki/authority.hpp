// Certificate authority and device-side trust store. The CA is the
// infrastructure half of the paper's one-time requirement (Fig 2a); the
// trust store is what ships to the device (root certificate + CRL snapshot)
// and makes all later verification work offline.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>

#include "crypto/ed25519.hpp"
#include "crypto/verify_memo.hpp"
#include "pki/certificate.hpp"

namespace sos::pki {

enum class VerifyResult {
  Ok,
  BadSignature,
  UnknownIssuer,
  Expired,
  NotYetValid,
  Revoked,
  IdentityMismatch,
};

const char* to_string(VerifyResult r);

class CertificateAuthority {
 public:
  CertificateAuthority(std::string name, const crypto::EdSeed& seed,
                       util::SimTime cert_lifetime = util::days(365));

  const std::string& name() const { return name_; }
  const crypto::EdPublicKey& root_public_key() const { return keypair_.public_key(); }

  /// Issue a certificate for a verified CSR. Fails (nullopt) when the
  /// proof-of-possession is invalid — a malicious device cannot obtain a
  /// certificate for a key it does not hold.
  std::optional<Certificate> issue(const CertificateRequest& csr, util::SimTime now);

  /// Sign an arbitrary certificate body (tests use this to build
  /// maliciously altered certificates).
  Certificate issue_unchecked(Certificate cert);

  void revoke(std::uint64_t serial);
  const std::set<std::uint64_t>& revocation_list() const { return crl_; }
  std::uint64_t issued_count() const { return next_serial_ - 1; }

 private:
  std::string name_;
  crypto::Ed25519Keypair keypair_;
  util::SimTime cert_lifetime_;
  std::uint64_t next_serial_ = 1;
  std::set<std::uint64_t> crl_;
};

/// Device-side verifier: pinned root + CRL snapshot (updating the CRL needs
/// Internet, exactly the limitation §IV discusses).
class TrustStore {
 public:
  TrustStore() = default;
  TrustStore(std::string issuer_name, crypto::EdPublicKey root_key);

  void set_root(std::string issuer_name, crypto::EdPublicKey root_key);
  void update_crl(std::set<std::uint64_t> crl);
  void add_revoked(std::uint64_t serial);

  /// Full chain decision: issuer known, signature valid, within validity
  /// window, not revoked. `memo`, when non-null, memoizes the signature
  /// half across calls (replay engines share one memo between all nodes —
  /// the verdict is a pure function of root key, body, and signature).
  VerifyResult verify(const Certificate& cert, util::SimTime now,
                      crypto::VerifyMemo* memo = nullptr) const;

  /// The cheap, time-dependent half of verify(): issuer known, within
  /// validity window, not revoked — no signature check. Callers that cache
  /// signature verdicts (the middleware's verified-bundle cache) re-evaluate
  /// this on every use so expiry and revocation still bite.
  VerifyResult verify_policy(const Certificate& cert, util::SimTime now) const;

  /// The expensive half: the root's signature over the certificate body.
  bool verify_signature(const Certificate& cert, crypto::VerifyMemo* memo = nullptr) const;

  /// Pinned root key (for batch signature verification).
  const crypto::EdPublicKey& root_key() const { return root_key_; }

  /// verify() plus the Fig 2a identity check: the certificate must bind the
  /// expected unique user-identifier.
  VerifyResult verify_identity(const Certificate& cert, const UserId& expected,
                               util::SimTime now) const;

  /// CRL snapshot size — surfaced as a soak metric. Growth bound: entries
  /// enter only through update_crl/add_revoked, both driven by the CA's
  /// revoke() of an issued serial, so the set is bounded by the CA's
  /// issued_count() (one certificate per node in every scenario here).
  /// Adversaries forge signatures and corrupt frames; none of them can mint
  /// CRL entries, so month-scale soaks must see this stay flat after setup.
  std::size_t crl_size() const { return crl_.size(); }

 private:
  std::string issuer_name_;
  crypto::EdPublicKey root_key_{};
  bool has_root_ = false;
  std::set<std::uint64_t> crl_;
};

}  // namespace sos::pki
