// User identity: the paper's "10 byte unique user identification string"
// that keys discovery-info dictionaries and binds certificates to users.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>

#include "util/bytes.hpp"

namespace sos::pki {

constexpr std::size_t kUserIdSize = 10;

struct UserId {
  std::array<std::uint8_t, kUserIdSize> bytes{};

  auto operator<=>(const UserId&) const = default;

  /// 16-character base32 rendering; used as the discovery-dictionary key.
  std::string to_string() const;
  static std::optional<UserId> from_string(const std::string& s);

  util::ByteView view() const { return util::ByteView(bytes.data(), bytes.size()); }
  bool is_zero() const;
};

/// Deterministically derive a user id from an account name (first 10 bytes
/// of SHA-256). Real deployments would allocate ids server-side; a hash
/// keeps simulated ids stable across runs and collision-free in practice.
UserId user_id_from_name(const std::string& account_name);

}  // namespace sos::pki
