// The one-time infrastructure requirement of Fig 2a: during app signup the
// device generates keys, the cloud validates that the claimed unique
// user-identifier belongs to the logged-in account, the CA issues the
// certificate, and the device receives its certificate plus the CA root.
// After this exchange no Internet is needed for dissemination (§IV).
#pragma once

#include <map>
#include <optional>
#include <string>

#include "crypto/drbg.hpp"
#include "pki/authority.hpp"

namespace sos::pki {

/// Everything a device holds after signup.
struct DeviceCredentials {
  std::string account_name;
  UserId user_id;
  crypto::Ed25519Keypair signing_keypair;   // long-term identity key
  crypto::X25519Key enc_private_key{};      // long-term E2E decryption key
  crypto::X25519Key enc_public_key{};
  Certificate certificate;                  // CA-issued, binds user_id<->key
  TrustStore trust;                         // CA root + CRL snapshot
};

enum class SignupError {
  DuplicateAccount,
  IdentifierMismatch,   // claimed uid does not match the logged-in account
  BadProofOfPossession,
};

/// Simulated cloud + CA pair. One instance plays both infrastructure roles
/// of Fig 2a; devices interact only at signup (and for CRL refresh, which
/// the paper notes requires connectivity).
class BootstrapService {
 public:
  explicit BootstrapService(util::ByteView seed,
                            util::SimTime cert_lifetime = util::days(365));

  /// Full Fig 2a flow for a well-behaved device. The caller supplies the
  /// device RNG so key generation happens "on device".
  std::optional<DeviceCredentials> signup(const std::string& account_name, crypto::Drbg& device_rng,
                                          util::SimTime now);

  /// Raw cloud endpoint: validates the CSR against the logged-in account
  /// name, catching a malicious device claiming someone else's identifier
  /// (the attack §IV describes).
  std::optional<Certificate> submit_csr(const std::string& logged_in_account,
                                        const CertificateRequest& csr, util::SimTime now,
                                        SignupError* error = nullptr);

  CertificateAuthority& authority() { return ca_; }
  const CertificateAuthority& authority() const { return ca_; }

  /// What a device pins at install time.
  TrustStore make_trust_store() const;

  /// Connectivity-requiring CRL refresh (paper limitation: revocation needs
  /// Internet).
  void refresh_crl(TrustStore& store) const;

  bool account_exists(const std::string& name) const { return accounts_.count(name) > 0; }
  std::size_t account_count() const { return accounts_.size(); }

 private:
  CertificateAuthority ca_;
  std::map<std::string, UserId> accounts_;
};

}  // namespace sos::pki
