#include "pki/certificate.hpp"

#include "util/codec.hpp"

namespace sos::pki {

util::Bytes Certificate::signing_bytes() const {
  util::Writer w;
  w.str("sos-cert-v1");
  w.u64(serial);
  w.raw(subject_id.view());
  w.str(subject_name);
  w.raw(util::ByteView(subject_key.data(), subject_key.size()));
  w.raw(util::ByteView(subject_enc_key.data(), subject_enc_key.size()));
  w.str(issuer_name);
  w.f64(not_before);
  w.f64(not_after);
  return w.take();
}

util::Bytes Certificate::encode() const {
  util::Writer w;
  w.u64(serial);
  w.raw(subject_id.view());
  w.str(subject_name);
  w.raw(util::ByteView(subject_key.data(), subject_key.size()));
  w.raw(util::ByteView(subject_enc_key.data(), subject_enc_key.size()));
  w.str(issuer_name);
  w.f64(not_before);
  w.f64(not_after);
  w.raw(util::ByteView(signature.data(), signature.size()));
  return w.take();
}

std::optional<Certificate> Certificate::decode(util::ByteView data) {
  util::Reader r(data);
  Certificate c;
  c.serial = r.u64();
  c.subject_id.bytes = r.raw_array<kUserIdSize>();
  c.subject_name = r.str();
  c.subject_key = r.raw_array<crypto::kEdPublicKeySize>();
  c.subject_enc_key = r.raw_array<crypto::kX25519KeySize>();
  c.issuer_name = r.str();
  c.not_before = r.f64();
  c.not_after = r.f64();
  c.signature = r.raw_array<crypto::kEdSignatureSize>();
  if (!r.done()) return std::nullopt;
  return c;
}

util::Bytes CertificateRequest::signing_bytes() const {
  util::Writer w;
  w.str("sos-csr-v1");
  w.raw(subject_id.view());
  w.str(subject_name);
  w.raw(util::ByteView(subject_key.data(), subject_key.size()));
  w.raw(util::ByteView(subject_enc_key.data(), subject_enc_key.size()));
  return w.take();
}

util::Bytes CertificateRequest::encode() const {
  util::Writer w;
  w.raw(subject_id.view());
  w.str(subject_name);
  w.raw(util::ByteView(subject_key.data(), subject_key.size()));
  w.raw(util::ByteView(subject_enc_key.data(), subject_enc_key.size()));
  w.raw(util::ByteView(pop_signature.data(), pop_signature.size()));
  return w.take();
}

std::optional<CertificateRequest> CertificateRequest::decode(util::ByteView data) {
  util::Reader r(data);
  CertificateRequest c;
  c.subject_id.bytes = r.raw_array<kUserIdSize>();
  c.subject_name = r.str();
  c.subject_key = r.raw_array<crypto::kEdPublicKeySize>();
  c.subject_enc_key = r.raw_array<crypto::kX25519KeySize>();
  c.pop_signature = r.raw_array<crypto::kEdSignatureSize>();
  if (!r.done()) return std::nullopt;
  return c;
}

CertificateRequest CertificateRequest::create(const UserId& id, const std::string& name,
                                              const crypto::Ed25519Keypair& keypair,
                                              const crypto::X25519Key& enc_public_key) {
  CertificateRequest req;
  req.subject_id = id;
  req.subject_name = name;
  req.subject_key = keypair.public_key();
  req.subject_enc_key = enc_public_key;
  req.pop_signature = keypair.sign(req.signing_bytes());
  return req;
}

bool CertificateRequest::verify_pop() const {
  return crypto::ed25519_verify(subject_key, signing_bytes(), pop_signature);
}

}  // namespace sos::pki
