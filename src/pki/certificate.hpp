// X.509-lite certificates (DESIGN.md substitution #3): the same trust
// decisions as the paper's X.509 deployment — identity binding, issuer
// signature, validity window, serial for revocation — without ASN.1.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "crypto/ed25519.hpp"
#include "crypto/x25519.hpp"
#include "pki/identity.hpp"
#include "util/bytes.hpp"
#include "util/time.hpp"

namespace sos::pki {

struct Certificate {
  std::uint64_t serial = 0;
  UserId subject_id;                 // the paper's unique user-identifier
  std::string subject_name;          // human-readable account name
  crypto::EdPublicKey subject_key{};  // subject's Ed25519 signing key
  crypto::X25519Key subject_enc_key{};  // subject's X25519 key for E2E encryption
  std::string issuer_name;
  util::SimTime not_before = 0;
  util::SimTime not_after = 0;
  crypto::EdSignature signature{};   // issuer's signature over signing_bytes()

  /// Canonical byte string covered by the issuer signature.
  util::Bytes signing_bytes() const;

  util::Bytes encode() const;
  static std::optional<Certificate> decode(util::ByteView data);

  bool valid_at(util::SimTime now) const { return now >= not_before && now <= not_after; }
};

/// Certificate signing request: what a device sends to the CA at signup
/// (Fig 2a step: "generate keys, send CSR with unique user-identifier").
struct CertificateRequest {
  UserId subject_id;
  std::string subject_name;
  crypto::EdPublicKey subject_key{};
  crypto::X25519Key subject_enc_key{};
  /// Proof-of-possession: self-signature over the request fields.
  crypto::EdSignature pop_signature{};

  util::Bytes signing_bytes() const;
  util::Bytes encode() const;
  static std::optional<CertificateRequest> decode(util::ByteView data);

  static CertificateRequest create(const UserId& id, const std::string& name,
                                   const crypto::Ed25519Keypair& keypair,
                                   const crypto::X25519Key& enc_public_key);
  bool verify_pop() const;
};

}  // namespace sos::pki
