#include "pki/identity.hpp"

#include "crypto/sha256.hpp"

namespace sos::pki {

std::string UserId::to_string() const {
  return util::base32_encode(view());
}

std::optional<UserId> UserId::from_string(const std::string& s) {
  auto decoded = util::base32_decode(s);
  if (!decoded || decoded->size() != kUserIdSize) return std::nullopt;
  UserId id;
  for (std::size_t i = 0; i < kUserIdSize; ++i) id.bytes[i] = (*decoded)[i];
  return id;
}

bool UserId::is_zero() const {
  for (auto b : bytes)
    if (b != 0) return false;
  return true;
}

UserId user_id_from_name(const std::string& account_name) {
  auto digest = crypto::Sha256::hash(util::to_bytes(account_name));
  UserId id;
  for (std::size_t i = 0; i < kUserIdSize; ++i) id.bytes[i] = digest[i];
  return id;
}

}  // namespace sos::pki
