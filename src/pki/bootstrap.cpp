#include "pki/bootstrap.hpp"

#include "crypto/x25519.hpp"

namespace sos::pki {

namespace {
crypto::EdSeed seed_from(util::ByteView seed) {
  crypto::Drbg d(seed);
  return d.generate_array<crypto::kEdSeedSize>();
}
}  // namespace

BootstrapService::BootstrapService(util::ByteView seed, util::SimTime cert_lifetime)
    : ca_("alleyoop-ca", seed_from(seed), cert_lifetime) {}

std::optional<DeviceCredentials> BootstrapService::signup(const std::string& account_name,
                                                          crypto::Drbg& device_rng,
                                                          util::SimTime now) {
  if (accounts_.count(account_name) > 0) return std::nullopt;

  DeviceCredentials creds;
  creds.account_name = account_name;
  creds.user_id = user_id_from_name(account_name);
  // Key generation happens on the device (Fig 2a: keys never leave it).
  creds.signing_keypair =
      crypto::Ed25519Keypair::from_seed(device_rng.generate_array<crypto::kEdSeedSize>());
  creds.enc_private_key =
      crypto::x25519_clamp(device_rng.generate_array<crypto::kX25519KeySize>());
  creds.enc_public_key = crypto::x25519_base(creds.enc_private_key);

  auto csr = CertificateRequest::create(creds.user_id, account_name, creds.signing_keypair,
                                        creds.enc_public_key);
  auto cert = submit_csr(account_name, csr, now);
  if (!cert) return std::nullopt;
  creds.certificate = *cert;
  creds.trust = make_trust_store();
  return creds;
}

std::optional<Certificate> BootstrapService::submit_csr(const std::string& logged_in_account,
                                                        const CertificateRequest& csr,
                                                        util::SimTime now, SignupError* error) {
  auto set_error = [&](SignupError e) {
    if (error) *error = e;
  };
  if (accounts_.count(logged_in_account) > 0) {
    set_error(SignupError::DuplicateAccount);
    return std::nullopt;
  }
  // Fig 2a mitigation: the cloud asks the CA to compare the claimed unique
  // user-identifier with the identifier of the logged-in user.
  if (!(csr.subject_id == user_id_from_name(logged_in_account)) ||
      csr.subject_name != logged_in_account) {
    set_error(SignupError::IdentifierMismatch);
    return std::nullopt;
  }
  auto cert = ca_.issue(csr, now);
  if (!cert) {
    set_error(SignupError::BadProofOfPossession);
    return std::nullopt;
  }
  accounts_[logged_in_account] = csr.subject_id;
  return cert;
}

TrustStore BootstrapService::make_trust_store() const {
  TrustStore store(ca_.name(), ca_.root_public_key());
  store.update_crl(ca_.revocation_list());
  return store;
}

void BootstrapService::refresh_crl(TrustStore& store) const {
  store.update_crl(ca_.revocation_list());
}

}  // namespace sos::pki
