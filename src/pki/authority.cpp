#include "pki/authority.hpp"

namespace sos::pki {

const char* to_string(VerifyResult r) {
  switch (r) {
    case VerifyResult::Ok: return "ok";
    case VerifyResult::BadSignature: return "bad-signature";
    case VerifyResult::UnknownIssuer: return "unknown-issuer";
    case VerifyResult::Expired: return "expired";
    case VerifyResult::NotYetValid: return "not-yet-valid";
    case VerifyResult::Revoked: return "revoked";
    case VerifyResult::IdentityMismatch: return "identity-mismatch";
  }
  return "?";
}

CertificateAuthority::CertificateAuthority(std::string name, const crypto::EdSeed& seed,
                                           util::SimTime cert_lifetime)
    : name_(std::move(name)),
      keypair_(crypto::Ed25519Keypair::from_seed(seed)),
      cert_lifetime_(cert_lifetime) {}

std::optional<Certificate> CertificateAuthority::issue(const CertificateRequest& csr,
                                                       util::SimTime now) {
  if (!csr.verify_pop()) return std::nullopt;
  Certificate cert;
  cert.serial = next_serial_++;
  cert.subject_id = csr.subject_id;
  cert.subject_name = csr.subject_name;
  cert.subject_key = csr.subject_key;
  cert.subject_enc_key = csr.subject_enc_key;
  cert.issuer_name = name_;
  cert.not_before = now;
  cert.not_after = now + cert_lifetime_;
  cert.signature = keypair_.sign(cert.signing_bytes());
  return cert;
}

Certificate CertificateAuthority::issue_unchecked(Certificate cert) {
  cert.serial = next_serial_++;
  cert.issuer_name = name_;
  cert.signature = keypair_.sign(cert.signing_bytes());
  return cert;
}

void CertificateAuthority::revoke(std::uint64_t serial) {
  crl_.insert(serial);
}

TrustStore::TrustStore(std::string issuer_name, crypto::EdPublicKey root_key) {
  set_root(std::move(issuer_name), root_key);
}

void TrustStore::set_root(std::string issuer_name, crypto::EdPublicKey root_key) {
  issuer_name_ = std::move(issuer_name);
  root_key_ = root_key;
  has_root_ = true;
}

void TrustStore::update_crl(std::set<std::uint64_t> crl) {
  crl_ = std::move(crl);
}

void TrustStore::add_revoked(std::uint64_t serial) {
  crl_.insert(serial);
}

VerifyResult TrustStore::verify(const Certificate& cert, util::SimTime now,
                                crypto::VerifyMemo* memo) const {
  if (!has_root_ || cert.issuer_name != issuer_name_) return VerifyResult::UnknownIssuer;
  if (!verify_signature(cert, memo)) return VerifyResult::BadSignature;
  if (now < cert.not_before) return VerifyResult::NotYetValid;
  if (now > cert.not_after) return VerifyResult::Expired;
  if (crl_.count(cert.serial) > 0) return VerifyResult::Revoked;
  return VerifyResult::Ok;
}

VerifyResult TrustStore::verify_policy(const Certificate& cert, util::SimTime now) const {
  if (!has_root_ || cert.issuer_name != issuer_name_) return VerifyResult::UnknownIssuer;
  if (now < cert.not_before) return VerifyResult::NotYetValid;
  if (now > cert.not_after) return VerifyResult::Expired;
  if (crl_.count(cert.serial) > 0) return VerifyResult::Revoked;
  return VerifyResult::Ok;
}

bool TrustStore::verify_signature(const Certificate& cert, crypto::VerifyMemo* memo) const {
  util::Bytes body = cert.signing_bytes();
  if (memo) return memo->verify(root_key_, body, cert.signature);
  return crypto::ed25519_verify(root_key_, body, cert.signature);
}

VerifyResult TrustStore::verify_identity(const Certificate& cert, const UserId& expected,
                                         util::SimTime now) const {
  VerifyResult r = verify(cert, now);
  if (r != VerifyResult::Ok) return r;
  if (!(cert.subject_id == expected)) return VerifyResult::IdentityMismatch;
  return VerifyResult::Ok;
}

}  // namespace sos::pki
