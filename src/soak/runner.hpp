// Month-scale soak driver: replays a recorded world segment by segment on a
// deploy::ReplaySession, snapshotting fleet metrics at a fixed sim-time
// cadence, checkpointing at quiescent episode boundaries, and halting on
// stop conditions (horizon, wall-clock budget, metric predicates) or on a
// rolling-window anomaly. Segmented execution is bitwise identical to an
// uninterrupted replay, so anything the soak flags is a real time-scale bug,
// not a harness artifact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "deploy/scenario.hpp"
#include "soak/anomaly.hpp"
#include "soak/checkpoint.hpp"

namespace sos::deploy {
class ReplaySession;
}

namespace sos::soak {

/// One metric predicate: halt when `metric op value` holds at a snapshot.
/// Supported ops: ">=" and "<=". Metrics are the snapshot's flat names
/// (e.g. "deliveries", "bundles_sent", "rss_kb", "sim_days").
struct StopPredicate {
  std::string metric;
  std::string op;
  double value = 0;
};

struct StopConditions {
  /// Wall-clock budget in seconds; 0 = unlimited. Checked at snapshots.
  double wall_budget_s = 0;
  std::vector<StopPredicate> predicates;
};

struct SoakOptions {
  deploy::ScenarioConfig config;
  deploy::ReplayOptions replay;
  /// Sim-time between metric snapshots (snapshots land on the first
  /// quiescent cut at or after each multiple).
  double snapshot_interval_s = 6 * 3600.0;
  /// Sim-time between checkpoints; checkpoints require checkpoint_dir.
  double checkpoint_interval_s = 86400.0;
  std::string checkpoint_dir;  // empty = no checkpoints
  std::string jsonl_path;      // empty = no event log
  /// Minimum globally quiescent contact gap eligible as a cut.
  double min_gap_s = 60.0;
  bool anomaly_detection = true;
  AnomalyConfig anomaly;
  StopConditions stop;
};

struct SoakResult {
  deploy::ScenarioResult scenario;  // merged metrics at halt (final iff completed)
  bool completed = false;           // reached the horizon
  std::string stop_reason;          // "horizon" | "wall-budget" | "predicate:..." | "anomaly:..."
  std::vector<Anomaly> anomalies;
  std::uint64_t segments = 0;            // advance_to segments executed (cumulative)
  std::uint64_t checkpoints_written = 0;
  double sim_time = 0;
  std::vector<MetricSnapshot> snapshots;
};

/// Resolve a snapshot metric by its flat JSONL name; false if unknown.
bool snapshot_metric(const MetricSnapshot& snap, const std::string& name, double* out);

class Runner {
 public:
  explicit Runner(SoakOptions opts) : opts_(std::move(opts)) {}

  /// Run from sim time 0 to the horizon (or an earlier stop condition).
  SoakResult run(const deploy::ScenarioWorld& world);

  /// Resume from a checkpoint previously written by run()/resume() against
  /// the same (config, world). Rejects (completed=false, stop_reason set)
  /// on world-digest mismatch or a malformed payload — the fleet is never
  /// partially attached.
  SoakResult resume(const deploy::ScenarioWorld& world, const Checkpoint& ckpt);

 private:
  SoakResult drive(deploy::ReplaySession& session, const deploy::ScenarioWorld& world,
                   std::uint64_t start_segment);

  SoakOptions opts_;
};

}  // namespace sos::soak
