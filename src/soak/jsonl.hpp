// Minimal JSONL (one JSON object per line) event log for the soak harness.
// The metric snapshots a month-scale run emits are flat key/value records;
// this writes them append-only so a run killed mid-soak loses at most the
// line being written, and the scheduled CI job can upload the file as-is.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>

namespace sos::soak {

/// One flat JSON object, built field by field. Keys are emitted in call
/// order; values are numbers, strings or booleans (all the soak log needs).
class JsonObject {
 public:
  JsonObject& num(std::string_view key, double v);
  JsonObject& count(std::string_view key, std::uint64_t v);
  JsonObject& str(std::string_view key, std::string_view v);
  JsonObject& boolean(std::string_view key, bool v);

  /// The serialized object, e.g. {"a":1,"b":"x"}.
  std::string render() const { return "{" + body_ + "}"; }

 private:
  void key(std::string_view k);
  std::string body_;
};

/// Append-only JSONL sink. Every write() emits one line and flushes.
class JsonlWriter {
 public:
  /// Opens `path` for append; ok() reports failure (callers degrade to
  /// running without a log rather than aborting a month of simulation).
  explicit JsonlWriter(const std::string& path);

  bool ok() const { return out_.good(); }
  void write(const JsonObject& obj);

 private:
  std::ofstream out_;
};

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(std::string_view s);

}  // namespace sos::soak
