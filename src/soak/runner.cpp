#include "soak/runner.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <sstream>

#if defined(__linux__)
#include <unistd.h>
#endif

#include "deploy/replay.hpp"
#include "mw/schemes/prophet.hpp"
#include "mw/sos_node.hpp"
#include "soak/jsonl.hpp"
#include "util/codec.hpp"

namespace sos::soak {

namespace {

std::uint64_t read_rss_kb() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long pages_total = 0;
  unsigned long pages_resident = 0;
  int n = std::fscanf(f, "%lu %lu", &pages_total, &pages_resident);
  std::fclose(f);
  if (n != 2) return 0;
  long page = ::sysconf(_SC_PAGESIZE);
  if (page <= 0) page = 4096;
  return static_cast<std::uint64_t>(pages_resident) * static_cast<std::uint64_t>(page) /
         1024;
#else
  return 0;
#endif
}

MetricSnapshot make_snapshot(deploy::ReplaySession& session, std::uint64_t segment) {
  MetricSnapshot snap;
  snap.sim_time = session.sim_time();
  snap.segment = segment;
  snap.totals = session.stats_totals();
  const deploy::ScenarioResult& partial = session.partial();
  snap.posts = partial.oracle.posts().size();
  snap.deliveries = partial.oracle.deliveries().size();
  snap.carries = partial.oracle.carries().size();
  snap.wire_frames = partial.wire_frames;
  snap.wire_bytes = partial.wire_bytes;
  for (std::size_t i = 0; i < session.node_count(); ++i) {
    mw::SosNode& node = session.node(i);
    snap.store_bundles += node.store().size();
    snap.resume_cache_entries += node.adhoc().resume_cache_size();
    snap.crl_entries += node.credentials().trust.crl_size();
    if (auto* prophet = dynamic_cast<mw::ProphetScheme*>(&node.routing().scheme())) {
      snap.prophet_entries += prophet->table_size();
    }
  }
  snap.rss_kb = read_rss_kb();
  return snap;
}

void log_snapshot(JsonlWriter& log, const MetricSnapshot& s) {
  JsonObject o;
  o.str("kind", "snapshot")
      .num("sim_time", s.sim_time)
      .num("sim_days", s.sim_time / 86400.0)
      .count("segment", s.segment)
      .count("posts", s.posts)
      .count("deliveries", s.deliveries)
      .count("carries", s.carries)
      .count("sessions_established", s.totals.sessions_established)
      .count("sessions_resumed", s.totals.sessions_resumed)
      .count("full_handshakes", s.totals.full_handshakes)
      .count("resume_rejected", s.totals.resume_rejected)
      .count("frames_sent", s.totals.frames_sent)
      .count("frames_received", s.totals.frames_received)
      .count("bundles_sent", s.totals.bundles_sent)
      .count("bundles_received", s.totals.bundles_received)
      .count("decrypt_failures", s.totals.decrypt_failures)
      .count("malformed_frames", s.totals.malformed_frames)
      .count("duplicates_ignored", s.totals.duplicates_ignored)
      .count("reboots", s.totals.reboots)
      .count("wire_frames", s.wire_frames)
      .count("wire_bytes", s.wire_bytes)
      .count("store_bundles", s.store_bundles)
      .count("resume_cache_entries", s.resume_cache_entries)
      .count("prophet_entries", s.prophet_entries)
      .count("crl_entries", s.crl_entries)
      .count("rss_kb", s.rss_kb);
  log.write(o);
}

}  // namespace

bool snapshot_metric(const MetricSnapshot& snap, const std::string& name, double* out) {
  auto set = [out](double v) {
    *out = v;
    return true;
  };
  if (name == "sim_time") return set(snap.sim_time);
  if (name == "sim_days") return set(snap.sim_time / 86400.0);
  if (name == "posts") return set(static_cast<double>(snap.posts));
  if (name == "deliveries") return set(static_cast<double>(snap.deliveries));
  if (name == "carries") return set(static_cast<double>(snap.carries));
  if (name == "sessions_established")
    return set(static_cast<double>(snap.totals.sessions_established));
  if (name == "sessions_resumed")
    return set(static_cast<double>(snap.totals.sessions_resumed));
  if (name == "full_handshakes")
    return set(static_cast<double>(snap.totals.full_handshakes));
  if (name == "frames_sent") return set(static_cast<double>(snap.totals.frames_sent));
  if (name == "bundles_sent") return set(static_cast<double>(snap.totals.bundles_sent));
  if (name == "decrypt_failures")
    return set(static_cast<double>(snap.totals.decrypt_failures));
  if (name == "malformed_frames")
    return set(static_cast<double>(snap.totals.malformed_frames));
  if (name == "wire_frames") return set(static_cast<double>(snap.wire_frames));
  if (name == "wire_bytes") return set(static_cast<double>(snap.wire_bytes));
  if (name == "store_bundles") return set(static_cast<double>(snap.store_bundles));
  if (name == "resume_cache_entries")
    return set(static_cast<double>(snap.resume_cache_entries));
  if (name == "prophet_entries") return set(static_cast<double>(snap.prophet_entries));
  if (name == "crl_entries") return set(static_cast<double>(snap.crl_entries));
  if (name == "rss_kb") return set(static_cast<double>(snap.rss_kb));
  return false;
}

SoakResult Runner::run(const deploy::ScenarioWorld& world) {
  deploy::ReplaySession session(opts_.config, world, opts_.replay);
  return drive(session, world, 0);
}

SoakResult Runner::resume(const deploy::ScenarioWorld& world, const Checkpoint& ckpt) {
  SoakResult result;
  if (ckpt.world_digest != world_digest(opts_.config, world)) {
    result.stop_reason =
        "resume-rejected: checkpoint world digest does not match this config/world";
    return result;
  }
  deploy::ReplaySession session(opts_.config, world, opts_.replay);
  util::Reader r{util::ByteView(ckpt.payload)};
  if (!session.load_state(r)) {
    result.stop_reason = "resume-rejected: malformed checkpoint payload";
    return result;
  }
  return drive(session, world, ckpt.segment);
}

SoakResult Runner::drive(deploy::ReplaySession& session,
                         const deploy::ScenarioWorld& world,
                         std::uint64_t start_segment) {
  SoakResult result;
  result.segments = start_segment;

  if (!opts_.jsonl_path.empty()) {
    std::filesystem::path parent = std::filesystem::path(opts_.jsonl_path).parent_path();
    if (!parent.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(parent, ec);
    }
  }
  JsonlWriter log(opts_.jsonl_path.empty() ? "/dev/null" : opts_.jsonl_path);
  const bool logging = !opts_.jsonl_path.empty() && log.ok();

  AnomalyDetector detector(opts_.anomaly);
  const std::array<std::uint8_t, 32> digest = world_digest(opts_.config, world);
  const auto wall_start = std::chrono::steady_clock::now();

  std::vector<util::SimTime> cuts = session.quiescent_cuts(opts_.min_gap_s);
  cuts.push_back(session.horizon());

  double next_snapshot = session.sim_time() + opts_.snapshot_interval_s;
  double last_checkpoint = session.sim_time();

  std::size_t ci = 0;
  while (ci < cuts.size() && cuts[ci] <= session.sim_time()) ++ci;

  while (session.sim_time() < session.horizon() && result.stop_reason.empty()) {
    // Advance to the first eligible cut at or past the snapshot cadence
    // (always at least one cut forward, so progress is guaranteed).
    std::size_t target = ci;
    while (target + 1 < cuts.size() && cuts[target] < next_snapshot) ++target;
    session.advance_to(cuts[target]);
    ci = target + 1;
    ++result.segments;
    next_snapshot = session.sim_time() + opts_.snapshot_interval_s;

    MetricSnapshot snap = make_snapshot(session, result.segments);
    result.snapshots.push_back(snap);
    if (logging) log_snapshot(log, snap);

    if (opts_.anomaly_detection) {
      std::vector<Anomaly> found = detector.observe(snap);
      for (const Anomaly& a : found) {
        result.anomalies.push_back(a);
        if (logging) {
          JsonObject o;
          o.str("kind", "anomaly")
              .str("metric", a.metric)
              .str("anomaly", a.kind)
              .str("detail", a.detail)
              .num("sim_time", a.sim_time);
          log.write(o);
        }
      }
      if (!found.empty()) {
        result.stop_reason = "anomaly: " + found.front().detail;
        break;
      }
    }

    for (const StopPredicate& p : opts_.stop.predicates) {
      double v = 0;
      if (!snapshot_metric(snap, p.metric, &v)) continue;
      bool hit = (p.op == ">=" && v >= p.value) || (p.op == "<=" && v <= p.value);
      if (hit) {
        std::ostringstream os;
        os << "predicate: " << p.metric << " " << p.op << " " << p.value
           << " (observed " << v << ")";
        result.stop_reason = os.str();
        break;
      }
    }
    if (!result.stop_reason.empty()) break;

    if (opts_.stop.wall_budget_s > 0) {
      double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                     wall_start)
                           .count();
      if (elapsed >= opts_.stop.wall_budget_s) {
        result.stop_reason = "wall-budget";
        break;
      }
    }

    // Checkpoint at this quiescent cut if due (never at the horizon — a
    // finished run has nothing left to resume).
    if (!opts_.checkpoint_dir.empty() && session.sim_time() < session.horizon() &&
        session.sim_time() >= last_checkpoint + opts_.checkpoint_interval_s) {
      Checkpoint c;
      c.segment = result.segments;
      c.sim_time = session.sim_time();
      c.world_digest = digest;
      util::Writer w;
      session.save_state(w);
      c.payload = w.take();
      std::string error;
      if (CheckpointStore(opts_.checkpoint_dir).save(c, &error)) {
        ++result.checkpoints_written;
        last_checkpoint = session.sim_time();
        if (logging) {
          JsonObject o;
          o.str("kind", "checkpoint")
              .count("segment", c.segment)
              .num("sim_time", c.sim_time)
              .count("payload_bytes", c.payload.size());
          log.write(o);
        }
      } else if (logging) {
        JsonObject o;
        o.str("kind", "checkpoint-error").str("detail", error).num("sim_time", c.sim_time);
        log.write(o);
      }
    }
  }

  result.sim_time = session.sim_time();
  result.completed = result.sim_time >= session.horizon() && result.stop_reason.empty();
  if (result.completed) result.stop_reason = "horizon";
  result.scenario = session.finish();

  if (logging) {
    JsonObject o;
    o.str("kind", "result")
        .str("stop_reason", result.stop_reason)
        .boolean("completed", result.completed)
        .num("sim_time", result.sim_time)
        .count("segments", result.segments)
        .count("checkpoints", result.checkpoints_written)
        .count("anomalies", result.anomalies.size())
        .count("deliveries", result.scenario.oracle.deliveries().size());
    log.write(o);
  }
  return result;
}

}  // namespace sos::soak
