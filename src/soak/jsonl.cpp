#include "soak/jsonl.hpp"

#include <cstdio>
#include <limits>
#include <sstream>

namespace sos::soak {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c) & 0xff);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonObject::key(std::string_view k) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += json_escape(k);
  body_ += "\":";
}

JsonObject& JsonObject::num(std::string_view k, double v) {
  key(k);
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  body_ += os.str();
  return *this;
}

JsonObject& JsonObject::count(std::string_view k, std::uint64_t v) {
  key(k);
  body_ += std::to_string(v);
  return *this;
}

JsonObject& JsonObject::str(std::string_view k, std::string_view v) {
  key(k);
  body_ += '"';
  body_ += json_escape(v);
  body_ += '"';
  return *this;
}

JsonObject& JsonObject::boolean(std::string_view k, bool v) {
  key(k);
  body_ += v ? "true" : "false";
  return *this;
}

JsonlWriter::JsonlWriter(const std::string& path)
    : out_(path, std::ios::out | std::ios::app) {}

void JsonlWriter::write(const JsonObject& obj) {
  out_ << obj.render() << '\n';
  out_.flush();
}

}  // namespace sos::soak
