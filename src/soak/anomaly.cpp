#include "soak/anomaly.hpp"

#include <algorithm>
#include <sstream>

namespace sos::soak {

namespace {
std::string fmt_days(double sim_time) {
  std::ostringstream os;
  os.precision(3);
  os << (sim_time / 86400.0) << "d";
  return os.str();
}
}  // namespace

void AnomalyDetector::track_rate(const std::string& name, std::uint64_t value,
                                 double hours, double sim_time,
                                 std::vector<Anomaly>& out) {
  CounterTrack& t = tracks_[name];
  if (!t.primed) {
    t.primed = true;
    t.last = value;
    return;
  }
  std::uint64_t delta = value >= t.last ? value - t.last : 0;
  t.last = value;
  // Snapshots land on quiescent cuts, so interval lengths vary severalfold;
  // comparing raw deltas would flag every long interval as a spike. Compare
  // per-sim-hour rates instead (the absolute floor stays on the raw delta so
  // a short interval's small-number noise cannot trip it).
  if (hours <= 0) return;
  double rate = static_cast<double>(delta) / hours;
  if (t.rates.size() >= config_.window) {
    // Baseline on the window's PEAK rate, not its mean: duty-cycled
    // workloads (quiet nights, weekend bridge lulls) drag a mean down by
    // the duty cycle itself — the first month soak read every Monday
    // commute backlog flush as an 8.8x "spike" over a weekend-lulled mean.
    // A genuine retry storm or feedback loop exceeds even the recent peak.
    double peak = *std::max_element(t.rates.begin(), t.rates.end());
    if (delta > config_.rate_spike_min && rate > config_.rate_spike_factor * peak) {
      std::ostringstream os;
      os << name << " jumped to " << rate << "/h (" << delta << " over "
         << hours << "h) at " << fmt_days(sim_time) << " vs rolling-window peak "
         << peak << "/h over the last " << t.rates.size() << " intervals (factor "
         << (peak > 0 ? rate / peak : 0) << ", threshold "
         << config_.rate_spike_factor << ")";
      out.push_back({name, "rate-spike", os.str(), sim_time});
    }
    t.rates.pop_front();
  }
  t.rates.push_back(rate);
}

void AnomalyDetector::track_stall(const std::string& name, std::uint64_t value,
                                  std::uint64_t frames_delta, double sim_time,
                                  std::vector<Anomaly>& out) {
  CounterTrack& t = tracks_["stall:" + name];
  if (!t.primed) {
    t.primed = true;
    t.last = value;
    return;
  }
  std::uint64_t delta = value >= t.last ? value - t.last : 0;
  t.last = value;
  // Only intervals with traffic count toward a stall: a quiet stretch of the
  // trace legitimately moves nothing.
  if (delta == 0 && frames_delta > 0) {
    ++t.zero_run;
  } else if (delta > 0) {
    t.zero_run = 0;
    t.stalled = false;
  }
  if (t.zero_run >= config_.stall_intervals && !t.stalled) {
    t.stalled = true;
    std::ostringstream os;
    os << name << " has not advanced for " << t.zero_run
       << " consecutive intervals ending at " << fmt_days(sim_time)
       << " while frames kept flowing (stuck at " << value << ")";
    out.push_back({name, "stall", os.str(), sim_time});
  }
}

std::vector<Anomaly> AnomalyDetector::observe(const MetricSnapshot& snap) {
  std::vector<Anomaly> out;

  std::uint64_t frames_delta =
      primed_ && snap.wire_frames >= last_frames_ ? snap.wire_frames - last_frames_ : 0;
  double hours = primed_ ? (snap.sim_time - last_sim_time_) / 3600.0 : 0;

  track_rate("sessions_established", snap.totals.sessions_established, hours,
             snap.sim_time, out);
  track_rate("full_handshakes", snap.totals.full_handshakes, hours, snap.sim_time, out);
  track_rate("frames_sent", snap.totals.frames_sent, hours, snap.sim_time, out);
  track_rate("bundles_sent", snap.totals.bundles_sent, hours, snap.sim_time, out);
  track_rate("decrypt_failures", snap.totals.decrypt_failures, hours, snap.sim_time, out);
  track_rate("malformed_frames", snap.totals.malformed_frames, hours, snap.sim_time, out);
  track_rate("resume_rejected", snap.totals.resume_rejected, hours, snap.sim_time, out);
  track_rate("reboots", snap.totals.reboots, hours, snap.sim_time, out);

  if (primed_) {
    track_stall("bundles_sent", snap.totals.bundles_sent, frames_delta, snap.sim_time, out);
    track_stall("deliveries", snap.totals.deliveries, frames_delta, snap.sim_time, out);
    track_stall("sessions_established", snap.totals.sessions_established, frames_delta,
                snap.sim_time, out);
  }

  if (snap.rss_kb > 0) {
    // Normalize RSS by the resident bundle copies the process is supposed to
    // be holding: a month-scale soak's stores legitimately fill toward
    // capacity for weeks (the first month soak grew 59k copies by day 12 at a
    // flat ~1.3 KiB each), so raw RSS rises linearly the whole run and a raw
    // window-min baseline trips on healthy fill. The leak signature is memory
    // outpacing resident state — RSS-per-bundle climbing — which stays flat
    // or falls during fill. The raw min_kb guard stays on absolute growth so
    // early-run overhead-dominated ratios cannot trip it.
    double per_bundle = static_cast<double>(snap.rss_kb) /
                        static_cast<double>(1 + snap.store_bundles);
    if (rss_window_.size() >= config_.window) {
      double low_norm = rss_window_.front().first;
      std::uint64_t low_raw = rss_window_.front().second;
      for (const auto& [norm, raw] : rss_window_) {
        low_norm = std::min(low_norm, norm);
        low_raw = std::min(low_raw, raw);
      }
      if (snap.rss_kb > config_.rss_growth_min_kb + low_raw &&
          per_bundle > config_.rss_growth_factor * low_norm) {
        std::ostringstream os;
        os << "rss grew to " << snap.rss_kb << " KiB (" << per_bundle
           << " KiB per resident bundle, " << snap.store_bundles
           << " stored) at " << fmt_days(snap.sim_time)
           << " vs rolling-window minimum " << low_norm
           << " KiB/bundle (factor "
           << (low_norm > 0 ? per_bundle / low_norm : 0) << ", threshold "
           << config_.rss_growth_factor << ")";
        out.push_back({"rss_kb", "rss-growth", os.str(), snap.sim_time});
      }
      rss_window_.pop_front();
    }
    rss_window_.push_back({per_bundle, snap.rss_kb});
  }

  last_frames_ = snap.wire_frames;
  last_sim_time_ = snap.sim_time;
  primed_ = true;
  return out;
}

}  // namespace sos::soak
