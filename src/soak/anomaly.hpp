// Rolling-window anomaly detection over soak metric snapshots.
//
// A month-scale run emits a snapshot every few sim-hours; this watches the
// stream for three families of time-scale bugs that short benchmark runs
// never expose:
//
//   rate-spike   — a counter's per-sim-hour rate jumps far above its
//                  rolling-window PEAK rate (retry storm, feedback loop).
//                  Rates, not raw deltas: snapshots land on quiescent cuts,
//                  so interval lengths legitimately vary severalfold and a
//                  long interval would otherwise read as a spike. Peak, not
//                  mean: duty-cycled workloads (nights, weekend bridge
//                  lulls) drag a mean baseline down by the duty cycle,
//   stall        — a liveness counter stops moving for several consecutive
//                  intervals while traffic is still flowing (wedged state
//                  machine, leaked handle),
//   rss-growth   — resident set PER RESIDENT BUNDLE keeps climbing past a
//                  factor of its rolling-window minimum (unbounded cache,
//                  leak). Normalized, not raw: a month-scale run's stores
//                  legitimately fill toward capacity for weeks, so raw RSS
//                  grows linearly the whole time — the leak signature is
//                  memory outpacing the state the process is supposed to
//                  hold.
//
// Detection halts the run with a pointed report naming the metric, the
// window statistics, and the sim time — not a bare nonzero exit.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "mw/stats.hpp"

namespace sos::soak {

/// One per-interval metric snapshot, written to the JSONL log and fed to
/// the detector. Counters are cumulative; the detector differences them.
struct MetricSnapshot {
  double sim_time = 0;
  std::uint64_t segment = 0;
  mw::NodeStats totals;               // summed over the fleet
  std::uint64_t posts = 0;            // oracle: posts recorded
  std::uint64_t deliveries = 0;       // oracle: deliveries recorded
  std::uint64_t carries = 0;          // oracle: carry records
  std::uint64_t wire_frames = 0;      // network frames delivered
  std::uint64_t wire_bytes = 0;       // network bytes delivered
  std::uint64_t store_bundles = 0;    // bundles resident across all stores
  std::uint64_t resume_cache_entries = 0;
  std::uint64_t prophet_entries = 0;  // PRoPHET predictability rows (0 if n/a)
  std::uint64_t crl_entries = 0;      // TrustStore CRL entries across fleet
  std::uint64_t rss_kb = 0;           // process resident set (0 if unknown)
};

struct AnomalyConfig {
  std::size_t window = 8;             // rolling window length, in intervals
  double rate_spike_factor = 8.0;     // rate/h > factor * window peak rate/h
  std::uint64_t rate_spike_min = 1000;  // ...and raw delta > this floor
  std::size_t stall_intervals = 6;    // zero-delta intervals before a stall
  // rss/(1+store_bundles) > factor * window min of the same ratio. 2.0:
  // allocator arenas grow in ~20 MiB steps, which jitters the ratio up to
  // ~1.4x on a filling heap; a leak compounds past 2x within a window.
  double rss_growth_factor = 2.0;
  std::uint64_t rss_growth_min_kb = 50 * 1024;  // ...and raw rss grew this much
};

struct Anomaly {
  std::string metric;  // e.g. "sessions_established"
  std::string kind;    // "rate-spike" | "stall" | "rss-growth"
  std::string detail;  // pointed human-readable report
  double sim_time = 0;
};

/// Feed snapshots in order; each observe() returns the anomalies newly
/// detected at that snapshot (usually empty). Stalls are reported once per
/// metric per stall episode, not once per interval.
class AnomalyDetector {
 public:
  explicit AnomalyDetector(AnomalyConfig config) : config_(config) {}

  std::vector<Anomaly> observe(const MetricSnapshot& snap);

 private:
  struct CounterTrack {
    std::deque<double> rates;   // rolling window of per-sim-hour rates
    std::uint64_t last = 0;
    std::size_t zero_run = 0;   // consecutive zero-delta intervals with traffic
    bool stalled = false;       // stall already reported for this episode
    bool primed = false;        // saw the first snapshot (no delta yet)
  };

  void track_rate(const std::string& name, std::uint64_t value, double hours,
                  double sim_time, std::vector<Anomaly>& out);
  void track_stall(const std::string& name, std::uint64_t value,
                   std::uint64_t frames_delta, double sim_time,
                   std::vector<Anomaly>& out);

  AnomalyConfig config_;
  std::map<std::string, CounterTrack> tracks_;
  // (rss per resident bundle, raw rss) per interval.
  std::deque<std::pair<double, std::uint64_t>> rss_window_;
  std::uint64_t last_frames_ = 0;
  double last_sim_time_ = 0;
  bool primed_ = false;
};

}  // namespace sos::soak
