#include "soak/checkpoint.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "crypto/sha256.hpp"
#include "util/codec.hpp"

namespace sos::soak {

namespace {
constexpr char kMagic[8] = {'S', 'O', 'S', 'C', 'K', 'P', 'T', '\0'};

void set_error(std::string* error, std::string msg) {
  if (error != nullptr) *error = std::move(msg);
}
}  // namespace

std::array<std::uint8_t, 32> world_digest(const deploy::ScenarioConfig& config,
                                          const deploy::ScenarioWorld& world) {
  util::Writer w;
  w.varint(config.nodes);
  w.f64(config.days);
  w.u64(config.seed);
  w.str(config.scheme);
  w.f64(config.total_posts_target);
  w.varint(config.communities);
  w.f64(config.bridge_node_frac);
  w.f64(config.resume_lifetime_s);
  w.f64(config.verify_batch_window_s);
  w.u8(config.verify_batch_adaptive ? 1 : 0);
  w.u8(config.verify_signatures ? 1 : 0);
  w.varint(config.store_capacity);
  w.varint(world.trace.size());
  for (const sim::ContactInterval& c : world.trace.contacts()) {
    w.f64(c.start);
    w.f64(c.end);
    w.u32(c.a);
    w.u32(c.b);
  }
  return crypto::Sha256::hash(util::ByteView(w.data()));
}

util::Bytes encode_checkpoint(const Checkpoint& c) {
  util::Writer w;
  w.raw(util::ByteView(reinterpret_cast<const std::uint8_t*>(kMagic), sizeof(kMagic)));
  w.u32(kCheckpointVersion);
  w.raw(util::ByteView(c.world_digest));
  w.u64(c.segment);
  w.f64(c.sim_time);
  w.bytes(util::ByteView(c.payload));
  crypto::Sha256::Digest hash = crypto::Sha256::hash(util::ByteView(w.data()));
  w.raw(util::ByteView(hash));
  return w.take();
}

std::optional<Checkpoint> decode_checkpoint(util::ByteView data, std::string* error) {
  constexpr std::size_t kHeader = sizeof(kMagic) + 4 + 32 + 8 + 8;
  constexpr std::size_t kHash = crypto::Sha256::kDigestSize;
  if (data.size() < kHeader + 1 + kHash) {
    set_error(error, "truncated checkpoint: " + std::to_string(data.size()) +
                         " bytes, header + hash need at least " +
                         std::to_string(kHeader + 1 + kHash));
    return std::nullopt;
  }
  // Integrity first: everything up to the trailing hash must match it, so a
  // flipped bit anywhere (including in the header fields we are about to
  // trust) is reported as corruption, not misparsed.
  util::ByteView body(data.data(), data.size() - kHash);
  util::ByteView stored_hash(data.data() + (data.size() - kHash), kHash);
  crypto::Sha256::Digest computed = crypto::Sha256::hash(body);
  if (!util::ct_equal(util::ByteView(computed), stored_hash)) {
    // Distinguish the two common operator mistakes before declaring rot:
    // a non-checkpoint file (bad magic) and a newer tool's file (version).
    if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
      set_error(error, "not a checkpoint file (bad magic)");
      return std::nullopt;
    }
    util::Reader probe(body);
    probe.raw(sizeof(kMagic));
    std::uint32_t version = probe.u32();
    if (probe.ok() && version > kCheckpointVersion) {
      set_error(error, "checkpoint format version " + std::to_string(version) +
                           " is newer than supported version " +
                           std::to_string(kCheckpointVersion));
      return std::nullopt;
    }
    set_error(error, "checkpoint integrity hash mismatch (truncated or corrupted file)");
    return std::nullopt;
  }
  util::Reader r(body);
  util::Bytes magic = r.raw(sizeof(kMagic));
  if (!r.ok() || std::memcmp(magic.data(), kMagic, sizeof(kMagic)) != 0) {
    set_error(error, "not a checkpoint file (bad magic)");
    return std::nullopt;
  }
  std::uint32_t version = r.u32();
  if (r.ok() && version > kCheckpointVersion) {
    set_error(error, "checkpoint format version " + std::to_string(version) +
                         " is newer than supported version " +
                         std::to_string(kCheckpointVersion));
    return std::nullopt;
  }
  Checkpoint c;
  c.world_digest = r.raw_array<32>();
  c.segment = r.u64();
  c.sim_time = r.f64();
  c.payload = r.bytes();
  if (!r.ok()) {
    set_error(error, "malformed checkpoint body");
    return std::nullopt;
  }
  if (!r.done()) {
    set_error(error, "trailing bytes after checkpoint payload");
    return std::nullopt;
  }
  return c;
}

bool CheckpointStore::save(const Checkpoint& c, std::string* error) const {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  util::Bytes encoded = encode_checkpoint(c);
  fs::path final_path = fs::path(dir_) / ("ckpt-" + std::to_string(c.segment) + ".bin");
  fs::path tmp_path = final_path;
  tmp_path += ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      set_error(error, "cannot open " + tmp_path.string() + " for writing");
      return false;
    }
    out.write(reinterpret_cast<const char*>(encoded.data()),
              static_cast<std::streamsize>(encoded.size()));
    out.flush();
    if (!out.good()) {
      set_error(error, "short write to " + tmp_path.string());
      return false;
    }
  }
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    set_error(error, "rename to " + final_path.string() + " failed: " + ec.message());
    return false;
  }
  return true;
}

std::optional<Checkpoint> CheckpointStore::load_file(const std::string& path,
                                                     std::string* error) const {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    set_error(error, "cannot open " + path);
    return std::nullopt;
  }
  util::Bytes data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  std::string decode_error;
  auto c = decode_checkpoint(util::ByteView(data), &decode_error);
  if (!c) set_error(error, path + ": " + decode_error);
  return c;
}

std::optional<Checkpoint> CheckpointStore::load_latest(std::string* error) const {
  namespace fs = std::filesystem;
  std::error_code ec;
  std::uint64_t best_segment = 0;
  std::string best_path;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (name.rfind("ckpt-", 0) != 0 || name.size() < 10 ||
        name.compare(name.size() - 4, 4, ".bin") != 0) {
      continue;
    }
    std::uint64_t segment = 0;
    try {
      segment = std::stoull(name.substr(5, name.size() - 9));
    } catch (...) {
      continue;
    }
    if (best_path.empty() || segment > best_segment) {
      best_segment = segment;
      best_path = entry.path().string();
    }
  }
  if (ec) {
    set_error(error, "cannot list " + dir_ + ": " + ec.message());
    return std::nullopt;
  }
  if (best_path.empty()) {
    set_error(error, "no checkpoint files in " + dir_);
    return std::nullopt;
  }
  return load_file(best_path, error);
}

}  // namespace sos::soak
