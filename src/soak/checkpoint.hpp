// Versioned checkpoint format and on-disk store for the soak harness.
//
// A checkpoint captures a ReplaySession at a globally quiescent cut: the
// serialized fleet state (exactly the detach/attach inventory each SosNode
// already enumerates — bundle store, resumption cache, verify/advert
// caches, routing tables, stats, pending absolute timer deadlines, per-node
// DRBG streams), the cut's sim time, and the merged partial metrics.
//
// Wire layout (all integers in the codec's standard encodings):
//
//   magic   "SOSCKPT\0"                      8 bytes
//   version u32                              rejected when > supported
//   digest  raw 32 bytes                     world identity (config + trace)
//   segment u64                              segments completed so far
//   simtime f64                              the cut
//   payload varint-length byte string        ReplaySession::save_state blob
//   hash    raw 32 bytes                     SHA-256 over everything above
//
// Every rejection happens at decode, before any node state is touched: a
// truncated, corrupted, future-versioned or wrong-world checkpoint never
// partially restores a fleet.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "deploy/scenario.hpp"
#include "util/bytes.hpp"

namespace sos::soak {

inline constexpr std::uint32_t kCheckpointVersion = 1;

struct Checkpoint {
  std::uint64_t segment = 0;  // quiescent segments completed before the cut
  double sim_time = 0;        // the cut, in sim seconds
  std::array<std::uint8_t, 32> world_digest{};
  util::Bytes payload;        // ReplaySession::save_state blob
};

/// Identity digest of the (config, world) pair a checkpoint belongs to:
/// the world-shaping config fields plus every recorded contact. Resuming
/// against a different scenario is rejected by comparing this.
std::array<std::uint8_t, 32> world_digest(const deploy::ScenarioConfig& config,
                                          const deploy::ScenarioWorld& world);

util::Bytes encode_checkpoint(const Checkpoint& c);

/// Decode + validate. nullopt on any malformation, with a human-pointed
/// diagnostic in *error (wrong magic, future version, truncation, integrity
/// mismatch, trailing bytes).
std::optional<Checkpoint> decode_checkpoint(util::ByteView data, std::string* error);

/// Directory of numbered checkpoint files (ckpt-<segment>.bin), written
/// atomically (temp file + rename) so a crash mid-save never leaves a
/// half-written latest checkpoint.
class CheckpointStore {
 public:
  explicit CheckpointStore(std::string dir) : dir_(std::move(dir)) {}

  const std::string& dir() const { return dir_; }

  /// Write ckpt-<segment>.bin atomically; false (with *error) on I/O failure.
  bool save(const Checkpoint& c, std::string* error) const;

  /// Load and validate one file.
  std::optional<Checkpoint> load_file(const std::string& path, std::string* error) const;

  /// Load the highest-segment valid checkpoint in the directory; nullopt
  /// (with *error) when none exists or the newest fails validation.
  std::optional<Checkpoint> load_latest(std::string* error) const;

 private:
  std::string dir_;
};

}  // namespace sos::soak
