#include "alleyoop/app.hpp"

namespace sos::alleyoop {

App::App(mw::SosNode& node, CloudService* cloud) : node_(node), cloud_(cloud) {
  node_.on_data = [this](const bundle::Bundle& b, const pki::Certificate& cert) {
    handle_bundle(b, cert);
  };
}

Post App::post(const std::string& text) {
  Post p;
  p.author = node_.user_id();
  p.author_name = username();
  p.msg_num = node_.next_message_number();
  p.text = text;

  // Operation 1 (§V): save to the local database, then hand to SOS.
  auto id = node_.publish(p.encode(), bundle::ContentType::SocialPost);
  p.created_at = node_.store().get(id)->creation_ts;
  db_.put_post(p);
  db_.mark_local_post(p.author, p.msg_num);  // operation 2: pending sync
  return p;
}

void App::follow(const pki::UserId& target) {
  node_.follow(target);
  SocialAction a{ActionKind::Follow, node_.user_id(), target, 0};
  db_.put_action(a);
}

void App::unfollow(const pki::UserId& target) {
  node_.unfollow(target);
  SocialAction a{ActionKind::Unfollow, node_.user_id(), target, 0};
  db_.put_action(a);
}

void App::sync_with_cloud() {
  if (cloud_ == nullptr) return;
  cloud_->push_posts(db_.take_pending_posts());
  cloud_->push_actions(db_.action_log());
  std::map<pki::UserId, std::uint32_t> have;
  for (const auto& p : db_.timeline()) {
    auto& max = have[p.author];
    if (p.msg_num > max) max = p.msg_num;
  }
  for (const auto& p : cloud_->pull_posts(node_.user_id(), have)) db_.put_post(p);
}

void App::handle_bundle(const bundle::Bundle& b, const pki::Certificate& origin_cert) {
  if (b.content != bundle::ContentType::SocialPost) return;
  auto post = Post::decode(b.payload);
  if (!post) return;
  // The signed bundle metadata is authoritative; a forwarder cannot alter
  // it, but a malicious *origin* could make payload fields disagree with
  // the envelope — normalize from the envelope.
  post->author = b.origin;
  post->msg_num = b.msg_num;
  post->author_name = origin_cert.subject_name;
  if (db_.put_post(*post)) {
    ++dtn_received_;
    if (on_new_post) on_new_post(*post);
  }
}

}  // namespace sos::alleyoop
