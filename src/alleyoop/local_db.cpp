#include "alleyoop/local_db.hpp"

#include <algorithm>

#include "util/codec.hpp"

namespace sos::alleyoop {

bool LocalDb::put_post(const Post& post) {
  return posts_.emplace(std::pair{post.author, post.msg_num}, post).second;
}

bool LocalDb::has_post(const pki::UserId& author, std::uint32_t msg_num) const {
  return posts_.count({author, msg_num}) > 0;
}

std::optional<Post> LocalDb::get_post(const pki::UserId& author, std::uint32_t msg_num) const {
  auto it = posts_.find({author, msg_num});
  if (it == posts_.end()) return std::nullopt;
  return it->second;
}

void LocalDb::put_action(const SocialAction& action) {
  actions_.push_back(action);
}

std::vector<Post> LocalDb::timeline() const {
  std::vector<Post> out;
  out.reserve(posts_.size());
  for (const auto& [key, post] : posts_) out.push_back(post);
  std::sort(out.begin(), out.end(),
            [](const Post& a, const Post& b) { return a.created_at > b.created_at; });
  return out;
}

std::vector<Post> LocalDb::posts_by(const pki::UserId& author) const {
  std::vector<Post> out;
  for (auto it = posts_.lower_bound({author, 0}); it != posts_.end(); ++it) {
    if (!(it->first.first == author)) break;
    out.push_back(it->second);
  }
  return out;
}

std::set<pki::UserId> LocalDb::following_of(const pki::UserId& user) const {
  std::set<pki::UserId> out;
  for (const auto& a : actions_) {
    if (!(a.actor == user)) continue;
    if (a.kind == ActionKind::Follow)
      out.insert(a.target);
    else
      out.erase(a.target);
  }
  return out;
}

void LocalDb::mark_local_post(const pki::UserId& author, std::uint32_t msg_num) {
  pending_posts_.insert({author, msg_num});
}

std::vector<Post> LocalDb::take_pending_posts() {
  std::vector<Post> out;
  for (const auto& key : pending_posts_) {
    auto it = posts_.find(key);
    if (it != posts_.end()) out.push_back(it->second);
  }
  pending_posts_.clear();
  return out;
}

util::Bytes LocalDb::serialize() const {
  util::Writer w;
  w.str("alleyoop-db-v1");
  w.varint(posts_.size());
  for (const auto& [key, post] : posts_) w.bytes(post.encode());
  w.varint(actions_.size());
  for (const auto& a : actions_) w.bytes(a.encode());
  w.varint(pending_posts_.size());
  for (const auto& [author, num] : pending_posts_) {
    w.raw(author.view());
    w.u32(num);
  }
  return w.take();
}

std::optional<LocalDb> LocalDb::deserialize(util::ByteView data) {
  util::Reader r(data);
  if (r.str() != "alleyoop-db-v1") return std::nullopt;
  LocalDb db;
  std::uint64_t n = r.varint();
  if (n > 10'000'000) return std::nullopt;
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    auto post = Post::decode(r.bytes());
    if (!post) return std::nullopt;
    db.put_post(*post);
  }
  std::uint64_t m = r.varint();
  if (m > 10'000'000) return std::nullopt;
  for (std::uint64_t i = 0; i < m && r.ok(); ++i) {
    auto action = SocialAction::decode(r.bytes());
    if (!action) return std::nullopt;
    db.put_action(*action);
  }
  std::uint64_t p = r.varint();
  if (p > 10'000'000) return std::nullopt;
  for (std::uint64_t i = 0; i < p && r.ok(); ++i) {
    pki::UserId author;
    author.bytes = r.raw_array<pki::kUserIdSize>();
    std::uint32_t num = r.u32();
    db.pending_posts_.insert({author, num});
  }
  if (!r.done()) return std::nullopt;
  return db;
}

}  // namespace sos::alleyoop
