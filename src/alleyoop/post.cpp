#include "alleyoop/post.hpp"

#include "util/codec.hpp"

namespace sos::alleyoop {

util::Bytes Post::encode() const {
  util::Writer w;
  w.raw(author.view());
  w.str(author_name);
  w.u32(msg_num);
  w.f64(created_at);
  w.str(text);
  return w.take();
}

std::optional<Post> Post::decode(util::ByteView data) {
  util::Reader r(data);
  Post p;
  p.author.bytes = r.raw_array<pki::kUserIdSize>();
  p.author_name = r.str();
  p.msg_num = r.u32();
  p.created_at = r.f64();
  p.text = r.str();
  if (!r.done()) return std::nullopt;
  return p;
}

util::Bytes SocialAction::encode() const {
  util::Writer w;
  w.u8(static_cast<std::uint8_t>(kind));
  w.raw(actor.view());
  w.raw(target.view());
  w.f64(at);
  return w.take();
}

std::optional<SocialAction> SocialAction::decode(util::ByteView data) {
  util::Reader r(data);
  SocialAction a;
  auto kind = r.u8();
  if (kind > 1) return std::nullopt;
  a.kind = static_cast<ActionKind>(kind);
  a.actor.bytes = r.raw_array<pki::kUserIdSize>();
  a.target.bytes = r.raw_array<pki::kUserIdSize>();
  a.at = r.f64();
  if (!r.done()) return std::nullopt;
  return a;
}

}  // namespace sos::alleyoop
