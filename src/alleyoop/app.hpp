// AlleyOop Social — the green application layer of Fig 1. A thin social
// app over the SOS middleware: post, follow/unfollow, timeline. Every user
// action is (1) saved to the local database and (2) synchronized with the
// cloud when Internet is available (§V); dissemination to nearby users
// runs over SOS with whatever routing scheme is selected.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "alleyoop/cloud.hpp"
#include "alleyoop/local_db.hpp"
#include "mw/sos_node.hpp"

namespace sos::alleyoop {

class App {
 public:
  /// `node` must outlive the app. `cloud` may be nullptr (pure-DTN mode).
  App(mw::SosNode& node, CloudService* cloud = nullptr);

  const std::string& username() const { return node_.credentials().account_name; }
  const pki::UserId& user_id() const { return node_.user_id(); }

  /// Create a post: local save -> SOS dissemination -> pending cloud sync.
  Post post(const std::string& text);

  void follow(const pki::UserId& target);
  void unfollow(const pki::UserId& target);

  /// Newest-first, everything this device knows about.
  std::vector<Post> timeline() const { return db_.timeline(); }
  LocalDb& db() { return db_; }
  mw::SosNode& node() { return node_; }

  /// Push pending local records and pull missed posts ("when the Internet
  /// becomes available"). No-op without a cloud.
  void sync_with_cloud();

  /// New post from a followed publisher arrived over D2D.
  std::function<void(const Post&)> on_new_post;

  std::uint64_t dtn_posts_received() const { return dtn_received_; }

 private:
  void handle_bundle(const bundle::Bundle& b, const pki::Certificate& origin_cert);

  mw::SosNode& node_;
  CloudService* cloud_;
  LocalDb db_;
  std::uint64_t dtn_received_ = 0;
};

}  // namespace sos::alleyoop
