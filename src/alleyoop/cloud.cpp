#include "alleyoop/cloud.hpp"

namespace sos::alleyoop {

void CloudService::push_posts(const std::vector<Post>& posts) {
  for (const auto& p : posts) posts_.emplace(std::pair{p.author, p.msg_num}, p);
}

void CloudService::push_actions(const std::vector<SocialAction>& actions) {
  for (const auto& a : actions) {
    if (a.kind == ActionKind::Follow)
      follows_.insert({a.actor, a.target});
    else
      follows_.erase({a.actor, a.target});
  }
}

std::vector<Post> CloudService::pull_posts(
    const pki::UserId& follower, const std::map<pki::UserId, std::uint32_t>& have) const {
  std::vector<Post> out;
  for (const auto& [key, post] : posts_) {
    const auto& [author, num] = key;
    if (follows_.count({follower, author}) == 0) continue;
    auto it = have.find(author);
    std::uint32_t held = it == have.end() ? 0 : it->second;
    if (num > held) out.push_back(post);
  }
  return out;
}

std::set<pki::UserId> CloudService::followers_of(const pki::UserId& publisher) const {
  std::set<pki::UserId> out;
  for (const auto& [actor, target] : follows_)
    if (target == publisher) out.insert(actor);
  return out;
}

std::set<pki::UserId> CloudService::following_of(const pki::UserId& user) const {
  std::set<pki::UserId> out;
  for (const auto& [actor, target] : follows_)
    if (actor == user) out.insert(target);
  return out;
}

}  // namespace sos::alleyoop
