// The AlleyOop cloud backend (§V operation 2: actions sync "with the cloud
// when the Internet becomes available"). Holds the global post store and
// social graph; devices push pending records and pull what they missed
// whenever they have connectivity. DTN dissemination never depends on it —
// that is the entire point of the paper.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "alleyoop/post.hpp"

namespace sos::alleyoop {

class CloudService {
 public:
  /// Device push: store posts/actions the device created offline.
  void push_posts(const std::vector<Post>& posts);
  void push_actions(const std::vector<SocialAction>& actions);

  /// Device pull: posts from followed users newer than what it holds.
  std::vector<Post> pull_posts(const pki::UserId& follower,
                               const std::map<pki::UserId, std::uint32_t>& have) const;

  std::size_t post_count() const { return posts_.size(); }
  std::set<pki::UserId> followers_of(const pki::UserId& publisher) const;
  std::set<pki::UserId> following_of(const pki::UserId& user) const;

 private:
  std::map<std::pair<pki::UserId, std::uint32_t>, Post> posts_;
  std::set<std::pair<pki::UserId, pki::UserId>> follows_;  // (actor, target)
};

}  // namespace sos::alleyoop
