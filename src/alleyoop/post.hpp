// AlleyOop Social data records carried as bundle payloads: posts and the
// follow/unfollow control actions §V lists ("whenever a user creates a
// message or performs an action such as follow/unfollow ... saves the
// action to the local database and synchronizes with the cloud when the
// Internet becomes available").
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "pki/identity.hpp"
#include "util/bytes.hpp"
#include "util/time.hpp"

namespace sos::alleyoop {

struct Post {
  pki::UserId author;
  std::string author_name;
  std::uint32_t msg_num = 0;
  util::SimTime created_at = 0;
  std::string text;

  util::Bytes encode() const;
  static std::optional<Post> decode(util::ByteView data);
};

enum class ActionKind : std::uint8_t { Follow = 0, Unfollow = 1 };

struct SocialAction {
  ActionKind kind = ActionKind::Follow;
  pki::UserId actor;
  pki::UserId target;
  util::SimTime at = 0;

  util::Bytes encode() const;
  static std::optional<SocialAction> decode(util::ByteView data);
};

}  // namespace sos::alleyoop
