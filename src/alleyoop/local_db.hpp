// Per-device local database (§V operation 1: every message/action is saved
// locally first). Append-only action log plus a timeline index, with a
// serializable snapshot standing in for on-device storage, and a pending
// queue of records not yet synchronized with the cloud.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "alleyoop/post.hpp"

namespace sos::alleyoop {

class LocalDb {
 public:
  /// Store a post (own or received). Returns false for duplicates.
  bool put_post(const Post& post);
  bool has_post(const pki::UserId& author, std::uint32_t msg_num) const;
  std::optional<Post> get_post(const pki::UserId& author, std::uint32_t msg_num) const;

  /// Record a follow/unfollow action.
  void put_action(const SocialAction& action);

  /// Newest-first timeline of every stored post.
  std::vector<Post> timeline() const;
  /// Posts by one author, ascending message number.
  std::vector<Post> posts_by(const pki::UserId& author) const;
  std::size_t post_count() const { return posts_.size(); }
  const std::vector<SocialAction>& action_log() const { return actions_; }

  /// Who `user` currently follows according to the replayed action log.
  std::set<pki::UserId> following_of(const pki::UserId& user) const;

  // --- cloud-sync bookkeeping ----------------------------------------------
  /// Records created locally and not yet acknowledged by the cloud.
  std::size_t pending_sync_count() const { return pending_posts_.size(); }
  void mark_local_post(const pki::UserId& author, std::uint32_t msg_num);
  std::vector<Post> take_pending_posts();

  // --- persistence snapshot ---------------------------------------------------
  util::Bytes serialize() const;
  static std::optional<LocalDb> deserialize(util::ByteView data);

 private:
  std::map<std::pair<pki::UserId, std::uint32_t>, Post> posts_;
  std::vector<SocialAction> actions_;
  std::set<std::pair<pki::UserId, std::uint32_t>> pending_posts_;
};

}  // namespace sos::alleyoop
