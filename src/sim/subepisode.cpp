#include "sim/subepisode.hpp"

#include <algorithm>
#include <map>
#include <numeric>

namespace sos::sim {

namespace {

struct UnionFind {
  std::vector<std::size_t> parent;
  explicit UnionFind(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    // Deterministic representative: the smaller index wins.
    if (b < a) std::swap(a, b);
    parent[b] = a;
  }
};

}  // namespace

ContactDag ContactDag::partition(const ContactTrace& trace, std::size_t node_count,
                                 util::SimTime horizon) {
  const auto& contacts = trace.contacts();
  const std::size_t n = contacts.size();
  UnionFind uf(n);

  // Fuse contacts that share a node and overlap in time (EpisodeGraph's
  // step 1, and the only fusion strands need). Sweep in start order; per
  // node, keep the contacts still open at the sweep point. Touching
  // intervals (c2.start == c1.end) fuse too: their events land on the same
  // timestamp and must stay on one scheduler — which is also what makes a
  // node's strand windows across distinct tasks *strictly* disjoint.
  {
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return contacts[a].start < contacts[b].start;
    });
    std::map<std::uint32_t, std::vector<std::size_t>> open;
    for (std::size_t i : order) {
      const ContactInterval& c = contacts[i];
      for (std::uint32_t node : {c.a, c.b}) {
        auto& v = open[node];
        v.erase(std::remove_if(v.begin(), v.end(),
                               [&](std::size_t j) { return contacts[j].end < c.start; }),
                v.end());
        for (std::size_t j : v) uf.unite(i, j);
        v.push_back(i);
      }
    }
  }

  // Steps 1b/1c refine step 1 to the *exact* closure strand execution
  // needs; both grow clusters and can re-trigger each other, so they run
  // under one outer fixpoint. Termination: every pass either fuses (cluster
  // count strictly drops, bounded by n) or changes nothing and exits.
  for (bool again = true; again;) {
    again = false;

    // --- step 1b: fuse a node's clusters with overlapping hulls ------------
    // Step-1 fusion is transitive through *other* nodes, so a node's
    // contacts within one cluster need not be contiguous: its hull there
    // (first contact start .. last contact end) can contain a gap into
    // which a separate cluster places another of its contacts. The engine
    // holds the node until its hull end, so the inner cluster would need
    // the node while the outer one still owns it — they must fuse. The test
    // is keyed on per-node *hulls*, not cluster global spans (EpisodeGraph's
    // step 2): a cluster that falls into a real gap of every shared node's
    // hull stays separate, which is exactly the intra-episode concurrency
    // this pass must preserve. Hull boundaries are always contact endpoints
    // of the node itself, and touching contacts already fused in step 1, so
    // the strict-overlap test is exhaustive — surviving clusters have
    // strictly disjoint per-node hulls.
    struct Hull {
      util::SimTime first_start, last_end;
    };
    for (bool changed = true; changed;) {
      changed = false;
      // node -> root -> hull of that node's contacts in the cluster
      std::map<std::uint32_t, std::map<std::size_t, Hull>> hulls;
      for (std::size_t i = 0; i < n; ++i) {
        std::size_t r = uf.find(i);
        for (std::uint32_t node : {contacts[i].a, contacts[i].b}) {
          auto [it, fresh] =
              hulls[node].try_emplace(r, Hull{contacts[i].start, contacts[i].end});
          if (!fresh) {
            it->second.first_start = std::min(it->second.first_start, contacts[i].start);
            it->second.last_end = std::max(it->second.last_end, contacts[i].end);
          }
        }
      }
      for (auto& [node, clusters] : hulls) {
        std::vector<std::pair<util::SimTime, std::size_t>> entries;  // (hull start, root)
        for (auto& [root, hull] : clusters) entries.push_back({hull.first_start, root});
        std::sort(entries.begin(), entries.end());
        util::SimTime covered_to = -1.0;
        std::size_t covered_root = 0;
        for (auto& [first_start, root] : entries) {
          if (covered_to >= 0 && first_start < covered_to &&
              uf.find(root) != uf.find(covered_root)) {
            uf.unite(covered_root, root);
            changed = true;
            again = true;
          }
          if (clusters.at(root).last_end > covered_to) {
            covered_to = clusters.at(root).last_end;
            covered_root = root;
          }
        }
      }
    }

    // --- step 1c: fuse strand-chain dependency cycles ----------------------
    // The execution order between clusters sharing a node is that node's
    // hull order, and the union of those per-node orders must be acyclic.
    // Disjoint hulls do not guarantee that: cluster A can hold node X
    // before B while B holds node Y before A (mutual entanglement), or a
    // longer pairwise-consistent loop can close through several nodes.
    // Every edge on such a cycle is a hard happens-before, so no execution
    // order exists — the members must share one shard. Fuse every
    // non-trivial strongly-connected component of the chain graph
    // (iterative Tarjan over clusters in deterministic dense-index order).
    // EpisodeGraph never faces this: entangled clusters always have
    // overlapping global spans at a shared node, so its step 2 fuses a
    // superset — which also keeps every SCC inside one episode and the DAG
    // a true refinement of the episode partition.
    std::map<std::size_t, std::size_t> root_idx;  // root -> dense index
    for (std::size_t i = 0; i < n; ++i) root_idx.try_emplace(uf.find(i), 0);
    std::size_t m = 0;
    for (auto& [root, idx] : root_idx) idx = m++;
    std::vector<std::size_t> rep(m);  // dense index -> root
    for (auto& [root, idx] : root_idx) rep[idx] = root;

    // node -> cluster -> first contact start there; consecutive clusters of
    // a node's sorted chain get an edge.
    std::map<std::uint32_t, std::map<std::size_t, util::SimTime>> first_in;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t c = root_idx.at(uf.find(i));
      for (std::uint32_t node : {contacts[i].a, contacts[i].b}) {
        auto [it, fresh] = first_in[node].try_emplace(c, contacts[i].start);
        if (!fresh) it->second = std::min(it->second, contacts[i].start);
      }
    }
    std::vector<std::vector<std::size_t>> out(m);
    for (auto& [node, per_cluster] : first_in) {
      std::vector<std::pair<util::SimTime, std::size_t>> chain;
      for (auto& [cluster, first_start] : per_cluster) chain.push_back({first_start, cluster});
      std::sort(chain.begin(), chain.end());
      for (std::size_t i = 1; i < chain.size(); ++i)
        out[chain[i - 1].second].push_back(chain[i].second);
    }

    std::vector<std::size_t> index(m, SIZE_MAX), low(m, 0), scc_stack;
    std::vector<bool> on_stack(m, false);
    std::size_t next_index = 0;
    struct Frame {
      std::size_t v, edge;
    };
    for (std::size_t s = 0; s < m; ++s) {
      if (index[s] != SIZE_MAX) continue;
      std::vector<Frame> call{{s, 0}};
      index[s] = low[s] = next_index++;
      scc_stack.push_back(s);
      on_stack[s] = true;
      while (!call.empty()) {
        Frame& f = call.back();
        if (f.edge < out[f.v].size()) {
          std::size_t w = out[f.v][f.edge++];
          if (index[w] == SIZE_MAX) {
            index[w] = low[w] = next_index++;
            scc_stack.push_back(w);
            on_stack[w] = true;
            call.push_back({w, 0});
          } else if (on_stack[w]) {
            low[f.v] = std::min(low[f.v], index[w]);
          }
        } else {
          if (low[f.v] == index[f.v]) {
            std::vector<std::size_t> scc;
            for (;;) {
              std::size_t w = scc_stack.back();
              scc_stack.pop_back();
              on_stack[w] = false;
              scc.push_back(w);
              if (w == f.v) break;
            }
            if (scc.size() > 1) {
              for (std::size_t w : scc) uf.unite(rep[scc[0]], rep[w]);
              again = true;
            }
          }
          std::size_t v = f.v;
          call.pop_back();
          if (!call.empty()) low[call.back().v] = std::min(low[call.back().v], low[v]);
        }
      }
    }
  }

  // --- materialize tasks in trace order -----------------------------------
  ContactDag dag;
  std::map<std::size_t, std::size_t> root_to_task;  // ordered by min index
  for (std::size_t i = 0; i < n; ++i) root_to_task.try_emplace(uf.find(i), 0);
  {
    std::size_t next = 0;
    for (auto& [root, idx] : root_to_task) idx = next++;
  }
  dag.tasks_.resize(root_to_task.size());
  for (std::size_t i = 0; i < n; ++i) {
    ContactTask& t = dag.tasks_[root_to_task.at(uf.find(i))];
    const ContactInterval& c = contacts[i];
    if (t.contacts.empty()) {
      t.first_start = c.start;
      t.last_end = c.end;
    } else {
      t.first_start = std::min(t.first_start, c.start);
      t.last_end = std::max(t.last_end, c.end);
    }
    t.contacts.push_back(i);
  }
  // Per-member strands: each member's window from its first contact start to
  // its last contact end within the task (its detach point).
  for (ContactTask& t : dag.tasks_) {
    std::map<std::uint32_t, ContactStrand> members;  // ordered by node
    for (std::size_t ci : t.contacts) {
      const ContactInterval& c = contacts[ci];
      for (std::uint32_t node : {c.a, c.b}) {
        auto [it, fresh] = members.try_emplace(node, ContactStrand{node, c.start, c.end});
        if (!fresh) {
          it->second.first_start = std::min(it->second.first_start, c.start);
          it->second.last_end = std::max(it->second.last_end, c.end);
        }
      }
    }
    for (auto& [node, strand] : members) t.strands.push_back(strand);
  }
  dag.contact_tasks_ = dag.tasks_.size();

  // --- dependency edges: consecutive tasks of each node --------------------
  // A node's strand windows across tasks are strictly disjoint (step-1b
  // fixpoint), so ordering its tasks by its own first contact start is
  // well-defined; chaining consecutive tasks hands its middleware state
  // through the detach/attach seam and transitively orders every pair of
  // tasks sharing a node.
  std::map<std::uint32_t, std::vector<std::pair<util::SimTime, std::size_t>>> node_chain;
  for (std::size_t ti = 0; ti < dag.tasks_.size(); ++ti) {
    for (const ContactStrand& s : dag.tasks_[ti].strands) {
      node_chain[s.node].push_back({s.first_start, ti});
    }
  }
  std::vector<std::size_t> last_of_node(node_count, SIZE_MAX);
  for (auto& [node, chain] : node_chain) {
    std::sort(chain.begin(), chain.end());
    for (std::size_t i = 1; i < chain.size(); ++i)
      dag.tasks_[chain[i].second].deps.push_back(chain[i - 1].second);
    if (node < node_count && !chain.empty()) last_of_node[node] = chain.back().second;
  }
  for (ContactTask& t : dag.tasks_) {
    std::sort(t.deps.begin(), t.deps.end());
    t.deps.erase(std::unique(t.deps.begin(), t.deps.end()), t.deps.end());
  }

  // --- tail task: every node's timeline from its last contact to the
  // horizon. Contact-free, so its members cannot interact: one shared
  // scheduler suffices for all of them.
  ContactTask tail;
  tail.first_start = 0;
  tail.last_end = horizon;
  for (std::uint32_t node = 0; node < node_count; ++node) {
    tail.strands.push_back({node, 0, horizon});
    if (last_of_node[node] != SIZE_MAX) tail.deps.push_back(last_of_node[node]);
  }
  std::sort(tail.deps.begin(), tail.deps.end());
  tail.deps.erase(std::unique(tail.deps.begin(), tail.deps.end()), tail.deps.end());
  if (!tail.strands.empty()) dag.tasks_.push_back(std::move(tail));
  return dag;
}

double ContactDag::parallelism() const {
  double total = 0, critical = 0;
  std::vector<double> longest(tasks_.size(), 0);
  // Kahn over the dep edges; deps are not necessarily earlier indices, so
  // process tasks only once their deps resolve.
  std::vector<std::size_t> pending(tasks_.size(), 0);
  std::vector<std::vector<std::size_t>> dependents(tasks_.size());
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    pending[i] = tasks_[i].deps.size();
    for (std::size_t d : tasks_[i].deps) dependents[d].push_back(i);
    if (pending[i] == 0) ready.push_back(i);
  }
  while (!ready.empty()) {
    std::size_t i = ready.back();
    ready.pop_back();
    double w = static_cast<double>(tasks_[i].contacts.size());
    double best = 0;
    for (std::size_t d : tasks_[i].deps) best = std::max(best, longest[d]);
    longest[i] = best + w;
    total += w;
    critical = std::max(critical, longest[i]);
    for (std::size_t dep : dependents[i]) {
      if (--pending[dep] == 0) ready.push_back(dep);
    }
  }
  return critical > 0 ? total / critical : 1.0;
}

std::size_t ContactDag::width() const {
  // Sweep the contact tasks' global spans; at equal timestamps ends close
  // before starts, so back-to-back tasks never count as concurrent.
  std::vector<std::pair<util::SimTime, int>> events;
  for (std::size_t i = 0; i < contact_tasks_; ++i) {
    events.push_back({tasks_[i].first_start, +1});
    events.push_back({tasks_[i].last_end, -1});
  }
  std::sort(events.begin(), events.end(),
            [](const std::pair<util::SimTime, int>& a, const std::pair<util::SimTime, int>& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;  // -1 (end) before +1 (start)
            });
  std::size_t open = 0, widest = 0;
  for (const auto& [t, delta] : events) {
    if (delta > 0) {
      ++open;
      widest = std::max(widest, open);
    } else {
      --open;
    }
  }
  return widest;
}

}  // namespace sos::sim
