#include "sim/episode.hpp"

#include <algorithm>
#include <map>
#include <numeric>

namespace sos::sim {

namespace {

struct UnionFind {
  std::vector<std::size_t> parent;
  explicit UnionFind(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    // Deterministic representative: the smaller index wins.
    if (b < a) std::swap(a, b);
    parent[b] = a;
    return true;
  }
};

}  // namespace

EpisodeGraph EpisodeGraph::partition(const ContactTrace& trace, std::size_t node_count,
                                     util::SimTime horizon) {
  const auto& contacts = trace.contacts();
  const std::size_t n = contacts.size();
  UnionFind uf(n);

  // --- step 1: fuse contacts that share a node and overlap in time --------
  // Sweep in start order; per node, keep the contacts still open at the
  // sweep point. Touching intervals (c2.start == c1.end) fuse too: their
  // events land on the same timestamp and must stay on one scheduler.
  {
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return contacts[a].start < contacts[b].start;
    });
    std::map<std::uint32_t, std::vector<std::size_t>> open;
    for (std::size_t i : order) {
      const ContactInterval& c = contacts[i];
      for (std::uint32_t node : {c.a, c.b}) {
        auto& v = open[node];
        v.erase(std::remove_if(v.begin(), v.end(),
                               [&](std::size_t j) { return contacts[j].end < c.start; }),
                v.end());
        for (std::size_t j : v) uf.unite(i, j);
        v.push_back(i);
      }
    }
  }

  // --- step 2: fuse a node's clusters with overlapping windows ------------
  // A node's window in a cluster runs to the cluster's *global* end (its
  // local timers advance with the episode scheduler), so a later cluster
  // whose first contact of that node starts inside an earlier cluster's
  // span cannot be detached from it. Fusing grows spans, so iterate to a
  // fixpoint; each round strictly reduces the cluster count.
  struct Span {
    util::SimTime start, end;
    std::size_t first_index;
  };
  for (bool changed = true; changed;) {
    changed = false;
    std::map<std::size_t, Span> spans;  // root -> cluster span
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t r = uf.find(i);
      auto [it, fresh] = spans.try_emplace(r, Span{contacts[i].start, contacts[i].end, i});
      if (!fresh) {
        it->second.start = std::min(it->second.start, contacts[i].start);
        it->second.end = std::max(it->second.end, contacts[i].end);
      }
    }
    // node -> root -> earliest start of that node's contacts in the cluster
    std::map<std::uint32_t, std::map<std::size_t, util::SimTime>> per_node;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t r = uf.find(i);
      for (std::uint32_t node : {contacts[i].a, contacts[i].b}) {
        auto [it, fresh] = per_node[node].try_emplace(r, contacts[i].start);
        if (!fresh) it->second = std::min(it->second, contacts[i].start);
      }
    }
    for (auto& [node, clusters] : per_node) {
      // The node's clusters in window order: by its first contact in each.
      std::vector<std::pair<util::SimTime, std::size_t>> entries;
      for (auto& [root, first_start] : clusters) entries.push_back({first_start, root});
      std::sort(entries.begin(), entries.end());
      util::SimTime covered_to = -1.0;
      std::size_t covered_root = 0;
      for (auto& [first_start, root] : entries) {
        if (covered_to >= 0 && first_start < covered_to && uf.find(root) != uf.find(covered_root)) {
          uf.unite(covered_root, root);
          changed = true;
        }
        if (spans.at(root).end > covered_to) {
          covered_to = spans.at(root).end;
          covered_root = root;
        }
      }
    }
  }

  // --- materialize episodes in trace order --------------------------------
  EpisodeGraph graph;
  std::map<std::size_t, std::size_t> root_to_episode;  // ordered by min index
  for (std::size_t i = 0; i < n; ++i) root_to_episode.try_emplace(uf.find(i), 0);
  {
    std::size_t next = 0;
    for (auto& [root, idx] : root_to_episode) idx = next++;
  }
  graph.episodes_.resize(root_to_episode.size());
  for (std::size_t i = 0; i < n; ++i) {
    Episode& e = graph.episodes_[root_to_episode.at(uf.find(i))];
    const ContactInterval& c = contacts[i];
    if (e.contacts.empty()) {
      e.first_start = c.start;
      e.last_end = c.end;
    } else {
      e.first_start = std::min(e.first_start, c.start);
      e.last_end = std::max(e.last_end, c.end);
    }
    e.contacts.push_back(i);
    e.nodes.push_back(c.a);
    e.nodes.push_back(c.b);
  }
  for (Episode& e : graph.episodes_) {
    std::sort(e.nodes.begin(), e.nodes.end());
    e.nodes.erase(std::unique(e.nodes.begin(), e.nodes.end()), e.nodes.end());
  }
  graph.contact_episodes_ = graph.episodes_.size();

  // --- dependency edges: consecutive episodes of each node ----------------
  std::map<std::uint32_t, std::vector<std::size_t>> node_chain;  // in window order
  for (std::size_t ei = 0; ei < graph.episodes_.size(); ++ei) {
    for (std::uint32_t node : graph.episodes_[ei].nodes) node_chain[node].push_back(ei);
  }
  // (node, episode) -> earliest start of that node's contacts there.
  std::map<std::pair<std::uint32_t, std::size_t>, util::SimTime> node_first;
  for (std::size_t ei = 0; ei < graph.episodes_.size(); ++ei) {
    for (std::size_t ci : graph.episodes_[ei].contacts) {
      const ContactInterval& c = contacts[ci];
      for (std::uint32_t node : {c.a, c.b}) {
        auto [it, fresh] = node_first.try_emplace({node, ei}, c.start);
        if (!fresh) it->second = std::min(it->second, c.start);
      }
    }
  }
  std::vector<std::size_t> last_of_node(node_count, SIZE_MAX);
  for (auto& [node, chain] : node_chain) {
    // Order the node's episodes by its first contact start in each; the
    // step-2 fixpoint guarantees these windows are disjoint.
    std::uint32_t nd = node;
    std::sort(chain.begin(), chain.end(), [&](std::size_t a, std::size_t b) {
      return node_first.at({nd, a}) < node_first.at({nd, b});
    });
    for (std::size_t i = 1; i < chain.size(); ++i)
      graph.episodes_[chain[i]].deps.push_back(chain[i - 1]);
    if (node < node_count && !chain.empty()) last_of_node[node] = chain.back();
  }
  for (Episode& e : graph.episodes_) {
    std::sort(e.deps.begin(), e.deps.end());
    e.deps.erase(std::unique(e.deps.begin(), e.deps.end()), e.deps.end());
  }

  // --- tail episode: every node's timeline from its last contact to the
  // horizon. Contact-free, so its members cannot interact: one shared
  // scheduler suffices for all of them.
  Episode tail;
  tail.first_start = 0;
  tail.last_end = horizon;
  for (std::uint32_t node = 0; node < node_count; ++node) {
    tail.nodes.push_back(node);
    if (last_of_node[node] != SIZE_MAX) tail.deps.push_back(last_of_node[node]);
  }
  std::sort(tail.deps.begin(), tail.deps.end());
  tail.deps.erase(std::unique(tail.deps.begin(), tail.deps.end()), tail.deps.end());
  if (!tail.nodes.empty()) graph.episodes_.push_back(std::move(tail));
  return graph;
}

double EpisodeGraph::parallelism() const {
  double total = 0, critical = 0;
  std::vector<double> longest(episodes_.size(), 0);
  // Episode deps always point to earlier... not necessarily earlier
  // indices; process in an order where deps resolve first (Kahn by index).
  std::vector<std::size_t> pending(episodes_.size(), 0);
  std::vector<std::vector<std::size_t>> dependents(episodes_.size());
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < episodes_.size(); ++i) {
    pending[i] = episodes_[i].deps.size();
    for (std::size_t d : episodes_[i].deps) dependents[d].push_back(i);
    if (pending[i] == 0) ready.push_back(i);
  }
  while (!ready.empty()) {
    std::size_t i = ready.back();
    ready.pop_back();
    double w = static_cast<double>(episodes_[i].contacts.size());
    double best = 0;
    for (std::size_t d : episodes_[i].deps) best = std::max(best, longest[d]);
    longest[i] = best + w;
    total += w;
    critical = std::max(critical, longest[i]);
    for (std::size_t dep : dependents[i]) {
      if (--pending[dep] == 0) ready.push_back(dep);
    }
  }
  return critical > 0 ? total / critical : 1.0;
}

}  // namespace sos::sim
