// Contact traces: record the encounter sequence of a run and replay it
// later, or import external traces. The authors' deployment traces are not
// public (DESIGN.md substitution #2); this module is the seam where they
// would plug in — any trace in the simple text format below (one contact
// interval per line, the style used by ONE-simulator / CRAWDAD exports)
// can drive the full middleware stack instead of synthetic mobility.
//
//   # comment
//   <start_seconds> <end_seconds> <node_a> <node_b>
#pragma once

#include <cstdint>
#include <functional>
#include <istream>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"

namespace sos::sim {

struct ContactInterval {
  util::SimTime start = 0;
  util::SimTime end = 0;  // end >= start
  std::uint32_t a = 0;
  std::uint32_t b = 0;    // a < b after normalization
};

class ContactTrace {
 public:
  /// Append a contact (normalizes node order; rejects a == b or end<start).
  bool add(ContactInterval c);

  const std::vector<ContactInterval>& contacts() const { return contacts_; }
  std::size_t size() const { return contacts_.size(); }
  /// Highest node index mentioned + 1 (0 when empty).
  std::size_t node_count() const;
  util::SimTime duration() const;

  /// Inter-contact and contact-duration samples (trace characterization).
  std::vector<double> contact_durations() const;

  // --- text format -------------------------------------------------------
  void save(std::ostream& os) const;
  static std::optional<ContactTrace> load(std::istream& is);
  std::string to_string() const;
  static std::optional<ContactTrace> parse(const std::string& text);

 private:
  std::vector<ContactInterval> contacts_;
};

/// Records contact start/end events (wire it to an EncounterDetector) and
/// produces a ContactTrace of the run.
class TraceRecorder {
 public:
  explicit TraceRecorder(Scheduler& sched) : sched_(sched) {}

  void contact_start(std::uint32_t a, std::uint32_t b);
  void contact_end(std::uint32_t a, std::uint32_t b);
  /// Close any still-open contacts at the current time and return the trace.
  ContactTrace finish();

 private:
  Scheduler& sched_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, util::SimTime> open_;
  ContactTrace trace_;
};

/// Replays a trace through the scheduler, invoking the callbacks exactly
/// when contacts begin and end — a drop-in alternative to EncounterDetector
/// for driving MpcNetwork::set_in_range.
class TracePlayer {
 public:
  TracePlayer(Scheduler& sched, ContactTrace trace)
      : sched_(sched), trace_(std::move(trace)) {}
  /// Cancels any still-pending contact events: the scheduled callbacks
  /// capture `this`, so a player destroyed mid-run must not leave them
  /// behind in the scheduler.
  ~TracePlayer() { stop(); }
  TracePlayer(const TracePlayer&) = delete;
  TracePlayer& operator=(const TracePlayer&) = delete;

  std::function<void(std::uint32_t, std::uint32_t)> on_contact_start;
  std::function<void(std::uint32_t, std::uint32_t)> on_contact_end;

  /// Schedule every contact event; call before running the scheduler.
  void start();
  /// Cancel every not-yet-fired contact event.
  void stop();

 private:
  Scheduler& sched_;
  ContactTrace trace_;
  std::vector<EventId> pending_;
};

}  // namespace sos::sim
