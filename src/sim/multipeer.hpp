// MultipeerSim: a simulated Apple Multipeer Connectivity surface — the
// substrate the paper's ad hoc manager runs on (DESIGN.md substitution #1).
// It reproduces the MPC state machine the SOS middleware depends on:
//
//   * advertisers publish a plain-text discovery-info dictionary,
//   * browsers in radio range get found/lost callbacks,
//   * invitations are accepted/declined by the advertiser and take
//     `setup_time_s` to establish,
//   * sessions carry length-preserving reliable frames with
//     bandwidth-limited, latency-delayed delivery,
//   * leaving radio range tears the session down and loses in-flight
//     frames (the message manager must cope, exactly as on real MPC).
//
// A wire-sniffer hook lets tests assert that everything on the air is
// ciphertext once the ad hoc manager's encryption is layered on top.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/radio.hpp"
#include "sim/scheduler.hpp"
#include "util/bytes.hpp"

namespace sos::sim {

using PeerId = std::uint32_t;
/// Plain-text key/value advertisement (paper: UserID -> MessageNumber).
using DiscoveryInfo = std::map<std::string, std::string>;

class FaultPlan;
class MpcNetwork;

/// Per-device endpoint handle. Callbacks are invoked from scheduler events.
class MpcEndpoint {
 public:
  // --- advertising ------------------------------------------------------
  void start_advertising(DiscoveryInfo info);
  void stop_advertising();
  /// Replace the advertised dictionary; browsers in range are re-notified
  /// (models the advertiser restart MPC apps perform on state change).
  void update_discovery_info(DiscoveryInfo info);
  bool advertising() const { return advertising_; }
  const DiscoveryInfo& discovery_info() const { return info_; }

  // --- browsing -----------------------------------------------------------
  void start_browsing();
  void stop_browsing();
  bool browsing() const { return browsing_; }
  std::function<void(PeerId, const DiscoveryInfo&)> on_peer_found;
  std::function<void(PeerId)> on_peer_lost;

  // --- sessions -----------------------------------------------------------
  /// Ask the peer (must be in range and advertising) to open a session.
  void invite(PeerId peer);
  /// Advertiser-side accept hook; default accepts everyone.
  std::function<bool(PeerId)> on_invitation;
  std::function<void(PeerId)> on_connected;
  std::function<void(PeerId)> on_disconnected;
  void disconnect(PeerId peer);
  bool is_connected(PeerId peer) const;
  std::vector<PeerId> connected_peers() const;

  // --- data ----------------------------------------------------------------
  /// Reliable in-order frame. Lost (with the session) if range breaks first.
  void send(PeerId peer, util::Bytes frame);
  std::function<void(PeerId, util::Bytes)> on_receive;

  PeerId id() const { return id_; }

 private:
  friend class MpcNetwork;
  MpcNetwork* net_ = nullptr;
  PeerId id_ = 0;
  bool advertising_ = false;
  bool browsing_ = false;
  DiscoveryInfo info_;
};

/// Owns all endpoints plus the link/session state between them.
class MpcNetwork {
 public:
  MpcNetwork(Scheduler& sched, std::size_t nodes, RadioParams radio = {});

  MpcEndpoint& endpoint(PeerId id) { return endpoints_[id]; }
  std::size_t node_count() const { return endpoints_.size(); }
  Scheduler& scheduler() { return sched_; }
  const RadioParams& radio() const { return radio_; }

  /// Feed from EncounterDetector: update physical connectivity.
  void set_in_range(PeerId a, PeerId b, bool in_range);
  bool in_range(PeerId a, PeerId b) const;

  /// Wire sniffer for security tests: sees every frame as transmitted.
  std::function<void(PeerId from, PeerId to, const util::Bytes&)> on_wire_frame;

  /// Inject per-frame faults (loss/jitter/grayhole drops) from a compiled
  /// fault plan. The plan must outlive the network; nullptr disables
  /// injection. Drops are counted in frames_dropped_fault() at send time.
  void set_fault_plan(const FaultPlan* plan) { fault_plan_ = plan; }

  // --- aggregate statistics (overhead metrics for the benches) -----------
  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_delivered() const { return frames_delivered_; }
  std::uint64_t frames_lost() const { return frames_lost_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t connections_established() const { return connections_; }
  /// Invitation failures, counted the moment the failure is knowable: an
  /// out-of-range or declined invite immediately, a setup interrupted by
  /// range loss at the range-loss event (not when its now-inert completion
  /// timer fires). Drop-time accounting makes this counter identical
  /// between the single-scheduler and episode-partitioned replay engines —
  /// a shard discarding stragglers past its last contact end discards only
  /// no-op events.
  std::uint64_t connections_failed() const { return failed_connections_; }
  /// Frames destroyed by injected link faults (loss profile or grayhole
  /// radio), disjoint from frames_lost().
  std::uint64_t frames_dropped_fault() const { return frames_dropped_fault_; }

 private:
  friend class MpcEndpoint;

  struct Link {
    bool connected = false;
    std::uint64_t generation = 0;   // invalidates in-flight traffic on drop
    util::SimTime busy_until = 0;   // serialization of the shared medium
    std::size_t in_flight = 0;
    std::size_t pending_setups = 0;  // invites whose completion timer is armed
    // Per-(link, exact timestamp) frame counter feeding the fault plan's
    // deterministic draw chain; resets whenever the send time advances.
    util::SimTime fault_last_t = -1.0;
    std::uint64_t fault_seq = 0;
  };

  static std::pair<PeerId, PeerId> norm(PeerId a, PeerId b) {
    return a < b ? std::pair{a, b} : std::pair{b, a};
  }
  Link& link(PeerId a, PeerId b) { return links_[norm(a, b)]; }

  void do_invite(PeerId from, PeerId to);
  void do_send(PeerId from, PeerId to, util::Bytes frame);
  void drop_session(PeerId a, PeerId b, bool notify);

  Scheduler& sched_;
  RadioParams radio_;
  std::vector<MpcEndpoint> endpoints_;
  std::set<std::pair<PeerId, PeerId>> in_range_;
  std::map<std::pair<PeerId, PeerId>, Link> links_;
  const FaultPlan* fault_plan_ = nullptr;

  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_delivered_ = 0;
  std::uint64_t frames_lost_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t connections_ = 0;
  std::uint64_t failed_connections_ = 0;
  std::uint64_t frames_dropped_fault_ = 0;
};

}  // namespace sos::sim
