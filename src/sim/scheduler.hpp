// Discrete-event scheduler: the virtual clock every simulated component
// (mobility stepper, radio links, middleware timers) hangs off. Events at
// equal timestamps run in schedule order (FIFO by EventId), which keeps
// runs deterministic — the invariant every sweep- and replay-determinism
// guarantee in this repo rests on.
//
// A run no longer implies a single scheduler for its whole lifetime: the
// episode-partitioned replay engine (sim/episode.hpp, deploy/ replay path)
// runs each causally-independent episode on its own scheduler shard,
// constructed at the episode's start time, and carries per-node middleware
// state across shards through the SosNode detach/attach seam. Shards are
// plain Schedulers — no locking; one thread drives one shard at a time.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/time.hpp"

namespace sos::sim {

using EventId = std::uint64_t;
using EventFn = std::function<void()>;

/// Sentinel for "no event scheduled". The scheduler mints ids starting at 1
/// (schedule_* asserts the invariant), so 0 can never name a live event and
/// cancel(kInvalidEventId) is always a harmless no-op. Fields holding a
/// maybe-armed event id initialize to this, never to a bare 0.
inline constexpr EventId kInvalidEventId = 0;

class Scheduler {
 public:
  Scheduler() = default;
  /// Start the clock at `start` (an episode shard beginning mid-timeline).
  explicit Scheduler(util::SimTime start) : now_(start) {}

  util::SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time t (clamped to now if in the past).
  EventId schedule_at(util::SimTime t, EventFn fn);
  /// Schedule `fn` dt seconds from now.
  EventId schedule_in(util::SimTime dt, EventFn fn);
  /// Cancel a pending event. Cancelling an id that already fired (or was
  /// already cancelled) is a no-op and leaves no bookkeeping behind, so
  /// long-running sims can cancel freely without growing state.
  void cancel(EventId id);

  /// Run the next event; false when the queue is empty.
  bool step();
  /// Run every event with timestamp <= t, then advance the clock to t.
  void run_until(util::SimTime t);
  /// Drain the queue completely.
  void run_all();

  std::size_t pending_events() const { return queued_.size(); }
  /// Cancelled-but-not-yet-popped events (bounded by pending_events()).
  std::size_t cancelled_backlog() const { return cancelled_.size(); }

 private:
  struct Event {
    util::SimTime at;
    EventId id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // FIFO among equal timestamps
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  // sos-lint audit (unordered-iteration): both sets are membership-only
  // (contains/insert/erase); event order comes solely from the
  // (time, id)-ordered priority queue above, so hash order never leaks
  // into the trace.
  std::unordered_set<EventId> queued_;     // ids currently in the queue
  std::unordered_set<EventId> cancelled_;  // subset of queued_
  util::SimTime now_ = 0.0;
  EventId next_id_ = kInvalidEventId + 1;  // id 0 is reserved as the sentinel
};

}  // namespace sos::sim
