#include "sim/mobility.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace sos::sim {

double distance(const Vec2& a, const Vec2& b) {
  double dx = a.x - b.x, dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

void Trajectory::add(util::SimTime t, Vec2 p) {
  if (!points_.empty() && t < points_.back().first) t = points_.back().first;
  points_.emplace_back(t, p);
}

Vec2 Trajectory::at(util::SimTime t) const {
  if (points_.empty()) return {};
  if (t <= points_.front().first) return points_.front().second;
  if (t >= points_.back().first) return points_.back().second;
  auto it = std::upper_bound(points_.begin(), points_.end(), t,
                             [](util::SimTime v, const auto& p) { return v < p.first; });
  const auto& [t1, p1] = *it;
  const auto& [t0, p0] = *(it - 1);
  if (t1 <= t0) return p0;
  double f = (t - t0) / (t1 - t0);
  return {p0.x + (p1.x - p0.x) * f, p0.y + (p1.y - p0.y) * f};
}

util::SimTime Trajectory::end_time() const {
  return points_.empty() ? 0.0 : points_.back().first;
}

namespace {
Vec2 random_point(const AreaSpec& area, util::Rng& rng) {
  return {rng.uniform(0, area.width_m), rng.uniform(0, area.height_m)};
}

// Guards for degenerate waypoint parameters: a zero speed draw (e.g.
// min_speed_mps == max_speed_mps == 0) would make travel infinite, and a
// zero-distance leg with zero pause (e.g. a 0x0 area) would never advance
// the clock, spinning the generation loop forever.
constexpr double kMinSpeedMps = 1e-3;
constexpr double kMinAdvanceS = 1e-3;
}  // namespace

std::unique_ptr<TrajectoryMobility> random_waypoint(std::size_t nodes, util::SimTime horizon,
                                                    const RandomWaypointParams& params,
                                                    util::Rng& rng) {
  std::vector<Trajectory> trajectories(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    Trajectory& tr = trajectories[i];
    util::SimTime t = 0;
    Vec2 pos = random_point(params.area, rng);
    tr.add(t, pos);
    double skip = kMinAdvanceS;
    while (t < horizon) {
      Vec2 target = random_point(params.area, rng);
      double speed = std::max(rng.uniform(params.min_speed_mps, params.max_speed_mps),
                              kMinSpeedMps);
      double travel = distance(pos, target) / speed;
      double pause = rng.uniform(params.min_pause_s, params.max_pause_s);
      if (travel + pause < kMinAdvanceS) {  // degenerate leg: skip it, keep moving
        // Double the skip while legs stay degenerate (e.g. a 0x0 area) so a
        // permanently-degenerate config costs O(log horizon), not horizon/ms.
        t += skip;
        skip = std::min(skip * 2, horizon);
        continue;
      }
      skip = kMinAdvanceS;
      t += travel;
      tr.add(t, target);
      pos = target;
      if (pause > 0) {
        t += pause;
        tr.add(t, pos);
      }
    }
  }
  return std::make_unique<TrajectoryMobility>(std::move(trajectories));
}

std::unique_ptr<TrajectoryMobility> levy_walk(std::size_t nodes, util::SimTime horizon,
                                              const LevyWalkParams& params, util::Rng& rng) {
  std::vector<Trajectory> trajectories(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    Trajectory& tr = trajectories[i];
    util::SimTime t = 0;
    Vec2 pos = random_point(params.area, rng);
    tr.add(t, pos);
    double skip = kMinAdvanceS;
    while (t < horizon) {
      // Inverse-CDF sample of a bounded Pareto flight length.
      double u = rng.uniform();
      double a = params.alpha;
      double lmin = std::pow(params.min_flight_m, 1.0 - a);
      double lmax = std::pow(params.max_flight_m, 1.0 - a);
      double len = std::pow(lmin + u * (lmax - lmin), 1.0 / (1.0 - a));
      double angle = rng.uniform(0, 2.0 * M_PI);
      Vec2 target = {pos.x + len * std::cos(angle), pos.y + len * std::sin(angle)};
      // Reflect at the boundary.
      target.x = std::fabs(target.x);
      target.y = std::fabs(target.y);
      if (target.x > params.area.width_m) target.x = 2 * params.area.width_m - target.x;
      if (target.y > params.area.height_m) target.y = 2 * params.area.height_m - target.y;
      target.x = std::clamp(target.x, 0.0, params.area.width_m);
      target.y = std::clamp(target.y, 0.0, params.area.height_m);
      double speed = std::max(params.speed_mps, kMinSpeedMps);
      double travel = distance(pos, target) / speed;
      double pause = rng.uniform(0, params.max_pause_s);
      if (travel + pause < kMinAdvanceS) {  // degenerate leg: skip it, keep moving
        t += skip;
        skip = std::min(skip * 2, horizon);
        continue;
      }
      skip = kMinAdvanceS;
      t += travel;
      tr.add(t, target);
      pos = target;
      if (pause > 0) {
        t += pause;
        tr.add(t, pos);
      }
    }
  }
  return std::make_unique<TrajectoryMobility>(std::move(trajectories));
}

std::unique_ptr<TrajectoryMobility> daily_routine(std::size_t nodes, util::SimTime horizon,
                                                  const DailyRoutineParams& params,
                                                  util::Rng& rng) {
  const AreaSpec& area = params.area;
  const std::size_t communities = std::max<std::size_t>(params.community_count, 1);

  // Community geometry: K cells on a near-square grid over the area. With
  // one community the single cell is the whole area and the generator below
  // consumes draws in exactly the pre-community order (bit-identical
  // trajectories for any pre-community config).
  const std::size_t grid_x =
      static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(communities))));
  const std::size_t grid_y = (communities + grid_x - 1) / grid_x;
  const double cell_w = area.width_m / static_cast<double>(grid_x);
  const double cell_h = area.height_m / static_cast<double>(grid_y);
  std::vector<Vec2> centers(communities);
  for (std::size_t c = 0; c < communities; ++c) {
    centers[c] = {(static_cast<double>(c % grid_x) + 0.5) * cell_w,
                  (static_cast<double>(c / grid_x) + 0.5) * cell_h};
  }

  // Per-community hotspot pools, clustered near each community's center
  // (campus/downtown) so different members' visits overlap.
  std::vector<std::vector<Vec2>> pools(communities);
  for (std::size_t c = 0; c < communities; ++c) {
    double spread_x = cell_w * params.hotspot_cluster_frac;
    double spread_y = cell_h * params.hotspot_cluster_frac;
    for (std::size_t h = 0; h < params.hotspot_count; ++h) {
      pools[c].push_back({centers[c].x + rng.uniform(-spread_x, spread_x) / 2,
                          centers[c].y + rng.uniform(-spread_y, spread_y) / 2});
    }
  }

  std::vector<Trajectory> trajectories(nodes);
  std::vector<std::vector<Vec2>> homes(communities);  // for separation sampling
  for (std::size_t i = 0; i < nodes; ++i) {
    Trajectory& tr = trajectories[i];
    // Balanced round-robin membership; bridge nodes rotate through all
    // communities day by day (drawn only in multi-community mode so the
    // classic path's stream is untouched).
    const std::size_t base_comm = i % communities;
    const bool bridge = communities > 1 && rng.chance(params.bridge_node_frac);
    // Favorite second community for probabilistic bridge schedules; drawn
    // only when the feature is on so the default stream is untouched.
    std::size_t favorite_offset = 0;
    if (bridge && params.bridge_favorite_p > 0) favorite_offset = 1 + rng.below(communities - 1);
    auto draw_home = [&]() -> Vec2 {
      if (communities == 1) return random_point(area, rng);
      double home_x = cell_w * params.community_spread_frac;
      double home_y = cell_h * params.community_spread_frac;
      return {centers[base_comm].x + rng.uniform(-home_x, home_x) / 2,
              centers[base_comm].y + rng.uniform(-home_y, home_y) / 2};
    };
    Vec2 home = draw_home();
    if (params.home_min_separation_m > 0) {
      auto too_close = [&](const Vec2& p) {
        for (const Vec2& other : homes[base_comm])
          if (distance(p, other) < params.home_min_separation_m) return true;
        return false;
      };
      // Bounded rejection: a saturated community keeps the last draw rather
      // than spin (determinism and termination over perfect spacing).
      for (int attempt = 0; attempt < 63 && too_close(home); ++attempt) home = draw_home();
    }
    homes[base_comm].push_back(home);
    Vec2 pos = home;
    tr.add(0, home);
    // Weekly schedule: the node reliably goes out on `active_weekdays` fixed
    // days (a class/work schedule). Any two 3-of-5 schedules overlap in at
    // least one day, so every pair has a recurring meeting opportunity with
    // a 1-3 day gap — the mechanism behind the paper's multi-hour delays.
    std::vector<int> weekdays{0, 1, 2, 3, 4};
    rng.shuffle(weekdays);
    std::set<int> active(weekdays.begin(),
                         weekdays.begin() + std::min<std::size_t>(
                                                static_cast<std::size_t>(params.active_weekdays),
                                                weekdays.size()));
    int total_days = static_cast<int>(std::ceil(horizon / util::days(1)));
    for (int day = 0; day < total_days; ++day) {
      util::SimTime day_start = util::days(day);
      bool weekend = util::is_weekend(day_start);
      double attend_p;
      bool hyper = params.highly_active.count(i) > 0;
      if (weekend) {
        attend_p = hyper ? 2 * params.weekend_attend_p : params.weekend_attend_p;
      } else if (hyper) {
        attend_p = params.active_attend_p;  // out every weekday
      } else {
        attend_p = active.count(util::day_of_week(day_start)) > 0 ? params.active_attend_p
                                                                  : params.offday_attend_p;
      }
      if (!rng.chance(attend_p)) continue;  // stays home all day
      // Commuters attend a different community each day; everyone else
      // stays with their own. The day's hotspot choices below draw from
      // this pool only, so a bridge node is the sole carrier of state
      // between communities.
      std::size_t day_comm = base_comm;
      if (bridge && !(params.bridge_weekday_only && weekend)) {
        day_comm = (base_comm + static_cast<std::size_t>(day)) % communities;
        // With a favorite second community, most commuting days target it;
        // the rotation target is the fallback. The extra draw happens only
        // for bridge nodes with the feature on (classic stream untouched).
        if (params.bridge_favorite_p > 0 && rng.chance(params.bridge_favorite_p)) {
          day_comm = (base_comm + favorite_offset) % communities;
        }
      }
      const std::vector<Vec2>& hotspots = pools[day_comm];

      // Wake and head out.
      util::SimTime t = day_start + util::hours(params.wake_h) + rng.uniform(0, util::hours(1.5));
      tr.add(t, pos);
      int visits = params.min_visits_per_day +
                   static_cast<int>(rng.below(
                       static_cast<std::uint64_t>(params.max_visits_per_day -
                                                  params.min_visits_per_day + 1)));
      util::SimTime home_by =
          day_start + util::hours(params.return_home_h) + rng.uniform(0, util::hours(2.5));
      for (int v = 0; v < visits && t < home_by; ++v) {
        // Crowds synchronize: part of the time everyone heads to the same
        // "popular" spot of the current 3-hour block, which is what makes
        // distinct users' visits overlap (and D2D encounters happen).
        // Spot choice mixes three habits, which makes pair meeting rates
        // heterogeneous the way a real friend group's are: (a) the node's
        // own haunt (same-department friends meet almost daily), (b) the
        // day's popular gathering place (everyone overlaps now and then),
        // (c) anywhere.
        std::size_t block = static_cast<std::size_t>(t / util::days(1));
        // Salted per community so concurrent communities pick independent
        // popular spots (salt 0 for community 0 keeps the classic stream).
        std::size_t popular = (block * 2654435761u + day_comm * 1099087573u) % hotspots.size();
        std::size_t preferred = i % hotspots.size();
        double draw = rng.uniform();
        std::size_t choice;
        if (draw < params.preferred_spot_p) {
          choice = preferred;
        } else if (draw < params.preferred_spot_p + params.popular_spot_p) {
          choice = popular;
        } else {
          choice = rng.below(hotspots.size());
        }
        const Vec2& spot = hotspots[choice];
        Vec2 dwell_pos = {spot.x + rng.uniform(-params.hotspot_radius_m, params.hotspot_radius_m),
                          spot.y + rng.uniform(-params.hotspot_radius_m, params.hotspot_radius_m)};
        t += distance(pos, dwell_pos) / params.travel_speed_mps;
        tr.add(t, dwell_pos);
        pos = dwell_pos;
        double dwell = rng.uniform(params.min_dwell_s, params.max_dwell_s);
        t = std::min(t + dwell, home_by);
        tr.add(t, pos);
      }
      // Return home for the night.
      t += distance(pos, home) / params.travel_speed_mps;
      tr.add(t, home);
      pos = home;
    }
    tr.add(horizon, pos);
  }
  return std::make_unique<TrajectoryMobility>(std::move(trajectories));
}

}  // namespace sos::sim
