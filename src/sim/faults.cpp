#include "sim/faults.hpp"

#include <algorithm>
#include <cstring>

namespace sos::sim {

namespace {

// Fault-stream salts: every fault family draws from its own derive_seed
// chain so adding one family never perturbs another's stream.
constexpr std::uint64_t kStreamRole = 0xfa17'0001;
constexpr std::uint64_t kStreamLoss = 0xfa17'0002;
constexpr std::uint64_t kStreamFlood = 0xfa17'0003;

bool in_window(const FaultWindow& w, util::SimTime t) {
  return t >= w.start && t < w.end;
}

bool in_any_window(const std::vector<FaultWindow>& windows, util::SimTime t) {
  for (const FaultWindow& w : windows)
    if (in_window(w, t)) return true;
  return false;
}

std::uint64_t time_bits(util::SimTime t) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(t));
  std::memcpy(&bits, &t, sizeof(bits));
  return bits;
}

bool prob_ok(double p) { return p >= 0.0 && p <= 1.0; }

void check_windows(const std::vector<FaultWindow>& windows, double horizon_s,
                   const char* what, std::vector<std::string>& problems) {
  for (const FaultWindow& w : windows) {
    if (w.start > w.end) {
      problems.push_back(std::string(what) + " window inverted (start " +
                         std::to_string(w.start) + " > end " + std::to_string(w.end) + ")");
    }
    if (w.start < 0 || w.end > horizon_s) {
      problems.push_back(std::string(what) + " window [" + std::to_string(w.start) + ", " +
                         std::to_string(w.end) + ") outside the horizon [0, " +
                         std::to_string(horizon_s) + ")");
    }
  }
}

}  // namespace

const char* to_string(AdversaryRole role) {
  switch (role) {
    case AdversaryRole::Honest: return "honest";
    case AdversaryRole::Flooder: return "flooder";
    case AdversaryRole::Blackhole: return "blackhole";
    case AdversaryRole::Grayhole: return "grayhole";
    case AdversaryRole::Forger: return "forger";
  }
  return "?";
}

std::vector<std::string> FaultPlanConfig::validate(double horizon_s,
                                                  std::size_t nodes) const {
  std::vector<std::string> problems;

  if (!prob_ok(link.loss_p)) {
    problems.push_back("link.loss_p " + std::to_string(link.loss_p) + " outside [0, 1]");
  }
  if (link.loss_p_reverse > 1.0) {
    problems.push_back("link.loss_p_reverse " + std::to_string(link.loss_p_reverse) +
                       " > 1 (< 0 means symmetric)");
  }
  if (link.jitter_max_s < 0) problems.push_back("link.jitter_max_s negative");
  if (link.jitter_spike_max_s < 0) problems.push_back("link.jitter_spike_max_s negative");
  check_windows(link.jitter_spikes, horizon_s, "jitter-spike", problems);
  check_windows(link.disconnects, horizon_s, "disconnect", problems);

  for (const NodeChurnEvent& c : churn) {
    if (c.node >= nodes) {
      problems.push_back("churn event names node " + std::to_string(c.node) +
                         " but the scenario has " + std::to_string(nodes));
    }
    if (c.down_at > c.up_at) {
      problems.push_back("churn window inverted on node " + std::to_string(c.node) +
                         " (down " + std::to_string(c.down_at) + " > up " +
                         std::to_string(c.up_at) + ")");
    }
    if (c.down_at < 0 || c.down_at > horizon_s) {
      problems.push_back("churn down_at " + std::to_string(c.down_at) +
                         " outside the horizon on node " + std::to_string(c.node));
    }
  }
  // Overlapping churn cycles on one node have no sane meaning (down while
  // already down): reject instead of picking an arbitrary semantics.
  std::vector<NodeChurnEvent> sorted = churn;
  std::sort(sorted.begin(), sorted.end(), [](const NodeChurnEvent& a, const NodeChurnEvent& b) {
    return a.node != b.node ? a.node < b.node : a.down_at < b.down_at;
  });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].node == sorted[i - 1].node && sorted[i].down_at < sorted[i - 1].up_at) {
      problems.push_back("overlapping churn windows on node " +
                         std::to_string(sorted[i].node));
    }
  }

  for (const PartitionWindow& p : partitions) {
    if (p.groups < 2) {
      problems.push_back("partition with " + std::to_string(p.groups) +
                         " group(s) partitions nothing");
    }
    check_windows({p.window}, horizon_s, "partition", problems);
  }

  const AdversaryMix& adv = adversaries;
  for (auto [frac, name] : {std::pair{adv.flooder_frac, "flooder_frac"},
                            std::pair{adv.blackhole_frac, "blackhole_frac"},
                            std::pair{adv.grayhole_frac, "grayhole_frac"},
                            std::pair{adv.forger_frac, "forger_frac"}}) {
    if (!prob_ok(frac)) {
      problems.push_back(std::string("adversaries.") + name + " " + std::to_string(frac) +
                         " outside [0, 1]");
    }
  }
  if (adv.fraction_sum() >= 1.0) {
    problems.push_back("adversary fractions sum to " + std::to_string(adv.fraction_sum()) +
                       " >= 1 (no honest nodes left)");
  }
  if (!prob_ok(adv.grayhole_forward_p)) {
    problems.push_back("adversaries.grayhole_forward_p " +
                       std::to_string(adv.grayhole_forward_p) + " outside [0, 1]");
  }
  if (adv.flood_posts_per_hour < 0) {
    problems.push_back("adversaries.flood_posts_per_hour negative");
  }
  return problems;
}

const std::vector<NodeChurnEvent> FaultPlan::kNoChurn;

FaultPlan::FaultPlan(const FaultPlanConfig& config, std::uint64_t scenario_seed,
                     std::size_t nodes)
    : config_(config), seed_(scenario_seed) {
  const AdversaryMix& adv = config_.adversaries;
  frame_faults_active_ = config_.link.loss_p > 0 || config_.link.loss_p_reverse > 0 ||
                         config_.link.jitter_max_s > 0 ||
                         (!config_.link.jitter_spikes.empty() &&
                          config_.link.jitter_spike_max_s > 0) ||
                         adv.grayhole_frac > 0;

  // One uniform per node against the cumulative role thresholds — a pure
  // function of (seed, node), independent of node visit order.
  roles_.assign(nodes, AdversaryRole::Honest);
  if (adv.active()) {
    const std::uint64_t role_base = util::derive_seed(seed_, kStreamRole);
    for (std::size_t n = 0; n < nodes; ++n) {
      util::Rng rng(util::derive_seed(role_base, n));
      double u = rng.uniform();
      if (u < adv.flooder_frac) {
        roles_[n] = AdversaryRole::Flooder;
      } else if (u < adv.flooder_frac + adv.blackhole_frac) {
        roles_[n] = AdversaryRole::Blackhole;
      } else if (u < adv.flooder_frac + adv.blackhole_frac + adv.grayhole_frac) {
        roles_[n] = AdversaryRole::Grayhole;
      } else if (u < adv.fraction_sum()) {
        roles_[n] = AdversaryRole::Forger;
      }
    }
  }

  churn_by_node_.assign(nodes, {});
  for (const NodeChurnEvent& c : config_.churn) {
    if (c.node < nodes) churn_by_node_[c.node].push_back(c);
  }
  for (auto& events : churn_by_node_) {
    std::sort(events.begin(), events.end(),
              [](const NodeChurnEvent& a, const NodeChurnEvent& b) {
                return a.down_at < b.down_at;
              });
  }
}

AdversaryRole FaultPlan::role(std::uint32_t node) const {
  return node < roles_.size() ? roles_[node] : AdversaryRole::Honest;
}

bool FaultPlan::node_down(std::uint32_t node, util::SimTime t) const {
  if (node >= churn_by_node_.size()) return false;
  for (const NodeChurnEvent& c : churn_by_node_[node])
    if (t >= c.down_at && t < c.up_at) return true;
  return false;
}

const std::vector<NodeChurnEvent>& FaultPlan::churn_for(std::uint32_t node) const {
  return node < churn_by_node_.size() ? churn_by_node_[node] : kNoChurn;
}

ContactTrace FaultPlan::apply(const ContactTrace& trace) const {
  if (!reshapes_trace()) return trace;
  ContactTrace out;
  std::vector<FaultWindow> blocked;
  for (const ContactInterval& c : trace.contacts()) {
    blocked.clear();
    auto block = [&](util::SimTime s, util::SimTime e) {
      s = std::max(s, c.start);
      e = std::min(e, c.end);
      if (e > s) blocked.push_back({s, e});
    };
    for (std::uint32_t n : {c.a, c.b})
      for (const NodeChurnEvent& ch : churn_for(n)) block(ch.down_at, ch.up_at);
    for (const PartitionWindow& p : config_.partitions) {
      if (p.groups >= 2 && c.a % p.groups != c.b % p.groups) {
        block(p.window.start, p.window.end);
      }
    }
    for (const FaultWindow& w : config_.link.disconnects) block(w.start, w.end);

    if (blocked.empty()) {
      out.add(c);
      continue;
    }
    std::sort(blocked.begin(), blocked.end(),
              [](const FaultWindow& a, const FaultWindow& b) { return a.start < b.start; });
    // Emit the surviving gaps between merged blocked windows. Fragments are
    // strictly positive-length, so a pair never ends and restarts a contact
    // at the same instant (which would make the per-timestamp frame-fault
    // sequence ambiguous between replay engines).
    util::SimTime cursor = c.start;
    for (const FaultWindow& b : blocked) {
      if (b.start > cursor) out.add({cursor, b.start, c.a, c.b});
      cursor = std::max(cursor, b.end);
    }
    if (c.end > cursor) out.add({cursor, c.end, c.a, c.b});
  }
  return out;
}

FrameFault FaultPlan::frame_fault(std::uint32_t from, std::uint32_t to, util::SimTime now,
                                  std::uint64_t seq) const {
  FrameFault out;
  if (!frame_faults_active_) return out;
  const std::uint64_t link_key = (static_cast<std::uint64_t>(from) << 32) | to;
  const std::uint64_t base =
      util::derive_seed(util::derive_seed(util::derive_seed(seed_, kStreamLoss), link_key),
                        time_bits(now));
  util::Rng rng(util::derive_seed(base, seq));

  // Fixed draw order (loss, grayhole, jitter) keeps the stream stable.
  const LinkFaultProfile& link = config_.link;
  double loss = from < to ? link.loss_p
                          : (link.loss_p_reverse < 0 ? link.loss_p : link.loss_p_reverse);
  if (rng.uniform() < loss) out.drop = true;
  if (!out.drop && role(from) == AdversaryRole::Grayhole &&
      rng.uniform() >= config_.adversaries.grayhole_forward_p) {
    out.drop = true;
  }
  double jitter_max = link.jitter_max_s;
  if (link.jitter_spike_max_s > jitter_max && in_any_window(link.jitter_spikes, now)) {
    jitter_max = link.jitter_spike_max_s;
  }
  if (jitter_max > 0) out.extra_busy_s = rng.uniform(0.0, jitter_max);
  return out;
}

std::vector<util::SimTime> FaultPlan::flood_times(std::uint32_t node,
                                                  util::SimTime horizon) const {
  std::vector<util::SimTime> times;
  AdversaryRole r = role(node);
  if (r != AdversaryRole::Flooder && r != AdversaryRole::Forger) return times;
  double rate = config_.adversaries.flood_posts_per_hour;
  if (rate <= 0) return times;
  util::Rng rng(util::derive_seed(util::derive_seed(seed_, kStreamFlood), node));
  double mean_gap = 3600.0 / rate;
  util::SimTime t = 0;
  for (;;) {
    t += rng.exponential(mean_gap);
    if (t >= horizon) break;
    // A dead phone cannot flood either; the draw is consumed regardless so
    // the schedule after a reboot is churn-independent.
    if (!node_down(node, t)) times.push_back(t);
  }
  return times;
}

}  // namespace sos::sim
