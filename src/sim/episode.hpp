// EpisodeGraph: the analysis pass behind episode-partitioned replay. A
// recorded ContactTrace fixes every opportunity for state to move between
// nodes before replay begins, so the trace can be cut into "episodes" —
// groups of contacts whose nodes are causally independent of every other
// concurrent group — and each episode replayed on its own scheduler shard.
//
// This is the coarser of the two partition levels the replay engines use:
// an episode holds every member node until the episode's *global* end, so
// step 2 below must fuse a node's overlapping windows — which chains a
// dense single-hotspot day into one serial episode. The finer level,
// sim::ContactDag (sim/subepisode.hpp), keeps only step 1 and instead
// detaches each member at its own last contact within a task, cutting each
// node's timeline into strands between consecutive contacts — recorded-
// trace conservative lookahead that parallelizes *inside* what this graph
// must treat as one episode.
//
// Construction is conservative, never speculative:
//
//   1. Contacts that share a node and overlap in time are fused (their
//      events interleave on the shared node and cannot be split).
//   2. Clusters of the same node whose time spans overlap are fused too:
//      a node must never be attached to two schedulers over the same
//      interval, so its episode windows must tile its timeline.
//   3. What remains is a DAG: episode B depends on episode A when they
//      share a node whose A-window precedes its B-window (the node's
//      middleware state — store, sessions, resume cache, routing tables —
//      is handed from A to B through the detach/attach seam).
//
// One trailing "tail" episode (no contacts) covers every node's timeline
// from its last contact to the horizon so local timers and workload events
// after the final encounter still run. Episodes are indexed in trace order,
// which is a topological order of the DAG (an episode's contacts all end
// before any dependent episode's contacts begin).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/trace.hpp"

namespace sos::sim {

struct Episode {
  /// Member nodes, ascending. Every node appears in exactly one episode
  /// per "chain step"; the union over a node's episodes tiles [0, horizon].
  std::vector<std::uint32_t> nodes;
  /// Indices into the source trace's contacts(), ascending (= trace order).
  /// Empty for the tail episode.
  std::vector<std::size_t> contacts;
  /// Earliest contact start / latest contact end. For the tail episode:
  /// 0 and the horizon (the engine derives each member's actual resume
  /// point from its previous episode, not from this field).
  util::SimTime first_start = 0;
  util::SimTime last_end = 0;
  /// Episodes that must finish before this one may run (state handoff).
  std::vector<std::size_t> deps;
};

class EpisodeGraph {
 public:
  /// Partition `trace` over `node_count` nodes and a [0, horizon] timeline.
  /// Deterministic: depends only on the arguments, never on thread count.
  static EpisodeGraph partition(const ContactTrace& trace, std::size_t node_count,
                                util::SimTime horizon);

  const std::vector<Episode>& episodes() const { return episodes_; }
  /// Episodes carrying contacts (the tail, when present, is the last one).
  std::size_t contact_episode_count() const { return contact_episodes_; }

  /// Sum over the longest dependency chain of per-episode contact counts,
  /// divided into the total: the parallel speedup ceiling this trace admits
  /// under conservative partitioning (1.0 = fully sequential).
  double parallelism() const;

 private:
  std::vector<Episode> episodes_;
  std::size_t contact_episodes_ = 0;
};

}  // namespace sos::sim
