#include "sim/scheduler.hpp"

#include <cassert>

namespace sos::sim {

EventId Scheduler::schedule_at(util::SimTime t, EventFn fn) {
  if (t < now_) t = now_;  // never schedule into the past
  EventId id = next_id_++;
  // kInvalidEventId must stay unmintable or every `event_ != kInvalidEventId`
  // armed-check in the middleware silently breaks (reachable only after a
  // 2^64 id wraparound, i.e. never in practice — hence an assert, not a throw).
  assert(id != kInvalidEventId && "EventId counter wrapped onto the sentinel");
  queue_.push(Event{t, id, std::move(fn)});
  queued_.insert(id);
  return id;
}

EventId Scheduler::schedule_in(util::SimTime dt, EventFn fn) {
  return schedule_at(now_ + dt, std::move(fn));
}

void Scheduler::cancel(EventId id) {
  // Only remember cancellations for events still in the queue; a stale id
  // (already fired or already cancelled) must not accumulate forever.
  if (queued_.count(id) > 0) cancelled_.insert(id);
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    queued_.erase(ev.id);
    if (cancelled_.erase(ev.id) > 0) continue;
    now_ = ev.at;
    ev.fn();
    return true;
  }
  return false;
}

void Scheduler::run_until(util::SimTime t) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    // Discard cancelled heads here rather than via step(): step() skips
    // cancelled events internally and would otherwise run the next LIVE
    // event even when it lies beyond t.
    if (cancelled_.erase(top.id) > 0) {
      queued_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.at > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

void Scheduler::run_all() {
  while (step()) {
  }
}

}  // namespace sos::sim
