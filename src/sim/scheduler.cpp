#include "sim/scheduler.hpp"

namespace sos::sim {

EventId Scheduler::schedule_at(util::SimTime t, EventFn fn) {
  if (t < now_) t = now_;  // never schedule into the past
  EventId id = next_id_++;
  queue_.push(Event{t, id, std::move(fn)});
  ++pending_;
  return id;
}

EventId Scheduler::schedule_in(util::SimTime dt, EventFn fn) {
  return schedule_at(now_ + dt, std::move(fn));
}

void Scheduler::cancel(EventId id) {
  cancelled_.insert(id);
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    --pending_;
    if (cancelled_.erase(ev.id) > 0) continue;
    now_ = ev.at;
    ev.fn();
    return true;
  }
  return false;
}

void Scheduler::run_until(util::SimTime t) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.at > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

void Scheduler::run_all() {
  while (step()) {
  }
}

}  // namespace sos::sim
