#include "sim/multipeer.hpp"

#include "sim/faults.hpp"

namespace sos::sim {

// --- MpcEndpoint -----------------------------------------------------------

void MpcEndpoint::start_advertising(DiscoveryInfo info) {
  info_ = std::move(info);
  if (advertising_) return;
  advertising_ = true;
  // Browsers already in range discover us now.
  for (PeerId other = 0; other < net_->node_count(); ++other) {
    if (other == id_ || !net_->in_range(id_, other)) continue;
    MpcEndpoint& peer = net_->endpoint(other);
    if (peer.browsing_ && peer.on_peer_found) {
      net_->scheduler().schedule_in(0, [&peer, me = id_, info = info_] {
        if (peer.on_peer_found) peer.on_peer_found(me, info);
      });
    }
  }
}

void MpcEndpoint::stop_advertising() {
  advertising_ = false;
}

void MpcEndpoint::update_discovery_info(DiscoveryInfo info) {
  info_ = std::move(info);
  if (!advertising_) return;
  for (PeerId other = 0; other < net_->node_count(); ++other) {
    if (other == id_ || !net_->in_range(id_, other)) continue;
    MpcEndpoint& peer = net_->endpoint(other);
    // Connected peers exchange state in-session; only browsers that have
    // not connected care about the refreshed advertisement.
    if (peer.browsing_ && !peer.is_connected(id_) && peer.on_peer_found) {
      net_->scheduler().schedule_in(0, [&peer, me = id_, info = info_] {
        if (peer.on_peer_found) peer.on_peer_found(me, info);
      });
    }
  }
}

void MpcEndpoint::start_browsing() {
  if (browsing_) return;
  browsing_ = true;
  for (PeerId other = 0; other < net_->node_count(); ++other) {
    if (other == id_ || !net_->in_range(id_, other)) continue;
    MpcEndpoint& peer = net_->endpoint(other);
    if (peer.advertising_ && on_peer_found) {
      net_->scheduler().schedule_in(0, [this, other, info = peer.info_] {
        if (on_peer_found) on_peer_found(other, info);
      });
    }
  }
}

void MpcEndpoint::stop_browsing() {
  browsing_ = false;
}

void MpcEndpoint::invite(PeerId peer) {
  net_->do_invite(id_, peer);
}

void MpcEndpoint::disconnect(PeerId peer) {
  net_->drop_session(id_, peer, true);
}

bool MpcEndpoint::is_connected(PeerId peer) const {
  auto it = net_->links_.find(MpcNetwork::norm(id_, peer));
  return it != net_->links_.end() && it->second.connected;
}

std::vector<PeerId> MpcEndpoint::connected_peers() const {
  std::vector<PeerId> out;
  for (PeerId other = 0; other < net_->node_count(); ++other)
    if (other != id_ && is_connected(other)) out.push_back(other);
  return out;
}

void MpcEndpoint::send(PeerId peer, util::Bytes frame) {
  net_->do_send(id_, peer, std::move(frame));
}

// --- MpcNetwork ---------------------------------------------------------------

MpcNetwork::MpcNetwork(Scheduler& sched, std::size_t nodes, RadioParams radio)
    : sched_(sched), radio_(radio), endpoints_(nodes) {
  for (std::size_t i = 0; i < nodes; ++i) {
    endpoints_[i].net_ = this;
    endpoints_[i].id_ = static_cast<PeerId>(i);
  }
}

void MpcNetwork::set_in_range(PeerId a, PeerId b, bool in_range) {
  auto key = norm(a, b);
  bool was = in_range_.count(key) > 0;
  if (in_range == was) return;
  if (in_range) {
    in_range_.insert(key);
    // Mutual discovery if roles match.
    auto notify = [this](MpcEndpoint& browser, MpcEndpoint& advertiser) {
      if (browser.browsing_ && advertiser.advertising_ && browser.on_peer_found) {
        sched_.schedule_in(0, [&browser, id = advertiser.id_, info = advertiser.info_] {
          if (browser.on_peer_found) browser.on_peer_found(id, info);
        });
      }
    };
    notify(endpoints_[a], endpoints_[b]);
    notify(endpoints_[b], endpoints_[a]);
  } else {
    in_range_.erase(key);
    drop_session(a, b, true);
    auto lost = [this](MpcEndpoint& browser, PeerId gone) {
      if (browser.browsing_ && browser.on_peer_lost) {
        sched_.schedule_in(0, [&browser, gone] {
          if (browser.on_peer_lost) browser.on_peer_lost(gone);
        });
      }
    };
    lost(endpoints_[a], b);
    lost(endpoints_[b], a);
  }
}

bool MpcNetwork::in_range(PeerId a, PeerId b) const {
  return in_range_.count(norm(a, b)) > 0;
}

void MpcNetwork::do_invite(PeerId from, PeerId to) {
  if (!in_range(from, to) || !endpoints_[to].advertising_) {
    ++failed_connections_;
    return;
  }
  if (link(from, to).connected) return;  // already up
  bool accepted = endpoints_[to].on_invitation ? endpoints_[to].on_invitation(from) : true;
  if (!accepted) {
    ++failed_connections_;
    return;
  }
  // Connection completes after the setup handshake. A range break before
  // then bumps the link generation (and counts the failure) at the break,
  // making this timer a pure no-op — so discarding it, as an episode shard
  // does past its last contact end, changes nothing.
  Link& pending = link(from, to);
  ++pending.pending_setups;
  std::uint64_t generation = pending.generation;
  sched_.schedule_in(radio_.setup_time_s, [this, from, to, generation] {
    Link& l = link(from, to);
    if (l.generation != generation) return;  // range broke mid-setup; counted then
    --l.pending_setups;
    if (l.connected) return;  // the peer's parallel invite connected us first
    l.connected = true;
    l.busy_until = sched_.now();
    l.in_flight = 0;  // anything older was counted lost when the session dropped
    ++connections_;
    if (endpoints_[from].on_connected) endpoints_[from].on_connected(to);
    if (endpoints_[to].on_connected) endpoints_[to].on_connected(from);
  });
}

void MpcNetwork::do_send(PeerId from, PeerId to, util::Bytes frame) {
  Link& l = link(from, to);
  if (!l.connected) return;  // sends on a dead session vanish (MPC errors)
  ++frames_sent_;
  bytes_sent_ += frame.size();
  if (on_wire_frame) on_wire_frame(from, to, frame);

  // Serialize on the shared link: transfer occupies the medium for
  // size/bandwidth seconds after any transfer already queued.
  util::SimTime start = std::max(sched_.now(), l.busy_until);
  util::SimTime tx_time = static_cast<double>(frame.size()) * 8.0 / radio_.bandwidth_bps;
  l.busy_until = start + tx_time;

  if (fault_plan_ && fault_plan_->frame_faults_active()) {
    // The draw is keyed on (link, exact send timestamp, same-timestamp
    // sequence number) — state both replay engines reproduce exactly,
    // unlike a whole-run frame counter (episode shards rebuild the network,
    // resetting any global counter mid-run).
    util::SimTime now = sched_.now();
    if (now != l.fault_last_t) {
      l.fault_last_t = now;
      l.fault_seq = 0;
    }
    FrameFault fault = fault_plan_->frame_fault(from, to, now, l.fault_seq++);
    // Jitter models MAC retransmissions: the medium stays occupied longer,
    // but delivery order is untouched (the session's counter nonces need
    // the reliable-in-order contract).
    l.busy_until += fault.extra_busy_s;
    if (fault.drop) {
      ++frames_dropped_fault_;
      return;  // occupied the air, never arrived
    }
  }

  util::SimTime deliver_at = l.busy_until + radio_.latency_s;
  ++l.in_flight;

  std::uint64_t generation = l.generation;
  sched_.schedule_at(deliver_at, [this, from, to, generation, frame = std::move(frame)] {
    Link& cur = link(from, to);
    // A stale generation means the session died mid-transfer; the loss was
    // already counted (and in_flight zeroed) when the session dropped, so a
    // stale delivery is a pure no-op. That property lets an episode shard be
    // torn down at its last contact end without draining doomed deliveries.
    if (!cur.connected || cur.generation != generation) return;
    --cur.in_flight;
    ++frames_delivered_;
    MpcEndpoint& dst = endpoints_[to];
    if (dst.on_receive) dst.on_receive(from, frame);
  });
}

void MpcNetwork::drop_session(PeerId a, PeerId b, bool notify) {
  auto it = links_.find(norm(a, b));
  if (it == links_.end()) return;
  // Setups still in flight die with the link (range broke, or a teardown
  // aborted them): count them now, so the failure totals never depend on
  // whether the (now inert) completion timers ever fire — an episode shard
  // may discard them with its scheduler. The generation bump is what makes
  // those timers inert.
  if (it->second.pending_setups > 0) {
    failed_connections_ += it->second.pending_setups;
    it->second.pending_setups = 0;
    ++it->second.generation;
  }
  if (!it->second.connected) return;
  it->second.connected = false;
  ++it->second.generation;  // invalidates in-flight frames
  // Frames on the air die with the session; count them now rather than when
  // their (now inert) delivery events fire, so the totals are identical
  // whether those events ever run.
  frames_lost_ += it->second.in_flight;
  it->second.in_flight = 0;
  it->second.busy_until = sched_.now();
  if (notify) {
    if (endpoints_[a].on_disconnected) {
      sched_.schedule_in(0, [this, a, b] {
        if (endpoints_[a].on_disconnected) endpoints_[a].on_disconnected(b);
      });
    }
    if (endpoints_[b].on_disconnected) {
      sched_.schedule_in(0, [this, a, b] {
        if (endpoints_[b].on_disconnected) endpoints_[b].on_disconnected(a);
      });
    }
  }
}

}  // namespace sos::sim
