// Mobility substrate. All models precompute a piecewise-linear trajectory
// per node over the scenario horizon; position lookups interpolate. This
// substitutes for the paper's real user movement (the deployment traces are
// not public): the daily-routine model reproduces the qualitative structure
// Section VI describes — a ~11 km x 8 km city, users stationary 5-8 h/night,
// weekday gatherings at shared places, weekend dispersion.
#pragma once

#include <memory>
#include <set>
#include <vector>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace sos::sim {

struct Vec2 {
  double x = 0, y = 0;
};

double distance(const Vec2& a, const Vec2& b);

/// Piecewise-linear path: sorted (time, position) anchors.
class Trajectory {
 public:
  void add(util::SimTime t, Vec2 p);
  /// Position at time t (clamped to the first/last anchor).
  Vec2 at(util::SimTime t) const;
  std::size_t anchor_count() const { return points_.size(); }
  util::SimTime end_time() const;

 private:
  std::vector<std::pair<util::SimTime, Vec2>> points_;
};

/// Common interface: a fixed set of nodes with known positions over time.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  virtual std::size_t node_count() const = 0;
  virtual Vec2 position(std::size_t node, util::SimTime t) const = 0;
};

/// Model built from explicit trajectories (also the base for all built-ins).
class TrajectoryMobility : public MobilityModel {
 public:
  explicit TrajectoryMobility(std::vector<Trajectory> trajectories)
      : trajectories_(std::move(trajectories)) {}

  std::size_t node_count() const override { return trajectories_.size(); }
  Vec2 position(std::size_t node, util::SimTime t) const override {
    return trajectories_[node].at(t);
  }
  const Trajectory& trajectory(std::size_t node) const { return trajectories_[node]; }

 private:
  std::vector<Trajectory> trajectories_;
};

struct AreaSpec {
  double width_m = 11000.0;   // paper: ~11 km
  double height_m = 8000.0;   // paper: ~8 km
};

struct RandomWaypointParams {
  AreaSpec area;
  double min_speed_mps = 0.7;
  double max_speed_mps = 2.0;
  double min_pause_s = 0.0;
  double max_pause_s = 600.0;
};

/// Classic random waypoint over a rectangle.
std::unique_ptr<TrajectoryMobility> random_waypoint(std::size_t nodes, util::SimTime horizon,
                                                    const RandomWaypointParams& params,
                                                    util::Rng& rng);

struct LevyWalkParams {
  AreaSpec area;
  double alpha = 1.6;          // power-law exponent for flight lengths
  double min_flight_m = 10.0;
  double max_flight_m = 3000.0;
  double speed_mps = 1.5;
  double max_pause_s = 900.0;
};

/// Lévy walk: heavy-tailed flight lengths, uniform directions, reflected at
/// the area boundary.
std::unique_ptr<TrajectoryMobility> levy_walk(std::size_t nodes, util::SimTime horizon,
                                              const LevyWalkParams& params, util::Rng& rng);

struct DailyRoutineParams {
  AreaSpec area;
  std::size_t hotspot_count = 5;      // shared gathering places (campus etc.)
  double hotspot_cluster_frac = 0.3;  // hotspots cluster in this central fraction
  double hotspot_radius_m = 25.0;     // dwell positions scatter within this
  int active_weekdays = 3;            // "class schedule": days/week a node goes out
  double active_attend_p = 0.92;      // attendance on scheduled days
  double offday_attend_p = 0.1;       // attendance on unscheduled weekdays
  double weekend_attend_p = 0.12;
  int min_visits_per_day = 1;
  int max_visits_per_day = 4;
  double min_dwell_s = 90 * 60.0;
  double max_dwell_s = 4 * 3600.0;
  double travel_speed_mps = 8.0;      // mixed walking/driving across the city
  double return_home_h = 18.0;        // gatherings wind down by early evening
  /// Nodes that go out every weekday (the deployment's social "centers" —
  /// paper nodes 6 and 7 — interact far more than the rest).
  std::set<std::size_t> highly_active;
  double popular_spot_p = 0.8;        // odds a visit targets the day's popular spot
  double preferred_spot_p = 0.0;      // odds a visit targets the node's own haunt
  double sleep_start_h = 23.0;        // stationary at home overnight
  double wake_h = 7.5;                // (the paper notes 5-8 h/day stationary)
};

/// Human daily-routine model: every node has a home; on active days it
/// visits a random sequence of shared hotspots (creating co-location and
/// hence D2D encounters), returning home for the night.
std::unique_ptr<TrajectoryMobility> daily_routine(std::size_t nodes, util::SimTime horizon,
                                                  const DailyRoutineParams& params,
                                                  util::Rng& rng);

}  // namespace sos::sim
