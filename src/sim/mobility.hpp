// Mobility substrate. All models precompute a piecewise-linear trajectory
// per node over the scenario horizon; position lookups interpolate. This
// substitutes for the paper's real user movement (the deployment traces are
// not public): the daily-routine model reproduces the qualitative structure
// Section VI describes — a ~11 km x 8 km city, users stationary 5-8 h/night,
// weekday gatherings at shared places, weekend dispersion.
#pragma once

#include <memory>
#include <set>
#include <vector>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace sos::sim {

struct Vec2 {
  double x = 0, y = 0;
};

double distance(const Vec2& a, const Vec2& b);

/// Piecewise-linear path: sorted (time, position) anchors.
class Trajectory {
 public:
  void add(util::SimTime t, Vec2 p);
  /// Position at time t (clamped to the first/last anchor).
  Vec2 at(util::SimTime t) const;
  std::size_t anchor_count() const { return points_.size(); }
  util::SimTime end_time() const;

 private:
  std::vector<std::pair<util::SimTime, Vec2>> points_;
};

/// Common interface: a fixed set of nodes with known positions over time.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  virtual std::size_t node_count() const = 0;
  virtual Vec2 position(std::size_t node, util::SimTime t) const = 0;
};

/// Model built from explicit trajectories (also the base for all built-ins).
class TrajectoryMobility : public MobilityModel {
 public:
  explicit TrajectoryMobility(std::vector<Trajectory> trajectories)
      : trajectories_(std::move(trajectories)) {}

  std::size_t node_count() const override { return trajectories_.size(); }
  Vec2 position(std::size_t node, util::SimTime t) const override {
    return trajectories_[node].at(t);
  }
  const Trajectory& trajectory(std::size_t node) const { return trajectories_[node]; }

 private:
  std::vector<Trajectory> trajectories_;
};

struct AreaSpec {
  double width_m = 11000.0;   // paper: ~11 km
  double height_m = 8000.0;   // paper: ~8 km
};

struct RandomWaypointParams {
  AreaSpec area;
  double min_speed_mps = 0.7;
  double max_speed_mps = 2.0;
  double min_pause_s = 0.0;
  double max_pause_s = 600.0;
};

/// Classic random waypoint over a rectangle.
std::unique_ptr<TrajectoryMobility> random_waypoint(std::size_t nodes, util::SimTime horizon,
                                                    const RandomWaypointParams& params,
                                                    util::Rng& rng);

struct LevyWalkParams {
  AreaSpec area;
  double alpha = 1.6;          // power-law exponent for flight lengths
  double min_flight_m = 10.0;
  double max_flight_m = 3000.0;
  double speed_mps = 1.5;
  double max_pause_s = 900.0;
};

/// Lévy walk: heavy-tailed flight lengths, uniform directions, reflected at
/// the area boundary.
std::unique_ptr<TrajectoryMobility> levy_walk(std::size_t nodes, util::SimTime horizon,
                                              const LevyWalkParams& params, util::Rng& rng);

struct DailyRoutineParams {
  AreaSpec area;
  std::size_t hotspot_count = 5;      // shared gathering places (campus etc.)
  double hotspot_cluster_frac = 0.3;  // hotspots cluster in this central fraction
  double hotspot_radius_m = 25.0;     // dwell positions scatter within this
  int active_weekdays = 3;            // "class schedule": days/week a node goes out
  double active_attend_p = 0.92;      // attendance on scheduled days
  double offday_attend_p = 0.1;       // attendance on unscheduled weekdays
  double weekend_attend_p = 0.12;
  int min_visits_per_day = 1;
  int max_visits_per_day = 4;
  double min_dwell_s = 90 * 60.0;
  double max_dwell_s = 4 * 3600.0;
  double travel_speed_mps = 8.0;      // mixed walking/driving across the city
  double return_home_h = 18.0;        // gatherings wind down by early evening
  /// Nodes that go out every weekday (the deployment's social "centers" —
  /// paper nodes 6 and 7 — interact far more than the rest).
  std::set<std::size_t> highly_active;
  double popular_spot_p = 0.8;        // odds a visit targets the day's popular spot
  double preferred_spot_p = 0.0;      // odds a visit targets the node's own haunt
  double sleep_start_h = 23.0;        // stationary at home overnight
  double wake_h = 7.5;                // (the paper notes 5-8 h/day stationary)

  // --- multi-community structure (<= 1 keeps the classic one-city model,
  // bit-identical to the pre-community generator) ---------------------------
  /// Disjoint gathering communities: the area is tiled into a grid of K
  /// community cells, each with its own hotspot pool (`hotspot_count` spots
  /// clustered near the cell center) and home cluster. Nodes are assigned
  /// round-robin (node i -> community i mod K), so membership is balanced.
  /// Contacts then happen almost exclusively inside a community, which is
  /// what lets the episode partitioner run communities concurrently.
  std::size_t community_count = 1;
  /// Fraction of nodes that commute: a bridge node keeps its home but
  /// attends community (base + day) mod K on day `day`, carrying bundles
  /// (and causal dependencies) between communities across day boundaries.
  double bridge_node_frac = 0.0;
  /// Bridge nodes commute on weekdays only, spending weekends in their home
  /// community — the class/work framing of the weekly schedule. Off by
  /// default (classic stream: commuting every attended day).
  bool bridge_weekday_only = false;
  /// > 0: each bridge node draws one favorite second community at setup and
  /// commutes there with this probability (falling back to the day-rotation
  /// target otherwise). Recurring pairwise cross-community contact is what
  /// gives PRoPHET a stable delivery-predictability gradient to learn;
  /// pure rotation visits every community uniformly and teaches it nothing.
  /// 0 keeps the classic rotation (and the classic RNG stream).
  double bridge_favorite_p = 0.0;
  /// Homes scatter within this fraction of their community cell, leaving a
  /// margin to the neighboring cells so overnight home pairs never span
  /// communities (margin >> radio range for any realistic area).
  double community_spread_frac = 0.6;
  /// > 0: homes are rejection-sampled (bounded attempts) to keep at least
  /// this distance from every previously placed home in the same community.
  /// Two homes inside radio range form a pair that stays connected all
  /// night, every night — one de-facto household, not two users — and such
  /// pairs chain a community's days into one causal span, which is what
  /// collapses episode parallelism. Set it to a few radio ranges for
  /// community cells meant to decompose. 0 keeps the classic unconstrained
  /// placement (and the classic RNG stream).
  double home_min_separation_m = 0.0;
};

/// Human daily-routine model: every node has a home; on active days it
/// visits a random sequence of shared hotspots (creating co-location and
/// hence D2D encounters), returning home for the night. With
/// `community_count` > 1 the hotspots and homes split into K spatially
/// disjoint communities bridged only by commuting nodes.
std::unique_ptr<TrajectoryMobility> daily_routine(std::size_t nodes, util::SimTime horizon,
                                                  const DailyRoutineParams& params,
                                                  util::Rng& rng);

}  // namespace sos::sim
