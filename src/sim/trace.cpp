#include "sim/trace.hpp"

#include <algorithm>
#include <sstream>

namespace sos::sim {

bool ContactTrace::add(ContactInterval c) {
  if (c.a == c.b || c.end < c.start) return false;
  if (c.a > c.b) std::swap(c.a, c.b);
  contacts_.push_back(c);
  return true;
}

std::size_t ContactTrace::node_count() const {
  std::uint32_t highest = 0;
  bool any = false;
  for (const auto& c : contacts_) {
    highest = std::max(highest, c.b);
    any = true;
  }
  return any ? highest + 1 : 0;
}

util::SimTime ContactTrace::duration() const {
  util::SimTime end = 0;
  for (const auto& c : contacts_) end = std::max(end, c.end);
  return end;
}

std::vector<double> ContactTrace::contact_durations() const {
  std::vector<double> out;
  out.reserve(contacts_.size());
  for (const auto& c : contacts_) out.push_back(c.end - c.start);
  return out;
}

void ContactTrace::save(std::ostream& os) const {
  os << "# sos contact trace: start end node_a node_b\n";
  for (const auto& c : contacts_)
    os << c.start << " " << c.end << " " << c.a << " " << c.b << "\n";
}

std::optional<ContactTrace> ContactTrace::load(std::istream& is) {
  ContactTrace trace;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    ContactInterval c;
    if (!(ls >> c.start >> c.end >> c.a >> c.b)) return std::nullopt;
    if (!trace.add(c)) return std::nullopt;
  }
  return trace;
}

std::string ContactTrace::to_string() const {
  std::ostringstream os;
  save(os);
  return os.str();
}

std::optional<ContactTrace> ContactTrace::parse(const std::string& text) {
  std::istringstream is(text);
  return load(is);
}

void TraceRecorder::contact_start(std::uint32_t a, std::uint32_t b) {
  if (a > b) std::swap(a, b);
  open_.emplace(std::pair{a, b}, sched_.now());
}

void TraceRecorder::contact_end(std::uint32_t a, std::uint32_t b) {
  if (a > b) std::swap(a, b);
  auto it = open_.find({a, b});
  if (it == open_.end()) return;
  trace_.add({it->second, sched_.now(), a, b});
  open_.erase(it);
}

ContactTrace TraceRecorder::finish() {
  for (const auto& [pair, started] : open_)
    trace_.add({started, sched_.now(), pair.first, pair.second});
  open_.clear();
  return std::move(trace_);
}

void TracePlayer::start() {
  pending_.reserve(pending_.size() + 2 * trace_.contacts().size());
  for (const auto& c : trace_.contacts()) {
    pending_.push_back(sched_.schedule_at(c.start, [this, c] {
      if (on_contact_start) on_contact_start(c.a, c.b);
    }));
    pending_.push_back(sched_.schedule_at(c.end, [this, c] {
      if (on_contact_end) on_contact_end(c.a, c.b);
    }));
  }
}

void TracePlayer::stop() {
  // Cancelling an id that already fired is a no-op, so the whole list can
  // be cancelled blindly.
  for (EventId id : pending_) sched_.cancel(id);
  pending_.clear();
}

}  // namespace sos::sim
