// Disaster-realism fault injection (ROADMAP item 3). A FaultPlan compiles a
// declarative FaultPlanConfig into deterministic per-run fault machinery:
//
//   * per-link loss/jitter/asymmetry profiles with jitter-spike and
//     disconnect-window schedules, injected into MpcNetwork delivery,
//   * node churn — battery death at a scheduled time, reboot-with-store-loss
//     through the middleware's detach()/attach() seam,
//   * scripted partition-and-heal timelines (the area splits into isolated
//     groups for a window, then heals),
//   * adversarial node roles: flooder, blackhole/grayhole forwarder,
//     forged-signature storm.
//
// Determinism contract: every fault draw is derived via util::derive_seed
// over (scenario seed, fault stream, node/link id, frame timestamp), never
// from execution order. Trace-reshaping faults (churn down-windows,
// partitions, disconnect windows) are applied as a pure transformation of
// the recorded ContactTrace, so the single-scheduler and episode-partitioned
// replay engines see the same faulted world; per-frame faults key their
// draws on (link, exact send timestamp, same-timestamp sequence number),
// which both engines reproduce because a given (link, timestamp) occurs
// inside exactly one episode with identical FIFO event order. Metrics are
// therefore bitwise identical at any --jobs/--episode-jobs count (pinned by
// ctest -L fault).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/trace.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace sos::sim {

/// Half-open time window [start, end) in sim seconds.
struct FaultWindow {
  util::SimTime start = 0;
  util::SimTime end = 0;
};

/// Degraded-link profile applied to every link of the scenario.
struct LinkFaultProfile {
  /// Per-frame drop probability in the forward direction (lower node id ->
  /// higher node id).
  double loss_p = 0.0;
  /// Reverse-direction drop probability; < 0 means symmetric (use loss_p).
  /// Asymmetric links model the common disaster pathology of one damaged
  /// antenna: acks flow, data does not.
  double loss_p_reverse = -1.0;
  /// Baseline jitter: each frame occupies the medium up to this many extra
  /// seconds (uniform), modeling MAC-level retransmissions. Extending the
  /// serialization (instead of delaying one delivery) preserves the
  /// reliable-in-order contract the session layer's counter nonces need.
  double jitter_max_s = 0.0;
  /// Windows of elevated jitter (aftershock congestion spikes).
  std::vector<FaultWindow> jitter_spikes;
  double jitter_spike_max_s = 0.0;
  /// Global radio-dead windows (infrastructure interference sweeps): no
  /// contact survives inside them.
  std::vector<FaultWindow> disconnects;

  bool active() const {
    return loss_p > 0 || loss_p_reverse > 0 || jitter_max_s > 0 ||
           (!jitter_spikes.empty() && jitter_spike_max_s > 0) || !disconnects.empty();
  }
};

/// One battery-death / reboot cycle: the node is dark in [down_at, up_at)
/// and power-cycles at up_at.
struct NodeChurnEvent {
  std::uint32_t node = 0;
  util::SimTime down_at = 0;
  util::SimTime up_at = 0;
  /// Reboot-with-store-loss: the persisted bundle store does not survive.
  bool lose_store = true;
  /// The session-resumption cache is also lost (flash wiped, not just a
  /// crash): the next contact must pay a full handshake.
  bool lose_resume_cache = false;
};

/// Scripted partition-and-heal: for the window, nodes in different groups
/// (node id mod `groups`, matching the round-robin community assignment)
/// cannot make contact.
struct PartitionWindow {
  FaultWindow window;
  std::size_t groups = 2;
};

enum class AdversaryRole : std::uint8_t {
  Honest = 0,
  /// Publishes junk posts at flood_posts_per_hour (store/bandwidth DoS).
  Flooder,
  /// Requests everything, serves and advertises nothing (a sink).
  Blackhole,
  /// Participates normally but its radio silently drops a fraction of its
  /// outbound frames — promised forwards die on the air.
  Grayhole,
  /// Flooder whose bundles carry corrupted signatures (signature storm):
  /// free spread when verification is off, pure rejection load when on.
  Forger,
};

const char* to_string(AdversaryRole role);

struct AdversaryMix {
  double flooder_frac = 0.0;
  double blackhole_frac = 0.0;
  double grayhole_frac = 0.0;
  double forger_frac = 0.0;
  /// Probability a grayhole's outbound frame survives.
  double grayhole_forward_p = 0.5;
  /// Junk-publish rate for flooders and forgers.
  double flood_posts_per_hour = 20.0;

  double fraction_sum() const {
    return flooder_frac + blackhole_frac + grayhole_frac + forger_frac;
  }
  bool active() const { return fraction_sum() > 0; }
};

/// Declarative fault plan — a first-class scenario/sweep dimension
/// (ScenarioConfig::faults, ScenarioVariant::faults). Default-constructed
/// == no faults, bit-identical to the pre-fault engine.
struct FaultPlanConfig {
  LinkFaultProfile link;
  std::vector<NodeChurnEvent> churn;
  std::vector<PartitionWindow> partitions;
  AdversaryMix adversaries;

  bool any() const {
    return link.active() || !churn.empty() || !partitions.empty() || adversaries.active();
  }
  /// True when the plan changes which contacts exist (churn, partitions,
  /// disconnect windows) — these are applied by transforming the recorded
  /// contact trace, so faulted runs always replay a recorded world.
  bool reshapes_trace() const {
    return !churn.empty() || !partitions.empty() || !link.disconnects.empty();
  }

  /// Every reason this plan is invalid for a scenario of `nodes` nodes over
  /// `horizon_s` seconds (empty == valid): probabilities outside [0, 1],
  /// adversary fractions summing to >= 1, windows outside the horizon or
  /// inverted, overlapping churn cycles on one node, partition group counts
  /// < 2, churn events naming nonexistent nodes.
  std::vector<std::string> validate(double horizon_s, std::size_t nodes) const;
};

/// Verdict for one frame entering a link.
struct FrameFault {
  bool drop = false;
  double extra_busy_s = 0.0;  // added medium occupancy (jitter)
};

/// Compiled, immutable fault plan for one run. Thread-safe: all queries are
/// const and derive their randomness from (seed, ids, time) on the spot, so
/// episode workers can share one instance.
class FaultPlan {
 public:
  FaultPlan(const FaultPlanConfig& config, std::uint64_t scenario_seed, std::size_t nodes);

  const FaultPlanConfig& config() const { return config_; }
  bool any() const { return config_.any(); }
  bool reshapes_trace() const { return config_.reshapes_trace(); }

  /// Pure trace transformation: clip every contact against the down-windows
  /// of its endpoints, partition windows separating them, and the global
  /// disconnect windows. Both replay engines run the result, which is what
  /// keeps trace-reshaping faults engine-invariant for free.
  ContactTrace apply(const ContactTrace& trace) const;

  /// Per-frame verdict for the `seq`-th frame the (from, to) link carries at
  /// exactly time `now`. Deterministic in the arguments alone.
  FrameFault frame_fault(std::uint32_t from, std::uint32_t to, util::SimTime now,
                         std::uint64_t seq) const;
  /// True when frame_fault can ever return something non-trivial (lets the
  /// network skip per-frame work for plans with only trace-reshaping
  /// faults).
  bool frame_faults_active() const { return frame_faults_active_; }

  AdversaryRole role(std::uint32_t node) const;
  bool node_down(std::uint32_t node, util::SimTime t) const;
  const std::vector<NodeChurnEvent>& churn_for(std::uint32_t node) const;

  /// Junk-publish schedule for a flooder/forger over the horizon (empty for
  /// other roles). Poisson arrivals from the node's own derived stream;
  /// times inside the node's own down-windows are filtered out.
  std::vector<util::SimTime> flood_times(std::uint32_t node, util::SimTime horizon) const;

 private:
  FaultPlanConfig config_;
  std::uint64_t seed_ = 0;
  bool frame_faults_active_ = false;
  std::vector<AdversaryRole> roles_;
  std::vector<std::vector<NodeChurnEvent>> churn_by_node_;
  static const std::vector<NodeChurnEvent> kNoChurn;
};

}  // namespace sos::sim
