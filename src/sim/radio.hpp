// Radio model and encounter detection. Encounters (pairs entering/leaving
// radio range) drive MultipeerSim connectivity. Detection samples node
// positions on a fixed tick with a uniform grid for the pair search, so
// density-sweep benches with hundreds of nodes stay fast.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/mobility.hpp"
#include "sim/scheduler.hpp"

namespace sos::sim {

struct RadioParams {
  double range_m = 80.0;            // peer-to-peer WiFi class range
  double bandwidth_bps = 2e6 * 8;   // ~2 MB/s peer-to-peer WiFi
  double latency_s = 0.02;
  double setup_time_s = 1.5;        // MPC invite/handshake wall time
};

/// Watches a mobility model and reports contact start/end between pairs.
class EncounterDetector {
 public:
  using ContactFn = std::function<void(std::size_t a, std::size_t b)>;

  EncounterDetector(Scheduler& sched, const MobilityModel& mobility, double range_m,
                    util::SimTime tick = 10.0);

  /// Begin periodic detection until `until`.
  void start(util::SimTime until);

  ContactFn on_contact_start;  // a < b
  ContactFn on_contact_end;    // a < b

  bool in_contact(std::size_t a, std::size_t b) const;
  std::size_t contact_count() const { return contacts_.size(); }
  std::uint64_t total_contacts_seen() const { return total_contacts_; }

  /// Run one detection pass at the current sim time (also used by tests).
  void scan();

 private:
  using ContactPair = std::pair<std::size_t, std::size_t>;

  void tick_once(util::SimTime until);

  Scheduler& sched_;
  const MobilityModel& mobility_;
  double range_m_;
  util::SimTime tick_;
  // Tick deadlines are computed as start_at_ + k * tick_ rather than by
  // accumulating now + tick_: repeated addition drifts by an ulp every few
  // thousand ticks for non-representable intervals, and a month-long run
  // would scan at times that no longer match recorded trace timestamps.
  util::SimTime start_at_ = 0.0;
  std::uint64_t tick_index_ = 0;
  std::vector<ContactPair> contacts_;  // sorted; a < b within each pair
  std::uint64_t total_contacts_ = 0;

  // Scratch buffers reused across ticks so a scan allocates nothing in
  // steady state (the detector runs every tick for the whole simulation).
  std::vector<Vec2> pos_;
  std::vector<std::pair<std::uint64_t, std::size_t>> cells_;  // sorted by cell key
  std::vector<ContactPair> current_;
  std::vector<ContactPair> started_;
  std::vector<ContactPair> ended_;
};

}  // namespace sos::sim
