// ContactDag: the sub-episode analysis pass behind strand-level parallel
// replay. EpisodeGraph (sim/episode.hpp) fuses a node's overlapping episode
// windows because an episode holds every member until its *global* end —
// which chains a dense single-hotspot day into one serial episode. But the
// recorded trace is a conservative-lookahead oracle: every node's next
// incoming contact time is known before replay starts (Chandy–Misra–Bryant
// null messages without the protocol), so inside one episode each node's
// timeline can be cut into "strands" between its consecutive contacts and
// released the moment its last contact in a task ends.
//
// Construction keeps only the mandatory fusion:
//
//   1. Contacts that share a node and overlap (or touch) in time are fused —
//      their events interleave on the shared node and cannot be split. This
//      is exactly EpisodeGraph's step 1.
//   1b. Clusters whose *per-node hulls* overlap fuse to a fixpoint: step-1
//      fusion is transitive through other nodes, so a node's contacts
//      within one cluster need not be contiguous, and a cluster sitting in
//      that hull's gap would need the node while the first cluster still
//      holds it. This replaces EpisodeGraph's step 2, which fuses on
//      cluster *global-span* overlap — far coarser: here a task whose span
//      nests inside another's stays separate as long as every shared node's
//      own windows are disjoint, because the engine detaches each member at
//      its strand end (ContactStrand::last_end), not at the task's global
//      end. Pending timers re-arm on the node's next shard at their
//      original absolute deadlines.
//   1c. Cycles in the resulting per-node ordering fuse to a fixpoint:
//      cluster A can hold node X before B while B holds node Y before A
//      (mutual entanglement) even with disjoint hulls everywhere, and then
//      no execution order exists. Such strongly-connected components always
//      sit inside one episode (their global spans overlap, so EpisodeGraph's
//      step 2 fuses a superset), keeping the DAG a strict refinement of the
//      episode partition.
//   2. Task B depends on task A when they share a node whose A-strand
//      precedes its B-strand (middleware state handoff through the
//      SosNode detach/attach seam), so per-node chaining subsumes the
//      episode DAG's ordering edges.
//
// One trailing "tail" task (no contacts) covers every node's timeline from
// its last contact to the horizon. Tasks are indexed in trace order, which
// is a topological order of the DAG.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/trace.hpp"

namespace sos::sim {

/// One member node's occupancy of a ContactTask: the window from its first
/// contact start to its last contact end within the task. The node attaches
/// to the task's shard at the task start and detaches at `last_end`; its
/// windows across distinct tasks are strictly disjoint (fusion step 1b), so
/// the strand sequence tiles the node's timeline.
struct ContactStrand {
  std::uint32_t node = 0;
  util::SimTime first_start = 0;
  util::SimTime last_end = 0;
};

struct ContactTask {
  /// Member strands, ascending by node. For the tail task: every node, with
  /// first_start 0 and last_end = horizon (the engine derives each member's
  /// actual resume point from its previous task, not from these fields).
  std::vector<ContactStrand> strands;
  /// Indices into the source trace's contacts(), ascending (= trace order).
  /// Empty for the tail task.
  std::vector<std::size_t> contacts;
  /// Earliest contact start / latest contact end (tail: 0 and the horizon).
  util::SimTime first_start = 0;
  util::SimTime last_end = 0;
  /// Tasks that must finish before this one may run (state handoff).
  std::vector<std::size_t> deps;
};

class ContactDag {
 public:
  /// Partition `trace` over `node_count` nodes and a [0, horizon] timeline.
  /// Deterministic: depends only on the arguments, never on thread count.
  static ContactDag partition(const ContactTrace& trace, std::size_t node_count,
                              util::SimTime horizon);

  const std::vector<ContactTask>& tasks() const { return tasks_; }
  /// Tasks carrying contacts (the tail, when present, is the last one).
  std::size_t contact_task_count() const { return contact_tasks_; }

  /// Sum over the longest dependency chain of per-task contact counts,
  /// divided into the total: the parallel speedup ceiling this trace admits
  /// under strand partitioning (1.0 = fully sequential). Always >= the
  /// EpisodeGraph ceiling for the same trace: dropping span fusion only
  /// removes edges.
  double parallelism() const;

  /// Maximum number of contact tasks whose [first_start, last_end] spans are
  /// open at one instant (ends close before starts at equal timestamps; the
  /// tail is excluded). Unlike parallelism(), this measures sim-time
  /// concurrency — the hotspot-cell signature is width > 1 with episode
  /// parallelism ~1: independent overnight home-pair tasks overlap each
  /// other (and the daily hotspot megatask's span) without lying on one
  /// critical path.
  std::size_t width() const;

 private:
  std::vector<ContactTask> tasks_;
  std::size_t contact_tasks_ = 0;
};

}  // namespace sos::sim
