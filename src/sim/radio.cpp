#include "sim/radio.hpp"

#include <algorithm>
#include <cmath>

namespace sos::sim {

EncounterDetector::EncounterDetector(Scheduler& sched, const MobilityModel& mobility,
                                     double range_m, util::SimTime tick)
    : sched_(sched), mobility_(mobility), range_m_(range_m), tick_(tick) {}

void EncounterDetector::start(util::SimTime until) {
  start_at_ = sched_.now();
  tick_index_ = 0;
  sched_.schedule_in(0, [this, until] { tick_once(until); });
}

void EncounterDetector::tick_once(util::SimTime until) {
  scan();
  // Next deadline from the tick index, not by accumulating now + tick_:
  // summed rounding error would eventually misalign scans with the
  // timestamps a recorded trace carries (see start_at_).
  util::SimTime next = start_at_ + static_cast<double>(++tick_index_) * tick_;
  if (next <= until) {
    sched_.schedule_at(next, [this, until] { tick_once(until); });
  }
}

void EncounterDetector::scan() {
  const std::size_t n = mobility_.node_count();
  const util::SimTime now = sched_.now();

  pos_.resize(n);
  for (std::size_t i = 0; i < n; ++i) pos_[i] = mobility_.position(i, now);

  // Uniform grid with cell size = range: only same/neighbor cells can hold
  // pairs within range. The grid is a sorted (cell key, node) vector reused
  // across ticks — no per-tick hash map or bucket allocations.
  const double cell = range_m_;
  auto key = [cell](const Vec2& p) {
    auto gx = static_cast<std::int32_t>(std::floor(p.x / cell));
    auto gy = static_cast<std::int32_t>(std::floor(p.y / cell));
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(gx)) << 32) |
           static_cast<std::uint32_t>(gy);
  };
  cells_.clear();
  cells_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) cells_.emplace_back(key(pos_[i]), i);
  std::sort(cells_.begin(), cells_.end());

  current_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    auto gx = static_cast<std::int32_t>(std::floor(pos_[i].x / cell));
    auto gy = static_cast<std::int32_t>(std::floor(pos_[i].y / cell));
    for (int dx = -1; dx <= 1; ++dx)
      for (int dy = -1; dy <= 1; ++dy) {
        std::uint64_t k =
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(gx + dx)) << 32) |
            static_cast<std::uint32_t>(gy + dy);
        auto it = std::lower_bound(cells_.begin(), cells_.end(),
                                   std::pair<std::uint64_t, std::size_t>{k, 0});
        for (; it != cells_.end() && it->first == k; ++it) {
          std::size_t j = it->second;
          if (j <= i) continue;
          if (distance(pos_[i], pos_[j]) <= range_m_) current_.emplace_back(i, j);
        }
      }
  }
  std::sort(current_.begin(), current_.end());

  // Diff against the previous contact set (both sorted).
  started_.clear();
  ended_.clear();
  std::set_difference(current_.begin(), current_.end(), contacts_.begin(), contacts_.end(),
                      std::back_inserter(started_));
  std::set_difference(contacts_.begin(), contacts_.end(), current_.begin(), current_.end(),
                      std::back_inserter(ended_));
  total_contacts_ += started_.size();
  if (on_contact_start)
    for (const auto& p : started_) on_contact_start(p.first, p.second);
  if (on_contact_end)
    for (const auto& p : ended_) on_contact_end(p.first, p.second);
  contacts_.swap(current_);
}

bool EncounterDetector::in_contact(std::size_t a, std::size_t b) const {
  if (a > b) std::swap(a, b);
  return std::binary_search(contacts_.begin(), contacts_.end(), ContactPair{a, b});
}

}  // namespace sos::sim
