#include "sim/radio.hpp"

#include <cmath>
#include <unordered_map>

namespace sos::sim {

EncounterDetector::EncounterDetector(Scheduler& sched, const MobilityModel& mobility,
                                     double range_m, util::SimTime tick)
    : sched_(sched), mobility_(mobility), range_m_(range_m), tick_(tick) {}

void EncounterDetector::start(util::SimTime until) {
  sched_.schedule_in(0, [this, until] { tick_once(until); });
}

void EncounterDetector::tick_once(util::SimTime until) {
  scan();
  if (sched_.now() + tick_ <= until) {
    sched_.schedule_in(tick_, [this, until] { tick_once(until); });
  }
}

void EncounterDetector::scan() {
  const std::size_t n = mobility_.node_count();
  const util::SimTime now = sched_.now();

  std::vector<Vec2> pos(n);
  for (std::size_t i = 0; i < n; ++i) pos[i] = mobility_.position(i, now);

  // Uniform grid with cell size = range: only same/neighbor cells can hold
  // pairs within range.
  const double cell = range_m_;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> grid;
  auto key = [cell](const Vec2& p) {
    auto gx = static_cast<std::int32_t>(std::floor(p.x / cell));
    auto gy = static_cast<std::int32_t>(std::floor(p.y / cell));
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(gx)) << 32) |
           static_cast<std::uint32_t>(gy);
  };
  for (std::size_t i = 0; i < n; ++i) grid[key(pos[i])].push_back(i);

  std::set<std::pair<std::size_t, std::size_t>> current;
  for (std::size_t i = 0; i < n; ++i) {
    auto gx = static_cast<std::int32_t>(std::floor(pos[i].x / cell));
    auto gy = static_cast<std::int32_t>(std::floor(pos[i].y / cell));
    for (int dx = -1; dx <= 1; ++dx)
      for (int dy = -1; dy <= 1; ++dy) {
        std::uint64_t k =
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(gx + dx)) << 32) |
            static_cast<std::uint32_t>(gy + dy);
        auto it = grid.find(k);
        if (it == grid.end()) continue;
        for (std::size_t j : it->second) {
          if (j <= i) continue;
          if (distance(pos[i], pos[j]) <= range_m_) current.insert({i, j});
        }
      }
  }

  // Diff against the previous contact set.
  for (const auto& p : current) {
    if (contacts_.count(p) == 0) {
      ++total_contacts_;
      if (on_contact_start) on_contact_start(p.first, p.second);
    }
  }
  for (const auto& p : contacts_) {
    if (current.count(p) == 0 && on_contact_end) on_contact_end(p.first, p.second);
  }
  contacts_ = std::move(current);
}

bool EncounterDetector::in_contact(std::size_t a, std::size_t b) const {
  if (a > b) std::swap(a, b);
  return contacts_.count({a, b}) > 0;
}

}  // namespace sos::sim
