// Simulation time helpers. Simulated time is seconds (double) since the
// scenario epoch; these helpers keep workload code readable (hours(24),
// day_of_week, is_weekend, hh:mm formatting for reports).
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

namespace sos::util {

using SimTime = double;  // seconds since scenario start

constexpr SimTime seconds(double s) { return s; }
constexpr SimTime minutes(double m) { return m * 60.0; }
constexpr SimTime hours(double h) { return h * 3600.0; }
constexpr SimTime days(double d) { return d * 86400.0; }

/// 0 = Monday ... 6 = Sunday (scenarios start on a Monday 00:00).
inline int day_of_week(SimTime t) {
  auto d = static_cast<std::int64_t>(std::floor(t / 86400.0));
  return static_cast<int>(((d % 7) + 7) % 7);
}

inline bool is_weekend(SimTime t) {
  int dow = day_of_week(t);
  return dow == 5 || dow == 6;
}

/// Seconds since local midnight of the current simulated day.
inline double time_of_day(SimTime t) {
  double d = std::fmod(t, 86400.0);
  return d < 0 ? d + 86400.0 : d;
}

/// "d2 07:30" style rendering for logs/reports.
std::string format_time(SimTime t);

/// "37.2h" style rendering of a duration.
std::string format_duration(SimTime dt);

}  // namespace sos::util
