#include "util/log.hpp"

#include <cstdio>

#include "util/time.hpp"

namespace sos::util {

namespace {
LogLevel g_level = LogLevel::Warn;

const char* level_name(LogLevel lv) {
  switch (lv) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel lv) { g_level = lv; }

void log_write(LogLevel lv, const std::string& tag, const std::string& msg) {
  std::fprintf(stderr, "[%-5s] %-10s %s\n", level_name(lv), tag.c_str(), msg.c_str());
}

std::string format_time(SimTime t) {
  auto day = static_cast<long>(t / 86400.0);
  double tod = time_of_day(t);
  int hh = static_cast<int>(tod / 3600.0);
  int mm = static_cast<int>(tod / 60.0) % 60;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "d%ld %02d:%02d", day, hh, mm);
  return buf;
}

std::string format_duration(SimTime dt) {
  char buf[32];
  if (dt < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.0fs", dt);
  } else if (dt < 7200.0) {
    std::snprintf(buf, sizeof(buf), "%.1fm", dt / 60.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fh", dt / 3600.0);
  }
  return buf;
}

}  // namespace sos::util
