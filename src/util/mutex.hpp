// Annotated mutex types for Clang Thread Safety Analysis. std::mutex and
// std::lock_guard carry no capability attributes on libstdc++, so a field
// marked SOS_GUARDED_BY(std_mu) could never be proven locked; these thin
// wrappers are attribute-complete stand-ins with identical semantics and
// zero overhead. All shared mutable state in this repo (VerifyMemo shards,
// the episode engine's Kahn queue) locks through these types.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace sos::util {

/// std::mutex with capability annotations. Lock through MutexLock (or the
/// raw lock()/unlock() pair inside annotated functions); condition waits go
/// through wait(), which names *this* mutex as the required capability so
/// the analysis can match it against the caller's held set.
class SOS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SOS_ACQUIRE() { mu_.lock(); }
  void unlock() SOS_RELEASE() { mu_.unlock(); }
  bool try_lock() SOS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Block on `cv` until notified; the caller must hold this mutex. The
  /// wait releases and retakes it internally (condition_variable_any over
  /// the BasicLockable surface above); to the analysis the capability is
  /// simply held across the call, which matches what the caller observes.
  void wait(std::condition_variable_any& cv) SOS_REQUIRES(this)
      SOS_NO_THREAD_SAFETY_ANALYSIS {
    cv.wait(*this);
  }

 private:
  std::mutex mu_;
};

/// RAII lock over Mutex, with the manual unlock()/lock() pair the episode
/// engine's worker loop needs (drop the lock around run_episode, retake it
/// to update the ready set). The analysis tracks the held/released state
/// through those calls, so a path that returns while unlocked-but-destructing
/// or double-unlocks is a compile error under -Wthread-safety.
class SOS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SOS_ACQUIRE(mu) : mu_(mu), held_(true) { mu_.lock(); }
  ~MutexLock() SOS_RELEASE() {
    if (held_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily drop the lock (long computation; never while iterating
  /// guarded state).
  void unlock() SOS_RELEASE() {
    held_ = false;
    mu_.unlock();
  }
  /// Retake a dropped lock.
  void lock() SOS_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

}  // namespace sos::util
