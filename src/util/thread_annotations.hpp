// Clang Thread Safety Analysis annotations (the "capability" analysis):
// compile-time checking that every access to a mutex-protected field
// happens with the right mutex held, and that lock/unlock discipline is
// structurally sound — the static half of the concurrency contract whose
// dynamic half is the TSan gate in run_benches.sh --check.
//
// The macros expand to clang attributes under clang and to nothing
// elsewhere, so GCC builds (this container) see plain code while clang CI
// builds enforce the contract with -Wthread-safety -Werror. Annotate with
// the SOS_* spellings only; never use __attribute__((...)) directly, so
// a grep for SOS_GUARDED_BY enumerates the entire annotated surface.
//
// Usage sketch (see util/mutex.hpp for the annotated mutex types):
//
//   util::Mutex mu_;
//   int shared_ SOS_GUARDED_BY(mu_);
//   void touch() SOS_REQUIRES(mu_);   // caller must hold mu_
//   void sweep() SOS_EXCLUDES(mu_);   // caller must NOT hold mu_ (it locks)
#pragma once

#if defined(__clang__)
#define SOS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SOS_THREAD_ANNOTATION(x)  // no-op off-clang
#endif

/// Declares a type to be a capability (lockable): util::Mutex.
#define SOS_CAPABILITY(x) SOS_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type whose lifetime acquires/releases a capability.
#define SOS_SCOPED_CAPABILITY SOS_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given mutex.
#define SOS_GUARDED_BY(x) SOS_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given mutex.
#define SOS_PT_GUARDED_BY(x) SOS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and exit).
#define SOS_REQUIRES(...) SOS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on exit, not entry).
#define SOS_ACQUIRE(...) SOS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (held on entry, not exit).
#define SOS_RELEASE(...) SOS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define SOS_TRY_ACQUIRE(...) SOS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must be called WITHOUT the listed capabilities held (it will
/// acquire them itself — calling with them held is a self-deadlock).
#define SOS_EXCLUDES(...) SOS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (no acquire/release).
#define SOS_ASSERT_CAPABILITY(x) SOS_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the given capability.
#define SOS_RETURN_CAPABILITY(x) SOS_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disable the analysis for one function. Every use must
/// carry a comment saying why the contract cannot be expressed.
#define SOS_NO_THREAD_SAFETY_ANALYSIS SOS_THREAD_ANNOTATION(no_thread_safety_analysis)
