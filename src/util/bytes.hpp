// Byte-buffer helpers shared by every module: hex and base32 text codecs,
// constant-time comparison for secrets, and small conversion utilities.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sos::util {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Bytes from a string's raw characters.
Bytes to_bytes(std::string_view s);

/// Raw characters of a byte buffer as a std::string (may contain NUL).
std::string to_string(ByteView b);

/// Lowercase hex encoding ("deadbeef").
std::string hex_encode(ByteView b);

/// Decode hex; returns nullopt on odd length or non-hex characters.
std::optional<Bytes> hex_decode(std::string_view s);

/// RFC 4648 base32 (no padding, uppercase). Used for the 10-byte user ids:
/// 10 bytes -> exactly 16 base32 characters.
std::string base32_encode(ByteView b);
std::optional<Bytes> base32_decode(std::string_view s);

/// Constant-time equality for MACs/keys: always touches every byte.
bool ct_equal(ByteView a, ByteView b);

/// Zeroize secret material in a way the optimizer cannot elide (dead-store
/// elimination would otherwise delete a plain memset before free). Key
/// structs call this from their destructors; the sos-lint zeroize-secret
/// rule enforces that discipline statically.
void secure_wipe(void* p, std::size_t n);

template <std::size_t N>
void secure_wipe(std::array<std::uint8_t, N>& a) {
  secure_wipe(a.data(), a.size());
}

/// Append `src` to `dst`.
void append(Bytes& dst, ByteView src);

/// Concatenate any number of buffers.
template <typename... Views>
Bytes concat(const Views&... vs) {
  Bytes out;
  std::size_t total = (static_cast<std::size_t>(std::size(vs)) + ... + 0u);
  out.reserve(total);
  (out.insert(out.end(), std::begin(vs), std::end(vs)), ...);
  return out;
}

/// Fixed-size array from a view; asserts the size matches.
template <std::size_t N>
std::array<std::uint8_t, N> to_array(ByteView v) {
  std::array<std::uint8_t, N> out{};
  if (v.size() != N) return out;  // caller validates; zero on mismatch
  for (std::size_t i = 0; i < N; ++i) out[i] = v[i];
  return out;
}

// Little/big-endian scalar load/store used by crypto and the wire codec.
std::uint32_t load32_le(const std::uint8_t* p);
std::uint64_t load64_le(const std::uint8_t* p);
std::uint32_t load32_be(const std::uint8_t* p);
std::uint64_t load64_be(const std::uint8_t* p);
void store32_le(std::uint8_t* p, std::uint32_t v);
void store64_le(std::uint8_t* p, std::uint64_t v);
void store32_be(std::uint8_t* p, std::uint32_t v);
void store64_be(std::uint8_t* p, std::uint64_t v);

}  // namespace sos::util
