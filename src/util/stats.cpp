#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace sos::util {

void Cdf::sort() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::at(double x) const {
  if (samples_.empty()) return 0.0;
  sort();
  auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double Cdf::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  sort();
  q = std::clamp(q, 0.0, 1.0);
  std::size_t idx = static_cast<std::size_t>(std::ceil(q * static_cast<double>(samples_.size())));
  if (idx > 0) --idx;
  return samples_[std::min(idx, samples_.size() - 1)];
}

double Cdf::min() const {
  if (samples_.empty()) return 0.0;
  sort();
  return samples_.front();
}

double Cdf::max() const {
  if (samples_.empty()) return 0.0;
  sort();
  return samples_.back();
}

double Cdf::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

const std::vector<double>& Cdf::sorted_samples() const {
  sort();
  return samples_;
}

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  Cdf cdf;
  for (double x : xs) cdf.add(x);
  s.min = cdf.min();
  s.max = cdf.max();
  s.mean = cdf.mean();
  double var = 0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(xs.size()));
  s.p50 = cdf.quantile(0.50);
  s.p90 = cdf.quantile(0.90);
  s.p99 = cdf.quantile(0.99);
  return s;
}

Histogram2d::Histogram2d(double x0, double y0, double x1, double y1, std::size_t nx,
                         std::size_t ny)
    : x0_(x0), y0_(y0), x1_(x1), y1_(y1), nx_(nx), ny_(ny), cells_(nx * ny, 0) {}

void Histogram2d::add(double x, double y) {
  if (x < x0_ || x >= x1_ || y < y0_ || y >= y1_) return;
  auto ix = static_cast<std::size_t>((x - x0_) / (x1_ - x0_) * static_cast<double>(nx_));
  auto iy = static_cast<std::size_t>((y - y0_) / (y1_ - y0_) * static_cast<double>(ny_));
  ix = std::min(ix, nx_ - 1);
  iy = std::min(iy, ny_ - 1);
  ++cells_[iy * nx_ + ix];
  ++total_;
}

std::uint64_t Histogram2d::cell(std::size_t ix, std::size_t iy) const {
  return cells_[iy * nx_ + ix];
}

double Histogram2d::occupancy() const {
  std::size_t nonzero = 0;
  for (auto c : cells_)
    if (c > 0) ++nonzero;
  return static_cast<double>(nonzero) / static_cast<double>(cells_.size());
}

std::string Histogram2d::render() const {
  static const char kRamp[] = " .:-=+*#%@";
  std::uint64_t maxc = 0;
  for (auto c : cells_) maxc = std::max(maxc, c);
  std::string out;
  out.reserve((nx_ + 1) * ny_);
  for (std::size_t row = 0; row < ny_; ++row) {
    std::size_t iy = ny_ - 1 - row;  // top row = max y
    for (std::size_t ix = 0; ix < nx_; ++ix) {
      std::uint64_t c = cell(ix, iy);
      if (c == 0 || maxc == 0) {
        out.push_back(' ');
      } else {
        double f = std::log1p(static_cast<double>(c)) / std::log1p(static_cast<double>(maxc));
        auto idx = static_cast<std::size_t>(f * 9.0);
        out.push_back(kRamp[std::min<std::size_t>(idx + 1, 9)]);
      }
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace sos::util
