// Deterministic PRNG for simulations: xoshiro256** seeded via splitmix64.
// Every scenario takes an explicit seed so runs are exactly reproducible;
// std::mt19937 is avoided because distribution implementations differ across
// standard libraries and would break cross-platform determinism.
#pragma once

#include <cstdint>
#include <vector>

namespace sos::util {

/// Derive a decorrelated seed from (base, index) via splitmix64 — the
/// per-cell streams of a scenario sweep. Nearby indices (0, 1, 2, ...) give
/// unrelated streams, and the result depends only on the two inputs, never
/// on execution order, so sweeps stay reproducible at any thread count.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index);

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedbeefcafef00dULL);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, n) without modulo bias (n must be > 0).
  std::uint64_t below(std::uint64_t n);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Exponential with the given mean (>0).
  double exponential(double mean);

  /// Standard normal via Box-Muller, scaled to (mean, stddev).
  double normal(double mean, double stddev);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  std::uint64_t poisson(double mean);

  /// Zipf-like rank draw over [0, n) with exponent s (rejection-free inverse
  /// CDF over precomputed weights would be heavy; simple CDF walk is fine for
  /// small n used in workloads).
  std::uint64_t zipf(std::uint64_t n, double s);

  /// True with probability p.
  bool chance(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Uniformly chosen element (container must be non-empty).
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[static_cast<std::size_t>(below(v.size()))];
  }

  /// Derive an independent child stream (for per-node RNGs).
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace sos::util
