// Minimal leveled logger. Simulations are chatty; default level is Warn so
// tests/benches stay quiet. Examples raise it to Info to narrate the run.
#pragma once

#include <sstream>
#include <string>

namespace sos::util {

enum class LogLevel { Trace = 0, Debug, Info, Warn, Error, Off };

LogLevel log_level();
void set_log_level(LogLevel lv);

void log_write(LogLevel lv, const std::string& tag, const std::string& msg);

#define SOS_LOG(lv, tag, expr)                                      \
  do {                                                              \
    if (static_cast<int>(lv) >= static_cast<int>(::sos::util::log_level())) { \
      std::ostringstream sos_log_os_;                               \
      sos_log_os_ << expr;                                          \
      ::sos::util::log_write(lv, tag, sos_log_os_.str());           \
    }                                                               \
  } while (0)

#define SOS_DEBUG(tag, expr) SOS_LOG(::sos::util::LogLevel::Debug, tag, expr)
#define SOS_INFO(tag, expr) SOS_LOG(::sos::util::LogLevel::Info, tag, expr)
#define SOS_WARN(tag, expr) SOS_LOG(::sos::util::LogLevel::Warn, tag, expr)

}  // namespace sos::util
