#include "util/bytes.hpp"

#include <cstring>

namespace sos::util {

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(ByteView b) {
  return std::string(b.begin(), b.end());
}

namespace {
constexpr char kHex[] = "0123456789abcdef";

int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

constexpr char kB32[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZ234567";

int b32_val(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a';
  if (c >= '2' && c <= '7') return c - '2' + 26;
  return -1;
}
}  // namespace

std::string hex_encode(ByteView b) {
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t v : b) {
    out.push_back(kHex[v >> 4]);
    out.push_back(kHex[v & 0xF]);
  }
  return out;
}

std::optional<Bytes> hex_decode(std::string_view s) {
  if (s.size() % 2 != 0) return std::nullopt;
  Bytes out;
  out.reserve(s.size() / 2);
  for (std::size_t i = 0; i < s.size(); i += 2) {
    int hi = hex_val(s[i]);
    int lo = hex_val(s[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::string base32_encode(ByteView b) {
  std::string out;
  out.reserve((b.size() * 8 + 4) / 5);
  std::uint32_t acc = 0;
  int bits = 0;
  for (std::uint8_t v : b) {
    acc = (acc << 8) | v;
    bits += 8;
    while (bits >= 5) {
      bits -= 5;
      out.push_back(kB32[(acc >> bits) & 0x1F]);
    }
  }
  if (bits > 0) out.push_back(kB32[(acc << (5 - bits)) & 0x1F]);
  return out;
}

std::optional<Bytes> base32_decode(std::string_view s) {
  Bytes out;
  out.reserve(s.size() * 5 / 8);
  std::uint32_t acc = 0;
  int bits = 0;
  for (char c : s) {
    int v = b32_val(c);
    if (v < 0) return std::nullopt;
    acc = (acc << 5) | static_cast<std::uint32_t>(v);
    bits += 5;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((acc >> bits) & 0xFF));
    }
  }
  return out;
}

bool ct_equal(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    diff = static_cast<std::uint8_t>(diff | (a[i] ^ b[i]));
  return diff == 0;
}

void secure_wipe(void* p, std::size_t n) {
  // A volatile pointer walk is the portable equivalent of explicit_bzero:
  // the qualified accesses are observable behaviour, so the stores survive
  // dead-store elimination even when the object is about to die.
  volatile std::uint8_t* vp = static_cast<volatile std::uint8_t*>(p);
  for (std::size_t i = 0; i < n; ++i) vp[i] = 0;
}

void append(Bytes& dst, ByteView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

std::uint32_t load32_le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t load64_le(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(load32_le(p)) |
         (static_cast<std::uint64_t>(load32_le(p + 4)) << 32);
}

std::uint32_t load32_be(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) | (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | static_cast<std::uint32_t>(p[3]);
}

std::uint64_t load64_be(const std::uint8_t* p) {
  return (static_cast<std::uint64_t>(load32_be(p)) << 32) |
         static_cast<std::uint64_t>(load32_be(p + 4));
}

void store32_le(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void store64_le(std::uint8_t* p, std::uint64_t v) {
  store32_le(p, static_cast<std::uint32_t>(v));
  store32_le(p + 4, static_cast<std::uint32_t>(v >> 32));
}

void store32_be(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

void store64_be(std::uint8_t* p, std::uint64_t v) {
  store32_be(p, static_cast<std::uint32_t>(v >> 32));
  store32_be(p + 4, static_cast<std::uint32_t>(v));
}

}  // namespace sos::util
