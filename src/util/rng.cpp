#include "util/rng.hpp"

#include <cmath>

namespace sos::util {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) {
  // Mix the base once so adjacent bases decorrelate, then offset by the
  // index on the golden-ratio stride splitmix64 was designed around.
  std::uint64_t x = base;
  std::uint64_t mixed = splitmix64(x);
  x = mixed ^ (index * 0x9e3779b97f4a7c15ULL);
  return splitmix64(x);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t n) {
  // Lemire-style rejection to remove modulo bias.
  std::uint64_t threshold = (0 - n) % n;
  while (true) {
    std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (have_spare_) {
    have_spare_ = false;
    return mean + stddev * spare_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  double u2 = uniform();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * M_PI * u2);
  have_spare_ = true;
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

std::uint64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    double v = normal(mean, std::sqrt(mean));
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  double prod = uniform();
  std::uint64_t k = 0;
  while (prod > limit) {
    prod *= uniform();
    ++k;
  }
  return k;
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  if (n == 0) return 0;
  double total = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) total += 1.0 / std::pow(static_cast<double>(i), s);
  double target = uniform() * total;
  double acc = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i), s);
    if (acc >= target) return i - 1;
  }
  return n - 1;
}

bool Rng::chance(double p) {
  return uniform() < p;
}

Rng Rng::fork() {
  return Rng(next() ^ 0xa02bdbf7bb3c0a7ULL);
}

}  // namespace sos::util
