// Small statistics toolkit for the evaluation harness: empirical CDFs
// (Fig 4c/4d), summary statistics, and a 2D histogram used to render the
// Fig 4b activity map as ASCII.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sos::util {

/// Empirical CDF over a sample set.
class Cdf {
 public:
  void add(double v) { sorted_ = false; samples_.push_back(v); }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// P[X <= x].
  double at(double x) const;
  /// Smallest x with P[X <= x] >= q, q in [0,1]. Returns 0 on empty.
  double quantile(double q) const;
  double min() const;
  double max() const;
  double mean() const;

  /// Fraction of samples strictly greater than x.
  double fraction_above(double x) const { return empty() ? 0.0 : 1.0 - at(x); }

  const std::vector<double>& sorted_samples() const;

 private:
  void sort() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

struct Summary {
  std::size_t n = 0;
  double mean = 0, stddev = 0, min = 0, max = 0, p50 = 0, p90 = 0, p99 = 0;
};

Summary summarize(const std::vector<double>& xs);

/// 2D histogram over a rectangle; render() returns an ASCII heat map.
class Histogram2d {
 public:
  Histogram2d(double x0, double y0, double x1, double y1, std::size_t nx, std::size_t ny);

  void add(double x, double y);
  std::uint64_t cell(std::size_t ix, std::size_t iy) const;
  std::uint64_t total() const { return total_; }
  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }

  /// Fraction of cells with at least one sample (spatial coverage).
  double occupancy() const;

  /// ASCII heat map, one character per cell, ' ' for empty, '.:-=+*#%@'
  /// scaled by log count; row 0 = top (max y).
  std::string render() const;

 private:
  double x0_, y0_, x1_, y1_;
  std::size_t nx_, ny_;
  std::vector<std::uint64_t> cells_;
  std::uint64_t total_ = 0;
};

}  // namespace sos::util
