// Binary wire codec used by bundles, certificates and the middleware
// handshake frames. Fixed-width integers are big-endian; lengths and counts
// use LEB128 varints. Readers are bounds-checked and never throw: failures
// poison the reader (ok() == false) and subsequent reads return zeros, so
// parsers can validate once at the end.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/bytes.hpp"

namespace sos::util {

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void varint(std::uint64_t v);
  /// Length-prefixed (varint) byte string.
  void bytes(ByteView b);
  /// Length-prefixed (varint) UTF-8 string.
  void str(std::string_view s);
  /// Raw bytes, no length prefix (fixed-size fields).
  void raw(ByteView b);

  const Bytes& data() const { return buf_; }
  Bytes take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

class Reader {
 public:
  explicit Reader(ByteView b) : data_(b) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::uint64_t varint();
  Bytes bytes();
  std::string str();
  /// Read exactly n raw bytes.
  Bytes raw(std::size_t n);
  template <std::size_t N>
  std::array<std::uint8_t, N> raw_array() {
    Bytes b = raw(N);
    return to_array<N>(b);
  }

  bool ok() const { return ok_; }
  /// True when every byte was consumed and no read failed.
  bool done() const { return ok_ && pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  const std::uint8_t* take(std::size_t n);

  ByteView data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace sos::util
