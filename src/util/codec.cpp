#include "util/codec.hpp"

#include <cstring>

namespace sos::util {

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::u32(std::uint32_t v) {
  std::uint8_t tmp[4];
  store32_be(tmp, v);
  buf_.insert(buf_.end(), tmp, tmp + 4);
}

void Writer::u64(std::uint64_t v) {
  std::uint8_t tmp[8];
  store64_be(tmp, v);
  buf_.insert(buf_.end(), tmp, tmp + 8);
}

void Writer::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Writer::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::bytes(ByteView b) {
  varint(b.size());
  raw(b);
}

void Writer::str(std::string_view s) {
  varint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Writer::raw(ByteView b) {
  buf_.insert(buf_.end(), b.begin(), b.end());
}

const std::uint8_t* Reader::take(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return nullptr;
  }
  const std::uint8_t* p = data_.data() + pos_;
  pos_ += n;
  return p;
}

std::uint8_t Reader::u8() {
  const std::uint8_t* p = take(1);
  return p ? *p : 0;
}

std::uint16_t Reader::u16() {
  const std::uint8_t* p = take(2);
  if (!p) return 0;
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t Reader::u32() {
  const std::uint8_t* p = take(4);
  return p ? load32_be(p) : 0;
}

std::uint64_t Reader::u64() {
  const std::uint8_t* p = take(8);
  return p ? load64_be(p) : 0;
}

double Reader::f64() {
  std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return ok_ ? v : 0.0;
}

std::uint64_t Reader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    const std::uint8_t* p = take(1);
    if (!p) return 0;
    if (shift >= 64) {  // overlong encoding
      ok_ = false;
      return 0;
    }
    v |= static_cast<std::uint64_t>(*p & 0x7F) << shift;
    if ((*p & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

Bytes Reader::bytes() {
  std::uint64_t n = varint();
  if (!ok_ || n > remaining()) {
    ok_ = false;
    return {};
  }
  return raw(static_cast<std::size_t>(n));
}

std::string Reader::str() {
  Bytes b = bytes();
  return std::string(b.begin(), b.end());
}

Bytes Reader::raw(std::size_t n) {
  const std::uint8_t* p = take(n);
  if (!p) return {};
  return Bytes(p, p + n);
}

}  // namespace sos::util
