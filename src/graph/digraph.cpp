#include "graph/digraph.hpp"

namespace sos::graph {

Digraph::Digraph(std::size_t n) : out_(n), in_(n) {}

bool Digraph::add_edge(NodeId from, NodeId to) {
  if (from == to || from >= out_.size() || to >= out_.size()) return false;
  if (!out_[from].insert(to).second) return false;
  in_[to].insert(from);
  ++edge_count_;
  return true;
}

bool Digraph::has_edge(NodeId from, NodeId to) const {
  if (from >= out_.size() || to >= out_.size()) return false;
  return out_[from].count(to) > 0;
}

void Digraph::remove_edge(NodeId from, NodeId to) {
  if (from >= out_.size() || to >= out_.size()) return;
  if (out_[from].erase(to) > 0) {
    in_[to].erase(from);
    --edge_count_;
  }
}

double Digraph::density() const {
  std::size_t n = node_count();
  if (n < 2) return 0.0;
  return static_cast<double>(edge_count_) / static_cast<double>(n * (n - 1));
}

std::vector<std::pair<NodeId, NodeId>> Digraph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(edge_count_);
  for (NodeId v = 0; v < out_.size(); ++v)
    for (NodeId w : out_[v]) out.emplace_back(v, w);
  return out;
}

Digraph Digraph::undirected() const {
  Digraph g(node_count());
  for (NodeId v = 0; v < out_.size(); ++v)
    for (NodeId w : out_[v]) {
      g.add_edge(v, w);
      g.add_edge(w, v);
    }
  return g;
}

bool Digraph::is_symmetric() const {
  for (NodeId v = 0; v < out_.size(); ++v)
    for (NodeId w : out_[v])
      if (!has_edge(w, v)) return false;
  return true;
}

}  // namespace sos::graph
