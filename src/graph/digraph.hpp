// Directed social-relationship graph. An edge i -> j means "user i follows
// user j" (paper §VI-A); the undirected view is used for the compactness
// metrics (density, path lengths, transitivity) exactly as the paper does.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

namespace sos::graph {

using NodeId = std::uint32_t;

class Digraph {
 public:
  explicit Digraph(std::size_t n = 0);

  std::size_t node_count() const { return out_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  /// Add the arc from -> to. Self-loops are ignored. Returns true if new.
  bool add_edge(NodeId from, NodeId to);
  bool has_edge(NodeId from, NodeId to) const;
  void remove_edge(NodeId from, NodeId to);

  const std::set<NodeId>& out_neighbors(NodeId v) const { return out_[v]; }
  const std::set<NodeId>& in_neighbors(NodeId v) const { return in_[v]; }
  std::size_t out_degree(NodeId v) const { return out_[v].size(); }
  std::size_t in_degree(NodeId v) const { return in_[v].size(); }

  /// |E| / (n(n-1)): fraction of possible arcs present.
  double density() const;

  /// All arcs as (from, to) pairs.
  std::vector<std::pair<NodeId, NodeId>> edges() const;

  /// Symmetric closure: ei,j implies ej,i (paper's "translate Figure 4a to
  /// an undirected graph").
  Digraph undirected() const;

  /// True if every arc has its reverse (i.e. the graph is symmetric).
  bool is_symmetric() const;

 private:
  std::vector<std::set<NodeId>> out_;
  std::vector<std::set<NodeId>> in_;
  std::size_t edge_count_ = 0;
};

}  // namespace sos::graph
