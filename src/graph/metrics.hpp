// Graph metrics used in the paper's §VI-A social-relationship analysis:
// shortest paths, average path length, diameter, radius/eccentricity/center,
// transitivity (3 * triangles / connected triads).
#pragma once

#include <limits>
#include <vector>

#include "graph/digraph.hpp"

namespace sos::graph {

constexpr std::size_t kUnreachable = std::numeric_limits<std::size_t>::max();

/// BFS hop distances from `src` following out-edges. kUnreachable if none.
std::vector<std::size_t> shortest_paths_from(const Digraph& g, NodeId src);

/// All-pairs hop distance matrix (n x n, row = source).
std::vector<std::vector<std::size_t>> all_pairs_shortest_paths(const Digraph& g);

/// Average over unordered reachable pairs i<j of l(i,j) — the paper's
/// sum_{i>=j} l(i,j) / (n(n-1)/2). Infinite pairs are skipped.
double average_shortest_path_length(const Digraph& g);

/// max over reachable pairs of l(i,j); 0 for empty graphs.
std::size_t diameter(const Digraph& g);

/// Eccentricity of v: max distance from v to any reachable node.
std::size_t eccentricity(const Digraph& g, NodeId v);

/// min over nodes of eccentricity.
std::size_t radius(const Digraph& g);

/// Nodes whose eccentricity equals the radius.
std::vector<NodeId> center(const Digraph& g);

/// Number of triangles (on the undirected closure of g).
std::size_t triangle_count(const Digraph& g);

/// Number of connected triads: paths of length two, sum_v C(deg(v), 2),
/// on the undirected closure.
std::size_t connected_triad_count(const Digraph& g);

/// Network transitivity T = 3 * triangles / triads (paper §VI-A).
double transitivity(const Digraph& g);

/// True if the undirected closure is connected (and non-empty).
bool is_connected(const Digraph& g);

}  // namespace sos::graph
