// Graph generators: standard random models for the density ablations plus
// the reconstructed AlleyOop deployment graph of Fig 4a.
#pragma once

#include "graph/digraph.hpp"
#include "util/rng.hpp"

namespace sos::graph {

/// G(n, p): each ordered pair gets an arc independently with probability p.
Digraph erdos_renyi(std::size_t n, double p, util::Rng& rng);

/// Symmetric Watts-Strogatz small world: ring lattice with k neighbors per
/// side, each edge rewired with probability beta. Returned as a symmetric
/// digraph (both arcs present).
Digraph watts_strogatz(std::size_t n, std::size_t k, double beta, util::Rng& rng);

/// Fully connected symmetric graph.
Digraph complete(std::size_t n);

Digraph star(std::size_t n);    // node 0 center, symmetric
Digraph path(std::size_t n);    // 0-1-2-...-n-1, symmetric
Digraph cycle(std::size_t n);   // symmetric ring

/// The reconstructed Fig 4a social-relationship digraph of the Gainesville
/// deployment (10 nodes, 46 follow arcs over 29 undirected pairs).
///
/// Constraints taken from the paper: undirected density 0.64, diameter 2,
/// radius 1 with centers {6,7} (1-indexed), average shortest path ~1.3,
/// transitivity ~0.80, 46 total subscriptions, and the example that user 1
/// follows user 3 but not vice versa. Nodes here are 0-indexed: paper node
/// k = our node k-1 (centers are ids 5 and 6).
Digraph baker2017_social_graph();

/// Directed follow graph sampled to look like a small campus community:
/// symmetric core (mutual friends) plus one-way follows.
Digraph social_community(std::size_t n, double mutual_p, double oneway_p, util::Rng& rng);

}  // namespace sos::graph
