#include "graph/generators.hpp"

namespace sos::graph {

Digraph erdos_renyi(std::size_t n, double p, util::Rng& rng) {
  Digraph g(n);
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = 0; j < n; ++j)
      if (i != j && rng.chance(p)) g.add_edge(i, j);
  return g;
}

Digraph watts_strogatz(std::size_t n, std::size_t k, double beta, util::Rng& rng) {
  Digraph g(n);
  if (n < 3) return g;
  // Ring lattice: connect each node to k nearest neighbors on each side.
  for (NodeId i = 0; i < n; ++i) {
    for (std::size_t d = 1; d <= k; ++d) {
      NodeId j = static_cast<NodeId>((i + d) % n);
      // Rewire with probability beta.
      if (rng.chance(beta)) {
        NodeId target;
        int guard = 0;
        do {
          target = static_cast<NodeId>(rng.below(n));
        } while ((target == i || g.has_edge(i, target)) && ++guard < 64);
        if (target != i && !g.has_edge(i, target)) j = target;
      }
      g.add_edge(i, j);
      g.add_edge(j, i);
    }
  }
  return g;
}

Digraph complete(std::size_t n) {
  Digraph g(n);
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = 0; j < n; ++j)
      if (i != j) g.add_edge(i, j);
  return g;
}

Digraph star(std::size_t n) {
  Digraph g(n);
  for (NodeId i = 1; i < n; ++i) {
    g.add_edge(0, i);
    g.add_edge(i, 0);
  }
  return g;
}

Digraph path(std::size_t n) {
  Digraph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) {
    g.add_edge(i, i + 1);
    g.add_edge(i + 1, i);
  }
  return g;
}

Digraph cycle(std::size_t n) {
  Digraph g = path(n);
  if (n > 2) {
    g.add_edge(static_cast<NodeId>(n - 1), 0);
    g.add_edge(0, static_cast<NodeId>(n - 1));
  }
  return g;
}

Digraph baker2017_social_graph() {
  // 0-indexed; paper node k = our node k-1. Centers: 5 and 6 (paper 6, 7).
  //
  // Structure: both centers mutually follow everyone (17 reciprocated
  // undirected pairs, including the 5-6 pair), and the remaining 8 users
  // form two K4 cliques {0,1,2,3} and {4,7,8,9} whose 12 pairs are all
  // one-way follows. Totals: 29 undirected pairs (density 29/45 = 0.644),
  // 46 arcs, diameter 2, radius 1 at the centers under both the directed
  // and undirected readings, transitivity 0.789.
  Digraph g(10);
  const NodeId centers[2] = {5, 6};
  for (NodeId c : centers) {
    for (NodeId v = 0; v < 10; ++v) {
      if (v == c) continue;
      g.add_edge(c, v);
      g.add_edge(v, c);
    }
  }
  // One-way follows inside clique {0,1,2,3}. 0 -> 2 is the paper's
  // "user 1 follows user 3 but not vice versa" example.
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(3, 0);
  g.add_edge(2, 1);
  g.add_edge(1, 3);
  g.add_edge(3, 2);
  // One-way follows inside clique {4,7,8,9}.
  g.add_edge(4, 7);
  g.add_edge(8, 4);
  g.add_edge(9, 4);
  g.add_edge(7, 8);
  g.add_edge(9, 7);
  g.add_edge(8, 9);
  return g;
}

Digraph social_community(std::size_t n, double mutual_p, double oneway_p, util::Rng& rng) {
  Digraph g(n);
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.chance(mutual_p)) {
        g.add_edge(i, j);
        g.add_edge(j, i);
      } else if (rng.chance(oneway_p)) {
        if (rng.chance(0.5))
          g.add_edge(i, j);
        else
          g.add_edge(j, i);
      }
    }
  return g;
}

}  // namespace sos::graph
