#include "graph/metrics.hpp"

#include <deque>

namespace sos::graph {

std::vector<std::size_t> shortest_paths_from(const Digraph& g, NodeId src) {
  std::vector<std::size_t> dist(g.node_count(), kUnreachable);
  if (src >= g.node_count()) return dist;
  std::deque<NodeId> queue{src};
  dist[src] = 0;
  while (!queue.empty()) {
    NodeId v = queue.front();
    queue.pop_front();
    for (NodeId w : g.out_neighbors(v)) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[v] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

std::vector<std::vector<std::size_t>> all_pairs_shortest_paths(const Digraph& g) {
  std::vector<std::vector<std::size_t>> out;
  out.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) out.push_back(shortest_paths_from(g, v));
  return out;
}

double average_shortest_path_length(const Digraph& g) {
  auto d = all_pairs_shortest_paths(g);
  double sum = 0;
  std::size_t pairs = 0;
  for (NodeId i = 0; i < g.node_count(); ++i)
    for (NodeId j = i + 1; j < g.node_count(); ++j)
      if (d[i][j] != kUnreachable) {
        sum += static_cast<double>(d[i][j]);
        ++pairs;
      }
  return pairs == 0 ? 0.0 : sum / static_cast<double>(pairs);
}

std::size_t diameter(const Digraph& g) {
  auto d = all_pairs_shortest_paths(g);
  std::size_t best = 0;
  for (NodeId i = 0; i < g.node_count(); ++i)
    for (NodeId j = 0; j < g.node_count(); ++j)
      if (i != j && d[i][j] != kUnreachable && d[i][j] > best) best = d[i][j];
  return best;
}

std::size_t eccentricity(const Digraph& g, NodeId v) {
  auto d = shortest_paths_from(g, v);
  std::size_t best = 0;
  for (NodeId j = 0; j < g.node_count(); ++j)
    if (j != v && d[j] != kUnreachable && d[j] > best) best = d[j];
  return best;
}

std::size_t radius(const Digraph& g) {
  std::size_t best = kUnreachable;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    std::size_t e = eccentricity(g, v);
    if (e < best) best = e;
  }
  return best == kUnreachable ? 0 : best;
}

std::vector<NodeId> center(const Digraph& g) {
  std::size_t r = radius(g);
  std::vector<NodeId> out;
  for (NodeId v = 0; v < g.node_count(); ++v)
    if (eccentricity(g, v) == r) out.push_back(v);
  return out;
}

std::size_t triangle_count(const Digraph& g) {
  Digraph u = g.undirected();
  std::size_t count = 0;
  for (NodeId i = 0; i < u.node_count(); ++i)
    for (NodeId j : u.out_neighbors(i)) {
      if (j <= i) continue;
      for (NodeId k : u.out_neighbors(j)) {
        if (k <= j) continue;
        if (u.has_edge(i, k)) ++count;
      }
    }
  return count;
}

std::size_t connected_triad_count(const Digraph& g) {
  Digraph u = g.undirected();
  std::size_t count = 0;
  for (NodeId v = 0; v < u.node_count(); ++v) {
    std::size_t d = u.out_degree(v);
    count += d * (d - 1) / 2;
  }
  return count;
}

double transitivity(const Digraph& g) {
  std::size_t triads = connected_triad_count(g);
  if (triads == 0) return 0.0;
  return 3.0 * static_cast<double>(triangle_count(g)) / static_cast<double>(triads);
}

bool is_connected(const Digraph& g) {
  if (g.node_count() == 0) return false;
  auto d = shortest_paths_from(g.undirected(), 0);
  for (std::size_t x : d)
    if (x == kUnreachable) return false;
  return true;
}

}  // namespace sos::graph
