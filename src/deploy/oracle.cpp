#include "deploy/oracle.hpp"

#include <algorithm>

namespace sos::deploy {

std::size_t MetricsOracle::subscription_count() const {
  std::size_t n = 0;
  for (const auto& [follower, pubs] : follows_) n += pubs.size();
  return n;
}

double MetricsOracle::one_hop_fraction() const {
  if (deliveries_.empty()) return 0.0;
  std::size_t one = 0;
  for (const auto& d : deliveries_)
    if (d.hops <= 1) ++one;
  return static_cast<double>(one) / static_cast<double>(deliveries_.size());
}

std::map<int, std::size_t> MetricsOracle::hop_histogram() const {
  std::map<int, std::size_t> out;
  for (const auto& d : deliveries_) ++out[d.hops];
  return out;
}

double MetricsOracle::overall_delivery_ratio() const {
  // Deliverable = for each post, the number of users following its author.
  std::map<pki::UserId, std::size_t> follower_count;
  for (const auto& [follower, pubs] : follows_)
    for (const auto& p : pubs) ++follower_count[p];
  std::size_t deliverable = 0;
  for (const auto& p : posts_) {
    auto it = follower_count.find(p.author);
    if (it != follower_count.end()) deliverable += it->second;
  }
  if (deliverable == 0) return 0.0;
  return static_cast<double>(deliveries_.size()) / static_cast<double>(deliverable);
}

std::size_t MetricsOracle::delivered_of_posted() const {
  std::set<bundle::BundleId> posted;
  for (const auto& p : posts_) posted.insert(p.id);
  std::size_t n = 0;
  for (const auto& d : deliveries_)
    if (posted.count(d.id) > 0) ++n;
  return n;
}

double MetricsOracle::posted_delivery_ratio() const {
  std::map<pki::UserId, std::size_t> follower_count;
  for (const auto& [follower, pubs] : follows_)
    for (const auto& p : pubs) ++follower_count[p];
  std::size_t deliverable = 0;
  for (const auto& p : posts_) {
    auto it = follower_count.find(p.author);
    if (it != follower_count.end()) deliverable += it->second;
  }
  if (deliverable == 0) return 0.0;
  return static_cast<double>(delivered_of_posted()) / static_cast<double>(deliverable);
}

util::Cdf MetricsOracle::delay_cdf(bool one_hop_only) const {
  std::map<bundle::BundleId, util::SimTime> created;
  for (const auto& p : posts_) created[p.id] = p.created;
  util::Cdf cdf;
  for (const auto& d : deliveries_) {
    if (one_hop_only && d.hops > 1) continue;
    auto it = created.find(d.id);
    if (it == created.end()) continue;
    cdf.add(d.at - it->second);
  }
  return cdf;
}

util::Cdf MetricsOracle::subscription_ratio_cdf(bool one_hop_only) const {
  // posts per author
  std::map<pki::UserId, std::size_t> authored;
  for (const auto& p : posts_) ++authored[p.author];
  // deliveries per (subscriber, author)
  std::map<std::pair<pki::UserId, pki::UserId>, std::size_t> delivered;
  for (const auto& d : deliveries_) {
    if (one_hop_only && d.hops > 1) continue;
    ++delivered[{d.subscriber, d.id.origin}];
  }
  util::Cdf cdf;
  for (const auto& [follower, pubs] : follows_) {
    for (const auto& pub : pubs) {
      auto it = authored.find(pub);
      if (it == authored.end() || it->second == 0) continue;  // nothing to deliver
      auto dt = delivered.find({follower, pub});
      std::size_t got = dt == delivered.end() ? 0 : dt->second;
      cdf.add(static_cast<double>(got) / static_cast<double>(it->second));
    }
  }
  return cdf;
}

util::Histogram2d MetricsOracle::creation_map(double w, double h, std::size_t nx,
                                              std::size_t ny) const {
  util::Histogram2d map(0, 0, w, h, nx, ny);
  for (const auto& p : posts_) map.add(p.location.x, p.location.y);
  return map;
}

util::Histogram2d MetricsOracle::dissemination_map(double w, double h, std::size_t nx,
                                                   std::size_t ny) const {
  util::Histogram2d map(0, 0, w, h, nx, ny);
  for (const auto& c : carries_) map.add(c.location.x, c.location.y);
  return map;
}

}  // namespace sos::deploy
