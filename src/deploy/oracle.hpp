// MetricsOracle: the omniscient observer of a deployment run. Records every
// post creation, relay carry, and subscriber delivery with simulated-world
// locations, then answers exactly the questions the paper's Fig 4b/4c/4d
// ask: where did activity happen, what were the delivery delays (1-hop vs
// all), and how did delivery ratio distribute across subscriptions.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "bundle/bundle.hpp"
#include "graph/digraph.hpp"
#include "sim/mobility.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace sos::deploy {

struct PostRecord {
  bundle::BundleId id;
  pki::UserId author;
  util::SimTime created = 0;
  sim::Vec2 location;  // where the author stood when posting (Fig 4b blue)
};

struct DeliveryRecord {
  bundle::BundleId id;
  pki::UserId subscriber;
  util::SimTime at = 0;
  std::uint8_t hops = 0;
  sim::Vec2 location;
};

struct CarryRecord {
  bundle::BundleId id;
  pki::UserId carrier;
  util::SimTime at = 0;
  sim::Vec2 location;  // where the message was passed (Fig 4b red)
};

class MetricsOracle {
 public:
  void record_post(const PostRecord& r) { posts_.push_back(r); }
  void record_delivery(const DeliveryRecord& r) { deliveries_.push_back(r); }
  void record_carry(const CarryRecord& r) { carries_.push_back(r); }

  /// follower -> set of publishers (directed follow edges) keyed by user id.
  void set_subscriptions(const std::map<pki::UserId, std::set<pki::UserId>>& follows) {
    follows_ = follows;
  }

  // --- §VI-B scalars -----------------------------------------------------------
  std::size_t post_count() const { return posts_.size(); }
  std::size_t delivery_count() const { return deliveries_.size(); }
  std::size_t carry_count() const { return carries_.size(); }
  std::size_t subscription_count() const;
  /// Fraction of deliveries that took exactly one D2D hop (paper: 0.826).
  double one_hop_fraction() const;
  std::map<int, std::size_t> hop_histogram() const;
  /// delivered / (deliverable = sum over posts of author's follower count).
  double overall_delivery_ratio() const;
  /// Deliveries whose bundle id matches a recorded post. Adversarial junk
  /// (flooder/forger publishes) is never recorded as a post, but unsigned
  /// deployments still deliver it to the adversary's followers — this is
  /// the honest-workload delivery count the disaster benches report.
  std::size_t delivered_of_posted() const;
  /// delivered_of_posted / deliverable (the fault-cell delivery column).
  double posted_delivery_ratio() const;

  // --- Fig 4c: delay CDFs ----------------------------------------------------
  /// Delivery delays in seconds; `one_hop_only` restricts to 1-hop
  /// deliveries (the paper plots both series).
  util::Cdf delay_cdf(bool one_hop_only) const;

  // --- Fig 4d: per-subscription delivery-ratio CDF -----------------------------
  /// One sample per (follower, publisher-with-posts) subscription pair.
  util::Cdf subscription_ratio_cdf(bool one_hop_only) const;

  // --- Fig 4b: activity map -----------------------------------------------------
  /// 2D histograms of post-creation (blue) and dissemination (red) points.
  util::Histogram2d creation_map(double w, double h, std::size_t nx, std::size_t ny) const;
  util::Histogram2d dissemination_map(double w, double h, std::size_t nx, std::size_t ny) const;

  const std::vector<PostRecord>& posts() const { return posts_; }
  const std::vector<DeliveryRecord>& deliveries() const { return deliveries_; }
  const std::vector<CarryRecord>& carries() const { return carries_; }

 private:
  std::vector<PostRecord> posts_;
  std::vector<DeliveryRecord> deliveries_;
  std::vector<CarryRecord> carries_;
  std::map<pki::UserId, std::set<pki::UserId>> follows_;
};

}  // namespace sos::deploy
