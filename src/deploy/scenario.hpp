// Deployment scenario runner: assembles the whole stack — PKI bootstrap,
// AlleyOop apps over SOS nodes, the MPC-like radio, daily-routine mobility
// over the study area, a Poisson posting workload — and runs it under the
// event scheduler. The default configuration reconstructs the Gainesville
// study of §VI (10 users, ~11 km x 8 km, 7 days, 259 posts, the Fig 4a
// social graph, IB routing); every knob is exposed for the ablations.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "deploy/oracle.hpp"
#include "graph/digraph.hpp"
#include "mw/stats.hpp"
#include "sim/faults.hpp"
#include "sim/radio.hpp"
#include "sim/trace.hpp"

namespace sos::crypto {
class VerifyMemo;
}

namespace sos::deploy {

struct ScenarioConfig {
  std::size_t nodes = 10;
  double area_w_m = 11000.0;           // ~11 km (paper)
  double area_h_m = 8000.0;            // ~8 km
  double days = 7.0;                   // TestFlight study length
  std::string scheme = "interest";     // routing scheme under test
  double total_posts_target = 259.0;   // paper: 259 unique messages
  std::uint64_t seed = 42;

  sim::RadioParams radio{};            // 50 m range, p2p-WiFi-class link
  sim::DailyRoutineParams mobility{};  // homes + campus hotspots + sleep
  double encounter_tick_s = 30.0;

  /// First-class community sweep dimensions (copied into `mobility` by the
  /// world recorder, like `area_*`): >= 2 tiles the area into that many
  /// disjoint mobility communities — separate hotspot pools and home
  /// clusters — and `bridge_node_frac` of the nodes commute between them
  /// across days. 1 is the classic single-hotspot-pool city. Community
  /// traces decompose into parallel episodes (sim::EpisodeGraph), which is
  /// what makes --episode-jobs effective on them.
  std::size_t communities = 1;
  double bridge_node_frac = 0.0;

  /// Session-resumption secret lifetime handed to each node's SosConfig
  /// (0 = every contact pays the full cert-exchange + X25519 handshake).
  double resume_lifetime_s = 86400.0;

  /// Batch-verification window handed to each node's SosConfig: > 0 queues
  /// received bundles this many sim-seconds and verifies them in one batch
  /// signature pass (throughput up, dissemination latency up by up to the
  /// window); 0 verifies synchronously.
  double verify_batch_window_s = 0.0;

  /// Adaptive flushing for that window: a peer's queued entries flush when
  /// its session drops (and on store pressure) instead of dying with the
  /// transfer — the batched passes without the dense-cell delivery loss.
  bool verify_batch_adaptive = false;

  /// Disaster fault-injection plan (sim/faults.hpp): degraded links, node
  /// churn, partition-and-heal timelines, adversarial roles. Default (no
  /// faults) is bit-identical to the pre-fault engine. Trace-reshaping
  /// faults require a recorded world; run_scenario records one on the fly
  /// when needed. Use FaultPlanConfig::validate before sweeping grids.
  sim::FaultPlanConfig faults;

  /// Content-verification ablation (the "unsigned" baseline of the disaster
  /// benches): nodes accept received bundles without certificate/signature
  /// checks. Transport encryption and handshakes are untouched.
  bool verify_signatures = true;

  /// Per-node bundle-store capacity (flooder cells shrink this to make
  /// store-pressure effects visible).
  std::size_t store_capacity = 10000;

  /// Social graph; node i follows node j iff edge (i, j). Defaults to the
  /// reconstructed Fig 4a graph when nodes == 10, otherwise a sampled
  /// campus community of matching density.
  std::optional<graph::Digraph> social;

  /// Posting concentrates in the late afternoon and evening (the usual
  /// social-app activity peak, after the day's gatherings wind down).
  double post_window_start_h = 18.5;
  double post_window_end_h = 23.5;
};

struct ScenarioResult {
  MetricsOracle oracle;
  mw::NodeStats totals;                 // summed over all nodes
  std::uint64_t contacts = 0;           // radio-range encounters
  std::uint64_t wire_frames = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t connections = 0;
  std::uint64_t connections_failed = 0; // declined/out-of-range/broken setups
  std::uint64_t frames_lost = 0;        // mid-transfer disconnects
  std::uint64_t frames_dropped_fault = 0;  // injected loss/grayhole drops
  graph::Digraph social;                // the graph actually used
  double simulated_days = 0;
};

/// The deterministic "world" of a scenario — the mobility trajectories and
/// the contact trace the encounter detector produces over them. Everything
/// in it depends only on the world-shaping config fields (nodes, area, days,
/// mobility, communities, radio, encounter tick) and the seed, never on the routing
/// scheme or middleware knobs, so scheme variants of one sweep cell can
/// record it once and replay it instead of re-running detection.
struct ScenarioWorld {
  sim::TrajectoryMobility mobility;
  sim::ContactTrace trace;
};

/// Record a config's world: generate mobility and run one detector pass
/// over the full horizon, capturing the contact trace.
std::shared_ptr<const ScenarioWorld> record_world(const ScenarioConfig& config);

/// How a recorded world is replayed.
struct ReplayOptions {
  /// Episode-partitioned engine: cut the trace into causally-independent
  /// episodes (sim::EpisodeGraph) and run each on its own scheduler shard,
  /// carrying per-node middleware state across shard boundaries. Metrics
  /// are bitwise identical to the single-scheduler replay at any `jobs`.
  /// Requires a recorded world; ignored for live runs.
  bool partition = false;
  /// Episode-level worker threads (with partition). 1 = serial execution
  /// of the episode DAG; results never depend on this.
  std::size_t jobs = 1;
  /// Optional worker pool shared with the cell-level sweep (SweepRunner):
  /// episode workers beyond the first borrow tokens from it, so cell- and
  /// episode-level parallelism never oversubscribe the machine together.
  class WorkerBudget* budget = nullptr;
  /// Share one signature-verdict memo across every node of the replay:
  /// each distinct (key, message, signature) triple pays curve math once
  /// per run instead of once per carrying node. Pure-function memoization —
  /// per-node counters and all metrics are unchanged.
  bool share_verify_memo = true;
  /// Optional externally owned memo (sweep-wide scope): when set (and
  /// share_verify_memo is on), the replay consults/extends this memo
  /// instead of a run-local one. SweepRunner hands every variant of a cell
  /// the same memo — one recorded world produces identical bundles and
  /// certificates per variant, so cross-variant re-verifies collapse too.
  /// Thread-safe; metrics are bitwise identical to the run-local scope.
  crypto::VerifyMemo* memo = nullptr;
  /// > 0: replay on the sub-episode (contact-strand) engine instead — the
  /// trace is cut by sim::ContactDag (per-node hull fusion instead of
  /// episode global-span fusion) and each member detaches at its own last
  /// contact in a task, so dense single-hotspot traces that EpisodeGraph
  /// must serialize decompose into concurrent strand tasks. The value is
  /// the worker count for that engine (`partition`/`jobs` are then unused);
  /// metrics are bitwise identical to both other engines at any value.
  /// 0 = episode engine when `partition` is set, single scheduler otherwise.
  std::size_t subepisode_jobs = 0;
};

/// Build and run the scenario to completion. With `world`, the recorded
/// contact trace is replayed through a TracePlayer (no per-run encounter
/// detection) and the recorded trajectories serve position lookups; the
/// world must have been recorded from a config with identical
/// world-shaping fields and seed. `replay` selects the replay engine.
ScenarioResult run_scenario(const ScenarioConfig& config,
                            const ScenarioWorld* world = nullptr,
                            const ReplayOptions& replay = {});

/// The §VI configuration (defaults above) with the given scheme and seed.
ScenarioConfig gainesville_config(const std::string& scheme = "interest",
                                  std::uint64_t seed = 42);

/// The social graph run_scenario will use for `config` — the explicit
/// override, the reconstructed Fig 4a graph (10 nodes), or the sampled
/// campus community drawn from the config's own RNG stream. Exposed so
/// graph-characterization benches describe exactly what a sweep simulates.
graph::Digraph scenario_social_graph(const ScenarioConfig& config);

}  // namespace sos::deploy
