#include "deploy/replay.hpp"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "alleyoop/app.hpp"
#include "crypto/verify_memo.hpp"
#include "deploy/scenario_detail.hpp"
#include "sim/episode.hpp"
#include "sim/multipeer.hpp"
#include "sim/scheduler.hpp"
#include "sim/subepisode.hpp"
#include "util/codec.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"

namespace sos::deploy {

namespace {

/// Everything one episode / strand task produces; merged into the
/// ScenarioResult in task-index order so the outcome never depends on
/// completion order.
struct EpisodeOut {
  MetricsOracle oracle;
  std::uint64_t wire_frames = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t connections = 0;
  std::uint64_t connections_failed = 0;
  std::uint64_t frames_lost = 0;
  std::uint64_t frames_dropped_fault = 0;
};

/// Shared engine state. Workers touch disjoint slices: a task only
/// reads/writes its member nodes' state (exclusive by the DAG's per-node
/// chaining) and its own EpisodeOut slot. Exactly one of `episodes` (the
/// episode engine's list — EpisodeGraph's or a hand-fused mono partition)
/// and `dag` (sub-episode strand engine) is set.
struct EngineState {
  const ScenarioConfig& config;
  const ScenarioWorld& world;
  /// The trace the tasks index into — the recorded trace, its fault-reshaped
  /// transform, or one segment of either under segmented replay.
  const sim::ContactTrace& trace;
  const sim::FaultPlan* plan;  // compiled fault plan (may be null)
  const std::vector<sim::Episode>* episodes;
  const sim::ContactDag* dag;
  std::vector<std::unique_ptr<mw::SosNode>>& nodes;
  std::vector<std::unique_ptr<alleyoop::App>>& apps;
  /// Per-node merged workload timelines (posts + floods + reboots).
  const std::vector<std::vector<detail::TimelineEvent>>& timelines;
  std::vector<std::size_t>& timeline_cursor;   // next unscheduled event per node
  std::vector<util::SimTime>& resume_at;       // per-node timeline progress
  std::vector<EpisodeOut>& outs;
  double horizon;
};

/// The Kahn-worker queue: every worker (the calling thread plus any helpers
/// borrowed from the WorkerBudget) coordinates through this state, all of
/// it guarded by `mu` — the annotations make "touched the ready set without
/// the lock" a clang -Wthread-safety compile error, not a TSan coin-flip.
/// `dependents` is deliberately outside the guarded set: it is written once
/// before any worker starts and read-only afterwards.
struct KahnQueue {
  util::Mutex mu;
  std::condition_variable_any cv;
  std::set<std::size_t> ready SOS_GUARDED_BY(mu);           // runnable tasks
  std::vector<std::size_t> pending SOS_GUARDED_BY(mu);      // unmet deps per task
  std::size_t running SOS_GUARDED_BY(mu) = 0;               // tasks in flight
  std::size_t done SOS_GUARDED_BY(mu) = 0;                  // tasks completed
  std::vector<std::thread> helpers SOS_GUARDED_BY(mu);      // spawned workers
  std::size_t borrowed SOS_GUARDED_BY(mu) = 0;              // budget tokens held
  std::vector<std::vector<std::size_t>> dependents;         // reverse dep edges
};

/// Execute a task DAG with the annotated KahnQueue worker machinery shared
/// by the episode and sub-episode engines. `deps_of(i)` returns task i's
/// dependency list (read-only, stable for the whole call); `body(i)` runs
/// task i and must touch only state that task owns. One code path for
/// serial and parallel execution: the calling thread is always a worker;
/// helpers join it when jobs > 1 or the shared budget grants tokens. The
/// ordered ready set makes the serial order identical to a dedicated serial
/// loop, and an uncontended MutexLock per task is noise next to a task's
/// millisecond-scale replay. Throws if the DAG cannot complete (a cycle).
void execute_task_dag(std::size_t count,
                      const std::function<const std::vector<std::size_t>&(std::size_t)>& deps_of,
                      const std::function<void(std::size_t)>& body, std::size_t jobs,
                      WorkerBudget* budget, const char* what) {
  KahnQueue q;
  q.dependents.resize(count);
  {
    util::MutexLock lock(q.mu);
    q.pending.resize(count, 0);
    for (std::size_t i = 0; i < count; ++i) {
      q.pending[i] = deps_of(i).size();
      for (std::size_t d : deps_of(i)) q.dependents[d].push_back(i);
      if (q.pending[i] == 0) q.ready.insert(i);
    }
  }

  std::size_t workers = jobs;
  if (workers == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    workers = hw > 0 ? hw : 1;
  }

  std::function<void()> worker;  // named so a worker can spawn another
  worker = [&] {
    util::MutexLock lock(q.mu);
    for (;;) {
      if (q.done == count) return;
      if (q.ready.empty()) {
        if (q.running == 0) return;  // cycle guard: nothing can make progress
        q.mu.wait(q.cv);
        continue;
      }
      std::size_t i = *q.ready.begin();
      q.ready.erase(q.ready.begin());
      ++q.running;
      lock.unlock();
      body(i);
      lock.lock();
      --q.running;
      ++q.done;
      for (std::size_t d : q.dependents[i]) {
        if (--q.pending[d] == 0) q.ready.insert(d);
      }
      // Opportunistic growth: tokens freed by finished sweep cells can be
      // picked up mid-run (the heavy cell usually starts while its grid
      // siblings still hold theirs).
      if (budget != nullptr && q.ready.size() > 1 && q.helpers.size() + 1 < workers &&
          budget->acquire(1) == 1) {
        ++q.borrowed;
        q.helpers.emplace_back(worker);
      }
      q.cv.notify_all();
    }
  };

  // One worker is this thread; the rest borrow from the shared budget when
  // one is present (the sweep's thread allowance), else spawn up to the
  // requested job count.
  {
    std::size_t want = workers > 0 ? workers - 1 : 0;
    util::MutexLock lock(q.mu);
    if (budget != nullptr) {
      q.borrowed = budget->acquire(want);
      want = q.borrowed;
    }
    q.helpers.reserve(want);
    for (std::size_t i = 0; i < want; ++i) q.helpers.emplace_back(worker);
  }
  worker();
  std::size_t completed = 0;
  std::size_t borrowed = 0;
  std::vector<std::thread> helpers;
  {
    // Wake helpers parked on an empty ready set so they observe done, and
    // take ownership of the helper list: no helper can spawn another once
    // done == count (spawning requires finishing a task), so the
    // swapped-out vector is complete.
    util::MutexLock lock(q.mu);
    q.cv.notify_all();
    helpers.swap(q.helpers);
    completed = q.done;
    borrowed = q.borrowed;
  }
  for (auto& t : helpers) t.join();
  if (budget != nullptr && borrowed > 0) budget->release(borrowed);
  if (completed != count) {
    throw std::logic_error(std::string(what) + " failed to complete (dependency cycle?)");
  }
}

void run_episode(const EngineState& st, std::size_t ei) {
  const sim::Episode& e = (*st.episodes)[ei];
  const ScenarioConfig& config = st.config;
  util::SimTime t_start = st.horizon;
  for (std::uint32_t n : e.nodes) t_start = std::min(t_start, st.resume_at[n]);
  const util::SimTime t_end = e.contacts.empty() ? st.horizon : e.last_end;

  sim::Scheduler sched(t_start);
  sim::MpcNetwork net(sched, config.nodes, config.radio);
  // Per-frame fault draws key on (link, exact timestamp, same-timestamp
  // sequence), all of which this shard reproduces exactly — a fresh network
  // per episode costs nothing.
  if (st.plan != nullptr) net.set_fault_plan(st.plan);

  // The episode's contact subset, in trace order — the same relative order
  // (and therefore the same same-timestamp FIFO behavior) the full trace
  // has on the single-scheduler path.
  sim::ContactTrace sub;
  for (std::size_t ci : e.contacts) sub.add(st.trace.contacts()[ci]);
  sim::TracePlayer player(sched, std::move(sub));
  player.on_contact_start = [&net](std::uint32_t a, std::uint32_t b) {
    net.set_in_range(static_cast<sim::PeerId>(a), static_cast<sim::PeerId>(b), true);
  };
  player.on_contact_end = [&net](std::uint32_t a, std::uint32_t b) {
    net.set_in_range(static_cast<sim::PeerId>(a), static_cast<sim::PeerId>(b), false);
  };
  player.start();

  EpisodeOut& out = st.outs[ei];
  const sim::TrajectoryMobility& mobility = st.world.mobility;

  // Attach members in ascending node order — the order the single-scheduler
  // path registers their timers in, so same-timestamp ties break alike.
  for (std::uint32_t n : e.nodes) {
    mw::SosNode& node = *st.nodes[n];
    node.attach(sched, net.endpoint(static_cast<sim::PeerId>(n)));
    std::size_t idx = n;
    node.on_carry = [&out, &node, &sched, &mobility, idx](const bundle::Bundle& b) {
      out.oracle.record_carry(
          {b.id(), node.user_id(), sched.now(), mobility.position(idx, sched.now())});
    };
    node.on_data = [&out, &node, &sched, &mobility, idx](const bundle::Bundle& b,
                                                         const pki::Certificate&) {
      out.oracle.record_delivery({b.id(), node.user_id(), sched.now(), b.hop_count,
                                  mobility.position(idx, sched.now())});
    };
  }

  // This episode's slice of the workload timeline: each member's next
  // events (posts, adversarial junk publishes, reboots) up to the episode
  // end, scheduled strictly in merged-timeline order. An event before this
  // shard's t_start clamps to t_start while keeping its place in the FIFO,
  // which is exactly what the single-scheduler path's relative order
  // reduces to at an episode boundary.
  for (std::uint32_t n : e.nodes) {
    const std::vector<detail::TimelineEvent>& tl = st.timelines[n];
    std::size_t& cursor = st.timeline_cursor[n];
    while (cursor < tl.size() && tl[cursor].t <= t_end) {
      const detail::TimelineEvent& ev = tl[cursor];
      const std::size_t idx = n;
      alleyoop::App& app = *st.apps[n];
      mw::SosNode& node = *st.nodes[n];
      switch (ev.kind) {
        case detail::TimelineEvent::Kind::Post:
          sched.schedule_at(ev.t, [&out, &app, &node, &sched, &mobility, idx, k = ev.k] {
            auto post =
                app.post("post #" + std::to_string(k) + " by user" + std::to_string(idx));
            out.oracle.record_post({{node.user_id(), post.msg_num},
                                    node.user_id(),
                                    sched.now(),
                                    mobility.position(idx, sched.now())});
          });
          break;
        case detail::TimelineEvent::Kind::Flood:
          sched.schedule_at(ev.t, [&node, idx, k = ev.k] {
            node.publish(util::to_bytes("junk #" + std::to_string(k) + " from user" +
                                        std::to_string(idx)));
          });
          break;
        case detail::TimelineEvent::Kind::Reboot:
          sched.schedule_at(ev.t, [&node, churn = ev.churn] {
            node.reboot(churn->lose_store, churn->lose_resume_cache);
          });
          break;
      }
      ++cursor;
    }
  }

  sched.run_until(t_end);

  for (std::uint32_t n : e.nodes) {
    mw::SosNode& node = *st.nodes[n];
    node.on_carry = nullptr;
    node.on_data = nullptr;
    node.detach();
    st.resume_at[n] = t_end;
  }
  out.wire_frames = net.frames_sent();
  out.wire_bytes = net.bytes_sent();
  out.connections = net.connections_established();
  out.connections_failed = net.connections_failed();
  out.frames_lost = net.frames_lost();
  out.frames_dropped_fault = net.frames_dropped_fault();
  // player cancels its leftover events before sched is destroyed.
}

/// One ContactDag task on its own shard — the sub-episode engine's unit.
/// The differences from run_episode are exactly the strand semantics:
/// each member's timeline slice ends at the member's OWN strand end (not
/// the task's global end), and each member detaches at that strand end via
/// a scheduled event, so a task whose span overlaps another task's span
/// never holds a node past its last contact here. Pending timers recorded
/// at the detach re-arm on the node's next shard at their original
/// absolute deadlines — every such deadline is >= the detach time, and the
/// next shard starts no later than this node's resume point, so nothing is
/// ever clamped differently than the single-scheduler path.
void run_strand_task(const EngineState& st, std::size_t ti) {
  const sim::ContactTask& task = st.dag->tasks()[ti];
  const ScenarioConfig& config = st.config;
  const bool tail = task.contacts.empty();
  util::SimTime t_start = st.horizon;
  for (const sim::ContactStrand& s : task.strands)
    t_start = std::min(t_start, st.resume_at[s.node]);
  const util::SimTime t_end = tail ? st.horizon : task.last_end;

  sim::Scheduler sched(t_start);
  sim::MpcNetwork net(sched, config.nodes, config.radio);
  if (st.plan != nullptr) net.set_fault_plan(st.plan);

  sim::ContactTrace sub;
  for (std::size_t ci : task.contacts) sub.add(st.trace.contacts()[ci]);
  sim::TracePlayer player(sched, std::move(sub));
  player.on_contact_start = [&net](std::uint32_t a, std::uint32_t b) {
    net.set_in_range(static_cast<sim::PeerId>(a), static_cast<sim::PeerId>(b), true);
  };
  player.on_contact_end = [&net](std::uint32_t a, std::uint32_t b) {
    net.set_in_range(static_cast<sim::PeerId>(a), static_cast<sim::PeerId>(b), false);
  };
  player.start();

  EpisodeOut& out = st.outs[ti];
  const sim::TrajectoryMobility& mobility = st.world.mobility;

  // Attach members in ascending node order (strands are sorted by node) —
  // the order the single-scheduler path registers their timers in.
  for (const sim::ContactStrand& s : task.strands) {
    mw::SosNode& node = *st.nodes[s.node];
    node.attach(sched, net.endpoint(static_cast<sim::PeerId>(s.node)));
    std::size_t idx = s.node;
    node.on_carry = [&out, &node, &sched, &mobility, idx](const bundle::Bundle& b) {
      out.oracle.record_carry(
          {b.id(), node.user_id(), sched.now(), mobility.position(idx, sched.now())});
    };
    node.on_data = [&out, &node, &sched, &mobility, idx](const bundle::Bundle& b,
                                                         const pki::Certificate&) {
      out.oracle.record_delivery({b.id(), node.user_id(), sched.now(), b.hop_count,
                                  mobility.position(idx, sched.now())});
    };
  }

  // Each member's timeline slice runs to ITS strand end: a post after a
  // node's last contact in this task belongs to the node's next shard,
  // where it fires at the same absolute time with the same local state.
  for (const sim::ContactStrand& s : task.strands) {
    const util::SimTime cutoff = tail ? st.horizon : s.last_end;
    const std::vector<detail::TimelineEvent>& tl = st.timelines[s.node];
    std::size_t& cursor = st.timeline_cursor[s.node];
    while (cursor < tl.size() && tl[cursor].t <= cutoff) {
      const detail::TimelineEvent& ev = tl[cursor];
      const std::size_t idx = s.node;
      alleyoop::App& app = *st.apps[s.node];
      mw::SosNode& node = *st.nodes[s.node];
      switch (ev.kind) {
        case detail::TimelineEvent::Kind::Post:
          sched.schedule_at(ev.t, [&out, &app, &node, &sched, &mobility, idx, k = ev.k] {
            auto post =
                app.post("post #" + std::to_string(k) + " by user" + std::to_string(idx));
            out.oracle.record_post({{node.user_id(), post.msg_num},
                                    node.user_id(),
                                    sched.now(),
                                    mobility.position(idx, sched.now())});
          });
          break;
        case detail::TimelineEvent::Kind::Flood:
          sched.schedule_at(ev.t, [&node, idx, k = ev.k] {
            node.publish(util::to_bytes("junk #" + std::to_string(k) + " from user" +
                                        std::to_string(idx)));
          });
          break;
        case detail::TimelineEvent::Kind::Reboot:
          sched.schedule_at(ev.t, [&node, churn = ev.churn] {
            node.reboot(churn->lose_store, churn->lose_resume_cache);
          });
          break;
      }
      ++cursor;
    }
  }

  // Per-member detach at the strand end, via segmented execution: run the
  // shard up to each distinct strand end and detach that group only after
  // run_until returns. A scheduled detach event would be unsound here —
  // contact teardown cascades through zero-delay events (drop_session
  // notifies on_disconnected via schedule_in(0), which triggers the session
  // drop and the adaptive verify flush), and those land *behind* any
  // pre-scheduled event at the same timestamp. run_until(t) drains every
  // cascade at t first, exactly like run_episode's detach-after-run — so by
  // the time a member detaches, its sessions have already died the same
  // death (and flushed the same queues) as on the single-scheduler path.
  if (!tail) {
    std::map<util::SimTime, std::vector<std::uint32_t>> detach_groups;
    for (const sim::ContactStrand& s : task.strands)
      detach_groups[s.last_end].push_back(s.node);
    for (const auto& [at, members] : detach_groups) {
      sched.run_until(at);
      for (std::uint32_t n : members) {
        mw::SosNode& node = *st.nodes[n];
        node.on_carry = nullptr;
        node.on_data = nullptr;
        node.detach();
      }
    }
  } else {
    sched.run_until(t_end);
    for (const sim::ContactStrand& s : task.strands) {
      mw::SosNode& node = *st.nodes[s.node];
      node.on_carry = nullptr;
      node.on_data = nullptr;
      node.detach();
    }
  }

  for (const sim::ContactStrand& s : task.strands)
    st.resume_at[s.node] = tail ? t_end : s.last_end;
  out.wire_frames = net.frames_sent();
  out.wire_bytes = net.bytes_sent();
  out.connections = net.connections_established();
  out.connections_failed = net.connections_failed();
  out.frames_lost = net.frames_lost();
  out.frames_dropped_fault = net.frames_dropped_fault();
  // player cancels its leftover events before sched is destroyed.
}

}  // namespace

/// The long-lived half of a segmented replay. Declaration order doubles as
/// destruction order constraints: the fleet must die before the staging
/// substrate it was constructed against, and the timelines (which hold
/// plan-owned churn pointers) before the fault plan.
struct ReplaySession::Impl {
  ScenarioConfig config;
  const ScenarioWorld& world;
  ReplayOptions replay;
  double horizon = 0;
  std::optional<sim::FaultPlan> fault_plan;
  sim::ContactTrace faulted;
  const sim::ContactTrace* trace = nullptr;
  std::unique_ptr<sim::Scheduler> staging;
  std::unique_ptr<sim::MpcNetwork> staging_net;
  crypto::VerifyMemo run_memo;
  detail::Fleet fleet;
  std::vector<std::vector<detail::TimelineEvent>> timelines;
  std::vector<std::size_t> timeline_cursor;
  std::vector<util::SimTime> resume_at;
  std::vector<bool> consumed;  // trace contacts already replayed
  util::SimTime now = 0;
  ScenarioResult result;  // oracle records + wire counters merged so far

  explicit Impl(const ScenarioConfig& c, const ScenarioWorld& w, const ReplayOptions& r)
      : config(c), world(w), replay(r) {}
};

ReplaySession::ReplaySession(const ScenarioConfig& config, const ScenarioWorld& world,
                             const ReplayOptions& replay)
    : impl_(std::make_unique<Impl>(config, world, replay)) {
  Impl& im = *impl_;
  im.horizon = util::days(config.days);

  // Compiled fault plan; trace-reshaping faults transform the recorded
  // trace BEFORE partitioning, so the task DAG decomposes the same faulted
  // world the single-scheduler path replays.
  if (config.faults.any()) im.fault_plan.emplace(config.faults, config.seed, config.nodes);
  const sim::FaultPlan* plan = im.fault_plan ? &*im.fault_plan : nullptr;
  im.trace = &world.trace;
  if (plan != nullptr && plan->reshapes_trace()) {
    im.faulted = plan->apply(world.trace);
    im.trace = &im.faulted;
  }

  // --- RNG streams, consumed in exactly the single-scheduler order --------
  util::Rng rng(config.seed);
  {
    util::Rng discard = rng.fork();  // the mobility fork replay mode skips
    (void)discard;
  }

  // --- fleet setup on a staging substrate ---------------------------------
  // Nodes are constructed and started against a scheduler that never runs
  // an event (only timer deadlines register), then detached; each task
  // attaches its members to its own shard.
  im.staging = std::make_unique<sim::Scheduler>();
  im.staging_net = std::make_unique<sim::MpcNetwork>(*im.staging, config.nodes, config.radio);
  // Shared across nodes AND task workers; a caller-owned memo
  // (replay.memo, the sweep-wide scope) takes precedence over the run-local
  // one so a cell's variants collapse their cross-variant re-verifies too.
  crypto::VerifyMemo* verify_memo = replay.memo != nullptr ? replay.memo : &im.run_memo;
  detail::build_fleet(im.fleet, config, *im.staging, *im.staging_net,
                      replay.share_verify_memo ? verify_memo : nullptr, plan);

  graph::Digraph social = detail::build_social_graph(config, rng);
  im.result.social = social;
  im.result.oracle.set_subscriptions(detail::wire_follows(im.fleet, social));

  for (auto& node : im.fleet.nodes) node->start();
  for (auto& node : im.fleet.nodes) node->detach();

  util::Rng workload_rng = rng.fork();
  im.timelines = detail::build_timelines(config, workload_rng, plan);
  im.timeline_cursor.assign(config.nodes, 0);
  im.resume_at.assign(config.nodes, 0.0);
  im.consumed.assign(im.trace->size(), false);
}

ReplaySession::~ReplaySession() = default;

std::vector<util::SimTime> ReplaySession::quiescent_cuts(util::SimTime min_gap) const {
  const Impl& im = *impl_;
  // Sweep the contact intervals by start time tracking the covered horizon;
  // a hole in the coverage is a globally quiescent gap.
  std::vector<std::pair<util::SimTime, util::SimTime>> iv;
  iv.reserve(im.trace->size());
  for (const sim::ContactInterval& c : im.trace->contacts()) iv.emplace_back(c.start, c.end);
  std::sort(iv.begin(), iv.end());
  std::vector<util::SimTime> cuts;
  util::SimTime cover_end = 0;
  bool any = false;
  for (const auto& [s, e] : iv) {
    if (any && s > cover_end && s - cover_end >= min_gap) {
      cuts.push_back(cover_end + (s - cover_end) / 2.0);
    }
    if (e > cover_end) cover_end = e;
    any = true;
  }
  if (any && im.horizon > cover_end && im.horizon - cover_end >= min_gap) {
    cuts.push_back(cover_end + (im.horizon - cover_end) / 2.0);
  }
  return cuts;
}

void ReplaySession::advance_to(util::SimTime t) {
  Impl& im = *impl_;
  if (t > im.horizon) t = im.horizon;
  assert(t >= im.now);
  const bool final_segment = t >= im.horizon;
  const sim::FaultPlan* plan = im.fault_plan ? &*im.fault_plan : nullptr;

  // This segment's contacts, in trace order: everything not yet replayed
  // that ends at or before the cut. The scan covers ALL remaining indices —
  // a fault-reshaped trace is not sorted by end time, so a contiguous
  // cursor would strand late-ending contacts. At the horizon everything
  // left rides along regardless of end time.
  std::vector<std::size_t> picked;
  const std::vector<sim::ContactInterval>& contacts = im.trace->contacts();
  for (std::size_t i = 0; i < contacts.size(); ++i) {
    if (im.consumed[i]) continue;
    if (final_segment || contacts[i].end <= t) picked.push_back(i);
  }
  sim::ContactTrace seg;
  for (std::size_t i : picked) seg.add(contacts[i]);

  // Partition the segment on the selected engine, with the cut as the
  // horizon: the trailing tail task runs every node's local timers up to
  // the cut, which is exactly what makes the cut a serializable state.
  const bool strands = im.replay.subepisode_jobs > 0;
  const bool episodes_engine = !strands && im.replay.partition;
  sim::EpisodeGraph graph;
  sim::ContactDag dag;
  std::vector<sim::Episode> mono;
  const std::vector<sim::Episode>* episodes = nullptr;
  std::size_t task_count = 0;
  std::size_t jobs = 1;
  if (strands) {
    dag = sim::ContactDag::partition(seg, im.config.nodes, t);
    task_count = dag.tasks().size();
    jobs = im.replay.subepisode_jobs;
  } else if (episodes_engine) {
    graph = sim::EpisodeGraph::partition(seg, im.config.nodes, t);
    episodes = &graph.episodes();
    task_count = graph.episodes().size();
    jobs = im.replay.jobs;
  } else {
    // Mono engine: one fused task holding every node for the whole segment
    // (single-scheduler semantics), then the tail to the cut.
    if (seg.size() > 0) {
      sim::Episode all;
      for (std::size_t n = 0; n < im.config.nodes; ++n)
        all.nodes.push_back(static_cast<std::uint32_t>(n));
      all.first_start = seg.contacts().front().start;
      all.last_end = 0;
      for (std::size_t ci = 0; ci < seg.size(); ++ci) {
        all.contacts.push_back(ci);
        all.first_start = std::min(all.first_start, seg.contacts()[ci].start);
        all.last_end = std::max(all.last_end, seg.contacts()[ci].end);
      }
      mono.push_back(std::move(all));
    }
    sim::Episode tail;
    for (std::size_t n = 0; n < im.config.nodes; ++n)
      tail.nodes.push_back(static_cast<std::uint32_t>(n));
    tail.last_end = t;
    if (!mono.empty()) tail.deps.push_back(0);
    mono.push_back(std::move(tail));
    episodes = &mono;
    task_count = mono.size();
  }

  std::vector<EpisodeOut> outs(task_count);
  EngineState st{im.config,
                 im.world,
                 seg,
                 plan,
                 episodes,
                 strands ? &dag : nullptr,
                 im.fleet.nodes,
                 im.fleet.apps,
                 im.timelines,
                 im.timeline_cursor,
                 im.resume_at,
                 outs,
                 t};

  if (strands) {
    execute_task_dag(
        task_count,
        [&](std::size_t i) -> const std::vector<std::size_t>& { return dag.tasks()[i].deps; },
        [&](std::size_t i) { run_strand_task(st, i); }, jobs, im.replay.budget,
        "contact-strand DAG");
  } else {
    execute_task_dag(
        task_count,
        [&](std::size_t i) -> const std::vector<std::size_t>& { return (*episodes)[i].deps; },
        [&](std::size_t i) { run_episode(st, i); }, jobs, im.replay.budget, "episode graph");
  }

  // Merge in task-index order — deterministic regardless of worker count.
  for (const EpisodeOut& out : outs) {
    for (const auto& r : out.oracle.posts()) im.result.oracle.record_post(r);
    for (const auto& r : out.oracle.carries()) im.result.oracle.record_carry(r);
    for (const auto& r : out.oracle.deliveries()) im.result.oracle.record_delivery(r);
    im.result.wire_frames += out.wire_frames;
    im.result.wire_bytes += out.wire_bytes;
    im.result.connections += out.connections;
    im.result.connections_failed += out.connections_failed;
    im.result.frames_lost += out.frames_lost;
    im.result.frames_dropped_fault += out.frames_dropped_fault;
  }
  for (std::size_t i : picked) im.consumed[i] = true;
  im.now = t;
}

util::SimTime ReplaySession::sim_time() const { return impl_->now; }
util::SimTime ReplaySession::horizon() const { return impl_->horizon; }
const ScenarioResult& ReplaySession::partial() const { return impl_->result; }
std::size_t ReplaySession::node_count() const { return impl_->fleet.nodes.size(); }
mw::SosNode& ReplaySession::node(std::size_t i) { return *impl_->fleet.nodes[i]; }

mw::NodeStats ReplaySession::stats_totals() const {
  mw::NodeStats totals;
  for (const auto& node : impl_->fleet.nodes) detail::add_stats(totals, node->stats());
  return totals;
}

ScenarioResult ReplaySession::finish() {
  Impl& im = *impl_;
  ScenarioResult result = std::move(im.result);
  for (const auto& node : im.fleet.nodes) detail::add_stats(result.totals, node->stats());
  result.contacts = im.trace->size();
  result.simulated_days = im.config.days;
  return result;
}

void ReplaySession::save_state(util::Writer& w) const {
  const Impl& im = *impl_;
  w.f64(im.now);
  w.varint(im.fleet.nodes.size());
  for (const auto& node : im.fleet.nodes) {
    util::Writer sub;
    node->save_state(sub);
    w.bytes(sub.take());
  }
  for (std::size_t c : im.timeline_cursor) w.varint(c);
  for (util::SimTime t : im.resume_at) w.f64(t);
  const MetricsOracle& oracle = im.result.oracle;
  w.varint(oracle.posts().size());
  for (const PostRecord& r : oracle.posts()) {
    w.raw(r.id.origin.view());
    w.u32(r.id.msg_num);
    w.raw(r.author.view());
    w.f64(r.created);
    w.f64(r.location.x);
    w.f64(r.location.y);
  }
  w.varint(oracle.deliveries().size());
  for (const DeliveryRecord& r : oracle.deliveries()) {
    w.raw(r.id.origin.view());
    w.u32(r.id.msg_num);
    w.raw(r.subscriber.view());
    w.f64(r.at);
    w.u8(r.hops);
    w.f64(r.location.x);
    w.f64(r.location.y);
  }
  w.varint(oracle.carries().size());
  for (const CarryRecord& r : oracle.carries()) {
    w.raw(r.id.origin.view());
    w.u32(r.id.msg_num);
    w.raw(r.carrier.view());
    w.f64(r.at);
    w.f64(r.location.x);
    w.f64(r.location.y);
  }
  w.u64(im.result.wire_frames);
  w.u64(im.result.wire_bytes);
  w.u64(im.result.connections);
  w.u64(im.result.connections_failed);
  w.u64(im.result.frames_lost);
  w.u64(im.result.frames_dropped_fault);
}

bool ReplaySession::load_state(util::Reader& r) {
  Impl& im = *impl_;
  assert(im.now == 0);  // resume into a freshly constructed session only
  double now = r.f64();
  std::uint64_t nodes = r.varint();
  if (!r.ok() || nodes != im.fleet.nodes.size()) return false;
  if (now < 0 || now > im.horizon) return false;
  std::vector<util::Bytes> blobs(im.fleet.nodes.size());
  for (auto& blob : blobs) blob = r.bytes();
  std::vector<std::size_t> cursor(im.config.nodes);
  for (auto& c : cursor) {
    std::uint64_t v = r.varint();
    c = static_cast<std::size_t>(v);
  }
  std::vector<util::SimTime> resume(im.config.nodes);
  for (auto& t : resume) t = r.f64();
  std::uint64_t posts = r.varint();
  if (!r.ok()) return false;
  std::vector<PostRecord> post_recs;
  for (std::uint64_t i = 0; i < posts && r.ok(); ++i) {
    PostRecord rec;
    rec.id.origin.bytes = r.raw_array<pki::kUserIdSize>();
    rec.id.msg_num = r.u32();
    rec.author.bytes = r.raw_array<pki::kUserIdSize>();
    rec.created = r.f64();
    rec.location.x = r.f64();
    rec.location.y = r.f64();
    post_recs.push_back(rec);
  }
  std::uint64_t deliveries = r.varint();
  std::vector<DeliveryRecord> delivery_recs;
  for (std::uint64_t i = 0; i < deliveries && r.ok(); ++i) {
    DeliveryRecord rec;
    rec.id.origin.bytes = r.raw_array<pki::kUserIdSize>();
    rec.id.msg_num = r.u32();
    rec.subscriber.bytes = r.raw_array<pki::kUserIdSize>();
    rec.at = r.f64();
    rec.hops = r.u8();
    rec.location.x = r.f64();
    rec.location.y = r.f64();
    delivery_recs.push_back(rec);
  }
  std::uint64_t carries = r.varint();
  std::vector<CarryRecord> carry_recs;
  for (std::uint64_t i = 0; i < carries && r.ok(); ++i) {
    CarryRecord rec;
    rec.id.origin.bytes = r.raw_array<pki::kUserIdSize>();
    rec.id.msg_num = r.u32();
    rec.carrier.bytes = r.raw_array<pki::kUserIdSize>();
    rec.at = r.f64();
    rec.location.x = r.f64();
    rec.location.y = r.f64();
    carry_recs.push_back(rec);
  }
  std::uint64_t wire_frames = r.u64();
  std::uint64_t wire_bytes = r.u64();
  std::uint64_t connections = r.u64();
  std::uint64_t connections_failed = r.u64();
  std::uint64_t frames_lost = r.u64();
  std::uint64_t frames_dropped_fault = r.u64();
  if (!r.ok()) return false;
  for (std::size_t i = 0; i < im.fleet.nodes.size(); ++i) {
    util::Reader sub{util::ByteView(blobs[i])};
    if (!im.fleet.nodes[i]->load_state(sub) || !sub.done()) return false;
  }
  im.timeline_cursor = std::move(cursor);
  im.resume_at = std::move(resume);
  for (const PostRecord& rec : post_recs) im.result.oracle.record_post(rec);
  for (const DeliveryRecord& rec : delivery_recs) im.result.oracle.record_delivery(rec);
  for (const CarryRecord& rec : carry_recs) im.result.oracle.record_carry(rec);
  im.result.wire_frames = wire_frames;
  im.result.wire_bytes = wire_bytes;
  im.result.connections = connections;
  im.result.connections_failed = connections_failed;
  im.result.frames_lost = frames_lost;
  im.result.frames_dropped_fault = frames_dropped_fault;
  // Contacts already replayed are recomputable from the cut time: a
  // quiescent cut consumes exactly the contacts ending before it.
  const std::vector<sim::ContactInterval>& contacts = im.trace->contacts();
  for (std::size_t i = 0; i < contacts.size(); ++i) im.consumed[i] = contacts[i].end <= now;
  im.now = now;
  return true;
}

ScenarioResult replay_scenario_episodes(const ScenarioConfig& config,
                                        const ScenarioWorld& world,
                                        const ReplayOptions& replay) {
  ReplaySession session(config, world, replay);
  session.advance_to(session.horizon());
  return session.finish();
}

}  // namespace sos::deploy
