// Partitioned replay engines. A recorded ScenarioWorld fixes every contact
// before replay begins, so the run can be cut into a task DAG and executed
// on scheduler/network shards, per-node middleware state carried across
// shard boundaries through the SosNode detach/attach seam. Two partition
// granularities share one annotated Kahn worker machinery:
//
//   * episodes (sim::EpisodeGraph, ReplayOptions::partition/jobs): nodes
//     stay attached until the episode's global end, so overlapping node
//     windows fuse — conservative, but a dense single-hotspot day
//     collapses to one serial episode;
//   * contact strands (sim::ContactDag, ReplayOptions::subepisode_jobs):
//     each member detaches at its own last contact within a task, cutting
//     node timelines into strands between consecutive contacts — the
//     recorded trace is the conservative-lookahead oracle that makes this
//     safe without any null-message protocol.
//
// Per-task metrics merge in deterministic task-index order; results are
// bitwise identical to the single-scheduler replay on both engines at any
// worker count.
#pragma once

#include <atomic>
#include <cstddef>

#include "deploy/scenario.hpp"

namespace sos::deploy {

/// Token pool shared between cell-level (SweepRunner) and episode-level
/// workers: a sweep hands its thread budget to one WorkerBudget; episode
/// engines borrow extra workers from it and return them, so nested
/// parallelism never oversubscribes the requested job count.
///
/// Concurrency contract (lock-free, so nothing here is SOS_GUARDED_BY):
/// the pool is a single atomic counter and tokens are conserved by
/// protocol — every acquire() return value must eventually be release()d
/// by the same logical owner, and release() never invents tokens the
/// owner did not hold. The donation path (a finished sweep cell releasing
/// its own thread for still-running episode engines to borrow) relies on
/// exactly this conservation; tests/sweep_test.cpp hammers it under TSan.
class WorkerBudget {
 public:
  explicit WorkerBudget(std::size_t tokens) : available_(tokens) {}

  /// Take up to `want` tokens; returns how many were granted (possibly 0).
  std::size_t acquire(std::size_t want) {
    std::size_t cur = available_.load(std::memory_order_relaxed);
    while (cur > 0) {
      std::size_t take = want < cur ? want : cur;
      if (available_.compare_exchange_weak(cur, cur - take, std::memory_order_relaxed)) {
        return take;
      }
    }
    return 0;
  }
  void release(std::size_t n) { available_.fetch_add(n, std::memory_order_relaxed); }

  /// Tokens currently unclaimed (leak/starvation assertions in tests; a
  /// racing snapshot, exact only at quiescence).
  std::size_t available() const { return available_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::size_t> available_;
};

/// Run `config` over the recorded world on a partitioned engine — the
/// sub-episode strand engine when replay.subepisode_jobs > 0, else the
/// episode engine. Called through run_scenario(config, &world,
/// {.partition = true, ...}) or {.subepisode_jobs = N}; exposed for tests
/// that want a partitioned engine unconditionally.
ScenarioResult replay_scenario_episodes(const ScenarioConfig& config,
                                        const ScenarioWorld& world,
                                        const ReplayOptions& replay);

}  // namespace sos::deploy
