// Episode-partitioned replay engine. A recorded ScenarioWorld fixes every
// contact before replay begins, so sim::EpisodeGraph can cut the run into
// causally-independent episodes; this engine executes that DAG — one
// scheduler/network shard per episode, per-node middleware state carried
// across shard boundaries through the SosNode detach/attach seam — and
// merges per-episode metrics in deterministic episode order. Results are
// bitwise identical to the single-scheduler replay at any worker count.
#pragma once

#include <atomic>
#include <cstddef>

#include "deploy/scenario.hpp"

namespace sos::deploy {

/// Token pool shared between cell-level (SweepRunner) and episode-level
/// workers: a sweep hands its thread budget to one WorkerBudget; episode
/// engines borrow extra workers from it and return them, so nested
/// parallelism never oversubscribes the requested job count.
///
/// Concurrency contract (lock-free, so nothing here is SOS_GUARDED_BY):
/// the pool is a single atomic counter and tokens are conserved by
/// protocol — every acquire() return value must eventually be release()d
/// by the same logical owner, and release() never invents tokens the
/// owner did not hold. The donation path (a finished sweep cell releasing
/// its own thread for still-running episode engines to borrow) relies on
/// exactly this conservation; tests/sweep_test.cpp hammers it under TSan.
class WorkerBudget {
 public:
  explicit WorkerBudget(std::size_t tokens) : available_(tokens) {}

  /// Take up to `want` tokens; returns how many were granted (possibly 0).
  std::size_t acquire(std::size_t want) {
    std::size_t cur = available_.load(std::memory_order_relaxed);
    while (cur > 0) {
      std::size_t take = want < cur ? want : cur;
      if (available_.compare_exchange_weak(cur, cur - take, std::memory_order_relaxed)) {
        return take;
      }
    }
    return 0;
  }
  void release(std::size_t n) { available_.fetch_add(n, std::memory_order_relaxed); }

  /// Tokens currently unclaimed (leak/starvation assertions in tests; a
  /// racing snapshot, exact only at quiescence).
  std::size_t available() const { return available_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::size_t> available_;
};

/// Run `config` over the recorded world on the episode-partitioned engine.
/// Called through run_scenario(config, &world, {.partition = true, ...});
/// exposed for tests that want the engine unconditionally.
ScenarioResult replay_scenario_episodes(const ScenarioConfig& config,
                                        const ScenarioWorld& world,
                                        const ReplayOptions& replay);

}  // namespace sos::deploy
