// Partitioned replay engines. A recorded ScenarioWorld fixes every contact
// before replay begins, so the run can be cut into a task DAG and executed
// on scheduler/network shards, per-node middleware state carried across
// shard boundaries through the SosNode detach/attach seam. Two partition
// granularities share one annotated Kahn worker machinery:
//
//   * episodes (sim::EpisodeGraph, ReplayOptions::partition/jobs): nodes
//     stay attached until the episode's global end, so overlapping node
//     windows fuse — conservative, but a dense single-hotspot day
//     collapses to one serial episode;
//   * contact strands (sim::ContactDag, ReplayOptions::subepisode_jobs):
//     each member detaches at its own last contact within a task, cutting
//     node timelines into strands between consecutive contacts — the
//     recorded trace is the conservative-lookahead oracle that makes this
//     safe without any null-message protocol.
//
// Per-task metrics merge in deterministic task-index order; results are
// bitwise identical to the single-scheduler replay on both engines at any
// worker count.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "deploy/scenario.hpp"

namespace sos::mw {
class SosNode;
}
namespace sos::util {
class Writer;
class Reader;
}  // namespace sos::util

namespace sos::deploy {

/// Token pool shared between cell-level (SweepRunner) and episode-level
/// workers: a sweep hands its thread budget to one WorkerBudget; episode
/// engines borrow extra workers from it and return them, so nested
/// parallelism never oversubscribes the requested job count.
///
/// Concurrency contract (lock-free, so nothing here is SOS_GUARDED_BY):
/// the pool is a single atomic counter and tokens are conserved by
/// protocol — every acquire() return value must eventually be release()d
/// by the same logical owner, and release() never invents tokens the
/// owner did not hold. The donation path (a finished sweep cell releasing
/// its own thread for still-running episode engines to borrow) relies on
/// exactly this conservation; tests/sweep_test.cpp hammers it under TSan.
class WorkerBudget {
 public:
  explicit WorkerBudget(std::size_t tokens) : available_(tokens) {}

  /// Take up to `want` tokens; returns how many were granted (possibly 0).
  std::size_t acquire(std::size_t want) {
    std::size_t cur = available_.load(std::memory_order_relaxed);
    while (cur > 0) {
      std::size_t take = want < cur ? want : cur;
      if (available_.compare_exchange_weak(cur, cur - take, std::memory_order_relaxed)) {
        return take;
      }
    }
    return 0;
  }
  void release(std::size_t n) { available_.fetch_add(n, std::memory_order_relaxed); }

  /// Tokens currently unclaimed (leak/starvation assertions in tests; a
  /// racing snapshot, exact only at quiescence).
  std::size_t available() const { return available_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::size_t> available_;
};

/// A replay broken into externally driven segments — the engine under the
/// soak harness's checkpoint/resume. Construction performs exactly the
/// setup sequence replay_scenario_episodes always ran (RNG stream order,
/// fleet build, social wiring, workload timelines); advance_to(t) then
/// replays every remaining contact ending at or before t on the selected
/// engine and runs each node's local timers up to t, so a cut placed in a
/// globally quiescent contact gap leaves the fleet in a serializable state
/// (no sessions, no verify queues — only absolute timer deadlines).
/// Segment-by-segment execution is bitwise identical to one uninterrupted
/// advance_to(horizon()): episodes never straddle a quiescent gap, and
/// per-node state crosses segments through the same detach/attach seam it
/// crosses shard boundaries with.
///
/// Engine selection from ReplayOptions: subepisode_jobs > 0 = contact-strand
/// DAG, partition = episode graph, neither = a single fused task per segment
/// (single-scheduler semantics on the replay machinery — the soak CLI's
/// "mono" engine).
class ReplaySession {
 public:
  ReplaySession(const ScenarioConfig& config, const ScenarioWorld& world,
                const ReplayOptions& replay);
  ~ReplaySession();
  ReplaySession(const ReplaySession&) = delete;
  ReplaySession& operator=(const ReplaySession&) = delete;

  /// Midpoints of globally quiescent contact gaps of at least `min_gap`
  /// seconds (no contact open anywhere in the gap), ascending; includes the
  /// final gap before the horizon when long enough. Contact times are
  /// multiples of the encounter tick, so a midpoint never ties with a
  /// contact event. These are the legal checkpoint boundaries.
  std::vector<util::SimTime> quiescent_cuts(util::SimTime min_gap) const;

  /// Replay up to sim time t (clamped to the horizon; must not go
  /// backwards). t must be a quiescent cut or the horizon.
  void advance_to(util::SimTime t);

  util::SimTime sim_time() const;
  util::SimTime horizon() const;

  /// Fleet-wide counter totals at the current cut (monotonic over a run).
  mw::NodeStats stats_totals() const;
  /// Oracle records and wire counters merged so far (totals are only
  /// aggregated by finish()).
  const ScenarioResult& partial() const;
  std::size_t node_count() const;
  mw::SosNode& node(std::size_t i);

  /// Final result; call once after advance_to(horizon()).
  ScenarioResult finish();

  /// Serialize the full session state at the current cut: sim time, every
  /// node's middleware state (the detach/attach inventory), timeline
  /// cursors, per-node resume points, and the merged partial metrics. The
  /// setup-time state (fleet identities, social graph, timelines) is not
  /// written — a resuming session reconstructs it from the same config.
  void save_state(util::Writer& w) const;
  /// Mirror of save_state; call on a freshly constructed session for the
  /// same config/world before any advance_to. Returns false on malformed
  /// input (the session must then be discarded).
  bool load_state(util::Reader& r);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Run `config` over the recorded world on a partitioned engine — the
/// sub-episode strand engine when replay.subepisode_jobs > 0, else the
/// episode engine. Called through run_scenario(config, &world,
/// {.partition = true, ...}) or {.subepisode_jobs = N}; exposed for tests
/// that want a partitioned engine unconditionally. Equivalent to driving a
/// ReplaySession straight to the horizon.
ScenarioResult replay_scenario_episodes(const ScenarioConfig& config,
                                        const ScenarioWorld& world,
                                        const ReplayOptions& replay);

}  // namespace sos::deploy
