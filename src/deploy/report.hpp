// Plain-text report helpers: aligned tables and paper-vs-measured rows for
// the figure-regeneration benches and EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace sos::deploy {

/// Fixed-width table printer (stdout).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  /// Place a row at a fixed position no matter the call order — sweep
  /// workers finish out of order but the printed grid must not. Grows the
  /// table as needed; rows never set are skipped when printing.
  void set_row(std::size_t index, std::vector<std::string> cells);
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string fmt(double v, int decimals = 3);
std::string fmt_pct(double v, int decimals = 1);

/// "paper vs measured" convenience row.
std::vector<std::string> compare_row(const std::string& metric, double paper, double measured,
                                     int decimals = 2);

void print_heading(const std::string& title);

}  // namespace sos::deploy
