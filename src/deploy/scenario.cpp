#include "deploy/scenario.hpp"

#include <memory>
#include <optional>
#include <vector>

#include "alleyoop/app.hpp"
#include "crypto/drbg.hpp"
#include "graph/generators.hpp"
#include "pki/bootstrap.hpp"
#include "sim/multipeer.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace sos::deploy {

ScenarioConfig gainesville_config(const std::string& scheme, std::uint64_t seed) {
  ScenarioConfig config;
  config.scheme = scheme;
  config.seed = seed;
  return config;
}

namespace {
/// Per-node posting times: Poisson within the daily waking window, scaled
/// so the expected total across nodes matches total_posts_target.
std::vector<util::SimTime> posting_times(const ScenarioConfig& config, util::Rng& rng) {
  double horizon = util::days(config.days);
  double window = util::hours(config.post_window_end_h - config.post_window_start_h);
  double active_total = window * config.days;
  double per_node = config.total_posts_target / static_cast<double>(config.nodes);
  double rate = per_node / active_total;  // posts per active second

  std::vector<util::SimTime> times;
  util::SimTime t = util::hours(config.post_window_start_h);
  while (t < horizon) {
    t += rng.exponential(1.0 / rate);
    double tod = util::time_of_day(t);
    if (tod < util::hours(config.post_window_start_h)) {
      t += util::hours(config.post_window_start_h) - tod;
      continue;
    }
    if (tod > util::hours(config.post_window_end_h)) {
      // Jump to the next morning's window.
      t += util::days(1) - tod + util::hours(config.post_window_start_h);
      continue;
    }
    if (t < horizon) times.push_back(t);
  }
  return times;
}
}  // namespace

namespace {
/// Generate the config's mobility trajectories. Must consume exactly one
/// fork of the scenario RNG regardless of mode so the graph/workload
/// streams stay identical between live and replay runs.
std::unique_ptr<sim::TrajectoryMobility> build_mobility(const ScenarioConfig& config,
                                                        util::Rng& rng) {
  sim::DailyRoutineParams mobility_params = config.mobility;
  mobility_params.area = {config.area_w_m, config.area_h_m};
  util::Rng mobility_rng = rng.fork();
  return sim::daily_routine(config.nodes, util::days(config.days), mobility_params,
                            mobility_rng);
}

/// Social graph selection. Forks the scenario RNG only in the sampled
/// branch, so override/Fig-4a configs leave the stream untouched.
graph::Digraph build_social_graph(const ScenarioConfig& config, util::Rng& rng) {
  if (config.social) return *config.social;
  if (config.nodes == 10) return graph::baker2017_social_graph();
  util::Rng graph_rng = rng.fork();
  // Density in the ballpark of the deployment's 0.64 undirected density.
  return graph::social_community(config.nodes, 0.38, 0.35, graph_rng);
}
}  // namespace

graph::Digraph scenario_social_graph(const ScenarioConfig& config) {
  util::Rng rng(config.seed);
  util::Rng mobility_rng = rng.fork();  // consumed first by run_scenario
  (void)mobility_rng;
  return build_social_graph(config, rng);
}

std::shared_ptr<const ScenarioWorld> record_world(const ScenarioConfig& config) {
  sim::Scheduler sched;
  util::Rng rng(config.seed);
  double horizon = util::days(config.days);
  auto mobility = build_mobility(config, rng);

  sim::EncounterDetector detector(sched, *mobility, config.radio.range_m,
                                  config.encounter_tick_s);
  sim::TraceRecorder recorder(sched);
  detector.on_contact_start = [&](std::size_t a, std::size_t b) {
    recorder.contact_start(static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(b));
  };
  detector.on_contact_end = [&](std::size_t a, std::size_t b) {
    recorder.contact_end(static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(b));
  };
  detector.start(horizon);
  sched.run_until(horizon);
  return std::make_shared<ScenarioWorld>(
      ScenarioWorld{sim::TrajectoryMobility(std::move(*mobility)), recorder.finish()});
}

ScenarioResult run_scenario(const ScenarioConfig& config, const ScenarioWorld* world) {
  sim::Scheduler sched;
  util::Rng rng(config.seed);
  double horizon = util::days(config.days);

  // --- mobility + radio ----------------------------------------------------
  std::unique_ptr<sim::TrajectoryMobility> owned_mobility;
  const sim::MobilityModel* mobility = nullptr;
  if (world) {
    // Replay mode: positions come from the recorded trajectories; consume
    // the mobility fork anyway to keep the downstream RNG streams aligned.
    util::Rng discard = rng.fork();
    (void)discard;
    mobility = &world->mobility;
  } else {
    owned_mobility = build_mobility(config, rng);
    mobility = owned_mobility.get();
  }

  sim::MpcNetwork net(sched, config.nodes, config.radio);
  auto range_on = [&net](std::uint32_t a, std::uint32_t b) {
    net.set_in_range(static_cast<sim::PeerId>(a), static_cast<sim::PeerId>(b), true);
  };
  auto range_off = [&net](std::uint32_t a, std::uint32_t b) {
    net.set_in_range(static_cast<sim::PeerId>(a), static_cast<sim::PeerId>(b), false);
  };
  std::optional<sim::EncounterDetector> detector;
  std::optional<sim::TracePlayer> player;
  if (world) {
    player.emplace(sched, world->trace);
    player->on_contact_start = range_on;
    player->on_contact_end = range_off;
    player->start();
  } else {
    detector.emplace(sched, *mobility, config.radio.range_m, config.encounter_tick_s);
    detector->on_contact_start = [&](std::size_t a, std::size_t b) {
      range_on(static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(b));
    };
    detector->on_contact_end = [&](std::size_t a, std::size_t b) {
      range_off(static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(b));
    };
    detector->start(horizon);
  }

  // --- users: Fig 2a bootstrap, SOS node, AlleyOop app ---------------------
  pki::BootstrapService infra(
      util::concat(util::to_bytes("scenario-infra-"),
                   util::Bytes{static_cast<std::uint8_t>(config.seed)}));
  std::vector<std::unique_ptr<mw::SosNode>> nodes;
  std::vector<std::unique_ptr<alleyoop::App>> apps;
  alleyoop::CloudService cloud;

  ScenarioResult result;
  MetricsOracle& oracle = result.oracle;

  for (std::size_t i = 0; i < config.nodes; ++i) {
    crypto::Drbg device(util::concat(util::to_bytes("device-" + std::to_string(i) + "-seed-"),
                                     util::Bytes{static_cast<std::uint8_t>(config.seed)}));
    auto creds = infra.signup("user" + std::to_string(i), device, sched.now());
    mw::SosConfig mw_config;
    mw_config.scheme = config.scheme;
    mw_config.resume_lifetime_s = config.resume_lifetime_s;
    mw_config.verify_batch_window_s = config.verify_batch_window_s;
    nodes.push_back(std::make_unique<mw::SosNode>(
        sched, net.endpoint(static_cast<sim::PeerId>(i)), std::move(*creds), mw_config));
    apps.push_back(std::make_unique<alleyoop::App>(*nodes.back(), &cloud));
  }

  // --- social graph (subscriptions) -----------------------------------------
  graph::Digraph social = build_social_graph(config, rng);
  result.social = social;

  std::map<pki::UserId, std::set<pki::UserId>> follows;
  for (auto [i, j] : social.edges()) {
    apps[i]->follow(nodes[j]->user_id());
    follows[nodes[i]->user_id()].insert(nodes[j]->user_id());
  }
  oracle.set_subscriptions(follows);

  // --- instrumentation --------------------------------------------------------
  for (std::size_t i = 0; i < config.nodes; ++i) {
    mw::SosNode& node = *nodes[i];
    std::size_t idx = i;
    node.on_carry = [&, idx](const bundle::Bundle& b) {
      oracle.record_carry(
          {b.id(), nodes[idx]->user_id(), sched.now(), mobility->position(idx, sched.now())});
    };
    node.on_data = [&, idx](const bundle::Bundle& b, const pki::Certificate&) {
      oracle.record_delivery({b.id(), nodes[idx]->user_id(), sched.now(), b.hop_count,
                              mobility->position(idx, sched.now())});
    };
    node.start();
  }

  // --- posting workload ---------------------------------------------------------
  util::Rng workload_rng = rng.fork();
  for (std::size_t i = 0; i < config.nodes; ++i) {
    std::size_t idx = i;
    int k = 0;
    for (util::SimTime t : posting_times(config, workload_rng)) {
      ++k;
      sched.schedule_at(t, [&, idx, k] {
        auto post = apps[idx]->post("post #" + std::to_string(k) + " by user" +
                                    std::to_string(idx));
        oracle.record_post({{nodes[idx]->user_id(), post.msg_num},
                            nodes[idx]->user_id(),
                            sched.now(),
                            mobility->position(idx, sched.now())});
      });
    }
  }

  // --- run ------------------------------------------------------------------------
  sched.run_until(horizon);

  // --- collect ----------------------------------------------------------------------
  for (const auto& node : nodes) {
    const mw::NodeStats& s = node->stats();
    result.totals.sessions_established += s.sessions_established;
    result.totals.sessions_lost += s.sessions_lost;
    result.totals.full_handshakes += s.full_handshakes;
    result.totals.sessions_resumed += s.sessions_resumed;
    result.totals.resume_attempts += s.resume_attempts;
    result.totals.resume_rejected += s.resume_rejected;
    result.totals.ecdh_ops += s.ecdh_ops;
    result.totals.handshake_cert_rejected += s.handshake_cert_rejected;
    result.totals.handshake_sig_rejected += s.handshake_sig_rejected;
    result.totals.frames_sent += s.frames_sent;
    result.totals.frames_received += s.frames_received;
    result.totals.decrypt_failures += s.decrypt_failures;
    result.totals.malformed_frames += s.malformed_frames;
    result.totals.bundles_sent += s.bundles_sent;
    result.totals.bundles_received += s.bundles_received;
    result.totals.bundle_sig_rejected += s.bundle_sig_rejected;
    result.totals.bundle_cert_rejected += s.bundle_cert_rejected;
    result.totals.bundle_sig_cache_hits += s.bundle_sig_cache_hits;
    result.totals.bundle_sig_cache_misses += s.bundle_sig_cache_misses;
    result.totals.bundle_batch_verifies += s.bundle_batch_verifies;
    result.totals.bundle_batch_fallbacks += s.bundle_batch_fallbacks;
    result.totals.duplicates_ignored += s.duplicates_ignored;
    result.totals.bundles_carried += s.bundles_carried;
    result.totals.deliveries += s.deliveries;
    result.totals.transfers_interrupted += s.transfers_interrupted;
    result.totals.published += s.published;
  }
  result.contacts = world ? world->trace.size() : detector->total_contacts_seen();
  result.wire_frames = net.frames_sent();
  result.wire_bytes = net.bytes_sent();
  result.connections = net.connections_established();
  result.frames_lost = net.frames_lost();
  result.simulated_days = config.days;
  return result;
}

}  // namespace sos::deploy
