#include "deploy/scenario.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "alleyoop/app.hpp"
#include "crypto/drbg.hpp"
#include "crypto/verify_memo.hpp"
#include "deploy/replay.hpp"
#include "deploy/scenario_detail.hpp"
#include "graph/generators.hpp"
#include "pki/bootstrap.hpp"
#include "sim/multipeer.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace sos::deploy {

ScenarioConfig gainesville_config(const std::string& scheme, std::uint64_t seed) {
  ScenarioConfig config;
  config.scheme = scheme;
  config.seed = seed;
  return config;
}

namespace detail {

std::vector<util::SimTime> posting_times(const ScenarioConfig& config, util::Rng& rng) {
  double horizon = util::days(config.days);
  double window = util::hours(config.post_window_end_h - config.post_window_start_h);
  double active_total = window * config.days;
  double per_node = config.total_posts_target / static_cast<double>(config.nodes);
  double rate = per_node / active_total;  // posts per active second

  std::vector<util::SimTime> times;
  util::SimTime t = util::hours(config.post_window_start_h);
  while (t < horizon) {
    t += rng.exponential(1.0 / rate);
    double tod = util::time_of_day(t);
    if (tod < util::hours(config.post_window_start_h)) {
      t += util::hours(config.post_window_start_h) - tod;
      continue;
    }
    if (tod > util::hours(config.post_window_end_h)) {
      // Jump to the next morning's window.
      t += util::days(1) - tod + util::hours(config.post_window_start_h);
      continue;
    }
    if (t < horizon) times.push_back(t);
  }
  return times;
}

std::unique_ptr<sim::TrajectoryMobility> build_mobility(const ScenarioConfig& config,
                                                        util::Rng& rng) {
  sim::DailyRoutineParams mobility_params = config.mobility;
  mobility_params.area = {config.area_w_m, config.area_h_m};
  mobility_params.community_count = config.communities;
  mobility_params.bridge_node_frac = config.bridge_node_frac;
  util::Rng mobility_rng = rng.fork();
  return sim::daily_routine(config.nodes, util::days(config.days), mobility_params,
                            mobility_rng);
}

graph::Digraph build_social_graph(const ScenarioConfig& config, util::Rng& rng) {
  if (config.social) return *config.social;
  if (config.nodes == 10) return graph::baker2017_social_graph();
  util::Rng graph_rng = rng.fork();
  // Density in the ballpark of the deployment's 0.64 undirected density.
  return graph::social_community(config.nodes, 0.38, 0.35, graph_rng);
}

void build_fleet(Fleet& fleet, const ScenarioConfig& config, sim::Scheduler& sched,
                 sim::MpcNetwork& net, crypto::VerifyMemo* verify_memo,
                 const sim::FaultPlan* plan) {
  pki::BootstrapService infra(
      util::concat(util::to_bytes("scenario-infra-"),
                   util::Bytes{static_cast<std::uint8_t>(config.seed)}));
  for (std::size_t i = 0; i < config.nodes; ++i) {
    crypto::Drbg device(util::concat(util::to_bytes("device-" + std::to_string(i) + "-seed-"),
                                     util::Bytes{static_cast<std::uint8_t>(config.seed)}));
    auto creds = infra.signup("user" + std::to_string(i), device, sched.now());
    mw::SosConfig mw_config;
    mw_config.scheme = config.scheme;
    mw_config.store_capacity = config.store_capacity;
    mw_config.resume_lifetime_s = config.resume_lifetime_s;
    mw_config.verify_batch_window_s = config.verify_batch_window_s;
    mw_config.verify_batch_adaptive = config.verify_batch_adaptive;
    mw_config.verify_signatures = config.verify_signatures;
    if (plan != nullptr) {
      // Adversaries keep their PKI identity and workload; only behavior
      // changes. A blackhole swaps its routing scheme for the sink; a
      // forger corrupts every signature it makes.
      sim::AdversaryRole role = plan->role(static_cast<std::uint32_t>(i));
      if (role == sim::AdversaryRole::Blackhole) mw_config.scheme = "blackhole";
      if (role == sim::AdversaryRole::Forger) mw_config.forge_signatures = true;
    }
    fleet.nodes.push_back(std::make_unique<mw::SosNode>(
        sched, net.endpoint(static_cast<sim::PeerId>(i)), std::move(*creds), mw_config));
    if (verify_memo != nullptr) fleet.nodes.back()->set_verify_memo(verify_memo);
    fleet.apps.push_back(std::make_unique<alleyoop::App>(*fleet.nodes.back(), &fleet.cloud));
  }
}

std::map<pki::UserId, std::set<pki::UserId>> wire_follows(Fleet& fleet,
                                                          const graph::Digraph& social) {
  std::map<pki::UserId, std::set<pki::UserId>> follows;
  for (auto [i, j] : social.edges()) {
    fleet.apps[i]->follow(fleet.nodes[j]->user_id());
    follows[fleet.nodes[i]->user_id()].insert(fleet.nodes[j]->user_id());
  }
  return follows;
}

std::vector<std::vector<TimelineEvent>> build_timelines(const ScenarioConfig& config,
                                                        util::Rng& workload_rng,
                                                        const sim::FaultPlan* plan) {
  const double horizon = util::days(config.days);
  std::vector<std::vector<TimelineEvent>> timelines(config.nodes);
  for (std::size_t i = 0; i < config.nodes; ++i) {
    std::vector<TimelineEvent>& tl = timelines[i];
    const std::uint32_t node = static_cast<std::uint32_t>(i);
    std::vector<util::SimTime> posts = posting_times(config, workload_rng);
    for (std::size_t k = 0; k < posts.size(); ++k) {
      if (plan != nullptr && plan->node_down(node, posts[k])) continue;
      tl.push_back({posts[k], TimelineEvent::Kind::Post, static_cast<int>(k) + 1, nullptr});
    }
    if (plan != nullptr) {
      std::vector<util::SimTime> floods = plan->flood_times(node, horizon);
      for (std::size_t k = 0; k < floods.size(); ++k) {
        tl.push_back({floods[k], TimelineEvent::Kind::Flood, static_cast<int>(k) + 1, nullptr});
      }
      for (const sim::NodeChurnEvent& c : plan->churn_for(node)) {
        if (c.up_at < horizon) tl.push_back({c.up_at, TimelineEvent::Kind::Reboot, 0, &c});
      }
      // Stable sort: same-instant ties keep insertion order (Post < Flood <
      // Reboot), the tie-break both engines rely on.
      std::stable_sort(tl.begin(), tl.end(), [](const TimelineEvent& a, const TimelineEvent& b) {
        return a.t < b.t;
      });
    }
  }
  return timelines;
}

void add_stats(mw::NodeStats& a, const mw::NodeStats& b) {
  a.sessions_established += b.sessions_established;
  a.sessions_lost += b.sessions_lost;
  a.full_handshakes += b.full_handshakes;
  a.sessions_resumed += b.sessions_resumed;
  a.resume_attempts += b.resume_attempts;
  a.resume_rejected += b.resume_rejected;
  a.ecdh_ops += b.ecdh_ops;
  a.handshake_cert_rejected += b.handshake_cert_rejected;
  a.handshake_sig_rejected += b.handshake_sig_rejected;
  a.frames_sent += b.frames_sent;
  a.frames_received += b.frames_received;
  a.decrypt_failures += b.decrypt_failures;
  a.malformed_frames += b.malformed_frames;
  a.bundles_sent += b.bundles_sent;
  a.bundles_received += b.bundles_received;
  a.bundle_sig_rejected += b.bundle_sig_rejected;
  a.bundle_cert_rejected += b.bundle_cert_rejected;
  a.bundle_sig_cache_hits += b.bundle_sig_cache_hits;
  a.bundle_sig_cache_misses += b.bundle_sig_cache_misses;
  a.bundle_batch_verifies += b.bundle_batch_verifies;
  a.bundle_batch_fallbacks += b.bundle_batch_fallbacks;
  a.duplicates_ignored += b.duplicates_ignored;
  a.bundles_carried += b.bundles_carried;
  a.deliveries += b.deliveries;
  a.transfers_interrupted += b.transfers_interrupted;
  a.published += b.published;
  a.reboots += b.reboots;
}

}  // namespace detail

graph::Digraph scenario_social_graph(const ScenarioConfig& config) {
  util::Rng rng(config.seed);
  util::Rng mobility_rng = rng.fork();  // consumed first by run_scenario
  (void)mobility_rng;
  return detail::build_social_graph(config, rng);
}

std::shared_ptr<const ScenarioWorld> record_world(const ScenarioConfig& config) {
  sim::Scheduler sched;
  util::Rng rng(config.seed);
  double horizon = util::days(config.days);
  auto mobility = detail::build_mobility(config, rng);

  sim::EncounterDetector detector(sched, *mobility, config.radio.range_m,
                                  config.encounter_tick_s);
  sim::TraceRecorder recorder(sched);
  detector.on_contact_start = [&](std::size_t a, std::size_t b) {
    recorder.contact_start(static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(b));
  };
  detector.on_contact_end = [&](std::size_t a, std::size_t b) {
    recorder.contact_end(static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(b));
  };
  detector.start(horizon);
  sched.run_until(horizon);
  return std::make_shared<ScenarioWorld>(
      ScenarioWorld{sim::TrajectoryMobility(std::move(*mobility)), recorder.finish()});
}

ScenarioResult run_scenario(const ScenarioConfig& config, const ScenarioWorld* world,
                            const ReplayOptions& replay) {
  if (config.faults.reshapes_trace() && world == nullptr) {
    // Trace-reshaping faults (churn/partitions/disconnect windows) are a
    // pure transformation of a recorded contact trace — that is what makes
    // them engine-invariant — so a live run records its world on the fly
    // and replays it.
    std::shared_ptr<const ScenarioWorld> recorded = record_world(config);
    return run_scenario(config, recorded.get(), replay);
  }
  if (world != nullptr && (replay.partition || replay.subepisode_jobs > 0)) {
    return replay_scenario_episodes(config, *world, replay);
  }

  sim::Scheduler sched;
  util::Rng rng(config.seed);
  double horizon = util::days(config.days);

  // Compiled fault plan; absent (the common case) every fault hook below
  // is skipped and the engine is bit-identical to the pre-fault one.
  std::optional<sim::FaultPlan> fault_plan;
  if (config.faults.any()) fault_plan.emplace(config.faults, config.seed, config.nodes);
  const sim::FaultPlan* plan = fault_plan ? &*fault_plan : nullptr;

  // --- mobility + radio ----------------------------------------------------
  std::unique_ptr<sim::TrajectoryMobility> owned_mobility;
  const sim::MobilityModel* mobility = nullptr;
  if (world) {
    // Replay mode: positions come from the recorded trajectories; consume
    // the mobility fork anyway to keep the downstream RNG streams aligned.
    util::Rng discard = rng.fork();
    (void)discard;
    mobility = &world->mobility;
  } else {
    owned_mobility = detail::build_mobility(config, rng);
    mobility = owned_mobility.get();
  }

  sim::MpcNetwork net(sched, config.nodes, config.radio);
  if (plan != nullptr) net.set_fault_plan(plan);
  auto range_on = [&net](std::uint32_t a, std::uint32_t b) {
    net.set_in_range(static_cast<sim::PeerId>(a), static_cast<sim::PeerId>(b), true);
  };
  auto range_off = [&net](std::uint32_t a, std::uint32_t b) {
    net.set_in_range(static_cast<sim::PeerId>(a), static_cast<sim::PeerId>(b), false);
  };
  std::optional<sim::EncounterDetector> detector;
  std::optional<sim::TracePlayer> player;
  std::uint64_t contact_count = 0;
  if (world) {
    sim::ContactTrace trace = world->trace;
    if (plan != nullptr && plan->reshapes_trace()) trace = plan->apply(world->trace);
    contact_count = trace.size();
    player.emplace(sched, std::move(trace));
    player->on_contact_start = range_on;
    player->on_contact_end = range_off;
    player->start();
  } else {
    detector.emplace(sched, *mobility, config.radio.range_m, config.encounter_tick_s);
    detector->on_contact_start = [&](std::size_t a, std::size_t b) {
      range_on(static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(b));
    };
    detector->on_contact_end = [&](std::size_t a, std::size_t b) {
      range_off(static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(b));
    };
    detector->start(horizon);
  }

  // --- users: Fig 2a bootstrap, SOS node, AlleyOop app ---------------------
  ScenarioResult result;
  MetricsOracle& oracle = result.oracle;

  // Replay runs share one memo of signature verdicts across all nodes: the
  // verdict is a pure function of (key, message, signature), so each
  // distinct triple pays the curve math once per run instead of once per
  // carrying node. Counters and metrics are unchanged. A caller-owned memo
  // (replay.memo) widens the scope to every variant of a sweep cell.
  std::optional<crypto::VerifyMemo> local_memo;
  crypto::VerifyMemo* verify_memo = nullptr;
  if (world != nullptr && replay.share_verify_memo) {
    verify_memo = replay.memo != nullptr ? replay.memo : &local_memo.emplace();
  }

  detail::Fleet fleet;
  detail::build_fleet(fleet, config, sched, net, verify_memo, plan);
  auto& nodes = fleet.nodes;
  auto& apps = fleet.apps;

  // --- social graph (subscriptions) -----------------------------------------
  graph::Digraph social = detail::build_social_graph(config, rng);
  result.social = social;
  oracle.set_subscriptions(detail::wire_follows(fleet, social));

  // --- instrumentation --------------------------------------------------------
  for (std::size_t i = 0; i < config.nodes; ++i) {
    mw::SosNode& node = *nodes[i];
    std::size_t idx = i;
    node.on_carry = [&, idx](const bundle::Bundle& b) {
      oracle.record_carry(
          {b.id(), nodes[idx]->user_id(), sched.now(), mobility->position(idx, sched.now())});
    };
    node.on_data = [&, idx](const bundle::Bundle& b, const pki::Certificate&) {
      oracle.record_delivery({b.id(), nodes[idx]->user_id(), sched.now(), b.hop_count,
                              mobility->position(idx, sched.now())});
    };
    node.start();
  }

  // --- workload: posts + adversarial junk + reboots -------------------------
  // One merged chronological timeline per node, scheduled strictly in list
  // order (the same order the episode engine uses), so same-timestamp ties
  // and boundary clamps resolve identically in both engines.
  util::Rng workload_rng = rng.fork();
  auto timelines = detail::build_timelines(config, workload_rng, plan);
  for (std::size_t i = 0; i < config.nodes; ++i) {
    std::size_t idx = i;
    for (const detail::TimelineEvent& ev : timelines[i]) {
      switch (ev.kind) {
        case detail::TimelineEvent::Kind::Post:
          sched.schedule_at(ev.t, [&, idx, k = ev.k] {
            auto post = apps[idx]->post("post #" + std::to_string(k) + " by user" +
                                        std::to_string(idx));
            oracle.record_post({{nodes[idx]->user_id(), post.msg_num},
                                nodes[idx]->user_id(),
                                sched.now(),
                                mobility->position(idx, sched.now())});
          });
          break;
        case detail::TimelineEvent::Kind::Flood:
          // Junk publish straight through the middleware (no app, and never
          // recorded as a post: the oracle's delivered-of-posted metrics
          // must count only the honest workload).
          sched.schedule_at(ev.t, [&, idx, k = ev.k] {
            nodes[idx]->publish(util::to_bytes("junk #" + std::to_string(k) + " from user" +
                                               std::to_string(idx)));
          });
          break;
        case detail::TimelineEvent::Kind::Reboot:
          sched.schedule_at(ev.t, [&, idx, churn = ev.churn] {
            nodes[idx]->reboot(churn->lose_store, churn->lose_resume_cache);
          });
          break;
      }
    }
  }

  // --- run ------------------------------------------------------------------------
  sched.run_until(horizon);

  // --- collect ----------------------------------------------------------------------
  for (const auto& node : nodes) detail::add_stats(result.totals, node->stats());
  result.contacts = world ? contact_count : detector->total_contacts_seen();
  result.wire_frames = net.frames_sent();
  result.wire_bytes = net.bytes_sent();
  result.connections = net.connections_established();
  result.connections_failed = net.connections_failed();
  result.frames_lost = net.frames_lost();
  result.frames_dropped_fault = net.frames_dropped_fault();
  result.simulated_days = config.days;
  return result;
}

}  // namespace sos::deploy
