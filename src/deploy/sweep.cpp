#include "deploy/sweep.hpp"

#include "crypto/verify_memo.hpp"
#include "deploy/replay.hpp"
#include "sim/episode.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace sos::deploy {

namespace {
struct WorkItem {
  std::size_t cell = 0;
  std::size_t variant = 0;
};

ScenarioConfig variant_config(const SweepCell& cell, const ScenarioVariant& v,
                              const SweepOptions& opts, std::size_t cell_index) {
  ScenarioConfig config = cell.config;
  if (opts.derive_seeds) config.seed = util::derive_seed(opts.base_seed, cell_index);
  config.scheme = v.scheme;
  config.resume_lifetime_s = v.resume_lifetime_s;
  config.verify_batch_window_s = v.verify_batch_window_s;
  config.verify_batch_adaptive = v.verify_batch_adaptive;
  return config;
}
}  // namespace

ScenarioConfig SweepRunner::cell_config(const SweepCell& cell, std::size_t cell_index,
                                        std::size_t variant_index) const {
  return variant_config(cell, cell.variants.at(variant_index), opts_, cell_index);
}

SweepRunner::SweepRunner(SweepOptions opts) : opts_(opts) {
  if (opts_.jobs == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    opts_.jobs = hw > 0 ? hw : 1;
  }
}

std::vector<CellResult> SweepRunner::run(const std::vector<SweepCell>& cells) const {
  std::vector<WorkItem> items;
  for (std::size_t c = 0; c < cells.size(); ++c)
    for (std::size_t v = 0; v < cells[c].variants.size(); ++v) items.push_back({c, v});

  std::vector<CellResult> results(items.size());
  // Worlds are recorded lazily, once per cell, by whichever worker reaches
  // the cell first; call_once blocks that cell's other variants (not other
  // cells) until the recording is done. The same pass partitions the trace
  // (for the per-cell parallelism report) and mints the cell's sweep-wide
  // verify memo.
  std::unique_ptr<std::once_flag[]> world_once(new std::once_flag[cells.size()]);
  std::vector<std::shared_ptr<const ScenarioWorld>> worlds(cells.size());
  std::vector<std::unique_ptr<crypto::VerifyMemo>> memos(cells.size());
  std::vector<double> parallelism(cells.size(), 0.0);
  std::vector<std::size_t> episode_counts(cells.size(), 0);

  // Nested parallelism: cell workers and episode workers draw on one token
  // pool sized to the job count. Tokens not consumed by cell workers (and
  // tokens cell workers return as the grid drains) are borrowed by the
  // episode engines of still-running cells, so the heavy cells inherit the
  // threads their finished siblings no longer need.
  std::size_t cell_workers =
      (opts_.jobs <= 1 || items.size() <= 1) ? 1 : std::min(opts_.jobs, items.size());
  WorkerBudget budget(opts_.jobs > cell_workers ? opts_.jobs - cell_workers : 0);
  ReplayOptions replay;
  replay.partition = opts_.episode_jobs > 0;
  replay.jobs = opts_.episode_jobs > 0 ? opts_.episode_jobs : 1;
  replay.budget = opts_.episode_jobs > 0 ? &budget : nullptr;

  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (std::size_t i = next.fetch_add(1); i < items.size(); i = next.fetch_add(1)) {
      const WorkItem& item = items[i];
      const SweepCell& cell = cells[item.cell];
      const ScenarioVariant& variant = cell.variants[item.variant];
      ScenarioConfig config = variant_config(cell, variant, opts_, item.cell);

      std::shared_ptr<const ScenarioWorld> world;
      if (opts_.reuse_traces) {
        std::call_once(world_once[item.cell], [&] {
          worlds[item.cell] = record_world(config);
          sim::EpisodeGraph graph = sim::EpisodeGraph::partition(
              worlds[item.cell]->trace, config.nodes, util::days(config.days));
          parallelism[item.cell] = graph.parallelism();
          episode_counts[item.cell] = graph.contact_episode_count();
          if (opts_.cell_verify_memo) {
            memos[item.cell] = std::make_unique<crypto::VerifyMemo>();
          }
        });
        world = worlds[item.cell];
      }

      CellResult& out = results[i];
      ReplayOptions item_replay = replay;
      item_replay.memo = memos[item.cell].get();  // nullptr = run-local scope
      auto t0 = std::chrono::steady_clock::now();
      out.result = run_scenario(config, world.get(), item_replay);
      out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      out.cell = item.cell;
      out.variant = item.variant;
      const std::string& vlabel = variant.label.empty() ? variant.scheme : variant.label;
      out.label = cell.label.empty() ? vlabel : cell.label + "/" + vlabel;
      out.config = std::move(config);
      out.replayed = world != nullptr;
      out.episode_parallelism = parallelism[item.cell];
      out.episodes = episode_counts[item.cell];
    }
    // This cell worker is done: hand its thread token to the episode
    // engines of cells still running.
    budget.release(1);
  };

  if (cell_workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(cell_workers);
    for (std::size_t i = 0; i < cell_workers; ++i) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  return results;
}

namespace {
/// Strict numeric parse; a typo must not silently become 0 (= saturate
/// every core). Invalid input warns and keeps the current value.
std::size_t parse_jobs(const char* text, std::size_t fallback, const char* source) {
  char* end = nullptr;
  long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || v < 0) {
    std::fprintf(stderr, "warning: ignoring non-numeric %s value '%s'\n", source, text);
    return fallback;
  }
  return static_cast<std::size_t>(v);
}
}  // namespace

SweepOptions sweep_options_from_args(int argc, char** argv) {
  SweepOptions opts;
  if (const char* env = std::getenv("SOS_SWEEP_JOBS")) {
    opts.jobs = parse_jobs(env, opts.jobs, "SOS_SWEEP_JOBS");
  }
  if (const char* env = std::getenv("SOS_EPISODE_JOBS")) {
    opts.episode_jobs = parse_jobs(env, opts.episode_jobs, "SOS_EPISODE_JOBS");
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--jobs") == 0 || std::strcmp(arg, "-j") == 0) {
      if (i + 1 < argc) {
        opts.jobs = parse_jobs(argv[++i], opts.jobs, "--jobs");
      } else {
        std::fprintf(stderr, "warning: %s needs a value; ignoring\n", arg);
      }
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      opts.jobs = parse_jobs(arg + 7, opts.jobs, "--jobs");
    } else if (std::strcmp(arg, "--episode-jobs") == 0) {
      if (i + 1 < argc) {
        opts.episode_jobs = parse_jobs(argv[++i], opts.episode_jobs, "--episode-jobs");
      } else {
        std::fprintf(stderr, "warning: %s needs a value; ignoring\n", arg);
      }
    } else if (std::strncmp(arg, "--episode-jobs=", 15) == 0) {
      opts.episode_jobs = parse_jobs(arg + 15, opts.episode_jobs, "--episode-jobs");
    } else if (std::strncmp(arg, "-j", 2) == 0 && arg[2] != '\0') {
      opts.jobs = parse_jobs(arg + 2, opts.jobs, "-j");
    }
  }
  return opts;
}

std::vector<SweepCell> density_ablation_grid(double days) {
  auto cell = [days](std::size_t nodes, double w_m, double h_m) {
    SweepCell c;
    c.label = std::to_string(nodes) + "n";
    c.config = gainesville_config("interest");
    c.config.nodes = nodes;
    c.config.area_w_m = w_m;
    c.config.area_h_m = h_m;
    c.config.days = days;
    // Keep per-user posting volume constant as the population grows.
    c.config.total_posts_target = 26.0 * static_cast<double>(nodes);
    c.variants = {{"interest", "interest", 86400.0, 0.0}};
    return c;
  };
  std::vector<SweepCell> grid = {
      cell(10, 11000, 8000),   // the deployment: 0.11 nodes/km^2
      cell(20, 11000, 8000),
      cell(50, 11000, 8000),
      cell(20, 4000, 4000),    // mid density
      cell(50, 2000, 2000),    // "typical DTN sim": 12.5 nodes/km^2
      cell(100, 2000, 2000),
  };
  // Community-structured cell (appended so the other cells keep their
  // derived seeds): four disjoint 12-node communities with their own
  // hotspot pools and home clusters, 10% bridge commuters. Spatially this
  // is four sparse villages rather than one dense city, and causally it is
  // the regime where the episode partitioner actually decomposes the day —
  // the per-cell parallelism column should read >= 2 here and ~1 on the
  // single-hotspot cells above (pinned by tests/episode_test.cpp).
  SweepCell comm = cell(48, 6000, 6000);
  comm.label = "48n-4c";
  comm.config.communities = 4;
  comm.config.bridge_node_frac = 0.10;
  // Household-separated homes: an overnight pair inside radio range chains
  // the community's days into one causal span and defeats the decomposition.
  comm.config.mobility.home_min_separation_m = 150.0;
  grid.push_back(std::move(comm));
  return grid;
}

}  // namespace sos::deploy
