#include "deploy/sweep.hpp"

#include "crypto/verify_memo.hpp"
#include "deploy/replay.hpp"
#include "sim/episode.hpp"
#include "sim/subepisode.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace sos::deploy {

namespace {
struct WorkItem {
  std::size_t cell = 0;
  std::size_t variant = 0;
};

ScenarioConfig variant_config(const SweepCell& cell, const ScenarioVariant& v,
                              const SweepOptions& opts, std::size_t cell_index) {
  ScenarioConfig config = cell.config;
  if (opts.derive_seeds) config.seed = util::derive_seed(opts.base_seed, cell_index);
  config.scheme = v.scheme;
  config.resume_lifetime_s = v.resume_lifetime_s;
  config.verify_batch_window_s = v.verify_batch_window_s;
  config.verify_batch_adaptive = v.verify_batch_adaptive;
  config.verify_signatures = v.verify_signatures;
  if (v.faults) config.faults = *v.faults;
  return config;
}
}  // namespace

ScenarioConfig SweepRunner::cell_config(const SweepCell& cell, std::size_t cell_index,
                                        std::size_t variant_index) const {
  return variant_config(cell, cell.variants.at(variant_index), opts_, cell_index);
}

SweepRunner::SweepRunner(SweepOptions opts) : opts_(opts) {
  if (opts_.jobs == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    opts_.jobs = hw > 0 ? hw : 1;
  }
}

std::vector<CellResult> SweepRunner::run(const std::vector<SweepCell>& cells) const {
  // Validate every (cell, variant) fault plan before running anything: an
  // insane grid (overlapping churn, adversary fraction >= 1, windows
  // outside the horizon) fails fast with every problem listed, instead of
  // burning a grid's worth of CPU on a nonsense cell.
  std::string problems;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    for (std::size_t v = 0; v < cells[c].variants.size(); ++v) {
      ScenarioConfig config = variant_config(cells[c], cells[c].variants[v], opts_, c);
      for (const std::string& p :
           config.faults.validate(util::days(config.days), config.nodes)) {
        const std::string& vlabel = cells[c].variants[v].label.empty()
                                        ? cells[c].variants[v].scheme
                                        : cells[c].variants[v].label;
        problems += "cell " + std::to_string(c) + " (" +
                    (cells[c].label.empty() ? vlabel : cells[c].label + "/" + vlabel) +
                    "): " + p + "\n";
      }
    }
  }
  if (!problems.empty()) {
    throw std::invalid_argument("invalid sweep fault plan(s):\n" + problems);
  }

  std::vector<WorkItem> items;
  for (std::size_t c = 0; c < cells.size(); ++c)
    for (std::size_t v = 0; v < cells[c].variants.size(); ++v) items.push_back({c, v});

  std::vector<CellResult> results(items.size());
  // Concurrency audit (why nothing here is SOS_GUARDED_BY): every shared
  // vector is sliced so each slot has exactly one writer — results[i] by the
  // worker that claimed item i off the atomic counter, worlds/parallelism/
  // episode_counts/memos[cell] by the call_once winner (losers block until
  // the write is published by call_once's internal fence). Readers see those
  // writes through call_once (same cell) or thread join (the merge below).
  // The only mutexes on this path live inside VerifyMemo and the episode
  // engine's KahnQueue, both annotated at their definitions.
  // Worlds are recorded lazily, once per cell, by whichever worker reaches
  // the cell first; call_once blocks that cell's other variants (not other
  // cells) until the recording is done. The same pass partitions the trace
  // (for the per-cell parallelism report) and mints the cell's sweep-wide
  // verify memo.
  std::unique_ptr<std::once_flag[]> world_once(new std::once_flag[cells.size()]);
  std::vector<std::shared_ptr<const ScenarioWorld>> worlds(cells.size());
  std::vector<std::unique_ptr<crypto::VerifyMemo>> memos(cells.size());
  std::vector<double> parallelism(cells.size(), 0.0);
  std::vector<std::size_t> episode_counts(cells.size(), 0);
  std::vector<double> strand_parallelism(cells.size(), 0.0);
  std::vector<std::size_t> strand_width(cells.size(), 0);

  // Nested parallelism: cell workers and episode workers draw on one token
  // pool sized to the job count. Tokens not consumed by cell workers (and
  // tokens cell workers return as the grid drains) are borrowed by the
  // episode engines of still-running cells, so the heavy cells inherit the
  // threads their finished siblings no longer need.
  std::size_t cell_workers =
      (opts_.jobs <= 1 || items.size() <= 1) ? 1 : std::min(opts_.jobs, items.size());
  WorkerBudget budget(opts_.jobs > cell_workers ? opts_.jobs - cell_workers : 0);
  const bool partitioned = opts_.episode_jobs > 0 || opts_.subepisode_jobs > 0;
  ReplayOptions replay;
  replay.partition = opts_.episode_jobs > 0;
  replay.jobs = opts_.episode_jobs > 0 ? opts_.episode_jobs : 1;
  replay.subepisode_jobs = opts_.subepisode_jobs;  // > 0 selects the strand engine
  replay.budget = partitioned ? &budget : nullptr;

  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (std::size_t i = next.fetch_add(1); i < items.size(); i = next.fetch_add(1)) {
      const WorkItem& item = items[i];
      const SweepCell& cell = cells[item.cell];
      const ScenarioVariant& variant = cell.variants[item.variant];
      ScenarioConfig config = variant_config(cell, variant, opts_, item.cell);

      std::shared_ptr<const ScenarioWorld> world;
      if (opts_.reuse_traces) {
        std::call_once(world_once[item.cell], [&] {
          worlds[item.cell] = record_world(config);
          sim::EpisodeGraph graph = sim::EpisodeGraph::partition(
              worlds[item.cell]->trace, config.nodes, util::days(config.days));
          parallelism[item.cell] = graph.parallelism();
          episode_counts[item.cell] = graph.contact_episode_count();
          sim::ContactDag dag = sim::ContactDag::partition(
              worlds[item.cell]->trace, config.nodes, util::days(config.days));
          strand_parallelism[item.cell] = dag.parallelism();
          strand_width[item.cell] = dag.width();
          if (opts_.cell_verify_memo) {
            memos[item.cell] = std::make_unique<crypto::VerifyMemo>();
          }
        });
        world = worlds[item.cell];
      }

      CellResult& out = results[i];
      ReplayOptions item_replay = replay;
      item_replay.memo = memos[item.cell].get();  // nullptr = run-local scope
      auto t0 = std::chrono::steady_clock::now();
      out.result = run_scenario(config, world.get(), item_replay);
      out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      out.cell = item.cell;
      out.variant = item.variant;
      const std::string& vlabel = variant.label.empty() ? variant.scheme : variant.label;
      out.label = cell.label.empty() ? vlabel : cell.label + "/" + vlabel;
      out.config = std::move(config);
      out.replayed = world != nullptr;
      out.episode_parallelism = parallelism[item.cell];
      out.episodes = episode_counts[item.cell];
      out.subepisode_parallelism = strand_parallelism[item.cell];
      out.subepisode_width = strand_width[item.cell];
    }
    // This cell worker is done: hand its thread token to the episode
    // engines of cells still running.
    budget.release(1);
  };

  if (cell_workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(cell_workers);
    for (std::size_t i = 0; i < cell_workers; ++i) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  return results;
}

namespace {
/// Strict numeric parse; a typo must not silently become 0 (= saturate
/// every core). Invalid input warns and keeps the current value.
std::size_t parse_jobs(const char* text, std::size_t fallback, const char* source) {
  char* end = nullptr;
  long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || v < 0) {
    std::fprintf(stderr, "warning: ignoring non-numeric %s value '%s'\n", source, text);
    return fallback;
  }
  return static_cast<std::size_t>(v);
}
}  // namespace

SweepOptions sweep_options_from_args(int argc, char** argv) {
  SweepOptions opts;
  if (const char* env = std::getenv("SOS_SWEEP_JOBS")) {
    opts.jobs = parse_jobs(env, opts.jobs, "SOS_SWEEP_JOBS");
  }
  if (const char* env = std::getenv("SOS_EPISODE_JOBS")) {
    opts.episode_jobs = parse_jobs(env, opts.episode_jobs, "SOS_EPISODE_JOBS");
  }
  if (const char* env = std::getenv("SOS_SUBEPISODE_JOBS")) {
    opts.subepisode_jobs = parse_jobs(env, opts.subepisode_jobs, "SOS_SUBEPISODE_JOBS");
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--jobs") == 0 || std::strcmp(arg, "-j") == 0) {
      if (i + 1 < argc) {
        opts.jobs = parse_jobs(argv[++i], opts.jobs, "--jobs");
      } else {
        std::fprintf(stderr, "warning: %s needs a value; ignoring\n", arg);
      }
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      opts.jobs = parse_jobs(arg + 7, opts.jobs, "--jobs");
    } else if (std::strcmp(arg, "--episode-jobs") == 0) {
      if (i + 1 < argc) {
        opts.episode_jobs = parse_jobs(argv[++i], opts.episode_jobs, "--episode-jobs");
      } else {
        std::fprintf(stderr, "warning: %s needs a value; ignoring\n", arg);
      }
    } else if (std::strncmp(arg, "--episode-jobs=", 15) == 0) {
      opts.episode_jobs = parse_jobs(arg + 15, opts.episode_jobs, "--episode-jobs");
    } else if (std::strcmp(arg, "--subepisode-jobs") == 0) {
      if (i + 1 < argc) {
        opts.subepisode_jobs =
            parse_jobs(argv[++i], opts.subepisode_jobs, "--subepisode-jobs");
      } else {
        std::fprintf(stderr, "warning: %s needs a value; ignoring\n", arg);
      }
    } else if (std::strncmp(arg, "--subepisode-jobs=", 18) == 0) {
      opts.subepisode_jobs = parse_jobs(arg + 18, opts.subepisode_jobs, "--subepisode-jobs");
    } else if (std::strncmp(arg, "-j", 2) == 0 && arg[2] != '\0') {
      opts.jobs = parse_jobs(arg + 2, opts.jobs, "-j");
    }
  }
  return opts;
}

std::vector<SweepCell> density_ablation_grid(double days) {
  auto cell = [days](std::size_t nodes, double w_m, double h_m) {
    SweepCell c;
    c.label = std::to_string(nodes) + "n";
    c.config = gainesville_config("interest");
    c.config.nodes = nodes;
    c.config.area_w_m = w_m;
    c.config.area_h_m = h_m;
    c.config.days = days;
    // Keep per-user posting volume constant as the population grows.
    c.config.total_posts_target = 26.0 * static_cast<double>(nodes);
    c.variants = {{"interest", "interest", 86400.0, 0.0}};
    return c;
  };
  std::vector<SweepCell> grid = {
      cell(10, 11000, 8000),   // the deployment: 0.11 nodes/km^2
      cell(20, 11000, 8000),
      cell(50, 11000, 8000),
      cell(20, 4000, 4000),    // mid density
      cell(50, 2000, 2000),    // "typical DTN sim": 12.5 nodes/km^2
      cell(100, 2000, 2000),
  };
  // Community-structured cell (appended so the other cells keep their
  // derived seeds): four disjoint 12-node communities with their own
  // hotspot pools and home clusters, 10% bridge commuters. Spatially this
  // is four sparse villages rather than one dense city, and causally it is
  // the regime where the episode partitioner actually decomposes the day —
  // the per-cell parallelism column should read >= 2 here and ~1 on the
  // single-hotspot cells above (pinned by tests/episode_test.cpp).
  SweepCell comm = cell(48, 6000, 6000);
  comm.label = "48n-4c";
  comm.config.communities = 4;
  comm.config.bridge_node_frac = 0.10;
  // Household-separated homes: an overnight pair inside radio range chains
  // the community's days into one causal span and defeats the decomposition.
  comm.config.mobility.home_min_separation_m = 150.0;
  grid.push_back(std::move(comm));
  return grid;
}

std::vector<SweepCell> disaster_pack_grid(double days) {
  const double horizon = util::days(days);
  // Signed vs unsigned epidemic over the same faulted world. Unsigned
  // ablates bundle verification only — handshakes stay authenticated — so
  // the delta isolates what signature checking buys under attack.
  ScenarioVariant signed_v;
  signed_v.label = "signed";
  signed_v.scheme = "epidemic";
  ScenarioVariant unsigned_v = signed_v;
  unsigned_v.label = "unsigned";
  unsigned_v.verify_signatures = false;

  auto cell = [&](const std::string& label) {
    SweepCell c;
    c.label = label;
    c.config = gainesville_config("epidemic");
    c.config.nodes = 24;
    c.config.area_w_m = 2000;
    c.config.area_h_m = 2000;
    c.config.days = days;
    c.config.total_posts_target = 8.0 * 24.0 * days;  // ~8 posts/user/day
    c.variants = {signed_v, unsigned_v};
    return c;
  };

  std::vector<SweepCell> grid;
  grid.push_back(cell("calm"));

  // Lossy, asymmetric links: the damaged-antenna pathology — one direction
  // drops 5x more than the other.
  SweepCell lossy = cell("lossy");
  lossy.config.faults.link.loss_p = 0.05;
  lossy.config.faults.link.loss_p_reverse = 0.25;
  lossy.config.faults.link.jitter_max_s = 0.02;
  grid.push_back(std::move(lossy));

  // Aftershock storm: baseline jitter, two congestion spikes, one
  // radio-dead sweep mid-horizon.
  SweepCell storm = cell("storm");
  storm.config.faults.link.loss_p = 0.10;
  storm.config.faults.link.jitter_max_s = 0.05;
  storm.config.faults.link.jitter_spikes = {{0.25 * horizon, 0.30 * horizon},
                                            {0.60 * horizon, 0.70 * horizon}};
  storm.config.faults.link.jitter_spike_max_s = 0.5;
  storm.config.faults.link.disconnects = {{0.45 * horizon, 0.50 * horizon}};
  grid.push_back(std::move(storm));

  // Battery churn: a third of the fleet dies and power-cycles; most reboots
  // lose the store, one also loses the session-resume cache.
  SweepCell churn = cell("churn");
  for (std::uint32_t n : {1u, 5u, 9u, 13u, 17u, 21u}) {
    sim::NodeChurnEvent ev;
    ev.node = n;
    ev.down_at = (0.20 + 0.08 * (n % 4)) * horizon;
    ev.up_at = ev.down_at + 0.15 * horizon;
    ev.lose_store = true;
    ev.lose_resume_cache = (n == 13);
    churn.config.faults.churn.push_back(ev);
  }
  grid.push_back(std::move(churn));

  // Quake: the area splits into two isolated halves for a quarter of the
  // horizon, then heals.
  SweepCell quake = cell("quake");
  quake.config.faults.partitions = {{{0.30 * horizon, 0.55 * horizon}, 2}};
  grid.push_back(std::move(quake));

  // Routing-layer adversaries: blackhole sinks plus grayhole forwarders
  // whose radios silently eat half their outbound frames.
  SweepCell blackhole = cell("blackhole");
  blackhole.config.faults.adversaries.blackhole_frac = 0.15;
  blackhole.config.faults.adversaries.grayhole_frac = 0.15;
  blackhole.config.faults.adversaries.grayhole_forward_p = 0.5;
  grid.push_back(std::move(blackhole));

  // Forged-signature storm: forgers flood junk bundles whose signatures
  // never verify. Signed variants pay pure rejection load; unsigned
  // variants spread the junk for free.
  SweepCell sigstorm = cell("sigstorm");
  sigstorm.config.faults.adversaries.forger_frac = 0.20;
  sigstorm.config.faults.adversaries.flood_posts_per_hour = 30.0;
  grid.push_back(std::move(sigstorm));

  // Siege: blackhole sinks and a forged-signature storm at once — the
  // headline signed-vs-unsigned ablation condition. Signed deployments pay
  // verification to reject the storm; unsigned deployments carry it into
  // their already-blackholed capacity.
  SweepCell siege = cell("siege");
  siege.config.faults.adversaries.blackhole_frac = 0.15;
  siege.config.faults.adversaries.forger_frac = 0.20;
  siege.config.faults.adversaries.flood_posts_per_hour = 30.0;
  grid.push_back(std::move(siege));

  return grid;
}

}  // namespace sos::deploy
