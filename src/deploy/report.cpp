#include "deploy/report.hpp"

#include <cstdio>

namespace sos::deploy {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::set_row(std::size_t index, std::vector<std::string> cells) {
  if (index >= rows_.size()) rows_.resize(index + 1);
  rows_[index] = std::move(cells);
}

void Table::print() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("| ");
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      std::printf("%-*s | ", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  auto print_sep = [&] {
    std::printf("+");
    for (std::size_t c = 0; c < widths.size(); ++c) {
      for (std::size_t i = 0; i < widths[c] + 3; ++i) std::printf("-");
      std::printf("+");
    }
    std::printf("\n");
  };

  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_)
    if (!row.empty()) print_row(row);
  print_sep();
}

std::string fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string fmt_pct(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, v * 100.0);
  return buf;
}

std::vector<std::string> compare_row(const std::string& metric, double paper, double measured,
                                     int decimals) {
  return {metric, fmt(paper, decimals), fmt(measured, decimals)};
}

void print_heading(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

}  // namespace sos::deploy
