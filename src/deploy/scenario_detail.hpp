// Internal helpers shared by the two replay engines (single-scheduler in
// scenario.cpp, episode-partitioned in replay.cpp). Both must consume the
// scenario RNG streams in exactly the same order and assemble byte-identical
// workloads, so the pieces live here rather than being duplicated.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "alleyoop/app.hpp"
#include "crypto/verify_memo.hpp"
#include "deploy/scenario.hpp"
#include "mw/sos_node.hpp"
#include "sim/mobility.hpp"
#include "sim/multipeer.hpp"
#include "util/rng.hpp"

namespace sos::deploy::detail {

/// The per-run fleet: SOS nodes and their AlleyOop apps over one shared
/// cloud backend. Member order mirrors the declaration order the engines
/// always used (destruction: cloud, apps, nodes).
struct Fleet {
  std::vector<std::unique_ptr<mw::SosNode>> nodes;
  std::vector<std::unique_ptr<alleyoop::App>> apps;
  alleyoop::CloudService cloud;
};

/// Construct the fleet against the given substrate. Everything here —
/// device DRBG seed strings, signup order, SosConfig plumbing — is
/// determinism-critical and must be byte-identical for every replay
/// engine, which is why it lives in one place. `verify_memo` (optional)
/// is shared across all nodes; `plan` (optional) assigns adversarial
/// behavior per the plan's node roles (blackhole scheme, forged
/// signatures).
void build_fleet(Fleet& fleet, const ScenarioConfig& config, sim::Scheduler& sched,
                 sim::MpcNetwork& net, crypto::VerifyMemo* verify_memo,
                 const sim::FaultPlan* plan);

/// Apply the social graph's follow edges to the apps and return the
/// follower -> publishers map the metrics oracle consumes.
std::map<pki::UserId, std::set<pki::UserId>> wire_follows(Fleet& fleet,
                                                          const graph::Digraph& social);

/// Per-node posting times: Poisson within the daily waking window, scaled
/// so the expected total across nodes matches total_posts_target. Consumes
/// draws from `rng` (the shared workload stream) in node-call order.
std::vector<util::SimTime> posting_times(const ScenarioConfig& config, util::Rng& rng);

/// One entry of a node's merged workload timeline.
struct TimelineEvent {
  util::SimTime t = 0;
  enum class Kind { Post, Flood, Reboot } kind = Kind::Post;
  /// 1-based ordinal within the node's post (or flood) list; posts keep
  /// their unfaulted numbering so surviving posts match across ablations.
  int k = 0;
  const sim::NodeChurnEvent* churn = nullptr;  // Reboot only (plan-owned)
};

/// Per-node chronological timelines of workload posts, adversarial junk
/// publishes (flooder/forger roles), and reboot events (churn up_at). Both
/// replay engines schedule each node's timeline strictly in this order:
/// episode shards clamp pre-window events to their start while preserving
/// insertion order, so the single-scheduler relative order survives the
/// clamp only if both engines schedule from one merged list. Ties keep
/// Post < Flood < Reboot. Posts inside a down-window are omitted (a dead
/// phone cannot post); reboots at/after the horizon never fire. Consumes
/// the workload stream exactly as the pre-fault engines did. `plan` may be
/// null (plain posting timelines); otherwise it must outlive the result.
std::vector<std::vector<TimelineEvent>> build_timelines(const ScenarioConfig& config,
                                                        util::Rng& workload_rng,
                                                        const sim::FaultPlan* plan);

/// Generate the config's mobility trajectories. Consumes exactly one fork
/// of the scenario RNG regardless of mode so the graph/workload streams
/// stay identical between live and replay runs.
std::unique_ptr<sim::TrajectoryMobility> build_mobility(const ScenarioConfig& config,
                                                        util::Rng& rng);

/// Social graph selection. Forks the scenario RNG only in the sampled
/// branch, so override/Fig-4a configs leave the stream untouched.
graph::Digraph build_social_graph(const ScenarioConfig& config, util::Rng& rng);

/// a += b for every NodeStats counter (the per-run totals aggregation).
void add_stats(mw::NodeStats& a, const mw::NodeStats& b);

}  // namespace sos::deploy::detail
