// SweepRunner: the engine behind every scenario grid in the evaluation
// (Fig 4a-d, ablations). A sweep is a list of independent cells — one
// (mobility, density, workload) world each — times the scheme/middleware
// variants to run over that world. The runner owns what every bench driver
// used to reimplement serially:
//
//   * fan-out: cells x variants execute on a thread pool (--jobs N),
//   * seeding: each cell draws its RNG stream via splitmix64 from
//     (base seed, cell index), so metrics are bitwise identical at any
//     thread count and any completion order,
//   * record-once/replay-many: a cell's mobility + contact trace are
//     recorded once and every variant replays them through a TracePlayer
//     instead of re-running the EncounterDetector,
//   * aggregation: results come back in grid order, never completion order.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "deploy/scenario.hpp"

namespace sos::deploy {

/// One middleware/routing variant replayed over a cell's shared world.
/// Only fields that cannot change the recorded world are here by
/// construction — faults qualify because they are applied as a replay-time
/// transformation of the shared recorded trace, never by re-recording.
struct ScenarioVariant {
  std::string label;                      // defaults to the scheme name
  std::string scheme = "interest";
  double resume_lifetime_s = 86400.0;
  double verify_batch_window_s = 0.0;
  /// Flush queued verifications on session drop / store pressure instead
  /// of waiting out the window (ScenarioConfig::verify_batch_adaptive).
  bool verify_batch_adaptive = false;
  /// Bundle-signature verification on delivery/forwarding paths (the
  /// signed-vs-unsigned disaster ablation). Handshake authentication is
  /// never ablated.
  bool verify_signatures = true;
  /// Variant-level fault plan override; unset keeps the cell config's plan.
  /// Validated (with everything else) up front by SweepRunner::run.
  std::optional<sim::FaultPlanConfig> faults = std::nullopt;
};

/// One grid cell: a world/workload config plus the variants sharing it.
/// `config.scheme`/`resume`/`verify_batch` are overridden per variant;
/// `config.seed` is overridden by the runner's derived per-cell seed.
struct SweepCell {
  std::string label;
  ScenarioConfig config;
  std::vector<ScenarioVariant> variants{ScenarioVariant{}};
};

struct CellResult {
  std::size_t cell = 0;          // index into the input grid
  std::size_t variant = 0;       // index into that cell's variants
  std::string label;             // "<cell label>/<variant label>"
  ScenarioConfig config;         // as executed (derived seed filled in)
  ScenarioResult result;
  double wall_s = 0.0;
  bool replayed = false;         // ran from the recorded world
  /// Conservative episode-parallel speedup ceiling of the cell's recorded
  /// trace (sim::EpisodeGraph::parallelism(); 0 when no world was
  /// recorded). Reported per cell by the density benches so trace-shape
  /// regressions — a community cell collapsing back to one chain — are
  /// visible in the bench tables, not only from tests.
  double episode_parallelism = 0.0;
  std::size_t episodes = 0;      // contact episodes in that partition
  /// The same ceiling at contact-strand granularity
  /// (sim::ContactDag::parallelism()): always >= episode_parallelism, and
  /// the gap is exactly what --subepisode-jobs can exploit that
  /// --episode-jobs cannot.
  double subepisode_parallelism = 0.0;
  /// Max contact tasks concurrently open in sim time
  /// (sim::ContactDag::width()); the single-hotspot cells report width > 1
  /// even where episode parallelism sits at ~1.0.
  std::size_t subepisode_width = 0;
};

struct SweepOptions {
  /// Worker threads; 0 = hardware concurrency, 1 = fully serial.
  std::size_t jobs = 1;
  std::uint64_t base_seed = 42;
  /// Derive each cell's seed from (base_seed, cell index). Off, cells keep
  /// the seed already in their config — the figure-regeneration benches
  /// pin the calibrated Gainesville seed this way.
  bool derive_seeds = true;
  /// Record each cell's world once and replay it for every variant. Off,
  /// every variant regenerates mobility and re-runs live detection (the
  /// pre-sweep behavior; metrics may differ slightly from the replay path
  /// because replayed contact events are individually scheduled).
  bool reuse_traces = true;
  /// > 0: replay each cell on the episode-partitioned engine with this many
  /// episode-level workers per cell (metrics are bitwise identical either
  /// way). Cell- and episode-level workers share one token pool of `jobs`
  /// threads, so the sweep never runs more than `jobs` + episode_jobs - 1
  /// busy threads and usually far fewer. 0 = single-scheduler replay.
  std::size_t episode_jobs = 0;
  /// > 0: replay each cell on the sub-episode (contact-strand) engine with
  /// this many strand-level workers per cell instead (takes precedence over
  /// episode_jobs; metrics are bitwise identical on every engine). Workers
  /// share the same `jobs`-sized token pool as cell- and episode-level
  /// workers, so the three levels together never oversubscribe the request.
  std::size_t subepisode_jobs = 0;
  /// Sweep-wide verify memo: all variants of a cell replay against one
  /// shared crypto::VerifyMemo (they share one recorded world, hence
  /// identical bundles and certificates), so each distinct signature pays
  /// curve math once per cell instead of once per variant. Thread-safe
  /// across concurrently running variants; metrics are bitwise identical
  /// to run-local memos (pinned by ctest -L sweep). Only effective with
  /// reuse_traces.
  bool cell_verify_memo = true;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions opts = {});

  /// Execute every (cell, variant) pair. The returned vector is ordered by
  /// (cell, variant) regardless of which worker finished first, and every
  /// metric in it is a pure function of (base seed, grid) — never of
  /// `jobs`. Every (cell, variant) fault plan is validated up front
  /// (sim::FaultPlanConfig::validate against the cell's horizon and node
  /// count); an insane grid throws std::invalid_argument listing every
  /// problem before any cell runs.
  std::vector<CellResult> run(const std::vector<SweepCell>& cells) const;

  /// The exact config `run` executes for one (cell, variant) — including
  /// the derived per-cell seed. Characterization benches use this instead
  /// of re-deriving seeds, so they cannot drift from the sweep.
  ScenarioConfig cell_config(const SweepCell& cell, std::size_t cell_index,
                             std::size_t variant_index = 0) const;

  const SweepOptions& options() const { return opts_; }

 private:
  SweepOptions opts_;
};

/// Bench-driver CLI: parses `--jobs N` (and bare `-jN`), `--episode-jobs N`
/// and `--subepisode-jobs N`; falls back to the SOS_SWEEP_JOBS /
/// SOS_EPISODE_JOBS / SOS_SUBEPISODE_JOBS environment variables, then to
/// serial. Every value is validated the same way: non-numeric or negative
/// input warns and keeps the previous value — a typo must not mean "all
/// cores".
SweepOptions sweep_options_from_args(int argc, char** argv);

/// The canonical density-ablation grid (§VI-B follow-up): the deployment's
/// sparse operating point down to "typical DTN sim" densities, IB routing,
/// ~26 posts/user/week. Shared by bench_ablation_density, the
/// BM_DensitySweep snapshot, and fig4a's community-graph characterization
/// so they can never drift apart.
std::vector<SweepCell> density_ablation_grid(double days = 3.0);

/// The disaster fault pack (ROADMAP item 3): one mid-density epidemic world
/// per fault regime — calm baseline, lossy/asymmetric links, aftershock
/// jitter storm with a radio-dead window, battery churn with
/// reboot-with-store-loss, a partition-and-heal quake timeline, a
/// blackhole/grayhole mix, and a forged-signature storm — each run as a
/// signed and an unsigned variant. Shared by bench_disaster_pack, the
/// BM_DisasterPack snapshot, and the fault determinism tests.
std::vector<SweepCell> disaster_pack_grid(double days = 2.0);

}  // namespace sos::deploy
