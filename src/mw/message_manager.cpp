#include "mw/message_manager.hpp"

#include <algorithm>
#include <cassert>

#include "util/codec.hpp"

namespace sos::mw {

MessageManager::MessageManager(AdHocManager& adhoc, NodeStats& stats,
                               std::size_t store_capacity)
    : adhoc_(adhoc), stats_(stats), store_(store_capacity) {
  // Own certificate is always available to forward.
  remember_certificate(adhoc_.credentials().certificate);

  adhoc_.on_peer_advert = [this](sim::PeerId peer,
                                 const std::map<pki::UserId, std::uint32_t>& advert) {
    if (on_peer_advert) on_peer_advert(peer, advert);
  };
  adhoc_.on_secure_session = [this](sim::PeerId peer, const pki::Certificate& cert) {
    session_users_[peer] = cert.subject_id;
    remember_certificate(cert);
    if (on_session_ready) on_session_ready(peer, cert.subject_id);
  };
  adhoc_.on_session_down = [this](sim::PeerId peer) {
    session_users_.erase(peer);
    auto it = sent_this_session_.find(peer);
    if (it != sent_this_session_.end()) {
      // The connection broke while this session had transfers: whatever the
      // peer did not confirm through its next summary will be re-offered.
      if (!it->second.empty()) ++stats_.transfers_interrupted;
      sent_this_session_.erase(it);
    }
    // Bundles from this peer still waiting in the verify queue belong to
    // the transfer that just broke: delivering them after the session
    // dropped would hand the routing layer a dead PeerId. An entry whose
    // bundle a still-connected peer also offered in this window is handed
    // to that peer instead; the rest are — adaptive mode — verified and
    // delivered right now (the bytes arrived intact; only the window had
    // not elapsed), or — classic mode — dropped and counted, leaving the
    // next encounter's summary/request exchange to re-offer them.
    std::vector<PendingBundle> orphaned;
    if (!verify_queue_.empty()) {
      std::size_t kept = 0, dropped = 0;
      for (std::size_t i = 0; i < verify_queue_.size(); ++i) {
        PendingBundle& p = verify_queue_[i];
        auto& alts = p.also_offered_by;
        alts.erase(std::remove(alts.begin(), alts.end(), peer), alts.end());
        if (p.peer == peer) {
          if (alts.empty()) {
            if (verify_batch_adaptive_) {
              orphaned.push_back(std::move(p));
            } else {
              ++dropped;
            }
            continue;
          }
          p.peer = alts.front();
          alts.erase(alts.begin());
        }
        if (kept != i) verify_queue_[kept] = std::move(p);
        ++kept;
      }
      verify_queue_.resize(kept);
      stats_.transfers_interrupted += dropped;
    }
    if (on_session_down) on_session_down(peer);
    if (!orphaned.empty()) flush_entries(std::move(orphaned));
  };
  adhoc_.on_frame = [this](sim::PeerId peer, FrameType type, util::Bytes payload) {
    handle_frame(peer, type, std::move(payload));
  };
}

MessageManager::~MessageManager() {
  // A pending flush holds a raw `this` inside the scheduler; firing after
  // destruction would be use-after-free. The callbacks installed on the
  // ad hoc manager capture `this` too and it may outlive us.
  if (verify_flush_scheduled_ && adhoc_.attached()) {
    assert(verify_flush_event_ != sim::kInvalidEventId);
    adhoc_.scheduler().cancel(verify_flush_event_);
  }
  adhoc_.on_peer_advert = nullptr;
  adhoc_.on_secure_session = nullptr;
  adhoc_.on_session_down = nullptr;
  adhoc_.on_frame = nullptr;
}

void MessageManager::reset_after_reboot(bool lose_store) {
  if (verify_flush_scheduled_) {
    if (adhoc_.attached()) adhoc_.scheduler().cancel(verify_flush_event_);
    verify_flush_scheduled_ = false;
    verify_flush_event_ = sim::kInvalidEventId;
  }
  verify_queue_.clear();
  session_users_.clear();
  sent_this_session_.clear();
  cert_cache_.clear();
  remember_certificate(adhoc_.credentials().certificate);
  if (lose_store) store_.clear();
}

void MessageManager::detach() {
  // The deadline is absolute, so the flush re-arms exactly where it would
  // have fired: a window that straddles an episode boundary flushes at the
  // same sim time on the next shard.
  if (verify_flush_scheduled_) {
    assert(verify_flush_event_ != sim::kInvalidEventId);
    adhoc_.scheduler().cancel(verify_flush_event_);
    verify_flush_event_ = sim::kInvalidEventId;  // id is meaningless off-shard
  }
}

void MessageManager::attach() {
  if (verify_flush_scheduled_) {
    assert(verify_flush_event_ == sim::kInvalidEventId);
    verify_flush_event_ =
        adhoc_.scheduler().schedule_at(verify_flush_at_, [this] { flush_verify_queue(); });
  }
}

void MessageManager::save_state(util::Writer& w) const {
  // Quiescent-cut contract: no live sessions means no per-session transfer
  // bookkeeping and nothing waiting for batch verification (on_session_down
  // drains the queue entries owned by each dying session).
  assert(session_users_.empty() && sent_this_session_.empty() && verify_queue_.empty());
  {
    util::Writer sub;
    store_.save_state(sub);
    w.bytes(sub.take());
  }
  // Keys are re-derived from each certificate's subject id on load.
  w.varint(cert_cache_.size());
  for (const auto& [uid, cert] : cert_cache_) w.bytes(cert.encode());
  w.u8(verify_flush_scheduled_ ? 1 : 0);
  w.f64(verify_flush_at_);
}

bool MessageManager::load_state(util::Reader& r) {
  assert(!adhoc_.attached());
  bundle::BundleStore store(store_.capacity());
  {
    util::Bytes blob = r.bytes();
    if (!r.ok()) return false;
    util::Reader sub{util::ByteView(blob)};
    if (!store.load_state(sub) || !sub.done()) return false;
  }
  std::uint64_t n = r.varint();
  std::map<pki::UserId, pki::Certificate> certs;
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    auto cert = pki::Certificate::decode(r.bytes());
    if (!cert) return false;
    pki::UserId uid = cert->subject_id;
    certs.emplace(uid, std::move(*cert));
  }
  bool flush_scheduled = r.u8() != 0;
  double flush_at = r.f64();
  if (!r.ok()) return false;
  store_ = std::move(store);
  cert_cache_ = std::move(certs);
  verify_flush_scheduled_ = flush_scheduled;
  verify_flush_event_ = sim::kInvalidEventId;
  verify_flush_at_ = flush_at;
  return true;
}

void MessageManager::flush_verify_queue() {
  verify_flush_scheduled_ = false;
  verify_flush_event_ = sim::kInvalidEventId;  // our own firing consumed it
  std::vector<PendingBundle> queue = std::move(verify_queue_);
  verify_queue_.clear();
  flush_entries(std::move(queue));
}

void MessageManager::flush_entries(std::vector<PendingBundle> entries) {
  std::vector<AdHocManager::BundleToVerify> batch;
  batch.reserve(entries.size());
  for (const PendingBundle& p : entries) batch.push_back({&p.bundle, &p.cert});
  std::vector<bool> ok = adhoc_.verify_bundles(batch);

  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (!ok[i]) continue;
    remember_certificate(entries[i].cert);
    if (on_bundle) on_bundle(entries[i].peer, std::move(entries[i].bundle), entries[i].cert,
                             entries[i].spray_copies);
  }
}

void MessageManager::remember_certificate(const pki::Certificate& cert) {
  cert_cache_[cert.subject_id] = cert;
}

const pki::Certificate* MessageManager::certificate_for(const pki::UserId& uid) const {
  auto it = cert_cache_.find(uid);
  return it == cert_cache_.end() ? nullptr : &it->second;
}

std::optional<pki::UserId> MessageManager::peer_user(sim::PeerId peer) const {
  auto it = session_users_.find(peer);
  if (it == session_users_.end()) return std::nullopt;
  return it->second;
}

void MessageManager::send_summary(sim::PeerId peer, const SummaryFrame& summary) {
  adhoc_.send_frame(peer, FrameType::Summary, summary.encode());
}

void MessageManager::send_request(sim::PeerId peer, const RequestFrame& request) {
  adhoc_.send_frame(peer, FrameType::Request, request.encode());
}

bool MessageManager::send_bundle(sim::PeerId peer, const bundle::Bundle& b,
                                 std::uint32_t spray_copies) {
  const pki::Certificate* cert = certificate_for(b.origin);
  if (cert == nullptr) return false;
  BundleDataFrame frame;
  frame.bundle = b.encode();
  frame.origin_cert = cert->encode();
  frame.spray_copies = spray_copies;
  adhoc_.send_frame(peer, FrameType::BundleData, frame.encode());
  sent_this_session_[peer].insert(b.id());
  ++stats_.bundles_sent;
  return true;
}

bool MessageManager::already_sent(sim::PeerId peer, const bundle::BundleId& id) const {
  auto it = sent_this_session_.find(peer);
  return it != sent_this_session_.end() && it->second.count(id) > 0;
}

void MessageManager::handle_frame(sim::PeerId peer, FrameType type, util::Bytes payload) {
  switch (type) {
    case FrameType::Summary: {
      auto f = SummaryFrame::decode(payload);
      if (!f) {
        ++stats_.malformed_frames;
        return;
      }
      if (on_summary) on_summary(peer, *f);
      return;
    }
    case FrameType::Request: {
      auto f = RequestFrame::decode(payload);
      if (!f) {
        ++stats_.malformed_frames;
        return;
      }
      if (on_request) on_request(peer, *f);
      return;
    }
    case FrameType::BundleData: {
      auto f = BundleDataFrame::decode(payload);
      if (!f) {
        ++stats_.malformed_frames;
        return;
      }
      auto b = bundle::Bundle::decode(f->bundle);
      auto cert = pki::Certificate::decode(f->origin_cert);
      if (!b || !cert) {
        ++stats_.malformed_frames;
        return;
      }
      ++stats_.bundles_received;
      if (verify_batch_window_ > 0) {
        // Defer: bundles arriving within the window are verified together
        // in one batch signature pass. A bundle id already waiting in the
        // queue is a re-reception (two peers offering the same bundle in
        // one burst): verifying and delivering it twice would double the
        // signature work, so it rides the queued copy instead.
        bundle::BundleId id = b->id();
        auto queued = std::find_if(
            verify_queue_.begin(), verify_queue_.end(),
            [&id](const PendingBundle& p) { return p.bundle.id() == id; });
        if (queued != verify_queue_.end()) {
          ++stats_.duplicates_ignored;
          queued->also_offered_by.push_back(peer);
          return;
        }
        verify_queue_.push_back(PendingBundle{peer, std::move(*b), std::move(*cert),
                                              f->spray_copies});
        if (verify_batch_adaptive_ && verify_queue_.size() >= verify_batch_max_queue_) {
          // Store pressure: the queue holds a full batch — verify it now
          // rather than buffering the burst for the rest of the window. A
          // flush already scheduled simply finds a shorter queue later.
          std::vector<PendingBundle> queue = std::move(verify_queue_);
          verify_queue_.clear();
          flush_entries(std::move(queue));
          return;
        }
        if (!verify_flush_scheduled_) {
          verify_flush_scheduled_ = true;
          verify_flush_at_ = adhoc_.scheduler().now() + verify_batch_window_;
          verify_flush_event_ = adhoc_.scheduler().schedule_at(
              verify_flush_at_, [this] { flush_verify_queue(); });
        }
        return;
      }
      // Security gate: certificate chain + identity binding + signature.
      if (!adhoc_.verify_bundle(*b, *cert)) return;
      remember_certificate(*cert);
      if (on_bundle) on_bundle(peer, std::move(*b), *cert, f->spray_copies);
      return;
    }
    case FrameType::Hello:
    case FrameType::Resume:
      // Hello/Resume are consumed inside the ad hoc manager; seeing one
      // here means a peer sealed a handshake frame inside the session —
      // treat as malformed.
      ++stats_.malformed_frames;
      return;
  }
  ++stats_.malformed_frames;
}

}  // namespace sos::mw
