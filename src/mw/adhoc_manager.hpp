// Ad hoc manager — the bottom blue layer of Fig 1. Wraps the (simulated)
// Multipeer Connectivity endpoint and owns everything the paper assigns to
// it: viewing discovered peers, establishing D2D connections, encrypting
// connections (cert exchange -> X25519 ECDH -> HKDF -> ChaCha20-Poly1305),
// validating certificates, and signing/verifying forwarded data. Unlike
// real MPC, whose encryption Apple does not document, this handshake is
// fully specified here (DESIGN.md substitution #4).
//
// Recurring contacts — the common case under human mobility — skip the
// cert exchange + ECDH entirely: each full handshake also derives a
// resumption master secret (extra HKDF output), cached per peer-certificate
// fingerprint in an LRU with a configurable lifetime. On re-contact both
// sides exchange one plaintext Resume frame (fingerprint + fresh nonce +
// HMAC proof under the cached secret) and derive fresh session keys via
// HKDF over both nonces; any miss, expiry, revoked certificate, or bad
// proof falls back to the full handshake. Forward secrecy therefore
// degrades only within the resumption lifetime.
//
// Like TLS 1.3 0-RTT, the Resume frame itself is replayable (the proof
// covers only the sender fingerprint + nonce, not the connection): a
// replay can at worst open a half-session whose traffic the replayer
// cannot read, inject into, or complete — a DoS-class nuisance equivalent
// to the garbage-injection attacks the session layer already tolerates.
// A replayed Hello cannot tear down a live resumed session either: the
// full-handshake fallback is honored only before any sealed frame has
// authenticated under the resumed keys.
#pragma once

#include <array>
#include <functional>
#include <list>
#include <map>
#include <optional>

#include "bundle/bundle.hpp"
#include "crypto/drbg.hpp"
#include "crypto/verify_memo.hpp"
#include "mw/stats.hpp"
#include "mw/wire.hpp"
#include "pki/bootstrap.hpp"
#include "sim/multipeer.hpp"

namespace sos::mw {

class AdHocManager {
 public:
  AdHocManager(sim::Scheduler& sched, sim::MpcEndpoint& endpoint,
               const pki::DeviceCredentials& creds, NodeStats& stats);

  /// Begin advertising + browsing (both roles, as AlleyOop does).
  void start();

  // --- scheduler/network rebinding (episode-partitioned replay) ----------
  /// Tear down any still-live sessions before the transport goes away: the
  /// peers behind them are unreachable once detached, and a stale secure
  /// entry would wedge the next handshake on that transport id. Secure
  /// sessions are counted lost and fire on_session_down (so the message
  /// layer runs its usual drop cleanup — adaptive verify flush included);
  /// half-open handshakes are discarded silently. The resumption cache and
  /// hints survive, which is what lets the next contact resume. No-op at a
  /// quiescent point (episode boundaries, where every contact has ended).
  void drop_live_sessions();
  /// Unhook from the current endpoint and scheduler. All soft state —
  /// sessions, resumption cache, verify cache, the advertised dictionary —
  /// survives; only the transport binding is released. Call only when no
  /// session is live (SosNode::detach calls drop_live_sessions first).
  void detach();
  /// Rebind to a new scheduler/endpoint pair and restore the transport
  /// surface (advertising + browsing + discovery dictionary) if started.
  void attach(sim::Scheduler& sched, sim::MpcEndpoint& endpoint);
  bool attached() const { return sched_ != nullptr; }

  /// Power-cycle state loss (fault-injection churn): everything held in RAM
  /// goes — session state, transport resume hints, the verified-bundle
  /// cache. The resumption-secret cache is nominally persisted; pass
  /// lose_resume_cache to model flash loss too, forcing the next contact
  /// back to a full handshake. Call with no live sessions
  /// (drop_live_sessions first); the advertised dictionary and started flag
  /// survive so the node comes back up advertising.
  void reset_after_reboot(bool lose_resume_cache);

  /// Content-verification ablation: when off, verify_bundle/verify_bundles
  /// accept everything without policy or signature checks (the unsigned
  /// epidemic baseline of the disaster benches). Session handshakes are
  /// untouched — this ablates bundle trust, not transport encryption.
  void set_verify_signatures(bool on) { verify_signatures_ = on; }

  /// Share a cross-node memo of signature verdicts (replay engines): the
  /// bundle/cert checks below consult it before doing curve math. Counters
  /// are unaffected — the memo only skips recomputing a pure function.
  void set_verify_memo(crypto::VerifyMemo* memo) { verify_memo_ = memo; }

  /// Replace the plain-text advertisement dictionary (UserID -> MsgNumber).
  void set_advertisement(const std::map<pki::UserId, std::uint32_t>& entries);

  /// Ask for a session with a discovered peer.
  void connect(sim::PeerId peer);
  void disconnect(sim::PeerId peer);
  bool session_secure(sim::PeerId peer) const;
  /// Certificate presented by the peer during the handshake (nullptr until
  /// the session is secure).
  const pki::Certificate* peer_certificate(sim::PeerId peer) const;
  std::vector<sim::PeerId> secure_peers() const;

  /// Seal and transmit an application frame (Summary/Request/BundleData).
  void send_frame(sim::PeerId peer, FrameType type, util::ByteView payload);

  /// Verify a received bundle end to end: origin certificate chains to the
  /// CA root, is time-valid and unrevoked, binds the claimed origin id, and
  /// the bundle signature checks out under the certified key. Signature
  /// verdicts are memoized in an LRU cache keyed by bundle id + content
  /// digest, so epidemic/spray re-receptions skip the two signature checks;
  /// the time-dependent policy half is re-evaluated on every call.
  bool verify_bundle(const bundle::Bundle& b, const pki::Certificate& origin_cert);

  /// Batch counterpart: verifies a burst of received bundles with one
  /// random-linear-combination batch signature pass (cache consulted per
  /// item first). Returns one verdict per input.
  struct BundleToVerify {
    const bundle::Bundle* bundle;
    const pki::Certificate* cert;
  };
  std::vector<bool> verify_bundles(const std::vector<BundleToVerify>& batch);

  /// Bound the verified-bundle cache (callers tie this to store capacity).
  void set_verify_cache_capacity(std::size_t capacity);

  /// Enable session resumption with the given secret lifetime in
  /// sim-seconds (0, the default, disables it: every contact pays the full
  /// handshake). Expiry is measured from the last FULL handshake, so the
  /// forward-secrecy window never stretches through chained resumes.
  void set_resume_lifetime(util::SimTime lifetime_s);
  /// Bound the per-peer resumption-secret cache (LRU).
  void set_resume_cache_capacity(std::size_t capacity);
  /// Resumption entries currently cached (tests/introspection).
  std::size_t resume_cache_size() const { return resume_cache_.size(); }
  /// Drop the cached resumption secret for one peer certificate
  /// fingerprint (e.g. after an app-level trust change).
  void forget_resume_secret(const std::array<std::uint8_t, 32>& fingerprint);

  sim::Scheduler& scheduler() { return *sched_; }

  /// Checkpoint the transport-independent soft state: session RNG stream,
  /// started flag, advertisement dictionary, verify + resume caches (LRU
  /// order preserved exactly), and transport resume hints. Call only while
  /// detached at a quiescent point (no sessions — SosNode::save_state
  /// asserts this). Configuration (lifetimes, capacities, memo pointers)
  /// is not serialized; the owner re-applies it before load_state.
  void save_state(util::Writer& w) const;
  /// Restore state written by save_state (parse fully, then commit; false
  /// on malformed input with the manager untouched). Call while detached.
  bool load_state(util::Reader& r);

  // --- callbacks up to the message manager -------------------------------
  /// Peer advertisement seen while browsing (parsed dictionary).
  std::function<void(sim::PeerId, const std::map<pki::UserId, std::uint32_t>&)> on_peer_advert;
  std::function<void(sim::PeerId)> on_peer_gone;
  /// Handshake completed; peer identity authenticated.
  std::function<void(sim::PeerId, const pki::Certificate&)> on_secure_session;
  std::function<void(sim::PeerId)> on_session_down;
  /// Decrypted, parsed application frame.
  std::function<void(sim::PeerId, FrameType, util::Bytes)> on_frame;

  const pki::DeviceCredentials& credentials() const { return creds_; }

 private:
  struct Session {
    Session() = default;
    Session(const Session&) = default;
    Session& operator=(const Session&) = default;
    Session(Session&&) = default;
    Session& operator=(Session&&) = default;
    ~Session() {
      util::secure_wipe(eph_priv);
      util::secure_wipe(resume_secret);
      util::secure_wipe(send_key, sizeof(send_key));
      util::secure_wipe(recv_key, sizeof(recv_key));
    }

    crypto::X25519Key eph_priv{};
    crypto::X25519Key eph_pub{};
    bool hello_sent = false;
    bool secure = false;
    bool resumed = false;  // secure via Resume (vs full handshake)
    // Resume attempt in flight: our nonce plus a snapshot of the secret and
    // peer certificate it was made under (snapshotting avoids a second
    // cache lookup racing expiry between our send and the peer's reply).
    bool resume_sent = false;
    std::array<std::uint8_t, 32> resume_nonce{};
    std::array<std::uint8_t, 32> resume_secret{};
    pki::Certificate resume_cert;
    std::uint8_t send_key[32] = {0};
    std::uint8_t recv_key[32] = {0};
    std::uint64_t send_ctr = 0;
    std::uint64_t recv_ctr = 0;
    pki::Certificate peer_cert;
  };

  using Fingerprint = std::array<std::uint8_t, 32>;
  struct ResumeEntry {
    ResumeEntry() = default;
    ResumeEntry(const ResumeEntry&) = default;
    ResumeEntry& operator=(const ResumeEntry&) = default;
    ResumeEntry(ResumeEntry&&) = default;
    ResumeEntry& operator=(ResumeEntry&&) = default;
    ~ResumeEntry() { util::secure_wipe(secret); }

    std::array<std::uint8_t, 32> secret{};  // resumption master secret
    pki::Certificate cert;                  // peer cert from the full handshake
    util::SimTime established_at = 0;       // time of that full handshake
    std::list<Fingerprint>::iterator lru_it;
  };

  using VerifyDigest = std::array<std::uint8_t, 32>;
  struct VerifyCacheEntry {
    VerifyDigest digest;
    std::list<bundle::BundleId>::iterator lru_it;
  };

  /// Shared policy gate for both verification paths: certificate policy
  /// (issuer, validity window, CRL) plus the Fig 2a identity binding.
  /// Counts the rejection on failure.
  bool bundle_policy_ok(const bundle::Bundle& b, const pki::Certificate& cert);

  /// ed25519_verify, routed through the shared memo when one is attached.
  bool check_signature(const crypto::EdPublicKey& pub, util::ByteView msg,
                       const crypto::EdSignature& sig);

  void install_endpoint_callbacks();

  static VerifyDigest verify_digest(util::ByteView bundle_signed,
                                    const crypto::EdSignature& bundle_sig,
                                    util::ByteView cert_signed,
                                    const crypto::EdSignature& cert_sig);
  bool verify_cache_hit(const bundle::BundleId& id, const VerifyDigest& digest);
  void verify_cache_insert(const bundle::BundleId& id, const VerifyDigest& digest);

  void handle_connected(sim::PeerId peer);
  void handle_receive(sim::PeerId peer, util::Bytes wire);
  void handle_hello(sim::PeerId peer, util::ByteView payload);
  void send_hello(sim::PeerId peer);
  void handle_resume(sim::PeerId peer, util::ByteView payload);
  void send_resume(sim::PeerId peer, const ResumeEntry& entry);
  /// Valid unexpired cache entry for `fp`, with the certificate policy
  /// re-checked at `now`; erases and returns nullptr on expiry/revocation.
  ResumeEntry* resume_lookup(const Fingerprint& fp);
  void resume_cache_store(const Fingerprint& fp, ResumeEntry entry);
  void resume_cache_erase(std::map<Fingerprint, ResumeEntry>::iterator it);
  void mark_session_secure(sim::PeerId peer, Session& s, const util::Bytes& okm,
                           bool mine_first, const pki::Certificate& peer_cert);
  static Fingerprint cert_fingerprint(const pki::Certificate& cert);
  static sim::DiscoveryInfo to_discovery_info(
      const std::map<pki::UserId, std::uint32_t>& entries);

  sim::Scheduler* sched_;    // rebindable: see detach()/attach()
  sim::MpcEndpoint* endpoint_;
  const pki::DeviceCredentials& creds_;
  NodeStats& stats_;
  crypto::Drbg session_rng_;
  std::map<sim::PeerId, Session> sessions_;
  bool started_ = false;               // advertising+browsing requested
  sim::DiscoveryInfo advert_info_;     // survives rebinding
  // sos-lint: allow(seam-exempt) scenario-constant toggle: set before the
  // run starts and never scheduler-coupled, so it transfers by value.
  bool verify_signatures_ = true;      // see set_verify_signatures
  crypto::VerifyMemo* verify_memo_ = nullptr;

  // Verified-bundle cache: id -> digest of (bundle signed bytes, bundle
  // signature, certificate body, certificate signature). LRU-bounded.
  // sos-lint: allow(seam-exempt) pure value state (no scheduler or endpoint
  // handles): the cache rides across shards inside the object untouched —
  // exactly the behaviour the shard-crossing verify-cache tests pin.
  std::map<bundle::BundleId, VerifyCacheEntry> verify_cache_;
  // sos-lint: allow(seam-exempt) value state paired with verify_cache_.
  std::list<bundle::BundleId> verify_lru_;  // front = most recently used
  // sos-lint: allow(seam-exempt) scenario-constant bound, set at config time.
  std::size_t verify_cache_capacity_ = 4096;

  // Session-resumption cache: peer cert fingerprint -> resumption master
  // secret from the last full handshake with that identity. LRU-bounded;
  // entries expire resume_lifetime_s_ after the full handshake that minted
  // them. Keyed by certificate (not radio PeerId) so a peer that reappears
  // under a different transport id still resumes.
  std::map<Fingerprint, ResumeEntry> resume_cache_;
  std::list<Fingerprint> resume_lru_;  // front = most recently used
  std::size_t resume_cache_capacity_ = 256;
  util::SimTime resume_lifetime_s_ = 0;  // 0 = resumption disabled
  // Last authenticated identity seen on each transport peer id: the hint
  // that lets us open with Resume instead of Hello. A stale hint (device
  // swapped behind the id) just fails the proof and falls back.
  std::map<sim::PeerId, Fingerprint> resume_hint_;
  Fingerprint own_fingerprint_{};
};

}  // namespace sos::mw
