// Ad hoc manager — the bottom blue layer of Fig 1. Wraps the (simulated)
// Multipeer Connectivity endpoint and owns everything the paper assigns to
// it: viewing discovered peers, establishing D2D connections, encrypting
// connections (cert exchange -> X25519 ECDH -> HKDF -> ChaCha20-Poly1305),
// validating certificates, and signing/verifying forwarded data. Unlike
// real MPC, whose encryption Apple does not document, this handshake is
// fully specified here (DESIGN.md substitution #4).
#pragma once

#include <functional>
#include <map>
#include <optional>

#include "bundle/bundle.hpp"
#include "crypto/drbg.hpp"
#include "mw/stats.hpp"
#include "mw/wire.hpp"
#include "pki/bootstrap.hpp"
#include "sim/multipeer.hpp"

namespace sos::mw {

class AdHocManager {
 public:
  AdHocManager(sim::Scheduler& sched, sim::MpcEndpoint& endpoint,
               const pki::DeviceCredentials& creds, NodeStats& stats);

  /// Begin advertising + browsing (both roles, as AlleyOop does).
  void start();

  /// Replace the plain-text advertisement dictionary (UserID -> MsgNumber).
  void set_advertisement(const std::map<pki::UserId, std::uint32_t>& entries);

  /// Ask for a session with a discovered peer.
  void connect(sim::PeerId peer);
  void disconnect(sim::PeerId peer);
  bool session_secure(sim::PeerId peer) const;
  /// Certificate presented by the peer during the handshake (nullptr until
  /// the session is secure).
  const pki::Certificate* peer_certificate(sim::PeerId peer) const;
  std::vector<sim::PeerId> secure_peers() const;

  /// Seal and transmit an application frame (Summary/Request/BundleData).
  void send_frame(sim::PeerId peer, FrameType type, util::ByteView payload);

  /// Verify a received bundle end to end: origin certificate chains to the
  /// CA root, is time-valid and unrevoked, binds the claimed origin id, and
  /// the bundle signature checks out under the certified key.
  bool verify_bundle(const bundle::Bundle& b, const pki::Certificate& origin_cert);

  // --- callbacks up to the message manager -------------------------------
  /// Peer advertisement seen while browsing (parsed dictionary).
  std::function<void(sim::PeerId, const std::map<pki::UserId, std::uint32_t>&)> on_peer_advert;
  std::function<void(sim::PeerId)> on_peer_gone;
  /// Handshake completed; peer identity authenticated.
  std::function<void(sim::PeerId, const pki::Certificate&)> on_secure_session;
  std::function<void(sim::PeerId)> on_session_down;
  /// Decrypted, parsed application frame.
  std::function<void(sim::PeerId, FrameType, util::Bytes)> on_frame;

  const pki::DeviceCredentials& credentials() const { return creds_; }

 private:
  struct Session {
    crypto::X25519Key eph_priv{};
    crypto::X25519Key eph_pub{};
    bool hello_sent = false;
    bool secure = false;
    std::uint8_t send_key[32] = {0};
    std::uint8_t recv_key[32] = {0};
    std::uint64_t send_ctr = 0;
    std::uint64_t recv_ctr = 0;
    pki::Certificate peer_cert;
  };

  void handle_connected(sim::PeerId peer);
  void handle_receive(sim::PeerId peer, util::Bytes wire);
  void handle_hello(sim::PeerId peer, util::ByteView payload);
  void send_hello(sim::PeerId peer);
  static sim::DiscoveryInfo to_discovery_info(
      const std::map<pki::UserId, std::uint32_t>& entries);

  sim::Scheduler& sched_;
  sim::MpcEndpoint& endpoint_;
  const pki::DeviceCredentials& creds_;
  NodeStats& stats_;
  crypto::Drbg session_rng_;
  std::map<sim::PeerId, Session> sessions_;
};

}  // namespace sos::mw
