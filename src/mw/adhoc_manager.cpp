#include "mw/adhoc_manager.hpp"

#include <cassert>
#include <cstring>

#include "crypto/aead.hpp"
#include "crypto/hkdf.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/x25519.hpp"
#include "util/codec.hpp"
#include "util/log.hpp"

namespace sos::mw {

namespace {
// Outer wire byte: distinguishes the plaintext handshake frames (Hello,
// Resume) from sealed traffic.
constexpr std::uint8_t kOuterHello = 1;
constexpr std::uint8_t kOuterSealed = 2;
constexpr std::uint8_t kOuterResume = 3;

void make_nonce(std::uint8_t nonce[12], std::uint64_t counter) {
  std::memset(nonce, 0, 12);
  util::store64_le(nonce, counter);
}
}  // namespace

AdHocManager::AdHocManager(sim::Scheduler& sched, sim::MpcEndpoint& endpoint,
                           const pki::DeviceCredentials& creds, NodeStats& stats)
    : sched_(&sched),
      endpoint_(&endpoint),
      creds_(creds),
      stats_(stats),
      session_rng_(util::concat(util::to_bytes("session-rng-"), creds.user_id.view())),
      own_fingerprint_(cert_fingerprint(creds.certificate)) {
  install_endpoint_callbacks();
}

void AdHocManager::install_endpoint_callbacks() {
  endpoint_->on_peer_found = [this](sim::PeerId peer, const sim::DiscoveryInfo& info) {
    if (!on_peer_advert) return;
    std::map<pki::UserId, std::uint32_t> parsed;
    for (const auto& [key, value] : info) {
      auto uid = pki::UserId::from_string(key);
      if (!uid) continue;  // foreign advertisement, not ours
      parsed[*uid] = static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    }
    on_peer_advert(peer, parsed);
  };
  endpoint_->on_peer_lost = [this](sim::PeerId peer) {
    if (on_peer_gone) on_peer_gone(peer);
  };
  endpoint_->on_connected = [this](sim::PeerId peer) { handle_connected(peer); };
  endpoint_->on_disconnected = [this](sim::PeerId peer) {
    auto it = sessions_.find(peer);
    bool was_secure = it != sessions_.end() && it->second.secure;
    sessions_.erase(peer);
    if (was_secure) {
      ++stats_.sessions_lost;
      if (on_session_down) on_session_down(peer);
    }
  };
  endpoint_->on_receive = [this](sim::PeerId peer, util::Bytes data) {
    handle_receive(peer, std::move(data));
  };
}

void AdHocManager::start() {
  started_ = true;
  endpoint_->start_advertising(advert_info_);
  endpoint_->start_browsing();
}

void AdHocManager::drop_live_sessions() {
  // Collect first: on_session_down handlers may re-enter (the adaptive
  // verify flush delivers bundles, which can touch the session map).
  std::vector<sim::PeerId> secure;
  for (const auto& [peer, session] : sessions_)
    if (session.secure) secure.push_back(peer);
  sessions_.clear();
  for (sim::PeerId peer : secure) {
    ++stats_.sessions_lost;
    if (on_session_down) on_session_down(peer);
  }
}

void AdHocManager::reset_after_reboot(bool lose_resume_cache) {
  // RAM is gone: half-open handshakes and the verified-bundle cache. (Live
  // sessions must already have been dropped — drop_live_sessions — so their
  // loss was counted and cascaded.) The resumption state — secrets AND the
  // transport-id -> identity hints pointing at them — persists like a TLS
  // client's on-disk ticket store, so a crash reboot still resumes its
  // recurring contacts; only a flash wipe forces full handshakes again.
  sessions_.clear();
  verify_cache_.clear();
  verify_lru_.clear();
  if (lose_resume_cache) {
    resume_hint_.clear();
    resume_cache_.clear();
    resume_lru_.clear();
  }
}

void AdHocManager::detach() {
  if (endpoint_ != nullptr) {
    endpoint_->on_peer_found = nullptr;
    endpoint_->on_peer_lost = nullptr;
    endpoint_->on_connected = nullptr;
    endpoint_->on_disconnected = nullptr;
    endpoint_->on_receive = nullptr;
  }
  endpoint_ = nullptr;
  sched_ = nullptr;
}

void AdHocManager::attach(sim::Scheduler& sched, sim::MpcEndpoint& endpoint) {
  sched_ = &sched;
  endpoint_ = &endpoint;
  install_endpoint_callbacks();
  if (started_) {
    // Restore the transport surface on the fresh endpoint. No peer is in
    // range at an episode boundary, so this schedules no discovery events.
    endpoint_->start_advertising(advert_info_);
    endpoint_->start_browsing();
  }
}

sim::DiscoveryInfo AdHocManager::to_discovery_info(
    const std::map<pki::UserId, std::uint32_t>& entries) {
  sim::DiscoveryInfo info;
  for (const auto& [uid, num] : entries) info[uid.to_string()] = std::to_string(num);
  return info;
}

void AdHocManager::set_advertisement(const std::map<pki::UserId, std::uint32_t>& entries) {
  advert_info_ = to_discovery_info(entries);
  endpoint_->update_discovery_info(advert_info_);
}

void AdHocManager::connect(sim::PeerId peer) {
  if (endpoint_->is_connected(peer)) return;
  endpoint_->invite(peer);
}

void AdHocManager::disconnect(sim::PeerId peer) {
  endpoint_->disconnect(peer);
}

bool AdHocManager::session_secure(sim::PeerId peer) const {
  auto it = sessions_.find(peer);
  return it != sessions_.end() && it->second.secure;
}

const pki::Certificate* AdHocManager::peer_certificate(sim::PeerId peer) const {
  auto it = sessions_.find(peer);
  return (it != sessions_.end() && it->second.secure) ? &it->second.peer_cert : nullptr;
}

std::vector<sim::PeerId> AdHocManager::secure_peers() const {
  std::vector<sim::PeerId> out;
  for (const auto& [peer, session] : sessions_)
    if (session.secure) out.push_back(peer);
  return out;
}

void AdHocManager::handle_connected(sim::PeerId peer) {
  // Recurring contact with a cached, unexpired resumption secret: open with
  // the 1-RTT Resume instead of the full handshake. A stale hint or a cache
  // miss on the peer's side degrades gracefully to Hello.
  if (resume_lifetime_s_ > 0) {
    auto hint = resume_hint_.find(peer);
    if (hint != resume_hint_.end()) {
      if (ResumeEntry* entry = resume_lookup(hint->second)) {
        send_resume(peer, *entry);
        return;
      }
    }
  }
  send_hello(peer);
}

void AdHocManager::send_hello(sim::PeerId peer) {
  Session& s = sessions_[peer];
  if (s.hello_sent) return;
  s.eph_priv = crypto::x25519_clamp(session_rng_.generate_array<32>());
  s.eph_pub = crypto::x25519_base(s.eph_priv);
  ++stats_.ecdh_ops;
  s.hello_sent = true;

  HelloFrame hello;
  hello.certificate = creds_.certificate.encode();
  hello.ephemeral_pub = s.eph_pub;
  hello.binding_sig = creds_.signing_keypair.sign(hello.signing_bytes());

  util::Bytes wire;
  wire.push_back(kOuterHello);
  util::append(wire, hello.encode());
  ++stats_.frames_sent;
  endpoint_->send(peer, std::move(wire));
}

void AdHocManager::handle_hello(sim::PeerId peer, util::ByteView payload) {
  auto hello = HelloFrame::decode(payload);
  if (!hello) {
    ++stats_.malformed_frames;
    return;
  }
  auto cert = pki::Certificate::decode(hello->certificate);
  if (!cert) {
    ++stats_.malformed_frames;
    return;
  }
  // Certificate chain check against the pinned CA root (Fig 2b: "validate
  // certificate"). The signature half rides the shared replay memo: the
  // same certificate is presented at every handshake with this identity.
  if (creds_.trust.verify(*cert, sched_->now(), verify_memo_) != pki::VerifyResult::Ok) {
    ++stats_.handshake_cert_rejected;
    endpoint_->disconnect(peer);
    return;
  }
  // The ephemeral key must be signed by the certified identity key,
  // otherwise an attacker could splice their own DH key into the session.
  if (!crypto::ed25519_verify(cert->subject_key, hello->signing_bytes(), hello->binding_sig)) {
    ++stats_.handshake_sig_rejected;
    endpoint_->disconnect(peer);
    return;
  }

  Session& s = sessions_[peer];
  if (s.secure && s.resumed && s.recv_ctr == 0) {
    // The peer fell back to a full handshake after we accepted a resume
    // (its cached secret aged out or was evicted between our frames). Our
    // resumed keys are orphaned: tear the session down and take the full
    // handshake so both sides converge on one key schedule. Only the
    // pre-traffic window qualifies — once a sealed frame has authenticated
    // under the resumed keys the peer demonstrably holds them, so a Hello
    // arriving later is stale or replayed and must not kill the session.
    ++stats_.sessions_lost;
    if (on_session_down) on_session_down(peer);
    s = Session{};
  }
  if (s.secure) return;  // duplicate/replayed hello on an established session
  if (!s.hello_sent) send_hello(peer);

  auto shared = crypto::x25519(s.eph_priv, hello->ephemeral_pub);
  ++stats_.ecdh_ops;
  // Directional keys: the lexicographically smaller ephemeral key sends
  // with the first half of the OKM.
  bool mine_first =
      // sos-lint: allow(memcmp-public) tie-break ordering over the two
      // ephemeral PUBLIC keys both sides already saw in plaintext Hellos.
      std::memcmp(s.eph_pub.data(), hello->ephemeral_pub.data(), s.eph_pub.size()) < 0;
  util::Bytes salt;
  if (mine_first) {
    salt = util::concat(s.eph_pub, hello->ephemeral_pub);
  } else {
    salt = util::concat(hello->ephemeral_pub, s.eph_pub);
  }
  // 96 bytes: 64 for the directional session keys plus 32 for the
  // resumption master secret. HKDF-Expand output is prefix-stable, so the
  // session keys are identical to the pre-resumption 64-byte schedule.
  auto okm = crypto::hkdf(salt, shared, util::to_bytes("sos-session-v1"), 96);
  ++stats_.full_handshakes;
  if (resume_lifetime_s_ > 0) {
    ResumeEntry entry;
    std::memcpy(entry.secret.data(), okm.data() + 64, entry.secret.size());
    entry.cert = *cert;
    entry.established_at = sched_->now();
    resume_cache_store(cert_fingerprint(*cert), std::move(entry));
  }
  mark_session_secure(peer, s, okm, mine_first, *cert);
}

void AdHocManager::mark_session_secure(sim::PeerId peer, Session& s, const util::Bytes& okm,
                                       bool mine_first, const pki::Certificate& peer_cert) {
  std::memcpy(s.send_key, okm.data() + (mine_first ? 0 : 32), 32);
  std::memcpy(s.recv_key, okm.data() + (mine_first ? 32 : 0), 32);
  s.send_ctr = 0;
  s.recv_ctr = 0;
  s.peer_cert = peer_cert;
  s.secure = true;
  ++stats_.sessions_established;
  // Remember which identity answers on this transport id so the next
  // contact can open with Resume.
  resume_hint_[peer] = cert_fingerprint(s.peer_cert);
  if (on_secure_session) on_secure_session(peer, s.peer_cert);
}

AdHocManager::Fingerprint AdHocManager::cert_fingerprint(const pki::Certificate& cert) {
  // Covers body and issuer signature: two certificates binding the same
  // identity but differing in any field hash to different entries.
  return crypto::Sha256::hash(cert.encode());
}

void AdHocManager::send_resume(sim::PeerId peer, const ResumeEntry& entry) {
  Session& s = sessions_[peer];
  if (s.resume_sent || s.hello_sent || s.secure) return;
  s.resume_nonce = session_rng_.generate_array<32>();
  // Snapshot the secret and certificate the attempt runs under: the peer's
  // answer is verified against this snapshot, immune to the cache entry
  // expiring or being evicted while the frames are in flight.
  s.resume_secret = entry.secret;
  s.resume_cert = entry.cert;
  s.resume_sent = true;

  ResumeFrame frame;
  frame.fingerprint = own_fingerprint_;
  frame.nonce = s.resume_nonce;
  frame.proof = crypto::hmac_sha256(util::ByteView(entry.secret.data(), entry.secret.size()),
                                    frame.signing_bytes());
  util::Bytes wire;
  wire.push_back(kOuterResume);
  util::append(wire, frame.encode());
  ++stats_.frames_sent;
  ++stats_.resume_attempts;
  endpoint_->send(peer, std::move(wire));
}

void AdHocManager::handle_resume(sim::PeerId peer, util::ByteView payload) {
  auto frame = ResumeFrame::decode(payload);
  if (!frame) {
    ++stats_.malformed_frames;
    return;
  }
  Session& s = sessions_[peer];
  if (s.secure) return;  // late duplicate on an established session

  // Locate the shared secret the proof claims: the snapshot of our own
  // in-flight attempt, or the cache entry for the claimed identity.
  const std::uint8_t* secret = nullptr;
  const pki::Certificate* peer_cert = nullptr;
  if (s.resume_sent) {
    if (frame->fingerprint != cert_fingerprint(s.resume_cert)) {
      // A different identity than the one we initiated with answered.
      ++stats_.resume_rejected;
      send_hello(peer);
      return;
    }
    secret = s.resume_secret.data();
    peer_cert = &s.resume_cert;
  } else {
    ResumeEntry* entry = resume_lookup(frame->fingerprint);
    if (entry == nullptr) {
      // Unknown identity, expired secret, or revoked certificate: make the
      // peer pay the full handshake.
      ++stats_.resume_rejected;
      send_hello(peer);
      return;
    }
    secret = entry->secret.data();
    peer_cert = &entry->cert;
  }
  util::ByteView secret_view(secret, 32);
  auto expect = crypto::hmac_sha256(secret_view, frame->signing_bytes());
  if (!util::ct_equal(util::ByteView(expect.data(), expect.size()),
                      util::ByteView(frame->proof.data(), frame->proof.size()))) {
    // Proof failure: a desynchronized secret or an active attacker. Fall
    // back to the full handshake; the cache entry is NOT erased, so a
    // spoofer cannot wipe legitimate resumption state.
    ++stats_.resume_rejected;
    send_hello(peer);
    return;
  }
  if (s.hello_sent) return;  // already committed to a full handshake

  if (!s.resume_sent) {
    // Responder role: answer with our own proof before deriving.
    ResumeEntry snapshot;
    std::memcpy(snapshot.secret.data(), secret, snapshot.secret.size());
    snapshot.cert = *peer_cert;
    send_resume(peer, snapshot);
  }
  // Fresh session keys from both nonces under the cached secret — the same
  // directional-split rule as the full handshake, keyed on the nonces.
  bool mine_first =
      // sos-lint: allow(memcmp-public) tie-break ordering over the two
      // resume nonces, which travel in plaintext Resume frames.
      std::memcmp(s.resume_nonce.data(), frame->nonce.data(), s.resume_nonce.size()) < 0;
  util::Bytes salt;
  if (mine_first) {
    salt = util::concat(s.resume_nonce, frame->nonce);
  } else {
    salt = util::concat(frame->nonce, s.resume_nonce);
  }
  auto okm = crypto::hkdf(salt, util::ByteView(s.resume_secret.data(), 32),
                          util::to_bytes("sos-resume-v1"), 64);
  s.resumed = true;
  ++stats_.sessions_resumed;
  mark_session_secure(peer, s, okm, mine_first, s.resume_cert);
}

AdHocManager::ResumeEntry* AdHocManager::resume_lookup(const Fingerprint& fp) {
  if (resume_lifetime_s_ <= 0) return nullptr;
  auto it = resume_cache_.find(fp);
  if (it == resume_cache_.end()) return nullptr;
  if (sched_->now() > it->second.established_at + resume_lifetime_s_) {
    // Expired: the forward-secrecy window closed; the next contact pays the
    // full handshake and mints a fresh secret.
    resume_cache_erase(it);
    return nullptr;
  }
  // The certificate behind the secret is re-validated on every use: a
  // revoked or expired identity must not ride a cached secret past the CRL.
  if (creds_.trust.verify(it->second.cert, sched_->now(), verify_memo_) !=
      pki::VerifyResult::Ok) {
    resume_cache_erase(it);
    return nullptr;
  }
  resume_lru_.splice(resume_lru_.begin(), resume_lru_, it->second.lru_it);
  return &it->second;
}

void AdHocManager::resume_cache_store(const Fingerprint& fp, ResumeEntry entry) {
  auto it = resume_cache_.find(fp);
  if (it != resume_cache_.end()) {
    entry.lru_it = it->second.lru_it;
    it->second = std::move(entry);
    resume_lru_.splice(resume_lru_.begin(), resume_lru_, it->second.lru_it);
    return;
  }
  resume_lru_.push_front(fp);
  entry.lru_it = resume_lru_.begin();
  resume_cache_.emplace(fp, std::move(entry));
  while (resume_cache_.size() > resume_cache_capacity_) {
    resume_cache_.erase(resume_lru_.back());
    resume_lru_.pop_back();
  }
}

void AdHocManager::resume_cache_erase(std::map<Fingerprint, ResumeEntry>::iterator it) {
  resume_lru_.erase(it->second.lru_it);
  resume_cache_.erase(it);
}

void AdHocManager::set_resume_lifetime(util::SimTime lifetime_s) {
  resume_lifetime_s_ = lifetime_s;
  if (resume_lifetime_s_ <= 0) {
    resume_cache_.clear();
    resume_lru_.clear();
  }
}

void AdHocManager::set_resume_cache_capacity(std::size_t capacity) {
  resume_cache_capacity_ = capacity > 0 ? capacity : 1;
  while (resume_cache_.size() > resume_cache_capacity_) {
    resume_cache_.erase(resume_lru_.back());
    resume_lru_.pop_back();
  }
}

void AdHocManager::forget_resume_secret(const std::array<std::uint8_t, 32>& fingerprint) {
  auto it = resume_cache_.find(fingerprint);
  if (it != resume_cache_.end()) resume_cache_erase(it);
}

void AdHocManager::save_state(util::Writer& w) const {
  // Sessions are transport-bound and cannot cross a checkpoint; the soak
  // runner only checkpoints at quiescent cuts where every contact (and thus
  // every session) has already ended.
  assert(sched_ == nullptr && sessions_.empty());
  session_rng_.save_state(w);
  w.u8(started_ ? 1 : 0);
  w.varint(advert_info_.size());
  for (const auto& [key, value] : advert_info_) {
    w.str(key);
    w.str(value);
  }
  // LRU lists serialize front (most recent) to back so the restored
  // eviction order is bit-identical.
  w.varint(verify_lru_.size());
  for (const bundle::BundleId& id : verify_lru_) {
    w.raw(id.origin.view());
    w.u32(id.msg_num);
    auto it = verify_cache_.find(id);
    assert(it != verify_cache_.end());
    w.raw(util::ByteView(it->second.digest.data(), it->second.digest.size()));
  }
  w.varint(resume_lru_.size());
  for (const Fingerprint& fp : resume_lru_) {
    auto it = resume_cache_.find(fp);
    assert(it != resume_cache_.end());
    w.raw(util::ByteView(fp.data(), fp.size()));
    w.raw(util::ByteView(it->second.secret.data(), it->second.secret.size()));
    w.bytes(it->second.cert.encode());
    w.f64(it->second.established_at);
  }
  w.varint(resume_hint_.size());
  for (const auto& [peer, fp] : resume_hint_) {
    w.u32(peer);
    w.raw(util::ByteView(fp.data(), fp.size()));
  }
}

bool AdHocManager::load_state(util::Reader& r) {
  assert(sched_ == nullptr && sessions_.empty());
  crypto::Drbg rng = session_rng_;
  if (!rng.load_state(r)) return false;
  std::uint8_t started = r.u8();
  std::uint64_t adverts = r.varint();
  sim::DiscoveryInfo advert_info;
  for (std::uint64_t i = 0; i < adverts && r.ok(); ++i) {
    std::string key = r.str();
    advert_info[key] = r.str();
  }
  std::uint64_t verify_n = r.varint();
  std::map<bundle::BundleId, VerifyCacheEntry> verify_cache;
  std::list<bundle::BundleId> verify_lru;
  for (std::uint64_t i = 0; i < verify_n && r.ok(); ++i) {
    bundle::BundleId id;
    id.origin.bytes = r.raw_array<pki::kUserIdSize>();
    id.msg_num = r.u32();
    VerifyDigest digest = r.raw_array<32>();
    verify_lru.push_back(id);
    verify_cache[id] = VerifyCacheEntry{digest, std::prev(verify_lru.end())};
  }
  std::uint64_t resume_n = r.varint();
  std::map<Fingerprint, ResumeEntry> resume_cache;
  std::list<Fingerprint> resume_lru;
  for (std::uint64_t i = 0; i < resume_n && r.ok(); ++i) {
    Fingerprint fp = r.raw_array<32>();
    ResumeEntry entry;
    entry.secret = r.raw_array<32>();
    auto cert = pki::Certificate::decode(r.bytes());
    entry.established_at = r.f64();
    if (!r.ok() || !cert) return false;
    entry.cert = std::move(*cert);
    resume_lru.push_back(fp);
    entry.lru_it = std::prev(resume_lru.end());
    resume_cache.emplace(fp, std::move(entry));
  }
  std::uint64_t hints = r.varint();
  std::map<sim::PeerId, Fingerprint> resume_hint;
  for (std::uint64_t i = 0; i < hints && r.ok(); ++i) {
    sim::PeerId peer = r.u32();
    resume_hint[peer] = r.raw_array<32>();
  }
  if (!r.ok()) return false;
  session_rng_ = std::move(rng);
  started_ = started != 0;
  advert_info_ = std::move(advert_info);
  verify_cache_ = std::move(verify_cache);
  verify_lru_ = std::move(verify_lru);
  resume_cache_ = std::move(resume_cache);
  resume_lru_ = std::move(resume_lru);
  resume_hint_ = std::move(resume_hint);
  return true;
}

void AdHocManager::send_frame(sim::PeerId peer, FrameType type, util::ByteView payload) {
  auto it = sessions_.find(peer);
  if (it == sessions_.end() || !it->second.secure) return;
  Session& s = it->second;

  util::Bytes plain;
  plain.push_back(static_cast<std::uint8_t>(type));
  util::append(plain, payload);

  std::uint8_t nonce[12];
  make_nonce(nonce, s.send_ctr++);
  auto sealed = crypto::aead_seal(s.send_key, nonce, util::to_bytes("sos-frame"), plain);

  util::Bytes wire;
  wire.push_back(kOuterSealed);
  util::append(wire, sealed);
  ++stats_.frames_sent;
  endpoint_->send(peer, std::move(wire));
}

void AdHocManager::handle_receive(sim::PeerId peer, util::Bytes wire) {
  ++stats_.frames_received;
  if (wire.empty()) {
    ++stats_.malformed_frames;
    return;
  }
  std::uint8_t outer = wire[0];
  util::ByteView body(wire.data() + 1, wire.size() - 1);
  if (outer == kOuterHello) {
    handle_hello(peer, body);
    return;
  }
  if (outer == kOuterResume) {
    handle_resume(peer, body);
    return;
  }
  if (outer != kOuterSealed) {
    ++stats_.malformed_frames;
    return;
  }
  auto it = sessions_.find(peer);
  if (it == sessions_.end() || !it->second.secure) {
    ++stats_.malformed_frames;  // sealed data before the handshake
    return;
  }
  Session& s = it->second;
  std::uint8_t nonce[12];
  // The counter advances only on successful authentication: a corrupted or
  // attacker-injected frame must not desynchronize the nonce sequence for
  // the legitimate traffic behind it.
  make_nonce(nonce, s.recv_ctr);
  auto plain = crypto::aead_open(s.recv_key, nonce, util::to_bytes("sos-frame"), body);
  if (!plain) {
    ++stats_.decrypt_failures;
    return;
  }
  ++s.recv_ctr;
  if (plain->empty()) {
    ++stats_.malformed_frames;
    return;
  }
  auto type = static_cast<FrameType>((*plain)[0]);
  util::Bytes payload(plain->begin() + 1, plain->end());
  if (on_frame) on_frame(peer, type, std::move(payload));
}

AdHocManager::VerifyDigest AdHocManager::verify_digest(util::ByteView bundle_signed,
                                                       const crypto::EdSignature& bundle_sig,
                                                       util::ByteView cert_signed,
                                                       const crypto::EdSignature& cert_sig) {
  // Unambiguous: both signing_bytes encodings are fixed-layout with
  // length-prefixed fields, and the signatures are fixed-size.
  crypto::Sha256 h;
  h.update(bundle_signed);
  h.update(util::ByteView(bundle_sig.data(), bundle_sig.size()));
  h.update(cert_signed);
  h.update(util::ByteView(cert_sig.data(), cert_sig.size()));
  return h.finish();
}

bool AdHocManager::verify_cache_hit(const bundle::BundleId& id, const VerifyDigest& digest) {
  auto it = verify_cache_.find(id);
  if (it == verify_cache_.end() || it->second.digest != digest) return false;
  verify_lru_.splice(verify_lru_.begin(), verify_lru_, it->second.lru_it);
  return true;
}

void AdHocManager::verify_cache_insert(const bundle::BundleId& id, const VerifyDigest& digest) {
  auto it = verify_cache_.find(id);
  if (it != verify_cache_.end()) {
    it->second.digest = digest;
    verify_lru_.splice(verify_lru_.begin(), verify_lru_, it->second.lru_it);
    return;
  }
  verify_lru_.push_front(id);
  verify_cache_.emplace(id, VerifyCacheEntry{digest, verify_lru_.begin()});
  while (verify_cache_.size() > verify_cache_capacity_) {
    verify_cache_.erase(verify_lru_.back());
    verify_lru_.pop_back();
  }
}

void AdHocManager::set_verify_cache_capacity(std::size_t capacity) {
  verify_cache_capacity_ = capacity > 0 ? capacity : 1;
  while (verify_cache_.size() > verify_cache_capacity_) {
    verify_cache_.erase(verify_lru_.back());
    verify_lru_.pop_back();
  }
}

bool AdHocManager::check_signature(const crypto::EdPublicKey& pub, util::ByteView msg,
                                   const crypto::EdSignature& sig) {
  if (verify_memo_) return verify_memo_->verify(pub, msg, sig);
  return crypto::ed25519_verify(pub, msg, sig);
}

bool AdHocManager::bundle_policy_ok(const bundle::Bundle& b, const pki::Certificate& cert) {
  if (creds_.trust.verify_policy(cert, sched_->now()) != pki::VerifyResult::Ok ||
      !(cert.subject_id == b.origin)) {
    ++stats_.bundle_cert_rejected;
    return false;
  }
  return true;
}

bool AdHocManager::verify_bundle(const bundle::Bundle& b, const pki::Certificate& origin_cert) {
  if (!verify_signatures_) return true;  // unsigned-baseline ablation
  // Policy half (issuer, validity window, CRL, identity binding): cheap and
  // time-dependent, evaluated on every reception — cached or not.
  if (!bundle_policy_ok(b, origin_cert)) return false;
  // Serialize once; the digest and both signature checks share the buffers.
  util::Bytes bundle_signed = b.signing_bytes();
  util::Bytes cert_signed = origin_cert.signing_bytes();
  VerifyDigest digest =
      verify_digest(bundle_signed, b.signature, cert_signed, origin_cert.signature);
  if (verify_cache_hit(b.id(), digest)) {
    ++stats_.bundle_sig_cache_hits;
    return true;
  }
  ++stats_.bundle_sig_cache_misses;
  if (!check_signature(creds_.trust.root_key(), cert_signed, origin_cert.signature)) {
    ++stats_.bundle_cert_rejected;
    return false;
  }
  if (!check_signature(origin_cert.subject_key, bundle_signed, b.signature)) {
    ++stats_.bundle_sig_rejected;
    return false;
  }
  verify_cache_insert(b.id(), digest);
  return true;
}

std::vector<bool> AdHocManager::verify_bundles(const std::vector<BundleToVerify>& batch) {
  if (!verify_signatures_) return std::vector<bool>(batch.size(), true);
  std::vector<bool> ok(batch.size(), false);

  // Cache/policy pass; survivors join one batch signature verification
  // covering both the CA signature on the certificate and the origin
  // signature on the bundle.
  struct Pending {
    std::size_t index;
    VerifyDigest digest;
    util::Bytes cert_signed;    // owns bytes the batch items view
    util::Bytes bundle_signed;  // owns bytes the batch items view
    std::size_t cert_item = 0;    // batch-item slot of the cert signature
    std::size_t bundle_item = 0;  // batch-item slot of the bundle signature
  };
  std::vector<Pending> pending;
  // Concurrent duplicates (the same bundle pulled from two peers in one
  // burst) collapse onto the first occurrence instead of being verified
  // twice within the batch.
  std::map<VerifyDigest, std::size_t> in_batch;               // digest -> pending slot
  std::vector<std::pair<std::size_t, std::size_t>> followers;  // (batch idx, pending slot)
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const bundle::Bundle& b = *batch[i].bundle;
    const pki::Certificate& cert = *batch[i].cert;
    if (!bundle_policy_ok(b, cert)) continue;
    util::Bytes bundle_signed = b.signing_bytes();
    util::Bytes cert_signed = cert.signing_bytes();
    VerifyDigest digest = verify_digest(bundle_signed, b.signature, cert_signed, cert.signature);
    if (verify_cache_hit(b.id(), digest)) {
      ++stats_.bundle_sig_cache_hits;
      ok[i] = true;
      continue;
    }
    auto [dup, inserted] = in_batch.try_emplace(digest, pending.size());
    if (!inserted) {
      followers.emplace_back(i, dup->second);  // stats counted on resolution
      continue;
    }
    ++stats_.bundle_sig_cache_misses;
    pending.push_back(
        Pending{i, digest, std::move(cert_signed), std::move(bundle_signed), 0, 0});
  }
  if (pending.empty()) return ok;  // a follower always has a leader in pending

  // One batch item per DISTINCT certificate (a burst from one origin pays
  // the CA-signature check once) plus one per bundle. Dedup keys on a hash
  // of the full certificate body AND signature: a forged body carrying a
  // copied signature must not alias onto a legitimate certificate's
  // verdict, and hashing avoids copying the body into the map key.
  std::vector<crypto::EdBatchItem> items;
  std::map<crypto::Sha256::Digest, std::size_t> cert_items;
  for (Pending& p : pending) {
    const pki::Certificate& cert = *batch[p.index].cert;
    crypto::Sha256 ch;
    ch.update(p.cert_signed);
    ch.update(util::ByteView(cert.signature.data(), cert.signature.size()));
    auto [cit, fresh] = cert_items.try_emplace(ch.finish(), items.size());
    if (fresh) items.push_back({creds_.trust.root_key(), p.cert_signed, cert.signature});
    p.cert_item = cit->second;
    p.bundle_item = items.size();
    items.push_back({cert.subject_key, p.bundle_signed, batch[p.index].bundle->signature});
  }
  ++stats_.bundle_batch_verifies;
  std::vector<bool> verdicts;
  if (verify_memo_) {
    // Resolve what the shared memo already knows and batch only the residue.
    // Counter semantics are untouched: the simulated node performed one
    // batch pass either way; the memo only skips redundant curve math, and
    // a fallback means what it always meant — some entry was bad.
    verdicts.assign(items.size(), false);
    std::vector<std::size_t> unknown;
    std::vector<crypto::VerifyMemo::Key> unknown_keys;  // hashed once, reused by store
    for (std::size_t i = 0; i < items.size(); ++i) {
      auto key = crypto::VerifyMemo::key_of(items[i].pub, items[i].msg, items[i].sig);
      if (auto known = verify_memo_->lookup(key)) {
        verdicts[i] = *known;
      } else {
        unknown.push_back(i);
        unknown_keys.push_back(key);
      }
    }
    if (!unknown.empty()) {
      std::vector<crypto::EdBatchItem> residue;
      residue.reserve(unknown.size());
      for (std::size_t i : unknown) residue.push_back(items[i]);
      std::vector<bool> residue_verdicts;
      crypto::ed25519_verify_batch(residue, &residue_verdicts);
      for (std::size_t k = 0; k < unknown.size(); ++k) {
        verdicts[unknown[k]] = residue_verdicts[k];
        verify_memo_->store(unknown_keys[k], residue_verdicts[k]);
      }
    }
    bool all_ok = true;
    for (bool v : verdicts) all_ok = all_ok && v;
    if (!all_ok) ++stats_.bundle_batch_fallbacks;
  } else if (!crypto::ed25519_verify_batch(items, &verdicts)) {
    ++stats_.bundle_batch_fallbacks;
  }

  for (const Pending& p : pending) {
    if (!verdicts[p.cert_item]) {
      ++stats_.bundle_cert_rejected;
    } else if (!verdicts[p.bundle_item]) {
      ++stats_.bundle_sig_rejected;
    } else {
      verify_cache_insert(batch[p.index].bundle->id(), p.digest);
      ok[p.index] = true;
    }
  }
  for (const auto& [batch_idx, pending_slot] : followers) {
    const Pending& leader = pending[pending_slot];
    ok[batch_idx] = ok[leader.index];
    // Mirror the leader's verdict in the stats so every batch entry is
    // visible as exactly one of: cache hit, verified miss, or rejection.
    if (ok[batch_idx])
      ++stats_.bundle_sig_cache_hits;  // duplicate skipped verify
    else if (!verdicts[leader.cert_item])
      ++stats_.bundle_cert_rejected;
    else
      ++stats_.bundle_sig_rejected;
  }
  return ok;
}

}  // namespace sos::mw
